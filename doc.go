// Package repro is a from-scratch Go reproduction of "Enabling Enterprise
// Blockchain Interoperability with Trusted Data Transfer" (Abebe et al.,
// Middleware 2019): a relay-based architecture for trusted data transfer
// between independent permissioned blockchain networks, with consensual
// exposure control, verification-policy-driven attestation proofs, and
// end-to-end confidentiality against untrusted relays.
//
// Every request-path operation is context-first: the ctx passed to
// core.Client.RemoteQuery travels with the query — its deadline is stamped
// into the wire envelope both as an absolute timestamp
// (Envelope.DeadlineUnixNano) and as a relative remaining duration
// (Envelope.TimeoutNanos, gRPC-style); the source relay takes the laxer of
// the two, so deadline propagation survives clock skew between relays, and
// cancellation aborts in-flight transport sends. Redundant relay addresses
// can be raced with hedged fan-out (relay.WithHedging) instead of
// sequential failover, and core.Client.RemoteQueryBatch fans many queries
// out under one shared deadline with bounded parallelism.
//
// Discovery is health-aware and lease-based. Every transport outcome —
// sequential failover, hedged attempts, liveness pings, event pushes —
// feeds a per-address health tracker (consecutive-failure count, EWMA
// round-trip latency, circuit breaker; relay/health.go), and resolved
// address lists are reordered by health score so fan-out tries live, fast
// relays first and demotes circuit-open addresses to last resort until
// their cooldown elapses (relay.WithCircuitBreaker tunes the policy).
// Registry membership is lease-based (relay.LeaseRegistrar): a relay
// daemon announces its address under a TTL, renews it on a heartbeat
// (relay.Announce), and deregisters on shutdown; registration deduplicates
// by address, lapsed leases stop resolving, and `netadmin registry
// list`/`registry prune`/`registry compact` inspect and maintain the
// registry.
//
// Redundant relay deployments get exactly-once cross-network invokes
// anchored at the ledger rather than in any one relay's memory: the
// request's interop key (wire.Query.InteropKey — requesting network +
// requester certificate digest + request ID) travels into the committed
// transaction's signed metadata, the committer marks a second commit of
// the same TxID or interop key ledger.Duplicate and skips its writes, and
// a relay whose in-memory replay cache misses recovers the committed
// response from the ledger (relay.InvokeReplayer; BlockStore.
// TxByInteropKey) instead of re-executing. The shared registry is safe for
// multiple relayd processes on one deployment directory, in either storage
// format: the default append-only lease journal (relay.JournalRegistry,
// registry.jsonl) turns every announce, renewal and health publish into
// one O(1) record appended under a flock held only for the append, with
// readers tailing into a materialized view (last record wins, lapsed
// leases filtered at read time; lease records carry absolute expiry plus
// relative TTL and readers take the earlier interpretation, so skew never
// stretches a dead relay's lease) and a background compactor rolling the
// log into generation snapshots behind an atomic pointer flip — torn
// appends are skipped, never fatal, and the next append self-heals the
// tail. The legacy flat file (relay.FileRegistry, registry.json) holds the
// flock across its whole read-modify-write cycle instead and doubles as
// the journal's generation-0 base, which is the in-place migration path.
// Lease heartbeats piggyback each relay's
// per-address health observations (relay.SharedHealth) so a restarting
// relay can seed its health tracker from fleet knowledge
// (relay.SeedHealthFromRegistry) instead of rediscovering dead peers.
// Cross-network atomic exchange remains the province of internal/htlc;
// the ledger dedup governs duplicate commits of one logical invoke on one
// network.
//
// Proofs are first-class, pinned, and persisted. The verification policy
// is pinned at request time: the client stamps the digest of the policy it
// resolved (wire.Query.PolicyDigest, proof.PolicyDigest), the source
// refuses a pin that disagrees with the policy expression, every
// attestation signs the pin inside its metadata, and verification —
// client-side and CMDAC Data Acceptance — refuses a bundle pinned to a
// different policy (proof.ErrPolicyDigestMismatch); absent pins from older
// peers are tolerated, mismatched ones never. Invokes get proof-carrying
// commits: the proof over the endorsed response is built before ordering
// (proof.Build, concurrent per attestor) and persisted with the committed
// transaction (ledger.Transaction.ProofBundle, a marshaled proof.Sealed),
// so ReplayInvoke re-serves the original artifact byte for byte even after
// an attestor organization leaves the source network — a replay can never
// become unreproducible through an org change. On the query hot path a
// content-addressed attestation cache (keyed by query digest + policy
// digest + result digest + requester certificate digest; LRU + TTL with
// two-touch admission) serves repeated identical queries with zero signing
// or encryption. Cache invalidation is exact: each entry remembers the
// chaincode namespaces its query's read set touched, and only a later
// valid write into one of those namespaces evicts it — writes to unrelated
// chaincodes leave it warm.
// Stats.AttestationCacheHits/Joins/Misses expose its effectiveness and
// `netadmin proofs show` dumps a persisted artifact. Concurrent distinct
// queries are amortized by Merkle-batched attestation
// (relay.FabricDriver.ConfigureAttestationBatching, armed by default by
// the scenario builders): cold queries that
// announce the capability (wire.Query.AcceptBatched) share a short window,
// each attestor signs one RFC 6962-shaped Merkle root per window under a
// dedicated domain separator, and every requester verifies its own leaf +
// inclusion proof (proof.Element.BatchSize/BatchIndex/BatchPath) — lone
// queries and legacy requesters fall back to the single-signature path,
// and batched invokes persist their batched Sealed artifact so the replay
// guarantee covers inclusion proofs too. The encryption half is amortized
// by sessioned ECIES (cryptoutil.SessionManager, proof.SessionPool):
// requesters announcing wire.Query.AcceptSessioned get envelopes sealed
// under one ephemeral key per TTL generation with one cached ECDH
// agreement per requester certificate, a per-query AEAD key derived via
// HKDF bound to the generation and query digest, and the session point
// carried in explicit wire fields (Attestation.SessionEphemeral) — warm
// pollers pay zero scalar multiplications per query, legacy requesters
// keep byte-identical classic ECIES, and the driver's leaf-addressed
// element records let a repeated question join an earlier window's proof,
// reusing every signature. relay.Stats.ECDHOps/SignOps/EncryptOps count
// the expensive primitives fleet-wide.
//
// Topologies are transitive: a relay with forwarding enabled
// (relay.EnableForwarding) serves queries and invokes for networks it has
// no driver for by relaying them toward the source — directly when its own
// discovery resolves the target, else via a static route table
// (relay.RouteTable; relayd -route target=via1,via2) — with each transport
// leg re-wrapped under the remaining deadline budget. The envelope carries
// the walked route and a hop TTL (wire.Envelope.Route/MaxHops), so cycles
// are refused structurally and over-deep walks die at the hop that would
// breach the TTL. Every forwarding relay first verifies the downstream
// response's hop chain, then extends it with a signed pin
// (proof.AppendHopPin) binding (previous pin, network, certificate, policy
// digest) to an anchor derived from the query and response; the origin
// (core.Client via proof.VerifyHopChainVia) authenticates the entire path
// — mutation, truncation, reordering, cross-response splicing and
// cross-query replay of any pin all fail — and surfaces it as
// core.RemoteData.Path. Forwarded invokes are claimed in each hub's
// ledger-anchored dedup before the downstream send, so exactly-once holds
// across legs even when mid-path replicas die mid-run; forwarded legs feed
// the same per-address health scoring and breaker as client fan-out.
//
// The commit path is pipelined and conflict-aware. World state is
// namespaced per chaincode and sharded with one lock per namespace
// (internal/statedb). The solo orderer gains a pipelined mode
// (orderer.Config.Pipelined): a background cutter goroutine cuts blocks on
// two triggers — BatchSize transactions accumulated, or BatchTimeout
// elapsed since the batch opened — with MaxPending backpressure on
// submitters, while SubmitWait couples a client to its block's delivery in
// either mode. On the peer, Peer.SetCommitterWorkers widens commitment:
// endorsement checks run on a bounded worker pool, a dependency scheduler
// derived from each transaction's RWSet levels the block by write-write
// conflicts on namespaced keys, and non-conflicting write sets apply in
// parallel — validation codes, version stamps and world state are
// byte-identical to the serial committer, which remains the default and
// the rollback knob (workers <= 1). fabric.Tuning carries both knobs
// through the application builders down to `interopctl loadgen
// -pipelined -batch-size N -committers M`.
//
// The system is measurable under production-shaped load. `interopctl
// loadgen` (internal/loadgen) builds a multi-relay TCP deployment, drives
// concurrent clients through an open-loop arrival schedule — latency
// charged from each operation's scheduled instant, so queueing delay is
// never silently absorbed — over a configurable mix of cold queries,
// attestation-cache-warm queries, writable invokes and event
// subscriptions with zipf-skewed key selection, and can kill and restart
// source relays mid-run. It reports HDR-style latency percentiles
// (p50/p99/p999/max), throughput, a classed error budget
// (availability/contention/protocol), the relay fleet's counter window
// (relay.Stats.Sub/Merge over lock-free snapshots), and a post-run
// exactly-once audit of every issued invoke against the source ledger,
// written to BENCH_loadgen.json.
//
// The module layout — everything lives under internal/; programs in cmd/
// and examples/ are the runnable surface:
//
//   - internal/core        — application-facing interop layer: EnableInterop,
//     Client (RemoteQuery/RemoteInvoke/RemoteQueryBatch), governance ops
//   - internal/relay       — relay service, discovery, transports (in-process
//     hub, TCP, pooled TCP), hedged fan-out, pluggable drivers
//   - internal/wire        — network-neutral protocol codec and messages
//   - internal/proof       — attestation proofs and verification
//   - internal/policy      — access-control rules and verification policies
//   - internal/syscc       — system contracts (ECC exposure control, CMDAC
//     configuration management & data acceptance)
//   - internal/fabric      — the Fabric-model platform substrate (MSPs,
//     endorsement, ordering, MVCC validation, gateway)
//   - internal/notary      — a second, notary-attested platform substrate
//   - internal/htlc        — hash-time-locked contract chaincode for swaps
//   - internal/loadgen     — open-loop load generation, latency histograms,
//     churn injection and the exactly-once audit
//   - internal/apps        — the paper's STL / SWT use-case applications
//   - cmd/                 — relayd, interopctl, netadmin, slocreport
//   - examples/            — quickstart, tradefinance, multirelay,
//     crossplatform, atomicswap walkthroughs
//
// See README.md for a walkthrough. The bench_test.go file in this
// directory regenerates every experiment (E1-E10 mirror and extend the
// paper's evaluation, through the attestation cache, Merkle-batched
// attestation, sessioned ECIES and the multi-hop depth sweep; P1-P9 are
// supplemental performance characterizations, including the
// hedged-fan-out, batched-query and registry-announce measurements).
package repro
