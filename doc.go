// Package repro is a from-scratch Go reproduction of "Enabling Enterprise
// Blockchain Interoperability with Trusted Data Transfer" (Abebe et al.,
// Middleware 2019): a relay-based architecture for trusted data transfer
// between independent permissioned blockchain networks, with consensual
// exposure control, verification-policy-driven attestation proofs, and
// end-to-end confidentiality against untrusted relays.
//
// Every request-path operation is context-first: the ctx passed to
// core.Client.RemoteQuery travels with the query — its deadline is stamped
// into the wire envelope (Envelope.DeadlineUnixNano) so the source relay
// serves under the requester's remaining budget, and cancellation aborts
// in-flight transport sends. Redundant relay addresses can be raced with
// hedged fan-out (relay.WithHedging) instead of sequential failover, and
// core.Client.RemoteQueryBatch fans many queries out under one shared
// deadline with bounded parallelism.
//
// The module layout — everything lives under internal/; programs in cmd/
// and examples/ are the runnable surface:
//
//   - internal/core        — application-facing interop layer: EnableInterop,
//     Client (RemoteQuery/RemoteInvoke/RemoteQueryBatch), governance ops
//   - internal/relay       — relay service, discovery, transports (in-process
//     hub, TCP, pooled TCP), hedged fan-out, pluggable drivers
//   - internal/wire        — network-neutral protocol codec and messages
//   - internal/proof       — attestation proofs and verification
//   - internal/policy      — access-control rules and verification policies
//   - internal/syscc       — system contracts (ECC exposure control, CMDAC
//     configuration management & data acceptance)
//   - internal/fabric      — the Fabric-model platform substrate (MSPs,
//     endorsement, ordering, MVCC validation, gateway)
//   - internal/notary      — a second, notary-attested platform substrate
//   - internal/htlc        — hash-time-locked contract chaincode for swaps
//   - internal/apps        — the paper's STL / SWT use-case applications
//   - cmd/                 — relayd, interopctl, netadmin, slocreport
//   - examples/            — quickstart, tradefinance, multirelay,
//     crossplatform, atomicswap walkthroughs
//
// See README.md for a walkthrough. The bench_test.go file in this
// directory regenerates every experiment (E1-E7 mirror the paper's
// evaluation; P1-P8 are supplemental performance characterizations,
// including the hedged-fan-out and batched-query measurements).
package repro
