// Package repro is a from-scratch Go reproduction of "Enabling Enterprise
// Blockchain Interoperability with Trusted Data Transfer" (Abebe et al.,
// Middleware 2019): a relay-based architecture for trusted data transfer
// between independent permissioned blockchain networks, with consensual
// exposure control, verification-policy-driven attestation proofs, and
// end-to-end confidentiality against untrusted relays.
//
// The library layout:
//
//   - internal/core        — public interop API (EnableInterop, Client.RemoteQuery)
//   - internal/relay       — relay service, discovery, transports, drivers
//   - internal/wire        — network-neutral protocol codec and messages
//   - internal/proof       — attestation proofs and verification
//   - internal/policy      — access-control rules and verification policies
//   - internal/syscc       — system contracts (ECC exposure control, CMDAC
//     configuration management & data acceptance)
//   - internal/fabric      — the Fabric-model platform substrate (MSPs,
//     endorsement, ordering, MVCC validation, gateway)
//   - internal/notary      — a second, notary-attested platform substrate
//   - internal/apps        — the paper's STL / SWT use-case applications
//
// See README.md for a walkthrough, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured record. The bench_test.go
// file in this directory regenerates every experiment.
package repro
