// Command slocreport regenerates the paper's §5 "ease of use and
// adaptation" analysis: it scans the application sources for the marked
// interop-adaptation regions and reports the source lines of code each
// adaptation required, side by side with the figures the paper reports for
// its Fabric proof of concept (~35 SLOC source chaincode, ~20 SLOC
// destination chaincode, ~80 SLOC destination application).
//
// Usage:
//
//	slocreport [-src internal/apps]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

const (
	markerBegin = "interop-adaptation-begin"
	markerEnd   = "interop-adaptation-end"
)

// row is one adaptation site.
type row struct {
	file    string
	context string // annotation after the begin marker
	sloc    int
	regions int
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "slocreport:", err)
		os.Exit(1)
	}
}

func run() error {
	src := flag.String("src", "internal/apps", "source tree to scan for interop adaptation markers")
	flag.Parse()

	rows, err := scan(*src)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("no adaptation markers found under %s", *src)
	}

	fmt.Println("Ease of adaptation (paper §5) — interop SLOC added to pre-existing applications")
	fmt.Println()
	fmt.Printf("%-42s %-38s %8s %8s\n", "FILE", "ADAPTATION", "REGIONS", "SLOC")
	total := 0
	for _, r := range rows {
		fmt.Printf("%-42s %-38s %8d %8d\n", r.file, r.context, r.regions, r.sloc)
		total += r.sloc
	}
	fmt.Printf("%-42s %-38s %8s %8d\n", "", "total measured", "", total)
	fmt.Println()
	fmt.Println("Paper-reported figures for the same adaptations (Hyperledger Fabric PoC):")
	fmt.Printf("  %-38s %8s\n", "source chaincode (ECC calls)", "~35")
	fmt.Printf("  %-38s %8s\n", "destination chaincode (CMDAC call)", "~20")
	fmt.Printf("  %-38s %8s\n", "destination application (query+submit)", "~80")
	fmt.Println()
	fmt.Println("Measured counts are lower because this library folds boilerplate " +
		"(marshaling, encryption plumbing) behind the syscc helpers; the shape — " +
		"a handful of call sites, no protocol changes — matches the paper.")
	return nil
}

// scan walks the tree collecting marked regions per file.
func scan(root string) ([]row, error) {
	var rows []row
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		r, err := scanFile(path)
		if err != nil {
			return err
		}
		if r.regions > 0 {
			rows = append(rows, r)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func scanFile(path string) (row, error) {
	f, err := os.Open(path)
	if err != nil {
		return row{}, err
	}
	defer f.Close()

	r := row{file: path}
	scanner := bufio.NewScanner(f)
	inRegion := false
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case strings.Contains(line, markerBegin):
			inRegion = true
			r.regions++
			if r.context == "" {
				if i := strings.Index(line, markerBegin); i >= 0 {
					r.context = strings.Trim(strings.TrimSpace(line[i+len(markerBegin):]), "()")
				}
			}
		case strings.Contains(line, markerEnd):
			inRegion = false
		case inRegion && line != "" && !strings.HasPrefix(line, "//"):
			r.sloc++
		}
	}
	return r, scanner.Err()
}
