// Command interopctl operates against the interop fabric from the
// destination application's seat.
//
// The query subcommand (also the default) issues a trusted cross-network
// query against a running relayd (Fig. 2 steps 1-9): it loads the client
// kit written by relayd, sends the query over TCP through relay discovery,
// decrypts the response, verifies the proof against the recorded source
// configuration and verification policy, and prints the result with an
// attestation summary.
//
// The loadgen subcommand builds a self-contained multi-relay TCP
// deployment and measures it under sustained open-loop load — latency
// percentiles, throughput, error budgets, relay counters and an
// exactly-once audit — writing BENCH_loadgen.json.
//
// Usage:
//
//	interopctl -dir ./deploy -po po-1001
//	interopctl query -dir ./deploy -po po-1001 -timeout 5s
//	interopctl query -dir ./deploy -ping
//	interopctl loadgen -preset steady-query
//	interopctl loadgen -preset churn -duration 30s -rate 200
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/deploy"
	"repro/internal/endorsement"
	"repro/internal/msp"
	"repro/internal/proof"
	"repro/internal/relay"
	"repro/internal/wire"
)

func main() {
	args := os.Args[1:]
	var err error
	switch {
	case len(args) > 0 && args[0] == "loadgen":
		err = runLoadgen(args[1:])
	case len(args) > 0 && args[0] == "query":
		err = runQuery(args[1:])
	default:
		// Bare flags keep meaning "query" so existing invocations survive.
		err = runQuery(args)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "interopctl:", err)
		os.Exit(1)
	}
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	dir := fs.String("dir", "./deploy", "deployment directory written by relayd")
	po := fs.String("po", "po-1001", "purchase order reference to fetch the bill of lading for")
	ping := fs.Bool("ping", false, "only probe the source relay for liveness")
	timeout := fs.Duration("timeout", 30*time.Second, "deadline for the whole operation; propagated to the source relay")
	hedge := fs.Duration("hedge", 0, "hedge delay before trying the next relay address (0 disables hedging)")
	format := fs.String("registry", "auto",
		"registry storage to read: 'auto' (journal when its artifacts exist, flat otherwise), 'journal', or 'flat'")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	kit, err := deploy.LoadKit(*dir)
	if err != nil {
		return err
	}
	var registry relay.Registry
	switch *format {
	case "auto":
		registry = relay.DetectRegistry(deploy.JournalPath(*dir), deploy.RegistryPath(*dir))
	case "journal":
		registry = relay.NewJournalRegistry(deploy.JournalPath(*dir))
	case "flat":
		registry = relay.NewFileRegistry(deploy.RegistryPath(*dir))
	default:
		return fmt.Errorf("unknown -registry format %q (expected 'auto', 'journal' or 'flat')", *format)
	}
	transport := &relay.TCPTransport{DialTimeout: 5 * time.Second, IOTimeout: 30 * time.Second}
	var relayOpts []relay.Option
	if *hedge > 0 {
		relayOpts = append(relayOpts, relay.WithHedging(*hedge, 2))
	}
	local := relay.New(kit.RequestingNetwork, registry, transport, relayOpts...)

	if *ping {
		addrs, err := registry.Resolve(kit.SourceNetwork)
		if err != nil {
			return err
		}
		// Fair per-address slices of the whole-operation budget: one hung
		// relay must not starve the probes of the addresses after it, and
		// the total stays bounded by -timeout.
		perProbe := *timeout / time.Duration(len(addrs))
		if perProbe <= 0 {
			perProbe = *timeout
		}
		for _, addr := range addrs {
			pingCtx, cancel := context.WithTimeout(ctx, perProbe)
			start := time.Now()
			err := local.Ping(pingCtx, addr)
			cancel()
			if err != nil {
				fmt.Printf("%-24s DOWN  (%v)\n", addr, err)
				continue
			}
			fmt.Printf("%-24s UP    (%s)\n", addr, time.Since(start).Round(time.Microsecond))
		}
		return nil
	}

	key, err := kit.Key()
	if err != nil {
		return err
	}
	nonce, err := cryptoutil.NewNonce()
	if err != nil {
		return err
	}
	q := &wire.Query{
		RequestingNetwork: kit.RequestingNetwork,
		TargetNetwork:     kit.SourceNetwork,
		Ledger:            kit.Ledger,
		Contract:          kit.Contract,
		Function:          kit.Function,
		Args:              [][]byte{[]byte(*po)},
		PolicyExpr:        kit.VerificationPolicy,
		RequesterCertPEM:  kit.CertPEM,
		RequesterOrg:      kit.Org,
		Nonce:             nonce,
		PolicyDigest:      proof.PolicyDigest(kit.VerificationPolicy),
	}
	start := time.Now()
	resp, err := local.Query(ctx, q)
	if err != nil {
		return fmt.Errorf("query: %w", err)
	}
	if resp.Error != "" {
		return fmt.Errorf("remote error: %s", resp.Error)
	}
	rtt := time.Since(start)

	bundle, err := proof.OpenResponse(key, q, resp)
	if err != nil {
		return fmt.Errorf("open response: %w", err)
	}

	// Verify the proof against the kit's recorded source configuration.
	cfg, err := kit.SourceConfig()
	if err != nil {
		return err
	}
	roots := make(map[string][]byte, len(cfg.Orgs))
	for _, org := range cfg.Orgs {
		roots[org.OrgID] = org.RootCertPEM
	}
	verifier, err := msp.NewVerifier(roots)
	if err != nil {
		return err
	}
	vp, err := endorsement.Parse(kit.VerificationPolicy)
	if err != nil {
		return err
	}
	if err := proof.Verify(bundle, verifier, vp, proof.QueryDigestOf(q), proof.PolicyDigest(kit.VerificationPolicy)); err != nil {
		return fmt.Errorf("proof verification: %w", err)
	}

	fmt.Printf("query      %s.%s(%s) on %s\n", kit.Contract, kit.Function, *po, kit.SourceNetwork)
	fmt.Printf("rtt        %s\n", rtt.Round(time.Microsecond))
	fmt.Printf("policy     %s  [SATISFIED]\n", kit.VerificationPolicy)
	for i := range bundle.Elements {
		md, err := wire.UnmarshalMetadata(bundle.Elements[i].Metadata)
		if err != nil {
			return err
		}
		fmt.Printf("attestor   %s (%s) — signature verified\n", md.PeerName, md.OrgID)
	}
	fmt.Printf("result     %s\n", bundle.Result)
	return nil
}
