package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/loadgen"
)

// runLoadgen resolves the effective configuration — preset, then JSON
// config file, then explicit flags, each layer overriding the last — and
// drives one load-generation run against a fresh TCP deployment.
func runLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	preset := fs.String("preset", "steady-query",
		fmt.Sprintf("workload preset: %s", strings.Join(loadgen.PresetNames(), ", ")))
	configPath := fs.String("config", "", "JSON config file layered over the preset")
	clients := fs.Int("clients", 0, "concurrent simulated clients")
	rate := fs.Float64("rate", 0, "target offered rate, ops/sec across all clients")
	duration := fs.Duration("duration", 0, "length of the arrival schedule")
	keys := fs.Int("keys", 0, "hot key space size (seeded purchase orders)")
	zipf := fs.Float64("zipf", 0, "zipf skew exponent for key selection (>1)")
	arrival := fs.String("arrival", "", "inter-arrival law: poisson or uniform")
	queryPct := fs.Int("query-pct", -1, "cold query percentage of the mix")
	warmPct := fs.Int("warm-pct", -1, "warm (attestation-cached) query percentage")
	invokePct := fs.Int("invoke-pct", -1, "writable invoke percentage")
	subscribePct := fs.Int("subscribe-pct", -1, "event subscription percentage")
	extraRelays := fs.Int("extra-relays", -1, "extra redundant relays fronting the source network")
	hubHops := fs.Int("hub-hops", -1, "intermediate forwarding hub networks between origin and source (0 = direct)")
	hubRelays := fs.Int("hub-relays", -1, "redundant relay replicas per hub tier")
	churn := fs.Bool("churn", false, "kill and restart source relays during the run")
	churnInterval := fs.Duration("churn-interval", 0, "period of the kill/restart cycle")
	seed := fs.Int64("seed", 0, "RNG seed for the schedule (0 keeps the preset's)")
	pipelined := fs.Bool("pipelined", false, "pipelined orderer batching on both networks")
	batchSize := fs.Int("batch-size", 0, "orderer batch size with -pipelined (0 = orderer default)")
	committers := fs.Int("committers", 0, "committer workers per peer (<=1 = serial committer)")
	attestWindow := fs.Duration("attest-batch-window", 0, "Merkle-batched attestation window on source relays (0 = per-query signatures)")
	attestMax := fs.Int("attest-batch-max", 0, "flush a batching window early at this many pending queries (0 = default 32)")
	attestOff := fs.Bool("attest-batch-off", false, "disable attestation batching on every relay (per-query signatures)")
	baseline := fs.String("baseline", "", "prior report to diff p50/p99 against (warn-only, never fails the run)")
	out := fs.String("out", loadgen.DefaultOutput, "report output path")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, known := loadgen.Presets[*preset]
	if !known {
		return fmt.Errorf("unknown preset %q (have: %s)", *preset, strings.Join(loadgen.PresetNames(), ", "))
	}
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			return fmt.Errorf("read -config: %w", err)
		}
		if err := json.Unmarshal(data, &cfg); err != nil {
			return fmt.Errorf("parse -config %s: %w", *configPath, err)
		}
	}
	// Only flags the user actually set override the layers below.
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "clients":
			cfg.Clients = *clients
		case "rate":
			cfg.Rate = *rate
		case "duration":
			cfg.Duration = *duration
		case "keys":
			cfg.Keys = *keys
		case "zipf":
			cfg.ZipfS = *zipf
		case "arrival":
			cfg.Arrival = *arrival
		case "query-pct":
			cfg.Mix.QueryPct = *queryPct
		case "warm-pct":
			cfg.Mix.WarmQueryPct = *warmPct
		case "invoke-pct":
			cfg.Mix.InvokePct = *invokePct
		case "subscribe-pct":
			cfg.Mix.SubscribePct = *subscribePct
		case "extra-relays":
			cfg.ExtraSTLRelays = *extraRelays
		case "hub-hops":
			cfg.HubHops = *hubHops
		case "hub-relays":
			cfg.HubRelays = *hubRelays
		case "churn":
			cfg.Churn = *churn
		case "churn-interval":
			cfg.ChurnInterval = *churnInterval
		case "seed":
			cfg.Seed = *seed
		case "pipelined":
			cfg.Pipelined = *pipelined
		case "batch-size":
			cfg.BatchSize = *batchSize
		case "committers":
			cfg.CommitterWorkers = *committers
		case "attest-batch-window":
			cfg.AttestBatchWindow = *attestWindow
		case "attest-batch-max":
			cfg.AttestBatchMax = *attestMax
		case "attest-batch-off":
			cfg.AttestBatchOff = *attestOff
		}
	})
	cfg.Output = *out
	if err := cfg.Validate(); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if cfg.HubHops > 0 {
		perHub := cfg.HubRelays
		if perHub < 1 {
			perHub = 1
		}
		fmt.Fprintf(os.Stderr, "loadgen: building TCP relay chain (%d hub tiers x %d relays), seeding %d keys...\n",
			cfg.HubHops, perHub, cfg.Keys)
	} else {
		fmt.Fprintf(os.Stderr, "loadgen: building TCP deployment (1+%d source relays), seeding %d keys...\n",
			cfg.ExtraSTLRelays, cfg.Keys)
	}
	start := time.Now()
	report, err := loadgen.RunLive(ctx, &cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loadgen: run complete in %s\n\n", time.Since(start).Round(time.Millisecond))

	fmt.Print(report.Table())
	if err := report.WriteFile(cfg.Output); err != nil {
		return err
	}
	path := cfg.Output
	if path == "" {
		path = loadgen.DefaultOutput
	}
	fmt.Printf("\nreport written to %s\n", path)

	// The baseline diff is advisory: latency on shared CI hardware jitters,
	// so regressions print as warnings and never change the exit status.
	if *baseline != "" {
		base, err := loadgen.ReadReport(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: baseline diff skipped: %v\n", err)
		} else if warnings := report.DiffBaseline(base); len(warnings) > 0 {
			for _, w := range warnings {
				fmt.Fprintf(os.Stderr, "loadgen: warn: latency regression vs %s: %s\n", *baseline, w)
			}
		} else {
			fmt.Fprintf(os.Stderr, "loadgen: p50/p99 within slack of baseline %s\n", *baseline)
		}
	}

	// Exit status carries the verdict: protocol errors and exactly-once
	// violations fail the run even though it completed.
	if n := report.ProtocolErrors(); n > 0 {
		return fmt.Errorf("%d protocol errors (see %s)", n, path)
	}
	if report.Audit != nil && !report.Audit.Clean() {
		return fmt.Errorf("exactly-once audit failed: %+v", *report.Audit)
	}
	return nil
}
