// Command netadmin inspects a deployment directory: it lists the networks
// registered for discovery, probes every relay address for liveness, and
// summarizes the client kit's interop configuration (requesting identity,
// source network organizations, verification policy).
//
// Usage:
//
//	netadmin -dir ./deploy
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/deploy"
	"repro/internal/relay"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netadmin:", err)
		os.Exit(1)
	}
}

func run() error {
	dir := flag.String("dir", "./deploy", "deployment directory to inspect")
	probeTimeout := flag.Duration("probe-timeout", 3*time.Second, "per-address liveness probe deadline")
	flag.Parse()

	registry := relay.NewFileRegistry(deploy.RegistryPath(*dir))
	networks, err := registry.Networks()
	if err != nil {
		return err
	}
	sort.Strings(networks)

	transport := &relay.TCPTransport{DialTimeout: 2 * time.Second, IOTimeout: 5 * time.Second}
	probe := relay.New("netadmin", registry, transport)

	fmt.Printf("registry: %s\n", deploy.RegistryPath(*dir))
	if len(networks) == 0 {
		fmt.Println("  (no networks registered)")
	}
	for _, network := range networks {
		addrs, err := registry.Resolve(network)
		if err != nil {
			return err
		}
		fmt.Printf("network %q: %d relay(s)\n", network, len(addrs))
		for _, addr := range addrs {
			start := time.Now()
			ctx, cancel := context.WithTimeout(context.Background(), *probeTimeout)
			err := probe.Ping(ctx, addr)
			cancel()
			if err != nil {
				fmt.Printf("  %-24s DOWN  (%v)\n", addr, err)
				continue
			}
			fmt.Printf("  %-24s UP    (%s)\n", addr, time.Since(start).Round(time.Microsecond))
		}
	}

	kit, err := deploy.LoadKit(*dir)
	if err != nil {
		fmt.Printf("client kit: none (%v)\n", err)
		return nil
	}
	fmt.Printf("client kit: %s@%s of %s\n", kit.Name, kit.Org, kit.RequestingNetwork)
	fmt.Printf("  provisioned for   %s.%s on %s\n", kit.Contract, kit.Function, kit.SourceNetwork)
	fmt.Printf("  verification      %s\n", kit.VerificationPolicy)
	cfg, err := kit.SourceConfig()
	if err != nil {
		return err
	}
	fmt.Printf("  source platform   %s with %d org(s):\n", cfg.Platform, len(cfg.Orgs))
	for _, org := range cfg.Orgs {
		fmt.Printf("    %-20s %d peer(s), root cert %d bytes\n", org.OrgID, len(org.PeerNames), len(org.RootCertPEM))
	}
	return nil
}
