// Command netadmin inspects and maintains a deployment directory. The
// default status command lists the networks registered for discovery,
// probes every relay address for liveness, and summarizes the client kit's
// interop configuration (requesting identity, source network organizations,
// verification policy). The registry subcommands inspect and maintain
// lease-based discovery membership.
//
// Usage:
//
//	netadmin -dir ./deploy                  # status (default)
//	netadmin -dir ./deploy registry list    # every entry with its lease state
//	netadmin -dir ./deploy registry prune   # drop entries whose lease lapsed
//	netadmin -dir ./deploy registry compact # roll the journal into a fresh snapshot
//	netadmin -dir ./deploy route list       # the relay's static multi-hop routes
//	netadmin proofs show bundle.bin         # dump a persisted proof bundle
//
// The registry subcommands auto-detect the storage format: the append-only
// journal (registry.jsonl + generation/pointer files) when its artifacts
// exist, the legacy flat registry.json otherwise. `registry compact`
// always operates on the journal — run against a flat-file-only deployment
// it performs the migration, folding registry.json in as the journal's
// base and writing the first compacted generation.
//
// proofs show decodes a proof artifact file in either persisted form: the
// sealed bundle a committed interop transaction carries
// (ledger.Transaction.ProofBundle — the artifact ReplayInvoke re-serves
// verbatim) or the plaintext bundle a client embeds in a destination
// transaction (core.RemoteData.BundleBytes).
package main

import (
	"context"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/deploy"
	"repro/internal/proof"
	"repro/internal/relay"
	"repro/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netadmin:", err)
		os.Exit(1)
	}
}

func run() error {
	dir := flag.String("dir", "./deploy", "deployment directory to inspect")
	probeTimeout := flag.Duration("probe-timeout", 3*time.Second, "per-address liveness probe deadline")
	format := flag.String("registry", "auto",
		"registry storage to read: 'auto' (journal when its artifacts exist, flat otherwise), 'journal', or 'flat'")
	flag.Parse()

	registry, err := openRegistry(*dir, *format)
	if err != nil {
		return err
	}
	switch args := flag.Args(); {
	case len(args) == 0 || (len(args) == 1 && args[0] == "status"):
		return status(*dir, registry, *probeTimeout)
	case len(args) == 2 && args[0] == "registry" && args[1] == "list":
		return registryList(*dir, registry)
	case len(args) == 2 && args[0] == "registry" && args[1] == "prune":
		return registryPrune(registry)
	case len(args) == 2 && args[0] == "registry" && args[1] == "compact":
		return registryCompact(*dir)
	case len(args) == 2 && args[0] == "route" && args[1] == "list":
		return routeList(*dir)
	case len(args) == 3 && args[0] == "proofs" && args[1] == "show":
		return proofsShow(args[2])
	default:
		return fmt.Errorf("unknown command %q (expected: status, registry list, registry prune, registry compact, route list, proofs show <file>)", args)
	}
}

// status is the default inspection: resolve and probe every live relay
// address, then summarize the client kit.
func status(dir string, registry relay.Registry, probeTimeout time.Duration) error {
	networks, err := registry.Networks()
	if err != nil {
		return err
	}
	sort.Strings(networks)

	transport := &relay.TCPTransport{DialTimeout: 2 * time.Second, IOTimeout: 5 * time.Second}
	probe := relay.New("netadmin", registry, transport)

	fmt.Printf("registry: %s\n", registryLabel(dir, registry))
	if len(networks) == 0 {
		fmt.Println("  (no networks registered)")
	}
	for _, network := range networks {
		addrs, err := registry.Resolve(network)
		if err != nil {
			// Every entry's lease may have lapsed; the network still shows
			// under `registry list` until pruned.
			fmt.Printf("network %q: no live relay entries (%v)\n", network, err)
			continue
		}
		fmt.Printf("network %q: %d relay(s)\n", network, len(addrs))
		for _, addr := range addrs {
			start := time.Now()
			ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
			err := probe.Ping(ctx, addr)
			cancel()
			if err != nil {
				fmt.Printf("  %-24s DOWN  (%v)\n", addr, err)
				continue
			}
			fmt.Printf("  %-24s UP    (%s)\n", addr, time.Since(start).Round(time.Microsecond))
		}
	}

	kit, err := deploy.LoadKit(dir)
	if err != nil {
		fmt.Printf("client kit: none (%v)\n", err)
		return nil
	}
	fmt.Printf("client kit: %s@%s of %s\n", kit.Name, kit.Org, kit.RequestingNetwork)
	fmt.Printf("  provisioned for   %s.%s on %s\n", kit.Contract, kit.Function, kit.SourceNetwork)
	fmt.Printf("  verification      %s\n", kit.VerificationPolicy)
	cfg, err := kit.SourceConfig()
	if err != nil {
		return err
	}
	fmt.Printf("  source platform   %s with %d org(s):\n", cfg.Platform, len(cfg.Orgs))
	for _, org := range cfg.Orgs {
		fmt.Printf("    %-20s %d peer(s), root cert %d bytes\n", org.OrgID, len(org.PeerNames), len(org.RootCertPEM))
	}
	return nil
}

// routeList prints the static multi-hop route table relayd recorded in the
// deployment directory: each target network with its ordered via networks,
// plus the hop TTL stamped on routed envelopes.
func routeList(dir string) error {
	cfg, err := deploy.LoadRoutes(dir)
	if err != nil {
		if os.IsNotExist(errors.Unwrap(err)) {
			fmt.Printf("routes: none configured (%s not present)\n", deploy.RoutesPath(dir))
			return nil
		}
		return err
	}
	fmt.Printf("routes: %s\n", deploy.RoutesPath(dir))
	ttl := cfg.MaxHops
	if ttl == 0 {
		ttl = relay.DefaultMaxHops
	}
	fmt.Printf("  hop TTL: %d transport leg(s)\n", ttl)
	if len(cfg.Routes) == 0 {
		fmt.Println("  (forwarding enabled with an empty table: only directly resolvable targets are forwarded)")
		return nil
	}
	sort.Slice(cfg.Routes, func(i, j int) bool { return cfg.Routes[i].Target < cfg.Routes[j].Target })
	for _, r := range cfg.Routes {
		fmt.Printf("  %-24s via %s\n", r.Target, strings.Join(r.Vias, ", "))
	}
	return nil
}

// registryList prints every entry, expired or not, with its lease state.
func registryList(dir string, registry relay.Registry) error {
	entries, err := registry.Entries()
	if err != nil {
		return err
	}
	fmt.Printf("registry: %s\n", registryLabel(dir, registry))
	if len(entries) == 0 {
		fmt.Println("  (no networks registered)")
		return nil
	}
	networks := make([]string, 0, len(entries))
	for id := range entries {
		networks = append(networks, id)
	}
	sort.Strings(networks)
	now := time.Now()
	for _, network := range networks {
		fmt.Printf("network %q:\n", network)
		for _, entry := range entries[network] {
			switch {
			case entry.ExpiresUnixNano == 0:
				fmt.Printf("  %-24s permanent%s\n", entry.Addr, healthSummary(entry.Health, now))
			case time.Unix(0, entry.ExpiresUnixNano).After(now):
				remaining := time.Unix(0, entry.ExpiresUnixNano).Sub(now).Round(time.Second)
				fmt.Printf("  %-24s lease expires in %s%s\n", entry.Addr, remaining, healthSummary(entry.Health, now))
			default:
				expired := now.Sub(time.Unix(0, entry.ExpiresUnixNano)).Round(time.Second)
				fmt.Printf("  %-24s EXPIRED %s ago (prune to remove)%s\n", entry.Addr, expired, healthSummary(entry.Health, now))
			}
		}
	}
	return nil
}

// healthSummary renders the shared health record relays piggyback on lease
// renewal, empty when none was published. The circuit-breaker cooldown is
// reported as remaining time, resolved through the record's relative
// encoding (laxer interpretation, like the relay itself) rather than by
// comparing an absolute foreign timestamp against this machine's clock.
func healthSummary(h *relay.SharedHealth, now time.Time) string {
	if h == nil {
		return ""
	}
	s := fmt.Sprintf("; health: %d consecutive failure(s), ewma rtt %s",
		h.ConsecFailures, time.Duration(h.EWMALatencyNanos).Round(time.Microsecond))
	if open := h.CooldownExpiry(now); !open.IsZero() {
		s += fmt.Sprintf(", circuit OPEN, %s cooldown remaining", open.Sub(now).Round(time.Second))
	}
	return s
}

// proofsShow decodes and prints a persisted proof artifact: first as the
// sealed form a committed transaction carries, falling back to the
// plaintext bundle form clients embed in destination transactions.
func proofsShow(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if sealed, err := proof.UnmarshalSealed(data); err == nil && len(sealed.Response) > 0 {
		return showSealed(sealed)
	}
	bundle, err := proof.UnmarshalBundle(data)
	if err != nil {
		return fmt.Errorf("not a sealed proof or a proof bundle: %w", err)
	}
	return showBundle(bundle)
}

func showSealed(s *proof.Sealed) error {
	fmt.Println("sealed proof (as persisted with the committed transaction)")
	fmt.Printf("  query digest    %s\n", hex.EncodeToString(s.QueryDigest))
	fmt.Printf("  policy digest   %s\n", hex.EncodeToString(s.PolicyDigest))
	fmt.Printf("  built           %s\n", time.Unix(0, int64(s.UnixNano)).UTC().Format(time.RFC3339Nano))
	fmt.Printf("  attestors       %d\n", len(s.Attestors))
	for _, a := range s.Attestors {
		fmt.Printf("    %s\n", a)
	}
	resp, err := s.OpenWire()
	if err != nil {
		return fmt.Errorf("stored response: %w", err)
	}
	fmt.Printf("  response        %d attestation(s), %d result ciphertext bytes\n",
		len(resp.Attestations), len(resp.EncryptedResult))
	for i := range resp.Attestations {
		att := &resp.Attestations[i]
		fmt.Printf("    [%d] %s/%s  sig %d bytes, encrypted metadata %d bytes\n",
			i, att.OrgID, att.PeerName, len(att.Signature), len(att.EncryptedMetadata))
	}
	return nil
}

func showBundle(b *proof.Bundle) error {
	fmt.Println("proof bundle (client-side plaintext form)")
	fmt.Printf("  source network  %s\n", b.SourceNetwork)
	fmt.Printf("  query digest    %s\n", hex.EncodeToString(b.QueryDigest))
	fmt.Printf("  policy digest   %s\n", hex.EncodeToString(b.PolicyDigest))
	if b.UnixNano != 0 {
		fmt.Printf("  built           %s\n", time.Unix(0, int64(b.UnixNano)).UTC().Format(time.RFC3339Nano))
	}
	fmt.Printf("  nonce           %s\n", hex.EncodeToString(b.Nonce))
	fmt.Printf("  result          %d bytes\n", len(b.Result))
	fmt.Printf("  attestations    %d\n", len(b.Elements))
	for i := range b.Elements {
		el := &b.Elements[i]
		md, err := wire.UnmarshalMetadata(el.Metadata)
		if err != nil {
			fmt.Printf("    [%d] (metadata undecodable: %v)\n", i, err)
			continue
		}
		fmt.Printf("    [%d] %s/%s of %s at %s\n", i, md.OrgID, md.PeerName, md.NetworkID,
			time.Unix(0, int64(md.UnixNano)).UTC().Format(time.RFC3339Nano))
	}
	return nil
}

// openRegistry opens the deployment's registry in the requested storage
// format; 'auto' detects the journal by its artifacts. The explicit forms
// exist so stale artifacts of the other format can never shadow the store
// a relayd was actually told to use.
func openRegistry(dir, format string) (relay.Registry, error) {
	switch format {
	case "auto":
		return relay.DetectRegistry(deploy.JournalPath(dir), deploy.RegistryPath(dir)), nil
	case "journal":
		return relay.NewJournalRegistry(deploy.JournalPath(dir)), nil
	case "flat":
		return relay.NewFileRegistry(deploy.RegistryPath(dir)), nil
	default:
		return nil, fmt.Errorf("unknown -registry format %q (expected 'auto', 'journal' or 'flat')", format)
	}
}

// registryLabel names the registry backing a Registry for display.
func registryLabel(dir string, registry relay.Registry) string {
	if _, ok := registry.(*relay.JournalRegistry); ok {
		return deploy.JournalPath(dir) + " (journal)"
	}
	return deploy.RegistryPath(dir)
}

// registryCompact rolls the registry journal into a fresh generation
// snapshot. Against a deployment that only has a flat registry.json this is
// the migration: the flat file becomes the journal's base and the first
// compacted generation is written next to it.
func registryCompact(dir string) error {
	journal := relay.NewJournalRegistry(deploy.JournalPath(dir))
	migrating := !relay.JournalPresent(deploy.JournalPath(dir))
	if err := journal.Compact(); err != nil {
		return err
	}
	if migrating {
		fmt.Printf("migrated %s into journal %s\n", deploy.RegistryPath(dir), deploy.JournalPath(dir))
	}
	entries, err := journal.Entries()
	if err != nil {
		return err
	}
	total := 0
	for _, list := range entries {
		total += len(list)
	}
	fmt.Printf("compacted journal to %d entr%s across %d network(s)\n", total, pluralYIes(total), len(entries))
	return nil
}

// registryPrune drops entries whose lease has lapsed.
func registryPrune(registry relay.Registry) error {
	pruned, err := registry.Prune()
	if err != nil {
		return err
	}
	fmt.Printf("pruned %d expired entr%s\n", pruned, pluralYIes(pruned))
	return nil
}

func pluralYIes(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}
