// Command relayd runs a relay-fronted demo source network over TCP: it
// boots the Simplified TradeLens network with seeded trade data, provisions
// a foreign client (the We.Trade seller of the paper's use case) with full
// interop configuration, writes the deployment artifacts (relay registry
// and client kit), and serves the relay protocol until interrupted. The
// relay registers itself in the discovery registry under a TTL lease that
// it renews on a heartbeat and withdraws on shutdown; restarting against
// the same deployment directory refreshes the single registry entry rather
// than accumulating duplicates.
//
// Several relayd processes may share one deployment directory: discovery
// membership lives in an append-only lease journal (registry.jsonl) where
// every heartbeat is one O(1) appended record, compacted in the background
// (-registry flat falls back to the flock-serialized flat file; a legacy
// registry.json is folded in as the journal's base). Each heartbeat also
// publishes the relay's health observations, which a starting relayd seeds
// its tracker from.
// Note that each process boots its own in-memory demo network and writes
// its own client kit, so in this simulation the processes genuinely share
// discovery state, not a ledger — run interopctl against the relay whose
// kit was written last, or use a per-process -dir when the data plane
// matters. (Production relays front one real ledger; the ledger-level
// exactly-once machinery is exercised across relay instances in the
// scenario tests.)
//
// Usage:
//
//	relayd -listen 127.0.0.1:9080 -dir ./deploy
//
// Afterwards, from another process:
//
//	interopctl -dir ./deploy -po po-1001
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/apps/tradelens"
	"repro/internal/apps/wetrade"
	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/deploy"
	"repro/internal/msp"
	"repro/internal/policy"
	"repro/internal/relay"
	"repro/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "relayd:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:9080", "address to serve the relay protocol on")
	dir := flag.String("dir", "./deploy", "deployment directory for registry and client kit")
	seed := flag.Bool("seed", true, "seed the demo shipment and bill of lading")
	leaseTTL := flag.Duration("lease-ttl", time.Minute,
		"discovery lease TTL; the relay re-announces at a third of this and deregisters on shutdown (0 = permanent entry)")
	registryFormat := flag.String("registry", "journal",
		"registry storage: 'journal' (append-only lease journal, O(1) heartbeats, background compaction; reads a legacy registry.json as its base) or 'flat' (flock-serialized registry.json)")
	compactInterval := flag.Duration("compact-interval", 30*time.Second,
		"how often the journal registry checks whether its log has outgrown the compaction threshold (journal format only; 0 disables background compaction)")
	var routeSpecs routeFlags
	flag.Var(&routeSpecs, "route",
		"static multi-hop route 'target=via1,via2' (repeatable); any -route enables forwarding: requests for networks this relay has no driver for are relayed onward and every carried response gains a signed hop pin")
	maxHops := flag.Uint64("max-hops", 0,
		fmt.Sprintf("hop TTL stamped on envelopes this relay routes (0 = default %d transport legs)", relay.DefaultMaxHops))
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return fmt.Errorf("create deployment dir: %w", err)
	}
	var registry relay.Registry
	switch *registryFormat {
	case "journal":
		journal := relay.NewJournalRegistry(deploy.JournalPath(*dir))
		if !relay.FlockSupported {
			// Without a real flock, compaction cannot exclude appends from
			// *other* processes; the documented constraint on such
			// platforms is one relayd per deploy dir, under which this
			// process's own serialization suffices.
			log.Printf("warning: no cross-process file locking on this platform; run a single relayd per deployment directory")
		}
		if *compactInterval > 0 {
			// The background compactor keeps the journal bounded under
			// heartbeat churn; the log stays correct (just longer) between
			// runs, so failures only warn and retry at the next tick.
			stopCompactor := journal.StartCompactor(*compactInterval, func(err error) {
				log.Printf("journal compaction failed (retried next tick): %v", err)
			})
			defer stopCompactor()
		}
		registry = journal
	case "flat":
		registry = relay.NewFileRegistry(deploy.RegistryPath(*dir))
	default:
		return fmt.Errorf("unknown -registry format %q (expected 'journal' or 'flat')", *registryFormat)
	}
	transport := &relay.TCPTransport{DialTimeout: 5 * time.Second, IOTimeout: 30 * time.Second}

	// Boot the source network with its relay.
	stl, err := tradelens.BuildNetwork(registry, transport)
	if err != nil {
		return err
	}
	// Seed the fresh relay's health tracker from observations other relayd
	// processes published into the shared registry: a restarted relay then
	// resolves peers in fleet-learned health order (circuit-open peers
	// demoted) instead of blank registration order.
	if err := relay.SeedHealthFromRegistry(stl.Relay, registry); err != nil {
		log.Printf("health seed skipped: %v", err)
	}
	admin, err := tradelens.AdminGateway(stl, tradelens.SellerOrg)
	if err != nil {
		return err
	}

	// Static multi-hop routes: parse the -route flags into a table, enable
	// forwarding under a relay-held signing identity, and record the config
	// in the deployment dir for `netadmin route list`.
	if len(routeSpecs) > 0 || *maxHops > 0 {
		routes := relay.NewRouteTable()
		routesCfg := &deploy.RoutesConfig{MaxHops: *maxHops}
		for _, spec := range routeSpecs {
			target, vias, err := relay.ParseRoute(spec)
			if err != nil {
				return err
			}
			routes.Set(target, vias...)
			routesCfg.Routes = append(routesCfg.Routes, deploy.RouteSpec{Target: target, Vias: vias})
		}
		if *maxHops > 0 {
			routes.SetMaxHops(*maxHops)
		}
		relayCA, err := msp.NewCA(tradelens.SellerOrg + "-relay")
		if err != nil {
			return err
		}
		relayID, err := relayCA.Issue("relayd-forwarder", msp.RolePeer)
		if err != nil {
			return err
		}
		stl.Relay.EnableForwarding(routes, relayID)
		if err := deploy.SaveRoutes(*dir, routesCfg); err != nil {
			return err
		}
		log.Printf("forwarding enabled: %d static route(s), hop TTL %d", len(routesCfg.Routes), routes.MaxHops())
	}

	// Provision the foreign requester: a seller-bank client of a minimal
	// "we-trade" identity domain.
	clientCA, err := msp.NewCA(wetrade.SellerBankOrg)
	if err != nil {
		return err
	}
	clientKey, err := cryptoutil.GenerateKey()
	if err != nil {
		return err
	}
	clientCert, err := clientCA.IssueForKey("swt-seller-client", msp.RoleClient, &clientKey.PublicKey)
	if err != nil {
		return err
	}
	clientIdentity := &msp.Identity{
		Name: "swt-seller-client", OrgID: wetrade.SellerBankOrg,
		Role: msp.RoleClient, Cert: clientCert, Key: clientKey,
	}
	foreignCfg := &wire.NetworkConfig{
		NetworkID: wetrade.NetworkID,
		Platform:  "fabric",
		Orgs: []wire.OrgConfig{
			{OrgID: wetrade.SellerBankOrg, RootCertPEM: clientCA.RootCertPEM()},
		},
	}

	// Interop initialization on the source ledger: record the foreign
	// config, grant the paper's access rule.
	if err := stl.ConfigureForeignNetwork(admin, foreignCfg); err != nil {
		return err
	}
	if err := stl.GrantAccess(admin, policy.AccessRule{
		Network:   wetrade.NetworkID,
		Org:       wetrade.SellerBankOrg,
		Chaincode: tradelens.ChaincodeName,
		Function:  tradelens.FnGetBillOfLading,
	}); err != nil {
		return err
	}

	if *seed {
		if err := seedDemoData(context.Background(), stl); err != nil {
			return err
		}
		log.Printf("seeded shipment po-1001 with bill of lading bl-7734")
	}

	// Write the client kit for interopctl.
	keyDER, err := cryptoutil.MarshalPrivateKey(clientKey)
	if err != nil {
		return err
	}
	kit := &deploy.ClientKit{
		RequestingNetwork:  wetrade.NetworkID,
		Org:                wetrade.SellerBankOrg,
		Name:               clientIdentity.Name,
		CertPEM:            clientIdentity.CertPEM(),
		KeyPKCS8:           keyDER,
		SourceNetwork:      tradelens.NetworkID,
		VerificationPolicy: fmt.Sprintf("AND('%s.peer','%s.peer')", tradelens.SellerOrg, tradelens.CarrierOrg),
		Ledger:             "default",
		Contract:           tradelens.ChaincodeName,
		Function:           tradelens.FnGetBillOfLading,
	}
	kit.SetSourceConfig(stl.ExportConfig())
	if err := deploy.SaveKit(*dir, kit); err != nil {
		return err
	}

	server, err := relay.NewTCPServer(stl.Relay, *listen)
	if err != nil {
		return err
	}
	// Lease-based discovery membership: registration is deduplicated per
	// address (a restart against the same deployment dir refreshes the
	// entry instead of appending a duplicate), kept fresh by heartbeat
	// re-announcement, and withdrawn on shutdown. If this process dies
	// without cleaning up, the lease lapses and discovery stops handing the
	// dead address out. Each heartbeat also publishes this relay's health
	// observations into the registry (shared with any other relayd using
	// the same deploy dir; with the journal every renewal and health
	// publish is one appended record, so a fleet of heartbeating relayds
	// contends on a short append apiece rather than whole-file rewrites).
	stopAnnounce, err := relay.AnnounceWithHealth(registry, tradelens.NetworkID, server.Addr(), *leaseTTL, stl.Relay.HealthSnapshot, func(err error) {
		log.Printf("lease renewal failed (lease lapses if this persists): %v", err)
	})
	if err != nil {
		server.Close()
		return err
	}
	log.Printf("tradelens relay serving on %s (lease ttl %s); deployment artifacts in %s", server.Addr(), *leaseTTL, *dir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	stopAnnounce() // halt the heartbeat and deregister from discovery
	return server.Close()
}

// routeFlags collects repeated -route flags.
type routeFlags []string

func (f *routeFlags) String() string { return fmt.Sprint([]string(*f)) }

func (f *routeFlags) Set(v string) error {
	*f = append(*f, v)
	return nil
}

// seedDemoData drives the STL lifecycle for the paper's po-1001 shipment:
// creation, booking, gate-in, and bill-of-lading issuance.
func seedDemoData(ctx context.Context, stl *core.Network) error {
	seller, err := tradelens.NewSellerApp(stl, "stl-seller-app")
	if err != nil {
		return err
	}
	carrier, err := tradelens.NewCarrierApp(stl, "stl-carrier-app")
	if err != nil {
		return err
	}
	if _, err := seller.CreateShipment(ctx, "po-1001", "Acme Exports", "Globex Imports", "4x40ft machinery"); err != nil {
		return err
	}
	if _, err := carrier.BookShipment(ctx, "po-1001", "Oceanic Lines"); err != nil {
		return err
	}
	if _, err := carrier.RecordGateIn(ctx, "po-1001"); err != nil {
		return err
	}
	return carrier.IssueBillOfLading(ctx, &tradelens.BillOfLading{
		BLID: "bl-7734", PORef: "po-1001", Carrier: "Oceanic Lines",
		Vessel: "MV Meridian", PortFrom: "Shanghai", PortTo: "Rotterdam",
		Goods: "4x40ft machinery", IssuedAt: time.Now(),
	})
}
