// Quickstart: two independent permissioned networks, one trusted
// cross-network query. This walks the ten steps of the paper's Fig. 2
// message flow and prints each as it happens.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/chaincode"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/msp"
	"repro/internal/orderer"
	"repro/internal/policy"
	"repro/internal/relay"
	"repro/internal/syscc"
	"repro/internal/wire"
)

// recordsCC is the source network's data contract: a put/get store whose
// Get is exposed cross-network (note the single AuthorizeRelayRequest call
// — the paper's source-side adaptation).
var recordsCC = chaincode.Func(func(stub chaincode.Stub) ([]byte, error) {
	switch stub.Function() {
	case "Put":
		return nil, stub.PutState("rec/"+string(stub.Args()[0]), stub.Args()[1])
	case "Get":
		if _, err := syscc.AuthorizeRelayRequest(stub, "records"); err != nil {
			return nil, err
		}
		return stub.GetState("rec/" + string(stub.Args()[0]))
	default:
		return nil, fmt.Errorf("unknown function %q", stub.Function())
	}
})

// importCC is the destination network's contract: it accepts remote data
// only after the CMDAC validates the accompanying proof.
var importCC = chaincode.Func(func(stub chaincode.Stub) ([]byte, error) {
	switch stub.Function() {
	case "Import":
		verified, err := stub.InvokeChaincode(syscc.CMDACName, syscc.CMDACValidateProof,
			syscc.ValidateProofArgs("alpha-net", "default", "records", "Get",
				stub.Args()[0], stub.Args()[1]))
		if err != nil {
			return nil, err
		}
		return verified, stub.PutState("imported/"+string(stub.Args()[1]), verified)
	default:
		return nil, fmt.Errorf("unknown function %q", stub.Function())
	}
})

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	hub := relay.NewHub()
	registry := relay.NewStaticRegistry()

	fmt.Println("== setup: two sovereign networks ==")
	alphaFab := fabric.NewNetwork("alpha-net", orderer.Config{BatchSize: 1})
	for _, org := range []string{"alpha-a", "alpha-b"} {
		if _, err := alphaFab.AddOrg(org, 1); err != nil {
			return err
		}
	}
	if err := alphaFab.Deploy("records", recordsCC, "AND('alpha-a','alpha-b')"); err != nil {
		return err
	}
	alpha, err := core.EnableInterop(alphaFab, registry, hub, core.Options{})
	if err != nil {
		return err
	}

	betaFab := fabric.NewNetwork("beta-net", orderer.Config{BatchSize: 1})
	if _, err := betaFab.AddOrg("beta-org", 1); err != nil {
		return err
	}
	if err := betaFab.Deploy("import", importCC, "'beta-org'"); err != nil {
		return err
	}
	beta, err := core.EnableInterop(betaFab, registry, hub, core.Options{})
	if err != nil {
		return err
	}

	hub.Attach("alpha-relay", alpha.Relay)
	hub.Attach("beta-relay", beta.Relay)
	registry.Register("alpha-net", "alpha-relay")
	registry.Register("beta-net", "beta-relay")
	fmt.Println("   alpha-net (2 orgs) and beta-net (1 org) running, relays attached")

	fmt.Println("== interop initialization (paper §3.3) ==")
	alphaAdmin, err := adminOf(alpha, "alpha-a")
	if err != nil {
		return err
	}
	betaAdmin, err := adminOf(beta, "beta-org")
	if err != nil {
		return err
	}
	if err := alpha.ConfigureForeignNetwork(alphaAdmin, beta.ExportConfig()); err != nil {
		return err
	}
	if err := beta.ConfigureForeignNetwork(betaAdmin, alpha.ExportConfig()); err != nil {
		return err
	}
	if err := beta.SetVerificationPolicy(betaAdmin, policy.VerificationPolicy{
		Network: "alpha-net",
		Expr:    "AND('alpha-a.peer','alpha-b.peer')",
	}); err != nil {
		return err
	}
	if err := alpha.GrantAccess(alphaAdmin, policy.AccessRule{
		Network: "beta-net", Org: "beta-org", Chaincode: "records", Function: "Get",
	}); err != nil {
		return err
	}
	fmt.Println("   configs exchanged, access rule granted, verification policy recorded")

	// Seed a record on the source ledger.
	if _, err := alphaAdmin.Submit("records", "Put", []byte("invoice-42"), []byte(`{"total":"1200 USD"}`)); err != nil {
		return err
	}
	fmt.Println("   alpha-net committed record invoice-42")

	fmt.Println("== cross-network query (Fig. 2 steps 1-9) ==")
	client, err := core.NewClient(beta, "beta-org", "beta-client")
	if err != nil {
		return err
	}
	// Every request-path call is context-first: this deadline travels in
	// the envelope, so the source relay inherits the remaining budget.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	data, err := client.RemoteQuery(ctx, core.RemoteQuerySpec{
		Network:  "alpha-net",
		Contract: "records",
		Function: "Get",
		Args:     [][]byte{[]byte("invoice-42")},
	})
	if err != nil {
		return err
	}
	fmt.Printf("   1. client submitted query to local relay (nonce %x...)\n", data.Query.Nonce[:4])
	fmt.Println("   2. local relay resolved alpha-net via discovery")
	fmt.Println("   3-4. envelope serialized, forwarded, deserialized")
	fmt.Println("   5. source relay fanned out to peers per verification policy")
	fmt.Println("   6. each peer's chaincode consulted the Exposure Control contract")
	fmt.Printf("   7. %d peers returned encrypted result + signed encrypted metadata\n", len(data.Bundle.Elements))
	fmt.Println("   8-9. proof returned through the relays to the client")
	fmt.Printf("   decrypted result: %s\n", data.Result)
	for i := range data.Bundle.Elements {
		md, err := wire.UnmarshalMetadata(data.Bundle.Elements[i].Metadata)
		if err != nil {
			return err
		}
		fmt.Printf("   attestor: %s (%s)\n", md.PeerName, md.OrgID)
	}

	fmt.Println("== local transaction embedding the proof (Fig. 2 step 10) ==")
	verified, err := client.Submit(ctx, "import", "Import", data.BundleBytes, []byte("invoice-42"))
	if err != nil {
		return err
	}
	fmt.Printf("   10. Data Acceptance validated the proof on every beta-net peer\n")
	fmt.Printf("   imported onto beta-net ledger: %s\n", verified)
	fmt.Println("done.")
	return nil
}

func adminOf(n *core.Network, orgID string) (*fabric.Gateway, error) {
	org, err := n.Fabric.Org(orgID)
	if err != nil {
		return nil, err
	}
	id, err := org.CA.Issue(orgID+"-admin", msp.RoleAdmin)
	if err != nil {
		return nil, err
	}
	return n.Fabric.Gateway(id), nil
}
