// Crossplatform: the paper's generalization claim (§5) made executable.
// TradeLens is re-hosted on a notary-attested ledger platform (a Corda-like
// design with a completely different consensus model), while We.Trade stays
// on the Fabric-model platform. The relay, wire protocol, proof format and
// the We.Trade application are reused without modification; only the
// platform driver differs.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/apps/scenario"
	"repro/internal/apps/wetrade"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	fmt.Println("== building notary-hosted TradeLens + Fabric-hosted We.Trade ==")
	world, err := scenario.BuildCrossPlatform()
	if err != nil {
		return err
	}
	fmt.Println("   STL platform: notary ledger (uniqueness via versioned facts)")
	fmt.Println("   SWT platform: Fabric model (execute-order-validate)")
	fmt.Println("   verification policy: AND('notary-alpha.peer','notary-beta.peer')")

	// Record the B/L as a notarized fact.
	version, err := world.STL.Update("bl/po-1001", 0,
		[]byte(`{"blId":"bl-7734","poRef":"po-1001","carrier":"Oceanic Lines"}`))
	if err != nil {
		return err
	}
	fmt.Printf("   B/L notarized at version %d\n", version)

	// A conflicting update is refused — the notary platform's uniqueness
	// property.
	if _, err := world.STL.Update("bl/po-1001", 0, []byte("conflicting fact")); err != nil {
		fmt.Printf("   conflicting write refused: %v\n", err)
	}

	fmt.Println("== SWT trade finance flow, unchanged from the Fabric↔Fabric case ==")
	buyer, err := wetrade.NewBuyerApp(world.SWT, "buyer")
	if err != nil {
		return err
	}
	seller, err := wetrade.NewSellerApp(world.SWT, "seller")
	if err != nil {
		return err
	}
	lc := &wetrade.LetterOfCredit{
		LCID: "lc-5001", PORef: "po-1001", Buyer: "Globex", Seller: "Acme",
		Amount: 2_500_000_00, Currency: "USD",
	}
	if _, err := buyer.RequestLC(ctx, lc); err != nil {
		return err
	}
	if _, err := buyer.IssueLC(ctx, "lc-5001"); err != nil {
		return err
	}
	if _, err := seller.AcceptLC(ctx, "lc-5001"); err != nil {
		return err
	}

	fmt.Println("== cross-platform query: Fabric network verifies notary attestations ==")
	updated, err := seller.FetchAndUploadBL(ctx, "lc-5001", "po-1001")
	if err != nil {
		return err
	}
	fmt.Printf("   L/C %s now %s with verified B/L %s\n", updated.LCID, updated.Status, updated.BLID)

	if _, err := seller.RequestPayment(ctx, "lc-5001"); err != nil {
		return err
	}
	payment, err := buyer.MakePayment(ctx, "lc-5001")
	if err != nil {
		return err
	}
	fmt.Printf("   settled %d.%02d %s\n", payment.Amount/100, payment.Amount%100, payment.Currency)
	fmt.Println("done.")
	return nil
}
