// Tradefinance: the paper's full proof-of-concept (§4, Fig. 3): Simplified
// TradeLens and Simplified We.Trade run side by side; a letter of credit on
// SWT is honoured only after the bill of lading is fetched from STL with a
// consensus-backed proof. The example also attempts the fraud this design
// prevents — a forged B/L — and shows it rejected on-chain.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/apps/scenario"
	"repro/internal/apps/tradelens"
	"repro/internal/apps/wetrade"
	"repro/internal/proof"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	fmt.Println("== building STL (TradeLens) and SWT (We.Trade), wiring relays ==")
	world, err := scenario.Build()
	if err != nil {
		return err
	}
	actors, err := world.NewActors()
	if err != nil {
		return err
	}
	fmt.Println("   STL: seller-org + carrier-org (Fabric, 2 peers)")
	fmt.Println("   SWT: buyer-bank-org + seller-bank-org (Fabric, 4 peers)")
	fmt.Println("   access rule:", "<we-trade, seller-bank-org, TradeLensCC, GetBillOfLading>")
	fmt.Println("   verification policy: AND('seller-org.peer','carrier-org.peer')")

	fmt.Println("== step 1: purchase order po-1001 arranged on STL ==")
	if _, err := actors.STLSeller.CreateShipment(ctx, "po-1001", "Acme Exports", "Globex Imports", "4x40ft machinery"); err != nil {
		return err
	}

	fmt.Println("== steps 2-4: L/C lc-5001 issued and accepted on SWT ==")
	lc := &wetrade.LetterOfCredit{
		LCID: "lc-5001", PORef: "po-1001",
		Buyer: "Globex Imports", Seller: "Acme Exports",
		BuyerBank: "First Buyer Bank", SellerBank: "Seller Trust",
		Amount: 2_500_000_00, Currency: "USD",
	}
	if _, err := actors.SWTBuyer.RequestLC(ctx, lc); err != nil {
		return err
	}
	if _, err := actors.SWTBuyer.IssueLC(ctx, "lc-5001"); err != nil {
		return err
	}
	if _, err := actors.SWTSeller.AcceptLC(ctx, "lc-5001"); err != nil {
		return err
	}

	fmt.Println("== fraud attempt: seller forges a B/L before any shipment ==")
	forged := &proof.Bundle{
		SourceNetwork: tradelens.NetworkID,
		Result:        []byte(`{"blId":"bl-fake","poRef":"po-1001"}`),
		Nonce:         []byte("made-up-nonce"),
	}
	if err := actors.SWTSeller.UploadForgedBL(ctx, "lc-5001", forged.Marshal()); err != nil {
		fmt.Printf("   rejected on-chain, as designed: %v\n", firstLine(err))
	} else {
		return fmt.Errorf("forged B/L was accepted — this must never happen")
	}

	fmt.Println("== steps 5-8: booking, gate-in, genuine B/L issued on STL ==")
	if _, err := actors.STLCarrier.BookShipment(ctx, "po-1001", "Oceanic Lines"); err != nil {
		return err
	}
	if _, err := actors.STLCarrier.RecordGateIn(ctx, "po-1001"); err != nil {
		return err
	}
	bl := &tradelens.BillOfLading{
		BLID: "bl-7734", PORef: "po-1001", Carrier: "Oceanic Lines",
		Vessel: "MV Meridian", PortFrom: "Shanghai", PortTo: "Rotterdam",
		Goods: "4x40ft machinery", IssuedAt: time.Now(),
	}
	if err := actors.STLCarrier.IssueBillOfLading(ctx, bl); err != nil {
		return err
	}
	fmt.Println("   bl-7734 committed on STL by consensus of both organizations")

	fmt.Println("== step 9: cross-network query with proof (Fig. 4) ==")
	updated, err := actors.SWTSeller.FetchAndUploadBL(ctx, "lc-5001", "po-1001")
	if err != nil {
		return err
	}
	fmt.Printf("   L/C %s now %s with verified B/L %s\n", updated.LCID, updated.Status, updated.BLID)

	fmt.Println("== step 10: payment ==")
	if _, err := actors.SWTSeller.RequestPayment(ctx, "lc-5001"); err != nil {
		return err
	}
	payment, err := actors.SWTBuyer.MakePayment(ctx, "lc-5001")
	if err != nil {
		return err
	}
	fmt.Printf("   settled %d.%02d %s under %s\n",
		payment.Amount/100, payment.Amount%100, payment.Currency, payment.LCID)

	final, err := actors.SWTBuyer.LC(ctx, "lc-5001")
	if err != nil {
		return err
	}
	fmt.Printf("final L/C status: %s\n", final.Status)
	fmt.Println("done.")
	return nil
}

func firstLine(err error) string {
	msg := err.Error()
	for i, c := range msg {
		if c == '\n' {
			return msg[:i]
		}
	}
	if len(msg) > 140 {
		return msg[:140] + "..."
	}
	return msg
}
