// Atomicswap: the asset-exchange extension (§6/§7 of the paper) built on
// top of the trusted data transfer protocol. Alice swaps gold on one
// network for Bob's silver on another using hash time-locked contracts;
// the step that usually requires watching the counterparty's chain —
// learning the revealed preimage — is done with a proof-carrying
// cross-network query instead.
package main

import (
	"context"
	"encoding/hex"
	"fmt"
	"log"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/htlc"
	"repro/internal/msp"
	"repro/internal/orderer"
	"repro/internal/policy"
	"repro/internal/relay"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func buildAssetNet(id string, registry relay.Discovery, hub relay.Transport) (*core.Network, error) {
	fab := fabric.NewNetwork(id, orderer.Config{BatchSize: 1})
	for _, org := range []string{id + "-org-a", id + "-org-b"} {
		if _, err := fab.AddOrg(org, 1); err != nil {
			return nil, err
		}
	}
	endorse := fmt.Sprintf("AND('%s-org-a','%s-org-b')", id, id)
	if err := fab.Deploy(htlc.ChaincodeName, &htlc.Chaincode{}, endorse); err != nil {
		return nil, err
	}
	return core.EnableInterop(fab, registry, hub, core.Options{})
}

func adminOf(n *core.Network, orgID string) (*fabric.Gateway, error) {
	org, err := n.Fabric.Org(orgID)
	if err != nil {
		return nil, err
	}
	id, err := org.CA.Issue(orgID+"-admin", msp.RoleAdmin)
	if err != nil {
		return nil, err
	}
	return n.Fabric.Gateway(id), nil
}

func run() error {
	ctx := context.Background()
	hub := relay.NewHub()
	registry := relay.NewStaticRegistry()

	fmt.Println("== two asset networks: gold and silver ==")
	gold, err := buildAssetNet("gold", registry, hub)
	if err != nil {
		return err
	}
	silver, err := buildAssetNet("silver", registry, hub)
	if err != nil {
		return err
	}
	hub.Attach("gold-relay", gold.Relay)
	hub.Attach("silver-relay", silver.Relay)
	registry.Register("gold", "gold-relay")
	registry.Register("silver", "silver-relay")

	// Interop initialization for the preimage query (gold side verifies
	// proofs from silver).
	goldAdmin, err := adminOf(gold, "gold-org-b")
	if err != nil {
		return err
	}
	silverAdmin, err := adminOf(silver, "silver-org-a")
	if err != nil {
		return err
	}
	if err := gold.ConfigureForeignNetwork(goldAdmin, silver.ExportConfig()); err != nil {
		return err
	}
	if err := gold.SetVerificationPolicy(goldAdmin, policy.VerificationPolicy{
		Network: "silver", Expr: "AND('silver-org-a.peer','silver-org-b.peer')",
	}); err != nil {
		return err
	}
	if err := silver.ConfigureForeignNetwork(silverAdmin, gold.ExportConfig()); err != nil {
		return err
	}
	if err := silver.GrantAccess(silverAdmin, policy.AccessRule{
		Network: "gold", Org: "gold-org-b", Chaincode: htlc.ChaincodeName, Function: htlc.FnGetLock,
	}); err != nil {
		return err
	}

	aliceGold, err := core.NewClient(gold, "gold-org-a", "alice")
	if err != nil {
		return err
	}
	aliceSilver, err := core.NewClient(silver, "silver-org-a", "alice")
	if err != nil {
		return err
	}
	bobGold, err := core.NewClient(gold, "gold-org-b", "bob")
	if err != nil {
		return err
	}
	bobSilver, err := core.NewClient(silver, "silver-org-b", "bob")
	if err != nil {
		return err
	}
	if _, err := aliceGold.Submit(ctx, htlc.ChaincodeName, htlc.FnMint, []byte("alice"), []byte("100")); err != nil {
		return err
	}
	if _, err := bobSilver.Submit(ctx, htlc.ChaincodeName, htlc.FnMint, []byte("bob"), []byte("50")); err != nil {
		return err
	}
	fmt.Println("   alice holds 100 gold; bob holds 50 silver")

	preimage := []byte("alices-secret-preimage")
	hashlock := htlc.HashPreimage(preimage)
	fmt.Printf("== swap 40 gold <-> 20 silver under hashlock %s... ==\n", hashlock[:16])

	lockArgs := func(lockID, receiver string, expiry time.Time, amount int64) [][]byte {
		return [][]byte{
			[]byte(lockID), []byte(receiver), []byte(hashlock),
			[]byte(strconv.FormatInt(expiry.UnixNano(), 10)),
			[]byte(strconv.FormatInt(amount, 10)),
		}
	}
	if _, err := aliceGold.Submit(ctx, htlc.ChaincodeName, htlc.FnLock,
		lockArgs("swap-g", "bob", time.Now().Add(2*time.Hour), 40)...); err != nil {
		return err
	}
	fmt.Println("   1. alice locked 40 gold for bob (expiry 2h)")
	if _, err := bobSilver.Submit(ctx, htlc.ChaincodeName, htlc.FnLock,
		lockArgs("swap-s", "alice", time.Now().Add(time.Hour), 20)...); err != nil {
		return err
	}
	fmt.Println("   2. bob locked 20 silver for alice (expiry 1h)")

	if _, err := aliceSilver.Submit(ctx, htlc.ChaincodeName, htlc.FnClaim,
		[]byte("swap-s"), []byte(hex.EncodeToString(preimage))); err != nil {
		return err
	}
	fmt.Println("   3. alice claimed the silver, revealing the preimage on silver-net")

	data, err := bobGold.RemoteQuery(ctx, core.RemoteQuerySpec{
		Network: "silver", Contract: htlc.ChaincodeName, Function: htlc.FnGetLock,
		Args: [][]byte{[]byte("swap-s")},
	})
	if err != nil {
		return err
	}
	revealed, err := htlc.UnmarshalLock(data.Result)
	if err != nil {
		return err
	}
	fmt.Printf("   4. bob fetched the revealed preimage cross-network with proof (%d attestations)\n",
		len(data.Bundle.Elements))

	if _, err := bobGold.Submit(ctx, htlc.ChaincodeName, htlc.FnClaim,
		[]byte("swap-g"), []byte(revealed.Preimage)); err != nil {
		return err
	}
	fmt.Println("   5. bob claimed the gold with the proven preimage")

	bobGoldBal, _ := bobGold.Evaluate(ctx, htlc.ChaincodeName, htlc.FnBalance, []byte("bob"))
	aliceSilverBal, _ := aliceSilver.Evaluate(ctx, htlc.ChaincodeName, htlc.FnBalance, []byte("alice"))
	fmt.Printf("final: bob holds %s gold, alice holds %s silver — swap complete\n", bobGoldBal, aliceSilverBal)
	return nil
}
