// Multirelay: the paper's availability analysis (§5) made executable. The
// source network deploys redundant relays; the example crashes the primary
// mid-run and shows cross-network queries failing over to the standby —
// and, with health-aware discovery, shows failover stop wasting attempts
// on the dead primary after its first failure. It then takes both relays
// down to show the failure mode the paper attributes to relay DoS.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/apps/scenario"
	"repro/internal/apps/tradelens"
	"repro/internal/core"
	"repro/internal/relay"
)

const (
	primaryAddr = "stl-relay-primary"
	standbyAddr = "stl-relay-standby"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	hub := relay.NewHub()
	registry := relay.NewStaticRegistry()
	world, err := scenario.BuildWith(registry, hub)
	if err != nil {
		return err
	}

	// Redundant relays for STL: both addresses front the same relay
	// service (the paper's DoS mitigation: "adding redundant relays").
	hub.Attach(primaryAddr, world.STL.Relay)
	hub.Attach(standbyAddr, world.STL.Relay)
	registry.Register(tradelens.NetworkID, primaryAddr, standbyAddr)
	hub.Attach(scenario.SWTRelayAddr, world.SWT.Relay)
	registry.Register("we-trade", scenario.SWTRelayAddr)

	actors, err := world.NewActors()
	if err != nil {
		return err
	}
	if _, err := actors.STLSeller.CreateShipment(ctx, "po-1001", "S", "B", "goods"); err != nil {
		return err
	}
	if _, err := actors.STLCarrier.BookShipment(ctx, "po-1001", "C"); err != nil {
		return err
	}
	if _, err := actors.STLCarrier.RecordGateIn(ctx, "po-1001"); err != nil {
		return err
	}
	if err := actors.STLCarrier.IssueBillOfLading(ctx, &tradelens.BillOfLading{
		BLID: "bl-1", PORef: "po-1001", Carrier: "C",
	}); err != nil {
		return err
	}

	spec := core.RemoteQuerySpec{
		Network:  tradelens.NetworkID,
		Contract: tradelens.ChaincodeName,
		Function: tradelens.FnGetBillOfLading,
		Args:     [][]byte{[]byte("po-1001")},
	}
	client := actors.SWTSeller.Client()

	fmt.Println("== both relays up ==")
	if _, err := client.RemoteQuery(ctx, spec); err != nil {
		return err
	}
	fmt.Println("   query served")

	fmt.Println("== primary relay crashed: service continues, waste stays bounded ==")
	hub.SetDown(primaryAddr, true)
	before := world.SWT.Relay.Stats().FanoutAttempts
	const postCrashQueries = 6
	for i := 0; i < postCrashQueries; i++ {
		if _, err := client.RemoteQuery(ctx, spec); err != nil {
			return fmt.Errorf("post-crash query %d failed: %w", i, err)
		}
	}
	attempts := world.SWT.Relay.Stats().FanoutAttempts - before
	if attempts > postCrashQueries+1 {
		return fmt.Errorf("dead primary retried %d times across %d queries; health demotion not working",
			attempts-postCrashQueries, postCrashQueries)
	}
	fmt.Printf("   %d queries served with %d transport attempts — the dead primary cost at most\n",
		postCrashQueries, attempts)
	fmt.Printf("   one wasted attempt before its health score demoted it (strict address-list\n")
	fmt.Printf("   order would have retried it first on every query: %d attempts)\n", 2*postCrashQueries)

	fmt.Println("== every relay hung, not crashed: the deadline bounds the stall ==")
	// Both relays wedged (health ordering would sidestep a single hung
	// relay the same way it sidestepped the crashed primary above).
	hub.SetDown(primaryAddr, false)
	hub.SetStall(primaryAddr, true)
	hub.SetStall(standbyAddr, true)
	deadlineCtx, cancel := context.WithTimeout(ctx, 500*time.Millisecond)
	start := time.Now()
	_, err = client.RemoteQuery(deadlineCtx, spec)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("expected deadline expiry against the hung relays, got %v", err)
	}
	fmt.Printf("   query returned in %s instead of hanging forever: %v\n",
		time.Since(start).Round(time.Millisecond), err)
	hub.SetStall(primaryAddr, false)
	hub.SetStall(standbyAddr, false)

	fmt.Println("== both relays down (the paper's DoS scenario) ==")
	hub.SetDown(primaryAddr, true)
	hub.SetDown(standbyAddr, true)
	_, err = client.RemoteQuery(ctx, spec)
	if err == nil {
		return errors.New("query succeeded with every relay down")
	}
	fmt.Printf("   query failed as expected: %v\n", err)

	fmt.Println("== primary restored ==")
	hub.SetDown(primaryAddr, false)
	if _, err := client.RemoteQuery(ctx, spec); err != nil {
		return err
	}
	fmt.Println("   service recovered")
	fmt.Println("done.")
	return nil
}
