// Top-level benchmark harness: one benchmark per experiment in
// EXPERIMENTS.md (E1-E7 map the paper's figures and evaluation claims;
// P1-P6 are supplemental performance characterizations the paper's
// industry-track format omits). Run with:
//
//	go test -bench=. -benchmem .
package repro_test

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/apps/scenario"
	"repro/internal/apps/tradelens"
	"repro/internal/apps/wetrade"
	"repro/internal/chaincode"
	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/endorsement"
	"repro/internal/fabric"
	"repro/internal/ledger"
	"repro/internal/msp"
	"repro/internal/orderer"
	"repro/internal/peer"
	"repro/internal/policy"
	"repro/internal/proof"
	"repro/internal/relay"
	"repro/internal/syscc"
	"repro/internal/wire"
)

// ctx is the benchmarks' shared unbounded context; per-benchmark deadlines
// are derived where a bounded budget is the point of the measurement.
var ctx = context.Background()

// coldQueryID survives benchmark reruns at growing b.N so cold-path request
// IDs never repeat within one process (see BenchmarkE7AttestationCache).
var coldQueryID atomic.Uint64

// assembleOne builds a single-endorsement transaction for the batching
// ablation.
func assembleOne(inv chaincode.Invocation, resp *peer.ProposalResponse) (*ledger.Transaction, error) {
	return peer.AssembleTransaction(inv, []*peer.ProposalResponse{resp})
}

// policyFor is the verification policy used by the payload-size sweep.
func policyFor(network string) policy.VerificationPolicy {
	return policy.VerificationPolicy{Network: network, Expr: "AND('org-a.peer','org-b.peer')"}
}

// accessFor is the access rule used by the payload-size sweep.
func accessFor() policy.AccessRule {
	return policy.AccessRule{Network: "dst", Org: "dst-org", Chaincode: "data", Function: "Get"}
}

// tradeWorld builds the standard STL/SWT world with a committed B/L.
func tradeWorld(b *testing.B) (*scenario.TradeWorld, *scenario.Actors) {
	b.Helper()
	w, err := scenario.Build()
	if err != nil {
		b.Fatal(err)
	}
	actors, err := w.NewActors()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := actors.STLSeller.CreateShipment(ctx, "po-1001", "S", "B", "goods"); err != nil {
		b.Fatal(err)
	}
	if _, err := actors.STLCarrier.BookShipment(ctx, "po-1001", "C"); err != nil {
		b.Fatal(err)
	}
	if _, err := actors.STLCarrier.RecordGateIn(ctx, "po-1001"); err != nil {
		b.Fatal(err)
	}
	if err := actors.STLCarrier.IssueBillOfLading(ctx, &tradelens.BillOfLading{
		BLID: "bl-1", PORef: "po-1001", Carrier: "C",
	}); err != nil {
		b.Fatal(err)
	}
	return w, actors
}

func blQuerySpec(po string) core.RemoteQuerySpec {
	return core.RemoteQuerySpec{
		Network:  tradelens.NetworkID,
		Contract: tradelens.ChaincodeName,
		Function: tradelens.FnGetBillOfLading,
		Args:     [][]byte{[]byte(po)},
	}
}

// BenchmarkE1EndToEndQuery measures the complete Fig. 2 / Fig. 4 message
// flow: query via relays, proof collection on two organizations, response
// decryption and client-side proof verification.
func BenchmarkE1EndToEndQuery(b *testing.B) {
	_, actors := tradeWorld(b)
	client := actors.SWTSeller.Client()
	spec := blQuerySpec("po-1001")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.RemoteQuery(ctx, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2EncryptionOverhead isolates the confidentiality cost the
// paper's design pays so untrusted relays learn nothing: a full attestation
// (sign + encrypt metadata + encrypt result) versus the bare signature an
// encryption-free design would use.
func BenchmarkE2EncryptionOverhead(b *testing.B) {
	ca, _ := msp.NewCA("org")
	attestor, _ := ca.Issue("peer0", msp.RolePeer)
	clientKey, _ := cryptoutil.GenerateKey()
	nonce, _ := cryptoutil.NewNonce()
	qd := proof.QueryDigest("net", "default", "cc", "fn", nil, nonce)
	result := make([]byte, 4096)
	now := time.Now()

	b.Run("attestation-with-encryption", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := proof.BuildAttestationPinned(attestor, "net", qd, nil, result, nonce, &clientKey.PublicKey, now); err != nil {
				b.Fatal(err)
			}
			if _, err := proof.EncryptResult(&clientKey.PublicKey, result); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("signature-only-baseline", func(b *testing.B) {
		md := wire.Metadata{
			NetworkID: "net", PeerName: attestor.Name, OrgID: attestor.OrgID,
			QueryDigest: qd, ResultDigest: cryptoutil.Digest(result), Nonce: nonce,
		}
		plain := md.Marshal()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := attestor.Sign(plain); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE3ProofValidation measures the destination-side Data Acceptance
// check (signature verification, certificate chains, policy evaluation) as
// the attestor count grows.
func BenchmarkE3ProofValidation(b *testing.B) {
	for _, attestors := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("attestors-%d", attestors), func(b *testing.B) {
			cas := make([]*msp.CA, attestors)
			identities := make([]*msp.Identity, attestors)
			roots := make(map[string][]byte, attestors)
			policyExpr := ""
			for i := 0; i < attestors; i++ {
				org := fmt.Sprintf("org-%d", i)
				cas[i], _ = msp.NewCA(org)
				identities[i], _ = cas[i].Issue(org+"-peer0", msp.RolePeer)
				roots[org] = cas[i].RootCertPEM()
				if i > 0 {
					policyExpr += ","
				}
				policyExpr += "'" + org + "'"
			}
			if attestors > 1 {
				policyExpr = "AND(" + policyExpr + ")"
			}
			verifier, _ := msp.NewVerifier(roots)
			clientKey, _ := cryptoutil.GenerateKey()
			nonce, _ := cryptoutil.NewNonce()
			q := &wire.Query{TargetNetwork: "net", Ledger: "default", Contract: "cc", Function: "fn", Nonce: nonce}
			qd := proof.QueryDigestOf(q)
			result := make([]byte, 4096)
			encResult, _ := proof.EncryptResult(&clientKey.PublicKey, result)
			resp := &wire.QueryResponse{EncryptedResult: encResult}
			for _, id := range identities {
				att, _ := proof.BuildAttestationPinned(id, "net", qd, nil, result, nonce, &clientKey.PublicKey, time.Now())
				resp.Attestations = append(resp.Attestations, att)
			}
			bundle, err := proof.OpenResponse(clientKey, q, resp)
			if err != nil {
				b.Fatal(err)
			}
			vp := endorsement.MustParse(policyExpr)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := proof.Verify(bundle, verifier, vp, qd, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4FailoverLatency compares a query served by the primary relay
// against one that must fail over to a standby after the primary is down —
// the cost of the paper's relay-redundancy availability mitigation. With
// health-aware discovery that cost is paid once, not per query: the dead
// primary is demoted after its first failed attempt, so the steady-state
// failover number converges on the primary-up number.
func BenchmarkE4FailoverLatency(b *testing.B) {
	build := func(b *testing.B, primaryDown bool) (*core.Client, core.RemoteQuerySpec) {
		hub := relay.NewHub()
		registry := relay.NewStaticRegistry()
		w, err := scenario.BuildWith(registry, hub)
		if err != nil {
			b.Fatal(err)
		}
		hub.Attach("primary", w.STL.Relay)
		hub.Attach("standby", w.STL.Relay)
		registry.Register(tradelens.NetworkID, "primary", "standby")
		hub.Attach(scenario.SWTRelayAddr, w.SWT.Relay)
		registry.Register(wetrade.NetworkID, scenario.SWTRelayAddr)
		actors, err := w.NewActors()
		if err != nil {
			b.Fatal(err)
		}
		_, _ = actors.STLSeller.CreateShipment(ctx, "po-1001", "S", "B", "g")
		_, _ = actors.STLCarrier.BookShipment(ctx, "po-1001", "C")
		_, _ = actors.STLCarrier.RecordGateIn(ctx, "po-1001")
		_ = actors.STLCarrier.IssueBillOfLading(ctx, &tradelens.BillOfLading{BLID: "bl-1", PORef: "po-1001", Carrier: "C"})
		hub.SetDown("primary", primaryDown)
		return actors.SWTSeller.Client(), blQuerySpec("po-1001")
	}
	b.Run("primary-up", func(b *testing.B) {
		client, spec := build(b, false)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.RemoteQuery(ctx, spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("failover-to-standby", func(b *testing.B) {
		client, spec := build(b, true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.RemoteQuery(ctx, spec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE6CrossPlatformQuery measures the same end-to-end flow with the
// source data on the notary platform, isolating the driver substitution.
func BenchmarkE6CrossPlatformQuery(b *testing.B) {
	w, err := scenario.BuildCrossPlatform()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := w.STL.Update("bl/po-1001", 0, []byte(`{"blId":"bl-1","poRef":"po-1001"}`)); err != nil {
		b.Fatal(err)
	}
	seller, err := wetrade.NewSellerApp(w.SWT, "seller")
	if err != nil {
		b.Fatal(err)
	}
	spec := blQuerySpec("po-1001")
	client := seller.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.RemoteQuery(ctx, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7TradeLifecycle measures the complete Fig. 3 business flow: 9
// on-ledger transactions across two networks plus the cross-network query.
func BenchmarkE7TradeLifecycle(b *testing.B) {
	w, err := scenario.Build()
	if err != nil {
		b.Fatal(err)
	}
	actors, err := w.NewActors()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		po := fmt.Sprintf("po-%d", i)
		lcID := fmt.Sprintf("lc-%d", i)
		if _, err := actors.STLSeller.CreateShipment(ctx, po, "S", "B", "goods"); err != nil {
			b.Fatal(err)
		}
		lc := &wetrade.LetterOfCredit{LCID: lcID, PORef: po, Buyer: "B", Seller: "S", Amount: 100, Currency: "USD"}
		if _, err := actors.SWTBuyer.RequestLC(ctx, lc); err != nil {
			b.Fatal(err)
		}
		if _, err := actors.SWTBuyer.IssueLC(ctx, lcID); err != nil {
			b.Fatal(err)
		}
		if _, err := actors.SWTSeller.AcceptLC(ctx, lcID); err != nil {
			b.Fatal(err)
		}
		if _, err := actors.STLCarrier.BookShipment(ctx, po, "C"); err != nil {
			b.Fatal(err)
		}
		if _, err := actors.STLCarrier.RecordGateIn(ctx, po); err != nil {
			b.Fatal(err)
		}
		if err := actors.STLCarrier.IssueBillOfLading(ctx, &tradelens.BillOfLading{
			BLID: "bl-" + po, PORef: po, Carrier: "C",
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := actors.SWTSeller.FetchAndUploadBL(ctx, lcID, po); err != nil {
			b.Fatal(err)
		}
		if _, err := actors.SWTSeller.RequestPayment(ctx, lcID); err != nil {
			b.Fatal(err)
		}
		if _, err := actors.SWTBuyer.MakePayment(ctx, lcID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7AttestationCache isolates the relay's content-addressed
// attestation cache on the query hot path. "cold-miss" gives every
// iteration a fresh request ID (fresh nonce, hence a new content address),
// paying the full per-query proof build: one ECDSA signature and one ECIES
// encryption per verification-policy org plus the result encryption.
// "warm-hit" repeats one identical query (pinned request ID, deterministic
// nonce): after the priming call every timed iteration is served the
// previously built proof verbatim — zero signatures, zero encryptions —
// which the Stats.AttestationCacheHits assertion at the end enforces.
func BenchmarkE7AttestationCache(b *testing.B) {
	w, actors := tradeWorld(b)
	client := actors.SWTSeller.Client()
	b.Run("cold-miss", func(b *testing.B) {
		spec := blQuerySpec("po-1001")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// The counter persists across the framework's reruns of this
			// function, so an ID cached during a smaller-N rerun can never
			// be served from the cache inside the "cold" loop.
			spec.RequestID = fmt.Sprintf("bench-cold-%d", coldQueryID.Add(1))
			if _, err := client.RemoteQuery(ctx, spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-hit", func(b *testing.B) {
		// An effectively unbounded TTL so a long -benchtime cannot expire
		// the primed entry mid-loop and trip the hit assertion below.
		w.STL.Driver.ConfigureAttestationCache(1024, 24*time.Hour)
		spec := blQuerySpec("po-1001")
		spec.RequestID = "bench-warm"
		// Two priming misses outside the timed loop: admission is
		// two-touch, so the first records the key and the second stores.
		for i := 0; i < 2; i++ {
			if _, err := client.RemoteQuery(ctx, spec); err != nil {
				b.Fatal(err)
			}
		}
		before := w.STL.Relay.Stats().AttestationCacheHits
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.RemoteQuery(ctx, spec); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if hits := w.STL.Relay.Stats().AttestationCacheHits - before; hits < uint64(b.N) {
			b.Fatalf("warm run hit the cache %d times, want >= %d", hits, b.N)
		}
	})
}

// BenchmarkE8BatchedAttestation sweeps the Merkle-batching window width on
// the cold query path: each iteration fires `width` concurrent cold
// queries (fresh request IDs, so the attestation cache never helps) with
// the driver's window sized to flush exactly when all of them are pending.
// Every attestor signs once per window regardless of width, so the
// reported ns/query falls as the window fills while the single-signature
// ablation (window-1) pays one ECDSA signature per attestor per query.
// Each client still verifies its own leaf + inclusion proof end to end.
func BenchmarkE8BatchedAttestation(b *testing.B) {
	w, actors := tradeWorld(b)
	client := actors.SWTSeller.Client()
	for _, width := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("window-%d", width), func(b *testing.B) {
			// maxPending = width: the window flushes the instant the last
			// concurrent query arrives, so the sweep measures batching, not
			// the timer (the generous 50ms window is a straggler backstop,
			// never the steady state). window-1 degenerates to the
			// single-signature path.
			w.STL.Driver.ConfigureAttestationBatching(50*time.Millisecond, width)
			defer w.STL.Driver.ConfigureAttestationBatching(0, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				errs := make([]error, width)
				sizes := make([]uint64, width)
				for q := 0; q < width; q++ {
					wg.Add(1)
					go func(q int) {
						defer wg.Done()
						spec := blQuerySpec("po-1001")
						spec.RequestID = fmt.Sprintf("bench-e8-%d", coldQueryID.Add(1))
						data, err := client.RemoteQuery(ctx, spec)
						if err != nil {
							errs[q] = err
							return
						}
						sizes[q] = data.Bundle.Elements[0].BatchSize
					}(q)
				}
				wg.Wait()
				for q := 0; q < width; q++ {
					if errs[q] != nil {
						b.Fatal(errs[q])
					}
					if width > 1 && sizes[q] < 2 {
						b.Fatalf("query %d served un-batched (batch size %d) at width %d", q, sizes[q], width)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*width), "ns/query")
		})
	}
}

// BenchmarkE9SessionedECIES measures ECIES amortization on the batched
// cold-query path. Each iteration fires `width` concurrent cold queries
// through one Merkle window (as in E8) and the sweep compares three
// encryption regimes on the same driver:
//
//   - classic: sessioned mode off — every envelope pays a fresh ephemeral
//     keygen plus ECDH agreement, attestors+1 per query.
//   - session-cold: the session pool is replaced before every window, so
//     each window starts with no cached secrets: (attestors+1) agreements
//     per window, amortized to (attestors+1)/width per query.
//   - session-warm: one long-lived pool — the warm-poller steady state,
//     where every window after the first seals under cached secrets and
//     ECDH per query goes to ~0.
//
// ecdh/query is measured from the driver's own crypto-op counters, not
// modeled.
func BenchmarkE9SessionedECIES(b *testing.B) {
	w, actors := tradeWorld(b)
	client := actors.SWTSeller.Client()
	for _, width := range []int{8, 64} {
		for _, mode := range []string{"classic", "session-cold", "session-warm"} {
			b.Run(fmt.Sprintf("window-%d/%s", width, mode), func(b *testing.B) {
				// maxPending = width: windows flush when full, the 50ms
				// timer is only a straggler backstop (see E8).
				w.STL.Driver.ConfigureAttestationBatching(50*time.Millisecond, width)
				defer w.STL.Driver.ConfigureAttestationBatching(0, 0)
				switch mode {
				case "classic":
					w.STL.Driver.ConfigureSessionedECIES(0)
				default:
					w.STL.Driver.ConfigureSessionedECIES(time.Hour)
				}
				defer w.STL.Driver.ConfigureSessionedECIES(cryptoutil.DefaultSessionTTL)

				runWindow := func() {
					var wg sync.WaitGroup
					errs := make([]error, width)
					for q := 0; q < width; q++ {
						wg.Add(1)
						go func(q int) {
							defer wg.Done()
							spec := blQuerySpec("po-1001")
							spec.RequestID = fmt.Sprintf("bench-e9-%d", coldQueryID.Add(1))
							_, errs[q] = client.RemoteQuery(ctx, spec)
						}(q)
					}
					wg.Wait()
					for q := 0; q < width; q++ {
						if errs[q] != nil {
							b.Fatal(errs[q])
						}
					}
				}
				if mode == "session-warm" {
					// Pay the one-time agreements outside the measurement:
					// the steady state being measured is the warm poller.
					runWindow()
				}
				ecdhBefore, _, _ := w.STL.Driver.CryptoOps()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if mode == "session-cold" {
						// A fresh pool discards every cached secret: this
						// window is the first one its requesters ever hit.
						w.STL.Driver.ConfigureSessionedECIES(time.Hour)
					}
					runWindow()
				}
				b.StopTimer()
				ecdhAfter, _, _ := w.STL.Driver.CryptoOps()
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*width), "ns/query")
				b.ReportMetric(float64(ecdhAfter-ecdhBefore)/float64(b.N*width), "ecdh/query")
			})
		}
	}
}

// BenchmarkE10MultiHop sweeps the query hop depth over the TCP relay
// chain: hops-1 is the direct two-network deployment (no forwarding hub, no
// hop pins), hops-2 routes through one intermediate hub network, hops-3
// through two. Each added hop pays one more TCP round trip plus the hop-pin
// work — the hub verifies the downstream chain and signs its own pin, the
// origin verifies one more pin — so the per-hop increment isolates the cost
// of the chained path authentication.
func BenchmarkE10MultiHop(b *testing.B) {
	for hubs := 0; hubs <= 2; hubs++ {
		b.Run(fmt.Sprintf("hops-%d", hubs+1), func(b *testing.B) {
			d, err := scenario.BuildTCPChain(hubs, 1)
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			actors, err := d.World.NewActors()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := actors.STLSeller.CreateShipment(ctx, "po-1001", "S", "B", "goods"); err != nil {
				b.Fatal(err)
			}
			if _, err := actors.STLCarrier.BookShipment(ctx, "po-1001", "C"); err != nil {
				b.Fatal(err)
			}
			if _, err := actors.STLCarrier.RecordGateIn(ctx, "po-1001"); err != nil {
				b.Fatal(err)
			}
			if err := actors.STLCarrier.IssueBillOfLading(ctx, &tradelens.BillOfLading{
				BLID: "bl-1", PORef: "po-1001", Carrier: "C",
			}); err != nil {
				b.Fatal(err)
			}
			client, err := core.NewClient(d.World.SWT, wetrade.SellerBankOrg, "bench-e10")
			if err != nil {
				b.Fatal(err)
			}
			spec := blQuerySpec("po-1001")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				data, err := client.RemoteQuery(ctx, spec)
				if err != nil {
					b.Fatal(err)
				}
				if len(data.Path) != hubs {
					b.Fatalf("verified path %v, want %d hops", data.Path, hubs)
				}
			}
		})
	}
}

// BenchmarkP1WireCodec measures the network-neutral protocol codec.
func BenchmarkP1WireCodec(b *testing.B) {
	q := &wire.Query{
		RequestID: "req", RequestingNetwork: "we-trade", TargetNetwork: "tradelens",
		Ledger: "default", Contract: "TradeLensCC", Function: "GetBillOfLading",
		Args: [][]byte{[]byte("po-1001")}, PolicyExpr: "AND('a','b')",
		RequesterCertPEM: make([]byte, 800), Nonce: make([]byte, 24),
	}
	buf := q.Marshal()
	b.Run("marshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = q.Marshal()
		}
	})
	b.Run("unmarshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := wire.UnmarshalQuery(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkP2ProofGeneration measures source-side proof generation as the
// attestor count grows (proof size scales linearly with the verification
// policy's breadth).
func BenchmarkP2ProofGeneration(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("attestors-%d", n), func(b *testing.B) {
			identities := make([]*msp.Identity, n)
			for i := range identities {
				ca, _ := msp.NewCA(fmt.Sprintf("org-%d", i))
				identities[i], _ = ca.Issue("peer0", msp.RolePeer)
			}
			clientKey, _ := cryptoutil.GenerateKey()
			nonce, _ := cryptoutil.NewNonce()
			qd := proof.QueryDigest("net", "default", "cc", "fn", nil, nonce)
			result := make([]byte, 4096)
			now := time.Now()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, id := range identities {
					if _, err := proof.BuildAttestationPinned(id, "net", qd, nil, result, nonce, &clientKey.PublicKey, now); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkP3PolicyEvaluation measures verification-policy evaluation as
// expressions widen.
func BenchmarkP3PolicyEvaluation(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("orgs-%d", n), func(b *testing.B) {
			expr := ""
			signers := make([]endorsement.Principal, n)
			for i := 0; i < n; i++ {
				if i > 0 {
					expr += ","
				}
				expr += fmt.Sprintf("'org-%d'", i)
				signers[i] = endorsement.Principal{OrgID: fmt.Sprintf("org-%d", i), Role: msp.RolePeer}
			}
			p := endorsement.MustParse("AND(" + expr + ")")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !p.Satisfied(signers) {
					b.Fatal("unsatisfied")
				}
			}
		})
	}
}

// BenchmarkP4CommitThroughput is the commit-pipeline ablation. The batch-N
// sub-benchmarks sweep the synchronous orderer's batch size (the original
// block-batching ablation); the committers-N sub-benchmarks hold the
// pipelined orderer fixed and sweep the peer's commit worker pool over a
// conflict-free workload, where committers-1 is the serial fallback and the
// wider pools parallelize endorsement verification and write application.
func BenchmarkP4CommitThroughput(b *testing.B) {
	deployKV := func(b *testing.B, n *fabric.Network) (*fabric.Gateway, []*peer.Peer) {
		b.Helper()
		if _, err := n.AddOrg("org", 1); err != nil {
			b.Fatal(err)
		}
		if err := n.Deploy("kv", chaincode.Func(func(stub chaincode.Stub) ([]byte, error) {
			return nil, stub.PutState(string(stub.Args()[0]), stub.Args()[1])
		}), "'org'"); err != nil {
			b.Fatal(err)
		}
		org, _ := n.Org("org")
		client, err := org.CA.Issue("c", msp.RoleClient)
		if err != nil {
			b.Fatal(err)
		}
		peers, _ := n.PeersOf("org")
		return n.Gateway(client), peers
	}

	for _, batch := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("batch-%d", batch), func(b *testing.B) {
			n := fabric.NewNetwork("bench", orderer.Config{BatchSize: batch})
			gw, peers := deployKV(b, n)
			val := make([]byte, 256)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inv := chaincode.Invocation{
					TxID: fmt.Sprintf("tx-%d", i), Chaincode: "kv", Function: "put",
					Args:        [][]byte{[]byte(fmt.Sprintf("k%d", i)), val},
					CreatorCert: gw.Identity().CertPEM(), Timestamp: time.Now(),
				}
				resp, err := peers[0].Endorse(inv)
				if err != nil {
					b.Fatal(err)
				}
				tx, err := assembleOne(inv, resp)
				if err != nil {
					b.Fatal(err)
				}
				if err := n.Orderer().Submit(tx); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			_ = n.Orderer().Flush()
		})
	}

	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("committers-%d", workers), func(b *testing.B) {
			n := fabric.NewNetworkTuned("bench", fabric.Tuning{
				Orderer: orderer.Config{
					Pipelined: true, BatchSize: 16,
					BatchTimeout: time.Millisecond, MaxPending: 256,
				},
				CommitterWorkers: workers,
			})
			defer func() {
				if err := n.Orderer().Stop(); err != nil {
					b.Fatal(err)
				}
			}()
			gw, peers := deployKV(b, n)
			val := make([]byte, 256)
			var seq atomic.Uint64
			b.ReportAllocs()
			// Submitters are open-loop clients, not CPU-bound workers: run
			// far more of them than GOMAXPROCS so the orderer's batches fill
			// by size instead of stalling on the cut timer.
			b.SetParallelism(32)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					// Fresh key per transaction: conflict-free, so every
					// write set lands on the scheduler's first level.
					i := seq.Add(1)
					inv := chaincode.Invocation{
						TxID: fmt.Sprintf("tx-%d", i), Chaincode: "kv", Function: "put",
						Args:        [][]byte{[]byte(fmt.Sprintf("k%d", i)), val},
						CreatorCert: gw.Identity().CertPEM(), Timestamp: time.Now(),
					}
					resp, err := peers[0].Endorse(inv)
					if err != nil {
						b.Error(err)
						return
					}
					tx, err := assembleOne(inv, resp)
					if err != nil {
						b.Error(err)
						return
					}
					if err := n.Orderer().SubmitWait(tx); err != nil {
						b.Error(err)
						return
					}
					if tx.Validation != ledger.Valid {
						b.Errorf("tx-%d validation = %v", i, tx.Validation)
						return
					}
				}
			})
			b.StopTimer()
		})
	}
}

// BenchmarkP5TransportRTT compares the in-process hub against real TCP for
// a fixed ping round-trip.
func BenchmarkP5TransportRTT(b *testing.B) {
	registry := relay.NewStaticRegistry()
	b.Run("in-process", func(b *testing.B) {
		hub := relay.NewHub()
		target := relay.New("net", registry, hub)
		hub.Attach("addr", target)
		probe := relay.New("probe", registry, hub)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := probe.Ping(ctx, "addr"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tcp", func(b *testing.B) {
		transport := &relay.TCPTransport{}
		target := relay.New("net", registry, transport)
		server, err := relay.NewTCPServer(target, "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer server.Close()
		probe := relay.New("probe", registry, transport)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := probe.Ping(ctx, server.Addr()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tcp-pooled", func(b *testing.B) {
		transport := &relay.PooledTCPTransport{}
		defer transport.Close()
		target := relay.New("net", registry, transport)
		server, err := relay.NewTCPServer(target, "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer server.Close()
		probe := relay.New("probe", registry, transport)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := probe.Ping(ctx, server.Addr()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkP6PayloadSize sweeps the cross-network result size.
func BenchmarkP6PayloadSize(b *testing.B) {
	for _, size := range []int{1 << 10, 64 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("result-%dKiB", size>>10), func(b *testing.B) {
			hub := relay.NewHub()
			registry := relay.NewStaticRegistry()
			srcFab := fabric.NewNetwork("src", orderer.Config{BatchSize: 1})
			_, _ = srcFab.AddOrg("org-a", 1)
			_, _ = srcFab.AddOrg("org-b", 1)
			payload := make([]byte, size)
			_ = srcFab.Deploy("data", chaincode.Func(func(stub chaincode.Stub) ([]byte, error) {
				if _, err := syscc.AuthorizeRelayRequest(stub, "data"); err != nil {
					return nil, err
				}
				return payload, nil
			}), "AND('org-a','org-b')")
			src, err := core.EnableInterop(srcFab, registry, hub, core.Options{})
			if err != nil {
				b.Fatal(err)
			}

			destFab := fabric.NewNetwork("dst", orderer.Config{BatchSize: 1})
			_, _ = destFab.AddOrg("dst-org", 1)
			dest, err := core.EnableInterop(destFab, registry, hub, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			hub.Attach("src-relay", src.Relay)
			registry.Register("src", "src-relay")

			srcOrg, _ := srcFab.Org("org-a")
			srcAdminID, _ := srcOrg.CA.Issue("admin", msp.RoleAdmin)
			srcAdmin := srcFab.Gateway(srcAdminID)
			dstOrg, _ := destFab.Org("dst-org")
			dstAdminID, _ := dstOrg.CA.Issue("admin", msp.RoleAdmin)
			dstAdmin := destFab.Gateway(dstAdminID)
			if err := src.ConfigureForeignNetwork(srcAdmin, dest.ExportConfig()); err != nil {
				b.Fatal(err)
			}
			if err := dest.ConfigureForeignNetwork(dstAdmin, src.ExportConfig()); err != nil {
				b.Fatal(err)
			}
			if err := dest.SetVerificationPolicy(dstAdmin, policyFor("src")); err != nil {
				b.Fatal(err)
			}
			if err := src.GrantAccess(srcAdmin, accessFor()); err != nil {
				b.Fatal(err)
			}
			client, err := core.NewClient(dest, "dst-org", "c")
			if err != nil {
				b.Fatal(err)
			}
			spec := core.RemoteQuerySpec{Network: "src", Contract: "data", Function: "Get"}
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.RemoteQuery(ctx, spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// slowTransport wraps another transport and injects a fixed service delay,
// modelling network RTT or a degraded (but live) relay. An empty slowAddr
// delays every address; otherwise only the named one. The delay honours
// context cancellation so hedged losers release immediately.
type slowTransport struct {
	inner    relay.Transport
	slowAddr string
	delay    time.Duration
}

func (s *slowTransport) Send(ctx context.Context, addr string, env *wire.Envelope) (*wire.Envelope, error) {
	if s.delay > 0 && (s.slowAddr == "" || addr == s.slowAddr) {
		select {
		case <-time.After(s.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return s.inner.Send(ctx, addr, env)
}

// buildFanoutWorld assembles a payload-style src/dst pair where the source
// network is fronted by two relay addresses ("src-slow" preferred,
// "src-fast" standby) with slowDelay injected at slowAddr ("" = all).
// relayOpts configure the destination relay's fan-out.
func buildFanoutWorld(b *testing.B, slowDelay time.Duration, slowAddr string, relayOpts ...relay.Option) (*core.Client, core.RemoteQuerySpec) {
	b.Helper()
	hub := relay.NewHub()
	registry := relay.NewStaticRegistry()
	srcFab := fabric.NewNetwork("src", orderer.Config{BatchSize: 1})
	_, _ = srcFab.AddOrg("org-a", 1)
	_, _ = srcFab.AddOrg("org-b", 1)
	payload := []byte(`{"doc":"bl-77"}`)
	_ = srcFab.Deploy("data", chaincode.Func(func(stub chaincode.Stub) ([]byte, error) {
		if _, err := syscc.AuthorizeRelayRequest(stub, "data"); err != nil {
			return nil, err
		}
		return payload, nil
	}), "AND('org-a','org-b')")
	src, err := core.EnableInterop(srcFab, registry, hub, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	transport := &slowTransport{inner: hub, slowAddr: slowAddr, delay: slowDelay}
	destFab := fabric.NewNetwork("dst", orderer.Config{BatchSize: 1})
	_, _ = destFab.AddOrg("dst-org", 1)
	dest, err := core.EnableInterop(destFab, registry, transport, core.Options{RelayOptions: relayOpts})
	if err != nil {
		b.Fatal(err)
	}
	hub.Attach("src-slow", src.Relay)
	hub.Attach("src-fast", src.Relay)
	registry.Register("src", "src-slow", "src-fast")

	srcOrg, _ := srcFab.Org("org-a")
	srcAdminID, _ := srcOrg.CA.Issue("admin", msp.RoleAdmin)
	srcAdmin := srcFab.Gateway(srcAdminID)
	dstOrg, _ := destFab.Org("dst-org")
	dstAdminID, _ := dstOrg.CA.Issue("admin", msp.RoleAdmin)
	dstAdmin := destFab.Gateway(dstAdminID)
	if err := src.ConfigureForeignNetwork(srcAdmin, dest.ExportConfig()); err != nil {
		b.Fatal(err)
	}
	if err := dest.ConfigureForeignNetwork(dstAdmin, src.ExportConfig()); err != nil {
		b.Fatal(err)
	}
	if err := dest.SetVerificationPolicy(dstAdmin, policyFor("src")); err != nil {
		b.Fatal(err)
	}
	if err := src.GrantAccess(srcAdmin, accessFor()); err != nil {
		b.Fatal(err)
	}
	client, err := core.NewClient(dest, "dst-org", "c")
	if err != nil {
		b.Fatal(err)
	}
	return client, core.RemoteQuerySpec{Network: "src", Contract: "data", Function: "Get"}
}

// BenchmarkP7HedgedFanout measures tail latency with one degraded relay
// address. Historically the sequential arm waited out the slow preferred
// address on every query (slow, not down, so failover never triggered);
// with health-aware discovery the EWMA latency score demotes it after its
// first sample, so the sequential arm now pays the slow address once and
// runs fast thereafter. Hedging still bounds the tail without needing a
// latency history — its remaining edge — but a hedge delay below the fast
// path's RTT turns into pure duplicate load, visible in the hedged arm's
// p50. p50/p99 are reported as custom metrics.
func BenchmarkP7HedgedFanout(b *testing.B) {
	const slowDelay = 10 * time.Millisecond
	const hedgeDelay = 1 * time.Millisecond
	run := func(b *testing.B, opts ...relay.Option) {
		client, spec := buildFanoutWorld(b, slowDelay, "src-slow", opts...)
		lat := make([]time.Duration, 0, b.N)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			start := time.Now()
			if _, err := client.RemoteQuery(ctx, spec); err != nil {
				b.Fatal(err)
			}
			lat = append(lat, time.Since(start))
		}
		b.StopTimer()
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		b.ReportMetric(float64(lat[len(lat)/2].Microseconds()), "p50-µs")
		b.ReportMetric(float64(lat[len(lat)*99/100].Microseconds()), "p99-µs")
	}
	b.Run("sequential-failover", func(b *testing.B) { run(b) })
	b.Run("hedged", func(b *testing.B) { run(b, relay.WithHedging(hedgeDelay, 2)) })
}

// BenchmarkP8RemoteQueryBatch measures batched cross-network query
// throughput against issuing the same specs one at a time, with a 2ms
// simulated network RTT on every relay hop: the batch overlaps the waits
// under its bounded parallelism while the loop pays them serially.
func BenchmarkP8RemoteQueryBatch(b *testing.B) {
	const batchSize = 16
	client, spec := buildFanoutWorld(b, 2*time.Millisecond, "")
	specs := make([]core.RemoteQuerySpec, batchSize)
	for i := range specs {
		specs[i] = spec
	}
	b.Run("sequential-loop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, s := range specs {
				if _, err := client.RemoteQuery(ctx, s); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, res := range client.RemoteQueryBatch(ctx, specs) {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		}
	})
}

// BenchmarkP9RegistryAnnounce measures discovery-registry write throughput
// under the relayd heartbeat pattern: N concurrent announcers (each with
// its own registry instance, like N relayd processes sharing a deployment
// directory) renewing leases in a tight loop. The flock registry pays a
// full load-modify-store cycle per renewal — read the file, decode,
// mutate, rewrite, rename, all under the exclusive lock — so its cost
// grows with both contention and registry size. The journal appends one
// O(1) record under the lock instead (with a background-style compaction
// amortized in via CompactIfOversized), which is what lets discovery keep
// up with a heartbeating fleet; the gap widens with announcer count.
func BenchmarkP9RegistryAnnounce(b *testing.B) {
	const ttl = time.Minute
	run := func(b *testing.B, open func(dir string, id int) relay.LeaseRegistrar, announcers int) {
		dir := b.TempDir()
		regs := make([]relay.LeaseRegistrar, announcers)
		for i := range regs {
			regs[i] = open(dir, i)
		}
		// Pre-register every address so the steady state measures
		// renewals, the heartbeat hot path.
		for i, reg := range regs {
			if err := reg.RegisterLease("bench-net", fmt.Sprintf("10.0.0.%d:9080", i), ttl); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		var wg sync.WaitGroup
		per := b.N / announcers
		for i := 0; i < announcers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				reg := regs[i]
				addr := fmt.Sprintf("10.0.0.%d:9080", i)
				n := per
				if i == 0 {
					n += b.N % announcers
				}
				for r := 0; r < n; r++ {
					if err := reg.RegisterLease("bench-net", addr, ttl); err != nil {
						b.Error(err)
						return
					}
				}
			}(i)
		}
		wg.Wait()
	}
	for _, announcers := range []int{1, 8, 32} {
		announcers := announcers
		b.Run(fmt.Sprintf("flock/announcers-%d", announcers), func(b *testing.B) {
			run(b, func(dir string, _ int) relay.LeaseRegistrar {
				return relay.NewFileRegistry(filepath.Join(dir, "registry.json"))
			}, announcers)
		})
		b.Run(fmt.Sprintf("journal/announcers-%d", announcers), func(b *testing.B) {
			run(b, func(dir string, id int) relay.LeaseRegistrar {
				reg := relay.NewJournalRegistry(filepath.Join(dir, "registry.jsonl"))
				if id == 0 {
					// One announcer doubles as the compacting process, so
					// the measured steady state includes the maintenance
					// that keeps the journal bounded.
					return compactingRegistrar{reg}
				}
				return reg
			}, announcers)
		})
	}
}

// compactingRegistrar folds journal compaction into one announcer's
// renewal loop so the benchmark's journal arm pays its maintenance cost
// in-band rather than appearing artificially append-only-cheap.
type compactingRegistrar struct {
	*relay.JournalRegistry
}

func (c compactingRegistrar) RegisterLease(networkID, addr string, ttl time.Duration) error {
	if err := c.JournalRegistry.RegisterLease(networkID, addr, ttl); err != nil {
		return err
	}
	_, err := c.CompactIfOversized()
	return err
}
