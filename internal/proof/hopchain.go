package proof

// Multi-hop path proofs. When a query is answered over a chain of relays
// (origin → hub … → source), the source attestation alone proves what the
// data is, but not which path carried it. Each forwarding relay therefore
// appends a HopPin to the response on the return path: an ECDSA signature
// over a domain-separated payload binding the previous pin (or the chain
// anchor, for the hop adjacent to the source), the relay's network
// identity and certificate, and the pinned verification-policy digest.
// The anchor itself binds the query digest (which includes the client
// nonce, so chains cannot be replayed across requests), the policy pin and
// the digest of the response with the pins stripped — every relay on the
// path and the origin all see the same core bytes, so a hop cannot swap
// the response out from under the chain it extends.
//
// Verification is structural: each pin must hash-chain onto its
// predecessor and carry a valid signature from the certificate it names.
// Which certificates are acceptable for which hub network is a deployment
// policy (the origin relay checks the hop adjacent to it matches the
// next-hop network it actually forwarded to); anchoring hub certificates
// in recorded configurations the way source attestors are is left to the
// dynamic route discovery follow-on.

import (
	"bytes"
	"crypto/ecdsa"
	"errors"
	"fmt"

	"repro/internal/cryptoutil"
	"repro/internal/msp"
	"repro/internal/wire"
)

var (
	// ErrBadHopChain is returned when a response's hop-pin chain is
	// structurally invalid: a pin that does not chain onto its
	// predecessor, a bad signature, or a repeated network.
	ErrBadHopChain = errors.New("proof: invalid hop chain")
	// ErrHopChainMissing is returned when a response that must have been
	// forwarded (the origin sent it toward a hub) comes back without the
	// expected hop pin.
	ErrHopChainMissing = errors.New("proof: hop chain missing expected hop")
)

// Domain separators keep hop-chain digests and signatures disjoint from
// every other digest and signed payload in the system: a hop pin can never
// be confused with an attestation signature or a policy digest.
var (
	hopAnchorDomain = []byte("interop-hop-anchor\x00")
	hopPinDomain    = []byte("interop-hop-pin\x00")
)

// Hop is one verified element of a response's path, nearest the source
// first.
type Hop struct {
	Network string
	CertPEM []byte
}

// hopCoreDigest digests the response with the hop pins stripped — the
// bytes every relay on the return path and the origin agree on.
func hopCoreDigest(resp *wire.QueryResponse) []byte {
	core := *resp
	core.HopPins = nil
	return cryptoutil.Digest(core.Marshal())
}

// HopAnchor computes the chain anchor for a (query, response) pair: the
// value the first hop pin's payload links to.
func HopAnchor(q *wire.Query, resp *wire.QueryResponse) []byte {
	e := wire.NewEncoder(3 * cryptoutil.DigestSize)
	e.BytesField(1, QueryDigestOf(q))
	e.BytesField(2, PolicyDigestOf(q))
	e.BytesField(3, hopCoreDigest(resp))
	return cryptoutil.Digest(hopAnchorDomain, e.Bytes())
}

// hopPinPayload assembles the exact bytes hop i signs: the previous pin,
// the forwarding relay's network and certificate, and the policy pin,
// framed unambiguously by the wire encoder under the hop-pin domain.
func hopPinPayload(prevPin []byte, network string, certPEM, policyDigest []byte) []byte {
	e := wire.NewEncoder(64 + len(prevPin) + len(network) + len(certPEM))
	e.BytesField(1, prevPin)
	e.String(2, network)
	e.BytesField(3, certPEM)
	e.BytesField(4, policyDigest)
	return append(append([]byte{}, hopPinDomain...), e.Bytes()...)
}

// AppendHopPin extends the response's hop chain with one pin signed by the
// forwarding relay's identity. The relay adjacent to the source appends
// first (linking to the anchor); each subsequent relay links to the pin
// before it. Must be called before the response is re-enveloped for the
// previous hop.
func AppendHopPin(resp *wire.QueryResponse, q *wire.Query, network string, id *msp.Identity) error {
	prev := HopAnchor(q, resp)
	if n := len(resp.HopPins); n > 0 {
		prev = resp.HopPins[n-1].Pin
	}
	payload := hopPinPayload(prev, network, id.CertPEM(), PolicyDigestOf(q))
	sig, err := id.Sign(payload)
	if err != nil {
		return fmt.Errorf("proof: sign hop pin: %w", err)
	}
	resp.HopPins = append(resp.HopPins, wire.HopPin{
		Network:   network,
		CertPEM:   id.CertPEM(),
		Pin:       cryptoutil.Digest(payload),
		Signature: sig,
	})
	return nil
}

// VerifyHopChain checks the structural validity of a response's hop chain
// against the query it answers: every pin must equal the digest of its
// reconstructed payload, chain onto its predecessor (the anchor for pin
// 0), carry a valid signature from the certificate it names, and no
// network may appear twice. It returns the verified path, nearest the
// source first — empty (nil, nil) for a pin-free single-hop response.
func VerifyHopChain(q *wire.Query, resp *wire.QueryResponse) ([]Hop, error) {
	if len(resp.HopPins) == 0 {
		return nil, nil
	}
	policyDigest := PolicyDigestOf(q)
	prev := HopAnchor(q, resp)
	seen := make(map[string]bool, len(resp.HopPins))
	hops := make([]Hop, 0, len(resp.HopPins))
	for i := range resp.HopPins {
		pin := &resp.HopPins[i]
		if seen[pin.Network] {
			return nil, fmt.Errorf("%w: network %q pinned twice", ErrBadHopChain, pin.Network)
		}
		seen[pin.Network] = true
		payload := hopPinPayload(prev, pin.Network, pin.CertPEM, policyDigest)
		if !bytes.Equal(pin.Pin, cryptoutil.Digest(payload)) {
			return nil, fmt.Errorf("%w: hop %d (%s) does not chain", ErrBadHopChain, i, pin.Network)
		}
		cert, err := msp.ParseCertPEM(pin.CertPEM)
		if err != nil {
			return nil, fmt.Errorf("%w: hop %d (%s): %v", ErrBadHopChain, i, pin.Network, err)
		}
		pub, ok := cert.PublicKey.(*ecdsa.PublicKey)
		if !ok {
			return nil, fmt.Errorf("%w: hop %d (%s): non-ECDSA key", ErrBadHopChain, i, pin.Network)
		}
		if err := cryptoutil.Verify(pub, payload, pin.Signature); err != nil {
			return nil, fmt.Errorf("%w: hop %d (%s): signature", ErrBadHopChain, i, pin.Network)
		}
		prev = pin.Pin
		hops = append(hops, Hop{Network: pin.Network, CertPEM: pin.CertPEM})
	}
	return hops, nil
}

// VerifyHopChainVia verifies the chain and additionally requires that it
// is non-empty and that its final pin — the hop adjacent to the caller —
// names the given network. The origin relay calls this with the via
// network it actually forwarded to, which is what makes truncating the
// whole chain (or just its tail) detectable: a response that came back
// through a hub must carry that hub's pin on the outside.
func VerifyHopChainVia(q *wire.Query, resp *wire.QueryResponse, via string) ([]Hop, error) {
	hops, err := VerifyHopChain(q, resp)
	if err != nil {
		return nil, err
	}
	if len(hops) == 0 {
		return nil, fmt.Errorf("%w: no pins, expected %q outermost", ErrHopChainMissing, via)
	}
	if last := hops[len(hops)-1].Network; last != via {
		return nil, fmt.Errorf("%w: outermost pin is %q, expected %q", ErrHopChainMissing, last, via)
	}
	return hops, nil
}
