// Package proof implements the attestation-based proofs that accompany
// cross-network data (§4.3 of the paper). The life of a proof:
//
//  1. Source side: each peer selected to satisfy the verification policy
//     produces an Attestation — an ECDSA signature over response Metadata
//     (binding the query digest, result digest, client nonce and attestor
//     identity), with the metadata ECIES-encrypted to the requesting
//     client. The query result itself is likewise encrypted. An untrusted
//     relay carrying the response can neither read the data nor strip out
//     a usable proof.
//
//  2. Client side: the requesting application decrypts the result and each
//     attestation's metadata, yielding a plaintext Bundle it embeds in its
//     local transaction.
//
//  3. Destination side: every peer validating that transaction checks each
//     attestation's signature and signer against the recorded source
//     network configuration and evaluates the verification policy — the
//     Data Acceptance role of the CMDAC.
package proof

import (
	"bytes"
	"crypto/ecdsa"
	"errors"
	"fmt"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/endorsement"
	"repro/internal/msp"
	"repro/internal/wire"
)

var (
	// ErrBadAttestation is returned when an attestation's certificate or
	// signature fails validation.
	ErrBadAttestation = errors.New("proof: invalid attestation")
	// ErrDigestMismatch is returned when metadata does not bind the
	// expected query or result.
	ErrDigestMismatch = errors.New("proof: digest mismatch")
	// ErrNonceMismatch is returned when an attestation carries the wrong
	// nonce.
	ErrNonceMismatch = errors.New("proof: nonce mismatch")
	// ErrWrongNetwork is returned when an attestation names an unexpected
	// source network.
	ErrWrongNetwork = errors.New("proof: wrong source network")
	// ErrPolicyUnsatisfied is returned when the attestor set does not
	// satisfy the verification policy.
	ErrPolicyUnsatisfied = errors.New("proof: verification policy unsatisfied")
	// ErrNotPeer is returned when an attestor certificate is not a peer
	// identity.
	ErrNotPeer = errors.New("proof: attestor is not a peer")
	// ErrPolicyDigestMismatch is returned when a proof's pinned
	// verification-policy digest differs from the policy the verifier
	// expects it to satisfy.
	ErrPolicyDigestMismatch = errors.New("proof: verification policy digest mismatch")
	// ErrPolicyPinMismatch is returned when a query's explicit policy pin
	// disagrees with the policy expression it carries — the requester and
	// the source do not agree on which policy the proof must satisfy, so
	// no proof may be built at all.
	ErrPolicyPinMismatch = errors.New("proof: query policy pin does not match its policy expression")
)

// QueryDigest computes the canonical digest binding a proof to the question
// that was asked: target network, ledger, contract, function, arguments and
// client nonce. Relay-routing fields are deliberately excluded so the
// digest is recomputable by the destination chaincode.
func QueryDigest(targetNetwork, ledgerName, contract, function string, args [][]byte, nonce []byte) []byte {
	e := wire.NewEncoder(128)
	e.String(1, targetNetwork)
	e.String(2, ledgerName)
	e.String(3, contract)
	e.String(4, function)
	for _, a := range args {
		e.Message(5, a)
	}
	e.BytesField(6, nonce)
	return cryptoutil.Digest(e.Bytes())
}

// QueryDigestOf is QueryDigest applied to a wire query.
func QueryDigestOf(q *wire.Query) []byte {
	return QueryDigest(q.TargetNetwork, q.Ledger, q.Contract, q.Function, q.Args, q.Nonce)
}

// policyDigestDomain separates policy-expression digests from every other
// digest in the system, so a policy digest can never collide with a query
// or result digest by construction.
var policyDigestDomain = []byte("interop-verification-policy\x00")

// PolicyDigest computes the canonical digest of a verification-policy
// expression — the pin carried in wire.Query/wire.QueryResponse and inside
// each attestation's signed metadata. Requester and responder comparing
// digests (rather than trusting whatever expression travels in the clear)
// is what guarantees a bundle is verified against exactly the policy it was
// built under.
func PolicyDigest(policyExpr string) []byte {
	return cryptoutil.Digest(policyDigestDomain, []byte(policyExpr))
}

// PolicyDigestOf returns the query's effective policy pin: the explicit
// PolicyDigest when the requester stamped one, otherwise the digest of the
// policy expression the query carries. Nil when the query has neither (an
// unpinned legacy request).
func PolicyDigestOf(q *wire.Query) []byte {
	if len(q.PolicyDigest) > 0 {
		return q.PolicyDigest
	}
	if q.PolicyExpr != "" {
		return PolicyDigest(q.PolicyExpr)
	}
	return nil
}

// PinnedPolicyDigest is the source-side gate every driver must apply
// before building a proof: it returns the digest of the query's policy
// expression, refusing (ErrPolicyPinMismatch) a query whose explicit pin
// disagrees with that expression. Honoring a mismatched pin would have the
// attestors sign a requester-chosen digest for a policy that never
// selected them.
func PinnedPolicyDigest(q *wire.Query) ([]byte, error) {
	expect := PolicyDigest(q.PolicyExpr)
	if len(q.PolicyDigest) > 0 && !bytes.Equal(q.PolicyDigest, expect) {
		return nil, ErrPolicyPinMismatch
	}
	return expect, nil
}

// BuildAttestationPinned produces one peer's attestation for a query
// result. The result digest is computed over the plaintext result; the
// metadata — including the verification-policy pin, when non-nil (nil
// builds an unpinned legacy attestation) — is signed with the attestor's
// key and then encrypted to the client. Proof construction normally goes
// through Build, which fans attestors out concurrently.
func BuildAttestationPinned(attestor *msp.Identity, networkID string, queryDigest, policyDigest, result, nonce []byte, clientPub *ecdsa.PublicKey, now time.Time) (wire.Attestation, error) {
	md := wire.Metadata{
		NetworkID:    networkID,
		PeerName:     attestor.Name,
		OrgID:        attestor.OrgID,
		QueryDigest:  queryDigest,
		ResultDigest: cryptoutil.Digest(result),
		Nonce:        nonce,
		UnixNano:     uint64(now.UnixNano()),
		PolicyDigest: policyDigest,
	}
	plain := md.Marshal()
	sig, err := attestor.Sign(plain)
	if err != nil {
		return wire.Attestation{}, fmt.Errorf("proof: sign metadata: %w", err)
	}
	encMeta, err := cryptoutil.Encrypt(clientPub, plain)
	if err != nil {
		return wire.Attestation{}, fmt.Errorf("proof: encrypt metadata: %w", err)
	}
	return wire.Attestation{
		PeerName:          attestor.Name,
		OrgID:             attestor.OrgID,
		CertPEM:           attestor.CertPEM(),
		EncryptedMetadata: encMeta,
		Signature:         sig,
	}, nil
}

// EncryptResult encrypts a query result to the requesting client,
// preventing the relay from reading it (the paper's ECC encryption call).
func EncryptResult(clientPub *ecdsa.PublicKey, result []byte) ([]byte, error) {
	return cryptoutil.Encrypt(clientPub, result)
}

// Element is one decrypted attestation inside a Bundle: the attestor
// certificate, the plaintext metadata bytes, and the signature over them —
// directly over the metadata in single mode, or over the Merkle batch-root
// payload the metadata's leaf hash chains up to in batched mode.
type Element struct {
	CertPEM   []byte
	Metadata  []byte // plaintext wire.Metadata
	Signature []byte
	// BatchSize > 0 marks a batched element: Signature covers
	// batchSigPayload(root) where root is recomputed from the metadata's
	// leaf hash at BatchIndex via the BatchPath sibling hashes (see
	// wire.Attestation). Zero for single-signature elements.
	BatchSize  uint64
	BatchIndex uint64
	BatchPath  [][]byte
}

// Bundle is the decrypted, transaction-embeddable form of a proof: the
// plaintext result plus one Element per attestor, bound to the query digest
// and the pinned verification-policy digest, and stamped with when the
// proof was built. The requesting client constructs it from a
// QueryResponse; the destination chaincode validates it via the Data
// Acceptance contract. Built once, it verifies anywhere a recorded source
// configuration and policy are available — no party needs to re-contact the
// source network.
type Bundle struct {
	SourceNetwork string
	Result        []byte
	Nonce         []byte
	Elements      []Element
	// QueryDigest binds the bundle to the question it answers
	// (QueryDigestOf of the originating query).
	QueryDigest []byte
	// PolicyDigest is the verification-policy pin the proof was built
	// under; nil for unpinned legacy bundles.
	PolicyDigest []byte
	// UnixNano is when the proof was built (the attestation timestamp).
	UnixNano uint64
}

// Marshal encodes the bundle for use as a transaction argument.
func (b *Bundle) Marshal() []byte {
	e := wire.NewEncoder(512)
	e.String(1, b.SourceNetwork)
	e.BytesField(2, b.Result)
	e.BytesField(3, b.Nonce)
	for i := range b.Elements {
		el := &b.Elements[i]
		ee := wire.NewEncoder(256)
		ee.BytesField(1, el.CertPEM)
		ee.BytesField(2, el.Metadata)
		ee.BytesField(3, el.Signature)
		ee.Uint(4, el.BatchSize)
		ee.Uint(5, el.BatchIndex)
		for _, h := range el.BatchPath {
			ee.Message(6, h)
		}
		e.Message(4, ee.Bytes())
	}
	e.BytesField(5, b.QueryDigest)
	e.BytesField(6, b.PolicyDigest)
	e.Uint(7, b.UnixNano)
	return e.Bytes()
}

// bundleScalars omits field 4 (Elements), the only repeated field.
var bundleScalars = wire.FieldMask(1, 2, 3, 5, 6, 7)

// UnmarshalBundle decodes a bundle.
func UnmarshalBundle(buf []byte) (*Bundle, error) {
	b := &Bundle{}
	d := wire.NewDecoder(buf)
	var g wire.ScalarGuard
	for {
		field, ok, err := d.Next()
		if err != nil {
			return nil, fmt.Errorf("bundle: %w", err)
		}
		if !ok {
			return b, nil
		}
		if err := g.Check(field, bundleScalars); err != nil {
			return nil, fmt.Errorf("bundle field %d: %w", field, err)
		}
		switch field {
		case 1:
			b.SourceNetwork, err = d.String()
		case 2:
			b.Result, err = d.BytesCopy()
		case 3:
			b.Nonce, err = d.BytesCopy()
		case 4:
			var raw []byte
			raw, err = d.Bytes()
			if err == nil {
				var el Element
				el, err = unmarshalElement(raw)
				if err == nil {
					b.Elements = append(b.Elements, el)
				}
			}
		case 5:
			b.QueryDigest, err = d.BytesCopy()
		case 6:
			b.PolicyDigest, err = d.BytesCopy()
		case 7:
			b.UnixNano, err = d.Uint()
		default:
			err = d.Skip()
		}
		if err != nil {
			return nil, fmt.Errorf("bundle field %d: %w", field, err)
		}
	}
}

// elementScalars omits field 6 (BatchPath), the only repeated field.
var elementScalars = wire.FieldMask(1, 2, 3, 4, 5)

func unmarshalElement(buf []byte) (Element, error) {
	var el Element
	d := wire.NewDecoder(buf)
	var g wire.ScalarGuard
	for {
		field, ok, err := d.Next()
		if err != nil {
			return el, err
		}
		if !ok {
			return el, nil
		}
		if err := g.Check(field, elementScalars); err != nil {
			return el, err
		}
		switch field {
		case 1:
			el.CertPEM, err = d.BytesCopy()
		case 2:
			el.Metadata, err = d.BytesCopy()
		case 3:
			el.Signature, err = d.BytesCopy()
		case 4:
			el.BatchSize, err = d.Uint()
		case 5:
			el.BatchIndex, err = d.Uint()
		case 6:
			var h []byte
			h, err = d.BytesCopy()
			el.BatchPath = append(el.BatchPath, h)
		default:
			err = d.Skip()
		}
		if err != nil {
			return el, err
		}
	}
}

// openEnvelope decrypts one response envelope, dispatching on the session
// fields: a non-empty session ephemeral point marks a sessioned envelope
// (per-query AEAD key bound to the generation and the query digest), an
// empty one the classic self-contained ECIES layout. The dispatch is safe
// against field-stripping: a sessioned envelope fed to the classic decoder
// has no valid point prefix and fails authentication either way.
func openEnvelope(clientKey *ecdsa.PrivateKey, ephemeral []byte, generation uint64, queryDigest, ciphertext []byte) ([]byte, error) {
	if len(ephemeral) > 0 {
		return cryptoutil.SessionDecrypt(clientKey, ephemeral, generation, queryDigest, ciphertext)
	}
	return cryptoutil.Decrypt(clientKey, ciphertext)
}

// OpenResponse decrypts a query response with the requesting client's
// private key and assembles the plaintext Bundle. It performs the client's
// own sanity checks (result digest binding, nonce echo) so that obviously
// broken responses are rejected before a transaction is attempted; full
// trust validation happens on the destination peers via Verify.
func OpenResponse(clientKey *ecdsa.PrivateKey, q *wire.Query, resp *wire.QueryResponse) (*Bundle, error) {
	if resp.Error != "" {
		return nil, fmt.Errorf("proof: remote error: %s", resp.Error)
	}
	wantPolicyDigest := PolicyDigestOf(q)
	if len(wantPolicyDigest) > 0 && len(resp.PolicyDigest) > 0 && !bytes.Equal(resp.PolicyDigest, wantPolicyDigest) {
		return nil, fmt.Errorf("%w: response pinned to a different policy", ErrPolicyDigestMismatch)
	}
	wantQueryDigest := QueryDigestOf(q)
	result, err := openEnvelope(clientKey, resp.SessionEphemeral, resp.SessionGeneration,
		wantQueryDigest, resp.EncryptedResult)
	if err != nil {
		return nil, fmt.Errorf("proof: decrypt result: %w", err)
	}
	wantResultDigest := cryptoutil.Digest(result)
	bundle := &Bundle{
		SourceNetwork: q.TargetNetwork,
		Result:        result,
		Nonce:         q.Nonce,
		QueryDigest:   wantQueryDigest,
		PolicyDigest:  wantPolicyDigest,
	}
	for i := range resp.Attestations {
		att := &resp.Attestations[i]
		plain, err := openEnvelope(clientKey, att.SessionEphemeral, att.SessionGeneration,
			wantQueryDigest, att.EncryptedMetadata)
		if err != nil {
			return nil, fmt.Errorf("proof: decrypt metadata of %s: %w", att.PeerName, err)
		}
		md, err := wire.UnmarshalMetadata(plain)
		if err != nil {
			return nil, fmt.Errorf("proof: metadata of %s: %w", att.PeerName, err)
		}
		if !bytes.Equal(md.QueryDigest, wantQueryDigest) {
			return nil, fmt.Errorf("%w: attestation %s query digest", ErrDigestMismatch, att.PeerName)
		}
		if !bytes.Equal(md.ResultDigest, wantResultDigest) {
			return nil, fmt.Errorf("%w: attestation %s result digest", ErrDigestMismatch, att.PeerName)
		}
		if !bytes.Equal(md.Nonce, q.Nonce) {
			return nil, fmt.Errorf("%w: attestation %s", ErrNonceMismatch, att.PeerName)
		}
		if len(wantPolicyDigest) > 0 && len(md.PolicyDigest) > 0 && !bytes.Equal(md.PolicyDigest, wantPolicyDigest) {
			return nil, fmt.Errorf("%w: attestation %s", ErrPolicyDigestMismatch, att.PeerName)
		}
		if md.UnixNano > bundle.UnixNano {
			bundle.UnixNano = md.UnixNano
		}
		bundle.Elements = append(bundle.Elements, Element{
			CertPEM:    att.CertPEM,
			Metadata:   plain,
			Signature:  att.Signature,
			BatchSize:  att.BatchSize,
			BatchIndex: att.BatchIndex,
			BatchPath:  att.BatchPath,
		})
	}
	return bundle, nil
}

// Verify performs the destination network's Data Acceptance check: every
// attestation must carry a valid signature from a peer identity anchored in
// the recorded source-network configuration, bind the expected query digest
// and nonce, match the bundle's result, and the attestor set must satisfy
// the verification policy.
//
// expectedPolicyDigest is the pin of the policy the verifier is checking
// against (PolicyDigest of its expression). When non-nil, any pin the
// bundle or its signed metadata carries must match it — a bundle built
// under a different policy is refused even if its attestor set would
// incidentally satisfy this one. Bundles with no pin at all (legacy
// builders) are still accepted; absence is tolerated, mismatch is not.
// Pass nil to skip pin checking entirely.
func Verify(b *Bundle, verifier *msp.Verifier, vp *endorsement.Policy, expectedQueryDigest, expectedPolicyDigest []byte) error {
	if vp == nil {
		return fmt.Errorf("%w: no verification policy", ErrPolicyUnsatisfied)
	}
	if len(expectedPolicyDigest) > 0 && len(b.PolicyDigest) > 0 && !bytes.Equal(b.PolicyDigest, expectedPolicyDigest) {
		return fmt.Errorf("%w: bundle pinned to a different policy", ErrPolicyDigestMismatch)
	}
	if len(b.QueryDigest) > 0 && !bytes.Equal(b.QueryDigest, expectedQueryDigest) {
		return fmt.Errorf("%w: bundle query digest", ErrDigestMismatch)
	}
	wantResultDigest := cryptoutil.Digest(b.Result)
	signers := make([]endorsement.Principal, 0, len(b.Elements))
	for i := range b.Elements {
		el := &b.Elements[i]
		cert, err := msp.ParseCertPEM(el.CertPEM)
		if err != nil {
			return fmt.Errorf("%w: element %d: %v", ErrBadAttestation, i, err)
		}
		info, err := verifier.Verify(cert)
		if err != nil {
			return fmt.Errorf("%w: element %d: %v", ErrBadAttestation, i, err)
		}
		if info.Role != msp.RolePeer {
			return fmt.Errorf("%w: element %d signed by %s role", ErrNotPeer, i, info.Role)
		}
		pub, ok := cert.PublicKey.(*ecdsa.PublicKey)
		if !ok {
			return fmt.Errorf("%w: element %d: non-ECDSA key", ErrBadAttestation, i)
		}
		// Single mode signs the metadata bytes directly; batched mode signs
		// the domain-separated Merkle root the metadata's leaf hash chains up
		// to, so the signed payload is recomputed from the inclusion proof.
		signedPayload := el.Metadata
		if el.BatchSize > 0 {
			root, err := merkleRootFromPath(merkleLeafHash(el.Metadata), el.BatchIndex, el.BatchSize, el.BatchPath)
			if err != nil {
				return fmt.Errorf("%w: element %d: %v", ErrBadAttestation, i, err)
			}
			signedPayload = batchSigPayload(root)
		}
		if err := cryptoutil.Verify(pub, signedPayload, el.Signature); err != nil {
			return fmt.Errorf("%w: element %d: signature", ErrBadAttestation, i)
		}
		md, err := wire.UnmarshalMetadata(el.Metadata)
		if err != nil {
			return fmt.Errorf("%w: element %d: metadata", ErrBadAttestation, i)
		}
		if md.NetworkID != b.SourceNetwork {
			return fmt.Errorf("%w: element %d names %q", ErrWrongNetwork, i, md.NetworkID)
		}
		if md.OrgID != info.OrgID {
			return fmt.Errorf("%w: element %d org mismatch", ErrBadAttestation, i)
		}
		if !bytes.Equal(md.QueryDigest, expectedQueryDigest) {
			return fmt.Errorf("%w: element %d query digest", ErrDigestMismatch, i)
		}
		if !bytes.Equal(md.ResultDigest, wantResultDigest) {
			return fmt.Errorf("%w: element %d result digest", ErrDigestMismatch, i)
		}
		if !bytes.Equal(md.Nonce, b.Nonce) {
			return fmt.Errorf("%w: element %d", ErrNonceMismatch, i)
		}
		if len(expectedPolicyDigest) > 0 && len(md.PolicyDigest) > 0 && !bytes.Equal(md.PolicyDigest, expectedPolicyDigest) {
			return fmt.Errorf("%w: element %d", ErrPolicyDigestMismatch, i)
		}
		signers = append(signers, endorsement.Principal{OrgID: info.OrgID, Role: info.Role})
	}
	if !vp.Satisfied(signers) {
		return fmt.Errorf("%w: attestors %v", ErrPolicyUnsatisfied, signers)
	}
	return nil
}
