package proof

import (
	"fmt"

	"repro/internal/cryptoutil"
	"repro/internal/msp"
	"repro/internal/wire"
)

// MetadataPlain returns the exact plaintext metadata bytes an attestation
// built from spec by the given attestor encrypts — also the leaf content of
// a batched window. It is deterministic in (spec, attestor), which is what
// lets a caller holding the spec reconstruct the plaintext of an already-
// encrypted attestation without decrypting anything.
func MetadataPlain(id *msp.Identity, spec *Spec) []byte {
	md := wire.Metadata{
		NetworkID:    spec.NetworkID,
		PeerName:     id.Name,
		OrgID:        id.OrgID,
		QueryDigest:  spec.QueryDigest,
		ResultDigest: cryptoutil.Digest(spec.Result),
		Nonce:        spec.Nonce,
		UnixNano:     uint64(spec.Now.UnixNano()),
		PolicyDigest: spec.PolicyDigest,
	}
	return md.Marshal()
}

// PlainElements converts a freshly built response into the requester-
// independent plaintext element record the relay's leaf-addressed cache
// stores: the same wire shape, but with the result envelope replaced by the
// plaintext result and each attestation's envelope replaced by its
// plaintext metadata (recomputed from the spec — metadata binds nothing
// about the requester's key). Signatures and inclusion proofs are carried
// unchanged; session fields are dropped because the record is not
// encrypted to anyone.
func PlainElements(spec *Spec, resp *wire.QueryResponse, attestors []*msp.Identity) *wire.QueryResponse {
	if len(resp.Attestations) != len(attestors) {
		return nil
	}
	stored := &wire.QueryResponse{
		EncryptedResult: spec.Result, // plaintext in this record
		PolicyDigest:    spec.PolicyDigest,
		Attestations:    make([]wire.Attestation, len(resp.Attestations)),
	}
	for i := range resp.Attestations {
		att := resp.Attestations[i]
		att.EncryptedMetadata = MetadataPlain(attestors[i], spec) // plaintext in this record
		att.SessionEphemeral = nil
		att.SessionGeneration = 0
		stored.Attestations[i] = att
	}
	return stored
}

// JoinElements re-encrypts a stored plaintext element record to the
// requester described by spec, reusing every signature and inclusion proof:
// the new envelope holder joins the window's original proof instead of
// forcing a fresh single-signature build. With sessions enabled the
// re-encryption is nearly free (no new signatures, at most one cached ECDH
// agreement per attestor). The stored record must describe the same
// attestor set the caller selected — a drifted peer set is an error, which
// callers treat as a cache miss.
func JoinElements(spec *Spec, stored *wire.QueryResponse, attestors []*msp.Identity) (*wire.QueryResponse, error) {
	if len(stored.Attestations) != len(attestors) {
		return nil, fmt.Errorf("proof: element record has %d attestations, want %d", len(stored.Attestations), len(attestors))
	}
	for i, id := range attestors {
		att := &stored.Attestations[i]
		if att.OrgID != id.OrgID || att.PeerName != id.Name {
			return nil, fmt.Errorf("proof: element %d is from %s/%s, want %s/%s", i, att.OrgID, att.PeerName, id.OrgID, id.Name)
		}
	}
	resp := &wire.QueryResponse{
		PolicyDigest: spec.PolicyDigest,
		Attestations: make([]wire.Attestation, len(stored.Attestations)),
	}
	for i := range stored.Attestations {
		att := stored.Attestations[i]
		var mgr *cryptoutil.SessionManager
		if spec.Sessions != nil {
			mgr = spec.Sessions.ForAttestor(attestors[i])
		}
		enc, ephemeral, generation, err := spec.sealTo(mgr, att.EncryptedMetadata)
		if err != nil {
			return nil, fmt.Errorf("proof: re-encrypt metadata from %s: %w", att.PeerName, err)
		}
		att.EncryptedMetadata = enc
		att.SessionEphemeral = ephemeral
		att.SessionGeneration = generation
		resp.Attestations[i] = att
	}
	enc, ephemeral, generation, err := spec.sealResult()
	if err != nil {
		return nil, fmt.Errorf("proof: re-encrypt result: %w", err)
	}
	resp.EncryptedResult = enc
	resp.SessionEphemeral = ephemeral
	resp.SessionGeneration = generation
	return resp, nil
}
