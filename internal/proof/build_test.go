package proof

import (
	"bytes"
	"context"
	"crypto/ecdsa"
	"errors"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/endorsement"
	"repro/internal/msp"
	"repro/internal/wire"
)

// buildFixture runs Build over the standard two-org fixture and returns
// everything a caller needs to open and verify the outcome.
func buildFixture(t *testing.T) (spec Spec, resp *respAndSealed, verifier *msp.Verifier) {
	t.Helper()
	_, _, sellerPeer, carrierPeer, v := setup(t)
	clientKey, err := cryptoutil.GenerateKey()
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	q := sampleQuery(t)
	spec = Spec{
		NetworkID:    "tradelens",
		QueryDigest:  QueryDigestOf(q),
		PolicyDigest: PolicyDigest(q.PolicyExpr),
		Result:       []byte(`{"blId":"bl-77"}`),
		Nonce:        q.Nonce,
		ClientPub:    &clientKey.PublicKey,
		Now:          time.Now(),
	}
	attestors := []*msp.Identity{sellerPeer, carrierPeer}
	wireResp, err := Build(context.Background(), spec, attestors)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sealed := Seal(spec, wireResp.Marshal(), attestors)
	return spec, &respAndSealed{q: q, key: clientKey, resp: wireResp, sealed: sealed}, v
}

type respAndSealed struct {
	q      *wire.Query
	key    *ecdsa.PrivateKey
	resp   *wire.QueryResponse
	sealed *Sealed
}

func TestBuildProducesVerifiableProof(t *testing.T) {
	spec, out, verifier := buildFixture(t)

	bundle, err := OpenResponse(out.key, out.q, out.resp)
	if err != nil {
		t.Fatalf("OpenResponse: %v", err)
	}
	if !bytes.Equal(bundle.Result, spec.Result) {
		t.Fatalf("result = %q", bundle.Result)
	}
	if !bytes.Equal(bundle.PolicyDigest, spec.PolicyDigest) {
		t.Fatal("bundle not pinned to the build policy")
	}
	if bundle.UnixNano == 0 {
		t.Fatal("bundle carries no build timestamp")
	}
	vp := endorsement.MustParse(out.q.PolicyExpr)
	if err := Verify(bundle, verifier, vp, spec.QueryDigest, spec.PolicyDigest); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// Verification against a different policy pin is refused even though
	// the attestor set would satisfy the expression.
	if err := Verify(bundle, verifier, vp, spec.QueryDigest, PolicyDigest("OR('rogue')")); !errors.Is(err, ErrPolicyDigestMismatch) {
		t.Fatalf("foreign pin accepted: %v", err)
	}
}

func TestSealedRoundTripServesOriginalResponse(t *testing.T) {
	spec, out, _ := buildFixture(t)

	if len(out.sealed.Attestors) != 2 {
		t.Fatalf("attestors = %v", out.sealed.Attestors)
	}
	decoded, err := UnmarshalSealed(out.sealed.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalSealed: %v", err)
	}
	if !bytes.Equal(decoded.QueryDigest, spec.QueryDigest) ||
		!bytes.Equal(decoded.PolicyDigest, spec.PolicyDigest) ||
		decoded.UnixNano != out.sealed.UnixNano {
		t.Fatal("sealed bindings did not round-trip")
	}
	if len(decoded.Attestors) != 2 || decoded.Attestors[0] != out.sealed.Attestors[0] {
		t.Fatalf("attestors did not round-trip: %v", decoded.Attestors)
	}
	// The stored response is the exact artifact Build returned: replaying
	// it decrypts to the identical bundle, no re-signing anywhere.
	replayed, err := decoded.OpenWire()
	if err != nil {
		t.Fatalf("OpenWire: %v", err)
	}
	orig, err := OpenResponse(out.key, out.q, out.resp)
	if err != nil {
		t.Fatalf("OpenResponse original: %v", err)
	}
	again, err := OpenResponse(out.key, out.q, replayed)
	if err != nil {
		t.Fatalf("OpenResponse replayed: %v", err)
	}
	if !bytes.Equal(orig.Marshal(), again.Marshal()) {
		t.Fatal("replayed sealed response decodes to a different bundle")
	}
}

func TestOpenResponseRefusesForeignPolicyPin(t *testing.T) {
	_, out, _ := buildFixture(t)
	// The relay hands back a proof pinned to a different policy than the
	// query asked for: refused before any signature checking.
	forged := *out.resp
	forged.PolicyDigest = PolicyDigest("OR('rogue')")
	if _, err := OpenResponse(out.key, out.q, &forged); !errors.Is(err, ErrPolicyDigestMismatch) {
		t.Fatalf("foreign response pin accepted: %v", err)
	}
}

func TestBundleRoundTripKeepsPins(t *testing.T) {
	_, out, _ := buildFixture(t)
	bundle, err := OpenResponse(out.key, out.q, out.resp)
	if err != nil {
		t.Fatalf("OpenResponse: %v", err)
	}
	decoded, err := UnmarshalBundle(bundle.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalBundle: %v", err)
	}
	if !bytes.Equal(decoded.QueryDigest, bundle.QueryDigest) ||
		!bytes.Equal(decoded.PolicyDigest, bundle.PolicyDigest) ||
		decoded.UnixNano != bundle.UnixNano {
		t.Fatal("bundle pins did not survive the round trip")
	}
}
