package proof

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/msp"
	"repro/internal/wire"
)

// chainFixture builds a query, a response core, and a valid hop chain of
// the given depth appended by freshly issued hub identities.
type chainFixture struct {
	q    *wire.Query
	resp *wire.QueryResponse
	ids  []*msp.Identity
}

func buildChain(t testing.TB, depth int) *chainFixture {
	t.Helper()
	q := &wire.Query{
		RequestID:         "req-hop",
		RequestingNetwork: "we-trade",
		TargetNetwork:     "tradelens",
		Contract:          "cc",
		Function:          "Get",
		Args:              [][]byte{[]byte("po-1")},
		Nonce:             []byte("nonce-1"),
		PolicyExpr:        "AND('a','b')",
	}
	resp := &wire.QueryResponse{
		RequestID:       "req-hop",
		EncryptedResult: []byte("ciphertext"),
		PolicyDigest:    PolicyDigest(q.PolicyExpr),
	}
	f := &chainFixture{q: q, resp: resp}
	for i := 0; i < depth; i++ {
		ca, err := msp.NewCA(fmt.Sprintf("hub-%d-org", i))
		if err != nil {
			t.Fatalf("hub CA %d: %v", i, err)
		}
		id, err := ca.Issue(fmt.Sprintf("hub-relay-%d", i), msp.RolePeer)
		if err != nil {
			t.Fatalf("hub identity %d: %v", i, err)
		}
		f.ids = append(f.ids, id)
		if err := AppendHopPin(resp, q, fmt.Sprintf("hub-%d-net", i), id); err != nil {
			t.Fatalf("append pin %d: %v", i, err)
		}
	}
	return f
}

func TestHopChainRoundTrip(t *testing.T) {
	for depth := 0; depth <= 4; depth++ {
		f := buildChain(t, depth)
		hops, err := VerifyHopChain(f.q, f.resp)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if len(hops) != depth {
			t.Fatalf("depth %d: verified %d hops", depth, len(hops))
		}
		for i, h := range hops {
			if want := fmt.Sprintf("hub-%d-net", i); h.Network != want {
				t.Fatalf("hop %d network = %q, want %q", i, h.Network, want)
			}
		}
		// The chain survives a wire round trip.
		decoded, err := wire.UnmarshalQueryResponse(f.resp.Marshal())
		if err != nil {
			t.Fatalf("depth %d decode: %v", depth, err)
		}
		if _, err := VerifyHopChain(f.q, decoded); err != nil {
			t.Fatalf("depth %d after round trip: %v", depth, err)
		}
	}
}

func TestHopChainViaExpectation(t *testing.T) {
	f := buildChain(t, 2)
	// The origin forwarded to hub-1-net, so its pin must be outermost.
	if _, err := VerifyHopChainVia(f.q, f.resp, "hub-1-net"); err != nil {
		t.Fatalf("valid via: %v", err)
	}
	// The wrong expectation, a truncated tail, and an entirely stripped
	// chain must all be refused.
	if _, err := VerifyHopChainVia(f.q, f.resp, "hub-0-net"); !errors.Is(err, ErrHopChainMissing) {
		t.Fatalf("wrong via accepted: %v", err)
	}
	truncated := *f.resp
	truncated.HopPins = truncated.HopPins[:1]
	if _, err := VerifyHopChainVia(f.q, &truncated, "hub-1-net"); !errors.Is(err, ErrHopChainMissing) {
		t.Fatalf("truncated tail accepted: %v", err)
	}
	stripped := *f.resp
	stripped.HopPins = nil
	if _, err := VerifyHopChainVia(f.q, &stripped, "hub-1-net"); !errors.Is(err, ErrHopChainMissing) {
		t.Fatalf("stripped chain accepted: %v", err)
	}
}

// TestHopChainAdversarial mutates valid chains of randomized depth in
// every structural way an on-path adversary could and requires each one to
// fail verification. Table of mutations × property-style random depths.
func TestHopChainAdversarial(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	mutations := []struct {
		name  string
		apply func(t *testing.T, f *chainFixture, resp *wire.QueryResponse, rng *rand.Rand) bool
	}{
		{"flip-pin-byte", func(t *testing.T, f *chainFixture, resp *wire.QueryResponse, rng *rand.Rand) bool {
			i := rng.Intn(len(resp.HopPins))
			resp.HopPins[i].Pin[0] ^= 0x01
			return true
		}},
		{"flip-signature-byte", func(t *testing.T, f *chainFixture, resp *wire.QueryResponse, rng *rand.Rand) bool {
			i := rng.Intn(len(resp.HopPins))
			resp.HopPins[i].Signature[len(resp.HopPins[i].Signature)/2] ^= 0x01
			return true
		}},
		{"rename-network", func(t *testing.T, f *chainFixture, resp *wire.QueryResponse, rng *rand.Rand) bool {
			i := rng.Intn(len(resp.HopPins))
			resp.HopPins[i].Network = "evil-net"
			return true
		}},
		{"swap-certificate", func(t *testing.T, f *chainFixture, resp *wire.QueryResponse, rng *rand.Rand) bool {
			// An attacker re-labels a pin with their own certificate: the
			// signature no longer verifies under the swapped key.
			ca, err := msp.NewCA("mallory-org")
			if err != nil {
				t.Fatal(err)
			}
			mallory, err := ca.Issue("mallory", msp.RolePeer)
			if err != nil {
				t.Fatal(err)
			}
			i := rng.Intn(len(resp.HopPins))
			resp.HopPins[i].CertPEM = mallory.CertPEM()
			return true
		}},
		{"truncate-inner", func(t *testing.T, f *chainFixture, resp *wire.QueryResponse, rng *rand.Rand) bool {
			// Dropping the pin nearest the source breaks the next pin's
			// link to the anchor. Needs depth >= 2.
			if len(resp.HopPins) < 2 {
				return false
			}
			resp.HopPins = resp.HopPins[1:]
			return true
		}},
		{"reorder", func(t *testing.T, f *chainFixture, resp *wire.QueryResponse, rng *rand.Rand) bool {
			if len(resp.HopPins) < 2 {
				return false
			}
			i := rng.Intn(len(resp.HopPins) - 1)
			resp.HopPins[i], resp.HopPins[i+1] = resp.HopPins[i+1], resp.HopPins[i]
			return true
		}},
		{"duplicate-hop", func(t *testing.T, f *chainFixture, resp *wire.QueryResponse, rng *rand.Rand) bool {
			// Re-appending an already-pinned network: even with a valid
			// signature, a repeated network is a routing cycle in the
			// proof and refused outright.
			last := len(resp.HopPins) - 1
			if err := AppendHopPin(resp, f.q, resp.HopPins[0].Network, f.ids[0]); err != nil {
				t.Fatal(err)
			}
			_ = last
			return true
		}},
		{"replay-other-response", func(t *testing.T, f *chainFixture, resp *wire.QueryResponse, rng *rand.Rand) bool {
			// Grafting the whole chain onto a different response core: the
			// anchor digest changes, so pin 0 no longer chains.
			resp.EncryptedResult = []byte("a different ciphertext")
			return true
		}},
		{"replay-other-query", func(t *testing.T, f *chainFixture, resp *wire.QueryResponse, rng *rand.Rand) bool {
			// Same response, different question (fresh nonce): the query
			// digest in the anchor differs.
			f.q.Nonce = []byte("nonce-2")
			return true
		}},
		{"swap-cross-chain-pin", func(t *testing.T, f *chainFixture, resp *wire.QueryResponse, rng *rand.Rand) bool {
			// A validly signed pin lifted from another request's chain at
			// the same position does not link into this chain: the donor
			// answers a different question, so its anchor differs.
			other := buildChain(t, len(resp.HopPins))
			other.q.Nonce = []byte("donor-nonce")
			donor := &wire.QueryResponse{RequestID: "req-hop", EncryptedResult: []byte("ciphertext"),
				PolicyDigest: PolicyDigest(other.q.PolicyExpr)}
			for j, id := range other.ids {
				if err := AppendHopPin(donor, other.q, fmt.Sprintf("hub-%d-net", j), id); err != nil {
					t.Fatal(err)
				}
			}
			i := rng.Intn(len(resp.HopPins))
			resp.HopPins[i] = donor.HopPins[i]
			return true
		}},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			applied := 0
			for round := 0; round < 6; round++ {
				depth := 1 + rng.Intn(4)
				f := buildChain(t, depth)
				if _, err := VerifyHopChain(f.q, f.resp); err != nil {
					t.Fatalf("control chain depth %d invalid: %v", depth, err)
				}
				if !m.apply(t, f, f.resp, rng) {
					continue // mutation needs more depth than this round has
				}
				applied++
				if _, err := VerifyHopChain(f.q, f.resp); err == nil {
					t.Fatalf("mutated chain (depth %d) verified", depth)
				} else if !errors.Is(err, ErrBadHopChain) {
					t.Fatalf("mutated chain failed with unexpected error: %v", err)
				}
			}
			if applied == 0 {
				t.Fatal("mutation never applied")
			}
		})
	}
}

// TestHopChainAnchorBindsCore pins the anchor derivation: any change to
// the pin-free response bytes or to the query digest moves the anchor.
func TestHopChainAnchorBindsCore(t *testing.T) {
	f := buildChain(t, 0)
	base := HopAnchor(f.q, f.resp)
	r2 := *f.resp
	r2.EncryptedResult = []byte("other")
	if bytes.Equal(base, HopAnchor(f.q, &r2)) {
		t.Fatal("anchor ignores the response core")
	}
	q2 := *f.q
	q2.Nonce = []byte("other-nonce")
	if bytes.Equal(base, HopAnchor(&q2, f.resp)) {
		t.Fatal("anchor ignores the query digest")
	}
	// Appending pins does not move the anchor — it digests the core only.
	withPins := buildChain(t, 3)
	bare := *withPins.resp
	bare.HopPins = nil
	if !bytes.Equal(HopAnchor(withPins.q, withPins.resp), HopAnchor(withPins.q, &bare)) {
		t.Fatal("anchor depends on the pins themselves")
	}
}
