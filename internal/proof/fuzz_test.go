package proof

import (
	"bytes"
	"testing"

	"repro/internal/wire"
)

// FuzzUnmarshalSealed exercises the persisted-proof decoder: the artifact
// a replayed invoke serves byte-for-byte, so the decoder must be total
// (no panics) and strict (no last-write-wins on duplicate scalars).
func FuzzUnmarshalSealed(f *testing.F) {
	f.Add([]byte{})
	inner := &wire.QueryResponse{
		RequestID: "r",
		Attestations: []wire.Attestation{{
			PeerName: "p0", OrgID: "org", CertPEM: []byte("cert"),
			EncryptedMetadata: []byte("em"), Signature: []byte("sig"),
			BatchSize: 4, BatchIndex: 2,
			BatchPath: [][]byte{bytes.Repeat([]byte{0x11}, 32), bytes.Repeat([]byte{0x22}, 32)},
		}},
	}
	sealed := &Sealed{
		QueryDigest:  bytes.Repeat([]byte{0xab}, 32),
		PolicyDigest: bytes.Repeat([]byte{0xcd}, 32),
		UnixNano:     1700000000000000000,
		Attestors:    []string{"org/p0", "org2/p1"},
		Response:     inner.Marshal(),
	}
	valid := sealed.Marshal()
	f.Add(valid)
	// The attack shape the guard exists for: a second Response occurrence
	// appended after the digest-pinned first one.
	dupe := wire.NewEncoder(16)
	dupe.BytesField(5, []byte("decoy"))
	f.Add(append(append([]byte{}, valid...), dupe.Bytes()...))
	f.Add(valid[:len(valid)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalSealed(data)
		if err != nil {
			return
		}
		again, err := UnmarshalSealed(s.Marshal())
		if err != nil {
			t.Fatalf("canonical re-encoding refused: %v", err)
		}
		if !bytes.Equal(s.Marshal(), again.Marshal()) {
			t.Fatal("decode/encode is not a fixed point")
		}
	})
}
