package proof

import (
	"fmt"

	"repro/internal/cryptoutil"
)

// Merkle tree over attestation metadata, RFC 6962-style: leaf and interior
// hashes are domain-separated (0x00 / 0x01 prefixes) so a leaf can never be
// reinterpreted as an interior node, and trees of non-power-of-two size
// split at the largest power of two strictly less than n. Batched
// attestation signs the root once per window; each requester receives its
// leaf index plus the sibling-hash inclusion path and recomputes the root
// independently.

var (
	merkleLeafPrefix = []byte{0x00}
	merkleNodePrefix = []byte{0x01}
	// batchSigDomain separates batch-root signatures from signatures over
	// plain metadata bytes, so a root signature can never be replayed as a
	// single-signature attestation of some crafted metadata (or vice versa).
	batchSigDomain = []byte("interop-batch-root\x00")
)

// merkleLeafHash hashes one leaf's content with the leaf domain prefix.
func merkleLeafHash(content []byte) []byte {
	return cryptoutil.Digest(merkleLeafPrefix, content)
}

func merkleNodeHash(left, right []byte) []byte {
	return cryptoutil.Digest(merkleNodePrefix, left, right)
}

// largestPowerOfTwoBelow returns the largest power of two strictly less
// than n. n must be >= 2.
func largestPowerOfTwoBelow(n int) int {
	k := 1
	for k<<1 < n {
		k <<= 1
	}
	return k
}

// merkleRoot computes the tree root over the given leaf hashes.
func merkleRoot(leaves [][]byte) []byte {
	switch len(leaves) {
	case 0:
		return cryptoutil.Digest(nil)
	case 1:
		return leaves[0]
	}
	k := largestPowerOfTwoBelow(len(leaves))
	return merkleNodeHash(merkleRoot(leaves[:k]), merkleRoot(leaves[k:]))
}

// merklePath computes the inclusion proof for leaves[index]: the sibling
// hashes from the leaf up to (excluding) the root, leaf-side first.
func merklePath(leaves [][]byte, index int) [][]byte {
	if len(leaves) <= 1 {
		return nil
	}
	k := largestPowerOfTwoBelow(len(leaves))
	if index < k {
		return append(merklePath(leaves[:k], index), merkleRoot(leaves[k:]))
	}
	return append(merklePath(leaves[k:], index-k), merkleRoot(leaves[:k]))
}

// merkleRootFromPath recomputes the root implied by a leaf hash, its index,
// the tree size and an inclusion path (RFC 9162 §2.1.3.2 verification). It
// rejects structurally impossible inputs — index out of range, path too
// short or too long for the claimed size — before doing any hashing it
// can't use.
func merkleRootFromPath(leafHash []byte, index, size uint64, path [][]byte) ([]byte, error) {
	if size == 0 || index >= size {
		return nil, fmt.Errorf("proof: merkle index %d out of range for size %d", index, size)
	}
	fn, sn := index, size-1
	root := leafHash
	for _, sibling := range path {
		if sn == 0 {
			return nil, fmt.Errorf("proof: merkle path longer than tree height")
		}
		if fn&1 == 1 || fn == sn {
			root = merkleNodeHash(sibling, root)
			if fn&1 == 0 {
				for fn&1 == 0 && fn != 0 {
					fn >>= 1
					sn >>= 1
				}
			}
		} else {
			root = merkleNodeHash(root, sibling)
		}
		fn >>= 1
		sn >>= 1
	}
	if sn != 0 {
		return nil, fmt.Errorf("proof: merkle path shorter than tree height")
	}
	return root, nil
}

// batchSigPayload is the byte string an attestor signs in batched mode:
// the domain tag followed by the Merkle root over the window's metadata
// leaf hashes.
func batchSigPayload(root []byte) []byte {
	out := make([]byte, 0, len(batchSigDomain)+len(root))
	out = append(out, batchSigDomain...)
	return append(out, root...)
}
