package proof

import (
	"bytes"
	"fmt"
	"testing"
)

func testLeaves(n int) [][]byte {
	leaves := make([][]byte, n)
	for i := range leaves {
		leaves[i] = merkleLeafHash([]byte(fmt.Sprintf("leaf-%d", i)))
	}
	return leaves
}

func TestMerklePathRoundTripsEverySizeAndIndex(t *testing.T) {
	// Every index of every tree size through two levels past a power of
	// two: the inclusion path must recompute exactly the tree root.
	for size := 1; size <= 9; size++ {
		leaves := testLeaves(size)
		root := merkleRoot(leaves)
		for index := 0; index < size; index++ {
			path := merklePath(leaves, index)
			got, err := merkleRootFromPath(leaves[index], uint64(index), uint64(size), path)
			if err != nil {
				t.Fatalf("size %d index %d: %v", size, index, err)
			}
			if !bytes.Equal(got, root) {
				t.Fatalf("size %d index %d: recomputed root mismatch", size, index)
			}
		}
	}
}

func TestMerkleRootFromPathRejectsStructuralLies(t *testing.T) {
	leaves := testLeaves(5)
	path := merklePath(leaves, 2)

	if _, err := merkleRootFromPath(leaves[2], 5, 5, path); err == nil {
		t.Fatal("index == size accepted")
	}
	if _, err := merkleRootFromPath(leaves[2], 2, 0, nil); err == nil {
		t.Fatal("zero-size tree accepted")
	}
	if _, err := merkleRootFromPath(leaves[2], 2, 5, path[:len(path)-1]); err == nil {
		t.Fatal("truncated path accepted")
	}
	long := append(append([][]byte{}, path...), merkleLeafHash([]byte("extra")))
	if _, err := merkleRootFromPath(leaves[2], 2, 5, long); err == nil {
		t.Fatal("overlong path accepted")
	}
}

func TestMerklePathWrongIndexChangesRoot(t *testing.T) {
	// A proof presented under the wrong leaf index must not resolve to the
	// same root — that would let one requester's attestation stand in for
	// another's.
	leaves := testLeaves(4)
	root := merkleRoot(leaves)
	path := merklePath(leaves, 1)
	got, err := merkleRootFromPath(leaves[1], 0, 4, path)
	if err == nil && bytes.Equal(got, root) {
		t.Fatal("wrong index resolved to the true root")
	}
}

func TestBatchSigPayloadIsDomainSeparated(t *testing.T) {
	root := merkleRoot(testLeaves(3))
	payload := batchSigPayload(root)
	if bytes.Equal(payload, root) {
		t.Fatal("batch payload must not equal the bare root")
	}
	if !bytes.HasPrefix(payload, batchSigDomain) {
		t.Fatal("batch payload must carry the domain tag")
	}
}
