package proof

import (
	"context"
	"crypto/ecdsa"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/msp"
	"repro/internal/wire"
)

// Spec carries everything needed to build a proof once: the identity of the
// question (query digest), the policy pin the attestors are selected under,
// the agreed plaintext result, the requester's nonce and encryption key,
// and the build time stamped into every attestation.
type Spec struct {
	NetworkID    string
	QueryDigest  []byte
	PolicyDigest []byte
	Result       []byte
	Nonce        []byte
	ClientPub    *ecdsa.PublicKey
	Now          time.Time

	// Sessions, when non-nil, switches every envelope in this build to
	// sessioned ECIES: metadata is sealed under the per-attestor session
	// manager and the result under the pool's result session, with the
	// session ephemeral point and generation carried in explicit wire
	// fields. Nil keeps the classic byte-identical per-query ECIES path
	// (legacy requesters).
	Sessions *SessionPool
	// RequesterLabel identifies the requester for session-secret caching:
	// the digest of the requester's certificate, so a rotated certificate
	// never reuses a secret agreed for the old identity. Required when
	// Sessions is non-nil.
	RequesterLabel string
	// Counter, when non-nil, receives crypto-op accounting for this build
	// (signs, envelope encryptions, and the ECDH agreements behind them).
	Counter *cryptoutil.OpCounter
}

// SessionPool owns the ECIES session managers of one proof-building site
// (a relay driver): one manager per attestor identity plus one for result
// encryption, all sharing a TTL and an op counter. Managers persist across
// batch windows, which is exactly what lets a warm poller skip the
// variable-base ECDH multiply on every window after its first.
type SessionPool struct {
	ttl     time.Duration
	counter *cryptoutil.OpCounter

	mu       sync.Mutex
	managers map[string]*cryptoutil.SessionManager
}

// NewSessionPool builds a session pool whose managers rotate every ttl
// (cryptoutil.DefaultSessionTTL when ttl <= 0) and count agreements into
// counter (may be nil).
func NewSessionPool(ttl time.Duration, counter *cryptoutil.OpCounter) *SessionPool {
	return &SessionPool{ttl: ttl, counter: counter, managers: make(map[string]*cryptoutil.SessionManager)}
}

// resultManagerKey is the reserved manager slot for result encryption; it
// can never collide with an attestor key, which always contains "/".
const resultManagerKey = ""

func (p *SessionPool) manager(key string) *cryptoutil.SessionManager {
	p.mu.Lock()
	defer p.mu.Unlock()
	m, ok := p.managers[key]
	if !ok {
		m = cryptoutil.NewSessionManager(p.ttl, p.counter)
		p.managers[key] = m
	}
	return m
}

// ForAttestor returns the session manager sealing metadata on behalf of the
// given attestor identity.
func (p *SessionPool) ForAttestor(id *msp.Identity) *cryptoutil.SessionManager {
	return p.manager(id.OrgID + "/" + id.Name)
}

// ForResult returns the session manager sealing query results.
func (p *SessionPool) ForResult() *cryptoutil.SessionManager {
	return p.manager(resultManagerKey)
}

// sealTo encrypts plaintext for this spec's requester: sessioned under mgr
// when the spec carries a session pool, classic ECIES otherwise. It returns
// the envelope plus the session ephemeral point and generation to stamp
// into the wire message (nil/0 on the classic path).
func (s *Spec) sealTo(mgr *cryptoutil.SessionManager, plaintext []byte) (enc, ephemeral []byte, generation uint64, err error) {
	if s.Sessions == nil || mgr == nil {
		enc, err = cryptoutil.Encrypt(s.ClientPub, plaintext)
		if err == nil {
			s.Counter.AddECDH(1)
			s.Counter.AddEncrypt(1)
		}
		return enc, nil, 0, err
	}
	key, err := mgr.KeyFor(s.RequesterLabel, s.ClientPub)
	if err != nil {
		return nil, nil, 0, err
	}
	enc, err = key.Seal(s.QueryDigest, plaintext)
	if err != nil {
		return nil, nil, 0, err
	}
	s.Counter.AddEncrypt(1)
	return enc, key.Ephemeral, key.Generation, nil
}

// sealResult encrypts the spec's result for the requester, sessioned when
// enabled.
func (s *Spec) sealResult() (enc, ephemeral []byte, generation uint64, err error) {
	if s.Sessions == nil {
		enc, err = EncryptResult(s.ClientPub, s.Result)
		if err == nil {
			s.Counter.AddECDH(1)
			s.Counter.AddEncrypt(1)
		}
		return enc, nil, 0, err
	}
	return s.sealTo(s.Sessions.ForResult(), s.Result)
}

// buildAttestation produces one attestor's pinned attestation for the spec,
// on the sessioned path when the spec carries a session pool and on the
// classic single-query path otherwise.
func buildAttestation(id *msp.Identity, spec *Spec) (wire.Attestation, error) {
	if spec.Sessions == nil {
		att, err := BuildAttestationPinned(id, spec.NetworkID, spec.QueryDigest,
			spec.PolicyDigest, spec.Result, spec.Nonce, spec.ClientPub, spec.Now)
		if err == nil {
			spec.Counter.AddSign(1)
			spec.Counter.AddECDH(1)
			spec.Counter.AddEncrypt(1)
		}
		return att, err
	}
	plain := MetadataPlain(id, spec)
	sig, err := id.Sign(plain)
	if err != nil {
		return wire.Attestation{}, fmt.Errorf("sign metadata: %w", err)
	}
	spec.Counter.AddSign(1)
	enc, ephemeral, generation, err := spec.sealTo(spec.Sessions.ForAttestor(id), plain)
	if err != nil {
		return wire.Attestation{}, fmt.Errorf("encrypt metadata: %w", err)
	}
	return wire.Attestation{
		PeerName:          id.Name,
		OrgID:             id.OrgID,
		CertPEM:           id.CertPEM(),
		EncryptedMetadata: enc,
		Signature:         sig,
		SessionEphemeral:  ephemeral,
		SessionGeneration: generation,
	}, nil
}

// Build is the single construction point for attestation proofs: it gathers
// one pinned attestation per attestor concurrently (each attestation is an
// independent ECDSA sign + ECIES encrypt, the dominant per-peer cost) and
// encrypts the result to the requester. The first attestor failure — or a
// cancelled ctx — aborts the remaining fan-out instead of burning full
// crypto cost on a proof that can no longer be completed. Callers that
// persist the proof wrap the response with Seal; query paths use the
// response directly.
func Build(ctx context.Context, spec Spec, attestors []*msp.Identity) (*wire.QueryResponse, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	resp := &wire.QueryResponse{PolicyDigest: spec.PolicyDigest}
	resp.Attestations = make([]wire.Attestation, len(attestors))
	errs := make([]error, len(attestors))
	var wg sync.WaitGroup
	for i, id := range attestors {
		wg.Add(1)
		go func(i int, id *msp.Identity) {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			att, err := buildAttestation(id, &spec)
			if err != nil {
				errs[i] = fmt.Errorf("proof: attestation from %s: %w", id.Name, err)
				cancel()
				return
			}
			resp.Attestations[i] = att
		}(i, id)
	}
	encResult, resultEphemeral, resultGeneration, encErr := spec.sealResult()
	wg.Wait()
	// Report a real attestation failure in preference to the context
	// errors it induced in the goroutines that saw the cancellation.
	var ctxErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			ctxErr = err
			continue
		}
		return nil, err
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	if encErr != nil {
		return nil, fmt.Errorf("proof: encrypt result: %w", encErr)
	}
	resp.EncryptedResult = encResult
	resp.SessionEphemeral = resultEphemeral
	resp.SessionGeneration = resultGeneration
	return resp, nil
}

// Seal wraps a marshaled response Build produced into the persisted proof
// artifact, binding it to the build spec's digests, timestamp and attestor
// identities. Taking the already-marshaled bytes keeps proof construction
// to a single serialization on every path.
func Seal(spec Spec, marshaledResp []byte, attestors []*msp.Identity) *Sealed {
	sealed := &Sealed{
		QueryDigest:  spec.QueryDigest,
		PolicyDigest: spec.PolicyDigest,
		UnixNano:     uint64(spec.Now.UnixNano()),
		Response:     marshaledResp,
	}
	for _, id := range attestors {
		sealed.Attestors = append(sealed.Attestors, id.OrgID+"/"+id.Name)
	}
	return sealed
}

// Sealed is the persisted form of a proof: the exact wire response served
// to the requester (encrypted result plus attestation set), bound to the
// query digest, the pinned policy digest, the attestor identities and the
// build time. It rides in ledger.Transaction next to the interop key, so a
// replayed invoke re-serves the original proof byte for byte — no
// re-signing, no re-encryption, and no dependence on which attestor
// organizations still exist when the replay happens.
type Sealed struct {
	QueryDigest  []byte
	PolicyDigest []byte
	UnixNano     uint64
	Attestors    []string // "orgID/peerName" per attestation, for tooling
	Response     []byte   // marshaled wire.QueryResponse
}

// Marshal encodes the sealed proof for transaction storage.
func (s *Sealed) Marshal() []byte {
	e := wire.NewEncoder(128 + len(s.Response))
	e.BytesField(1, s.QueryDigest)
	e.BytesField(2, s.PolicyDigest)
	e.Uint(3, s.UnixNano)
	for _, a := range s.Attestors {
		e.String(4, a)
	}
	e.BytesField(5, s.Response)
	return e.Bytes()
}

// sealedScalars omits field 4 (Attestors), the only repeated field. A
// duplicate scalar occurrence is rejected rather than resolved last-write-
// wins: a crafted bundle carrying two Response payloads could otherwise
// swap in a second response behind the one that was verified.
var sealedScalars = wire.FieldMask(1, 2, 3, 5)

// UnmarshalSealed decodes a sealed proof.
func UnmarshalSealed(buf []byte) (*Sealed, error) {
	s := &Sealed{}
	d := wire.NewDecoder(buf)
	var g wire.ScalarGuard
	for {
		field, ok, err := d.Next()
		if err != nil {
			return nil, fmt.Errorf("sealed proof: %w", err)
		}
		if !ok {
			return s, nil
		}
		if err := g.Check(field, sealedScalars); err != nil {
			return nil, fmt.Errorf("sealed proof field %d: %w", field, err)
		}
		switch field {
		case 1:
			s.QueryDigest, err = d.BytesCopy()
		case 2:
			s.PolicyDigest, err = d.BytesCopy()
		case 3:
			s.UnixNano, err = d.Uint()
		case 4:
			var a string
			a, err = d.String()
			s.Attestors = append(s.Attestors, a)
		case 5:
			s.Response, err = d.BytesCopy()
		default:
			err = d.Skip()
		}
		if err != nil {
			return nil, fmt.Errorf("sealed proof field %d: %w", field, err)
		}
	}
}

// OpenWire decodes the sealed proof's stored wire response.
func (s *Sealed) OpenWire() (*wire.QueryResponse, error) {
	return wire.UnmarshalQueryResponse(s.Response)
}
