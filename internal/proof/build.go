package proof

import (
	"context"
	"crypto/ecdsa"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/msp"
	"repro/internal/wire"
)

// Spec carries everything needed to build a proof once: the identity of the
// question (query digest), the policy pin the attestors are selected under,
// the agreed plaintext result, the requester's nonce and encryption key,
// and the build time stamped into every attestation.
type Spec struct {
	NetworkID    string
	QueryDigest  []byte
	PolicyDigest []byte
	Result       []byte
	Nonce        []byte
	ClientPub    *ecdsa.PublicKey
	Now          time.Time
}

// Build is the single construction point for attestation proofs: it gathers
// one pinned attestation per attestor concurrently (each attestation is an
// independent ECDSA sign + ECIES encrypt, the dominant per-peer cost) and
// encrypts the result to the requester. The first attestor failure — or a
// cancelled ctx — aborts the remaining fan-out instead of burning full
// crypto cost on a proof that can no longer be completed. Callers that
// persist the proof wrap the response with Seal; query paths use the
// response directly.
func Build(ctx context.Context, spec Spec, attestors []*msp.Identity) (*wire.QueryResponse, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	resp := &wire.QueryResponse{PolicyDigest: spec.PolicyDigest}
	resp.Attestations = make([]wire.Attestation, len(attestors))
	errs := make([]error, len(attestors))
	var wg sync.WaitGroup
	for i, id := range attestors {
		wg.Add(1)
		go func(i int, id *msp.Identity) {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			att, err := BuildAttestationPinned(id, spec.NetworkID, spec.QueryDigest,
				spec.PolicyDigest, spec.Result, spec.Nonce, spec.ClientPub, spec.Now)
			if err != nil {
				errs[i] = fmt.Errorf("proof: attestation from %s: %w", id.Name, err)
				cancel()
				return
			}
			resp.Attestations[i] = att
		}(i, id)
	}
	encResult, encErr := EncryptResult(spec.ClientPub, spec.Result)
	wg.Wait()
	// Report a real attestation failure in preference to the context
	// errors it induced in the goroutines that saw the cancellation.
	var ctxErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			ctxErr = err
			continue
		}
		return nil, err
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	if encErr != nil {
		return nil, fmt.Errorf("proof: encrypt result: %w", encErr)
	}
	resp.EncryptedResult = encResult
	return resp, nil
}

// Seal wraps a marshaled response Build produced into the persisted proof
// artifact, binding it to the build spec's digests, timestamp and attestor
// identities. Taking the already-marshaled bytes keeps proof construction
// to a single serialization on every path.
func Seal(spec Spec, marshaledResp []byte, attestors []*msp.Identity) *Sealed {
	sealed := &Sealed{
		QueryDigest:  spec.QueryDigest,
		PolicyDigest: spec.PolicyDigest,
		UnixNano:     uint64(spec.Now.UnixNano()),
		Response:     marshaledResp,
	}
	for _, id := range attestors {
		sealed.Attestors = append(sealed.Attestors, id.OrgID+"/"+id.Name)
	}
	return sealed
}

// Sealed is the persisted form of a proof: the exact wire response served
// to the requester (encrypted result plus attestation set), bound to the
// query digest, the pinned policy digest, the attestor identities and the
// build time. It rides in ledger.Transaction next to the interop key, so a
// replayed invoke re-serves the original proof byte for byte — no
// re-signing, no re-encryption, and no dependence on which attestor
// organizations still exist when the replay happens.
type Sealed struct {
	QueryDigest  []byte
	PolicyDigest []byte
	UnixNano     uint64
	Attestors    []string // "orgID/peerName" per attestation, for tooling
	Response     []byte   // marshaled wire.QueryResponse
}

// Marshal encodes the sealed proof for transaction storage.
func (s *Sealed) Marshal() []byte {
	e := wire.NewEncoder(128 + len(s.Response))
	e.BytesField(1, s.QueryDigest)
	e.BytesField(2, s.PolicyDigest)
	e.Uint(3, s.UnixNano)
	for _, a := range s.Attestors {
		e.String(4, a)
	}
	e.BytesField(5, s.Response)
	return e.Bytes()
}

// sealedScalars omits field 4 (Attestors), the only repeated field. A
// duplicate scalar occurrence is rejected rather than resolved last-write-
// wins: a crafted bundle carrying two Response payloads could otherwise
// swap in a second response behind the one that was verified.
var sealedScalars = wire.FieldMask(1, 2, 3, 5)

// UnmarshalSealed decodes a sealed proof.
func UnmarshalSealed(buf []byte) (*Sealed, error) {
	s := &Sealed{}
	d := wire.NewDecoder(buf)
	var g wire.ScalarGuard
	for {
		field, ok, err := d.Next()
		if err != nil {
			return nil, fmt.Errorf("sealed proof: %w", err)
		}
		if !ok {
			return s, nil
		}
		if err := g.Check(field, sealedScalars); err != nil {
			return nil, fmt.Errorf("sealed proof field %d: %w", field, err)
		}
		switch field {
		case 1:
			s.QueryDigest, err = d.BytesCopy()
		case 2:
			s.PolicyDigest, err = d.BytesCopy()
		case 3:
			s.UnixNano, err = d.Uint()
		case 4:
			var a string
			a, err = d.String()
			s.Attestors = append(s.Attestors, a)
		case 5:
			s.Response, err = d.BytesCopy()
		default:
			err = d.Skip()
		}
		if err != nil {
			return nil, fmt.Errorf("sealed proof field %d: %w", field, err)
		}
	}
}

// OpenWire decodes the sealed proof's stored wire response.
func (s *Sealed) OpenWire() (*wire.QueryResponse, error) {
	return wire.UnmarshalQueryResponse(s.Response)
}
