package proof

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/cryptoutil"
	"repro/internal/msp"
	"repro/internal/wire"
)

// BuildBatch builds proofs for a window of concurrent queries with one
// ECDSA signature per attestor for the whole window: each attestor hashes
// every query's metadata into a leaf, builds a Merkle tree over the
// window, signs the domain-separated root once, and each query's
// attestation carries its leaf index plus inclusion path instead of a
// dedicated signature. ECIES encryption stays per query per attestor —
// metadata and results are encrypted to each requester individually, so
// batching changes nothing about confidentiality, only amortizes the
// signing cost (the point of the batching window under heavy distinct-
// query traffic). The returned slice is index-aligned with specs.
//
// Every spec in the window must share the same NetworkID and attestor
// set — the batcher groups windows by attestor set before calling. A
// one-entry window degenerates to the single-signature Build path, so
// lone latency-critical queries never pay the batched proof overhead.
// The first failure anywhere cancels the remaining fan-out.
func BuildBatch(ctx context.Context, specs []Spec, attestors []*msp.Identity) ([]*wire.QueryResponse, error) {
	switch len(specs) {
	case 0:
		return nil, nil
	case 1:
		resp, err := Build(ctx, specs[0], attestors)
		if err != nil {
			return nil, err
		}
		return []*wire.QueryResponse{resp}, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	resps := make([]*wire.QueryResponse, len(specs))
	for i := range specs {
		resps[i] = &wire.QueryResponse{
			PolicyDigest: specs[i].PolicyDigest,
			Attestations: make([]wire.Attestation, len(attestors)),
		}
	}
	errs := make([]error, len(attestors))
	var wg sync.WaitGroup
	for ai, id := range attestors {
		wg.Add(1)
		go func(ai int, id *msp.Identity) {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				errs[ai] = err
				return
			}
			plains := make([][]byte, len(specs))
			leaves := make([][]byte, len(specs))
			for si := range specs {
				plains[si] = MetadataPlain(id, &specs[si])
				leaves[si] = merkleLeafHash(plains[si])
			}
			sig, err := id.Sign(batchSigPayload(merkleRoot(leaves)))
			if err != nil {
				errs[ai] = fmt.Errorf("proof: batch signature from %s: %w", id.Name, err)
				cancel()
				return
			}
			// One real signature for the whole window; account it once.
			specs[0].Counter.AddSign(1)
			cert := id.CertPEM()
			for si := range specs {
				if err := ctx.Err(); err != nil {
					errs[ai] = err
					return
				}
				// Sessioned vs classic is a per-spec choice: a window can mix
				// requesters that announced AcceptSessioned with legacy ones,
				// and the latter must keep byte-identical classic envelopes.
				sp := &specs[si]
				var mgr *cryptoutil.SessionManager
				if sp.Sessions != nil {
					mgr = sp.Sessions.ForAttestor(id)
				}
				encMeta, ephemeral, generation, err := sp.sealTo(mgr, plains[si])
				if err != nil {
					errs[ai] = fmt.Errorf("proof: encrypt metadata from %s: %w", id.Name, err)
					cancel()
					return
				}
				resps[si].Attestations[ai] = wire.Attestation{
					PeerName:          id.Name,
					OrgID:             id.OrgID,
					CertPEM:           cert,
					EncryptedMetadata: encMeta,
					Signature:         sig,
					BatchSize:         uint64(len(specs)),
					BatchIndex:        uint64(si),
					BatchPath:         merklePath(leaves, si),
					SessionEphemeral:  ephemeral,
					SessionGeneration: generation,
				}
			}
		}(ai, id)
	}
	var resultErr error
	for si := range specs {
		if err := ctx.Err(); err != nil {
			resultErr = err
			break
		}
		enc, ephemeral, generation, err := specs[si].sealResult()
		if err != nil {
			resultErr = fmt.Errorf("proof: encrypt result: %w", err)
			cancel()
			break
		}
		resps[si].EncryptedResult = enc
		resps[si].SessionEphemeral = ephemeral
		resps[si].SessionGeneration = generation
	}
	wg.Wait()
	var ctxErr error
	for _, err := range append(errs, resultErr) {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			ctxErr = err
			continue
		}
		return nil, err
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	return resps, nil
}
