package proof

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/endorsement"
	"repro/internal/msp"
	"repro/internal/wire"
)

// setup creates the source-side fixture: two organizations with one
// attesting peer each, plus the verifier a destination network would build
// from their recorded root certificates.
func setup(t *testing.T) (*msp.CA, *msp.CA, *msp.Identity, *msp.Identity, *msp.Verifier) {
	t.Helper()
	sellerCA, err := msp.NewCA("seller-org")
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	carrierCA, err := msp.NewCA("carrier-org")
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	sellerPeer, err := sellerCA.Issue("seller-org-peer0", msp.RolePeer)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	carrierPeer, err := carrierCA.Issue("carrier-org-peer0", msp.RolePeer)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	verifier, err := msp.NewVerifier(map[string][]byte{
		"seller-org":  sellerCA.RootCertPEM(),
		"carrier-org": carrierCA.RootCertPEM(),
	})
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	return sellerCA, carrierCA, sellerPeer, carrierPeer, verifier
}

func sampleQuery(t *testing.T) *wire.Query {
	t.Helper()
	nonce, err := cryptoutil.NewNonce()
	if err != nil {
		t.Fatalf("NewNonce: %v", err)
	}
	return &wire.Query{
		RequestID:         "req-1",
		RequestingNetwork: "we-trade",
		TargetNetwork:     "tradelens",
		Ledger:            "default",
		Contract:          "TradeLensCC",
		Function:          "GetBillOfLading",
		Args:              [][]byte{[]byte("po-1001")},
		PolicyExpr:        "AND('seller-org','carrier-org')",
		Nonce:             nonce,
	}
}

func TestEndToEndProofFlow(t *testing.T) {
	_, _, sellerPeer, carrierPeer, verifier := setup(t)
	clientKey, err := cryptoutil.GenerateKey()
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	q := sampleQuery(t)
	result := []byte(`{"blId":"bl-77","po":"po-1001"}`)
	qd := QueryDigestOf(q)

	encResult, err := EncryptResult(&clientKey.PublicKey, result)
	if err != nil {
		t.Fatalf("EncryptResult: %v", err)
	}
	resp := &wire.QueryResponse{RequestID: q.RequestID, EncryptedResult: encResult}
	for _, attestor := range []*msp.Identity{sellerPeer, carrierPeer} {
		att, err := BuildAttestationPinned(attestor, "tradelens", qd, nil, result, q.Nonce, &clientKey.PublicKey, time.Now())
		if err != nil {
			t.Fatalf("BuildAttestation: %v", err)
		}
		resp.Attestations = append(resp.Attestations, att)
	}

	bundle, err := OpenResponse(clientKey, q, resp)
	if err != nil {
		t.Fatalf("OpenResponse: %v", err)
	}
	if !bytes.Equal(bundle.Result, result) {
		t.Fatalf("bundle result = %q", bundle.Result)
	}
	if len(bundle.Elements) != 2 {
		t.Fatalf("elements = %d", len(bundle.Elements))
	}

	vp := endorsement.MustParse(q.PolicyExpr)
	if err := Verify(bundle, verifier, vp, qd, nil); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func buildBundle(t *testing.T, q *wire.Query, result []byte, attestors ...*msp.Identity) *Bundle {
	t.Helper()
	clientKey, err := cryptoutil.GenerateKey()
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	qd := QueryDigestOf(q)
	encResult, err := EncryptResult(&clientKey.PublicKey, result)
	if err != nil {
		t.Fatalf("EncryptResult: %v", err)
	}
	resp := &wire.QueryResponse{RequestID: q.RequestID, EncryptedResult: encResult}
	for _, attestor := range attestors {
		att, err := BuildAttestationPinned(attestor, q.TargetNetwork, qd, nil, result, q.Nonce, &clientKey.PublicKey, time.Now())
		if err != nil {
			t.Fatalf("BuildAttestation: %v", err)
		}
		resp.Attestations = append(resp.Attestations, att)
	}
	bundle, err := OpenResponse(clientKey, q, resp)
	if err != nil {
		t.Fatalf("OpenResponse: %v", err)
	}
	return bundle
}

func TestVerifyRejectsTamperedResult(t *testing.T) {
	_, _, sellerPeer, carrierPeer, verifier := setup(t)
	q := sampleQuery(t)
	bundle := buildBundle(t, q, []byte("genuine B/L"), sellerPeer, carrierPeer)
	vp := endorsement.MustParse(q.PolicyExpr)
	qd := QueryDigestOf(q)

	bundle.Result = []byte("forged B/L")
	if err := Verify(bundle, verifier, vp, qd, nil); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("tampered result: %v", err)
	}
}

func TestVerifyRejectsForgedSignature(t *testing.T) {
	_, _, sellerPeer, carrierPeer, verifier := setup(t)
	q := sampleQuery(t)
	bundle := buildBundle(t, q, []byte("doc"), sellerPeer, carrierPeer)
	vp := endorsement.MustParse(q.PolicyExpr)
	qd := QueryDigestOf(q)

	bundle.Elements[0].Signature[8] ^= 0xFF
	if err := Verify(bundle, verifier, vp, qd, nil); !errors.Is(err, ErrBadAttestation) {
		t.Fatalf("forged signature: %v", err)
	}
}

func TestVerifyRejectsUnknownCA(t *testing.T) {
	_, _, sellerPeer, _, verifier := setup(t)
	q := sampleQuery(t)

	// A rogue CA impersonating the carrier org.
	rogueCA, _ := msp.NewCA("carrier-org")
	roguePeer, _ := rogueCA.Issue("carrier-org-peer0", msp.RolePeer)

	bundle := buildBundle(t, q, []byte("doc"), sellerPeer, roguePeer)
	vp := endorsement.MustParse(q.PolicyExpr)
	if err := Verify(bundle, verifier, vp, QueryDigestOf(q), nil); !errors.Is(err, ErrBadAttestation) {
		t.Fatalf("rogue CA: %v", err)
	}
}

func TestVerifyRejectsNonPeerAttestor(t *testing.T) {
	sellerCA, _, sellerPeer, _, verifier := setup(t)
	q := sampleQuery(t)
	clientID, _ := sellerCA.Issue("some-client", msp.RoleClient)
	bundle := buildBundle(t, q, []byte("doc"), sellerPeer, clientID)
	vp := endorsement.MustParse("'seller-org'")
	if err := Verify(bundle, verifier, vp, QueryDigestOf(q), nil); !errors.Is(err, ErrNotPeer) {
		t.Fatalf("client attestor: %v", err)
	}
}

func TestVerifyRejectsUnsatisfiedPolicy(t *testing.T) {
	_, _, sellerPeer, _, verifier := setup(t)
	q := sampleQuery(t)
	// Only the seller org attests, but the policy wants both orgs.
	bundle := buildBundle(t, q, []byte("doc"), sellerPeer)
	vp := endorsement.MustParse("AND('seller-org','carrier-org')")
	if err := Verify(bundle, verifier, vp, QueryDigestOf(q), nil); !errors.Is(err, ErrPolicyUnsatisfied) {
		t.Fatalf("unsatisfied policy: %v", err)
	}
}

func TestVerifyRejectsWrongQueryDigest(t *testing.T) {
	_, _, sellerPeer, carrierPeer, verifier := setup(t)
	q := sampleQuery(t)
	bundle := buildBundle(t, q, []byte("doc"), sellerPeer, carrierPeer)
	vp := endorsement.MustParse(q.PolicyExpr)

	otherDigest := QueryDigest("tradelens", "default", "TradeLensCC", "GetBillOfLading",
		[][]byte{[]byte("po-9999")}, q.Nonce)
	if err := Verify(bundle, verifier, vp, otherDigest, nil); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("wrong query digest: %v", err)
	}
}

func TestVerifyRejectsWrongNetwork(t *testing.T) {
	_, _, sellerPeer, carrierPeer, verifier := setup(t)
	q := sampleQuery(t)
	bundle := buildBundle(t, q, []byte("doc"), sellerPeer, carrierPeer)
	vp := endorsement.MustParse(q.PolicyExpr)
	bundle.SourceNetwork = "some-other-net"
	if err := Verify(bundle, verifier, vp, QueryDigestOf(q), nil); !errors.Is(err, ErrWrongNetwork) {
		t.Fatalf("wrong network: %v", err)
	}
}

func TestVerifyRejectsNonceSwap(t *testing.T) {
	_, _, sellerPeer, carrierPeer, verifier := setup(t)
	q := sampleQuery(t)
	bundle := buildBundle(t, q, []byte("doc"), sellerPeer, carrierPeer)
	vp := endorsement.MustParse(q.PolicyExpr)

	// An attacker replays the bundle under a different nonce: the expected
	// query digest changes with the nonce, and the metadata nonce check
	// fires too.
	newNonce, _ := cryptoutil.NewNonce()
	bundle.Nonce = newNonce
	err := Verify(bundle, verifier, vp, QueryDigestOf(q), nil)
	if err == nil {
		t.Fatal("nonce swap accepted")
	}
}

func TestVerifyNilPolicy(t *testing.T) {
	_, _, sellerPeer, _, verifier := setup(t)
	q := sampleQuery(t)
	bundle := buildBundle(t, q, []byte("doc"), sellerPeer)
	if err := Verify(bundle, verifier, nil, QueryDigestOf(q), nil); !errors.Is(err, ErrPolicyUnsatisfied) {
		t.Fatalf("nil policy: %v", err)
	}
}

func TestOpenResponseRejectsRemoteError(t *testing.T) {
	clientKey, _ := cryptoutil.GenerateKey()
	q := sampleQuery(t)
	resp := &wire.QueryResponse{RequestID: q.RequestID, Error: "access denied"}
	if _, err := OpenResponse(clientKey, q, resp); err == nil {
		t.Fatal("error response accepted")
	}
}

func TestOpenResponseWrongKey(t *testing.T) {
	_, _, sellerPeer, _, _ := setup(t)
	rightKey, _ := cryptoutil.GenerateKey()
	wrongKey, _ := cryptoutil.GenerateKey()
	q := sampleQuery(t)
	result := []byte("doc")
	qd := QueryDigestOf(q)
	encResult, _ := EncryptResult(&rightKey.PublicKey, result)
	att, err := BuildAttestationPinned(sellerPeer, q.TargetNetwork, qd, nil, result, q.Nonce, &rightKey.PublicKey, time.Now())
	if err != nil {
		t.Fatalf("BuildAttestation: %v", err)
	}
	resp := &wire.QueryResponse{EncryptedResult: encResult, Attestations: []wire.Attestation{att}}
	if _, err := OpenResponse(wrongKey, q, resp); err == nil {
		t.Fatal("wrong key opened the response")
	}
}

func TestOpenResponseDetectsRelayResultSwap(t *testing.T) {
	// A malicious relay swaps the encrypted result for another ciphertext
	// encrypted to the same client; the metadata digest exposes it.
	_, _, sellerPeer, _, _ := setup(t)
	clientKey, _ := cryptoutil.GenerateKey()
	q := sampleQuery(t)
	genuine := []byte("genuine")
	qd := QueryDigestOf(q)
	att, err := BuildAttestationPinned(sellerPeer, q.TargetNetwork, qd, nil, genuine, q.Nonce, &clientKey.PublicKey, time.Now())
	if err != nil {
		t.Fatalf("BuildAttestation: %v", err)
	}
	swapped, _ := EncryptResult(&clientKey.PublicKey, []byte("swapped"))
	resp := &wire.QueryResponse{EncryptedResult: swapped, Attestations: []wire.Attestation{att}}
	if _, err := OpenResponse(clientKey, q, resp); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("result swap: %v", err)
	}
}

func TestBundleMarshalRoundTrip(t *testing.T) {
	_, _, sellerPeer, carrierPeer, _ := setup(t)
	q := sampleQuery(t)
	bundle := buildBundle(t, q, []byte("doc"), sellerPeer, carrierPeer)
	got, err := UnmarshalBundle(bundle.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalBundle: %v", err)
	}
	if got.SourceNetwork != bundle.SourceNetwork || !bytes.Equal(got.Result, bundle.Result) ||
		!bytes.Equal(got.Nonce, bundle.Nonce) || len(got.Elements) != len(bundle.Elements) {
		t.Fatalf("round-trip: %+v", got)
	}
	for i := range got.Elements {
		if !bytes.Equal(got.Elements[i].Metadata, bundle.Elements[i].Metadata) {
			t.Fatalf("element %d metadata", i)
		}
	}
}

func TestBundleUnmarshalGarbage(t *testing.T) {
	if _, err := UnmarshalBundle(bytes.Repeat([]byte{0xFE}, 10)); err == nil {
		t.Fatal("garbage bundle accepted")
	}
}

func TestQueryDigestSensitivity(t *testing.T) {
	base := QueryDigest("net", "ledger", "cc", "fn", [][]byte{[]byte("a")}, []byte("n1"))
	variants := []struct {
		name string
		d    []byte
	}{
		{"network", QueryDigest("net2", "ledger", "cc", "fn", [][]byte{[]byte("a")}, []byte("n1"))},
		{"ledger", QueryDigest("net", "ledger2", "cc", "fn", [][]byte{[]byte("a")}, []byte("n1"))},
		{"contract", QueryDigest("net", "ledger", "cc2", "fn", [][]byte{[]byte("a")}, []byte("n1"))},
		{"function", QueryDigest("net", "ledger", "cc", "fn2", [][]byte{[]byte("a")}, []byte("n1"))},
		{"args", QueryDigest("net", "ledger", "cc", "fn", [][]byte{[]byte("b")}, []byte("n1"))},
		{"nonce", QueryDigest("net", "ledger", "cc", "fn", [][]byte{[]byte("a")}, []byte("n2"))},
	}
	for _, v := range variants {
		if bytes.Equal(base, v.d) {
			t.Fatalf("digest insensitive to %s", v.name)
		}
	}
	again := QueryDigest("net", "ledger", "cc", "fn", [][]byte{[]byte("a")}, []byte("n1"))
	if !bytes.Equal(base, again) {
		t.Fatal("digest not deterministic")
	}
}

func BenchmarkBuildAttestation(b *testing.B) {
	ca, _ := msp.NewCA("org")
	attestor, _ := ca.Issue("peer0", msp.RolePeer)
	clientKey, _ := cryptoutil.GenerateKey()
	qd := QueryDigest("net", "l", "cc", "fn", nil, []byte("nonce"))
	result := make([]byte, 1024)
	now := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildAttestationPinned(attestor, "net", qd, nil, result, []byte("nonce"), &clientKey.PublicKey, now); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyTwoAttestors(b *testing.B) {
	sellerCA, _ := msp.NewCA("seller-org")
	carrierCA, _ := msp.NewCA("carrier-org")
	sellerPeer, _ := sellerCA.Issue("sp", msp.RolePeer)
	carrierPeer, _ := carrierCA.Issue("cp", msp.RolePeer)
	verifier, _ := msp.NewVerifier(map[string][]byte{
		"seller-org":  sellerCA.RootCertPEM(),
		"carrier-org": carrierCA.RootCertPEM(),
	})
	clientKey, _ := cryptoutil.GenerateKey()
	nonce, _ := cryptoutil.NewNonce()
	q := &wire.Query{TargetNetwork: "tl", Ledger: "l", Contract: "cc", Function: "fn", Nonce: nonce}
	result := make([]byte, 1024)
	qd := QueryDigestOf(q)
	encResult, _ := EncryptResult(&clientKey.PublicKey, result)
	resp := &wire.QueryResponse{EncryptedResult: encResult}
	for _, at := range []*msp.Identity{sellerPeer, carrierPeer} {
		att, _ := BuildAttestationPinned(at, "tl", qd, nil, result, nonce, &clientKey.PublicKey, time.Now())
		resp.Attestations = append(resp.Attestations, att)
	}
	bundle, err := OpenResponse(clientKey, q, resp)
	if err != nil {
		b.Fatal(err)
	}
	vp := endorsement.MustParse("AND('seller-org','carrier-org')")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(bundle, verifier, vp, qd, nil); err != nil {
			b.Fatal(err)
		}
	}
}
