package proof

import (
	"bytes"
	"context"
	"crypto/ecdsa"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/endorsement"
	"repro/internal/msp"
	"repro/internal/wire"
)

// batchFixture builds a window of n distinct queries (fresh nonce and
// result each) from n distinct requesters and runs BuildBatch over the
// standard two-org attestor set.
func batchFixture(t *testing.T, n int) (queries []*wire.Query, keys []*ecdsa.PrivateKey, specs []Spec, resps []*wire.QueryResponse, verifier *msp.Verifier) {
	t.Helper()
	_, _, sellerPeer, carrierPeer, v := setup(t)
	now := time.Now()
	for i := 0; i < n; i++ {
		key, err := cryptoutil.GenerateKey()
		if err != nil {
			t.Fatalf("GenerateKey: %v", err)
		}
		q := sampleQuery(t)
		q.RequestID = fmt.Sprintf("req-batch-%d", i)
		queries = append(queries, q)
		keys = append(keys, key)
		specs = append(specs, Spec{
			NetworkID:    "tradelens",
			QueryDigest:  QueryDigestOf(q),
			PolicyDigest: PolicyDigest(q.PolicyExpr),
			Result:       []byte(fmt.Sprintf(`{"blId":"bl-%d"}`, i)),
			Nonce:        q.Nonce,
			ClientPub:    &key.PublicKey,
			Now:          now,
		})
	}
	resps, err := BuildBatch(context.Background(), specs, []*msp.Identity{sellerPeer, carrierPeer})
	if err != nil {
		t.Fatalf("BuildBatch: %v", err)
	}
	if len(resps) != n {
		t.Fatalf("responses = %d, want %d", len(resps), n)
	}
	return queries, keys, specs, resps, v
}

func TestBuildBatchProducesVerifiableProofs(t *testing.T) {
	const n = 3
	queries, keys, specs, resps, verifier := batchFixture(t, n)
	vp := endorsement.MustParse(queries[0].PolicyExpr)
	for i := 0; i < n; i++ {
		bundle, err := OpenResponse(keys[i], queries[i], resps[i])
		if err != nil {
			t.Fatalf("OpenResponse %d: %v", i, err)
		}
		if !bytes.Equal(bundle.Result, specs[i].Result) {
			t.Fatalf("result %d = %q", i, bundle.Result)
		}
		for _, el := range bundle.Elements {
			if el.BatchSize != n {
				t.Fatalf("element batch size = %d, want %d", el.BatchSize, n)
			}
			if el.BatchIndex != uint64(i) {
				t.Fatalf("element batch index = %d, want %d", el.BatchIndex, i)
			}
		}
		if err := Verify(bundle, verifier, vp, specs[i].QueryDigest, specs[i].PolicyDigest); err != nil {
			t.Fatalf("Verify %d: %v", i, err)
		}
	}
}

func TestBuildBatchSharesOneSignaturePerAttestor(t *testing.T) {
	// The point of batching: within a window every query carries the SAME
	// signature from a given attestor — one ECDSA sign per attestor per
	// window regardless of window width.
	_, _, _, resps, _ := batchFixture(t, 4)
	for ai := range resps[0].Attestations {
		first := resps[0].Attestations[ai].Signature
		for qi := 1; qi < len(resps); qi++ {
			if !bytes.Equal(first, resps[qi].Attestations[ai].Signature) {
				t.Fatalf("attestor %d signed query %d separately", ai, qi)
			}
		}
	}
}

func TestBuildBatchSingleSpecFallsBackToSingleSignature(t *testing.T) {
	queries, keys, specs, resps, verifier := batchFixture(t, 1)
	for _, att := range resps[0].Attestations {
		if att.BatchSize != 0 || len(att.BatchPath) != 0 {
			t.Fatal("lone query paid the batched-proof overhead")
		}
	}
	bundle, err := OpenResponse(keys[0], queries[0], resps[0])
	if err != nil {
		t.Fatalf("OpenResponse: %v", err)
	}
	vp := endorsement.MustParse(queries[0].PolicyExpr)
	if err := Verify(bundle, verifier, vp, specs[0].QueryDigest, specs[0].PolicyDigest); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestBatchedElementTamperingRejected(t *testing.T) {
	queries, keys, specs, resps, verifier := batchFixture(t, 3)
	vp := endorsement.MustParse(queries[0].PolicyExpr)
	open := func() *Bundle {
		t.Helper()
		b, err := OpenResponse(keys[1], queries[1], resps[1])
		if err != nil {
			t.Fatalf("OpenResponse: %v", err)
		}
		return b
	}

	// Claiming single-signature mode for a batch-signed element must fail:
	// the signature is over the domain-separated root, not the metadata.
	b := open()
	for i := range b.Elements {
		b.Elements[i].BatchSize = 0
		b.Elements[i].BatchPath = nil
	}
	if err := Verify(b, verifier, vp, specs[1].QueryDigest, specs[1].PolicyDigest); !errors.Is(err, ErrBadAttestation) {
		t.Fatalf("mode-stripped element accepted: %v", err)
	}

	// A lied-about leaf index recomputes a different root.
	b = open()
	b.Elements[0].BatchIndex = 0
	if err := Verify(b, verifier, vp, specs[1].QueryDigest, specs[1].PolicyDigest); !errors.Is(err, ErrBadAttestation) {
		t.Fatalf("wrong-index element accepted: %v", err)
	}

	// A corrupted sibling hash breaks the inclusion proof.
	b = open()
	b.Elements[0].BatchPath[0][0] ^= 0xff
	if err := Verify(b, verifier, vp, specs[1].QueryDigest, specs[1].PolicyDigest); !errors.Is(err, ErrBadAttestation) {
		t.Fatalf("corrupt-path element accepted: %v", err)
	}

	// A truncated path is structurally impossible for the claimed size.
	b = open()
	b.Elements[0].BatchPath = b.Elements[0].BatchPath[:1]
	if err := Verify(b, verifier, vp, specs[1].QueryDigest, specs[1].PolicyDigest); !errors.Is(err, ErrBadAttestation) {
		t.Fatalf("truncated-path element accepted: %v", err)
	}
}

func TestBatchedBundleSurvivesMarshalRoundTrip(t *testing.T) {
	// The batch fields ride inside the persisted Bundle encoding — a
	// destination peer that receives the serialized bundle (the Data
	// Acceptance path) must still be able to verify the batched proof.
	queries, keys, specs, resps, verifier := batchFixture(t, 3)
	bundle, err := OpenResponse(keys[2], queries[2], resps[2])
	if err != nil {
		t.Fatalf("OpenResponse: %v", err)
	}
	decoded, err := UnmarshalBundle(bundle.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalBundle: %v", err)
	}
	vp := endorsement.MustParse(queries[2].PolicyExpr)
	if err := Verify(decoded, verifier, vp, specs[2].QueryDigest, specs[2].PolicyDigest); err != nil {
		t.Fatalf("Verify after round trip: %v", err)
	}
}

func TestBuildBatchHonorsCancelledContext(t *testing.T) {
	_, _, sellerPeer, carrierPeer, _ := setup(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var specs []Spec
	for i := 0; i < 2; i++ {
		key, err := cryptoutil.GenerateKey()
		if err != nil {
			t.Fatalf("GenerateKey: %v", err)
		}
		q := sampleQuery(t)
		specs = append(specs, Spec{
			NetworkID: "tradelens", QueryDigest: QueryDigestOf(q),
			PolicyDigest: PolicyDigest(q.PolicyExpr), Result: []byte("r"),
			Nonce: q.Nonce, ClientPub: &key.PublicKey, Now: time.Now(),
		})
	}
	if _, err := BuildBatch(ctx, specs, []*msp.Identity{sellerPeer, carrierPeer}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch built anyway: %v", err)
	}
}

func TestBuildHonorsCancelledContext(t *testing.T) {
	_, _, sellerPeer, carrierPeer, _ := setup(t)
	key, err := cryptoutil.GenerateKey()
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	q := sampleQuery(t)
	spec := Spec{
		NetworkID: "tradelens", QueryDigest: QueryDigestOf(q),
		PolicyDigest: PolicyDigest(q.PolicyExpr), Result: []byte("r"),
		Nonce: q.Nonce, ClientPub: &key.PublicKey, Now: time.Now(),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Build(ctx, spec, []*msp.Identity{sellerPeer, carrierPeer}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled build produced a proof: %v", err)
	}
}

func TestUnmarshalSealedRejectsDuplicateScalarField(t *testing.T) {
	// A crafted Sealed carrying the Response field twice would, under
	// last-write-wins decoding, let an attacker prepend a decoy response
	// while the digest pins still match the original bytes they copied. The
	// decoder must refuse the second occurrence outright.
	_, out, _ := buildFixture(t)
	good := out.sealed.Marshal()
	if _, err := UnmarshalSealed(good); err != nil {
		t.Fatalf("control decode failed: %v", err)
	}

	for _, field := range []int{1, 2, 3, 5} {
		crafted := append(append([]byte{}, good...), encodeDupField(field)...)
		if _, err := UnmarshalSealed(crafted); err == nil {
			t.Fatalf("duplicate scalar field %d accepted", field)
		}
	}

	// Repeated fields stay legal: a second attestor entry (field 4) is not
	// a duplicate scalar.
	crafted := append(append([]byte{}, good...), encodeRepeatedAttestor()...)
	decoded, err := UnmarshalSealed(crafted)
	if err != nil {
		t.Fatalf("legal repeated field refused: %v", err)
	}
	if len(decoded.Attestors) != len(out.sealed.Attestors)+1 {
		t.Fatalf("attestors = %d", len(decoded.Attestors))
	}
}

// encodeDupField encodes one extra occurrence of a Sealed scalar field.
func encodeDupField(field int) []byte {
	e := wire.NewEncoder(32)
	switch field {
	case 3: // UnixNano, varint
		e.Uint(field, 12345)
	default: // bytes fields
		e.BytesField(field, []byte("dup"))
	}
	return e.Bytes()
}

func encodeRepeatedAttestor() []byte {
	e := wire.NewEncoder(32)
	e.String(4, "extra-org/extra-peer")
	return e.Bytes()
}
