package notary

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/cryptoutil"
	"repro/internal/endorsement"
	"repro/internal/msp"
	"repro/internal/policy"
	"repro/internal/proof"
	"repro/internal/relay"
	"repro/internal/wire"
)

func newNotaryNet(t testing.TB) *Network {
	t.Helper()
	n := NewNetwork("stl-notary")
	for _, org := range []string{"notary-alpha", "notary-beta"} {
		if _, err := n.AddNotary(org); err != nil {
			t.Fatalf("AddNotary: %v", err)
		}
	}
	n.RegisterView("TradeLensCC", "GetBillOfLading", func(vault ReadVault, args [][]byte) ([]byte, error) {
		if len(args) != 1 {
			return nil, errors.New("GetBillOfLading needs poRef")
		}
		return vault.Get("bl/" + string(args[0]))
	})
	return n
}

func TestVaultUpdateAndVersioning(t *testing.T) {
	n := newNotaryNet(t)
	v, err := n.Update("k", 0, []byte("v1"))
	if err != nil || v != 1 {
		t.Fatalf("Update: v=%d err=%v", v, err)
	}
	// Stale expected version is rejected (uniqueness consensus).
	if _, err := n.Update("k", 0, []byte("v2")); !errors.Is(err, ErrVersionConflict) {
		t.Fatalf("stale update: %v", err)
	}
	v, err = n.Update("k", 1, []byte("v2"))
	if err != nil || v != 2 {
		t.Fatalf("second update: v=%d err=%v", v, err)
	}
	data, ver, err := n.Get("k")
	if err != nil || ver != 2 || !bytes.Equal(data, []byte("v2")) {
		t.Fatalf("Get: %q v=%d err=%v", data, ver, err)
	}
	if _, _, err := n.Get("absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent: %v", err)
	}
}

func TestViewFunctions(t *testing.T) {
	n := newNotaryNet(t)
	if _, err := n.Update("bl/po-1", 0, []byte("doc")); err != nil {
		t.Fatalf("Update: %v", err)
	}
	got, err := n.View("TradeLensCC", "GetBillOfLading", [][]byte{[]byte("po-1")})
	if err != nil || !bytes.Equal(got, []byte("doc")) {
		t.Fatalf("View: %q, %v", got, err)
	}
	if _, err := n.View("TradeLensCC", "Nope", nil); !errors.Is(err, ErrUnknownView) {
		t.Fatalf("unknown view: %v", err)
	}
}

// foreignRequester builds a foreign network ("we-trade") client.
func foreignRequester(t testing.TB) (certPEM []byte, cfg *wire.NetworkConfig, open func(*wire.Query, *wire.QueryResponse) (*proof.Bundle, error)) {
	t.Helper()
	ca, err := msp.NewCA("seller-bank-org")
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	clientKey, err := cryptoutil.GenerateKey()
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	cert, err := ca.IssueForKey("swt-sc", msp.RoleClient, &clientKey.PublicKey)
	if err != nil {
		t.Fatalf("IssueForKey: %v", err)
	}
	id := &msp.Identity{Name: "swt-sc", OrgID: "seller-bank-org", Role: msp.RoleClient, Cert: cert, Key: clientKey}
	cfg = &wire.NetworkConfig{
		NetworkID: "we-trade",
		Platform:  "fabric",
		Orgs:      []wire.OrgConfig{{OrgID: "seller-bank-org", RootCertPEM: ca.RootCertPEM()}},
	}
	open = func(q *wire.Query, resp *wire.QueryResponse) (*proof.Bundle, error) {
		return proof.OpenResponse(clientKey, q, resp)
	}
	return id.CertPEM(), cfg, open
}

func notaryQuery(t testing.TB, certPEM []byte) *wire.Query {
	t.Helper()
	nonce, err := cryptoutil.NewNonce()
	if err != nil {
		t.Fatalf("NewNonce: %v", err)
	}
	return &wire.Query{
		RequestID:         "req-1",
		RequestingNetwork: "we-trade",
		TargetNetwork:     "stl-notary",
		Ledger:            "default",
		Contract:          "TradeLensCC",
		Function:          "GetBillOfLading",
		Args:              [][]byte{[]byte("po-1")},
		PolicyExpr:        "AND('notary-alpha','notary-beta')",
		RequesterCertPEM:  certPEM,
		Nonce:             nonce,
	}
}

func TestDriverQueryWithProof(t *testing.T) {
	n := newNotaryNet(t)
	certPEM, cfg, open := foreignRequester(t)
	n.RecordForeignConfig(cfg)
	if err := n.Grant(policy.AccessRule{
		Network: "we-trade", Org: "seller-bank-org",
		Chaincode: "TradeLensCC", Function: "GetBillOfLading",
	}); err != nil {
		t.Fatalf("Grant: %v", err)
	}
	_, _ = n.Update("bl/po-1", 0, []byte(`{"blId":"bl-1","poRef":"po-1"}`))

	d := NewDriver(n, "default")
	if d.Platform() != "notary" {
		t.Fatalf("Platform = %q", d.Platform())
	}
	q := notaryQuery(t, certPEM)
	resp, err := d.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(resp.Attestations) != 2 {
		t.Fatalf("attestations = %d", len(resp.Attestations))
	}

	bundle, err := open(q, resp)
	if err != nil {
		t.Fatalf("OpenResponse: %v", err)
	}
	// Destination-side validation with the notary network's exported
	// config: the same proof.Verify machinery used for Fabric sources.
	exported := n.ExportConfig()
	roots := make(map[string][]byte)
	for _, org := range exported.Orgs {
		roots[org.OrgID] = org.RootCertPEM
	}
	verifier, err := msp.NewVerifier(roots)
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	vp := endorsement.MustParse(q.PolicyExpr)
	if err := proof.Verify(bundle, verifier, vp, proof.QueryDigestOf(q), nil); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestDriverDeniesWithoutRule(t *testing.T) {
	n := newNotaryNet(t)
	certPEM, cfg, _ := foreignRequester(t)
	n.RecordForeignConfig(cfg)
	_, _ = n.Update("bl/po-1", 0, []byte("doc"))
	d := NewDriver(n, "default")
	if _, err := d.Query(context.Background(), notaryQuery(t, certPEM)); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("err = %v", err)
	}
}

func TestDriverDeniesUnknownRequesterNetwork(t *testing.T) {
	n := newNotaryNet(t)
	certPEM, _, _ := foreignRequester(t)
	// Config never recorded.
	d := NewDriver(n, "default")
	if _, err := d.Query(context.Background(), notaryQuery(t, certPEM)); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("err = %v", err)
	}
}

func TestDriverRejectsImposterCert(t *testing.T) {
	n := newNotaryNet(t)
	_, cfg, _ := foreignRequester(t)
	n.RecordForeignConfig(cfg)
	_ = n.Grant(policy.AccessRule{Network: "we-trade", Org: "seller-bank-org", Chaincode: "TradeLensCC", Function: "GetBillOfLading"})

	// Same org name, different (unrecorded) CA.
	rogueCA, _ := msp.NewCA("seller-bank-org")
	rogueKey, _ := cryptoutil.GenerateKey()
	rogueCert, _ := rogueCA.IssueForKey("imposter", msp.RoleClient, &rogueKey.PublicKey)
	rogueID := &msp.Identity{Name: "imposter", OrgID: "seller-bank-org", Role: msp.RoleClient, Cert: rogueCert, Key: rogueKey}

	d := NewDriver(n, "default")
	if _, err := d.Query(context.Background(), notaryQuery(t, rogueID.CertPEM())); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("err = %v", err)
	}
}

func TestDriverThroughRelay(t *testing.T) {
	// The relay serves a notary network with zero relay-side changes.
	n := newNotaryNet(t)
	certPEM, cfg, open := foreignRequester(t)
	n.RecordForeignConfig(cfg)
	_ = n.Grant(policy.AccessRule{Network: "we-trade", Org: "seller-bank-org", Chaincode: "TradeLensCC", Function: "GetBillOfLading"})
	_, _ = n.Update("bl/po-1", 0, []byte("notary-doc"))

	hub := relay.NewHub()
	reg := relay.NewStaticRegistry()
	srcRelay := relay.New("stl-notary", reg, hub)
	srcRelay.RegisterDriver("stl-notary", NewDriver(n, "default"))
	hub.Attach("notary-relay", srcRelay)
	reg.Register("stl-notary", "notary-relay")

	dest := relay.New("we-trade", reg, hub)
	q := notaryQuery(t, certPEM)
	resp, err := dest.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	bundle, err := open(q, resp)
	if err != nil {
		t.Fatalf("OpenResponse: %v", err)
	}
	if !bytes.Equal(bundle.Result, []byte("notary-doc")) {
		t.Fatalf("result = %q", bundle.Result)
	}
}

func TestRevoke(t *testing.T) {
	n := newNotaryNet(t)
	rule := policy.AccessRule{Network: "we-trade", Org: "o", Chaincode: "c", Function: "f"}
	_ = n.Grant(rule)
	if !n.Revoke(rule) {
		t.Fatal("Revoke returned false")
	}
	if n.Revoke(rule) {
		t.Fatal("double Revoke returned true")
	}
}

func TestExportConfig(t *testing.T) {
	n := newNotaryNet(t)
	cfg := n.ExportConfig()
	if cfg.Platform != "notary" || len(cfg.Orgs) != 2 {
		t.Fatalf("config = %+v", cfg)
	}
	for _, org := range cfg.Orgs {
		if len(org.RootCertPEM) == 0 || len(org.PeerNames) != 1 {
			t.Fatalf("org config = %+v", org)
		}
	}
}

func TestConcurrentVaultAccess(t *testing.T) {
	n := newNotaryNet(t)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			var err error
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k-%d-%d", g, i)
				if _, e := n.Update(key, 0, []byte("v")); e != nil {
					err = e
					break
				}
				if _, _, e := n.Get(key); e != nil {
					err = e
					break
				}
			}
			done <- err
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent access: %v", err)
		}
	}
}
