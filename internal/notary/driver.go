package notary

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/endorsement"
	"repro/internal/msp"
	"repro/internal/proof"
	"repro/internal/relay"
	"repro/internal/wire"
)

// Driver adapts a notary network to the relay's Driver interface,
// demonstrating the paper's extensibility claim: the relay service and
// wire protocol are reused unmodified; this file is the entirety of the
// platform-specific work.
type Driver struct {
	net        *Network
	ledgerName string
	// sessions amortizes ECIES for capability-announcing requesters, the
	// same sessioned mode the Fabric driver runs; cryptoOps feeds
	// relay.Stats through CryptoOps.
	sessions  *proof.SessionPool
	cryptoOps cryptoutil.OpCounter
}

var _ relay.Driver = (*Driver)(nil)
var _ relay.CryptoOpsReporter = (*Driver)(nil)

// NewDriver creates a relay driver for a notary network.
func NewDriver(net *Network, ledgerName string) *Driver {
	if ledgerName == "" {
		ledgerName = "default"
	}
	d := &Driver{net: net, ledgerName: ledgerName}
	d.sessions = proof.NewSessionPool(cryptoutil.DefaultSessionTTL, &d.cryptoOps)
	return d
}

// CryptoOps implements relay.CryptoOpsReporter.
func (d *Driver) CryptoOps() (ecdh, sign, encrypt uint64) {
	return d.cryptoOps.ECDHOps(), d.cryptoOps.SignOps(), d.cryptoOps.EncryptOps()
}

// Platform implements relay.Driver.
func (d *Driver) Platform() string { return "notary" }

// Query implements relay.Driver: authenticate and authorize the requester,
// execute the view function, and collect an attestation from every notary
// the verification policy names. ctx is checked before the view executes
// and between notary attestations.
func (d *Driver) Query(ctx context.Context, q *wire.Query) (*wire.QueryResponse, error) {
	if q.Ledger != "" && q.Ledger != d.ledgerName {
		return nil, fmt.Errorf("notary: unknown ledger %q", q.Ledger)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("notary: query aborted: %w", err)
	}
	vp, err := endorsement.Parse(q.PolicyExpr)
	if err != nil {
		return nil, fmt.Errorf("notary: verification policy: %w", err)
	}
	// Exposure control: platform-level rather than chaincode-level, as the
	// paper anticipates for Corda-style platforms.
	if _, err := d.net.Authorize(q.RequestingNetwork, q.RequesterCertPEM, q.Contract, q.Function); err != nil {
		return nil, err
	}
	clientPub, err := RequesterKey(q.RequesterCertPEM)
	if err != nil {
		return nil, err
	}
	result, err := d.net.View(q.Contract, q.Function, q.Args)
	if err != nil {
		return nil, err
	}

	// The same pin gate the Fabric driver applies: a query whose explicit
	// policy digest disagrees with its expression gets no proof at all —
	// notaries must never sign a requester-chosen pin for a policy that did
	// not select them.
	policyDigest, err := proof.PinnedPolicyDigest(q)
	if err != nil {
		return nil, err
	}
	wanted := make(map[string]bool)
	for _, org := range vp.Orgs() {
		wanted[org] = true
	}
	var attestors []*msp.Identity
	for _, notary := range d.net.Notaries() {
		if wanted[notary.OrgID] {
			attestors = append(attestors, notary.Identity)
		}
	}
	if len(attestors) == 0 {
		return nil, fmt.Errorf("notary: no notaries match verification policy %q", q.PolicyExpr)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("notary: query aborted: %w", err)
	}
	spec := proof.Spec{
		NetworkID:    d.net.ID(),
		QueryDigest:  proof.QueryDigestOf(q),
		PolicyDigest: policyDigest,
		Result:       result,
		Nonce:        q.Nonce,
		ClientPub:    clientPub,
		Now:          time.Now(),
		Counter:      &d.cryptoOps,
	}
	if q.AcceptSessioned {
		spec.Sessions = d.sessions
		spec.RequesterLabel = string(cryptoutil.Digest(q.RequesterCertPEM))
	}
	resp, err := proof.Build(ctx, spec, attestors)
	if err != nil {
		return nil, fmt.Errorf("notary: %w", err)
	}
	resp.RequestID = q.RequestID
	return resp, nil
}
