// Package notary implements a second, deliberately different ledger
// platform in the mold of Corda (§5 "generalization and extensibility"):
// instead of organizations of peers replicating chaincode, independent
// notary services attest facts held in a shared vault, and uniqueness
// (no-double-spend) is enforced through per-key versions checked at
// notarization time. The interop relay and wire protocol are reused
// verbatim for this platform — only the driver and the platform-side
// enforcement of exposure control are specific to it, exactly as the paper
// predicts for Corda and Quorum.
package notary

import (
	"crypto/ecdsa"
	"errors"
	"fmt"
	"sync"

	"repro/internal/msp"
	"repro/internal/policy"
	"repro/internal/wire"
)

var (
	// ErrVersionConflict is returned when an update presents a stale
	// expected version — the notary-enforced uniqueness property.
	ErrVersionConflict = errors.New("notary: version conflict")
	// ErrUnknownView is returned for queries against unregistered view
	// functions.
	ErrUnknownView = errors.New("notary: unknown view function")
	// ErrAccessDenied is returned when exposure-control rules do not
	// permit a foreign request.
	ErrAccessDenied = errors.New("notary: access denied")
	// ErrNotFound is returned for reads of absent facts.
	ErrNotFound = errors.New("notary: fact not found")
)

// Notary is one attesting service: an organization-equivalent with its own
// CA and signing identity. Notary identities carry the peer role so that
// destination networks can validate their attestations with the same
// verification machinery used for Fabric peers.
type Notary struct {
	OrgID    string
	CA       *msp.CA
	Identity *msp.Identity
}

// fact is a versioned vault entry.
type fact struct {
	value   []byte
	version uint64
}

// ViewFunc serves a named read-only query over the vault.
type ViewFunc func(vault ReadVault, args [][]byte) ([]byte, error)

// ReadVault is the read-only vault interface handed to view functions.
type ReadVault interface {
	// Get returns a fact's value, or ErrNotFound.
	Get(key string) ([]byte, error)
}

// Network is a notary-attested ledger network.
type Network struct {
	id string

	mu       sync.RWMutex
	notaries []*Notary
	vault    map[string]fact
	views    map[string]ViewFunc // "contract/function" -> view
	rules    policy.RuleSet
	foreign  map[string]*wire.NetworkConfig
}

// NewNetwork creates an empty notary network.
func NewNetwork(id string) *Network {
	return &Network{
		id:      id,
		vault:   make(map[string]fact),
		views:   make(map[string]ViewFunc),
		foreign: make(map[string]*wire.NetworkConfig),
	}
}

// ID returns the network identifier.
func (n *Network) ID() string { return n.id }

// AddNotary creates a notary service under a fresh organization CA.
func (n *Network) AddNotary(orgID string) (*Notary, error) {
	ca, err := msp.NewCA(orgID)
	if err != nil {
		return nil, fmt.Errorf("notary: CA for %s: %w", orgID, err)
	}
	identity, err := ca.Issue(orgID+"-notary0", msp.RolePeer)
	if err != nil {
		return nil, fmt.Errorf("notary: identity for %s: %w", orgID, err)
	}
	notary := &Notary{OrgID: orgID, CA: ca, Identity: identity}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.notaries = append(n.notaries, notary)
	return notary, nil
}

// Notaries returns the attesting services.
func (n *Network) Notaries() []*Notary {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]*Notary, len(n.notaries))
	copy(out, n.notaries)
	return out
}

// Update notarizes a fact write. expectedVersion must match the current
// version (0 for a new fact); the notary set rejects stale writes, which is
// the platform's uniqueness consensus.
func (n *Network) Update(key string, expectedVersion uint64, value []byte) (uint64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	current := n.vault[key]
	if current.version != expectedVersion {
		return current.version, fmt.Errorf("%w: key %q at version %d, expected %d",
			ErrVersionConflict, key, current.version, expectedVersion)
	}
	stored := make([]byte, len(value))
	copy(stored, value)
	n.vault[key] = fact{value: stored, version: expectedVersion + 1}
	return expectedVersion + 1, nil
}

// Get returns a fact's value and version.
func (n *Network) Get(key string) ([]byte, uint64, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	f, ok := n.vault[key]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	out := make([]byte, len(f.value))
	copy(out, f.value)
	return out, f.version, nil
}

// vaultReader implements ReadVault under the network lock.
type vaultReader struct{ n *Network }

func (v vaultReader) Get(key string) ([]byte, error) {
	data, _, err := v.n.Get(key)
	return data, err
}

// RegisterView exposes a named query function, addressed as
// contract/function by cross-network queries.
func (n *Network) RegisterView(contract, function string, view ViewFunc) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.views[contract+"/"+function] = view
}

// View executes a registered view function.
func (n *Network) View(contract, function string, args [][]byte) ([]byte, error) {
	n.mu.RLock()
	view, ok := n.views[contract+"/"+function]
	n.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrUnknownView, contract, function)
	}
	return view(vaultReader{n: n}, args)
}

// Grant records an exposure-control rule in the network parameters (the
// platform's equivalent of the ECC rule store).
func (n *Network) Grant(rule policy.AccessRule) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rules.Add(rule)
}

// Revoke removes an exposure-control rule.
func (n *Network) Revoke(rule policy.AccessRule) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rules.Remove(rule)
}

// RecordForeignConfig stores a foreign network's configuration for
// requester authentication (the platform's configuration-management role).
func (n *Network) RecordForeignConfig(cfg *wire.NetworkConfig) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.foreign[cfg.NetworkID] = cfg
}

// Authorize authenticates a foreign requester certificate against the
// recorded configuration of its network and evaluates the access rules,
// returning the requester's organization.
func (n *Network) Authorize(requestingNetwork string, certPEM []byte, contract, function string) (string, error) {
	n.mu.RLock()
	cfg, ok := n.foreign[requestingNetwork]
	n.mu.RUnlock()
	if !ok {
		return "", fmt.Errorf("%w: no recorded configuration for %q", ErrAccessDenied, requestingNetwork)
	}
	roots := make(map[string][]byte, len(cfg.Orgs))
	for _, org := range cfg.Orgs {
		roots[org.OrgID] = org.RootCertPEM
	}
	verifier, err := msp.NewVerifier(roots)
	if err != nil {
		return "", err
	}
	info, err := verifier.VerifyPEM(certPEM)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrAccessDenied, err)
	}
	n.mu.RLock()
	permitted := n.rules.Permits(requestingNetwork, info.OrgID, contract, function)
	n.mu.RUnlock()
	if !permitted {
		return "", fmt.Errorf("%w: no rule permits <%s, %s, %s, %s>",
			ErrAccessDenied, requestingNetwork, info.OrgID, contract, function)
	}
	return info.OrgID, nil
}

// ExportConfig produces the shareable configuration destination networks
// record before accepting proofs from this one: each notary appears as an
// organization anchored by its CA root.
func (n *Network) ExportConfig() *wire.NetworkConfig {
	n.mu.RLock()
	defer n.mu.RUnlock()
	cfg := &wire.NetworkConfig{NetworkID: n.id, Platform: "notary"}
	for _, notary := range n.notaries {
		cfg.Orgs = append(cfg.Orgs, wire.OrgConfig{
			OrgID:       notary.OrgID,
			RootCertPEM: notary.CA.RootCertPEM(),
			PeerNames:   []string{notary.Identity.Name},
		})
	}
	return cfg
}

// RequesterKey extracts the ECDSA public key from a requester certificate.
func RequesterKey(certPEM []byte) (*ecdsa.PublicKey, error) {
	cert, err := msp.ParseCertPEM(certPEM)
	if err != nil {
		return nil, err
	}
	pub, ok := cert.PublicKey.(*ecdsa.PublicKey)
	if !ok {
		return nil, errors.New("notary: requester key is not ECDSA")
	}
	return pub, nil
}
