package wetrade

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/chaincode"
	"repro/internal/statedb"
	"repro/internal/syscc"
)

// Chaincode function names.
const (
	FnRequestLC          = "RequestLC"
	FnIssueLC            = "IssueLC"
	FnAcceptLC           = "AcceptLC"
	FnUploadDispatchDocs = "UploadDispatchDocs"
	FnRequestPayment     = "RequestPayment"
	FnMakePayment        = "MakePayment"
	FnGetLC              = "GetLC"
	FnGetPayment         = "GetPayment"
	FnListLCs            = "ListLCs"
	// EventDocsReceived is emitted when verified dispatch documents are
	// recorded against an L/C.
	EventDocsReceived = "docs-received"
	// EventPaid is emitted on settlement.
	EventPaid = "lc-paid"
)

// blDocument is the subset of the TradeLens B/L the L/C workflow inspects.
// Keeping a local mirror preserves network sovereignty: SWT depends on the
// document schema, not on STL code.
type blDocument struct {
	BLID  string `json:"blId"`
	PORef string `json:"poRef"`
}

// Chaincode is the SWT letter-of-credit contract. UploadDispatchDocs
// carries the paper's destination-side interop adaptation (~20 SLOC, §5):
// unmarshal the proof bundle and validate it through the CMDAC before
// trusting the document.
type Chaincode struct {
	// SourceNetwork, SourceLedger, SourceContract and SourceFunction
	// identify where dispatch documents must be proven to come from.
	// Defaults target the paper's STL network.
	SourceNetwork  string
	SourceLedger   string
	SourceContract string
	SourceFunction string
}

var _ chaincode.Chaincode = (*Chaincode)(nil)

// NewChaincode returns the contract configured for the paper's use case:
// dispatch documents must be proven against TradeLensCC.GetBillOfLading on
// the tradelens network.
func NewChaincode() *Chaincode {
	return &Chaincode{
		SourceNetwork:  "tradelens",
		SourceLedger:   "default",
		SourceContract: "TradeLensCC",
		SourceFunction: "GetBillOfLading",
	}
}

// Invoke dispatches WeTradeCC functions.
func (c *Chaincode) Invoke(stub chaincode.Stub) ([]byte, error) {
	switch stub.Function() {
	case FnRequestLC:
		return c.requestLC(stub)
	case FnIssueLC:
		return c.transition(stub, StatusIssued)
	case FnAcceptLC:
		return c.transition(stub, StatusAccepted)
	case FnUploadDispatchDocs:
		return c.uploadDispatchDocs(stub)
	case FnRequestPayment:
		return c.transition(stub, StatusPaymentRequested)
	case FnMakePayment:
		return c.makePayment(stub)
	case FnGetLC:
		return c.getLC(stub)
	case FnGetPayment:
		return c.getPayment(stub)
	case FnListLCs:
		return c.listLCs(stub)
	default:
		return nil, fmt.Errorf("wetrade: unknown function %q", stub.Function())
	}
}

func lcKey(lcID string) (string, error) {
	return statedb.CompositeKey("lc", lcID)
}

func paymentKey(lcID string) (string, error) {
	return statedb.CompositeKey("payment", lcID)
}

func loadLC(stub chaincode.Stub, lcID string) (*LetterOfCredit, string, error) {
	key, err := lcKey(lcID)
	if err != nil {
		return nil, "", err
	}
	data, err := stub.GetState(key)
	if err != nil {
		return nil, "", err
	}
	if data == nil {
		return nil, "", fmt.Errorf("wetrade: no letter of credit %q", lcID)
	}
	lc, err := UnmarshalLetterOfCredit(data)
	return lc, key, err
}

func saveLC(stub chaincode.Stub, key string, lc *LetterOfCredit) error {
	data, err := lc.Marshal()
	if err != nil {
		return err
	}
	return stub.PutState(key, data)
}

// requestLC creates an L/C application: args = [lcJSON].
func (c *Chaincode) requestLC(stub chaincode.Stub) ([]byte, error) {
	args := stub.Args()
	if len(args) != 1 {
		return nil, errors.New("wetrade: RequestLC expects the L/C document")
	}
	lc, err := UnmarshalLetterOfCredit(args[0])
	if err != nil {
		return nil, err
	}
	if err := lc.Validate(); err != nil {
		return nil, err
	}
	key, err := lcKey(lc.LCID)
	if err != nil {
		return nil, err
	}
	existing, err := stub.GetState(key)
	if err != nil {
		return nil, err
	}
	if existing != nil {
		return nil, fmt.Errorf("wetrade: letter of credit %q already exists", lc.LCID)
	}
	lc.Status = StatusRequested
	lc.CreatedAt = stub.Timestamp()
	lc.UpdatedAt = stub.Timestamp()
	if err := saveLC(stub, key, lc); err != nil {
		return nil, err
	}
	return lc.Marshal()
}

// transition advances an L/C one lifecycle step: args = [lcID].
func (c *Chaincode) transition(stub chaincode.Stub, next LCStatus) ([]byte, error) {
	args := stub.StringArgs()
	if len(args) != 1 {
		return nil, fmt.Errorf("wetrade: %s expects lcId", stub.Function())
	}
	lc, key, err := loadLC(stub, args[0])
	if err != nil {
		return nil, err
	}
	if err := lc.Advance(next, stub.Timestamp()); err != nil {
		return nil, err
	}
	if err := saveLC(stub, key, lc); err != nil {
		return nil, err
	}
	return lc.Marshal()
}

// uploadDispatchDocs records the bill of lading against the L/C after
// validating its cross-network proof: args = [lcID, proofBundle]. The proof
// must demonstrate that the source network's consensus view answers
// GetBillOfLading(poRef) with this document (Fig. 4).
func (c *Chaincode) uploadDispatchDocs(stub chaincode.Stub) ([]byte, error) {
	args := stub.Args()
	if len(args) != 2 {
		return nil, errors.New("wetrade: UploadDispatchDocs expects lcId and proof bundle")
	}
	lc, key, err := loadLC(stub, string(args[0]))
	if err != nil {
		return nil, err
	}
	// interop-adaptation-begin (destination network, §5 ease of adaptation)
	verified, err := stub.InvokeChaincode(syscc.CMDACName, syscc.CMDACValidateProof,
		syscc.ValidateProofArgs(c.SourceNetwork, c.SourceLedger, c.SourceContract,
			c.SourceFunction, args[1], []byte(lc.PORef)))
	if err != nil {
		return nil, fmt.Errorf("wetrade: dispatch document proof: %w", err)
	}
	// interop-adaptation-end
	var bl blDocument
	if err := json.Unmarshal(verified, &bl); err != nil {
		return nil, fmt.Errorf("wetrade: verified document is not a B/L: %w", err)
	}
	if bl.PORef != lc.PORef {
		return nil, fmt.Errorf("wetrade: B/L references purchase order %q, L/C %q covers %q",
			bl.PORef, lc.LCID, lc.PORef)
	}
	if bl.BLID == "" {
		return nil, errors.New("wetrade: B/L without identifier")
	}
	if err := lc.Advance(StatusDocsReceived, stub.Timestamp()); err != nil {
		return nil, err
	}
	lc.BLID = bl.BLID
	if err := saveLC(stub, key, lc); err != nil {
		return nil, err
	}
	if err := stub.SetEvent(EventDocsReceived, []byte(lc.LCID)); err != nil {
		return nil, err
	}
	return lc.Marshal()
}

// makePayment settles the L/C: args = [lcID]. Requires a prior payment
// request, which in turn required verified dispatch documents.
func (c *Chaincode) makePayment(stub chaincode.Stub) ([]byte, error) {
	args := stub.StringArgs()
	if len(args) != 1 {
		return nil, errors.New("wetrade: MakePayment expects lcId")
	}
	lc, key, err := loadLC(stub, args[0])
	if err != nil {
		return nil, err
	}
	if err := lc.Advance(StatusPaid, stub.Timestamp()); err != nil {
		return nil, err
	}
	if err := saveLC(stub, key, lc); err != nil {
		return nil, err
	}
	payment := &Payment{LCID: lc.LCID, Amount: lc.Amount, Currency: lc.Currency, PaidAt: stub.Timestamp()}
	pdata, err := payment.Marshal()
	if err != nil {
		return nil, err
	}
	pk, err := paymentKey(lc.LCID)
	if err != nil {
		return nil, err
	}
	if err := stub.PutState(pk, pdata); err != nil {
		return nil, err
	}
	if err := stub.SetEvent(EventPaid, []byte(lc.LCID)); err != nil {
		return nil, err
	}
	return pdata, nil
}

// getLC returns an L/C: args = [lcID].
func (c *Chaincode) getLC(stub chaincode.Stub) ([]byte, error) {
	args := stub.StringArgs()
	if len(args) != 1 {
		return nil, errors.New("wetrade: GetLC expects lcId")
	}
	lc, _, err := loadLC(stub, args[0])
	if err != nil {
		return nil, err
	}
	return lc.Marshal()
}

// getPayment returns the settlement record: args = [lcID].
func (c *Chaincode) getPayment(stub chaincode.Stub) ([]byte, error) {
	args := stub.StringArgs()
	if len(args) != 1 {
		return nil, errors.New("wetrade: GetPayment expects lcId")
	}
	key, err := paymentKey(args[0])
	if err != nil {
		return nil, err
	}
	data, err := stub.GetState(key)
	if err != nil {
		return nil, err
	}
	if data == nil {
		return nil, fmt.Errorf("wetrade: no payment for %q", args[0])
	}
	return data, nil
}

// listLCs returns every L/C as a JSON array.
func (c *Chaincode) listLCs(stub chaincode.Stub) ([]byte, error) {
	start, end, err := statedb.CompositeRange("lc")
	if err != nil {
		return nil, err
	}
	kvs, err := stub.GetStateRange(start, end)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 2+128*len(kvs))
	out = append(out, '[')
	for i, kv := range kvs {
		if i > 0 {
			out = append(out, ',')
		}
		out = append(out, kv.Value...)
	}
	out = append(out, ']')
	return out, nil
}
