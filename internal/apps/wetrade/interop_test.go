package wetrade

import (
	"context"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/msp"
	"repro/internal/policy"
	"repro/internal/proof"
	"repro/internal/relay"
	"repro/internal/wire"
)

// stlFixture fabricates the source network's identity material and a valid
// proof bundle for GetBillOfLading(poRef), without running a second
// network — the same technique the syscc tests use.
type stlFixture struct {
	sellerCA    *msp.CA
	carrierCA   *msp.CA
	sellerPeer  *msp.Identity
	carrierPeer *msp.Identity
}

func newSTLFixture(t *testing.T) *stlFixture {
	t.Helper()
	sellerCA, err := msp.NewCA("seller-org")
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	carrierCA, err := msp.NewCA("carrier-org")
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	sellerPeer, err := sellerCA.Issue("seller-org-peer0", msp.RolePeer)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	carrierPeer, err := carrierCA.Issue("carrier-org-peer0", msp.RolePeer)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	return &stlFixture{sellerCA: sellerCA, carrierCA: carrierCA, sellerPeer: sellerPeer, carrierPeer: carrierPeer}
}

func (f *stlFixture) config() *wire.NetworkConfig {
	return &wire.NetworkConfig{
		NetworkID: "tradelens",
		Platform:  "fabric",
		Orgs: []wire.OrgConfig{
			{OrgID: "seller-org", RootCertPEM: f.sellerCA.RootCertPEM()},
			{OrgID: "carrier-org", RootCertPEM: f.carrierCA.RootCertPEM()},
		},
	}
}

// bundleFor builds a fully attested bundle answering
// GetBillOfLading(poRef) with blJSON.
func (f *stlFixture) bundleFor(t *testing.T, poRef string, blJSON []byte) []byte {
	t.Helper()
	clientKey, err := cryptoutil.GenerateKey()
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	nonce, err := cryptoutil.NewNonce()
	if err != nil {
		t.Fatalf("NewNonce: %v", err)
	}
	q := &wire.Query{
		TargetNetwork: "tradelens", Ledger: "default", Contract: "TradeLensCC",
		Function: "GetBillOfLading", Args: [][]byte{[]byte(poRef)}, Nonce: nonce,
	}
	qd := proof.QueryDigestOf(q)
	encResult, err := proof.EncryptResult(&clientKey.PublicKey, blJSON)
	if err != nil {
		t.Fatalf("EncryptResult: %v", err)
	}
	resp := &wire.QueryResponse{EncryptedResult: encResult}
	for _, attestor := range []*msp.Identity{f.sellerPeer, f.carrierPeer} {
		att, err := proof.BuildAttestationPinned(attestor, "tradelens", qd, nil, blJSON, nonce, &clientKey.PublicKey, time.Now())
		if err != nil {
			t.Fatalf("BuildAttestation: %v", err)
		}
		resp.Attestations = append(resp.Attestations, att)
	}
	bundle, err := proof.OpenResponse(clientKey, q, resp)
	if err != nil {
		t.Fatalf("OpenResponse: %v", err)
	}
	return bundle.Marshal()
}

// interopSWT builds the SWT network with STL's fabricated config and
// verification policy recorded.
func interopSWT(t *testing.T, f *stlFixture) (*BuyerApp, *SellerApp) {
	t.Helper()
	n, err := BuildNetwork(relay.NewStaticRegistry(), relay.NewHub())
	if err != nil {
		t.Fatalf("BuildNetwork: %v", err)
	}
	admin, err := AdminGateway(n, BuyerBankOrg)
	if err != nil {
		t.Fatalf("AdminGateway: %v", err)
	}
	if err := n.ConfigureForeignNetwork(admin, f.config()); err != nil {
		t.Fatalf("ConfigureForeignNetwork: %v", err)
	}
	if err := n.SetVerificationPolicy(admin, policy.VerificationPolicy{
		Network: "tradelens", Expr: "AND('seller-org.peer','carrier-org.peer')",
	}); err != nil {
		t.Fatalf("SetVerificationPolicy: %v", err)
	}
	buyer, err := NewBuyerApp(n, "buyer")
	if err != nil {
		t.Fatalf("NewBuyerApp: %v", err)
	}
	seller, err := NewSellerApp(n, "seller")
	if err != nil {
		t.Fatalf("NewSellerApp: %v", err)
	}
	return buyer, seller
}

func acceptedLC(t *testing.T, buyer *BuyerApp, seller *SellerApp, lcID, poRef string) {
	t.Helper()
	lc := &LetterOfCredit{LCID: lcID, PORef: poRef, Buyer: "B", Seller: "S", Amount: 100, Currency: "USD"}
	if _, err := buyer.RequestLC(context.Background(), lc); err != nil {
		t.Fatalf("RequestLC: %v", err)
	}
	if _, err := buyer.IssueLC(context.Background(), lcID); err != nil {
		t.Fatalf("IssueLC: %v", err)
	}
	if _, err := seller.AcceptLC(context.Background(), lcID); err != nil {
		t.Fatalf("AcceptLC: %v", err)
	}
}

func TestUploadDispatchDocsWithValidProof(t *testing.T) {
	f := newSTLFixture(t)
	buyer, seller := interopSWT(t, f)
	acceptedLC(t, buyer, seller, "lc-1", "po-1")

	bundle := f.bundleFor(t, "po-1", []byte(`{"blId":"bl-9","poRef":"po-1"}`))
	got, err := seller.Client().Submit(context.Background(), ChaincodeName, FnUploadDispatchDocs, []byte("lc-1"), bundle)
	if err != nil {
		t.Fatalf("UploadDispatchDocs: %v", err)
	}
	lc, err := UnmarshalLetterOfCredit(got)
	if err != nil || lc.Status != StatusDocsReceived || lc.BLID != "bl-9" {
		t.Fatalf("lc = %+v, %v", lc, err)
	}

	// The full payment tail now runs inside this package.
	if _, err := seller.RequestPayment(context.Background(), "lc-1"); err != nil {
		t.Fatalf("RequestPayment: %v", err)
	}
	payment, err := buyer.MakePayment(context.Background(), "lc-1")
	if err != nil {
		t.Fatalf("MakePayment: %v", err)
	}
	if payment.Amount != 100 {
		t.Fatalf("payment = %+v", payment)
	}
	// Settlement record readable.
	data, err := buyer.Client().Evaluate(context.Background(), ChaincodeName, FnGetPayment, []byte("lc-1"))
	if err != nil {
		t.Fatalf("GetPayment: %v", err)
	}
	if p, err := UnmarshalPayment(data); err != nil || p.LCID != "lc-1" {
		t.Fatalf("payment record = %+v, %v", p, err)
	}
}

func TestUploadDispatchDocsWrongPO(t *testing.T) {
	f := newSTLFixture(t)
	buyer, seller := interopSWT(t, f)
	acceptedLC(t, buyer, seller, "lc-2", "po-2")

	// Proof answers po-OTHER; the L/C covers po-2.
	bundle := f.bundleFor(t, "po-OTHER", []byte(`{"blId":"bl-9","poRef":"po-OTHER"}`))
	if _, err := seller.Client().Submit(context.Background(), ChaincodeName, FnUploadDispatchDocs, []byte("lc-2"), bundle); err == nil {
		t.Fatal("B/L for another purchase order accepted")
	}
}

func TestUploadDispatchDocsNotJSON(t *testing.T) {
	f := newSTLFixture(t)
	buyer, seller := interopSWT(t, f)
	acceptedLC(t, buyer, seller, "lc-3", "po-3")

	// Valid proof over a non-B/L document.
	bundle := f.bundleFor(t, "po-3", []byte("not json at all"))
	if _, err := seller.Client().Submit(context.Background(), ChaincodeName, FnUploadDispatchDocs, []byte("lc-3"), bundle); err == nil {
		t.Fatal("non-B/L document accepted")
	}
}

func TestUploadDispatchDocsMissingBLID(t *testing.T) {
	f := newSTLFixture(t)
	buyer, seller := interopSWT(t, f)
	acceptedLC(t, buyer, seller, "lc-4", "po-4")

	bundle := f.bundleFor(t, "po-4", []byte(`{"poRef":"po-4"}`))
	if _, err := seller.Client().Submit(context.Background(), ChaincodeName, FnUploadDispatchDocs, []byte("lc-4"), bundle); err == nil {
		t.Fatal("B/L without identifier accepted")
	}
}

func TestUploadDispatchDocsEmitsEvent(t *testing.T) {
	f := newSTLFixture(t)
	buyer, seller := interopSWT(t, f)
	acceptedLC(t, buyer, seller, "lc-5", "po-5")

	sub := seller.Client().Gateway().Network().SubscribeEvents(ChaincodeName, EventDocsReceived)
	defer sub.Cancel()
	bundle := f.bundleFor(t, "po-5", []byte(`{"blId":"bl-5","poRef":"po-5"}`))
	if _, err := seller.Client().Submit(context.Background(), ChaincodeName, FnUploadDispatchDocs, []byte("lc-5"), bundle); err != nil {
		t.Fatalf("UploadDispatchDocs: %v", err)
	}
	select {
	case ev := <-sub.C:
		if string(ev.Payload) != "lc-5" {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("docs-received event not delivered")
	}
}
