package wetrade

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/relay"
)

func buildSWT(t testing.TB) (*BuyerApp, *SellerApp) {
	t.Helper()
	n, err := BuildNetwork(relay.NewStaticRegistry(), relay.NewHub())
	if err != nil {
		t.Fatalf("BuildNetwork: %v", err)
	}
	buyer, err := NewBuyerApp(n, "buyer-app")
	if err != nil {
		t.Fatalf("NewBuyerApp: %v", err)
	}
	seller, err := NewSellerApp(n, "seller-app")
	if err != nil {
		t.Fatalf("NewSellerApp: %v", err)
	}
	return buyer, seller
}

func sampleLC(id string) *LetterOfCredit {
	return &LetterOfCredit{
		LCID: id, PORef: "po-" + id, Buyer: "Globex", Seller: "Acme",
		BuyerBank: "BB", SellerBank: "SB", Amount: 1000, Currency: "USD",
	}
}

func TestLCLifecycleToAccepted(t *testing.T) {
	buyer, seller := buildSWT(t)
	lc, err := buyer.RequestLC(context.Background(), sampleLC("1"))
	if err != nil {
		t.Fatalf("RequestLC: %v", err)
	}
	if lc.Status != StatusRequested {
		t.Fatalf("status = %s", lc.Status)
	}
	lc, err = buyer.IssueLC(context.Background(), "1")
	if err != nil || lc.Status != StatusIssued {
		t.Fatalf("IssueLC: %+v, %v", lc, err)
	}
	lc, err = seller.AcceptLC(context.Background(), "1")
	if err != nil || lc.Status != StatusAccepted {
		t.Fatalf("AcceptLC: %+v, %v", lc, err)
	}
}

func TestLCValidation(t *testing.T) {
	for _, lc := range []*LetterOfCredit{
		{PORef: "p", Buyer: "b", Seller: "s", Amount: 1},
		{LCID: "l", Buyer: "b", Seller: "s", Amount: 1},
		{LCID: "l", PORef: "p", Seller: "s", Amount: 1},
		{LCID: "l", PORef: "p", Buyer: "b", Amount: 1},
		{LCID: "l", PORef: "p", Buyer: "b", Seller: "s", Amount: 0},
		{LCID: "l", PORef: "p", Buyer: "b", Seller: "s", Amount: -5},
	} {
		if err := lc.Validate(); err == nil {
			t.Fatalf("invalid L/C accepted: %+v", lc)
		}
	}
}

func TestOutOfOrderTransitions(t *testing.T) {
	buyer, seller := buildSWT(t)
	_, _ = buyer.RequestLC(context.Background(), sampleLC("1"))

	// Accept before issue.
	if _, err := seller.AcceptLC(context.Background(), "1"); err == nil {
		t.Fatal("accept before issue allowed")
	}
	// Pay before anything.
	if _, err := buyer.MakePayment(context.Background(), "1"); err == nil {
		t.Fatal("payment on requested L/C allowed")
	}
	// Double issue.
	if _, err := buyer.IssueLC(context.Background(), "1"); err != nil {
		t.Fatalf("IssueLC: %v", err)
	}
	if _, err := buyer.IssueLC(context.Background(), "1"); err == nil {
		t.Fatal("double issue allowed")
	}
}

func TestUploadDocsRequiresValidProof(t *testing.T) {
	buyer, seller := buildSWT(t)
	_, _ = buyer.RequestLC(context.Background(), sampleLC("1"))
	_, _ = buyer.IssueLC(context.Background(), "1")
	_, _ = seller.AcceptLC(context.Background(), "1")
	// Garbage bundle must fail inside the CMDAC.
	if err := seller.UploadForgedBL(context.Background(), "1", []byte{0xFF, 0xFE}); err == nil {
		t.Fatal("garbage bundle accepted")
	}
	// The state machine must not have advanced.
	lc, _ := seller.LC(context.Background(), "1")
	if lc.Status != StatusAccepted {
		t.Fatalf("status = %s", lc.Status)
	}
}

func TestGetPayment(t *testing.T) {
	buyer, _ := buildSWT(t)
	_, _ = buyer.RequestLC(context.Background(), sampleLC("1"))
	if _, err := buyer.Client().Evaluate(context.Background(), ChaincodeName, FnGetPayment, []byte("1")); err == nil {
		t.Fatal("payment returned before settlement")
	}
}

func TestListLCs(t *testing.T) {
	buyer, _ := buildSWT(t)
	_, _ = buyer.RequestLC(context.Background(), sampleLC("1"))
	_, _ = buyer.RequestLC(context.Background(), sampleLC("2"))
	data, err := buyer.Client().Evaluate(context.Background(), ChaincodeName, FnListLCs)
	if err != nil {
		t.Fatalf("ListLCs: %v", err)
	}
	var lcs []LetterOfCredit
	if err := json.Unmarshal(data, &lcs); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(lcs) != 2 {
		t.Fatalf("lcs = %d", len(lcs))
	}
}

func TestGetMissingLC(t *testing.T) {
	buyer, _ := buildSWT(t)
	if _, err := buyer.LC(context.Background(), "ghost"); err == nil {
		t.Fatal("missing L/C returned")
	}
}

func TestLCAdvanceTable(t *testing.T) {
	now := time.Now()
	cases := []struct {
		from, to LCStatus
		ok       bool
	}{
		{StatusRequested, StatusIssued, true},
		{StatusIssued, StatusAccepted, true},
		{StatusAccepted, StatusDocsReceived, true},
		{StatusDocsReceived, StatusPaymentRequested, true},
		{StatusPaymentRequested, StatusPaid, true},
		{StatusRequested, StatusPaid, false},
		{StatusAccepted, StatusPaymentRequested, false},
		{StatusPaid, StatusRequested, false},
	}
	for _, c := range cases {
		lc := &LetterOfCredit{Status: c.from}
		err := lc.Advance(c.to, now)
		if c.ok && err != nil {
			t.Fatalf("%s -> %s rejected: %v", c.from, c.to, err)
		}
		if !c.ok && !errors.Is(err, ErrBadTransition) {
			t.Fatalf("%s -> %s allowed", c.from, c.to)
		}
	}
}

func TestUnknownFunction(t *testing.T) {
	buyer, _ := buildSWT(t)
	if _, err := buyer.Client().Evaluate(context.Background(), ChaincodeName, "Bogus"); err == nil {
		t.Fatal("unknown function accepted")
	}
}

func TestDomainMarshalRoundTrip(t *testing.T) {
	lc := sampleLC("9")
	data, err := lc.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := UnmarshalLetterOfCredit(data)
	if err != nil || got.LCID != "9" {
		t.Fatalf("round-trip: %+v, %v", got, err)
	}
	p := &Payment{LCID: "9", Amount: 100, Currency: "USD", PaidAt: time.Now()}
	pdata, err := p.Marshal()
	if err != nil {
		t.Fatalf("Marshal payment: %v", err)
	}
	gotP, err := UnmarshalPayment(pdata)
	if err != nil || gotP.LCID != "9" {
		t.Fatalf("payment round-trip: %+v, %v", gotP, err)
	}
	if _, err := UnmarshalLetterOfCredit([]byte("{")); err == nil {
		t.Fatal("garbage L/C accepted")
	}
	if _, err := UnmarshalPayment([]byte("{")); err == nil {
		t.Fatal("garbage payment accepted")
	}
}
