package wetrade

import (
	"context"

	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/msp"
	"repro/internal/orderer"
	"repro/internal/relay"
)

// BuildNetwork assembles the SWT network per §4.2: two peers in the buyer's
// bank organization and two in the seller's bank organization, the
// WeTradeCC chaincode under a both-banks endorsement policy (§4.3: "the
// UploadDispatchDocs transaction requires 2 endorsements: one from a peer
// each in the Buyer's Bank and Seller's Bank"), and interop enablement. An
// optional Tuning selects orderer batching and the committer worker pool.
func BuildNetwork(discovery relay.Discovery, transport relay.Transport, tune ...fabric.Tuning) (*core.Network, error) {
	t := fabric.Tuning{Orderer: orderer.Config{BatchSize: 1}}
	if len(tune) > 0 {
		t = tune[0]
	}
	n := fabric.NewNetworkTuned(NetworkID, t)
	if _, err := n.AddOrg(BuyerBankOrg, 2); err != nil {
		return nil, fmt.Errorf("wetrade: %w", err)
	}
	if _, err := n.AddOrg(SellerBankOrg, 2); err != nil {
		return nil, fmt.Errorf("wetrade: %w", err)
	}
	endorsement := fmt.Sprintf("AND('%s','%s')", BuyerBankOrg, SellerBankOrg)
	if err := n.Deploy(ChaincodeName, NewChaincode(), endorsement); err != nil {
		return nil, fmt.Errorf("wetrade: %w", err)
	}
	interop, err := core.EnableInterop(n, discovery, transport, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("wetrade: %w", err)
	}
	return interop, nil
}

// BuyerApp acts for the buyer (a client of the buyer's bank): it applies
// for letters of credit and settles them.
type BuyerApp struct {
	client *core.Client
}

// NewBuyerApp creates a buyer-bank-organization client.
func NewBuyerApp(n *core.Network, name string) (*BuyerApp, error) {
	client, err := core.NewClient(n, BuyerBankOrg, name)
	if err != nil {
		return nil, err
	}
	return &BuyerApp{client: client}, nil
}

// Client exposes the underlying interop client.
func (a *BuyerApp) Client() *core.Client { return a.client }

// RequestLC applies for a letter of credit.
func (a *BuyerApp) RequestLC(ctx context.Context, lc *LetterOfCredit) (*LetterOfCredit, error) {
	data, err := lc.Marshal()
	if err != nil {
		return nil, err
	}
	out, err := a.client.Submit(ctx, ChaincodeName, FnRequestLC, data)
	if err != nil {
		return nil, err
	}
	return UnmarshalLetterOfCredit(out)
}

// IssueLC records the buyer's bank issuing the L/C.
func (a *BuyerApp) IssueLC(ctx context.Context, lcID string) (*LetterOfCredit, error) {
	return a.lcOp(ctx, FnIssueLC, lcID)
}

// MakePayment settles the L/C.
func (a *BuyerApp) MakePayment(ctx context.Context, lcID string) (*Payment, error) {
	data, err := a.client.Submit(ctx, ChaincodeName, FnMakePayment, []byte(lcID))
	if err != nil {
		return nil, err
	}
	return UnmarshalPayment(data)
}

// LC fetches the letter of credit.
func (a *BuyerApp) LC(ctx context.Context, lcID string) (*LetterOfCredit, error) {
	data, err := a.client.Evaluate(ctx, ChaincodeName, FnGetLC, []byte(lcID))
	if err != nil {
		return nil, err
	}
	return UnmarshalLetterOfCredit(data)
}

func (a *BuyerApp) lcOp(ctx context.Context, fn, lcID string) (*LetterOfCredit, error) {
	data, err := a.client.Submit(ctx, ChaincodeName, fn, []byte(lcID))
	if err != nil {
		return nil, err
	}
	return UnmarshalLetterOfCredit(data)
}

// SellerApp acts for the seller (the SWT Seller Client of §4.3, a client of
// the seller's bank and also a member of STL): it accepts L/Cs, fetches the
// B/L cross-network, and requests payment.
type SellerApp struct {
	client *core.Client
}

// NewSellerApp creates a seller-bank-organization client.
func NewSellerApp(n *core.Network, name string) (*SellerApp, error) {
	client, err := core.NewClient(n, SellerBankOrg, name)
	if err != nil {
		return nil, err
	}
	return &SellerApp{client: client}, nil
}

// Client exposes the underlying interop client.
func (a *SellerApp) Client() *core.Client { return a.client }

// AcceptLC records the seller's bank accepting the L/C.
func (a *SellerApp) AcceptLC(ctx context.Context, lcID string) (*LetterOfCredit, error) {
	data, err := a.client.Submit(ctx, ChaincodeName, FnAcceptLC, []byte(lcID))
	if err != nil {
		return nil, err
	}
	return UnmarshalLetterOfCredit(data)
}

// FetchAndUploadBL performs the paper's Fig. 4 flow end to end: a
// cross-network GetBillOfLading query through the local relay, followed by
// an UploadDispatchDocs transaction embedding the result and its proof.
// The destination chaincode re-validates the proof via the CMDAC on every
// endorsing peer. (§5 reports ~80 SLOC for this application adaptation;
// the calls below are that adaptation.) ctx bounds the cross-network query
// and gates the upload.
func (a *SellerApp) FetchAndUploadBL(ctx context.Context, lcID, poRef string) (*LetterOfCredit, error) {
	// interop-adaptation-begin (destination application, §5 ease of adaptation)
	data, err := a.client.RemoteQuery(ctx, core.RemoteQuerySpec{
		Network:  "tradelens",
		Contract: "TradeLensCC",
		Function: "GetBillOfLading",
		Args:     [][]byte{[]byte(poRef)},
	})
	if err != nil {
		return nil, fmt.Errorf("wetrade: fetch B/L for %s: %w", poRef, err)
	}
	out, err := a.client.Submit(ctx, ChaincodeName, FnUploadDispatchDocs, []byte(lcID), data.BundleBytes)
	// interop-adaptation-end
	if err != nil {
		return nil, err
	}
	return UnmarshalLetterOfCredit(out)
}

// UploadForgedBL attempts to upload a document without a valid proof — the
// fraud the interoperation step exists to prevent. It is exercised by the
// E7 experiments and always fails on-chain.
func (a *SellerApp) UploadForgedBL(ctx context.Context, lcID string, forgedBundle []byte) error {
	_, err := a.client.Submit(ctx, ChaincodeName, FnUploadDispatchDocs, []byte(lcID), forgedBundle)
	return err
}

// RequestPayment claims payment under the L/C; the chaincode enforces that
// verified dispatch documents were uploaded first.
func (a *SellerApp) RequestPayment(ctx context.Context, lcID string) (*LetterOfCredit, error) {
	data, err := a.client.Submit(ctx, ChaincodeName, FnRequestPayment, []byte(lcID))
	if err != nil {
		return nil, err
	}
	return UnmarshalLetterOfCredit(data)
}

// LC fetches the letter of credit.
func (a *SellerApp) LC(ctx context.Context, lcID string) (*LetterOfCredit, error) {
	data, err := a.client.Evaluate(ctx, ChaincodeName, FnGetLC, []byte(lcID))
	if err != nil {
		return nil, err
	}
	return UnmarshalLetterOfCredit(data)
}

// AdminGateway returns a governance gateway for the given organization.
func AdminGateway(n *core.Network, orgID string) (*fabric.Gateway, error) {
	org, err := n.Fabric.Org(orgID)
	if err != nil {
		return nil, err
	}
	id, err := org.CA.Issue(orgID+"-admin", msp.RoleAdmin)
	if err != nil {
		return nil, err
	}
	return n.Fabric.Gateway(id), nil
}
