// Package wetrade implements Simplified We.Trade (SWT), the trade finance
// network of the paper's use case (§4.2): a buyer's bank issues a letter of
// credit (L/C) in favour of a seller's bank; the L/C terms mandate payment
// upon dispatch, so before requesting payment the seller must upload the
// bill of lading fetched — with proof — from the TradeLens network. The
// cross-network query removes any need to trust the seller, who has an
// incentive to forge a B/L and claim payment.
package wetrade

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// Network and deployment identifiers.
const (
	// NetworkID is SWT's network name.
	NetworkID = "we-trade"
	// ChaincodeName is the L/C and payments chaincode (§4.3 "WeTradeCC").
	ChaincodeName = "WeTradeCC"
	// BuyerBankOrg and SellerBankOrg are SWT's two organizations; buyers
	// and sellers are clients of their respective banks.
	BuyerBankOrg  = "buyer-bank-org"
	SellerBankOrg = "seller-bank-org"
)

// LCStatus tracks a letter of credit through its lifecycle.
type LCStatus string

// L/C lifecycle states (§4.2 steps 2-4, 9-10).
const (
	StatusRequested        LCStatus = "requested"         // buyer applied for the L/C
	StatusIssued           LCStatus = "issued"            // buyer's bank issued it
	StatusAccepted         LCStatus = "accepted"          // seller's bank accepted
	StatusDocsReceived     LCStatus = "docs-received"     // verified B/L uploaded
	StatusPaymentRequested LCStatus = "payment-requested" // seller's bank claimed payment
	StatusPaid             LCStatus = "paid"              // buyer's bank settled
)

var validTransitions = map[LCStatus]LCStatus{
	StatusRequested:        StatusIssued,
	StatusIssued:           StatusAccepted,
	StatusAccepted:         StatusDocsReceived,
	StatusDocsReceived:     StatusPaymentRequested,
	StatusPaymentRequested: StatusPaid,
}

// ErrBadTransition is returned for out-of-order lifecycle operations.
var ErrBadTransition = errors.New("wetrade: invalid letter-of-credit state transition")

// LetterOfCredit is the on-ledger trade financing instrument.
type LetterOfCredit struct {
	LCID       string    `json:"lcId"`
	PORef      string    `json:"poRef"`
	Buyer      string    `json:"buyer"`
	Seller     string    `json:"seller"`
	BuyerBank  string    `json:"buyerBank"`
	SellerBank string    `json:"sellerBank"`
	Amount     int64     `json:"amountCents"`
	Currency   string    `json:"currency"`
	Status     LCStatus  `json:"status"`
	CreatedAt  time.Time `json:"createdAt"`
	UpdatedAt  time.Time `json:"updatedAt"`
	// BLID records the verified bill of lading once dispatch documents
	// are uploaded.
	BLID string `json:"blId,omitempty"`
}

// Advance moves the L/C to the next status, validating the order.
func (lc *LetterOfCredit) Advance(next LCStatus, at time.Time) error {
	if validTransitions[lc.Status] != next {
		return fmt.Errorf("%w: %s -> %s", ErrBadTransition, lc.Status, next)
	}
	lc.Status = next
	lc.UpdatedAt = at
	return nil
}

// Validate checks required fields at creation.
func (lc *LetterOfCredit) Validate() error {
	if lc.LCID == "" || lc.PORef == "" || lc.Buyer == "" || lc.Seller == "" {
		return errors.New("wetrade: L/C requires lcId, poRef, buyer and seller")
	}
	if lc.Amount <= 0 {
		return errors.New("wetrade: L/C amount must be positive")
	}
	return nil
}

// Marshal encodes the L/C for ledger storage.
func (lc *LetterOfCredit) Marshal() ([]byte, error) { return json.Marshal(lc) }

// UnmarshalLetterOfCredit decodes a stored L/C.
func UnmarshalLetterOfCredit(data []byte) (*LetterOfCredit, error) {
	var lc LetterOfCredit
	if err := json.Unmarshal(data, &lc); err != nil {
		return nil, fmt.Errorf("wetrade: letter of credit: %w", err)
	}
	return &lc, nil
}

// Payment is the settlement record created when the buyer's bank pays.
type Payment struct {
	LCID     string    `json:"lcId"`
	Amount   int64     `json:"amountCents"`
	Currency string    `json:"currency"`
	PaidAt   time.Time `json:"paidAt"`
}

// Marshal encodes the payment.
func (p *Payment) Marshal() ([]byte, error) { return json.Marshal(p) }

// UnmarshalPayment decodes a stored payment.
func UnmarshalPayment(data []byte) (*Payment, error) {
	var p Payment
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("wetrade: payment: %w", err)
	}
	return &p, nil
}
