package scenario

import (
	"errors"
	"fmt"

	"repro/internal/apps/tradelens"
	"repro/internal/apps/wetrade"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/notary"
	"repro/internal/policy"
	"repro/internal/relay"
)

// Notary-platform organization names for the cross-platform scenario.
const (
	NotaryAlphaOrg = "notary-alpha"
	NotaryBetaOrg  = "notary-beta"
	// NotarySTLRelayAddr is the notary-hosted TradeLens relay address.
	NotarySTLRelayAddr = "stl-notary-relay:9082"
)

// CrossPlatformWorld hosts the TradeLens data on the notary platform while
// We.Trade stays on Fabric — experiment E6, the paper's §5 extensibility
// claim made executable. The relay, wire protocol, proof format and SWT
// application code are identical to the Fabric↔Fabric scenario; only the
// source platform and its driver differ.
type CrossPlatformWorld struct {
	Hub      *relay.Hub
	Registry *relay.StaticRegistry

	// STL is the notary-hosted trade logistics ledger. It reuses the
	// "tradelens" network ID so the SWT chaincode needs no change.
	STL *notary.Network
	// SWT is the Fabric-based trade finance network.
	SWT      *core.Network
	SWTAdmin *fabric.Gateway
}

// BuildCrossPlatform wires the notary-hosted STL with the Fabric-hosted
// SWT.
func BuildCrossPlatform() (*CrossPlatformWorld, error) {
	hub := relay.NewHub()
	registry := relay.NewStaticRegistry()

	// Notary-hosted TradeLens: two notary services stand where the Seller
	// and Carrier organizations' peers stood.
	stl := notary.NewNetwork(tradelens.NetworkID)
	for _, org := range []string{NotaryAlphaOrg, NotaryBetaOrg} {
		if _, err := stl.AddNotary(org); err != nil {
			return nil, fmt.Errorf("scenario: add notary %s: %w", org, err)
		}
	}
	stl.RegisterView(tradelens.ChaincodeName, tradelens.FnGetBillOfLading,
		func(vault notary.ReadVault, args [][]byte) ([]byte, error) {
			if len(args) != 1 {
				return nil, errors.New("GetBillOfLading needs poRef")
			}
			return vault.Get("bl/" + string(args[0]))
		})

	swt, err := wetrade.BuildNetwork(registry, hub)
	if err != nil {
		return nil, fmt.Errorf("scenario: build SWT: %w", err)
	}
	swtAdmin, err := wetrade.AdminGateway(swt, wetrade.BuyerBankOrg)
	if err != nil {
		return nil, fmt.Errorf("scenario: SWT admin: %w", err)
	}

	// Interop initialization, cross-platform edition.
	stl.RecordForeignConfig(swt.ExportConfig())
	if err := stl.Grant(policy.AccessRule{
		Network:   wetrade.NetworkID,
		Org:       wetrade.SellerBankOrg,
		Chaincode: tradelens.ChaincodeName,
		Function:  tradelens.FnGetBillOfLading,
	}); err != nil {
		return nil, fmt.Errorf("scenario: grant access: %w", err)
	}
	if err := swt.ConfigureForeignNetwork(swtAdmin, stl.ExportConfig()); err != nil {
		return nil, fmt.Errorf("scenario: record notary config: %w", err)
	}
	if err := swt.SetVerificationPolicy(swtAdmin, policy.VerificationPolicy{
		Network: tradelens.NetworkID,
		Expr:    fmt.Sprintf("AND('%s.peer','%s.peer')", NotaryAlphaOrg, NotaryBetaOrg),
	}); err != nil {
		return nil, fmt.Errorf("scenario: set verification policy: %w", err)
	}

	// Relays: the source relay fronts the notary platform through its
	// driver; nothing else changes.
	stlRelay := relay.New(tradelens.NetworkID, registry, hub)
	stlRelay.RegisterDriver(tradelens.NetworkID, notary.NewDriver(stl, "default"))
	hub.Attach(NotarySTLRelayAddr, stlRelay)
	registry.Register(tradelens.NetworkID, NotarySTLRelayAddr)
	hub.Attach(SWTRelayAddr, swt.Relay)
	registry.Register(wetrade.NetworkID, SWTRelayAddr)

	return &CrossPlatformWorld{
		Hub:      hub,
		Registry: registry,
		STL:      stl,
		SWT:      swt,
		SWTAdmin: swtAdmin,
	}, nil
}
