package scenario

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/apps/tradelens"
	"repro/internal/apps/wetrade"
	"repro/internal/core"
)

// TestBuildTCPQueryAndChurn exercises the TCP deployment the way the load
// generator does: seed STL, query a bill of lading cross-network over real
// sockets, kill the primary STL relay and verify the redundant relay keeps
// serving, then restart the dead relay on its original address and verify
// it serves again.
func TestBuildTCPQueryAndChurn(t *testing.T) {
	d, err := BuildTCP(1)
	if err != nil {
		t.Fatalf("BuildTCP: %v", err)
	}
	defer d.Close()
	w := d.World
	if len(d.STLServers) != 2 {
		t.Fatalf("STL servers = %d, want 2", len(d.STLServers))
	}

	actors, err := w.NewActors()
	if err != nil {
		t.Fatalf("NewActors: %v", err)
	}
	ctx := context.Background()
	if err := SeedShipments(ctx, actors, "po-tcp-1"); err != nil {
		t.Fatalf("SeedShipments: %v", err)
	}

	client, err := core.NewClient(w.SWT, wetrade.SellerBankOrg, "tcp-client")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	spec := core.RemoteQuerySpec{
		Network: tradelens.NetworkID, Contract: tradelens.ChaincodeName,
		Function: tradelens.FnGetBillOfLading, Args: [][]byte{[]byte("po-tcp-1")},
	}
	first, err := client.RemoteQuery(ctx, spec)
	if err != nil {
		t.Fatalf("RemoteQuery over TCP: %v", err)
	}
	if len(first.Result) == 0 || !bytes.Contains(first.Result, []byte("po-tcp-1")) {
		t.Fatalf("result = %q, want the seeded bill of lading", first.Result)
	}

	// Primary killed: the redundant relay must absorb the traffic.
	if err := d.STLServers[0].Kill(); err != nil {
		t.Fatalf("Kill primary: %v", err)
	}
	failover, err := client.RemoteQuery(ctx, spec)
	if err != nil {
		t.Fatalf("RemoteQuery after primary kill: %v", err)
	}
	if !bytes.Equal(failover.Result, first.Result) {
		t.Fatalf("failover result %q != original %q", failover.Result, first.Result)
	}

	// Restart on the original address: the deployment is whole again and
	// the revived listener really answers (kill the standby to force it).
	if err := d.STLServers[0].Restart(); err != nil {
		t.Fatalf("Restart primary: %v", err)
	}
	if err := d.STLServers[1].Kill(); err != nil {
		t.Fatalf("Kill standby: %v", err)
	}
	revived, err := client.RemoteQuery(ctx, spec)
	if err != nil {
		t.Fatalf("RemoteQuery after restart: %v", err)
	}
	if !bytes.Equal(revived.Result, first.Result) {
		t.Fatalf("post-restart result %q != original %q", revived.Result, first.Result)
	}
}

// TestBuildTCPInvokeExactlyOnce proves writable invokes work over the TCP
// deployment and land exactly one valid commit, the precondition for the
// load generator's churn audit.
func TestBuildTCPInvokeExactlyOnce(t *testing.T) {
	d, err := BuildTCP(1)
	if err != nil {
		t.Fatalf("BuildTCP: %v", err)
	}
	defer d.Close()
	w := d.World
	if err := DeployAuditLog(w); err != nil {
		t.Fatalf("DeployAuditLog: %v", err)
	}
	client, err := core.NewClient(w.SWT, wetrade.SellerBankOrg, "tcp-invoker")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	ctx := context.Background()
	spec := core.RemoteQuerySpec{
		Network: tradelens.NetworkID, Contract: AuditChaincodeName, Function: "Append",
		Args:      [][]byte{[]byte("po-tcp-9"), []byte("shipped;")},
		RequestID: "tcp-eo-1",
	}
	first, err := client.RemoteInvoke(ctx, spec)
	if err != nil {
		t.Fatalf("RemoteInvoke over TCP: %v", err)
	}
	// Retry under the same idempotency key after killing the relay that
	// served the commit: ledger replay, not re-execution.
	if err := d.STLServers[0].Kill(); err != nil {
		t.Fatalf("Kill primary: %v", err)
	}
	retry, err := client.RemoteInvoke(ctx, spec)
	if err != nil {
		t.Fatalf("retry RemoteInvoke: %v", err)
	}
	if !bytes.Equal(first.Result, retry.Result) {
		t.Fatalf("retry result %q != original %q", retry.Result, first.Result)
	}
	valid, _ := committedInvokes(t, w, invokeTxID("tcp-eo-1", client.Identity().CertPEM()))
	if valid != 1 {
		t.Fatalf("ledger holds %d valid commits, want exactly 1", valid)
	}
}

// TestBuildTCPBatchedAttestation drives the Merkle-batching window over the
// real TCP deployment: three concurrent cold queries through the primary
// STL relay share one attestation window, and every client's independent
// proof verification accepts its leaf + inclusion proof end to end.
func TestBuildTCPBatchedAttestation(t *testing.T) {
	const width = 3
	d, err := BuildTCP(0)
	if err != nil {
		t.Fatalf("BuildTCP: %v", err)
	}
	defer d.Close()
	w := d.World
	if d.STLServers[0].Driver == nil {
		t.Fatal("primary STL server carries no driver handle")
	}
	d.STLServers[0].Driver.ConfigureAttestationBatching(time.Second, width)

	actors, err := w.NewActors()
	if err != nil {
		t.Fatalf("NewActors: %v", err)
	}
	ctx := context.Background()
	refs := make([]string, width)
	for i := range refs {
		refs[i] = fmt.Sprintf("po-batch-%d", i)
	}
	if err := SeedShipments(ctx, actors, refs...); err != nil {
		t.Fatalf("SeedShipments: %v", err)
	}
	client, err := core.NewClient(w.SWT, wetrade.SellerBankOrg, "tcp-batch-client")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}

	results := make([]*core.RemoteData, width)
	errs := make([]error, width)
	var wg sync.WaitGroup
	for i := 0; i < width; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = client.RemoteQuery(ctx, core.RemoteQuerySpec{
				Network: tradelens.NetworkID, Contract: tradelens.ChaincodeName,
				Function: tradelens.FnGetBillOfLading, Args: [][]byte{[]byte(refs[i])},
			})
		}(i)
	}
	wg.Wait()
	for i := 0; i < width; i++ {
		if errs[i] != nil {
			t.Fatalf("RemoteQuery %d over TCP: %v", i, errs[i])
		}
		if !bytes.Contains(results[i].Result, []byte(refs[i])) {
			t.Fatalf("result %d = %q", i, results[i].Result)
		}
		for _, el := range results[i].Bundle.Elements {
			if el.BatchSize != width {
				t.Fatalf("query %d element batch size = %d, want %d", i, el.BatchSize, width)
			}
		}
	}
}
