package scenario

import (
	"context"
	"fmt"

	"repro/internal/apps/tradelens"
	"repro/internal/apps/wetrade"
	"repro/internal/chaincode"
	"repro/internal/policy"
	"repro/internal/syscc"
)

// AuditChaincodeName is the writable cross-network contract deployed on
// STL by DeployAuditLog.
const AuditChaincodeName = "auditcc"

// AuditContract is a minimal writable contract for cross-network invokes:
// Append grows a per-key log under the exposure-control adaptation, so
// every successful invoke has a visible, countable effect — the property
// both the exactly-once test suites and the load-generation harness rely
// on to audit commits against issued requests.
var AuditContract = chaincode.Func(func(stub chaincode.Stub) ([]byte, error) {
	switch stub.Function() {
	case "Append":
		if _, err := syscc.AuthorizeRelayRequest(stub, AuditChaincodeName); err != nil {
			return nil, err
		}
		key := "log/" + string(stub.Args()[0])
		cur, err := stub.GetState(key)
		if err != nil {
			return nil, err
		}
		next := append(cur, stub.Args()[1]...)
		if err := stub.PutState(key, next); err != nil {
			return nil, err
		}
		return next, nil
	case "Read":
		return stub.GetState("log/" + string(stub.Args()[0]))
	default:
		return nil, fmt.Errorf("unknown function %q", stub.Function())
	}
})

// DeployAuditLog deploys the audit contract on STL under a both-orgs
// endorsement policy and grants SWT's seller organization the Append
// exposure-control rule, making STL writable cross-network.
func DeployAuditLog(w *TradeWorld) error {
	if err := w.STL.Fabric.Deploy(AuditChaincodeName, AuditContract,
		fmt.Sprintf("AND('%s','%s')", tradelens.SellerOrg, tradelens.CarrierOrg)); err != nil {
		return fmt.Errorf("scenario: deploy %s: %w", AuditChaincodeName, err)
	}
	if err := w.STL.GrantAccess(w.STLAdmin, policy.AccessRule{
		Network: wetrade.NetworkID, Org: wetrade.SellerBankOrg,
		Chaincode: AuditChaincodeName, Function: "Append",
	}); err != nil {
		return fmt.Errorf("scenario: grant %s access: %w", AuditChaincodeName, err)
	}
	return nil
}

// SeedShipments drives the full STL lifecycle — create, book, gate-in,
// bill-of-lading issuance — for each purchase-order reference, so
// cross-network queries have a populated key space to fetch from.
func SeedShipments(ctx context.Context, actors *Actors, poRefs ...string) error {
	for _, po := range poRefs {
		if _, err := actors.STLSeller.CreateShipment(ctx, po, "Acme Exports", "Globex Imports", "goods"); err != nil {
			return fmt.Errorf("scenario: seed %s create: %w", po, err)
		}
		if _, err := actors.STLCarrier.BookShipment(ctx, po, "Oceanic Lines"); err != nil {
			return fmt.Errorf("scenario: seed %s book: %w", po, err)
		}
		if _, err := actors.STLCarrier.RecordGateIn(ctx, po); err != nil {
			return fmt.Errorf("scenario: seed %s gate-in: %w", po, err)
		}
		if err := actors.STLCarrier.IssueBillOfLading(ctx, &tradelens.BillOfLading{
			BLID: "bl-" + po, PORef: po, Carrier: "Oceanic Lines",
		}); err != nil {
			return fmt.Errorf("scenario: seed %s issue B/L: %w", po, err)
		}
	}
	return nil
}
