package scenario

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/apps/tradelens"
	"repro/internal/apps/wetrade"
	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/proof"
	"repro/internal/relay"
	"repro/internal/wire"
)

// seedBillOfLading drives the STL-side document flow so the chain tests
// have a bill of lading to fetch.
func seedBillOfLading(t *testing.T, w *TradeWorld, poRef string) {
	t.Helper()
	actors, err := w.NewActors()
	if err != nil {
		t.Fatalf("NewActors: %v", err)
	}
	ctx := context.Background()
	if _, err := actors.STLSeller.CreateShipment(ctx, poRef, "S", "B", "goods"); err != nil {
		t.Fatalf("CreateShipment: %v", err)
	}
	if _, err := actors.STLCarrier.BookShipment(ctx, poRef, "C"); err != nil {
		t.Fatalf("BookShipment: %v", err)
	}
	if _, err := actors.STLCarrier.RecordGateIn(ctx, poRef); err != nil {
		t.Fatalf("RecordGateIn: %v", err)
	}
	if err := actors.STLCarrier.IssueBillOfLading(ctx, &tradelens.BillOfLading{
		BLID: "bl-" + poRef, PORef: poRef, Carrier: "C",
	}); err != nil {
		t.Fatalf("IssueBillOfLading: %v", err)
	}
}

// chainQuery builds a raw bill-of-lading query for the chain tests.
func chainQuery(ri *rawInvoker, poRef string) (*wire.Query, error) {
	nonce, err := cryptoutil.NewNonce()
	if err != nil {
		return nil, err
	}
	return &wire.Query{
		RequestingNetwork: wetrade.NetworkID,
		TargetNetwork:     tradelens.NetworkID,
		Ledger:            "default",
		Contract:          tradelens.ChaincodeName,
		Function:          tradelens.FnGetBillOfLading,
		Args:              [][]byte{[]byte(poRef)},
		PolicyExpr:        stlPolicyExpr(),
		RequesterCertPEM:  ri.certPEM,
		RequesterOrg:      wetrade.SellerBankOrg,
		Nonce:             nonce,
	}, nil
}

// TestChainThreeHopProofEndToEnd is the tentpole acceptance test: a query
// answered over three transport legs (SWT → hub-1 → hub-2 → STL) yields a
// proof the origin verifies end to end — two hop pins, nearest the source
// first — and any single-hop pin mutation fails verification. Invokes
// through the same chain stay exactly-once under idempotent retry.
func TestChainThreeHopProofEndToEnd(t *testing.T) {
	d, err := BuildTCPChain(2, 1)
	if err != nil {
		t.Fatalf("BuildTCPChain: %v", err)
	}
	defer d.Close()
	w := d.World
	if err := DeployAuditLog(w); err != nil {
		t.Fatalf("DeployAuditLog: %v", err)
	}
	seedBillOfLading(t, w, "po-chain-1")
	ctx := context.Background()

	// The application view: RemoteQuery routes through the chain, verifies
	// the hop chain client-side, and reports the authenticated path.
	client, err := core.NewClient(w.SWT, wetrade.SellerBankOrg, "chain-client")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	data, err := client.RemoteQuery(ctx, core.RemoteQuerySpec{
		Network:  tradelens.NetworkID,
		Contract: tradelens.ChaincodeName,
		Function: tradelens.FnGetBillOfLading,
		Args:     [][]byte{[]byte("po-chain-1")},
	})
	if err != nil {
		t.Fatalf("RemoteQuery over chain: %v", err)
	}
	if len(data.Path) != 2 {
		t.Fatalf("Path = %v, want 2 hops", data.Path)
	}
	for i, want := range []string{HubNetworkID(1), HubNetworkID(0)} {
		if data.Path[i].Network != want {
			t.Fatalf("Path[%d] = %q, want %q", i, data.Path[i].Network, want)
		}
	}
	if len(data.Result) == 0 {
		t.Fatal("empty result over chain")
	}

	// The wire view: any single-hop pin mutation makes verification fail.
	ri := newRawInvoker(t, w)
	q, err := chainQuery(ri, "po-chain-1")
	if err != nil {
		t.Fatalf("chainQuery: %v", err)
	}
	resp, err := w.SWT.Relay.Query(ctx, q)
	if err != nil {
		t.Fatalf("raw query over chain: %v", err)
	}
	if len(resp.HopPins) != 2 {
		t.Fatalf("pins = %d, want 2", len(resp.HopPins))
	}
	if _, err := proof.VerifyHopChainVia(q, resp, HubNetworkID(0)); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	for i := range resp.HopPins {
		for field, mutate := range map[string]func(p *wire.HopPin){
			"pin":       func(p *wire.HopPin) { p.Pin[0] ^= 0x01 },
			"signature": func(p *wire.HopPin) { p.Signature[0] ^= 0x01 },
			"network":   func(p *wire.HopPin) { p.Network = "evil-net" },
		} {
			mutated := *resp
			mutated.HopPins = append([]wire.HopPin(nil), resp.HopPins...)
			pin := &mutated.HopPins[i]
			pin.Pin = append([]byte(nil), pin.Pin...)
			pin.Signature = append([]byte(nil), pin.Signature...)
			mutate(pin)
			if _, err := proof.VerifyHopChainVia(q, &mutated, HubNetworkID(0)); err == nil {
				t.Fatalf("chain with hop %d %s mutated verified", i, field)
			}
		}
	}
	stripped := *resp
	stripped.HopPins = nil
	if _, err := proof.VerifyHopChainVia(q, &stripped, HubNetworkID(0)); err == nil {
		t.Fatal("stripped chain verified")
	}

	// Exactly-once through the chain: the same idempotency key retried at
	// the origin commits once on the source ledger; the duplicate replays.
	spec := core.RemoteQuerySpec{
		Network: tradelens.NetworkID, Contract: "auditcc", Function: "Append",
		Args:      [][]byte{[]byte("po-chain-inv"), []byte("entry;")},
		RequestID: "chain-inv-1",
	}
	first, err := client.RemoteInvoke(ctx, spec)
	if err != nil {
		t.Fatalf("chain invoke: %v", err)
	}
	retry, err := client.RemoteInvoke(ctx, spec)
	if err != nil {
		t.Fatalf("chain invoke retry: %v", err)
	}
	if !bytes.Equal(first.Result, retry.Result) {
		t.Fatalf("retry result %q != original %q", retry.Result, first.Result)
	}
	if valid, _ := committedInvokes(t, w, invokeTxID("chain-inv-1", client.Identity().CertPEM())); valid != 1 {
		t.Fatalf("%d valid commits over chain, want exactly 1", valid)
	}

	// Every hub forwarded and counted: queries and invokes both.
	for i, tier := range d.Hubs {
		s := tier.Servers[0].Relay.Stats()
		if s.ForwardedQueries == 0 || s.ForwardedInvokes == 0 {
			t.Fatalf("hub %d stats = %+v, want forwarded traffic", i, s)
		}
	}
}

// TestChainPartitionHealChaos is the partition/heal chaos scenario: a
// three-network TCP chain (SWT edge → hub-1 ×2 → hub-2 ×2 → STL) with the
// origin resolving hub addresses through a live journal registry, while a
// background client queries through the full path. Mid-path hub replicas
// are killed and restarted mid-run: traffic must re-route through the
// alternate replica with zero client-visible failures, invokes must stay
// exactly-once on the source ledger (including an ambiguous retry spanning
// a partition), and discovery must never go dark while replicas churn.
func TestChainPartitionHealChaos(t *testing.T) {
	d, err := BuildTCPChain(2, 2)
	if err != nil {
		t.Fatalf("BuildTCPChain: %v", err)
	}
	defer d.Close()
	w := d.World
	if err := DeployAuditLog(w); err != nil {
		t.Fatalf("DeployAuditLog: %v", err)
	}
	seedBillOfLading(t, w, "po-chaos-1")
	ctx := context.Background()

	// The origin edge relay discovers hub-1 through a journal registry the
	// hub replicas heartbeat into — restartstorm's discovery pattern bent
	// around the first chain leg.
	journal := relay.NewJournalRegistry(filepath.Join(t.TempDir(), "registry.jsonl"), relay.WithCompactBytes(512))
	const ttl = 2 * time.Second
	for _, srv := range d.Hubs[0].Servers {
		stop, err := relay.AnnounceWithHealth(journal, HubNetworkID(0), srv.Addr(), ttl, srv.Relay.HealthSnapshot, nil)
		if err != nil {
			t.Fatalf("AnnounceWithHealth(%s): %v", srv.Addr(), err)
		}
		defer stop()
	}
	stopCompactor := journal.StartCompactor(10*time.Millisecond, func(err error) {
		t.Errorf("compactor: %v", err)
	})
	defer stopCompactor()

	edgeRoutes := relay.NewRouteTable()
	edgeRoutes.Set(tradelens.NetworkID, HubNetworkID(0))
	edgeRoutes.SetMaxHops(3)
	edge := relay.New(wetrade.NetworkID, journal, d.Transport, relay.WithRoutes(edgeRoutes))
	ri := newRawInvoker(t, w)

	// Background load: continuous queries through the full chain for the
	// whole chaos window. Every response must verify via hub-1.
	var (
		queryOK   atomic.Int64
		queryErrs = make(chan string, 64)
		done      = make(chan struct{})
		wg        sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			q, err := chainQuery(ri, "po-chaos-1")
			if err != nil {
				queryErrs <- err.Error()
				return
			}
			resp, err := edge.Query(ctx, q)
			switch {
			case err != nil:
				queryErrs <- err.Error()
			case resp.Error != "":
				queryErrs <- resp.Error
			default:
				if _, err := proof.VerifyHopChainVia(q, resp, HubNetworkID(0)); err != nil {
					queryErrs <- err.Error()
				} else {
					queryOK.Add(1)
				}
			}
		}
	}()

	// Discovery soak: hub-1 resolution through the journal must never go
	// dark while replicas churn and the compactor rolls generations.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			case <-time.After(10 * time.Millisecond):
			}
			if _, err := journal.Resolve(HubNetworkID(0)); err != nil {
				queryErrs <- "discovery went dark: " + err.Error()
			}
		}
	}()

	invoke := func(requestID, logKey, entry string) *wire.QueryResponse {
		t.Helper()
		nonce := cryptoutil.Digest([]byte("chaos-nonce"), []byte(requestID))[:cryptoutil.NonceSize]
		q := ri.query(requestID, nonce, logKey, entry)
		resp, err := edge.Invoke(ctx, q)
		if err != nil {
			t.Fatalf("invoke %s: %v", requestID, err)
		}
		if resp.Error != "" {
			t.Fatalf("invoke %s: remote error %s", requestID, resp.Error)
		}
		return resp
	}
	assertOnce := func(requestID string) {
		t.Helper()
		if valid, _ := committedInvokes(t, w, invokeTxID(requestID, ri.certPEM)); valid != 1 {
			t.Fatalf("invoke %s: %d valid commits, want exactly 1", requestID, valid)
		}
	}

	// Phase 1 — healthy chain: a first invoke lands through both tiers.
	firstResp := invoke("chaos-pre", "po-chaos-log", "pre;")
	assertOnce("chaos-pre")

	// Phase 2 — partition: kill one replica in each tier (the mid-path
	// hub-2 kill is the interesting one: the failover happens inside the
	// chain, at hub-1's fan-out, invisible to the origin).
	if err := d.Hubs[1].Servers[0].Kill(); err != nil {
		t.Fatalf("kill hub-2 replica: %v", err)
	}
	if err := d.Hubs[0].Servers[0].Kill(); err != nil {
		t.Fatalf("kill hub-1 replica: %v", err)
	}
	for i := 0; i < 3; i++ {
		invoke(fmt.Sprintf("chaos-part-%d", i), "po-chaos-log", fmt.Sprintf("part-%d;", i))
		assertOnce(fmt.Sprintf("chaos-part-%d", i))
	}
	// Ambiguous retry across the partition: the phase-1 key replays the
	// committed outcome through the surviving replicas.
	retryResp := invoke("chaos-pre", "po-chaos-log", "pre;")
	if !bytes.Equal(ri.open(t, ri.query("chaos-pre", cryptoutil.Digest([]byte("chaos-nonce"), []byte("chaos-pre"))[:cryptoutil.NonceSize], "po-chaos-log", "pre;"), retryResp),
		ri.open(t, ri.query("chaos-pre", cryptoutil.Digest([]byte("chaos-nonce"), []byte("chaos-pre"))[:cryptoutil.NonceSize], "po-chaos-log", "pre;"), firstResp)) {
		t.Fatal("partition retry diverged from original commit")
	}
	assertOnce("chaos-pre")

	// Phase 3 — heal: restart the killed replicas, then kill the replicas
	// that carried the partition traffic. The healed ones must take over.
	for _, tier := range d.Hubs {
		if err := tier.Servers[0].Restart(); err != nil {
			t.Fatalf("restart %s: %v", tier.NetworkID, err)
		}
	}
	if err := d.Hubs[1].Servers[1].Kill(); err != nil {
		t.Fatalf("kill alternate hub-2 replica: %v", err)
	}
	for i := 0; i < 3; i++ {
		invoke(fmt.Sprintf("chaos-heal-%d", i), "po-chaos-log", fmt.Sprintf("heal-%d;", i))
		assertOnce(fmt.Sprintf("chaos-heal-%d", i))
	}
	if err := d.Hubs[1].Servers[1].Restart(); err != nil {
		t.Fatalf("restart alternate hub-2 replica: %v", err)
	}

	close(done)
	wg.Wait()
	close(queryErrs)
	for msg := range queryErrs {
		t.Errorf("background query failure: %s", msg)
	}
	if queryOK.Load() == 0 {
		t.Fatal("background querier never completed a query")
	}

	// The final ledger state is the exact append sequence — no duplicate,
	// no loss. Appends are ordered by commit, so check the multiset by
	// total length and the pre; prefix committed first.
	got, err := w.STLAdmin.Evaluate("auditcc", "Read", []byte("po-chaos-log"))
	if err != nil {
		t.Fatalf("Read audit log: %v", err)
	}
	want := len("pre;") + len("part-0;part-1;part-2;") + len("heal-0;heal-1;heal-2;")
	if len(got) != want {
		t.Fatalf("audit log = %q (%d bytes), want %d bytes of unique appends", got, len(got), want)
	}
	if !bytes.HasPrefix(got, []byte("pre;")) {
		t.Fatalf("audit log = %q, want pre; first", got)
	}

	// Forwarded legs fed hub-1's per-address health scoring: both hub-2
	// replica addresses have observations.
	snapshot := d.Hubs[0].Servers[1].Relay.HealthSnapshot()
	for _, srv := range d.Hubs[1].Servers {
		if _, ok := snapshot[srv.Addr()]; !ok {
			t.Fatalf("hub-1 health snapshot missing forwarded address %s: %v", srv.Addr(), snapshot)
		}
	}
}
