package scenario

import (
	"bytes"
	"context"
	"crypto/ecdsa"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/apps/tradelens"
	"repro/internal/apps/wetrade"
	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/fabric"
	"repro/internal/ledger"
	"repro/internal/msp"
	"repro/internal/proof"
	"repro/internal/relay"
	"repro/internal/wire"
)

// STLRelayAddrB is the second, redundant relay fronting the STL network —
// a separate relay instance with its own replay cache and health tracker,
// standing in for a second relayd process in an HA deployment.
const STLRelayAddrB = "stl-relay-b:9082"

// buildExactlyOnceWorld wires the trade world plus: the audit contract and
// its access rule on STL (DeployAuditLog), and a second relay fronting STL
// registered in discovery after the first.
func buildExactlyOnceWorld(t *testing.T, tune ...fabric.Tuning) (*TradeWorld, *relay.Relay) {
	t.Helper()
	w, err := Build(tune...)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := DeployAuditLog(w); err != nil {
		t.Fatalf("DeployAuditLog: %v", err)
	}
	relayB := relay.New(tradelens.NetworkID, w.Registry, w.Hub)
	relayB.RegisterDriver(tradelens.NetworkID, relay.NewFabricDriver(w.STL.Fabric, "default"))
	w.Hub.Attach(STLRelayAddrB, relayB)
	w.Registry.Register(tradelens.NetworkID, STLRelayAddrB)
	return w, relayB
}

// stlPolicyExpr is the verification policy both STL organizations attest.
func stlPolicyExpr() string {
	return fmt.Sprintf("AND('%s.peer','%s.peer')", tradelens.SellerOrg, tradelens.CarrierOrg)
}

// invokeTxID computes the ledger transaction ID a given requester's invoke
// commits under (the TxID is requester-scoped, not just request-ID-scoped).
func invokeTxID(requestID string, certPEM []byte) string {
	return relay.InteropTxID(&wire.Query{
		RequestID:         requestID,
		RequestingNetwork: wetrade.NetworkID,
		RequesterCertPEM:  certPEM,
	})
}

// committedInvokes counts how many transactions with the given ID the STL
// ledger committed per validation code — the ground truth the exactly-once
// guarantee is judged against.
func committedInvokes(t *testing.T, w *TradeWorld, txID string) (valid, duplicate int) {
	t.Helper()
	p := w.STL.Fabric.AllPeers()[0]
	blocks := p.Blocks()
	for num := uint64(0); num < blocks.Height(); num++ {
		b, err := blocks.Block(num)
		if err != nil {
			t.Fatalf("Block(%d): %v", num, err)
		}
		for _, tx := range b.Transactions {
			if tx.ID != txID {
				continue
			}
			switch tx.Validation {
			case ledger.Valid:
				valid++
			case ledger.Duplicate:
				duplicate++
			}
		}
	}
	return valid, duplicate
}

// TestExactlyOnceFailoverToSecondRelay: the client commits an invoke
// through the first STL relay, the relay dies, and the retry (same
// idempotency key) lands on the redundant relay. That relay has never seen
// the request — its replay cache is empty — yet the client receives the
// original committed response, recovered from the ledger, and the ledger
// holds exactly one valid transaction for the request.
func TestExactlyOnceFailoverToSecondRelay(t *testing.T) {
	forEachCommitMode(t, testExactlyOnceFailoverToSecondRelay)
}

func testExactlyOnceFailoverToSecondRelay(t *testing.T, tune fabric.Tuning) {
	w, relayB := buildExactlyOnceWorld(t, tune)
	client, err := core.NewClient(w.SWT, wetrade.SellerBankOrg, "eo-client")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	spec := core.RemoteQuerySpec{
		Network: tradelens.NetworkID, Contract: "auditcc", Function: "Append",
		Args:      [][]byte{[]byte("po-9001"), []byte("shipped;")},
		RequestID: "eo-failover-1",
	}
	first, err := client.RemoteInvoke(context.Background(), spec)
	if err != nil {
		t.Fatalf("first RemoteInvoke: %v", err)
	}

	// The relay that served the commit goes down; the requester retries the
	// ambiguous outcome with the same idempotency key.
	w.Hub.SetDown(STLRelayAddr, true)
	retry, err := client.RemoteInvoke(context.Background(), spec)
	if err != nil {
		t.Fatalf("retry RemoteInvoke after failover: %v", err)
	}

	if !bytes.Equal(first.Result, retry.Result) {
		t.Fatalf("failover retry result %q != original %q", retry.Result, first.Result)
	}
	valid, _ := committedInvokes(t, w, invokeTxID("eo-failover-1", client.Identity().CertPEM()))
	if valid != 1 {
		t.Fatalf("ledger holds %d valid commits for the request, want exactly 1", valid)
	}
	if got, _ := w.STLAdmin.Evaluate("auditcc", "Read", []byte("po-9001")); !bytes.Equal(got, []byte("shipped;")) {
		t.Fatalf("source state = %q, want single append", got)
	}
	// The second relay answered from the ledger, not by executing.
	stats := relayB.Stats()
	if stats.InvokeReplays != 1 {
		t.Fatalf("relay B InvokeReplays = %d, want 1", stats.InvokeReplays)
	}
	if stats.InvokesServed != 0 {
		t.Fatalf("relay B InvokesServed = %d, want 0 (must not re-execute)", stats.InvokesServed)
	}
}

// rawInvoker issues invokes directly against named source relays, holding
// its own key so it can decrypt responses. It stands in for a destination
// relay pinned to one source address — the tool for racing the same
// logical request through both redundant relays at once.
type rawInvoker struct {
	key     *ecdsa.PrivateKey
	certPEM []byte
}

func newRawInvoker(t *testing.T, w *TradeWorld) *rawInvoker {
	t.Helper()
	org, err := w.SWT.Fabric.Org(wetrade.SellerBankOrg)
	if err != nil {
		t.Fatalf("Org: %v", err)
	}
	key, err := cryptoutil.GenerateKey()
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	cert, err := org.CA.IssueForKey("eo-raw-client", msp.RoleClient, &key.PublicKey)
	if err != nil {
		t.Fatalf("IssueForKey: %v", err)
	}
	id := &msp.Identity{Name: "eo-raw-client", OrgID: wetrade.SellerBankOrg, Role: msp.RoleClient, Cert: cert, Key: key}
	return &rawInvoker{key: key, certPEM: id.CertPEM()}
}

// query builds the wire query for one Append invoke under a fixed request
// ID and nonce (both attempts of a retry must present the same nonce or
// the replayed proof would not verify).
func (ri *rawInvoker) query(requestID string, nonce []byte, logKey, entry string) *wire.Query {
	return &wire.Query{
		RequestID:         requestID,
		RequestingNetwork: wetrade.NetworkID,
		TargetNetwork:     tradelens.NetworkID,
		Ledger:            "default",
		Contract:          "auditcc",
		Function:          "Append",
		Args:              [][]byte{[]byte(logKey), []byte(entry)},
		PolicyExpr:        stlPolicyExpr(),
		RequesterCertPEM:  ri.certPEM,
		RequesterOrg:      wetrade.SellerBankOrg,
		Nonce:             nonce,
	}
}

// open decrypts and returns the plaintext result of a response.
func (ri *rawInvoker) open(t *testing.T, q *wire.Query, resp *wire.QueryResponse) []byte {
	t.Helper()
	if resp.Error != "" {
		t.Fatalf("response error: %s", resp.Error)
	}
	bundle, err := proof.OpenResponse(ri.key, q, resp)
	if err != nil {
		t.Fatalf("OpenResponse: %v", err)
	}
	return bundle.Result
}

// TestExactlyOnceConcurrentRelays races the same logical invoke through
// both STL relays at once — the worst case for process-local dedup, since
// neither relay's cache or single-flight can see the other's attempt. The
// ledger-level duplicate check collapses the race: exactly one transaction
// commits as valid, and both relays return that committed response.
func TestExactlyOnceConcurrentRelays(t *testing.T) {
	forEachCommitMode(t, testExactlyOnceConcurrentRelays)
}

func testExactlyOnceConcurrentRelays(t *testing.T, tune fabric.Tuning) {
	w, relayB := buildExactlyOnceWorld(t, tune)
	relayA := w.STL.Relay
	ri := newRawInvoker(t, w)
	nonce, err := cryptoutil.NewNonce()
	if err != nil {
		t.Fatalf("NewNonce: %v", err)
	}

	type outcome struct {
		resp *wire.QueryResponse
		err  error
	}
	results := make([]outcome, 2)
	queries := []*wire.Query{
		ri.query("eo-race-1", nonce, "po-9002", "booked;"),
		ri.query("eo-race-1", nonce, "po-9002", "booked;"),
	}
	var wg sync.WaitGroup
	for i, r := range []*relay.Relay{relayA, relayB} {
		wg.Add(1)
		go func(i int, r *relay.Relay) {
			defer wg.Done()
			resp, err := r.Invoke(context.Background(), queries[i])
			results[i] = outcome{resp: resp, err: err}
		}(i, r)
	}
	wg.Wait()

	var plaintexts [][]byte
	for i, out := range results {
		if out.err != nil {
			t.Fatalf("relay %d Invoke: %v", i, out.err)
		}
		plaintexts = append(plaintexts, ri.open(t, queries[i], out.resp))
	}
	if !bytes.Equal(plaintexts[0], plaintexts[1]) {
		t.Fatalf("relays returned divergent responses: %q vs %q", plaintexts[0], plaintexts[1])
	}
	if !bytes.Equal(plaintexts[0], []byte("booked;")) {
		t.Fatalf("response = %q, want single append", plaintexts[0])
	}
	valid, _ := committedInvokes(t, w, invokeTxID("eo-race-1", ri.certPEM))
	if valid != 1 {
		t.Fatalf("ledger holds %d valid commits for the raced request, want exactly 1", valid)
	}
	// Exactly one of the two relays lost the commit race and served its
	// caller from the ledger's record; the duplicate is visible in stats.
	if replays := relayA.Stats().InvokeReplays + relayB.Stats().InvokeReplays; replays != 1 {
		t.Fatalf("combined InvokeReplays = %d, want 1 (the race loser's ledger replay)", replays)
	}
	if got, _ := w.STLAdmin.Evaluate("auditcc", "Read", []byte("po-9002")); !bytes.Equal(got, []byte("booked;")) {
		t.Fatalf("source state = %q, want single append", got)
	}
}

// TestExactlyOnceHedgingClientNeverDuplicates: a destination relay
// configured for aggressive hedged fan-out still delivers invokes at most
// once — hedging applies to idempotent queries only — and when its first
// address dies mid-sequence, the failover retry is answered from the
// ledger. The hedge-hungry client gets availability without a double
// commit.
func TestExactlyOnceHedgingClientNeverDuplicates(t *testing.T) {
	forEachCommitMode(t, testExactlyOnceHedgingClientNeverDuplicates)
}

func testExactlyOnceHedgingClientNeverDuplicates(t *testing.T, tune fabric.Tuning) {
	w, _ := buildExactlyOnceWorld(t, tune)
	ri := newRawInvoker(t, w)
	nonce, err := cryptoutil.NewNonce()
	if err != nil {
		t.Fatalf("NewNonce: %v", err)
	}
	// An edge relay with no local drivers: pure client-side fan-out, hedging
	// configured so aggressively any hedge-eligible path would fire it.
	edge := relay.New("swt-edge", w.Registry, w.Hub, relay.WithHedging(time.Microsecond, 4))

	q1 := ri.query("eo-hedge-1", nonce, "po-9003", "gated-in;")
	resp1, err := edge.Invoke(context.Background(), q1)
	if err != nil {
		t.Fatalf("first Invoke: %v", err)
	}
	first := ri.open(t, q1, resp1)

	w.Hub.SetDown(STLRelayAddr, true)
	q2 := ri.query("eo-hedge-1", nonce, "po-9003", "gated-in;")
	resp2, err := edge.Invoke(context.Background(), q2)
	if err != nil {
		t.Fatalf("failover Invoke: %v", err)
	}
	retry := ri.open(t, q2, resp2)

	if !bytes.Equal(first, retry) {
		t.Fatalf("failover result %q != original %q", retry, first)
	}
	valid, _ := committedInvokes(t, w, invokeTxID("eo-hedge-1", ri.certPEM))
	if valid != 1 {
		t.Fatalf("ledger holds %d valid commits, want exactly 1", valid)
	}
	stats := edge.Stats()
	if stats.HedgedWins != 0 || stats.HedgedLosses != 0 {
		t.Fatalf("invoke path hedged: wins=%d losses=%d", stats.HedgedWins, stats.HedgedLosses)
	}
}

// TestDistinctRequestersMaySameRequestID: request IDs are scoped to the
// requester (network + certificate), so one requester committing under an
// idempotency key neither blocks nor leaks into a different requester's
// invoke that happens to choose the same key. Each commits independently.
func TestDistinctRequestersMaySameRequestID(t *testing.T) {
	forEachCommitMode(t, testDistinctRequestersMaySameRequestID)
}

func testDistinctRequestersMaySameRequestID(t *testing.T, tune fabric.Tuning) {
	w, _ := buildExactlyOnceWorld(t, tune)
	alice := newRawInvoker(t, w)
	bob := newRawInvoker(t, w)
	nonceA, _ := cryptoutil.NewNonce()
	nonceB, _ := cryptoutil.NewNonce()

	qA := alice.query("order-123", nonceA, "po-9004", "alice;")
	respA, err := w.STL.Relay.Invoke(context.Background(), qA)
	if err != nil {
		t.Fatalf("alice Invoke: %v", err)
	}
	qB := bob.query("order-123", nonceB, "po-9004", "bob;")
	respB, err := w.STL.Relay.Invoke(context.Background(), qB)
	if err != nil {
		t.Fatalf("bob Invoke (same request ID, different requester): %v", err)
	}
	if got := alice.open(t, qA, respA); !bytes.Equal(got, []byte("alice;")) {
		t.Fatalf("alice result = %q", got)
	}
	if got := bob.open(t, qB, respB); !bytes.Equal(got, []byte("alice;bob;")) {
		t.Fatalf("bob result = %q, want his own append, not a replay of alice's", got)
	}
	for who, cert := range map[string][]byte{"alice": alice.certPEM, "bob": bob.certPEM} {
		if valid, _ := committedInvokes(t, w, invokeTxID("order-123", cert)); valid != 1 {
			t.Fatalf("%s has %d valid commits, want 1", who, valid)
		}
	}
}

// TestIdempotencyKeyReuseWithDifferentRequestRefused: replaying a
// committed outcome under a *different* question would mint a proof the
// ledger never answered. A requester that reuses its idempotency key with
// different arguments gets an error — never silently stale data — and the
// original commit stays untouched.
func TestIdempotencyKeyReuseWithDifferentRequestRefused(t *testing.T) {
	forEachCommitMode(t, testIdempotencyKeyReuseWithDifferentRequestRefused)
}

func testIdempotencyKeyReuseWithDifferentRequestRefused(t *testing.T, tune fabric.Tuning) {
	w, _ := buildExactlyOnceWorld(t, tune)
	ri := newRawInvoker(t, w)
	nonce, _ := cryptoutil.NewNonce()
	sendTo := func(addr string, q *wire.Query) *wire.Envelope {
		t.Helper()
		env := &wire.Envelope{Version: wire.ProtocolVersion, Type: wire.MsgInvoke, RequestID: q.RequestID, Payload: q.Marshal()}
		reply, err := w.Hub.Send(context.Background(), addr, env)
		if err != nil {
			t.Fatalf("Send to %s: %v", addr, err)
		}
		return reply
	}

	// Original served (and cached) by relay A.
	q1 := ri.query("eo-reuse-1", nonce, "po-9005", "real-entry;")
	reply := sendTo(STLRelayAddr, q1)
	if reply.Type != wire.MsgQueryResponse {
		t.Fatalf("original reply = %s (%s)", reply.Type, reply.Payload)
	}

	// Reuse against relay A: refused out of its in-memory cache.
	q2 := ri.query("eo-reuse-1", nonce, "po-9005", "DIFFERENT-entry;")
	if reply := sendTo(STLRelayAddr, q2); reply.Type != wire.MsgError {
		t.Fatalf("cached-path key reuse reply = %s, want error", reply.Type)
	}
	// Reuse against relay B: refused out of the ledger record.
	if reply := sendTo(STLRelayAddrB, q2); reply.Type != wire.MsgError {
		t.Fatalf("ledger-path key reuse reply = %s, want error", reply.Type)
	}
	// And a duplicate aimed at a ledger the driver does not serve is
	// refused too, on either relay, rather than answered from the one it
	// does serve.
	q3 := ri.query("eo-reuse-1", nonce, "po-9005", "real-entry;")
	q3.Ledger = "bogus-ledger"
	reply3 := sendTo(STLRelayAddrB, q3)
	if reply3.Type == wire.MsgQueryResponse {
		// Driver-level refusals travel as application errors inside the
		// response; either way the requester must get an error, never the
		// committed payload re-bound to the wrong ledger.
		resp3, err := wire.UnmarshalQueryResponse(reply3.Payload)
		if err != nil {
			t.Fatalf("unmarshal wrong-ledger reply: %v", err)
		}
		if resp3.Error == "" {
			t.Fatalf("wrong-ledger duplicate served a committed response: %+v", resp3)
		}
	} else if reply3.Type != wire.MsgError {
		t.Fatalf("wrong-ledger duplicate reply = %s, want an error", reply3.Type)
	}
	// The wrong-ledger refusal must not have poisoned the cache against
	// the requester's legitimate retry.
	if reply := sendTo(STLRelayAddrB, q1); reply.Type != wire.MsgQueryResponse {
		t.Fatalf("legitimate retry after wrong-ledger refusal = %s (%s)", reply.Type, reply.Payload)
	}

	if got, _ := w.STLAdmin.Evaluate("auditcc", "Read", []byte("po-9005")); !bytes.Equal(got, []byte("real-entry;")) {
		t.Fatalf("source state = %q, want only the original append", got)
	}
	if valid, _ := committedInvokes(t, w, invokeTxID("eo-reuse-1", ri.certPEM)); valid != 1 {
		t.Fatalf("valid commits = %d, want 1", valid)
	}
}
