package scenario

import (
	"context"
	"testing"

	"repro/internal/apps/wetrade"
)

// TestE6CrossPlatformQuery runs the paper's Fig. 4 flow with the source
// network on an entirely different ledger platform: the relay protocol,
// proof format and SWT application/chaincode are reused unchanged.
func TestE6CrossPlatformQuery(t *testing.T) {
	w, err := BuildCrossPlatform()
	if err != nil {
		t.Fatalf("BuildCrossPlatform: %v", err)
	}

	// The carrier records the B/L as a notarized fact.
	if _, err := w.STL.Update("bl/po-1001", 0,
		[]byte(`{"blId":"bl-7734","poRef":"po-1001","carrier":"Oceanic Lines"}`)); err != nil {
		t.Fatalf("Update: %v", err)
	}

	// SWT side: full L/C flow, dispatch docs fetched cross-platform.
	buyer, err := wetrade.NewBuyerApp(w.SWT, "buyer")
	if err != nil {
		t.Fatalf("NewBuyerApp: %v", err)
	}
	seller, err := wetrade.NewSellerApp(w.SWT, "seller")
	if err != nil {
		t.Fatalf("NewSellerApp: %v", err)
	}
	lc := &wetrade.LetterOfCredit{
		LCID: "lc-x", PORef: "po-1001", Buyer: "B", Seller: "S",
		Amount: 100, Currency: "USD",
	}
	if _, err := buyer.RequestLC(context.Background(), lc); err != nil {
		t.Fatalf("RequestLC: %v", err)
	}
	if _, err := buyer.IssueLC(context.Background(), "lc-x"); err != nil {
		t.Fatalf("IssueLC: %v", err)
	}
	if _, err := seller.AcceptLC(context.Background(), "lc-x"); err != nil {
		t.Fatalf("AcceptLC: %v", err)
	}
	got, err := seller.FetchAndUploadBL(context.Background(), "lc-x", "po-1001")
	if err != nil {
		t.Fatalf("FetchAndUploadBL (cross-platform): %v", err)
	}
	if got.Status != wetrade.StatusDocsReceived || got.BLID != "bl-7734" {
		t.Fatalf("LC after upload = %+v", got)
	}
	if _, err := seller.RequestPayment(context.Background(), "lc-x"); err != nil {
		t.Fatalf("RequestPayment: %v", err)
	}
	if _, err := buyer.MakePayment(context.Background(), "lc-x"); err != nil {
		t.Fatalf("MakePayment: %v", err)
	}
}

// TestE6CrossPlatformDenied checks that the notary platform's exposure
// control holds for unauthorized organizations.
func TestE6CrossPlatformDenied(t *testing.T) {
	w, err := BuildCrossPlatform()
	if err != nil {
		t.Fatalf("BuildCrossPlatform: %v", err)
	}
	_, _ = w.STL.Update("bl/po-1001", 0, []byte(`{"blId":"bl-1","poRef":"po-1001"}`))

	// The buyer's bank org has no access rule on the notary network.
	buyer, _ := wetrade.NewBuyerApp(w.SWT, "buyer")
	_, err = buyer.Client().RemoteQuery(context.Background(), remoteBLQuery("po-1001"))
	if err == nil {
		t.Fatal("unauthorized cross-platform query succeeded")
	}
}

// TestE6NotaryVersionConflictIsVisible demonstrates that the uniqueness
// property of the second platform holds under the same scenario wiring.
func TestE6NotaryVersionConflictIsVisible(t *testing.T) {
	w, err := BuildCrossPlatform()
	if err != nil {
		t.Fatalf("BuildCrossPlatform: %v", err)
	}
	if _, err := w.STL.Update("bl/po-1", 0, []byte("v1")); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if _, err := w.STL.Update("bl/po-1", 0, []byte("conflicting")); err == nil {
		t.Fatal("double-spend style update accepted")
	}
}
