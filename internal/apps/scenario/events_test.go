package scenario

import (
	"context"
	"testing"
	"time"

	"repro/internal/apps/tradelens"
)

// TestCrossNetworkBLIssuedEvent subscribes the SWT seller to STL's
// bl-issued events through the relays and receives the notification when
// the carrier records the bill of lading — the §7 cross-network events
// extension riding the same relay infrastructure as queries.
func TestCrossNetworkBLIssuedEvent(t *testing.T) {
	w, err := Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	actors, err := w.NewActors()
	if err != nil {
		t.Fatalf("NewActors: %v", err)
	}

	events, cancel, err := actors.SWTSeller.Client().SubscribeRemoteEvents(context.Background(),
		tradelens.NetworkID, tradelens.EventBLIssued)
	if err != nil {
		t.Fatalf("SubscribeRemoteEvents: %v", err)
	}
	defer cancel()
	defer w.STL.Relay.StopServing()

	_, _ = actors.STLSeller.CreateShipment(context.Background(), "po-ev", "S", "B", "goods")
	_, _ = actors.STLCarrier.BookShipment(context.Background(), "po-ev", "C")
	_, _ = actors.STLCarrier.RecordGateIn(context.Background(), "po-ev")
	if err := actors.STLCarrier.IssueBillOfLading(context.Background(), &tradelens.BillOfLading{
		BLID: "bl-ev", PORef: "po-ev", Carrier: "C",
	}); err != nil {
		t.Fatalf("IssueBillOfLading: %v", err)
	}

	before := uint64(time.Now().Add(-time.Minute).UnixNano())
	select {
	case ev := <-events:
		if ev.Name != tradelens.EventBLIssued || string(ev.Payload) != "po-ev" {
			t.Fatalf("event = %+v", ev)
		}
		if ev.SourceNetwork != tradelens.NetworkID {
			t.Fatalf("source = %q", ev.SourceNetwork)
		}
		// The event must carry its commit time (historically delivered as
		// zero), or subscribers cannot order cross-network events.
		if ev.UnixNano == 0 {
			t.Fatal("event carries no commit timestamp")
		}
		if ev.UnixNano < before || ev.UnixNano > uint64(time.Now().Add(time.Minute).UnixNano()) {
			t.Fatalf("event commit time %d implausible", ev.UnixNano)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("cross-network event never arrived")
	}
	// On receipt the SWT seller would fetch the B/L with proof — the
	// event-then-query pattern that automates Fig. 3 step 9.
}
