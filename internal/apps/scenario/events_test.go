package scenario

import (
	"context"
	"testing"
	"time"

	"repro/internal/apps/tradelens"
)

// TestCrossNetworkBLIssuedEvent subscribes the SWT seller to STL's
// bl-issued events through the relays and receives the notification when
// the carrier records the bill of lading — the §7 cross-network events
// extension riding the same relay infrastructure as queries.
func TestCrossNetworkBLIssuedEvent(t *testing.T) {
	w, err := Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	actors, err := w.NewActors()
	if err != nil {
		t.Fatalf("NewActors: %v", err)
	}

	events, cancel, err := actors.SWTSeller.Client().SubscribeRemoteEvents(context.Background(),
		tradelens.NetworkID, tradelens.EventBLIssued)
	if err != nil {
		t.Fatalf("SubscribeRemoteEvents: %v", err)
	}
	defer cancel()
	defer w.STL.Relay.StopServing()

	_, _ = actors.STLSeller.CreateShipment(context.Background(), "po-ev", "S", "B", "goods")
	_, _ = actors.STLCarrier.BookShipment(context.Background(), "po-ev", "C")
	_, _ = actors.STLCarrier.RecordGateIn(context.Background(), "po-ev")
	if err := actors.STLCarrier.IssueBillOfLading(context.Background(), &tradelens.BillOfLading{
		BLID: "bl-ev", PORef: "po-ev", Carrier: "C",
	}); err != nil {
		t.Fatalf("IssueBillOfLading: %v", err)
	}

	select {
	case ev := <-events:
		if ev.Name != tradelens.EventBLIssued || string(ev.Payload) != "po-ev" {
			t.Fatalf("event = %+v", ev)
		}
		if ev.SourceNetwork != tradelens.NetworkID {
			t.Fatalf("source = %q", ev.SourceNetwork)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("cross-network event never arrived")
	}
	// On receipt the SWT seller would fetch the B/L with proof — the
	// event-then-query pattern that automates Fig. 3 step 9.
}
