// Package scenario assembles the paper's complete proof-of-concept (§4):
// the Simplified TradeLens and Simplified We.Trade networks, their relays,
// and the interop initialization both governing bodies perform before any
// cross-network operation — configuration exchange, the exposure-control
// rule on STL, and the verification policy on SWT. Examples, experiments
// and benchmarks all build on this package.
package scenario

import (
	"fmt"
	"time"

	"repro/internal/apps/tradelens"
	"repro/internal/apps/wetrade"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/policy"
	"repro/internal/relay"
)

// Relay addresses used with the in-process hub.
const (
	STLRelayAddr = "stl-relay:9080"
	SWTRelayAddr = "swt-relay:9081"
)

// Default Merkle-batching parameters armed on every driver the scenario
// builders create. The window is conservative: short enough that a lone
// query pays at most 2ms of added latency, long enough that concurrent
// pollers of the same source collapse into one root signature per
// attestor. Deployments that need strictly per-query signatures call
// DisableAttestationBatching.
const (
	DefaultAttestBatchWindow = 2 * time.Millisecond
	DefaultAttestBatchMax    = 16
)

// TradeWorld is the wired two-network world.
type TradeWorld struct {
	Hub      *relay.Hub
	Registry *relay.StaticRegistry

	STL *core.Network
	SWT *core.Network

	// Governance gateways used during initialization.
	STLAdmin *fabric.Gateway
	SWTAdmin *fabric.Gateway
}

// Build constructs and initializes the trade world over an in-process
// transport. An optional fabric.Tuning applies to both networks — orderer
// batching mode and committer worker pool; omitted, both run the
// synchronous serial configuration.
func Build(tune ...fabric.Tuning) (*TradeWorld, error) {
	hub := relay.NewHub()
	registry := relay.NewStaticRegistry()
	w, err := BuildWith(registry, hub, tune...)
	if err != nil {
		return nil, err
	}
	hub.Attach(STLRelayAddr, w.STL.Relay)
	hub.Attach(SWTRelayAddr, w.SWT.Relay)
	registry.Register(tradelens.NetworkID, STLRelayAddr)
	registry.Register(wetrade.NetworkID, SWTRelayAddr)
	w.Hub = hub
	w.Registry = registry
	return w, nil
}

// BuildWith constructs the networks over caller-supplied discovery and
// transport (used for TCP deployments), leaving relay registration to the
// caller.
func BuildWith(discovery relay.Discovery, transport relay.Transport, tune ...fabric.Tuning) (*TradeWorld, error) {
	stl, err := tradelens.BuildNetwork(discovery, transport, tune...)
	if err != nil {
		return nil, fmt.Errorf("scenario: build STL: %w", err)
	}
	swt, err := wetrade.BuildNetwork(discovery, transport, tune...)
	if err != nil {
		return nil, fmt.Errorf("scenario: build SWT: %w", err)
	}
	stlAdmin, err := tradelens.AdminGateway(stl, tradelens.SellerOrg)
	if err != nil {
		return nil, fmt.Errorf("scenario: STL admin: %w", err)
	}
	swtAdmin, err := wetrade.AdminGateway(swt, wetrade.BuyerBankOrg)
	if err != nil {
		return nil, fmt.Errorf("scenario: SWT admin: %w", err)
	}
	w := &TradeWorld{STL: stl, SWT: swt, STLAdmin: stlAdmin, SWTAdmin: swtAdmin}
	// Batching on by default: capability-gated per query, so legacy
	// requesters are unaffected, and a solitary query flushes after one
	// conservative window.
	stl.Driver.ConfigureAttestationBatching(DefaultAttestBatchWindow, DefaultAttestBatchMax)
	swt.Driver.ConfigureAttestationBatching(DefaultAttestBatchWindow, DefaultAttestBatchMax)
	if err := w.initialize(); err != nil {
		return nil, err
	}
	return w, nil
}

// DisableAttestationBatching turns Merkle-batched attestation off on both
// networks' drivers, restoring one signature per attestor per query. The
// explicit opt-out for deployments (and measurements) that want the
// unbatched baseline.
func (w *TradeWorld) DisableAttestationBatching() {
	w.STL.Driver.ConfigureAttestationBatching(0, 0)
	w.SWT.Driver.ConfigureAttestationBatching(0, 0)
}

// initialize performs §4.3's one-time setup: STL configuration recorded on
// the SWT ledger and vice versa, the access rule permitting SWT's seller
// organization to query GetBillOfLading, and SWT's verification policy
// requiring attestations from a peer in both STL organizations.
func (w *TradeWorld) initialize() error {
	if err := w.SWT.ConfigureForeignNetwork(w.SWTAdmin, w.STL.ExportConfig()); err != nil {
		return fmt.Errorf("scenario: record STL config on SWT: %w", err)
	}
	if err := w.STL.ConfigureForeignNetwork(w.STLAdmin, w.SWT.ExportConfig()); err != nil {
		return fmt.Errorf("scenario: record SWT config on STL: %w", err)
	}
	// The paper's rule: <"we-trade", "seller-org", "TradeLensCC",
	// "GetBillOfLading"> — members of SWT's seller organization may fetch
	// bills of lading.
	rule := policy.AccessRule{
		Network:   wetrade.NetworkID,
		Org:       wetrade.SellerBankOrg,
		Chaincode: tradelens.ChaincodeName,
		Function:  tradelens.FnGetBillOfLading,
	}
	if err := w.STL.GrantAccess(w.STLAdmin, rule); err != nil {
		return fmt.Errorf("scenario: grant access: %w", err)
	}
	// The paper's verification policy: proof from a peer in both the
	// Seller and Carrier organizations.
	vp := policy.VerificationPolicy{
		Network: tradelens.NetworkID,
		Expr: fmt.Sprintf("AND('%s.peer','%s.peer')",
			tradelens.SellerOrg, tradelens.CarrierOrg),
	}
	if err := w.SWT.SetVerificationPolicy(w.SWTAdmin, vp); err != nil {
		return fmt.Errorf("scenario: set verification policy: %w", err)
	}
	return nil
}

// Actors bundles the four §4.2 participants.
type Actors struct {
	STLSeller  *tradelens.SellerApp
	STLCarrier *tradelens.CarrierApp
	SWTBuyer   *wetrade.BuyerApp
	SWTSeller  *wetrade.SellerApp
}

// NewActors creates one application client per participant.
func (w *TradeWorld) NewActors() (*Actors, error) {
	stlSeller, err := tradelens.NewSellerApp(w.STL, "stl-seller-app")
	if err != nil {
		return nil, err
	}
	stlCarrier, err := tradelens.NewCarrierApp(w.STL, "stl-carrier-app")
	if err != nil {
		return nil, err
	}
	swtBuyer, err := wetrade.NewBuyerApp(w.SWT, "swt-buyer-client")
	if err != nil {
		return nil, err
	}
	swtSeller, err := wetrade.NewSellerApp(w.SWT, "swt-seller-client")
	if err != nil {
		return nil, err
	}
	return &Actors{
		STLSeller:  stlSeller,
		STLCarrier: stlCarrier,
		SWTBuyer:   swtBuyer,
		SWTSeller:  swtSeller,
	}, nil
}
