package scenario

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/apps/tradelens"
	"repro/internal/apps/wetrade"
	"repro/internal/fabric"
	"repro/internal/relay"
)

// TCPRelayServer is one relay process stand-in: a relay instance fronted
// by a TCP listener on a fixed address. It can be killed and restarted on
// the same address mid-run, which is how churn experiments take a relay
// out of — and return it to — a live deployment.
type TCPRelayServer struct {
	NetworkID string
	Relay     *relay.Relay
	// Driver is the Fabric driver this relay serves queries through, when
	// the relay fronts a Fabric network. Exposed so runners can flip
	// driver-level knobs (attestation batching) per relay instance.
	Driver *relay.FabricDriver

	mu     sync.Mutex
	server *relay.TCPServer
	addr   string
}

func newTCPRelayServer(networkID string, r *relay.Relay) (*TCPRelayServer, error) {
	srv, err := relay.NewTCPServer(r, "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("scenario: listen for %s relay: %w", networkID, err)
	}
	return &TCPRelayServer{NetworkID: networkID, Relay: r, server: srv, addr: srv.Addr()}, nil
}

// Addr returns the server's bound address. The address is stable across
// Kill/Restart cycles — discovery entries stay valid.
func (s *TCPRelayServer) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// Kill stops the listener and drops open connections, simulating a relay
// crash. In-flight requests observe connection errors; the discovery entry
// keeps pointing at the now-dead address.
func (s *TCPRelayServer) Kill() error {
	s.mu.Lock()
	srv := s.server
	s.server = nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// Restart brings the relay back on its original address. The kernel may
// briefly hold the port after a kill with connections in flight, so the
// rebind retries over a short window before giving up.
func (s *TCPRelayServer) Restart() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.server != nil {
		return nil
	}
	var err error
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		var srv *relay.TCPServer
		srv, err = relay.NewTCPServer(s.Relay, s.addr)
		if err == nil {
			s.server = srv
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("scenario: restart relay on %s: %w", s.addr, err)
}

// Close shuts the server down for good.
func (s *TCPRelayServer) Close() error { return s.Kill() }

// TCPDeployment is the trade world deployed over real TCP: every relay
// behind its own listener on a loopback port, discovery carrying the bound
// addresses, and optionally extra redundant relays fronting STL — the §5
// redundant-relay topology as separate network endpoints rather than
// in-process hub attachments.
type TCPDeployment struct {
	World     *TradeWorld
	Registry  *relay.StaticRegistry
	Transport *relay.TCPTransport

	// STLServers[0] fronts the network's own relay; any further entries
	// are extra redundant relay instances over the same Fabric.
	STLServers []*TCPRelayServer
	SWTServer  *TCPRelayServer
}

// BuildTCP builds and initializes the trade world over TCP with
// 1+extraSTLRelays relays fronting STL. An optional fabric.Tuning applies
// to both networks. Callers own the returned deployment and must Close it.
func BuildTCP(extraSTLRelays int, tune ...fabric.Tuning) (*TCPDeployment, error) {
	registry := relay.NewStaticRegistry()
	transport := &relay.TCPTransport{DialTimeout: 2 * time.Second, IOTimeout: 10 * time.Second}
	w, err := BuildWith(registry, transport, tune...)
	if err != nil {
		return nil, err
	}
	d := &TCPDeployment{World: w, Registry: registry, Transport: transport}

	primary, err := newTCPRelayServer(tradelens.NetworkID, w.STL.Relay)
	if err != nil {
		return nil, err
	}
	primary.Driver = w.STL.Driver
	d.STLServers = append(d.STLServers, primary)
	for i := 0; i < extraSTLRelays; i++ {
		extra := relay.New(tradelens.NetworkID, registry, transport)
		driver := relay.NewFabricDriver(w.STL.Fabric, "default")
		// Redundant relays run the same default batching plan as the
		// primary; DisableAttestationBatching only covers the networks'
		// own drivers, so load runners flip these per server instead.
		driver.ConfigureAttestationBatching(DefaultAttestBatchWindow, DefaultAttestBatchMax)
		extra.RegisterDriver(tradelens.NetworkID, driver)
		srv, err := newTCPRelayServer(tradelens.NetworkID, extra)
		if err != nil {
			d.Close()
			return nil, err
		}
		srv.Driver = driver
		d.STLServers = append(d.STLServers, srv)
	}
	swt, err := newTCPRelayServer(wetrade.NetworkID, w.SWT.Relay)
	if err != nil {
		d.Close()
		return nil, err
	}
	swt.Driver = w.SWT.Driver
	d.SWTServer = swt

	for _, s := range d.STLServers {
		registry.Register(tradelens.NetworkID, s.Addr())
	}
	registry.Register(wetrade.NetworkID, swt.Addr())
	return d, nil
}

// AllServers returns every relay server in the deployment.
func (d *TCPDeployment) AllServers() []*TCPRelayServer {
	all := append([]*TCPRelayServer{}, d.STLServers...)
	if d.SWTServer != nil {
		all = append(all, d.SWTServer)
	}
	return all
}

// Close tears every server down and stops both networks' orderers, so a
// pipelined deployment leaves no cutter goroutine behind.
func (d *TCPDeployment) Close() {
	for _, s := range d.AllServers() {
		_ = s.Close()
	}
	if d.World != nil {
		_ = d.World.STL.Fabric.Orderer().Stop()
		_ = d.World.SWT.Fabric.Orderer().Stop()
	}
}
