package scenario

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/orderer"
)

// commitModes are the two commit-pipeline configurations every invariant
// suite in this package runs under: the historical synchronous serial path,
// and the pipelined orderer feeding parallel committers. The guarantees —
// exactly-once, proof-carrying replay, MVCC — must hold identically in
// both.
var commitModes = []struct {
	name string
	tune fabric.Tuning
}{
	{"serial", fabric.Tuning{Orderer: orderer.Config{BatchSize: 1}}},
	{"pipelined", fabric.Tuning{
		Orderer:          orderer.Config{Pipelined: true, BatchSize: 8},
		CommitterWorkers: 8,
	}},
}

// forEachCommitMode runs a scenario once per commit mode as subtests.
func forEachCommitMode(t *testing.T, scenario func(t *testing.T, tune fabric.Tuning)) {
	for _, mode := range commitModes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) { scenario(t, mode.tune) })
	}
}
