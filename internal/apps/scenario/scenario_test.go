package scenario

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/apps/tradelens"
	"repro/internal/apps/wetrade"
	"repro/internal/core"
	"repro/internal/proof"
)

// runTradeLifecycle drives Fig. 3 steps 1-10 and returns the actors for
// further assertions. This is experiment E7.
func runTradeLifecycle(t testing.TB) (*TradeWorld, *Actors) {
	t.Helper()
	w, err := Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	actors, err := w.NewActors()
	if err != nil {
		t.Fatalf("NewActors: %v", err)
	}

	// Step 1: seller and carrier arrange shipment against the PO.
	if _, err := actors.STLSeller.CreateShipment(context.Background(), "po-1001", "Acme Exports", "Globex Imports", "4x40ft machinery"); err != nil {
		t.Fatalf("CreateShipment: %v", err)
	}

	// Steps 2-4: buyer's bank issues the L/C, seller's bank accepts.
	lc := &wetrade.LetterOfCredit{
		LCID: "lc-5001", PORef: "po-1001",
		Buyer: "Globex Imports", Seller: "Acme Exports",
		BuyerBank: "First Buyer Bank", SellerBank: "Seller Trust",
		Amount: 2_500_000_00, Currency: "USD",
	}
	if _, err := actors.SWTBuyer.RequestLC(context.Background(), lc); err != nil {
		t.Fatalf("RequestLC: %v", err)
	}
	if _, err := actors.SWTBuyer.IssueLC(context.Background(), "lc-5001"); err != nil {
		t.Fatalf("IssueLC: %v", err)
	}
	if _, err := actors.SWTSeller.AcceptLC(context.Background(), "lc-5001"); err != nil {
		t.Fatalf("AcceptLC: %v", err)
	}

	// Steps 5-8: booking, gate-in, B/L issuance on STL.
	if _, err := actors.STLCarrier.BookShipment(context.Background(), "po-1001", "Oceanic Lines"); err != nil {
		t.Fatalf("BookShipment: %v", err)
	}
	if _, err := actors.STLCarrier.RecordGateIn(context.Background(), "po-1001"); err != nil {
		t.Fatalf("RecordGateIn: %v", err)
	}
	bl := &tradelens.BillOfLading{
		BLID: "bl-7734", PORef: "po-1001", Carrier: "Oceanic Lines",
		Vessel: "MV Meridian", PortFrom: "Shanghai", PortTo: "Rotterdam",
		Goods: "4x40ft machinery", IssuedAt: time.Now(),
	}
	if err := actors.STLCarrier.IssueBillOfLading(context.Background(), bl); err != nil {
		t.Fatalf("IssueBillOfLading: %v", err)
	}

	// Step 9: cross-network query + proof-carrying upload.
	if _, err := actors.SWTSeller.FetchAndUploadBL(context.Background(), "lc-5001", "po-1001"); err != nil {
		t.Fatalf("FetchAndUploadBL: %v", err)
	}

	// Step 10: payment request and settlement.
	if _, err := actors.SWTSeller.RequestPayment(context.Background(), "lc-5001"); err != nil {
		t.Fatalf("RequestPayment: %v", err)
	}
	if _, err := actors.SWTBuyer.MakePayment(context.Background(), "lc-5001"); err != nil {
		t.Fatalf("MakePayment: %v", err)
	}
	return w, actors
}

func TestE7TradeLifecycle(t *testing.T) {
	_, actors := runTradeLifecycle(t)
	lc, err := actors.SWTBuyer.LC(context.Background(), "lc-5001")
	if err != nil {
		t.Fatalf("LC: %v", err)
	}
	if lc.Status != wetrade.StatusPaid {
		t.Fatalf("final status = %s", lc.Status)
	}
	if lc.BLID != "bl-7734" {
		t.Fatalf("recorded B/L = %q", lc.BLID)
	}
	shipment, err := actors.STLSeller.Shipment(context.Background(), "po-1001")
	if err != nil {
		t.Fatalf("Shipment: %v", err)
	}
	if shipment.Status != tradelens.StatusBLIssued {
		t.Fatalf("shipment status = %s", shipment.Status)
	}
}

func TestE7PaymentBlockedWithoutDocs(t *testing.T) {
	w, err := Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	actors, _ := w.NewActors()
	lc := &wetrade.LetterOfCredit{
		LCID: "lc-1", PORef: "po-1", Buyer: "B", Seller: "S",
		Amount: 100, Currency: "USD",
	}
	_, _ = actors.SWTBuyer.RequestLC(context.Background(), lc)
	_, _ = actors.SWTBuyer.IssueLC(context.Background(), "lc-1")
	_, _ = actors.SWTSeller.AcceptLC(context.Background(), "lc-1")
	// No dispatch documents: payment request must fail the state machine.
	if _, err := actors.SWTSeller.RequestPayment(context.Background(), "lc-1"); err == nil {
		t.Fatal("payment requested without verified dispatch documents")
	}
}

func TestE7ForgedBLRejected(t *testing.T) {
	w, err := Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	actors, _ := w.NewActors()

	// L/C exists and is accepted, but no B/L was ever issued on STL.
	lc := &wetrade.LetterOfCredit{
		LCID: "lc-9", PORef: "po-9", Buyer: "B", Seller: "S",
		Amount: 100, Currency: "USD",
	}
	_, _ = actors.SWTBuyer.RequestLC(context.Background(), lc)
	_, _ = actors.SWTBuyer.IssueLC(context.Background(), "lc-9")
	_, _ = actors.SWTSeller.AcceptLC(context.Background(), "lc-9")

	// The seller forges a B/L document and wraps it in a bundle with no
	// valid attestations (they cannot produce STL peer signatures).
	forged := &proof.Bundle{
		SourceNetwork: tradelens.NetworkID,
		Result:        []byte(`{"blId":"bl-fake","poRef":"po-9"}`),
		Nonce:         []byte("fresh-nonce"),
	}
	if err := actors.SWTSeller.UploadForgedBL(context.Background(), "lc-9", forged.Marshal()); err == nil {
		t.Fatal("forged B/L accepted")
	}
	// The L/C must still be waiting for documents.
	got, _ := actors.SWTSeller.LC(context.Background(), "lc-9")
	if got.Status != wetrade.StatusAccepted {
		t.Fatalf("status after forgery attempt = %s", got.Status)
	}
}

func TestE7CrossNetworkQueryBeforeBLIssued(t *testing.T) {
	w, err := Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	actors, _ := w.NewActors()
	_, _ = actors.STLSeller.CreateShipment(context.Background(), "po-2", "S", "B", "goods")
	lc := &wetrade.LetterOfCredit{
		LCID: "lc-2", PORef: "po-2", Buyer: "B", Seller: "S",
		Amount: 100, Currency: "USD",
	}
	_, _ = actors.SWTBuyer.RequestLC(context.Background(), lc)
	_, _ = actors.SWTBuyer.IssueLC(context.Background(), "lc-2")
	_, _ = actors.SWTSeller.AcceptLC(context.Background(), "lc-2")
	// The shipment exists but no B/L yet: the remote query must fail with
	// the source chaincode's error.
	_, err = actors.SWTSeller.FetchAndUploadBL(context.Background(), "lc-2", "po-2")
	if err == nil {
		t.Fatal("fetched a B/L that does not exist")
	}
	if !strings.Contains(err.Error(), "no bill of lading") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestShipmentLifecycleOrderEnforced(t *testing.T) {
	w, err := Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	actors, _ := w.NewActors()
	_, _ = actors.STLSeller.CreateShipment(context.Background(), "po-3", "S", "B", "goods")
	// Gate-in before booking must fail.
	if _, err := actors.STLCarrier.RecordGateIn(context.Background(), "po-3"); err == nil {
		t.Fatal("gate-in before booking accepted")
	}
	// B/L before gate-in must fail.
	_, _ = actors.STLCarrier.BookShipment(context.Background(), "po-3", "C")
	bl := &tradelens.BillOfLading{BLID: "bl-3", PORef: "po-3", Carrier: "C"}
	_ = bl
	if _, err := actors.STLCarrier.RecordGateIn(context.Background(), "po-3"); err != nil {
		t.Fatalf("gate-in after booking: %v", err)
	}
	// Wrong carrier on the B/L must fail.
	wrong := &tradelens.BillOfLading{BLID: "bl-3", PORef: "po-3", Carrier: "Other Carrier"}
	if err := actors.STLCarrier.IssueBillOfLading(context.Background(), wrong); err == nil {
		t.Fatal("B/L from wrong carrier accepted")
	}
}

func TestDuplicateShipmentRejected(t *testing.T) {
	w, err := Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	actors, _ := w.NewActors()
	if _, err := actors.STLSeller.CreateShipment(context.Background(), "po-4", "S", "B", "goods"); err != nil {
		t.Fatalf("CreateShipment: %v", err)
	}
	if _, err := actors.STLSeller.CreateShipment(context.Background(), "po-4", "S", "B", "goods"); err == nil {
		t.Fatal("duplicate shipment accepted")
	}
}

func TestDuplicateLCRejected(t *testing.T) {
	w, err := Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	actors, _ := w.NewActors()
	lc := &wetrade.LetterOfCredit{LCID: "lc-d", PORef: "po-d", Buyer: "B", Seller: "S", Amount: 1, Currency: "USD"}
	if _, err := actors.SWTBuyer.RequestLC(context.Background(), lc); err != nil {
		t.Fatalf("RequestLC: %v", err)
	}
	if _, err := actors.SWTBuyer.RequestLC(context.Background(), lc); err == nil {
		t.Fatal("duplicate L/C accepted")
	}
}

func TestBLPORefMismatchRejected(t *testing.T) {
	w, err := Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	actors, _ := w.NewActors()

	// Full STL flow for po-A.
	_, _ = actors.STLSeller.CreateShipment(context.Background(), "po-A", "S", "B", "goods")
	_, _ = actors.STLCarrier.BookShipment(context.Background(), "po-A", "C")
	_, _ = actors.STLCarrier.RecordGateIn(context.Background(), "po-A")
	_ = actors.STLCarrier.IssueBillOfLading(context.Background(), &tradelens.BillOfLading{BLID: "bl-A", PORef: "po-A", Carrier: "C"})

	// L/C for a DIFFERENT purchase order.
	lc := &wetrade.LetterOfCredit{LCID: "lc-B", PORef: "po-B", Buyer: "B", Seller: "S", Amount: 1, Currency: "USD"}
	_, _ = actors.SWTBuyer.RequestLC(context.Background(), lc)
	_, _ = actors.SWTBuyer.IssueLC(context.Background(), "lc-B")
	_, _ = actors.SWTSeller.AcceptLC(context.Background(), "lc-B")

	// Fetching po-A's B/L and attaching it to lc-B must fail: the CMDAC
	// recomputes the expected query digest from the L/C's own PO ref.
	if _, err := actors.SWTSeller.FetchAndUploadBL(context.Background(), "lc-B", "po-A"); err == nil {
		t.Fatal("B/L for a different purchase order accepted")
	}
}

func TestEventsOnLifecycle(t *testing.T) {
	w, err := Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sub := w.STL.Fabric.SubscribeEvents(tradelens.ChaincodeName, tradelens.EventBLIssued)
	defer sub.Cancel()

	actors, _ := w.NewActors()
	_, _ = actors.STLSeller.CreateShipment(context.Background(), "po-e", "S", "B", "goods")
	_, _ = actors.STLCarrier.BookShipment(context.Background(), "po-e", "C")
	_, _ = actors.STLCarrier.RecordGateIn(context.Background(), "po-e")
	_ = actors.STLCarrier.IssueBillOfLading(context.Background(), &tradelens.BillOfLading{BLID: "bl-e", PORef: "po-e", Carrier: "C"})

	select {
	case ev := <-sub.C:
		if string(ev.Payload) != "po-e" {
			t.Fatalf("event payload = %q", ev.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("bl-issued event not delivered")
	}
}

func BenchmarkE1EndToEndTradeQuery(b *testing.B) {
	w, err := Build()
	if err != nil {
		b.Fatal(err)
	}
	actors, err := w.NewActors()
	if err != nil {
		b.Fatal(err)
	}
	_, _ = actors.STLSeller.CreateShipment(context.Background(), "po-1001", "S", "B", "goods")
	_, _ = actors.STLCarrier.BookShipment(context.Background(), "po-1001", "C")
	_, _ = actors.STLCarrier.RecordGateIn(context.Background(), "po-1001")
	_ = actors.STLCarrier.IssueBillOfLading(context.Background(), &tradelens.BillOfLading{BLID: "bl-1", PORef: "po-1001", Carrier: "C"})

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := actors.SWTSeller.Client().RemoteQuery(context.Background(), remoteBLQuery("po-1001")); err != nil {
			b.Fatal(err)
		}
	}
}

func remoteBLQuery(poRef string) core.RemoteQuerySpec {
	return core.RemoteQuerySpec{
		Network:  tradelens.NetworkID,
		Contract: tradelens.ChaincodeName,
		Function: tradelens.FnGetBillOfLading,
		Args:     [][]byte{[]byte(poRef)},
	}
}
