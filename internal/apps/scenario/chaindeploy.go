package scenario

import (
	"fmt"
	"time"

	"repro/internal/apps/tradelens"
	"repro/internal/apps/wetrade"
	"repro/internal/fabric"
	"repro/internal/msp"
	"repro/internal/relay"
)

// HubNetworkID returns the network identifier of the i-th (0-based)
// forwarding hub tier in a chain deployment: "hub-1-net" is adjacent to
// the origin (SWT) side.
func HubNetworkID(i int) string { return fmt.Sprintf("hub-%d-net", i+1) }

// HubTier is one forwarding network in a chain deployment: its relay
// servers (redundant replicas sharing one discovery view and one route
// table, each with its own signing identity) and the partitioned registry
// that lets them see exactly one network — the next tier, or the source.
type HubTier struct {
	NetworkID string
	Registry  *relay.StaticRegistry
	Routes    *relay.RouteTable
	Servers   []*TCPRelayServer
}

// TCPChainDeployment is the trade world stretched over a multi-hop relay
// chain: SWT → hub-1 → … → hub-N → STL, every relay behind its own TCP
// listener, with discovery partitioned per tier so the only way a request
// reaches the source network is the full walk. Hub relays serve no
// drivers; they forward, sign hop pins, and fail over across the next
// tier's replicas like any client-side fan-out.
type TCPChainDeployment struct {
	World     *TradeWorld
	Transport *relay.TCPTransport

	// Registry is the origin (SWT) relay's discovery view: the first hub
	// tier's addresses plus the SWT relay itself — never the source.
	Registry *relay.StaticRegistry
	// Routes is the origin's route table: tradelens via hub-1.
	Routes *relay.RouteTable

	// Hubs[0] is adjacent to the origin; Hubs[len-1] resolves the source.
	// Empty for a zero-hub (direct) chain.
	Hubs []*HubTier

	STLServer *TCPRelayServer
	SWTServer *TCPRelayServer
}

// BuildTCPChain builds and initializes the trade world over a TCP relay
// chain with the given number of intermediate hub networks (0 = direct)
// and relay replicas per hub. An optional fabric.Tuning applies to both
// networks. Callers own the returned deployment and must Close it.
func BuildTCPChain(hubs, relaysPerHub int, tune ...fabric.Tuning) (*TCPChainDeployment, error) {
	if hubs < 0 {
		return nil, fmt.Errorf("scenario: %d hub tiers", hubs)
	}
	if relaysPerHub < 1 {
		relaysPerHub = 1
	}
	registry := relay.NewStaticRegistry()
	transport := &relay.TCPTransport{DialTimeout: 2 * time.Second, IOTimeout: 10 * time.Second}
	w, err := BuildWith(registry, transport, tune...)
	if err != nil {
		return nil, err
	}
	d := &TCPChainDeployment{World: w, Transport: transport, Registry: registry}

	stlSrv, err := newTCPRelayServer(tradelens.NetworkID, w.STL.Relay)
	if err != nil {
		d.Close()
		return nil, err
	}
	stlSrv.Driver = w.STL.Driver
	d.STLServer = stlSrv
	swtSrv, err := newTCPRelayServer(wetrade.NetworkID, w.SWT.Relay)
	if err != nil {
		d.Close()
		return nil, err
	}
	swtSrv.Driver = w.SWT.Driver
	d.SWTServer = swtSrv
	registry.Register(wetrade.NetworkID, swtSrv.Addr())

	if hubs == 0 {
		registry.Register(tradelens.NetworkID, stlSrv.Addr())
		return d, nil
	}

	// Build tiers source-side first, so each tier can register the bound
	// addresses of the one it forwards to.
	tiers := make([]*HubTier, hubs)
	for i := hubs - 1; i >= 0; i-- {
		tier := &HubTier{
			NetworkID: HubNetworkID(i),
			Registry:  relay.NewStaticRegistry(),
			Routes:    relay.NewRouteTable(),
		}
		tiers[i] = tier
		d.Hubs = tiers[i:] // keep Close able to reach servers built so far
		if i == hubs-1 {
			tier.Registry.Register(tradelens.NetworkID, stlSrv.Addr())
		} else {
			for _, s := range tiers[i+1].Servers {
				tier.Registry.Register(HubNetworkID(i+1), s.Addr())
			}
			tier.Routes.Set(tradelens.NetworkID, HubNetworkID(i+1))
		}
		ca, err := msp.NewCA(fmt.Sprintf("hub-%d-org", i+1))
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("scenario: hub %d CA: %w", i+1, err)
		}
		for j := 0; j < relaysPerHub; j++ {
			id, err := ca.Issue(fmt.Sprintf("hub-%d-relay-%d", i+1, j), msp.RolePeer)
			if err != nil {
				d.Close()
				return nil, fmt.Errorf("scenario: hub %d identity: %w", i+1, err)
			}
			hubRelay := relay.New(tier.NetworkID, tier.Registry, transport)
			hubRelay.EnableForwarding(tier.Routes, id)
			srv, err := newTCPRelayServer(tier.NetworkID, hubRelay)
			if err != nil {
				d.Close()
				return nil, err
			}
			tier.Servers = append(tier.Servers, srv)
		}
	}
	d.Hubs = tiers

	for _, s := range tiers[0].Servers {
		registry.Register(HubNetworkID(0), s.Addr())
	}
	routes := relay.NewRouteTable()
	routes.Set(tradelens.NetworkID, HubNetworkID(0))
	// The walk needs exactly hubs+1 transport legs; stamp the TTL tight so
	// a routing mistake fails loudly instead of wandering.
	routes.SetMaxHops(uint64(hubs) + 1)
	w.SWT.Relay.SetRoutes(routes)
	d.Routes = routes
	return d, nil
}

// AllServers returns every relay server in the deployment: SWT, each hub
// tier origin-side first, then STL.
func (d *TCPChainDeployment) AllServers() []*TCPRelayServer {
	var all []*TCPRelayServer
	if d.SWTServer != nil {
		all = append(all, d.SWTServer)
	}
	for _, tier := range d.Hubs {
		all = append(all, tier.Servers...)
	}
	if d.STLServer != nil {
		all = append(all, d.STLServer)
	}
	return all
}

// Close tears every server down and stops both networks' orderers.
func (d *TCPChainDeployment) Close() {
	for _, s := range d.AllServers() {
		_ = s.Close()
	}
	if d.World != nil {
		_ = d.World.STL.Fabric.Orderer().Stop()
		_ = d.World.SWT.Fabric.Orderer().Stop()
	}
}
