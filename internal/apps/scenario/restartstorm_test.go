package scenario

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/apps/tradelens"
	"repro/internal/apps/wetrade"
	"repro/internal/core"
	"repro/internal/relay"
)

// TestRestartStormThroughJournalRegistry drives the full §5
// redundant-relay deployment through one append-only journal registry
// under storm conditions: a fleet of relay addresses heartbeating on
// aggressive TTLs, extra relays churning through announce/deregister
// restart cycles, and a background compactor rolling the journal
// generation underneath all of it — while a cross-network client keeps
// resolving, querying and invoking. The PR 3 suite's invariants must hold
// throughout: every invoke commits exactly once on the source ledger
// (failover retries answered by ledger replay, never re-execution), and
// health-aware ordering keeps demoting the dead primary (breaker skips
// accounted, no wasted attempts) even as the registry file the health
// rides on is rewritten generation after generation.
func TestRestartStormThroughJournalRegistry(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "registry.jsonl")
	// A tiny compaction threshold plus a fast ticker force many generation
	// rollovers within the test window.
	journal := relay.NewJournalRegistry(journalPath, relay.WithCompactBytes(512))
	hub := relay.NewHub()
	w, err := BuildWith(journal, hub)
	if err != nil {
		t.Fatalf("BuildWith: %v", err)
	}
	if err := DeployAuditLog(w); err != nil {
		t.Fatalf("DeployAuditLog: %v", err)
	}
	relayB := relay.New(tradelens.NetworkID, journal, hub)
	relayB.RegisterDriver(tradelens.NetworkID, relay.NewFabricDriver(w.STL.Fabric, "default"))
	hub.Attach(STLRelayAddr, w.STL.Relay)
	hub.Attach(STLRelayAddrB, relayB)
	hub.Attach(SWTRelayAddr, w.SWT.Relay)

	// The steady fleet: both STL relays and the SWT relay heartbeat their
	// leases (and health snapshots) through the shared journal. Heartbeats
	// every ~666ms are aggressive for a registry while leaving a full
	// 2×heartbeat of renewal slack, so a loaded -race CI scheduler stalling
	// a goroutine cannot lapse a steady lease spuriously — the journal
	// churn the test needs comes from the storm announcers and the 10ms
	// compactor, not from TTL brinkmanship.
	const ttl = 2 * time.Second
	var stops []func()
	for _, member := range []struct {
		network, addr string
		health        func() map[string]relay.SharedHealth
	}{
		{tradelens.NetworkID, STLRelayAddr, w.STL.Relay.HealthSnapshot},
		{tradelens.NetworkID, STLRelayAddrB, relayB.HealthSnapshot},
		{wetrade.NetworkID, SWTRelayAddr, w.SWT.Relay.HealthSnapshot},
	} {
		stop, err := relay.AnnounceWithHealth(journal, member.network, member.addr, ttl, member.health, nil)
		if err != nil {
			t.Fatalf("AnnounceWithHealth(%s): %v", member.addr, err)
		}
		stops = append(stops, stop)
	}
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	stopCompactor := journal.StartCompactor(10*time.Millisecond, func(err error) {
		t.Errorf("compactor: %v", err)
	})
	defer stopCompactor()

	// The restart storm: extra relay addresses (served by relay B) cycling
	// through announce → heartbeat → deregister, like relayd processes
	// crash-looping against the shared deployment dir.
	stormDone := make(chan struct{})
	var stormWG sync.WaitGroup
	for i := 0; i < 3; i++ {
		addr := fmt.Sprintf("stl-storm-%d:9090", i)
		hub.Attach(addr, relayB)
		stormWG.Add(1)
		go func(addr string) {
			defer stormWG.Done()
			for {
				stop, err := relay.Announce(journal, tradelens.NetworkID, addr, ttl, nil)
				if err != nil {
					t.Errorf("storm announce %s: %v", addr, err)
					return
				}
				select {
				case <-stormDone:
					stop()
					return
				case <-time.After(30 * time.Millisecond):
					stop() // restart: deregister and come right back
				}
			}
		}(addr)
	}
	defer func() {
		close(stormDone)
		stormWG.Wait()
	}()

	// Seed the B/L so queries have something to fetch.
	actors, err := w.NewActors()
	if err != nil {
		t.Fatalf("NewActors: %v", err)
	}
	ctx := context.Background()
	if _, err := actors.STLSeller.CreateShipment(ctx, "po-1001", "S", "B", "goods"); err != nil {
		t.Fatalf("CreateShipment: %v", err)
	}
	if _, err := actors.STLCarrier.BookShipment(ctx, "po-1001", "C"); err != nil {
		t.Fatalf("BookShipment: %v", err)
	}
	if _, err := actors.STLCarrier.RecordGateIn(ctx, "po-1001"); err != nil {
		t.Fatalf("RecordGateIn: %v", err)
	}
	if err := actors.STLCarrier.IssueBillOfLading(ctx, &tradelens.BillOfLading{
		BLID: "bl-1", PORef: "po-1001", Carrier: "C",
	}); err != nil {
		t.Fatalf("IssueBillOfLading: %v", err)
	}

	client, err := core.NewClient(w.SWT, wetrade.SellerBankOrg, "storm-client")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}

	// Soak: let heartbeats, restart cycles and compactions churn for many
	// generations while discovery must stay continuously resolvable — a
	// reader tailing mid-compaction never goes dark and never loses the
	// steady members.
	soakUntil := time.Now().Add(400 * time.Millisecond)
	for time.Now().Before(soakUntil) {
		addrs, err := journal.Resolve(tradelens.NetworkID)
		if err != nil {
			t.Fatalf("discovery went dark mid-storm: %v", err)
		}
		for _, steady := range []string{STLRelayAddr, STLRelayAddrB} {
			found := false
			for _, a := range addrs {
				if a == steady {
					found = true
				}
			}
			if !found {
				t.Fatalf("steady member %s vanished mid-storm: %v", steady, addrs)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Exactly-once under churn: unique-key invokes land exactly one valid
	// commit each while heartbeats and compactions race the resolutions.
	for i := 0; i < 4; i++ {
		spec := core.RemoteQuerySpec{
			Network: tradelens.NetworkID, Contract: "auditcc", Function: "Append",
			Args:      [][]byte{[]byte(fmt.Sprintf("po-storm-%d", i)), []byte("entry;")},
			RequestID: fmt.Sprintf("storm-unique-%d", i),
		}
		if _, err := client.RemoteInvoke(ctx, spec); err != nil {
			t.Fatalf("storm invoke %d: %v", i, err)
		}
		valid, _ := committedInvokes(t, w, invokeTxID(spec.RequestID, client.Identity().CertPEM()))
		if valid != 1 {
			t.Fatalf("invoke %d: %d valid commits, want exactly 1", i, valid)
		}
	}

	// Failover retry: commit through the fleet, kill the primary, retry
	// the ambiguous outcome under the same idempotency key. The ledger
	// anchor (not any relay's memory) must collapse it to one commit, and
	// the retry must be answered by replay.
	retrySpec := core.RemoteQuerySpec{
		Network: tradelens.NetworkID, Contract: "auditcc", Function: "Append",
		Args:      [][]byte{[]byte("po-storm-retry"), []byte("shipped;")},
		RequestID: "storm-retry",
	}
	first, err := client.RemoteInvoke(ctx, retrySpec)
	if err != nil {
		t.Fatalf("pre-failover invoke: %v", err)
	}
	hub.SetDown(STLRelayAddr, true)
	retry, err := client.RemoteInvoke(ctx, retrySpec)
	if err != nil {
		t.Fatalf("failover retry: %v", err)
	}
	if !bytes.Equal(first.Result, retry.Result) {
		t.Fatalf("failover retry result %q != original %q", retry.Result, first.Result)
	}
	valid, _ := committedInvokes(t, w, invokeTxID("storm-retry", client.Identity().CertPEM()))
	if valid != 1 {
		t.Fatalf("retried invoke has %d valid commits, want exactly 1", valid)
	}
	if got, _ := w.STLAdmin.Evaluate("auditcc", "Read", []byte("po-storm-retry")); !bytes.Equal(got, []byte("shipped;")) {
		t.Fatalf("source state = %q, want single append", got)
	}

	// Health-ordering under churn: open the dead primary's breaker via
	// liveness probes, then repeated queries must never attempt it again —
	// every resolve demotes it and accounts the skip — even though the
	// registry those resolves read is being compacted and re-announced
	// continuously.
	for i := 0; i < 3; i++ {
		if err := w.SWT.Relay.Ping(ctx, STLRelayAddr); err == nil {
			t.Fatal("ping against the downed primary succeeded")
		}
	}
	querySpec := core.RemoteQuerySpec{
		Network:  tradelens.NetworkID,
		Contract: tradelens.ChaincodeName,
		Function: tradelens.FnGetBillOfLading,
		Args:     [][]byte{[]byte("po-1001")},
	}
	before := w.SWT.Relay.Stats()
	const queries = 6
	for i := 0; i < queries; i++ {
		if _, err := client.RemoteQuery(ctx, querySpec); err != nil {
			t.Fatalf("post-breaker query %d: %v", i, err)
		}
	}
	after := w.SWT.Relay.Stats()
	if got := after.FanoutAttempts - before.FanoutAttempts; got != queries {
		t.Fatalf("post-breaker attempts = %d, want %d (dead primary never attempted)", got, queries)
	}
	if got := after.BreakerSkips - before.BreakerSkips; got != queries {
		t.Fatalf("BreakerSkips delta = %d, want %d", got, queries)
	}

	// The storm actually exercised compaction: the generation pointer
	// exists and has advanced past the genesis journal.
	genData, err := os.ReadFile(journalPath + ".gen")
	if err != nil {
		t.Fatalf("no generation pointer after the storm (compactor never ran?): %v", err)
	}
	gen, err := strconv.ParseUint(strings.TrimSpace(string(genData)), 10, 64)
	if err != nil || gen == 0 {
		t.Fatalf("generation = %q, %v, want >= 1", genData, err)
	}
}
