package scenario

import (
	"context"
	"testing"

	"repro/internal/apps/tradelens"
	"repro/internal/core"
	"repro/internal/relay"
)

// TestHealthAwareFailoverSkipsDeadRelay is the §5 availability scenario
// with discovery made health-aware: three registered relay addresses front
// STL, the preferred one is dead, and repeated cross-network queries must
// stop wasting a transport attempt on it. Seed behavior retried the dead
// address first on every query (2 attempts per query, forever); with
// failure-scored ordering it is attempted once, then demoted, and once the
// circuit breaker opens (here via liveness probes, as netadmin would issue)
// resolves skip it outright and account the skip.
func TestHealthAwareFailoverSkipsDeadRelay(t *testing.T) {
	hub := relay.NewHub()
	registry := relay.NewStaticRegistry()
	w, err := BuildWith(registry, hub)
	if err != nil {
		t.Fatalf("BuildWith: %v", err)
	}
	// Three redundant addresses for STL, dead primary listed first so seed
	// preference order would hit it on every query.
	addrs := []string{"stl-relay-dead", "stl-relay-b", "stl-relay-c"}
	for _, addr := range addrs {
		hub.Attach(addr, w.STL.Relay)
	}
	registry.Register(tradelens.NetworkID, addrs...)
	hub.SetDown("stl-relay-dead", true)
	hub.Attach(SWTRelayAddr, w.SWT.Relay)
	registry.Register("we-trade", SWTRelayAddr)

	actors, err := w.NewActors()
	if err != nil {
		t.Fatalf("NewActors: %v", err)
	}
	ctx := context.Background()
	if _, err := actors.STLSeller.CreateShipment(ctx, "po-1001", "S", "B", "goods"); err != nil {
		t.Fatalf("CreateShipment: %v", err)
	}
	if _, err := actors.STLCarrier.BookShipment(ctx, "po-1001", "C"); err != nil {
		t.Fatalf("BookShipment: %v", err)
	}
	if _, err := actors.STLCarrier.RecordGateIn(ctx, "po-1001"); err != nil {
		t.Fatalf("RecordGateIn: %v", err)
	}
	if err := actors.STLCarrier.IssueBillOfLading(ctx, &tradelens.BillOfLading{
		BLID: "bl-1", PORef: "po-1001", Carrier: "C",
	}); err != nil {
		t.Fatalf("IssueBillOfLading: %v", err)
	}

	spec := core.RemoteQuerySpec{
		Network:  tradelens.NetworkID,
		Contract: tradelens.ChaincodeName,
		Function: tradelens.FnGetBillOfLading,
		Args:     [][]byte{[]byte("po-1001")},
	}
	client := actors.SWTSeller.Client()

	const queries = 8
	for i := 0; i < queries; i++ {
		if _, err := client.RemoteQuery(ctx, spec); err != nil {
			t.Fatalf("failover query %d: %v", i, err)
		}
	}
	stats := w.SWT.Relay.Stats()
	seedAttempts := uint64(2 * queries) // dead primary retried on every query
	if stats.FanoutAttempts >= seedAttempts {
		t.Fatalf("FanoutAttempts = %d, want fewer than seed behavior's %d", stats.FanoutAttempts, seedAttempts)
	}
	if want := uint64(queries + 1); stats.FanoutAttempts != want {
		t.Fatalf("FanoutAttempts = %d, want %d (dead address attempted exactly once)", stats.FanoutAttempts, want)
	}

	// Liveness probes against the dead address (netadmin-style) open its
	// circuit breaker; from then on every resolve demotes it and the skip
	// shows up in the stats.
	for i := 0; i < 3; i++ {
		if err := w.SWT.Relay.Ping(ctx, "stl-relay-dead"); err == nil {
			t.Fatal("ping against the dead relay succeeded")
		}
	}
	before := w.SWT.Relay.Stats()
	for i := 0; i < queries; i++ {
		if _, err := client.RemoteQuery(ctx, spec); err != nil {
			t.Fatalf("post-breaker query %d: %v", i, err)
		}
	}
	after := w.SWT.Relay.Stats()
	if got := after.FanoutAttempts - before.FanoutAttempts; got != queries {
		t.Fatalf("post-breaker attempts = %d, want %d (dead address never attempted)", got, queries)
	}
	if after.BreakerSkips-before.BreakerSkips != queries {
		t.Fatalf("BreakerSkips delta = %d, want %d", after.BreakerSkips-before.BreakerSkips, queries)
	}

	// The dead relay restored: service keeps working (and the address can
	// earn its standing back through the health tracker).
	hub.SetDown("stl-relay-dead", false)
	if _, err := client.RemoteQuery(ctx, spec); err != nil {
		t.Fatalf("query after recovery: %v", err)
	}
}
