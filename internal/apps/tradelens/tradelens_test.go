package tradelens

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/relay"
)

func buildSTL(t testing.TB) (*SellerApp, *CarrierApp) {
	t.Helper()
	n, err := BuildNetwork(relay.NewStaticRegistry(), relay.NewHub())
	if err != nil {
		t.Fatalf("BuildNetwork: %v", err)
	}
	seller, err := NewSellerApp(n, "seller-app")
	if err != nil {
		t.Fatalf("NewSellerApp: %v", err)
	}
	carrier, err := NewCarrierApp(n, "carrier-app")
	if err != nil {
		t.Fatalf("NewCarrierApp: %v", err)
	}
	return seller, carrier
}

func TestShipmentLifecycle(t *testing.T) {
	seller, carrier := buildSTL(t)
	s, err := seller.CreateShipment(context.Background(), "po-1", "Acme", "Globex", "widgets")
	if err != nil {
		t.Fatalf("CreateShipment: %v", err)
	}
	if s.Status != StatusCreated || s.PORef != "po-1" {
		t.Fatalf("created = %+v", s)
	}
	s, err = carrier.BookShipment(context.Background(), "po-1", "Oceanic")
	if err != nil {
		t.Fatalf("BookShipment: %v", err)
	}
	if s.Status != StatusBooked || s.Carrier != "Oceanic" {
		t.Fatalf("booked = %+v", s)
	}
	s, err = carrier.RecordGateIn(context.Background(), "po-1")
	if err != nil {
		t.Fatalf("RecordGateIn: %v", err)
	}
	if s.Status != StatusGateIn {
		t.Fatalf("gate-in = %+v", s)
	}
	if err := carrier.IssueBillOfLading(context.Background(), &BillOfLading{
		BLID: "bl-1", PORef: "po-1", Carrier: "Oceanic", IssuedAt: time.Now(),
	}); err != nil {
		t.Fatalf("IssueBillOfLading: %v", err)
	}
	s, err = seller.Shipment(context.Background(), "po-1")
	if err != nil {
		t.Fatalf("Shipment: %v", err)
	}
	if s.Status != StatusBLIssued || s.BillOfLading != "bl-1" {
		t.Fatalf("final = %+v", s)
	}
}

func TestBLRequiresGateIn(t *testing.T) {
	seller, carrier := buildSTL(t)
	_, _ = seller.CreateShipment(context.Background(), "po-1", "A", "B", "g")
	_, _ = carrier.BookShipment(context.Background(), "po-1", "C")
	// Skipping gate-in: issuing a B/L must fail.
	if err := carrier.IssueBillOfLading(context.Background(), &BillOfLading{BLID: "bl", PORef: "po-1", Carrier: "C"}); err == nil {
		t.Fatal("B/L issued before gate-in")
	}
}

func TestBLValidation(t *testing.T) {
	for _, bl := range []*BillOfLading{
		{PORef: "po", Carrier: "c"},
		{BLID: "bl", Carrier: "c"},
		{BLID: "bl", PORef: "po"},
	} {
		if err := bl.Validate(); err == nil {
			t.Fatalf("invalid B/L accepted: %+v", bl)
		}
	}
	good := &BillOfLading{BLID: "bl", PORef: "po", Carrier: "c"}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid B/L rejected: %v", err)
	}
}

func TestGetMissingShipment(t *testing.T) {
	seller, _ := buildSTL(t)
	if _, err := seller.Shipment(context.Background(), "ghost"); err == nil {
		t.Fatal("missing shipment returned")
	}
}

func TestListShipments(t *testing.T) {
	seller, _ := buildSTL(t)
	_, _ = seller.CreateShipment(context.Background(), "po-1", "A", "B", "g1")
	_, _ = seller.CreateShipment(context.Background(), "po-2", "A", "B", "g2")
	data, err := seller.Client().Evaluate(context.Background(), ChaincodeName, FnListShipments)
	if err != nil {
		t.Fatalf("ListShipments: %v", err)
	}
	var shipments []Shipment
	if err := json.Unmarshal(data, &shipments); err != nil {
		t.Fatalf("unmarshal: %v, data=%s", err, data)
	}
	if len(shipments) != 2 {
		t.Fatalf("shipments = %d", len(shipments))
	}
}

func TestListShipmentsEmpty(t *testing.T) {
	seller, _ := buildSTL(t)
	data, err := seller.Client().Evaluate(context.Background(), ChaincodeName, FnListShipments)
	if err != nil {
		t.Fatalf("ListShipments: %v", err)
	}
	if !bytes.Equal(data, []byte("[]")) {
		t.Fatalf("empty list = %s", data)
	}
}

func TestGetBillOfLadingLocalBypassesACL(t *testing.T) {
	// Local (non-relay) invocations are not subject to exposure control.
	seller, carrier := buildSTL(t)
	_, _ = seller.CreateShipment(context.Background(), "po-1", "A", "B", "g")
	_, _ = carrier.BookShipment(context.Background(), "po-1", "C")
	_, _ = carrier.RecordGateIn(context.Background(), "po-1")
	_ = carrier.IssueBillOfLading(context.Background(), &BillOfLading{BLID: "bl-1", PORef: "po-1", Carrier: "C"})

	data, err := seller.Client().Evaluate(context.Background(), ChaincodeName, FnGetBillOfLading, []byte("po-1"))
	if err != nil {
		t.Fatalf("local GetBillOfLading: %v", err)
	}
	bl, err := UnmarshalBillOfLading(data)
	if err != nil || bl.BLID != "bl-1" {
		t.Fatalf("B/L = %+v, %v", bl, err)
	}
}

func TestShipmentAdvanceTable(t *testing.T) {
	now := time.Now()
	cases := []struct {
		from, to ShipmentStatus
		ok       bool
	}{
		{StatusCreated, StatusBooked, true},
		{StatusBooked, StatusGateIn, true},
		{StatusGateIn, StatusBLIssued, true},
		{StatusCreated, StatusGateIn, false},
		{StatusCreated, StatusBLIssued, false},
		{StatusBLIssued, StatusCreated, false},
		{StatusBooked, StatusBooked, false},
	}
	for _, c := range cases {
		s := &Shipment{Status: c.from}
		err := s.Advance(c.to, now)
		if c.ok && err != nil {
			t.Fatalf("%s -> %s rejected: %v", c.from, c.to, err)
		}
		if !c.ok && !errors.Is(err, ErrBadTransition) {
			t.Fatalf("%s -> %s allowed", c.from, c.to)
		}
	}
}

func TestUnknownFunction(t *testing.T) {
	seller, _ := buildSTL(t)
	if _, err := seller.Client().Evaluate(context.Background(), ChaincodeName, "Bogus"); err == nil {
		t.Fatal("unknown function accepted")
	}
}

func TestDomainMarshalRoundTrip(t *testing.T) {
	s := &Shipment{PORef: "po", Seller: "s", Buyer: "b", Goods: "g", Status: StatusCreated}
	data, err := s.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := UnmarshalShipment(data)
	if err != nil || got.PORef != "po" {
		t.Fatalf("round-trip: %+v, %v", got, err)
	}
	if _, err := UnmarshalShipment([]byte("{")); err == nil {
		t.Fatal("garbage shipment accepted")
	}
	if _, err := UnmarshalBillOfLading([]byte("{")); err == nil {
		t.Fatal("garbage B/L accepted")
	}
}
