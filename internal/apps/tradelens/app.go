package tradelens

import (
	"context"

	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/msp"
	"repro/internal/orderer"
	"repro/internal/relay"
)

// BuildNetwork assembles the STL network per §4.2: one Seller-organization
// peer and one Carrier-organization peer, the TradeLensCC chaincode under a
// both-orgs endorsement policy, and interop enablement (system contracts +
// relay). An optional Tuning selects the orderer batching mode and the
// peers' committer worker pool; the default is the synchronous
// one-transaction-per-block serial configuration.
func BuildNetwork(discovery relay.Discovery, transport relay.Transport, tune ...fabric.Tuning) (*core.Network, error) {
	t := fabric.Tuning{Orderer: orderer.Config{BatchSize: 1}}
	if len(tune) > 0 {
		t = tune[0]
	}
	n := fabric.NewNetworkTuned(NetworkID, t)
	if _, err := n.AddOrg(SellerOrg, 1); err != nil {
		return nil, fmt.Errorf("tradelens: %w", err)
	}
	if _, err := n.AddOrg(CarrierOrg, 1); err != nil {
		return nil, fmt.Errorf("tradelens: %w", err)
	}
	endorsement := fmt.Sprintf("AND('%s','%s')", SellerOrg, CarrierOrg)
	if err := n.Deploy(ChaincodeName, &Chaincode{}, endorsement); err != nil {
		return nil, fmt.Errorf("tradelens: %w", err)
	}
	interop, err := core.EnableInterop(n, discovery, transport, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("tradelens: %w", err)
	}
	return interop, nil
}

// SellerApp is the seller's application: it registers exports and tracks
// their documentation.
type SellerApp struct {
	client *core.Client
}

// NewSellerApp creates a seller-organization client.
func NewSellerApp(n *core.Network, name string) (*SellerApp, error) {
	client, err := core.NewClient(n, SellerOrg, name)
	if err != nil {
		return nil, err
	}
	return &SellerApp{client: client}, nil
}

// Client exposes the underlying interop client.
func (a *SellerApp) Client() *core.Client { return a.client }

// CreateShipment registers an export against a purchase order.
func (a *SellerApp) CreateShipment(ctx context.Context, poRef, seller, buyer, goods string) (*Shipment, error) {
	data, err := a.client.Submit(ctx, ChaincodeName, FnCreateShipment,
		[]byte(poRef), []byte(seller), []byte(buyer), []byte(goods))
	if err != nil {
		return nil, err
	}
	return UnmarshalShipment(data)
}

// Shipment fetches a shipment record.
func (a *SellerApp) Shipment(ctx context.Context, poRef string) (*Shipment, error) {
	data, err := a.client.Evaluate(ctx, ChaincodeName, FnGetShipment, []byte(poRef))
	if err != nil {
		return nil, err
	}
	return UnmarshalShipment(data)
}

// CarrierApp is the carrier's application: it books shipments, records
// possession and issues bills of lading.
type CarrierApp struct {
	client *core.Client
}

// NewCarrierApp creates a carrier-organization client.
func NewCarrierApp(n *core.Network, name string) (*CarrierApp, error) {
	client, err := core.NewClient(n, CarrierOrg, name)
	if err != nil {
		return nil, err
	}
	return &CarrierApp{client: client}, nil
}

// Client exposes the underlying interop client.
func (a *CarrierApp) Client() *core.Client { return a.client }

// BookShipment accepts a booking.
func (a *CarrierApp) BookShipment(ctx context.Context, poRef, carrier string) (*Shipment, error) {
	data, err := a.client.Submit(ctx, ChaincodeName, FnBookShipment, []byte(poRef), []byte(carrier))
	if err != nil {
		return nil, err
	}
	return UnmarshalShipment(data)
}

// RecordGateIn records that the goods reached the carrier.
func (a *CarrierApp) RecordGateIn(ctx context.Context, poRef string) (*Shipment, error) {
	data, err := a.client.Submit(ctx, ChaincodeName, FnRecordGateIn, []byte(poRef))
	if err != nil {
		return nil, err
	}
	return UnmarshalShipment(data)
}

// IssueBillOfLading records the B/L, completing §4.2 step 8.
func (a *CarrierApp) IssueBillOfLading(ctx context.Context, bl *BillOfLading) error {
	data, err := bl.Marshal()
	if err != nil {
		return err
	}
	_, err = a.client.Submit(ctx, ChaincodeName, FnIssueBL, data)
	return err
}

// AdminGateway returns a gateway bound to a fresh admin identity of the
// given organization, for governance transactions (recording configs,
// rules, policies).
func AdminGateway(n *core.Network, orgID string) (*fabric.Gateway, error) {
	org, err := n.Fabric.Org(orgID)
	if err != nil {
		return nil, err
	}
	id, err := org.CA.Issue(orgID+"-admin", msp.RoleAdmin)
	if err != nil {
		return nil, err
	}
	return n.Fabric.Gateway(id), nil
}
