// Package tradelens implements Simplified TradeLens (STL), the trade
// logistics network of the paper's use case (§4.2): a Seller and a Carrier
// arrange the shipment of exported goods against a purchase order; the
// carrier takes possession and issues a bill of lading (B/L), which other
// networks can fetch with proof through the cross-network query protocol.
package tradelens

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// Network and deployment identifiers.
const (
	// NetworkID is STL's network name.
	NetworkID = "tradelens"
	// ChaincodeName is the shipment/documentation chaincode (§4.3
	// "TradeLensCC").
	ChaincodeName = "TradeLensCC"
	// SellerOrg and CarrierOrg are STL's two organizations.
	SellerOrg  = "seller-org"
	CarrierOrg = "carrier-org"
)

// ShipmentStatus tracks a shipment through its lifecycle.
type ShipmentStatus string

// Shipment lifecycle states (§4.2 steps 1, 5-8).
const (
	StatusCreated  ShipmentStatus = "created"   // seller registered the export
	StatusBooked   ShipmentStatus = "booked"    // carrier accepted the booking
	StatusGateIn   ShipmentStatus = "gate-in"   // goods delivered to the carrier
	StatusBLIssued ShipmentStatus = "bl-issued" // carrier issued the bill of lading
)

var validTransitions = map[ShipmentStatus]ShipmentStatus{
	StatusCreated: StatusBooked,
	StatusBooked:  StatusGateIn,
	StatusGateIn:  StatusBLIssued,
}

// ErrBadTransition is returned for out-of-order lifecycle operations.
var ErrBadTransition = errors.New("tradelens: invalid shipment state transition")

// Shipment is the on-ledger record of one export arranged against a
// purchase order negotiated offline between seller and buyer.
type Shipment struct {
	PORef        string         `json:"poRef"`
	Seller       string         `json:"seller"`
	Buyer        string         `json:"buyer"`
	Goods        string         `json:"goods"`
	Carrier      string         `json:"carrier,omitempty"`
	Status       ShipmentStatus `json:"status"`
	CreatedAt    time.Time      `json:"createdAt"`
	UpdatedAt    time.Time      `json:"updatedAt"`
	BillOfLading string         `json:"billOfLading,omitempty"` // B/L ID once issued
}

// Advance moves the shipment to the next status, validating the order.
func (s *Shipment) Advance(next ShipmentStatus, at time.Time) error {
	if validTransitions[s.Status] != next {
		return fmt.Errorf("%w: %s -> %s", ErrBadTransition, s.Status, next)
	}
	s.Status = next
	s.UpdatedAt = at
	return nil
}

// Marshal encodes the shipment for ledger storage.
func (s *Shipment) Marshal() ([]byte, error) { return json.Marshal(s) }

// UnmarshalShipment decodes a stored shipment.
func UnmarshalShipment(data []byte) (*Shipment, error) {
	var s Shipment
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("tradelens: shipment: %w", err)
	}
	return &s, nil
}

// BillOfLading is the carrier's acknowledgement of shipment receipt — the
// document whose existence the We.Trade network needs proof of before
// honouring a letter of credit (Fig. 3 step 9).
type BillOfLading struct {
	BLID     string    `json:"blId"`
	PORef    string    `json:"poRef"`
	Carrier  string    `json:"carrier"`
	Vessel   string    `json:"vessel"`
	PortFrom string    `json:"portFrom"`
	PortTo   string    `json:"portTo"`
	Goods    string    `json:"goods"`
	IssuedAt time.Time `json:"issuedAt"`
}

// Validate checks required fields.
func (bl *BillOfLading) Validate() error {
	if bl.BLID == "" || bl.PORef == "" || bl.Carrier == "" {
		return errors.New("tradelens: bill of lading requires blId, poRef and carrier")
	}
	return nil
}

// Marshal encodes the B/L.
func (bl *BillOfLading) Marshal() ([]byte, error) { return json.Marshal(bl) }

// UnmarshalBillOfLading decodes a stored B/L.
func UnmarshalBillOfLading(data []byte) (*BillOfLading, error) {
	var bl BillOfLading
	if err := json.Unmarshal(data, &bl); err != nil {
		return nil, fmt.Errorf("tradelens: bill of lading: %w", err)
	}
	return &bl, nil
}
