package tradelens

import (
	"errors"
	"fmt"

	"repro/internal/chaincode"
	"repro/internal/statedb"
	"repro/internal/syscc"
)

// Chaincode function names.
const (
	FnCreateShipment  = "CreateShipment"
	FnBookShipment    = "BookShipment"
	FnRecordGateIn    = "RecordGateIn"
	FnIssueBL         = "IssueBillOfLading"
	FnGetShipment     = "GetShipment"
	FnGetBillOfLading = "GetBillOfLading"
	FnListShipments   = "ListShipments"
	// EventBLIssued is emitted when a bill of lading is recorded.
	EventBLIssued = "bl-issued"
)

// Chaincode is the STL shipment and documentation contract. Its
// GetBillOfLading function carries the paper's source-side interop
// adaptation: an exposure-control check for relayed queries (§5 reports
// ~35 SLOC for this adaptation; see cmd/slocreport).
type Chaincode struct{}

var _ chaincode.Chaincode = (*Chaincode)(nil)

// Invoke dispatches TradeLensCC functions.
func (c *Chaincode) Invoke(stub chaincode.Stub) ([]byte, error) {
	switch stub.Function() {
	case FnCreateShipment:
		return c.createShipment(stub)
	case FnBookShipment:
		return c.bookShipment(stub)
	case FnRecordGateIn:
		return c.recordGateIn(stub)
	case FnIssueBL:
		return c.issueBL(stub)
	case FnGetShipment:
		return c.getShipment(stub)
	case FnGetBillOfLading:
		return c.getBillOfLading(stub)
	case FnListShipments:
		return c.listShipments(stub)
	default:
		return nil, fmt.Errorf("tradelens: unknown function %q", stub.Function())
	}
}

func shipmentKey(poRef string) (string, error) {
	return statedb.CompositeKey("shipment", poRef)
}

func blKey(poRef string) (string, error) {
	return statedb.CompositeKey("bl", poRef)
}

func loadShipment(stub chaincode.Stub, poRef string) (*Shipment, string, error) {
	key, err := shipmentKey(poRef)
	if err != nil {
		return nil, "", err
	}
	data, err := stub.GetState(key)
	if err != nil {
		return nil, "", err
	}
	if data == nil {
		return nil, "", fmt.Errorf("tradelens: no shipment for purchase order %q", poRef)
	}
	s, err := UnmarshalShipment(data)
	return s, key, err
}

func saveShipment(stub chaincode.Stub, key string, s *Shipment) error {
	data, err := s.Marshal()
	if err != nil {
		return err
	}
	return stub.PutState(key, data)
}

// createShipment registers an export: args = [poRef, seller, buyer, goods].
func (c *Chaincode) createShipment(stub chaincode.Stub) ([]byte, error) {
	args := stub.StringArgs()
	if len(args) != 4 {
		return nil, errors.New("tradelens: CreateShipment expects poRef, seller, buyer, goods")
	}
	poRef := args[0]
	key, err := shipmentKey(poRef)
	if err != nil {
		return nil, err
	}
	existing, err := stub.GetState(key)
	if err != nil {
		return nil, err
	}
	if existing != nil {
		return nil, fmt.Errorf("tradelens: shipment for %q already exists", poRef)
	}
	s := &Shipment{
		PORef:     poRef,
		Seller:    args[1],
		Buyer:     args[2],
		Goods:     args[3],
		Status:    StatusCreated,
		CreatedAt: stub.Timestamp(),
		UpdatedAt: stub.Timestamp(),
	}
	if err := saveShipment(stub, key, s); err != nil {
		return nil, err
	}
	return s.Marshal()
}

// bookShipment records the carrier's acceptance: args = [poRef, carrier].
func (c *Chaincode) bookShipment(stub chaincode.Stub) ([]byte, error) {
	args := stub.StringArgs()
	if len(args) != 2 {
		return nil, errors.New("tradelens: BookShipment expects poRef, carrier")
	}
	s, key, err := loadShipment(stub, args[0])
	if err != nil {
		return nil, err
	}
	if err := s.Advance(StatusBooked, stub.Timestamp()); err != nil {
		return nil, err
	}
	s.Carrier = args[1]
	if err := saveShipment(stub, key, s); err != nil {
		return nil, err
	}
	return s.Marshal()
}

// recordGateIn records delivery of the goods to the carrier: args = [poRef].
func (c *Chaincode) recordGateIn(stub chaincode.Stub) ([]byte, error) {
	args := stub.StringArgs()
	if len(args) != 1 {
		return nil, errors.New("tradelens: RecordGateIn expects poRef")
	}
	s, key, err := loadShipment(stub, args[0])
	if err != nil {
		return nil, err
	}
	if err := s.Advance(StatusGateIn, stub.Timestamp()); err != nil {
		return nil, err
	}
	if err := saveShipment(stub, key, s); err != nil {
		return nil, err
	}
	return s.Marshal()
}

// issueBL records the bill of lading: args = [blJSON]. The shipment must be
// at gate-in and the B/L must reference it.
func (c *Chaincode) issueBL(stub chaincode.Stub) ([]byte, error) {
	args := stub.Args()
	if len(args) != 1 {
		return nil, errors.New("tradelens: IssueBillOfLading expects the B/L document")
	}
	bl, err := UnmarshalBillOfLading(args[0])
	if err != nil {
		return nil, err
	}
	if err := bl.Validate(); err != nil {
		return nil, err
	}
	s, key, err := loadShipment(stub, bl.PORef)
	if err != nil {
		return nil, err
	}
	if s.Carrier != bl.Carrier {
		return nil, fmt.Errorf("tradelens: B/L carrier %q does not match booked carrier %q", bl.Carrier, s.Carrier)
	}
	if err := s.Advance(StatusBLIssued, stub.Timestamp()); err != nil {
		return nil, err
	}
	s.BillOfLading = bl.BLID
	if err := saveShipment(stub, key, s); err != nil {
		return nil, err
	}
	bk, err := blKey(bl.PORef)
	if err != nil {
		return nil, err
	}
	if err := stub.PutState(bk, args[0]); err != nil {
		return nil, err
	}
	if err := stub.SetEvent(EventBLIssued, []byte(bl.PORef)); err != nil {
		return nil, err
	}
	return args[0], nil
}

// getShipment returns a shipment record: args = [poRef].
func (c *Chaincode) getShipment(stub chaincode.Stub) ([]byte, error) {
	args := stub.StringArgs()
	if len(args) != 1 {
		return nil, errors.New("tradelens: GetShipment expects poRef")
	}
	s, _, err := loadShipment(stub, args[0])
	if err != nil {
		return nil, err
	}
	return s.Marshal()
}

// getBillOfLading returns the B/L for a purchase order: args = [poRef].
// This is the function the paper exposes cross-network: the two inserted
// interop calls are the ECC authorization below (the response encryption
// happens in the per-peer attestation path; see internal/relay).
func (c *Chaincode) getBillOfLading(stub chaincode.Stub) ([]byte, error) {
	args := stub.StringArgs()
	if len(args) != 1 {
		return nil, errors.New("tradelens: GetBillOfLading expects poRef")
	}
	// interop-adaptation-begin (source network, §5 ease of adaptation)
	if _, err := syscc.AuthorizeRelayRequest(stub, ChaincodeName); err != nil {
		return nil, err
	}
	// interop-adaptation-end
	key, err := blKey(args[0])
	if err != nil {
		return nil, err
	}
	data, err := stub.GetState(key)
	if err != nil {
		return nil, err
	}
	if data == nil {
		return nil, fmt.Errorf("tradelens: no bill of lading for purchase order %q", args[0])
	}
	return data, nil
}

// listShipments returns all shipments as a JSON array.
func (c *Chaincode) listShipments(stub chaincode.Stub) ([]byte, error) {
	start, end, err := statedb.CompositeRange("shipment")
	if err != nil {
		return nil, err
	}
	kvs, err := stub.GetStateRange(start, end)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 2+64*len(kvs))
	out = append(out, '[')
	for i, kv := range kvs {
		if i > 0 {
			out = append(out, ',')
		}
		out = append(out, kv.Value...)
	}
	out = append(out, ']')
	return out, nil
}
