package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/chaincode"
	"repro/internal/fabric"
	"repro/internal/policy"
	"repro/internal/syscc"
)

// writableCC exposes a cross-network writable function guarded by the same
// exposure-control adaptation query functions use.
var writableCC = chaincode.Func(func(stub chaincode.Stub) ([]byte, error) {
	switch stub.Function() {
	case "Append":
		if _, err := syscc.AuthorizeRelayRequest(stub, "writable"); err != nil {
			return nil, err
		}
		key := "log/" + string(stub.Args()[0])
		cur, err := stub.GetState(key)
		if err != nil {
			return nil, err
		}
		next := append(cur, stub.Args()[1]...)
		if err := stub.PutState(key, next); err != nil {
			return nil, err
		}
		return next, nil
	case "Read":
		return stub.GetState("log/" + string(stub.Args()[0]))
	default:
		return nil, fmt.Errorf("unknown function %q", stub.Function())
	}
})

// buildInvokeWorld extends buildWorld with a writable contract and the
// access rule for it.
func buildInvokeWorld(t *testing.T, tune ...fabric.Tuning) (*world, *Client) {
	t.Helper()
	w := buildWorld(t, tune...)
	if err := w.source.Fabric.Deploy("writable", writableCC, "AND('seller-org','carrier-org')"); err != nil {
		t.Fatalf("Deploy writable: %v", err)
	}
	if err := w.source.GrantAccess(w.srcAdmin, accessRuleFor("Append")); err != nil {
		t.Fatalf("GrantAccess: %v", err)
	}
	client, err := NewClient(w.dest, "seller-bank-org", "invoker")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	return w, client
}

func accessRuleFor(fn string) policy.AccessRule {
	return policy.AccessRule{
		Network: "dest-net", Org: "seller-bank-org", Chaincode: "writable", Function: fn,
	}
}

func TestRemoteInvokeCommitsOnSource(t *testing.T) {
	w, client := buildInvokeWorld(t)
	data, err := client.RemoteInvoke(context.Background(), RemoteQuerySpec{
		Network: "source-net", Contract: "writable", Function: "Append",
		Args: [][]byte{[]byte("audit"), []byte("entry-1;")},
	})
	if err != nil {
		t.Fatalf("RemoteInvoke: %v", err)
	}
	if !bytes.Equal(data.Result, []byte("entry-1;")) {
		t.Fatalf("result = %q", data.Result)
	}
	// The write is durably committed on the source network.
	got, err := w.srcAdmin.Evaluate("writable", "Read", []byte("audit"))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, []byte("entry-1;")) {
		t.Fatalf("source state = %q", got)
	}
	// And carries a proof the destination can accept on-chain.
	if len(data.Bundle.Elements) != 2 {
		t.Fatalf("attestations = %d", len(data.Bundle.Elements))
	}
}

func TestRemoteInvokeSequential(t *testing.T) {
	w, client := buildInvokeWorld(t)
	for i := 1; i <= 3; i++ {
		if _, err := client.RemoteInvoke(context.Background(), RemoteQuerySpec{
			Network: "source-net", Contract: "writable", Function: "Append",
			Args: [][]byte{[]byte("audit"), []byte(fmt.Sprintf("e%d;", i))},
		}); err != nil {
			t.Fatalf("RemoteInvoke %d: %v", i, err)
		}
	}
	got, _ := w.srcAdmin.Evaluate("writable", "Read", []byte("audit"))
	if !bytes.Equal(got, []byte("e1;e2;e3;")) {
		t.Fatalf("source state = %q", got)
	}
}

func TestRemoteInvokeDeniedWithoutRule(t *testing.T) {
	w, _ := buildInvokeWorld(t)
	// A client of an org with no rule for Append.
	other, err := NewClient(w.dest, "buyer-bank-org", "nosy")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	_, err = other.RemoteInvoke(context.Background(), RemoteQuerySpec{
		Network: "source-net", Contract: "writable", Function: "Append",
		Args: [][]byte{[]byte("audit"), []byte("evil")},
	})
	if err == nil {
		t.Fatal("unauthorized remote invoke succeeded")
	}
	// Nothing was written.
	got, _ := w.srcAdmin.Evaluate("writable", "Read", []byte("audit"))
	if len(got) != 0 {
		t.Fatalf("source state after denied invoke = %q", got)
	}
}

func TestRemoteInvokeUndeployedContract(t *testing.T) {
	_, client := buildInvokeWorld(t)
	if _, err := client.RemoteInvoke(context.Background(), RemoteQuerySpec{
		Network: "source-net", Contract: "ghost", Function: "Append",
		Args: [][]byte{[]byte("a"), []byte("b")},
	}); err == nil {
		t.Fatal("invoke on undeployed contract succeeded")
	}
}

func TestRemoteInvokeNotSupportedByNotary(t *testing.T) {
	// The relay refuses invokes for drivers that do not implement TxDriver;
	// covered structurally here by asking the source relay to invoke on a
	// network it serves through a query-only driver stub.
	w, client := buildInvokeWorld(t)
	_ = w
	_, err := client.RemoteInvoke(context.Background(), RemoteQuerySpec{
		Network: "nowhere-net", Contract: "cc", Function: "fn",
	})
	if err == nil {
		t.Fatal("invoke on unknown network succeeded")
	}
}

// TestRemoteInvokeIdempotentRetry: retrying a RemoteInvoke with the same
// spec.RequestID replays the committed outcome end to end — the source
// executes the transaction once and the retry's proof still verifies,
// because the nonce is derived from the idempotency key.
func TestRemoteInvokeIdempotentRetry(t *testing.T) {
	w, client := buildInvokeWorld(t)
	spec := RemoteQuerySpec{
		Network: "source-net", Contract: "writable", Function: "Append",
		Args:      [][]byte{[]byte("audit"), []byte("once;")},
		RequestID: "idem-tx-1",
	}
	first, err := client.RemoteInvoke(context.Background(), spec)
	if err != nil {
		t.Fatalf("first RemoteInvoke: %v", err)
	}
	retry, err := client.RemoteInvoke(context.Background(), spec)
	if err != nil {
		t.Fatalf("retry RemoteInvoke: %v", err)
	}
	if !bytes.Equal(first.Result, retry.Result) {
		t.Fatalf("retry result %q != original %q", retry.Result, first.Result)
	}
	if first.RequestID != "idem-tx-1" || retry.RequestID != "idem-tx-1" {
		t.Fatalf("request IDs = %q, %q", first.RequestID, retry.RequestID)
	}
	// The transaction committed exactly once.
	got, err := w.srcAdmin.Evaluate("writable", "Read", []byte("audit"))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, []byte("once;")) {
		t.Fatalf("source state = %q, want single append", got)
	}
}
