package core

import (
	"context"
	"sync"
)

// DefaultBatchParallelism bounds how many cross-network queries a
// RemoteQueryBatch keeps in flight at once when the client has no explicit
// limit configured.
const DefaultBatchParallelism = 8

// BatchResult pairs one spec of a RemoteQueryBatch with its outcome. Data
// is nil exactly when Err is non-nil.
type BatchResult struct {
	// Spec echoes the query spec this result answers.
	Spec RemoteQuerySpec
	// Data is the verified remote data on success.
	Data *RemoteData
	// Err is the per-query failure, including ctx.Err() for specs that
	// never ran because the shared deadline expired first.
	Err error
}

// SetBatchParallelism overrides the in-flight bound RemoteQueryBatch uses.
// Values below one restore DefaultBatchParallelism. Not safe to call
// concurrently with RemoteQueryBatch.
func (c *Client) SetBatchParallelism(n int) {
	if n < 1 {
		n = 0
	}
	c.batchParallelism = n
}

func (c *Client) batchLimit() int {
	if c.batchParallelism > 0 {
		return c.batchParallelism
	}
	return DefaultBatchParallelism
}

// RemoteQueryBatch fans a slice of query specs out concurrently under one
// shared context: every query inherits ctx's deadline, at most
// the configured parallelism are in flight at once, and the returned slice
// is index-aligned with specs. Individual failures land in their
// BatchResult rather than aborting the batch; a cancelled or expired ctx
// surfaces as ctx.Err() on every spec that had not completed.
func (c *Client) RemoteQueryBatch(ctx context.Context, specs []RemoteQuerySpec) []BatchResult {
	results := make([]BatchResult, len(specs))
	if len(specs) == 0 {
		return results
	}
	limit := c.batchLimit()
	if limit > len(specs) {
		limit = len(specs)
	}
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	for i := range specs {
		results[i].Spec = specs[i]
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			// Shared deadline expired: mark this and every remaining spec
			// without launching them.
			for j := i; j < len(specs); j++ {
				results[j].Spec = specs[j]
				results[j].Err = ctx.Err()
			}
			wg.Wait()
			return results
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			data, err := c.RemoteQuery(ctx, specs[i])
			results[i].Data, results[i].Err = data, err
		}(i)
	}
	wg.Wait()
	return results
}
