package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/chaincode"
	"repro/internal/fabric"
	"repro/internal/ledger"
	"repro/internal/msp"
	"repro/internal/orderer"
	"repro/internal/policy"
	"repro/internal/relay"
	"repro/internal/syscc"
)

// sourceCC exposes documents cross-network with the two-call adaptation.
var sourceCC = chaincode.Func(func(stub chaincode.Stub) ([]byte, error) {
	switch stub.Function() {
	case "Put":
		return nil, stub.PutState("doc/"+string(stub.Args()[0]), stub.Args()[1])
	case "Get":
		if _, err := syscc.AuthorizeRelayRequest(stub, "sourceCC"); err != nil {
			return nil, err
		}
		return stub.GetState("doc/" + string(stub.Args()[0]))
	default:
		return nil, fmt.Errorf("unknown function %q", stub.Function())
	}
})

// destCC accepts remote data after CMDAC validation: Accept(bundle, key).
var destCC = chaincode.Func(func(stub chaincode.Stub) ([]byte, error) {
	switch stub.Function() {
	case "Accept":
		args := stub.Args()
		if len(args) != 2 {
			return nil, errors.New("Accept needs bundle and doc key")
		}
		verified, err := stub.InvokeChaincode(syscc.CMDACName, syscc.CMDACValidateProof,
			syscc.ValidateProofArgs("source-net", "default", "sourceCC", "Get", args[0], args[1]))
		if err != nil {
			return nil, err
		}
		if err := stub.PutState("imported/"+string(args[1]), verified); err != nil {
			return nil, err
		}
		return verified, nil
	case "Read":
		return stub.GetState("imported/" + string(stub.Args()[0]))
	default:
		return nil, fmt.Errorf("unknown function %q", stub.Function())
	}
})

// world is a fully wired pair of interop-enabled networks.
type world struct {
	hub       *relay.Hub
	registry  *relay.StaticRegistry
	source    *Network
	dest      *Network
	srcAdmin  *fabric.Gateway
	destAdmin *fabric.Gateway
}

func buildWorld(t testing.TB, tune ...fabric.Tuning) *world {
	t.Helper()
	tuning := fabric.Tuning{Orderer: orderer.Config{BatchSize: 1}}
	if len(tune) > 0 {
		tuning = tune[0]
	}
	hub := relay.NewHub()
	registry := relay.NewStaticRegistry()

	srcFab := fabric.NewNetworkTuned("source-net", tuning)
	for _, org := range []string{"seller-org", "carrier-org"} {
		if _, err := srcFab.AddOrg(org, 1); err != nil {
			t.Fatalf("AddOrg: %v", err)
		}
	}
	if err := srcFab.Deploy("sourceCC", sourceCC, "AND('seller-org','carrier-org')"); err != nil {
		t.Fatalf("Deploy sourceCC: %v", err)
	}
	source, err := EnableInterop(srcFab, registry, hub, Options{})
	if err != nil {
		t.Fatalf("EnableInterop source: %v", err)
	}

	destFab := fabric.NewNetworkTuned("dest-net", tuning)
	for _, org := range []string{"buyer-bank-org", "seller-bank-org"} {
		if _, err := destFab.AddOrg(org, 1); err != nil {
			t.Fatalf("AddOrg: %v", err)
		}
	}
	if err := destFab.Deploy("destCC", destCC, "AND('buyer-bank-org','seller-bank-org')"); err != nil {
		t.Fatalf("Deploy destCC: %v", err)
	}
	dest, err := EnableInterop(destFab, registry, hub, Options{})
	if err != nil {
		t.Fatalf("EnableInterop dest: %v", err)
	}

	hub.Attach("source-relay", source.Relay)
	hub.Attach("dest-relay", dest.Relay)
	registry.Register("source-net", "source-relay")
	registry.Register("dest-net", "dest-relay")

	srcOrg, _ := srcFab.Org("seller-org")
	srcAdminID, _ := srcOrg.CA.Issue("src-admin", msp.RoleAdmin)
	destOrg, _ := destFab.Org("buyer-bank-org")
	destAdminID, _ := destOrg.CA.Issue("dest-admin", msp.RoleAdmin)

	w := &world{
		hub: hub, registry: registry,
		source: source, dest: dest,
		srcAdmin:  srcFab.Gateway(srcAdminID),
		destAdmin: destFab.Gateway(destAdminID),
	}

	// Interop initialization (§3.3): exchange configurations, record the
	// verification policy on the destination and the access rule on the
	// source.
	if err := w.source.ConfigureForeignNetwork(w.srcAdmin, w.dest.ExportConfig()); err != nil {
		t.Fatalf("configure dest on source: %v", err)
	}
	if err := w.dest.ConfigureForeignNetwork(w.destAdmin, w.source.ExportConfig()); err != nil {
		t.Fatalf("configure source on dest: %v", err)
	}
	if err := w.dest.SetVerificationPolicy(w.destAdmin, policy.VerificationPolicy{
		Network: "source-net",
		Expr:    "AND('seller-org.peer','carrier-org.peer')",
	}); err != nil {
		t.Fatalf("set verification policy: %v", err)
	}
	if err := w.source.GrantAccess(w.srcAdmin, policy.AccessRule{
		Network: "dest-net", Org: "seller-bank-org", Chaincode: "sourceCC", Function: "Get",
	}); err != nil {
		t.Fatalf("grant access: %v", err)
	}
	return w
}

func TestEndToEndTrustedDataTransfer(t *testing.T) {
	w := buildWorld(t)
	if _, err := w.srcAdmin.Submit("sourceCC", "Put", []byte("bl-77"), []byte("the document")); err != nil {
		t.Fatalf("Put: %v", err)
	}

	client, err := NewClient(w.dest, "seller-bank-org", "swt-seller-client")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	data, err := client.RemoteQuery(context.Background(), RemoteQuerySpec{
		Network:  "source-net",
		Contract: "sourceCC",
		Function: "Get",
		Args:     [][]byte{[]byte("bl-77")},
	})
	if err != nil {
		t.Fatalf("RemoteQuery: %v", err)
	}
	if !bytes.Equal(data.Result, []byte("the document")) {
		t.Fatalf("result = %q", data.Result)
	}

	// Step 10: local transaction embedding the remote data, validated by
	// the CMDAC on every destination peer.
	verified, err := client.SubmitWithRemoteData(context.Background(), "destCC", "Accept", data, []byte("bl-77"))
	if err != nil {
		t.Fatalf("SubmitWithRemoteData: %v", err)
	}
	if !bytes.Equal(verified, []byte("the document")) {
		t.Fatalf("verified = %q", verified)
	}
	got, err := client.Evaluate(context.Background(), "destCC", "Read", []byte("bl-77"))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, []byte("the document")) {
		t.Fatalf("imported = %q", got)
	}
}

func TestRemoteQueryUsesRecordedPolicy(t *testing.T) {
	w := buildWorld(t)
	_, _ = w.srcAdmin.Submit("sourceCC", "Put", []byte("k"), []byte("v"))
	client, _ := NewClient(w.dest, "seller-bank-org", "c")
	data, err := client.RemoteQuery(context.Background(), RemoteQuerySpec{
		Network: "source-net", Contract: "sourceCC", Function: "Get",
		Args: [][]byte{[]byte("k")},
	})
	if err != nil {
		t.Fatalf("RemoteQuery: %v", err)
	}
	// The recorded policy demands both orgs; the proof must carry both.
	if len(data.Bundle.Elements) != 2 {
		t.Fatalf("elements = %d", len(data.Bundle.Elements))
	}
	if data.Query.PolicyExpr != "AND('seller-org.peer','carrier-org.peer')" {
		t.Fatalf("policy = %q", data.Query.PolicyExpr)
	}
}

func TestRemoteQueryNoPolicyConfigured(t *testing.T) {
	w := buildWorld(t)
	client, _ := NewClient(w.dest, "seller-bank-org", "c")
	_, err := client.RemoteQuery(context.Background(), RemoteQuerySpec{
		Network: "unknown-net", Contract: "cc", Function: "fn",
	})
	if !errors.Is(err, ErrNotConfigured) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoteQueryDeniedOrg(t *testing.T) {
	w := buildWorld(t)
	_, _ = w.srcAdmin.Submit("sourceCC", "Put", []byte("k"), []byte("v"))
	// buyer-bank-org has no access rule on the source network.
	client, _ := NewClient(w.dest, "buyer-bank-org", "nosy-client")
	_, err := client.RemoteQuery(context.Background(), RemoteQuerySpec{
		Network: "source-net", Contract: "sourceCC", Function: "Get",
		Args: [][]byte{[]byte("k")},
	})
	if err == nil {
		t.Fatal("query from unauthorized org succeeded")
	}
}

func TestRevokeAccessCutsQueries(t *testing.T) {
	w := buildWorld(t)
	_, _ = w.srcAdmin.Submit("sourceCC", "Put", []byte("k"), []byte("v"))
	client, _ := NewClient(w.dest, "seller-bank-org", "c")
	spec := RemoteQuerySpec{
		Network: "source-net", Contract: "sourceCC", Function: "Get",
		Args: [][]byte{[]byte("k")},
	}
	if _, err := client.RemoteQuery(context.Background(), spec); err != nil {
		t.Fatalf("query before revoke: %v", err)
	}
	rule := policy.AccessRule{Network: "dest-net", Org: "seller-bank-org", Chaincode: "sourceCC", Function: "Get"}
	if err := w.source.RevokeAccess(w.srcAdmin, rule); err != nil {
		t.Fatalf("RevokeAccess: %v", err)
	}
	if _, err := client.RemoteQuery(context.Background(), spec); err == nil {
		t.Fatal("query after revoke succeeded")
	}
}

func TestReplayedBundleRejectedOnChain(t *testing.T) {
	w := buildWorld(t)
	_, _ = w.srcAdmin.Submit("sourceCC", "Put", []byte("bl-77"), []byte("doc"))
	client, _ := NewClient(w.dest, "seller-bank-org", "c")
	data, err := client.RemoteQuery(context.Background(), RemoteQuerySpec{
		Network: "source-net", Contract: "sourceCC", Function: "Get",
		Args: [][]byte{[]byte("bl-77")},
	})
	if err != nil {
		t.Fatalf("RemoteQuery: %v", err)
	}
	if _, err := client.SubmitWithRemoteData(context.Background(), "destCC", "Accept", data, []byte("bl-77")); err != nil {
		t.Fatalf("first Accept: %v", err)
	}
	// Submitting the same bundle again must fail on nonce replay.
	if _, err := client.SubmitWithRemoteData(context.Background(), "destCC", "Accept", data, []byte("bl-77")); err == nil {
		t.Fatal("replayed bundle accepted")
	}
}

func TestTamperedBundleRejectedOnChain(t *testing.T) {
	w := buildWorld(t)
	_, _ = w.srcAdmin.Submit("sourceCC", "Put", []byte("bl-77"), []byte("real")) //nolint
	client, _ := NewClient(w.dest, "seller-bank-org", "c")
	data, err := client.RemoteQuery(context.Background(), RemoteQuerySpec{
		Network: "source-net", Contract: "sourceCC", Function: "Get",
		Args: [][]byte{[]byte("bl-77")},
	})
	if err != nil {
		t.Fatalf("RemoteQuery: %v", err)
	}
	// Tamper with the result inside the marshaled bundle by rebuilding it.
	data.Bundle.Result = []byte("fake")
	data.BundleBytes = data.Bundle.Marshal()
	if _, err := client.SubmitWithRemoteData(context.Background(), "destCC", "Accept", data, []byte("bl-77")); err == nil {
		t.Fatal("tampered bundle accepted")
	}
}

func TestEnableInteropDefaultsSinglrOrg(t *testing.T) {
	fab := fabric.NewNetwork("solo", orderer.Config{BatchSize: 1})
	if _, err := fab.AddOrg("only-org", 1); err != nil {
		t.Fatalf("AddOrg: %v", err)
	}
	n, err := EnableInterop(fab, relay.NewStaticRegistry(), relay.NewHub(), Options{})
	if err != nil {
		t.Fatalf("EnableInterop: %v", err)
	}
	if n.LedgerName() != "default" || n.ID() != "solo" {
		t.Fatalf("network = %+v", n)
	}
}

func TestEnableInteropNoOrgs(t *testing.T) {
	fab := fabric.NewNetwork("empty", orderer.Config{BatchSize: 1})
	if _, err := EnableInterop(fab, relay.NewStaticRegistry(), relay.NewHub(), Options{}); err == nil {
		t.Fatal("empty network accepted")
	}
}

func TestClientUnknownOrg(t *testing.T) {
	w := buildWorld(t)
	if _, err := NewClient(w.dest, "ghost-org", "c"); err == nil {
		t.Fatal("client created under unknown org")
	}
}

func TestDestinationLedgerRecordsValidTx(t *testing.T) {
	w := buildWorld(t)
	_, _ = w.srcAdmin.Submit("sourceCC", "Put", []byte("bl-77"), []byte("doc"))
	client, _ := NewClient(w.dest, "seller-bank-org", "c")
	data, _ := client.RemoteQuery(context.Background(), RemoteQuerySpec{
		Network: "source-net", Contract: "sourceCC", Function: "Get",
		Args: [][]byte{[]byte("bl-77")},
	})
	if _, err := client.SubmitWithRemoteData(context.Background(), "destCC", "Accept", data, []byte("bl-77")); err != nil {
		t.Fatalf("Accept: %v", err)
	}
	// Every destination peer holds the committed transaction with the
	// bundle in its arguments and a valid chain.
	for _, p := range w.dest.Fabric.AllPeers() {
		if err := p.Blocks().VerifyChain(); err != nil {
			t.Fatalf("peer %s chain: %v", p.Name(), err)
		}
		height := p.Blocks().Height()
		if height == 0 {
			t.Fatalf("peer %s has empty chain", p.Name())
		}
		blk, err := p.Blocks().Block(height - 1)
		if err != nil {
			t.Fatalf("Block: %v", err)
		}
		tx := blk.Transactions[0]
		if tx.Validation != ledger.Valid {
			t.Fatalf("tx validation = %v", tx.Validation)
		}
	}
}

func BenchmarkRemoteQueryEndToEnd(b *testing.B) {
	w := buildWorld(b)
	_, _ = w.srcAdmin.Submit("sourceCC", "Put", []byte("k"), []byte("v"))
	client, err := NewClient(w.dest, "seller-bank-org", "c")
	if err != nil {
		b.Fatal(err)
	}
	spec := RemoteQuerySpec{
		Network: "source-net", Contract: "sourceCC", Function: "Get",
		Args: [][]byte{[]byte("k")},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.RemoteQuery(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
}
