package core

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/fabric"
	"repro/internal/orderer"
	"repro/internal/proof"
	"repro/internal/relay"
)

// commitModes parameterize proof-carrying scenarios over both commit
// pipelines: the synchronous serial committer and the pipelined orderer
// with parallel committers. The persisted-proof guarantees must hold in
// both.
var commitModes = []struct {
	name string
	tune fabric.Tuning
}{
	{"serial", fabric.Tuning{Orderer: orderer.Config{BatchSize: 1}}},
	{"pipelined", fabric.Tuning{
		Orderer:          orderer.Config{Pipelined: true, BatchSize: 8},
		CommitterWorkers: 8,
	}},
}

// TestReplayAfterOrgRemovalServesOriginalBundle is the proof-carrying-
// commits scenario: an invoke commits while the verification-policy peer
// set is whole, an attestor organization is then removed from the source
// network, and a replay through a *different* (cold) relay must still
// return the original policy-satisfying proof — byte for byte, from the
// bundle persisted with the committed transaction — while a fresh request
// under the shrunk peer set fails the policy as it should.
func TestReplayAfterOrgRemovalServesOriginalBundle(t *testing.T) {
	for _, mode := range commitModes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) { replayAfterOrgRemovalScenario(t, mode.tune) })
	}
}

func replayAfterOrgRemovalScenario(t *testing.T, tune fabric.Tuning) {
	w, client := buildInvokeWorld(t, tune)
	spec := RemoteQuerySpec{
		Network: "source-net", Contract: "writable", Function: "Append",
		Args:      [][]byte{[]byte("audit"), []byte("entry-1;")},
		RequestID: "replay-after-removal",
	}
	original, err := client.RemoteInvoke(context.Background(), spec)
	if err != nil {
		t.Fatalf("RemoteInvoke: %v", err)
	}
	if len(original.Bundle.Elements) != 2 {
		t.Fatalf("original attestations = %d, want 2", len(original.Bundle.Elements))
	}
	if len(original.Bundle.PolicyDigest) == 0 || len(original.Bundle.QueryDigest) == 0 {
		t.Fatal("original bundle is not pinned")
	}

	// The sealed proof is durably on the source ledger, next to the
	// interop key.
	peers := w.source.Fabric.AllPeers()
	tx, err := peers[0].Blocks().TxByInteropKey(original.Query.InteropKey())
	if err != nil {
		t.Fatalf("TxByInteropKey: %v", err)
	}
	if len(tx.ProofBundle) == 0 {
		t.Fatal("committed transaction carries no proof bundle")
	}
	sealed, err := proof.UnmarshalSealed(tx.ProofBundle)
	if err != nil {
		t.Fatalf("UnmarshalSealed: %v", err)
	}
	if len(sealed.Attestors) != 2 {
		t.Fatalf("sealed attestors = %v, want 2", sealed.Attestors)
	}

	// A second relay process fronts the source network: cold in-memory
	// caches, so a retry routed to it can only answer from the ledger.
	relay2 := relay.New("source-net", w.registry, w.hub)
	driver2 := relay.NewFabricDriver(w.source.Fabric, "default")
	relay2.RegisterDriver("source-net", driver2)
	w.hub.Attach("source-relay-2", relay2)
	w.registry.Unregister("source-net", "source-relay")
	w.registry.Register("source-net", "source-relay-2")

	// The org change: the carrier organization leaves the source network.
	// The recorded policy AND('seller-org.peer','carrier-org.peer') can no
	// longer be satisfied by any fresh attestation.
	if err := w.source.Fabric.RemoveOrg("carrier-org"); err != nil {
		t.Fatalf("RemoveOrg: %v", err)
	}

	// The idempotent retry lands on the cold relay, which replays the
	// persisted bundle. The proof decrypts to exactly the original one —
	// no re-signing happened, because re-signing is no longer possible.
	replayed, err := client.RemoteInvoke(context.Background(), spec)
	if err != nil {
		t.Fatalf("RemoteInvoke replay: %v", err)
	}
	if !bytes.Equal(replayed.BundleBytes, original.BundleBytes) {
		t.Fatal("replayed bundle differs from the original persisted proof")
	}
	if got := relay2.Stats().InvokeReplays; got != 1 {
		t.Fatalf("InvokeReplays = %d, want 1", got)
	}

	// A fresh request under the shrunk peer set must fail the verification
	// policy rather than hand back a thinner proof.
	_, err = client.RemoteQuery(context.Background(), RemoteQuerySpec{
		Network: "source-net", Contract: "writable", Function: "Read",
		Args: [][]byte{[]byte("audit")},
		// Read carries no relay authorization gate, so the failure below is
		// attributable to the proof policy, not exposure control.
		VerificationPolicy: "AND('seller-org.peer','carrier-org.peer')",
	})
	if err == nil {
		t.Fatal("fresh query under shrunk peer set produced a passing proof")
	}
	if !errors.Is(err, proof.ErrPolicyUnsatisfied) {
		t.Fatalf("fresh query failed with %v, want policy unsatisfied", err)
	}
}

// TestAttestationCacheServesIdenticalQueries drives the relay's
// content-addressed attestation cache end to end: a repeated identical
// query (same request ID, hence same deterministic nonce) is served the
// previously built proof verbatim, counted in Stats, while a valid write
// to the queried namespace invalidates the entry even when it restores an
// identical result.
func TestAttestationCacheServesIdenticalQueries(t *testing.T) {
	w := buildWorld(t)
	if _, err := w.srcAdmin.Submit("sourceCC", "Put", []byte("bl-9"), []byte("doc")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	client, err := NewClient(w.dest, "seller-bank-org", "cached-reader")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	spec := RemoteQuerySpec{
		Network: "source-net", Contract: "sourceCC", Function: "Get",
		Args:      [][]byte{[]byte("bl-9")},
		RequestID: "poll-bl-9", // deterministic nonce => identical repeated query
	}

	// The first query builds a fresh proof (miss) and stores its plaintext
	// element record. The second joins that record — every signature
	// reused, only re-encryption paid — and its response is admitted to
	// the response cache (second touch of the doorkeeper). The third is a
	// verbatim response-cache hit.
	if _, err := client.RemoteQuery(context.Background(), spec); err != nil {
		t.Fatalf("RemoteQuery 1: %v", err)
	}
	stored, err := client.RemoteQuery(context.Background(), spec)
	if err != nil {
		t.Fatalf("RemoteQuery 2: %v", err)
	}
	warm, err := client.RemoteQuery(context.Background(), spec)
	if err != nil {
		t.Fatalf("RemoteQuery warm: %v", err)
	}
	stats := w.source.Relay.Stats()
	if stats.AttestationCacheHits != 1 || stats.AttestationCacheJoins != 1 || stats.AttestationCacheMisses != 1 {
		t.Fatalf("cache hits/joins/misses = %d/%d/%d, want 1/1/1",
			stats.AttestationCacheHits, stats.AttestationCacheJoins, stats.AttestationCacheMisses)
	}
	// The warm proof carries the cached artifact's attestations: identical
	// signed metadata, zero new signatures, so both decrypt to the same
	// plaintext bundle bytes.
	if !bytes.Equal(stored.BundleBytes, warm.BundleBytes) {
		t.Fatal("warm response decrypted to a different bundle")
	}

	// A write into the namespace — even one restoring the same value —
	// invalidates the entry: the cache never serves a proof across a write
	// to the data it covers.
	if _, err := w.srcAdmin.Submit("sourceCC", "Put", []byte("bl-9"), []byte("doc")); err != nil {
		t.Fatalf("Put again: %v", err)
	}
	if _, err := client.RemoteQuery(context.Background(), spec); err != nil {
		t.Fatalf("RemoteQuery after write: %v", err)
	}
	stats = w.source.Relay.Stats()
	if stats.AttestationCacheHits != 1 || stats.AttestationCacheJoins != 1 || stats.AttestationCacheMisses != 2 {
		t.Fatalf("after write, cache hits/joins/misses = %d/%d/%d, want 1/1/2",
			stats.AttestationCacheHits, stats.AttestationCacheJoins, stats.AttestationCacheMisses)
	}
}

// TestQueryRefusesMismatchedPolicyPin covers the pinning refusal: a query
// whose explicit policy digest disagrees with the expression it carries is
// refused outright by the source driver.
func TestQueryRefusesMismatchedPolicyPin(t *testing.T) {
	w := buildWorld(t)
	_, _ = w.srcAdmin.Submit("sourceCC", "Put", []byte("k"), []byte("v"))
	client, err := NewClient(w.dest, "seller-bank-org", "pin-prober")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	data, err := client.RemoteQuery(context.Background(), RemoteQuerySpec{
		Network: "source-net", Contract: "sourceCC", Function: "Get",
		Args: [][]byte{[]byte("k")},
	})
	if err != nil {
		t.Fatalf("RemoteQuery: %v", err)
	}
	// Forge the pin on a copy of the sent query and replay it straight at
	// the source relay driver.
	forged := *data.Query
	forged.PolicyDigest = proof.PolicyDigest("OR('someone-else')")
	if _, err := w.source.Driver.Query(context.Background(), &forged); !errors.Is(err, relay.ErrPolicyPinMismatch) {
		t.Fatalf("forged pin got %v, want ErrPolicyPinMismatch", err)
	}
}
