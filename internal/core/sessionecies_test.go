package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/wire"
)

// TestSessionedECDHAmortizedAcrossQueries is the amortization claim end to
// end: distinct cold queries from one persistent client agree ECDH once
// per (attestor, requester) pair — plus once for the result envelope's
// dedicated manager — and every later query seals under cached secrets.
// Classic ECIES would pay (attestors+1) fresh agreements per query.
func TestSessionedECDHAmortizedAcrossQueries(t *testing.T) {
	const queries = 4
	w := buildWorld(t)
	for i := 0; i < queries; i++ {
		if _, err := w.srcAdmin.Submit("sourceCC", "Put", []byte(fmt.Sprintf("bl-amort-%d", i)), []byte("doc")); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	client, err := NewClient(w.dest, "seller-bank-org", "persistent-poller")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	for i := 0; i < queries; i++ {
		if _, err := client.RemoteQuery(context.Background(), RemoteQuerySpec{
			Network: "source-net", Contract: "sourceCC", Function: "Get",
			Args: [][]byte{[]byte(fmt.Sprintf("bl-amort-%d", i))},
		}); err != nil {
			t.Fatalf("RemoteQuery %d: %v", i, err)
		}
	}
	ecdh, sign, encrypt := w.source.Driver.CryptoOps()
	// 2 attestor managers + 1 result manager, one agreement each for the
	// single requester label; warm thereafter.
	if ecdh != 3 {
		t.Fatalf("ECDH agreements across %d sessioned queries = %d, want 3", queries, ecdh)
	}
	// Signatures stay per-query per-attestor (batching not armed here), and
	// every envelope still pays its AEAD seal.
	if sign != queries*2 {
		t.Fatalf("signatures = %d, want %d", sign, queries*2)
	}
	if encrypt != queries*3 {
		t.Fatalf("envelope seals = %d, want %d", encrypt, queries*3)
	}
}

// TestSessionedDisabledForLegacyClients proves the capability gate for
// sessioned ECIES: a query without AcceptSessioned gets classic per-query
// envelopes — the 65-byte uncompressed point prefix in every ciphertext,
// no session wire fields — byte-compatible with pre-session clients, even
// though the driver's session pool is armed (the default).
func TestSessionedDisabledForLegacyClients(t *testing.T) {
	w := buildWorld(t)
	if _, err := w.srcAdmin.Submit("sourceCC", "Put", []byte("bl-classic"), []byte("doc")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	client, err := NewClient(w.dest, "seller-bank-org", "classic-reader")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	data, err := client.RemoteQuery(context.Background(), RemoteQuerySpec{
		Network: "source-net", Contract: "sourceCC", Function: "Get",
		Args: [][]byte{[]byte("bl-classic")},
	})
	if err != nil {
		t.Fatalf("RemoteQuery: %v", err)
	}

	// Replay the identical question without the capability bit, as an older
	// client library would send it.
	legacy := *data.Query
	legacy.AcceptSessioned = false
	legacy.Nonce = append([]byte(nil), data.Query.Nonce...)
	resp, err := w.source.Driver.Query(context.Background(), &legacy)
	if err != nil {
		t.Fatalf("legacy Query: %v", err)
	}
	classic := func(name string, envelope []byte) {
		t.Helper()
		// Classic layout: uncompressed P-256 point || GCM nonce || ct.
		if len(envelope) < 65+12 || envelope[0] != 0x04 {
			t.Fatalf("%s is not a classic ECIES envelope (len=%d)", name, len(envelope))
		}
	}
	if len(resp.SessionEphemeral) != 0 || resp.SessionGeneration != 0 {
		t.Fatal("legacy response carries session fields")
	}
	classic("result", resp.EncryptedResult)
	for i, att := range resp.Attestations {
		if len(att.SessionEphemeral) != 0 || att.SessionGeneration != 0 {
			t.Fatalf("legacy attestation %d carries session fields", i)
		}
		classic(fmt.Sprintf("attestation %d metadata", i), att.EncryptedMetadata)
	}
}

// TestSessionedCertRotationFreshAgreement drives certificate rotation
// through the driver: the session label is the requester certificate
// digest, so the same human behind a renewed certificate gets a fresh
// ECDH agreement instead of a secret silently reused across identities.
func TestSessionedCertRotationFreshAgreement(t *testing.T) {
	w := buildWorld(t)
	if _, err := w.srcAdmin.Submit("sourceCC", "Put", []byte("bl-rotate"), []byte("doc")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	query := func(clientName string) {
		t.Helper()
		client, err := NewClient(w.dest, "seller-bank-org", clientName)
		if err != nil {
			t.Fatalf("NewClient %s: %v", clientName, err)
		}
		if _, err := client.RemoteQuery(context.Background(), RemoteQuerySpec{
			Network: "source-net", Contract: "sourceCC", Function: "Get",
			Args:      [][]byte{[]byte("bl-rotate")},
			RequestID: "rotation-probe-" + clientName,
		}); err != nil {
			t.Fatalf("RemoteQuery %s: %v", clientName, err)
		}
	}
	query("pre-rotation")
	before, _, _ := w.source.Driver.CryptoOps()
	// A distinct certificate for the same org member: new label, and the
	// driver must agree afresh for every manager that seals to it.
	query("post-rotation")
	after, _, _ := w.source.Driver.CryptoOps()
	if after-before != 3 {
		t.Fatalf("rotated certificate triggered %d fresh ECDH agreements, want 3", after-before)
	}
}

// Interface holds: a *wire.Query round-trips AcceptSessioned.
func TestQuerySessionedCapabilityRoundTrip(t *testing.T) {
	q := &wire.Query{RequestingNetwork: "n", Contract: "c", Function: "f",
		Nonce: make([]byte, 16), AcceptSessioned: true}
	rt, err := wire.UnmarshalQuery(q.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalQuery: %v", err)
	}
	if !rt.AcceptSessioned {
		t.Fatal("AcceptSessioned lost in the wire round trip")
	}
}
