package core

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/proof"
	"repro/internal/relay"
	"repro/internal/wire"
)

// TestBatchedAttestationQueryWindow drives the Merkle-batching window end
// to end through the full client stack: four concurrent cold queries land
// in one window, every attestor signs once, and each client's independent
// proof.Verify accepts its leaf + inclusion proof.
func TestBatchedAttestationQueryWindow(t *testing.T) {
	const width = 4
	w := buildWorld(t)
	for i := 0; i < width; i++ {
		if _, err := w.srcAdmin.Submit("sourceCC", "Put", []byte(fmt.Sprintf("bl-%d", i)), []byte("doc")); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	// maxPending = width makes the flush deterministic: the window closes
	// the instant the last of the four concurrent queries arrives.
	w.source.Driver.ConfigureAttestationBatching(time.Second, width)

	client, err := NewClient(w.dest, "seller-bank-org", "batch-reader")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	results := make([]*RemoteData, width)
	errs := make([]error, width)
	var wg sync.WaitGroup
	for i := 0; i < width; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = client.RemoteQuery(context.Background(), RemoteQuerySpec{
				Network: "source-net", Contract: "sourceCC", Function: "Get",
				Args: [][]byte{[]byte(fmt.Sprintf("bl-%d", i))},
			})
		}(i)
	}
	wg.Wait()
	for i := 0; i < width; i++ {
		if errs[i] != nil {
			t.Fatalf("RemoteQuery %d: %v", i, errs[i])
		}
		for _, el := range results[i].Bundle.Elements {
			if el.BatchSize != width {
				t.Fatalf("query %d element batch size = %d, want %d", i, el.BatchSize, width)
			}
		}
	}
	// One signature per attestor for the whole window: every query carries
	// the same signature from the same attestor slot.
	for slot := range results[0].Bundle.Elements {
		first := results[0].Bundle.Elements[slot].Signature
		for i := 1; i < width; i++ {
			if !bytes.Equal(first, results[i].Bundle.Elements[slot].Signature) {
				t.Fatalf("attestor slot %d signed query %d separately", slot, i)
			}
		}
	}
}

// TestBatchedInvokeReplayAfterOrgRemoval is the proof-carrying scenario
// for batched proofs: two concurrent invokes share one attestation window,
// the batched Sealed artifact is persisted with each committed
// transaction, an attestor org then leaves the source network, and a
// replay through a cold relay serves the persisted batched proof byte for
// byte — the inclusion proofs still verify because nothing is re-signed.
func TestBatchedInvokeReplayAfterOrgRemoval(t *testing.T) {
	w, client := buildInvokeWorld(t)
	w.source.Driver.ConfigureAttestationBatching(time.Second, 2)

	specs := [2]RemoteQuerySpec{}
	for i := range specs {
		specs[i] = RemoteQuerySpec{
			Network: "source-net", Contract: "writable", Function: "Append",
			Args:      [][]byte{[]byte(fmt.Sprintf("audit-%d", i)), []byte("entry;")},
			RequestID: fmt.Sprintf("batched-invoke-%d", i),
		}
	}
	originals := [2]*RemoteData{}
	errs := [2]error{}
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			originals[i], errs[i] = client.RemoteInvoke(context.Background(), specs[i])
		}(i)
	}
	wg.Wait()
	for i := range specs {
		if errs[i] != nil {
			t.Fatalf("RemoteInvoke %d: %v", i, errs[i])
		}
		for _, el := range originals[i].Bundle.Elements {
			if el.BatchSize != 2 {
				t.Fatalf("invoke %d element batch size = %d, want 2", i, el.BatchSize)
			}
		}
	}

	// The persisted artifact is itself batched: the Sealed response on the
	// ledger carries the window's inclusion proofs.
	peers := w.source.Fabric.AllPeers()
	for i := range specs {
		tx, err := peers[0].Blocks().TxByInteropKey(originals[i].Query.InteropKey())
		if err != nil {
			t.Fatalf("TxByInteropKey %d: %v", i, err)
		}
		sealed, err := proof.UnmarshalSealed(tx.ProofBundle)
		if err != nil {
			t.Fatalf("UnmarshalSealed %d: %v", i, err)
		}
		resp, err := wire.UnmarshalQueryResponse(sealed.Response)
		if err != nil {
			t.Fatalf("UnmarshalQueryResponse %d: %v", i, err)
		}
		for _, att := range resp.Attestations {
			if att.BatchSize != 2 || len(att.BatchPath) == 0 {
				t.Fatalf("persisted attestation %d not batched: size=%d path=%d", i, att.BatchSize, len(att.BatchPath))
			}
			// The client negotiated sessioned ECIES, so the persisted window
			// is batched AND sessioned — the replay below therefore proves
			// the sessioned batched Sealed artifact is served byte for byte.
			if len(att.SessionEphemeral) == 0 || att.SessionGeneration == 0 {
				t.Fatalf("persisted attestation %d is not sessioned", i)
			}
		}
	}

	// Cold second relay + org removal: replay can only come from the
	// ledger, and fresh batched attestation is impossible.
	relay2 := relay.New("source-net", w.registry, w.hub)
	relay2.RegisterDriver("source-net", relay.NewFabricDriver(w.source.Fabric, "default"))
	w.hub.Attach("source-relay-2", relay2)
	w.registry.Unregister("source-net", "source-relay")
	w.registry.Register("source-net", "source-relay-2")
	if err := w.source.Fabric.RemoveOrg("carrier-org"); err != nil {
		t.Fatalf("RemoveOrg: %v", err)
	}

	for i := range specs {
		replayed, err := client.RemoteInvoke(context.Background(), specs[i])
		if err != nil {
			t.Fatalf("RemoteInvoke replay %d: %v", i, err)
		}
		if !bytes.Equal(replayed.BundleBytes, originals[i].BundleBytes) {
			t.Fatalf("replayed batched bundle %d differs from the persisted original", i)
		}
	}
	if got := relay2.Stats().InvokeReplays; got != 2 {
		t.Fatalf("InvokeReplays = %d, want 2", got)
	}
}

// TestBatchingDisabledForLegacyClients proves capability negotiation: a
// query that does not announce AcceptBatched takes the single-signature
// path even when the driver's window is armed, and never waits on it.
func TestBatchingDisabledForLegacyClients(t *testing.T) {
	w := buildWorld(t)
	if _, err := w.srcAdmin.Submit("sourceCC", "Put", []byte("bl-legacy"), []byte("doc")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	client, err := NewClient(w.dest, "seller-bank-org", "legacy-reader")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	data, err := client.RemoteQuery(context.Background(), RemoteQuerySpec{
		Network: "source-net", Contract: "sourceCC", Function: "Get",
		Args: [][]byte{[]byte("bl-legacy")},
	})
	if err != nil {
		t.Fatalf("RemoteQuery: %v", err)
	}

	// Arm a wide window, then replay the identical query without the
	// capability bit straight at the driver, as an older relay would send
	// it. With no other traffic, a batched submission would stall until
	// the window timer fires; the legacy path must return immediately.
	w.source.Driver.ConfigureAttestationBatching(time.Minute, 8)
	legacy := *data.Query
	legacy.AcceptBatched = false
	done := make(chan struct{})
	var resp *wire.QueryResponse
	go func() {
		defer close(done)
		resp, err = w.source.Driver.Query(context.Background(), &legacy)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("legacy query stalled in the batching window")
	}
	if err != nil {
		t.Fatalf("legacy Query: %v", err)
	}
	for _, att := range resp.Attestations {
		if att.BatchSize != 0 {
			t.Fatal("legacy query received a batched attestation")
		}
	}
}
