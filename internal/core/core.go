// Package core is the public face of the interoperability library: it
// turns a fabric.Network into an interop-enabled network (system contracts
// deployed, relay attached), drives the governance operations that
// initialize interoperation (recording foreign configurations, verification
// policies and access rules), and gives applications a Client that performs
// trusted cross-network queries end to end — the complete Fig. 2 message
// flow behind two method calls.
package core

import (
	"context"
	"crypto/ecdsa"
	"errors"
	"fmt"
	"strings"

	"repro/internal/cryptoutil"
	"repro/internal/fabric"
	"repro/internal/msp"
	"repro/internal/policy"
	"repro/internal/proof"
	"repro/internal/relay"
	"repro/internal/syscc"
	"repro/internal/wire"
)

// ErrNotConfigured is returned when an interop operation needs recorded
// state (foreign config, verification policy) that is absent.
var ErrNotConfigured = errors.New("core: interoperation not configured")

// Options configures EnableInterop.
type Options struct {
	// SystemPolicy is the endorsement policy for the ECC and CMDAC
	// deployments. Empty means "OR over every organization", i.e. any
	// single org's peer may endorse system-contract reads, while
	// governance writes still pass ordering and full validation.
	SystemPolicy string
	// LedgerName is the logical ledger identifier used in query digests.
	// Empty means "default".
	LedgerName string
	// RelayOptions configures the attached relay service, e.g.
	// relay.WithHedging for hedged fan-out across redundant relay
	// addresses, or relay.WithRateLimit for server-side DoS protection.
	RelayOptions []relay.Option
}

// Network is an interop-enabled permissioned network: the underlying
// platform plus its relay service and driver.
type Network struct {
	Fabric *fabric.Network
	Relay  *relay.Relay
	Driver *relay.FabricDriver

	ledgerName string
}

// EnableInterop deploys the system contracts on an existing network and
// attaches a relay service, without modifying the platform itself (§3.1:
// "enabling interoperation must not require changes to existing network
// protocols").
func EnableInterop(net *fabric.Network, discovery relay.Discovery, transport relay.Transport, opts Options) (*Network, error) {
	sysPolicy := opts.SystemPolicy
	if sysPolicy == "" {
		orgs := net.OrgIDs()
		if len(orgs) == 0 {
			return nil, errors.New("core: network has no organizations")
		}
		quoted := make([]string, len(orgs))
		for i, o := range orgs {
			quoted[i] = "'" + o + "'"
		}
		if len(quoted) == 1 {
			sysPolicy = quoted[0]
		} else {
			sysPolicy = "OR(" + strings.Join(quoted, ",") + ")"
		}
	}
	if err := net.Deploy(syscc.ECCName, &syscc.ECC{}, sysPolicy); err != nil {
		return nil, fmt.Errorf("core: deploy exposure control contract: %w", err)
	}
	if err := net.Deploy(syscc.CMDACName, &syscc.CMDAC{}, sysPolicy); err != nil {
		return nil, fmt.Errorf("core: deploy config management contract: %w", err)
	}
	ledgerName := opts.LedgerName
	if ledgerName == "" {
		ledgerName = "default"
	}
	r := relay.New(net.ID(), discovery, transport, opts.RelayOptions...)
	d := relay.NewFabricDriver(net, ledgerName)
	r.RegisterDriver(net.ID(), d)
	return &Network{Fabric: net, Relay: r, Driver: d, ledgerName: ledgerName}, nil
}

// ID returns the network identifier.
func (n *Network) ID() string { return n.Fabric.ID() }

// LedgerName returns the logical ledger name used in query digests.
func (n *Network) LedgerName() string { return n.ledgerName }

// ExportConfig produces the shareable identity/topology configuration other
// networks record before interoperating with this one.
func (n *Network) ExportConfig() *wire.NetworkConfig { return n.Fabric.ExportConfig() }

// ConfigureForeignNetwork records another network's configuration on the
// local ledger through the CMDAC (a governance transaction subject to local
// consensus).
func (n *Network) ConfigureForeignNetwork(admin *fabric.Gateway, cfg *wire.NetworkConfig) error {
	if _, err := admin.Submit(syscc.CMDACName, syscc.CMDACSetNetworkConfig, cfg.Marshal()); err != nil {
		return fmt.Errorf("core: record config for %q: %w", cfg.NetworkID, err)
	}
	return nil
}

// SetVerificationPolicy records the acceptance criteria for data from a
// source network.
func (n *Network) SetVerificationPolicy(admin *fabric.Gateway, vp policy.VerificationPolicy) error {
	data, err := vp.Marshal()
	if err != nil {
		return err
	}
	if _, err := admin.Submit(syscc.CMDACName, syscc.CMDACSetVerificationPolicy, data); err != nil {
		return fmt.Errorf("core: record verification policy for %q: %w", vp.Network, err)
	}
	return nil
}

// GrantAccess records an exposure-control rule permitting a foreign
// organization to invoke a local chaincode function.
func (n *Network) GrantAccess(admin *fabric.Gateway, rule policy.AccessRule) error {
	data, err := rule.Marshal()
	if err != nil {
		return err
	}
	if _, err := admin.Submit(syscc.ECCName, syscc.ECCAddRule, data); err != nil {
		return fmt.Errorf("core: grant %s: %w", rule, err)
	}
	return nil
}

// RevokeAccess removes a previously granted exposure-control rule.
func (n *Network) RevokeAccess(admin *fabric.Gateway, rule policy.AccessRule) error {
	data, err := rule.Marshal()
	if err != nil {
		return err
	}
	if _, err := admin.Submit(syscc.ECCName, syscc.ECCRemoveRule, data); err != nil {
		return fmt.Errorf("core: revoke %s: %w", rule, err)
	}
	return nil
}

// Client is an application's handle for both local transactions and
// cross-network queries. It owns a key pair whose certificate travels with
// every query, giving the client end-to-end confidentiality: source peers
// encrypt results and proof metadata to this key (§4.3).
type Client struct {
	network  *Network
	gateway  *fabric.Gateway
	identity *msp.Identity
	key      *ecdsa.PrivateKey

	// batchParallelism bounds RemoteQueryBatch fan-out; zero means
	// DefaultBatchParallelism.
	batchParallelism int
}

// NewClient creates a client identity named name under the given
// organization of the interop-enabled network.
func NewClient(n *Network, orgID, name string) (*Client, error) {
	org, err := n.Fabric.Org(orgID)
	if err != nil {
		return nil, err
	}
	key, err := cryptoutil.GenerateKey()
	if err != nil {
		return nil, fmt.Errorf("core: client key: %w", err)
	}
	cert, err := org.CA.IssueForKey(name, msp.RoleClient, &key.PublicKey)
	if err != nil {
		return nil, fmt.Errorf("core: client certificate: %w", err)
	}
	identity := &msp.Identity{Name: name, OrgID: orgID, Role: msp.RoleClient, Cert: cert, Key: key}
	return &Client{
		network:  n,
		gateway:  n.Fabric.Gateway(identity),
		identity: identity,
		key:      key,
	}, nil
}

// Identity returns the client's MSP identity.
func (c *Client) Identity() *msp.Identity { return c.identity }

// Gateway returns the client's local-network gateway.
func (c *Client) Gateway() *fabric.Gateway { return c.gateway }

// Submit submits a local transaction. ctx gates entry: an already-expired
// context refuses the submission, but a transaction handed to the platform
// runs to completion — local consensus cannot be cancelled halfway.
func (c *Client) Submit(ctx context.Context, chaincodeName, function string, args ...[]byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: submit %s.%s: %w", chaincodeName, function, err)
	}
	return c.gateway.Submit(chaincodeName, function, args...)
}

// Evaluate runs a local read-only query. ctx gates entry.
func (c *Client) Evaluate(ctx context.Context, chaincodeName, function string, args ...[]byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: evaluate %s.%s: %w", chaincodeName, function, err)
	}
	return c.gateway.Evaluate(chaincodeName, function, args...)
}

// RemoteQuerySpec addresses a cross-network query.
type RemoteQuerySpec struct {
	// Network is the source network holding the data.
	Network string
	// Contract and Function name the remote chaincode function.
	Contract string
	Function string
	// Args are the function arguments.
	Args [][]byte
	// VerificationPolicy optionally overrides the policy recorded for the
	// source network in the local CMDAC. Empty means "use the recorded
	// policy", which is the paper's initialization-time flow.
	VerificationPolicy string
	// RequestID is an optional idempotency key, meaningful for
	// RemoteInvoke: a retry after an ambiguous failure (the reply was
	// lost, but the transaction may have committed) should reuse the same
	// RequestID so the source relay replays the committed outcome instead
	// of executing the transaction a second time. Empty means the relay
	// assigns a fresh ID (returned in RemoteData.RequestID).
	RequestID string
}

// RemoteData is the outcome of a verified cross-network query: the
// plaintext result plus the proof bundle ready to embed in a local
// transaction.
type RemoteData struct {
	// Result is the decrypted query result.
	Result []byte
	// Bundle is the decrypted proof.
	Bundle *proof.Bundle
	// BundleBytes is Bundle in transaction-argument form.
	BundleBytes []byte
	// Query echoes the query that was sent, including the generated nonce.
	Query *wire.Query
	// RequestID is the request identifier the relay assigned, as echoed in
	// the response. The query struct itself is never mutated by the relay.
	RequestID string
	// Path is the verified multi-hop route the response travelled, nearest
	// the source first — one entry per forwarding relay that signed a hop
	// pin. Empty for a direct (single-hop) answer. The chain is verified
	// structurally before the data is handed back; a response with a
	// broken, reordered or replayed pin never reaches the application.
	Path []proof.Hop
}

// RemoteQuery performs the complete trusted data transfer of Fig. 2 from
// the application's seat: it resolves the verification policy, sends the
// query through the local relay, decrypts the response, and pre-verifies
// the proof against the locally recorded source configuration before
// handing the data back. The authoritative verification still happens on
// every destination peer when the returned bundle is submitted in a
// transaction (Data Acceptance). ctx bounds the entire operation including
// the remote round-trip; its deadline travels with the query so the source
// relay inherits the remaining budget.
func (c *Client) RemoteQuery(ctx context.Context, spec RemoteQuerySpec) (*RemoteData, error) {
	q, policyExpr, err := c.buildQuery(ctx, spec)
	if err != nil {
		return nil, err
	}
	resp, err := c.network.Relay.Query(ctx, q)
	if err != nil {
		return nil, err
	}
	return c.openResponse(q, resp, policyExpr)
}

// RemoteInvoke performs a cross-network transaction (the §5 extension):
// the source network executes and commits a state change on behalf of this
// authorized client, returning the committed response with the same
// attestation proof a query carries. ctx bounds the operation; failover
// stays sequential because a transaction is not idempotent.
func (c *Client) RemoteInvoke(ctx context.Context, spec RemoteQuerySpec) (*RemoteData, error) {
	q, policyExpr, err := c.buildQuery(ctx, spec)
	if err != nil {
		return nil, err
	}
	resp, err := c.network.Relay.Invoke(ctx, q)
	if err != nil {
		return nil, err
	}
	return c.openResponse(q, resp, policyExpr)
}

// buildQuery resolves the verification policy (from the spec or the local
// CMDAC) and assembles the wire query with a fresh nonce.
func (c *Client) buildQuery(ctx context.Context, spec RemoteQuerySpec) (*wire.Query, string, error) {
	if err := ctx.Err(); err != nil {
		return nil, "", fmt.Errorf("core: remote request to %q: %w", spec.Network, err)
	}
	policyExpr := spec.VerificationPolicy
	if policyExpr == "" {
		data, err := c.gateway.EvaluateString(syscc.CMDACName, syscc.CMDACGetVerificationPolicy, spec.Network, spec.Contract)
		if err != nil {
			return nil, "", fmt.Errorf("%w: verification policy for %q: %v", ErrNotConfigured, spec.Network, err)
		}
		vp, err := policy.UnmarshalVerificationPolicy(data)
		if err != nil {
			return nil, "", err
		}
		policyExpr = vp.Expr
	}
	var nonce []byte
	if spec.RequestID != "" {
		// Idempotent retries must present the same nonce as the original
		// attempt or the replayed response's proof (which binds the
		// original nonce) would never verify. Derive it from the client's
		// private key and the idempotency key: deterministic for this
		// client+RequestID, unpredictable to anyone else.
		nonce = cryptoutil.Digest(c.key.D.Bytes(), []byte("idempotent-nonce"), []byte(spec.RequestID))[:cryptoutil.NonceSize]
	} else {
		var err error
		nonce, err = cryptoutil.NewNonce()
		if err != nil {
			return nil, "", fmt.Errorf("core: nonce: %w", err)
		}
	}
	return &wire.Query{
		RequestID:         spec.RequestID,
		RequestingNetwork: c.network.ID(),
		TargetNetwork:     spec.Network,
		Ledger:            c.network.ledgerName,
		Contract:          spec.Contract,
		Function:          spec.Function,
		Args:              spec.Args,
		PolicyExpr:        policyExpr,
		RequesterCertPEM:  c.identity.CertPEM(),
		RequesterOrg:      c.identity.OrgID,
		Nonce:             nonce,
		// Pin the resolved policy: the source refuses to build, and this
		// client refuses to accept, a proof under any other policy digest.
		PolicyDigest: proof.PolicyDigest(policyExpr),
		// This client verifies Merkle-batched attestations (proof.Verify
		// recomputes the signed root from the leaf's inclusion path), so
		// advertise the capability; sources without batching ignore it.
		AcceptBatched: true,
		// Likewise sessioned ECIES envelopes: proof.OpenResponse dispatches
		// on the response's session fields, so both classic and sessioned
		// sources are decryptable.
		AcceptSessioned: true,
	}, policyExpr, nil
}

// openResponse decrypts the response, pre-verifies the proof, and packages
// the verified remote data.
func (c *Client) openResponse(q *wire.Query, resp *wire.QueryResponse, policyExpr string) (*RemoteData, error) {
	// Authenticate the path before the payload: a response carrying hop
	// pins was forwarded, and the whole chain must verify against this
	// query and this response's core bytes. The origin relay has already
	// checked the outermost pin names the hub it actually used; this
	// client-side pass re-checks structure end to end.
	path, err := proof.VerifyHopChain(q, resp)
	if err != nil {
		return nil, err
	}
	bundle, err := proof.OpenResponse(c.key, q, resp)
	if err != nil {
		return nil, err
	}
	if err := c.preVerify(q, bundle, policyExpr); err != nil {
		return nil, err
	}
	return &RemoteData{
		Result:      bundle.Result,
		Bundle:      bundle,
		BundleBytes: bundle.Marshal(),
		Query:       q,
		RequestID:   resp.RequestID,
		Path:        path,
	}, nil
}

// preVerify checks the proof client-side against the locally recorded
// source configuration, failing fast before a doomed transaction is
// submitted. Absent configuration is not an error here — the destination
// peers will reject the transaction anyway.
func (c *Client) preVerify(q *wire.Query, bundle *proof.Bundle, policyExpr string) error {
	cfgBytes, err := c.gateway.EvaluateString(syscc.CMDACName, syscc.CMDACGetNetworkConfig, q.TargetNetwork)
	if err != nil {
		return nil // no recorded config to check against yet
	}
	cfg, err := wire.UnmarshalNetworkConfig(cfgBytes)
	if err != nil {
		return fmt.Errorf("core: recorded config: %w", err)
	}
	roots := make(map[string][]byte, len(cfg.Orgs))
	for _, org := range cfg.Orgs {
		roots[org.OrgID] = org.RootCertPEM
	}
	verifier, err := msp.NewVerifier(roots)
	if err != nil {
		return err
	}
	vp := policy.VerificationPolicy{Network: q.TargetNetwork, Expr: policyExpr}
	compiled, err := vp.Compile()
	if err != nil {
		return err
	}
	return proof.Verify(bundle, verifier, compiled, proof.QueryDigestOf(q), proof.PolicyDigest(policyExpr))
}

// SubmitWithRemoteData submits a local transaction whose arguments include
// verified remote data (Fig. 2 step 10). The destination chaincode is
// expected to pass the bundle to the CMDAC for Data Acceptance validation.
func (c *Client) SubmitWithRemoteData(ctx context.Context, chaincodeName, function string, data *RemoteData, extraArgs ...[]byte) ([]byte, error) {
	args := make([][]byte, 0, 1+len(extraArgs))
	args = append(args, data.BundleBytes)
	args = append(args, extraArgs...)
	return c.Submit(ctx, chaincodeName, function, args...)
}

// SubscribeRemoteEvents subscribes to committed chaincode events on a
// remote network (the §7 cross-network events extension). Matching events
// are pushed back through this network's relay. ctx bounds subscription
// establishment only; cancel releases the subscription.
func (c *Client) SubscribeRemoteEvents(ctx context.Context, targetNetwork, eventName string) (<-chan wire.Event, func(), error) {
	return c.network.Relay.SubscribeRemote(ctx, targetNetwork, eventName, c.identity.CertPEM())
}
