package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// seedDocs commits n documents on the source ledger and returns their specs.
func seedDocs(t *testing.T, w *world, n int) []RemoteQuerySpec {
	t.Helper()
	specs := make([]RemoteQuerySpec, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("doc-%d", i)
		if _, err := w.srcAdmin.Submit("sourceCC", "Put", []byte(key), []byte("v-"+key)); err != nil {
			t.Fatalf("Put %s: %v", key, err)
		}
		specs[i] = RemoteQuerySpec{
			Network: "source-net", Contract: "sourceCC", Function: "Get",
			Args: [][]byte{[]byte(key)},
		}
	}
	return specs
}

func TestRemoteQueryBatch(t *testing.T) {
	w := buildWorld(t)
	client, _ := NewClient(w.dest, "seller-bank-org", "c")
	specs := seedDocs(t, w, 10)

	results := client.RemoteQueryBatch(context.Background(), specs)
	if len(results) != len(specs) {
		t.Fatalf("results = %d, want %d", len(results), len(specs))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("spec %d: %v", i, res.Err)
		}
		want := []byte(fmt.Sprintf("v-doc-%d", i))
		if !bytes.Equal(res.Data.Result, want) {
			t.Fatalf("spec %d result = %q, want %q", i, res.Data.Result, want)
		}
		if res.Data.RequestID == "" {
			t.Fatalf("spec %d missing request ID", i)
		}
	}
}

func TestRemoteQueryBatchPartialFailure(t *testing.T) {
	w := buildWorld(t)
	client, _ := NewClient(w.dest, "seller-bank-org", "c")
	specs := seedDocs(t, w, 3)
	// A spec against an unknown network fails alone; the rest succeed.
	specs = append(specs, RemoteQuerySpec{
		Network: "ghost-net", Contract: "cc", Function: "fn",
		VerificationPolicy: "'seller-org'",
	})

	results := client.RemoteQueryBatch(context.Background(), specs)
	for i := 0; i < 3; i++ {
		if results[i].Err != nil {
			t.Fatalf("spec %d: %v", i, results[i].Err)
		}
	}
	if results[3].Err == nil {
		t.Fatal("ghost-net spec succeeded")
	}
}

func TestRemoteQueryBatchSharedDeadline(t *testing.T) {
	w := buildWorld(t)
	client, _ := NewClient(w.dest, "seller-bank-org", "c")
	client.SetBatchParallelism(1)
	specs := seedDocs(t, w, 4)
	w.hub.SetStall("source-relay", true)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	results := client.RemoteQueryBatch(ctx, specs)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("batch blocked %v past the shared 100ms deadline", elapsed)
	}
	for i, res := range results {
		if res.Err == nil {
			t.Fatalf("spec %d succeeded against a stalled relay", i)
		}
		if !errors.Is(res.Err, context.DeadlineExceeded) {
			t.Fatalf("spec %d err = %v, want DeadlineExceeded", i, res.Err)
		}
	}
}

func TestRemoteQueryBatchEmpty(t *testing.T) {
	w := buildWorld(t)
	client, _ := NewClient(w.dest, "seller-bank-org", "c")
	if results := client.RemoteQueryBatch(context.Background(), nil); len(results) != 0 {
		t.Fatalf("results = %v, want empty", results)
	}
}

func TestSubmitRefusedOnExpiredContext(t *testing.T) {
	w := buildWorld(t)
	client, _ := NewClient(w.dest, "seller-bank-org", "c")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.Submit(ctx, "destCC", "Read", []byte("x")); !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit err = %v, want Canceled", err)
	}
	if _, err := client.Evaluate(ctx, "destCC", "Read", []byte("x")); !errors.Is(err, context.Canceled) {
		t.Fatalf("Evaluate err = %v, want Canceled", err)
	}
	if _, err := client.RemoteQuery(ctx, RemoteQuerySpec{
		Network: "source-net", Contract: "sourceCC", Function: "Get",
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RemoteQuery err = %v, want Canceled", err)
	}
}

// TestRemoteQueryDeadlineEndToEnd: the whole client-level operation returns
// within its deadline when the source relay is hung.
func TestRemoteQueryDeadlineEndToEnd(t *testing.T) {
	w := buildWorld(t)
	client, _ := NewClient(w.dest, "seller-bank-org", "c")
	specs := seedDocs(t, w, 1)
	w.hub.SetStall("source-relay", true)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.RemoteQuery(ctx, specs[0])
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("RemoteQuery blocked %v past its deadline", elapsed)
	}
}
