// Package htlc implements Hash Time-Locked Contracts over the simulated
// platform — the asset-exchange technique the paper's §6/§7 plans to fold
// into the architecture ("we will consider incorporating these techniques
// ... to enable a wider spectrum of applications including both asset and
// data transfers"). The package provides a combined asset-and-escrow
// chaincode: fungible token balances, plus hash time-locked escrows whose
// claims reveal the preimage on the ledger. Combined with the library's
// trusted data transfer, two networks can perform an atomic swap in which
// the second claimant learns the revealed preimage through a
// proof-carrying cross-network query instead of trusting the counterparty
// (see TestAtomicCrossNetworkSwap).
package htlc

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/chaincode"
	"repro/internal/msp"
	"repro/internal/statedb"
	"repro/internal/syscc"
)

// ChaincodeName is the deployment name used by the examples and tests.
const ChaincodeName = "assets"

// Chaincode function names.
const (
	FnMint     = "Mint"
	FnTransfer = "Transfer"
	FnBalance  = "Balance"
	FnLock     = "Lock"
	FnClaim    = "Claim"
	FnRefund   = "Refund"
	FnGetLock  = "GetLock"
	// EventClaimed is emitted when an escrow is claimed, carrying the lock
	// ID; the revealed preimage is recorded in the lock state.
	EventClaimed = "htlc-claimed"
)

// LockStatus tracks an escrow through its lifecycle.
type LockStatus string

// Escrow states.
const (
	StatusLocked   LockStatus = "locked"
	StatusClaimed  LockStatus = "claimed"
	StatusRefunded LockStatus = "refunded"
)

var (
	// ErrInsufficientFunds is returned when a transfer or lock exceeds the
	// sender's balance.
	ErrInsufficientFunds = errors.New("htlc: insufficient funds")
	// ErrWrongPreimage is returned when a claim's preimage does not hash
	// to the lock's hashlock.
	ErrWrongPreimage = errors.New("htlc: preimage does not match hashlock")
	// ErrExpired is returned when claiming after, or refunding before, the
	// timelock.
	ErrExpired = errors.New("htlc: timelock violation")
	// ErrNotParty is returned when someone other than the designated
	// sender/receiver operates on a lock.
	ErrNotParty = errors.New("htlc: caller is not a party to this lock")
)

// Lock is the on-ledger escrow record.
type Lock struct {
	LockID    string     `json:"lockId"`
	Sender    string     `json:"sender"`
	Receiver  string     `json:"receiver"`
	Amount    int64      `json:"amount"`
	Hashlock  string     `json:"hashlock"` // hex SHA-256 of the preimage
	ExpiresAt time.Time  `json:"expiresAt"`
	Status    LockStatus `json:"status"`
	// Preimage is recorded (hex) once claimed — the public revelation the
	// counterparty fetches, with proof, to unlock the paired escrow.
	Preimage string `json:"preimage,omitempty"`
}

// Marshal encodes the lock.
func (l *Lock) Marshal() ([]byte, error) { return json.Marshal(l) }

// UnmarshalLock decodes a stored lock.
func UnmarshalLock(data []byte) (*Lock, error) {
	var l Lock
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("htlc: lock: %w", err)
	}
	return &l, nil
}

// HashPreimage computes the hex hashlock for a preimage.
func HashPreimage(preimage []byte) string {
	sum := sha256.Sum256(preimage)
	return hex.EncodeToString(sum[:])
}

// Chaincode is the combined asset + escrow contract.
type Chaincode struct{}

var _ chaincode.Chaincode = (*Chaincode)(nil)

// Invoke dispatches the contract functions.
func (c *Chaincode) Invoke(stub chaincode.Stub) ([]byte, error) {
	switch stub.Function() {
	case FnMint:
		return c.mint(stub)
	case FnTransfer:
		return c.transfer(stub)
	case FnBalance:
		return c.balance(stub)
	case FnLock:
		return c.lock(stub)
	case FnClaim:
		return c.claim(stub)
	case FnRefund:
		return c.refund(stub)
	case FnGetLock:
		return c.getLock(stub)
	default:
		return nil, fmt.Errorf("htlc: unknown function %q", stub.Function())
	}
}

// caller resolves the invoking client's account name from the certificate
// common name.
func caller(stub chaincode.Stub) (string, error) {
	cert, err := msp.ParseCertPEM(stub.CreatorCert())
	if err != nil {
		return "", fmt.Errorf("htlc: creator certificate: %w", err)
	}
	if cert.Subject.CommonName == "" {
		return "", errors.New("htlc: creator certificate without common name")
	}
	return cert.Subject.CommonName, nil
}

func balanceKey(account string) (string, error) {
	return statedb.CompositeKey("balance", account)
}

func lockKey(lockID string) (string, error) {
	return statedb.CompositeKey("lock", lockID)
}

func readBalance(stub chaincode.Stub, account string) (int64, error) {
	key, err := balanceKey(account)
	if err != nil {
		return 0, err
	}
	data, err := stub.GetState(key)
	if err != nil {
		return 0, err
	}
	if data == nil {
		return 0, nil
	}
	v, err := strconv.ParseInt(string(data), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("htlc: corrupt balance for %q: %w", account, err)
	}
	return v, nil
}

func writeBalance(stub chaincode.Stub, account string, v int64) error {
	key, err := balanceKey(account)
	if err != nil {
		return err
	}
	return stub.PutState(key, []byte(strconv.FormatInt(v, 10)))
}

func move(stub chaincode.Stub, from, to string, amount int64) error {
	if amount <= 0 {
		return errors.New("htlc: amount must be positive")
	}
	fromBal, err := readBalance(stub, from)
	if err != nil {
		return err
	}
	if fromBal < amount {
		return fmt.Errorf("%w: %s has %d, needs %d", ErrInsufficientFunds, from, fromBal, amount)
	}
	toBal, err := readBalance(stub, to)
	if err != nil {
		return err
	}
	if err := writeBalance(stub, from, fromBal-amount); err != nil {
		return err
	}
	return writeBalance(stub, to, toBal+amount)
}

// mint credits an account: args = [account, amount]. Demo-grade issuance;
// a production deployment would restrict this to an issuer identity.
func (c *Chaincode) mint(stub chaincode.Stub) ([]byte, error) {
	args := stub.StringArgs()
	if len(args) != 2 {
		return nil, errors.New("htlc: Mint expects account, amount")
	}
	amount, err := strconv.ParseInt(args[1], 10, 64)
	if err != nil || amount <= 0 {
		return nil, errors.New("htlc: Mint amount must be a positive integer")
	}
	bal, err := readBalance(stub, args[0])
	if err != nil {
		return nil, err
	}
	if err := writeBalance(stub, args[0], bal+amount); err != nil {
		return nil, err
	}
	return []byte(strconv.FormatInt(bal+amount, 10)), nil
}

// transfer moves funds from the caller's account: args = [to, amount].
func (c *Chaincode) transfer(stub chaincode.Stub) ([]byte, error) {
	args := stub.StringArgs()
	if len(args) != 2 {
		return nil, errors.New("htlc: Transfer expects to, amount")
	}
	from, err := caller(stub)
	if err != nil {
		return nil, err
	}
	amount, err := strconv.ParseInt(args[1], 10, 64)
	if err != nil {
		return nil, errors.New("htlc: Transfer amount must be an integer")
	}
	if err := move(stub, from, args[0], amount); err != nil {
		return nil, err
	}
	return nil, nil
}

// balance reads an account: args = [account].
func (c *Chaincode) balance(stub chaincode.Stub) ([]byte, error) {
	args := stub.StringArgs()
	if len(args) != 1 {
		return nil, errors.New("htlc: Balance expects account")
	}
	bal, err := readBalance(stub, args[0])
	if err != nil {
		return nil, err
	}
	return []byte(strconv.FormatInt(bal, 10)), nil
}

// escrowAccount is the internal account holding a lock's funds.
func escrowAccount(lockID string) string { return "escrow:" + lockID }

// lock creates an escrow: args = [lockID, receiver, hashlockHex,
// expiresAtUnixNano, amount]. Funds move from the caller into escrow.
func (c *Chaincode) lock(stub chaincode.Stub) ([]byte, error) {
	args := stub.StringArgs()
	if len(args) != 5 {
		return nil, errors.New("htlc: Lock expects lockId, receiver, hashlock, expiresAtUnixNano, amount")
	}
	lockID, receiver, hashlock := args[0], args[1], args[2]
	expiryNanos, err := strconv.ParseInt(args[3], 10, 64)
	if err != nil {
		return nil, errors.New("htlc: Lock expiry must be unix nanoseconds")
	}
	amount, err := strconv.ParseInt(args[4], 10, 64)
	if err != nil {
		return nil, errors.New("htlc: Lock amount must be an integer")
	}
	if len(hashlock) != 64 {
		return nil, errors.New("htlc: hashlock must be hex SHA-256")
	}
	key, err := lockKey(lockID)
	if err != nil {
		return nil, err
	}
	existing, err := stub.GetState(key)
	if err != nil {
		return nil, err
	}
	if existing != nil {
		return nil, fmt.Errorf("htlc: lock %q already exists", lockID)
	}
	sender, err := caller(stub)
	if err != nil {
		return nil, err
	}
	if err := move(stub, sender, escrowAccount(lockID), amount); err != nil {
		return nil, err
	}
	lock := &Lock{
		LockID: lockID, Sender: sender, Receiver: receiver,
		Amount: amount, Hashlock: hashlock,
		ExpiresAt: time.Unix(0, expiryNanos), Status: StatusLocked,
	}
	data, err := lock.Marshal()
	if err != nil {
		return nil, err
	}
	if err := stub.PutState(key, data); err != nil {
		return nil, err
	}
	return data, nil
}

func loadLock(stub chaincode.Stub, lockID string) (*Lock, string, error) {
	key, err := lockKey(lockID)
	if err != nil {
		return nil, "", err
	}
	data, err := stub.GetState(key)
	if err != nil {
		return nil, "", err
	}
	if data == nil {
		return nil, "", fmt.Errorf("htlc: no lock %q", lockID)
	}
	l, err := UnmarshalLock(data)
	return l, key, err
}

// claim releases an escrow to its receiver: args = [lockID, preimageHex].
// The preimage is recorded on the ledger, where the counterparty can fetch
// it — with proof — through a cross-network query.
func (c *Chaincode) claim(stub chaincode.Stub) ([]byte, error) {
	args := stub.StringArgs()
	if len(args) != 2 {
		return nil, errors.New("htlc: Claim expects lockId, preimageHex")
	}
	l, key, err := loadLock(stub, args[0])
	if err != nil {
		return nil, err
	}
	if l.Status != StatusLocked {
		return nil, fmt.Errorf("htlc: lock %q is %s", l.LockID, l.Status)
	}
	who, err := caller(stub)
	if err != nil {
		return nil, err
	}
	if who != l.Receiver {
		return nil, fmt.Errorf("%w: %s claiming a lock for %s", ErrNotParty, who, l.Receiver)
	}
	if !stub.Timestamp().Before(l.ExpiresAt) {
		return nil, fmt.Errorf("%w: lock expired at %s", ErrExpired, l.ExpiresAt)
	}
	preimage, err := hex.DecodeString(args[1])
	if err != nil {
		return nil, errors.New("htlc: preimage must be hex")
	}
	if HashPreimage(preimage) != l.Hashlock {
		return nil, ErrWrongPreimage
	}
	if err := move(stub, escrowAccount(l.LockID), l.Receiver, l.Amount); err != nil {
		return nil, err
	}
	l.Status = StatusClaimed
	l.Preimage = args[1]
	data, err := l.Marshal()
	if err != nil {
		return nil, err
	}
	if err := stub.PutState(key, data); err != nil {
		return nil, err
	}
	if err := stub.SetEvent(EventClaimed, []byte(l.LockID)); err != nil {
		return nil, err
	}
	return data, nil
}

// refund returns an expired escrow to its sender: args = [lockID].
func (c *Chaincode) refund(stub chaincode.Stub) ([]byte, error) {
	args := stub.StringArgs()
	if len(args) != 1 {
		return nil, errors.New("htlc: Refund expects lockId")
	}
	l, key, err := loadLock(stub, args[0])
	if err != nil {
		return nil, err
	}
	if l.Status != StatusLocked {
		return nil, fmt.Errorf("htlc: lock %q is %s", l.LockID, l.Status)
	}
	who, err := caller(stub)
	if err != nil {
		return nil, err
	}
	if who != l.Sender {
		return nil, fmt.Errorf("%w: %s refunding a lock held by %s", ErrNotParty, who, l.Sender)
	}
	if stub.Timestamp().Before(l.ExpiresAt) {
		return nil, fmt.Errorf("%w: lock live until %s", ErrExpired, l.ExpiresAt)
	}
	if err := move(stub, escrowAccount(l.LockID), l.Sender, l.Amount); err != nil {
		return nil, err
	}
	l.Status = StatusRefunded
	data, err := l.Marshal()
	if err != nil {
		return nil, err
	}
	if err := stub.PutState(key, data); err != nil {
		return nil, err
	}
	return data, nil
}

// getLock returns the lock record, including the revealed preimage after a
// claim. The function carries the standard interop adaptation so a
// counterparty network can fetch the revelation with proof.
func (c *Chaincode) getLock(stub chaincode.Stub) ([]byte, error) {
	args := stub.StringArgs()
	if len(args) != 1 {
		return nil, errors.New("htlc: GetLock expects lockId")
	}
	// interop-adaptation-begin (asset exchange, §7 future work)
	if _, err := syscc.AuthorizeRelayRequest(stub, ChaincodeName); err != nil {
		return nil, err
	}
	// interop-adaptation-end
	l, _, err := loadLock(stub, args[0])
	if err != nil {
		return nil, err
	}
	return l.Marshal()
}
