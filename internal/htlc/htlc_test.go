package htlc

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/msp"
	"repro/internal/orderer"
	"repro/internal/policy"
	"repro/internal/relay"
)

// assetNet builds one interop-enabled network carrying the asset chaincode.
func assetNet(t testing.TB, id string, discovery relay.Discovery, transport relay.Transport) *core.Network {
	t.Helper()
	fab := fabric.NewNetwork(id, orderer.Config{BatchSize: 1})
	for _, org := range []string{id + "-org-a", id + "-org-b"} {
		if _, err := fab.AddOrg(org, 1); err != nil {
			t.Fatalf("AddOrg: %v", err)
		}
	}
	endorse := fmt.Sprintf("AND('%s-org-a','%s-org-b')", id, id)
	if err := fab.Deploy(ChaincodeName, &Chaincode{}, endorse); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	n, err := core.EnableInterop(fab, discovery, transport, core.Options{})
	if err != nil {
		t.Fatalf("EnableInterop: %v", err)
	}
	return n
}

func newClient(t testing.TB, n *core.Network, org, name string) *core.Client {
	t.Helper()
	c, err := core.NewClient(n, org, name)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	return c
}

func mint(t testing.TB, c *core.Client, account string, amount int64) {
	t.Helper()
	if _, err := c.Submit(context.Background(), ChaincodeName, FnMint, []byte(account), []byte(strconv.FormatInt(amount, 10))); err != nil {
		t.Fatalf("Mint: %v", err)
	}
}

func balanceOf(t testing.TB, c *core.Client, account string) int64 {
	t.Helper()
	data, err := c.Evaluate(context.Background(), ChaincodeName, FnBalance, []byte(account))
	if err != nil {
		t.Fatalf("Balance: %v", err)
	}
	v, err := strconv.ParseInt(string(data), 10, 64)
	if err != nil {
		t.Fatalf("parse balance %q: %v", data, err)
	}
	return v
}

func TestMintTransferBalance(t *testing.T) {
	n := assetNet(t, "gold", relay.NewStaticRegistry(), relay.NewHub())
	alice := newClient(t, n, "gold-org-a", "alice")
	mint(t, alice, "alice", 100)
	if got := balanceOf(t, alice, "alice"); got != 100 {
		t.Fatalf("balance = %d", got)
	}
	if _, err := alice.Submit(context.Background(), ChaincodeName, FnTransfer, []byte("bob"), []byte("30")); err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	if got := balanceOf(t, alice, "alice"); got != 70 {
		t.Fatalf("alice = %d", got)
	}
	if got := balanceOf(t, alice, "bob"); got != 30 {
		t.Fatalf("bob = %d", got)
	}
}

func TestTransferInsufficientFunds(t *testing.T) {
	n := assetNet(t, "gold", relay.NewStaticRegistry(), relay.NewHub())
	alice := newClient(t, n, "gold-org-a", "alice")
	mint(t, alice, "alice", 10)
	if _, err := alice.Submit(context.Background(), ChaincodeName, FnTransfer, []byte("bob"), []byte("11")); err == nil {
		t.Fatal("overdraft allowed")
	}
	if got := balanceOf(t, alice, "alice"); got != 10 {
		t.Fatalf("alice = %d after failed transfer", got)
	}
}

func lockArgs(lockID, receiver, hashlock string, expiry time.Time, amount int64) [][]byte {
	return [][]byte{
		[]byte(lockID), []byte(receiver), []byte(hashlock),
		[]byte(strconv.FormatInt(expiry.UnixNano(), 10)),
		[]byte(strconv.FormatInt(amount, 10)),
	}
}

func TestLockClaimFlow(t *testing.T) {
	n := assetNet(t, "gold", relay.NewStaticRegistry(), relay.NewHub())
	alice := newClient(t, n, "gold-org-a", "alice")
	bob := newClient(t, n, "gold-org-b", "bob")
	mint(t, alice, "alice", 100)

	preimage := []byte("super-secret-preimage")
	hashlock := HashPreimage(preimage)
	expiry := time.Now().Add(time.Hour)

	if _, err := alice.Submit(context.Background(), ChaincodeName, FnLock, lockArgs("swap-1", "bob", hashlock, expiry, 40)...); err != nil {
		t.Fatalf("Lock: %v", err)
	}
	if got := balanceOf(t, alice, "alice"); got != 60 {
		t.Fatalf("alice after lock = %d", got)
	}

	// Wrong preimage rejected.
	if _, err := bob.Submit(context.Background(), ChaincodeName, FnClaim, []byte("swap-1"), []byte(hex.EncodeToString([]byte("guess")))); err == nil {
		t.Fatal("wrong preimage claimed")
	}
	// Wrong party rejected.
	if _, err := alice.Submit(context.Background(), ChaincodeName, FnClaim, []byte("swap-1"), []byte(hex.EncodeToString(preimage))); err == nil {
		t.Fatal("sender claimed their own lock")
	}
	// Valid claim.
	data, err := bob.Submit(context.Background(), ChaincodeName, FnClaim, []byte("swap-1"), []byte(hex.EncodeToString(preimage)))
	if err != nil {
		t.Fatalf("Claim: %v", err)
	}
	lock, err := UnmarshalLock(data)
	if err != nil || lock.Status != StatusClaimed {
		t.Fatalf("lock = %+v, %v", lock, err)
	}
	if lock.Preimage != hex.EncodeToString(preimage) {
		t.Fatal("preimage not revealed on ledger")
	}
	if got := balanceOf(t, bob, "bob"); got != 40 {
		t.Fatalf("bob = %d", got)
	}
	// Double claim rejected.
	if _, err := bob.Submit(context.Background(), ChaincodeName, FnClaim, []byte("swap-1"), []byte(hex.EncodeToString(preimage))); err == nil {
		t.Fatal("double claim allowed")
	}
}

func TestRefundAfterExpiry(t *testing.T) {
	n := assetNet(t, "gold", relay.NewStaticRegistry(), relay.NewHub())
	alice := newClient(t, n, "gold-org-a", "alice")
	bob := newClient(t, n, "gold-org-b", "bob")
	mint(t, alice, "alice", 100)

	hashlock := HashPreimage([]byte("p"))
	past := time.Now().Add(-time.Minute)
	if _, err := alice.Submit(context.Background(), ChaincodeName, FnLock, lockArgs("swap-2", "bob", hashlock, past, 25)...); err != nil {
		t.Fatalf("Lock: %v", err)
	}
	// Claim after expiry fails.
	if _, err := bob.Submit(context.Background(), ChaincodeName, FnClaim, []byte("swap-2"), []byte(hex.EncodeToString([]byte("p")))); err == nil {
		t.Fatal("claim after expiry allowed")
	}
	// Refund by non-sender fails.
	if _, err := bob.Submit(context.Background(), ChaincodeName, FnRefund, []byte("swap-2")); err == nil {
		t.Fatal("non-sender refunded")
	}
	// Refund by sender succeeds.
	if _, err := alice.Submit(context.Background(), ChaincodeName, FnRefund, []byte("swap-2")); err != nil {
		t.Fatalf("Refund: %v", err)
	}
	if got := balanceOf(t, alice, "alice"); got != 100 {
		t.Fatalf("alice after refund = %d", got)
	}
}

func TestRefundBeforeExpiryRejected(t *testing.T) {
	n := assetNet(t, "gold", relay.NewStaticRegistry(), relay.NewHub())
	alice := newClient(t, n, "gold-org-a", "alice")
	mint(t, alice, "alice", 100)
	hashlock := HashPreimage([]byte("p"))
	if _, err := alice.Submit(context.Background(), ChaincodeName, FnLock, lockArgs("swap-3", "bob", hashlock, time.Now().Add(time.Hour), 5)...); err != nil {
		t.Fatalf("Lock: %v", err)
	}
	if _, err := alice.Submit(context.Background(), ChaincodeName, FnRefund, []byte("swap-3")); err == nil {
		t.Fatal("early refund allowed")
	}
}

func TestLockRequiresFunds(t *testing.T) {
	n := assetNet(t, "gold", relay.NewStaticRegistry(), relay.NewHub())
	alice := newClient(t, n, "gold-org-a", "alice")
	hashlock := HashPreimage([]byte("p"))
	_, err := alice.Submit(context.Background(), ChaincodeName, FnLock, lockArgs("swap-4", "bob", hashlock, time.Now().Add(time.Hour), 5)...)
	if err == nil || !strings.Contains(err.Error(), "insufficient") {
		t.Fatalf("unfunded lock: %v", err)
	}
}

// TestAtomicCrossNetworkSwap is the headline extension scenario: Alice and
// Bob swap gold (on one network) for silver (on another). Bob learns the
// preimage Alice revealed on the silver network through a trusted
// cross-network query — with a proof his own network's recorded
// verification policy accepts — rather than by trusting Alice.
func TestAtomicCrossNetworkSwap(t *testing.T) {
	hub := relay.NewHub()
	registry := relay.NewStaticRegistry()
	gold := assetNet(t, "gold", registry, hub)
	silver := assetNet(t, "silver", registry, hub)
	hub.Attach("gold-relay", gold.Relay)
	hub.Attach("silver-relay", silver.Relay)
	registry.Register("gold", "gold-relay")
	registry.Register("silver", "silver-relay")

	// Participants: Alice acts on both networks (cross-membership, like
	// the paper's SWT seller who is also an STL member); likewise Bob.
	aliceGold := newClient(t, gold, "gold-org-a", "alice")
	aliceSilver := newClient(t, silver, "silver-org-a", "alice")
	bobGold := newClient(t, gold, "gold-org-b", "bob")
	bobSilver := newClient(t, silver, "silver-org-b", "bob")

	mint(t, aliceGold, "alice", 100) // Alice holds gold
	mint(t, bobSilver, "bob", 50)    // Bob holds silver

	// Interop initialization: gold-net records silver-net's config and a
	// verification policy; silver-net grants Bob's gold-side org access to
	// GetLock (Bob will query the revealed preimage from gold-side).
	goldOrg, err := gold.Fabric.Org("gold-org-b")
	if err != nil {
		t.Fatal(err)
	}
	goldAdminID, _ := goldOrg.CA.Issue("gold-admin", msp.RoleAdmin)
	goldAdmin := gold.Fabric.Gateway(goldAdminID)
	silverOrg, err := silver.Fabric.Org("silver-org-a")
	if err != nil {
		t.Fatal(err)
	}
	silverAdminID, _ := silverOrg.CA.Issue("silver-admin", msp.RoleAdmin)
	silverAdmin := silver.Fabric.Gateway(silverAdminID)

	if err := gold.ConfigureForeignNetwork(goldAdmin, silver.ExportConfig()); err != nil {
		t.Fatal(err)
	}
	if err := gold.SetVerificationPolicy(goldAdmin, policy.VerificationPolicy{
		Network: "silver", Expr: "AND('silver-org-a.peer','silver-org-b.peer')",
	}); err != nil {
		t.Fatal(err)
	}
	if err := silver.ConfigureForeignNetwork(silverAdmin, gold.ExportConfig()); err != nil {
		t.Fatal(err)
	}
	if err := silver.GrantAccess(silverAdmin, policy.AccessRule{
		Network: "gold", Org: "gold-org-b", Chaincode: ChaincodeName, Function: FnGetLock,
	}); err != nil {
		t.Fatal(err)
	}

	// --- The swap ---
	preimage := []byte("alices-secret")
	hashlock := HashPreimage(preimage)
	goldExpiry := time.Now().Add(2 * time.Hour)   // Alice's lock: longer
	silverExpiry := time.Now().Add(1 * time.Hour) // Bob's lock: shorter

	// 1. Alice locks 40 gold for Bob.
	if _, err := aliceGold.Submit(context.Background(), ChaincodeName, FnLock, lockArgs("swap-g", "bob", hashlock, goldExpiry, 40)...); err != nil {
		t.Fatalf("Alice lock gold: %v", err)
	}
	// 2. Bob locks 20 silver for Alice under the same hashlock.
	if _, err := bobSilver.Submit(context.Background(), ChaincodeName, FnLock, lockArgs("swap-s", "alice", hashlock, silverExpiry, 20)...); err != nil {
		t.Fatalf("Bob lock silver: %v", err)
	}
	// 3. Alice claims the silver, revealing the preimage on silver-net.
	if _, err := aliceSilver.Submit(context.Background(), ChaincodeName, FnClaim, []byte("swap-s"), []byte(hex.EncodeToString(preimage))); err != nil {
		t.Fatalf("Alice claim silver: %v", err)
	}
	// 4. Bob fetches the revealed preimage from silver-net WITH PROOF via
	// his gold-side client (trusted data transfer, not trust in Alice).
	data, err := bobGold.RemoteQuery(context.Background(), core.RemoteQuerySpec{
		Network: "silver", Contract: ChaincodeName, Function: FnGetLock,
		Args: [][]byte{[]byte("swap-s")},
	})
	if err != nil {
		t.Fatalf("Bob cross-network GetLock: %v", err)
	}
	revealed, err := UnmarshalLock(data.Result)
	if err != nil {
		t.Fatalf("unmarshal revealed lock: %v", err)
	}
	if revealed.Status != StatusClaimed || revealed.Preimage == "" {
		t.Fatalf("revealed lock = %+v", revealed)
	}
	// 5. Bob claims the gold with the proven preimage.
	if _, err := bobGold.Submit(context.Background(), ChaincodeName, FnClaim, []byte("swap-g"), []byte(revealed.Preimage)); err != nil {
		t.Fatalf("Bob claim gold: %v", err)
	}

	// Final balances: the swap completed atomically.
	if got := balanceOf(t, bobGold, "bob"); got != 40 {
		t.Fatalf("bob gold = %d", got)
	}
	if got := balanceOf(t, aliceSilver, "alice"); got != 20 {
		t.Fatalf("alice silver = %d", got)
	}
	if got := balanceOf(t, aliceGold, "alice"); got != 60 {
		t.Fatalf("alice gold = %d", got)
	}
	if got := balanceOf(t, bobSilver, "bob"); got != 30 {
		t.Fatalf("bob silver = %d", got)
	}
}

func TestGetLockDeniedCrossNetworkWithoutRule(t *testing.T) {
	hub := relay.NewHub()
	registry := relay.NewStaticRegistry()
	gold := assetNet(t, "gold", registry, hub)
	silver := assetNet(t, "silver", registry, hub)
	hub.Attach("silver-relay", silver.Relay)
	registry.Register("silver", "silver-relay")

	// Record config + policy on gold so the query can be built, but grant
	// no rule on silver.
	goldOrg, _ := gold.Fabric.Org("gold-org-b")
	goldAdminID, _ := goldOrg.CA.Issue("admin", msp.RoleAdmin)
	goldAdmin := gold.Fabric.Gateway(goldAdminID)
	silverOrg, _ := silver.Fabric.Org("silver-org-a")
	silverAdminID, _ := silverOrg.CA.Issue("admin", msp.RoleAdmin)
	silverAdmin := silver.Fabric.Gateway(silverAdminID)
	_ = gold.ConfigureForeignNetwork(goldAdmin, silver.ExportConfig())
	_ = gold.SetVerificationPolicy(goldAdmin, policy.VerificationPolicy{
		Network: "silver", Expr: "'silver-org-a.peer'",
	})
	_ = silver.ConfigureForeignNetwork(silverAdmin, gold.ExportConfig())

	bobGold := newClient(t, gold, "gold-org-b", "bob")
	if _, err := bobGold.RemoteQuery(context.Background(), core.RemoteQuerySpec{
		Network: "silver", Contract: ChaincodeName, Function: FnGetLock,
		Args: [][]byte{[]byte("any")},
	}); err == nil {
		t.Fatal("cross-network GetLock without rule succeeded")
	}
}

func TestLockValidationErrors(t *testing.T) {
	n := assetNet(t, "gold", relay.NewStaticRegistry(), relay.NewHub())
	alice := newClient(t, n, "gold-org-a", "alice")
	mint(t, alice, "alice", 100)

	// Bad hashlock length.
	if _, err := alice.Submit(context.Background(), ChaincodeName, FnLock,
		[]byte("l1"), []byte("bob"), []byte("deadbeef"),
		[]byte(strconv.FormatInt(time.Now().Add(time.Hour).UnixNano(), 10)), []byte("5")); err == nil {
		t.Fatal("short hashlock accepted")
	}
	// Duplicate lock ID.
	h := HashPreimage([]byte("p"))
	args := lockArgs("dup", "bob", h, time.Now().Add(time.Hour), 5)
	if _, err := alice.Submit(context.Background(), ChaincodeName, FnLock, args...); err != nil {
		t.Fatalf("Lock: %v", err)
	}
	if _, err := alice.Submit(context.Background(), ChaincodeName, FnLock, args...); err == nil {
		t.Fatal("duplicate lock accepted")
	}
	// Claim on missing lock.
	if _, err := alice.Submit(context.Background(), ChaincodeName, FnClaim, []byte("ghost"), []byte("00")); err == nil {
		t.Fatal("claim on missing lock accepted")
	}
}

func TestErrorsAreTyped(t *testing.T) {
	if !errors.Is(fmt.Errorf("wrap: %w", ErrWrongPreimage), ErrWrongPreimage) {
		t.Fatal("ErrWrongPreimage does not wrap")
	}
}
