// Package deploy defines the on-disk artifacts that let the stand-alone
// binaries (cmd/relayd, cmd/interopctl, cmd/netadmin) cooperate across
// processes: a JSON client kit carrying the requesting client's key pair
// and certificate, the source network's recorded configuration, and the
// verification policy — the same material §3.3 assumes networks exchange
// during interop initialization.
package deploy

import (
	"crypto/ecdsa"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cryptoutil"
	"repro/internal/wire"
)

// Well-known file names inside a deployment directory.
const (
	RegistryFile = "registry.json"
	// JournalFile roots the append-only registry journal (plus its
	// generation, pointer, and lock sidecars); a RegistryFile next to it is
	// read as the journal's generation-0 base, which is the in-place
	// migration path from the flat-file registry.
	JournalFile   = "registry.jsonl"
	ClientKitFile = "client-kit.json"
	// RoutesFile records a relay's static multi-hop route table: the
	// targets it forwards toward and the hop TTL it stamps, written by
	// relayd and displayed by `netadmin route list`.
	RoutesFile = "routes.json"
)

// ClientKit is everything a destination-side client needs to issue trusted
// cross-network queries against a running relay.
type ClientKit struct {
	// RequestingNetwork is the client's own network ID.
	RequestingNetwork string `json:"requestingNetwork"`
	// Org is the client's organization within that network.
	Org string `json:"org"`
	// Name is the client identity name.
	Name string `json:"name"`
	// CertPEM is the client certificate (PEM).
	CertPEM []byte `json:"certPem"`
	// KeyPKCS8 is the client private key (PKCS#8 DER, base64 in JSON).
	KeyPKCS8 []byte `json:"keyPkcs8"`
	// SourceNetwork is the network the kit is provisioned to query.
	SourceNetwork string `json:"sourceNetwork"`
	// SourceConfigB64 is the source network's exported configuration
	// (wire.NetworkConfig, base64), used for client-side proof checks.
	SourceConfigB64 string `json:"sourceConfig"`
	// VerificationPolicy is the policy expression the source must satisfy.
	VerificationPolicy string `json:"verificationPolicy"`
	// Ledger, Contract and Function default the query target.
	Ledger   string `json:"ledger"`
	Contract string `json:"contract"`
	Function string `json:"function"`
}

// Key decodes the kit's private key.
func (k *ClientKit) Key() (*ecdsa.PrivateKey, error) {
	return cryptoutil.ParsePrivateKey(k.KeyPKCS8)
}

// SourceConfig decodes the recorded source network configuration.
func (k *ClientKit) SourceConfig() (*wire.NetworkConfig, error) {
	raw, err := base64.StdEncoding.DecodeString(k.SourceConfigB64)
	if err != nil {
		return nil, fmt.Errorf("deploy: source config: %w", err)
	}
	return wire.UnmarshalNetworkConfig(raw)
}

// SetSourceConfig encodes the source network configuration into the kit.
func (k *ClientKit) SetSourceConfig(cfg *wire.NetworkConfig) {
	k.SourceConfigB64 = base64.StdEncoding.EncodeToString(cfg.Marshal())
}

// SaveKit writes the kit into dir under the well-known name.
func SaveKit(dir string, kit *ClientKit) error {
	data, err := json.MarshalIndent(kit, "", "  ")
	if err != nil {
		return fmt.Errorf("deploy: encode kit: %w", err)
	}
	path := filepath.Join(dir, ClientKitFile)
	if err := os.WriteFile(path, data, 0o600); err != nil {
		return fmt.Errorf("deploy: write kit: %w", err)
	}
	return nil
}

// LoadKit reads the kit from dir.
func LoadKit(dir string) (*ClientKit, error) {
	path := filepath.Join(dir, ClientKitFile)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("deploy: read kit: %w", err)
	}
	var kit ClientKit
	if err := json.Unmarshal(data, &kit); err != nil {
		return nil, fmt.Errorf("deploy: parse kit: %w", err)
	}
	return &kit, nil
}

// RegistryPath returns the flat registry file path inside a deployment dir.
func RegistryPath(dir string) string {
	return filepath.Join(dir, RegistryFile)
}

// JournalPath returns the registry journal root path inside a deployment
// dir.
func JournalPath(dir string) string {
	return filepath.Join(dir, JournalFile)
}

// RouteSpec is one static route: a target network and the ordered via
// networks whose relays carry requests toward it. It mirrors the relay
// package's route entries without making deploy depend on it.
type RouteSpec struct {
	Target string   `json:"target"`
	Vias   []string `json:"vias"`
}

// RoutesConfig is the on-disk form of a relay's static route table.
type RoutesConfig struct {
	// MaxHops is the hop TTL stamped on routed envelopes (0 = the relay
	// default).
	MaxHops uint64      `json:"max_hops,omitempty"`
	Routes  []RouteSpec `json:"routes"`
}

// RoutesPath returns the route config path inside a deployment dir.
func RoutesPath(dir string) string {
	return filepath.Join(dir, RoutesFile)
}

// SaveRoutes writes the route config into dir under the well-known name.
func SaveRoutes(dir string, cfg *RoutesConfig) error {
	data, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return fmt.Errorf("deploy: encode routes: %w", err)
	}
	if err := os.WriteFile(RoutesPath(dir), append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("deploy: write routes: %w", err)
	}
	return nil
}

// LoadRoutes reads the route config from dir.
func LoadRoutes(dir string) (*RoutesConfig, error) {
	data, err := os.ReadFile(RoutesPath(dir))
	if err != nil {
		return nil, fmt.Errorf("deploy: read routes: %w", err)
	}
	var cfg RoutesConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("deploy: parse routes: %w", err)
	}
	return &cfg, nil
}
