package deploy

import (
	"path/filepath"
	"testing"

	"repro/internal/cryptoutil"
	"repro/internal/msp"
	"repro/internal/wire"
)

func TestKitRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ca, err := msp.NewCA("seller-bank-org")
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	key, err := cryptoutil.GenerateKey()
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	cert, err := ca.IssueForKey("client", msp.RoleClient, &key.PublicKey)
	if err != nil {
		t.Fatalf("IssueForKey: %v", err)
	}
	keyDER, err := cryptoutil.MarshalPrivateKey(key)
	if err != nil {
		t.Fatalf("MarshalPrivateKey: %v", err)
	}
	id := &msp.Identity{Name: "client", OrgID: "seller-bank-org", Role: msp.RoleClient, Cert: cert, Key: key}

	kit := &ClientKit{
		RequestingNetwork:  "we-trade",
		Org:                "seller-bank-org",
		Name:               "client",
		CertPEM:            id.CertPEM(),
		KeyPKCS8:           keyDER,
		SourceNetwork:      "tradelens",
		VerificationPolicy: "AND('a','b')",
		Ledger:             "default",
		Contract:           "TradeLensCC",
		Function:           "GetBillOfLading",
	}
	cfg := &wire.NetworkConfig{
		NetworkID: "tradelens",
		Platform:  "fabric",
		Orgs:      []wire.OrgConfig{{OrgID: "seller-org", RootCertPEM: ca.RootCertPEM()}},
	}
	kit.SetSourceConfig(cfg)

	if err := SaveKit(dir, kit); err != nil {
		t.Fatalf("SaveKit: %v", err)
	}
	loaded, err := LoadKit(dir)
	if err != nil {
		t.Fatalf("LoadKit: %v", err)
	}
	if loaded.RequestingNetwork != "we-trade" || loaded.SourceNetwork != "tradelens" {
		t.Fatalf("kit = %+v", loaded)
	}
	gotKey, err := loaded.Key()
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	if !gotKey.Equal(key) {
		t.Fatal("round-tripped key differs")
	}
	gotCfg, err := loaded.SourceConfig()
	if err != nil {
		t.Fatalf("SourceConfig: %v", err)
	}
	if gotCfg.NetworkID != "tradelens" || len(gotCfg.Orgs) != 1 {
		t.Fatalf("config = %+v", gotCfg)
	}
}

func TestLoadKitMissing(t *testing.T) {
	if _, err := LoadKit(t.TempDir()); err == nil {
		t.Fatal("missing kit loaded")
	}
}

func TestKitBadFields(t *testing.T) {
	kit := &ClientKit{KeyPKCS8: []byte("junk"), SourceConfigB64: "!!!"}
	if _, err := kit.Key(); err == nil {
		t.Fatal("junk key parsed")
	}
	if _, err := kit.SourceConfig(); err == nil {
		t.Fatal("junk config parsed")
	}
}

func TestRegistryPath(t *testing.T) {
	if RegistryPath("/x") != filepath.Join("/x", RegistryFile) {
		t.Fatal("RegistryPath mismatch")
	}
}
