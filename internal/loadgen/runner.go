package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/relay"
)

// Driver executes one operation on behalf of one simulated client. Workers
// are numbered 0..Clients-1; implementations typically hold one client
// identity per worker. Do must be safe for concurrent calls with distinct
// worker numbers.
type Driver interface {
	Do(ctx context.Context, worker int, op Op) error
}

// DriverFunc adapts a function to the Driver interface.
type DriverFunc func(ctx context.Context, worker int, op Op) error

// Do implements Driver.
func (f DriverFunc) Do(ctx context.Context, worker int, op Op) error { return f(ctx, worker, op) }

// Error classes for the run's error budget. Availability errors are the
// expected cost of churn — a relay dying under a request; contention
// errors are serializability at work — concurrent writes to a hot key,
// one invalidated at commit; protocol errors mean the system answered
// wrongly and are never acceptable.
const (
	ErrClassAvailability = "availability"
	ErrClassContention   = "contention"
	ErrClassProtocol     = "protocol"
)

// Classify buckets an operation error into the budget classes. Broken
// connections (EOF, resets, timeouts) count as availability alongside the
// relay's own unreachable/exhausted errors: a relay dying under an
// in-flight request surfaces the raw transport error — deliberately not
// failed over on the invoke path, where the outcome is ambiguous.
func Classify(err error) string {
	var netErr net.Error
	switch {
	case err == nil:
		return ""
	// A commit invalidated by a concurrent write reaches the requester as
	// an application error string inside the response — the wire flattens
	// the source relay's typed error, so the message is the only signal.
	case strings.Contains(err.Error(), "tx invalidated"):
		return ErrClassContention
	case errors.Is(err, relay.ErrUnreachable),
		errors.Is(err, relay.ErrAllRelaysFailed),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled),
		errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.As(err, &netErr):
		return ErrClassAvailability
	default:
		return ErrClassProtocol
	}
}

// clientStats is one worker's private tally; merged after the run so the
// hot path never shares memory across workers.
type clientStats struct {
	latency map[OpKind]*Histogram // successful ops, µs from Due
	ok      map[OpKind]uint64
	errs    map[OpKind]map[string]uint64
	samples map[string][]string // class → first few error messages
}

func newClientStats() *clientStats {
	c := &clientStats{
		latency: make(map[OpKind]*Histogram, len(OpKinds)),
		ok:      make(map[OpKind]uint64, len(OpKinds)),
		errs:    make(map[OpKind]map[string]uint64, len(OpKinds)),
		samples: make(map[string][]string),
	}
	for _, k := range OpKinds {
		c.latency[k] = NewHistogram()
		c.errs[k] = make(map[string]uint64)
	}
	return c
}

// maxErrorSamples bounds how many error messages are kept per class —
// enough to diagnose a budget breach without hoarding a failing run's
// entire output.
const maxErrorSamples = 5

// RunStats is the merged outcome of a run, latencies in microseconds.
type RunStats struct {
	Issued       uint64
	OK           uint64
	Failed       uint64
	Wall         time.Duration
	Latency      map[OpKind]*Histogram
	OKByKind     map[OpKind]uint64
	ErrsByKind   map[OpKind]map[string]uint64
	ErrsByClass  map[string]uint64
	ErrorSamples map[string][]string
}

// AchievedRate is the completed-operations throughput in ops/sec.
func (s *RunStats) AchievedRate() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.OK) / s.Wall.Seconds()
}

// All returns one histogram holding every successful operation.
func (s *RunStats) All() *Histogram {
	all := NewHistogram()
	for _, h := range s.Latency {
		all.Merge(h)
	}
	return all
}

// Run drives the configured open-loop schedule against the driver with
// cfg.Clients concurrent workers and returns the merged statistics. ctx
// cancellation stops the schedule; workers drain what was already issued.
func Run(ctx context.Context, cfg *Config, d Driver) (*RunStats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	ops := schedule(ctx, cfg, start)

	perClient := make([]*clientStats, cfg.Clients)
	var issued atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Clients; w++ {
		perClient[w] = newClientStats()
		wg.Add(1)
		go func(w int, cs *clientStats) {
			defer wg.Done()
			for op := range ops {
				issued.Add(1)
				err := d.Do(ctx, w, op)
				if class := Classify(err); class != "" {
					cs.errs[op.Kind][class]++
					if len(cs.samples[class]) < maxErrorSamples {
						cs.samples[class] = append(cs.samples[class], fmt.Sprintf("%s: %v", op.Kind, err))
					}
					continue
				}
				cs.ok[op.Kind]++
				cs.latency[op.Kind].Record(time.Since(op.Due).Microseconds())
			}
		}(w, perClient[w])
	}
	wg.Wait()

	stats := &RunStats{
		Issued:       issued.Load(),
		Wall:         time.Since(start),
		Latency:      make(map[OpKind]*Histogram, len(OpKinds)),
		OKByKind:     make(map[OpKind]uint64, len(OpKinds)),
		ErrsByKind:   make(map[OpKind]map[string]uint64, len(OpKinds)),
		ErrsByClass:  make(map[string]uint64),
		ErrorSamples: make(map[string][]string),
	}
	for _, k := range OpKinds {
		stats.Latency[k] = NewHistogram()
		stats.ErrsByKind[k] = make(map[string]uint64)
	}
	for _, cs := range perClient {
		for _, k := range OpKinds {
			stats.Latency[k].Merge(cs.latency[k])
			stats.OKByKind[k] += cs.ok[k]
			stats.OK += cs.ok[k]
			for class, n := range cs.errs[k] {
				stats.ErrsByKind[k][class] += n
				stats.ErrsByClass[class] += n
				stats.Failed += n
			}
		}
		for class, msgs := range cs.samples {
			room := maxErrorSamples - len(stats.ErrorSamples[class])
			if room > len(msgs) {
				room = len(msgs)
			}
			if room > 0 {
				stats.ErrorSamples[class] = append(stats.ErrorSamples[class], msgs[:room]...)
			}
		}
	}
	return stats, nil
}
