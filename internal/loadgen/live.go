package loadgen

import (
	"context"
	"fmt"
	"time"

	"repro/internal/apps/scenario"
	"repro/internal/apps/tradelens"
	"repro/internal/apps/wetrade"
	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/relay"
	"repro/internal/wire"
)

// keyRef names the seeded purchase order for a key index.
func keyRef(key int) string { return fmt.Sprintf("po-lg-%03d", key) }

// issuedInvoke is one invoke the generator sent, remembered for the
// post-run ledger audit.
type issuedInvoke struct {
	txID string
	ok   bool
}

// liveDriver executes operations against a scenario TCP deployment: one
// core client per worker, real sockets between the destination relay and
// the source relay fleet.
type liveDriver struct {
	world   *scenario.TradeWorld
	clients []*core.Client
	// hops is the expected verified path length on every query answer: one
	// per forwarding hub in a chain deployment, zero when direct.
	hops int
	// invokes[w] is worker w's private append log — no locking on the hot
	// path, collected after the run.
	invokes [][]issuedInvoke
}

func newLiveDriver(w *scenario.TradeWorld, workers, hops int) (*liveDriver, error) {
	d := &liveDriver{world: w, hops: hops, invokes: make([][]issuedInvoke, workers)}
	for i := 0; i < workers; i++ {
		c, err := core.NewClient(w.SWT, wetrade.SellerBankOrg, fmt.Sprintf("lg-client-%d", i))
		if err != nil {
			return nil, fmt.Errorf("loadgen: client %d: %w", i, err)
		}
		d.clients = append(d.clients, c)
	}
	return d, nil
}

// Do implements Driver.
func (d *liveDriver) Do(ctx context.Context, worker int, op Op) error {
	client := d.clients[worker]
	switch op.Kind {
	case OpQuery:
		// Empty RequestID: a fresh nonce per issue, so the source relay
		// must build (sign + encrypt) a new proof — the cold path.
		return d.checkData(client.RemoteQuery(ctx, core.RemoteQuerySpec{
			Network: tradelens.NetworkID, Contract: tradelens.ChaincodeName,
			Function: tradelens.FnGetBillOfLading, Args: [][]byte{[]byte(keyRef(op.Key))},
		}))
	case OpWarmQuery:
		// A fixed (client, key) request ID derives a deterministic nonce,
		// so the wire query is byte-identical on every issue and the
		// source relay's attestation cache answers after the first.
		return d.checkData(client.RemoteQuery(ctx, core.RemoteQuerySpec{
			Network: tradelens.NetworkID, Contract: tradelens.ChaincodeName,
			Function: tradelens.FnGetBillOfLading, Args: [][]byte{[]byte(keyRef(op.Key))},
			RequestID: fmt.Sprintf("lg-warm-%d-%d", worker, op.Key),
		}))
	case OpInvoke:
		return d.doInvoke(ctx, worker, op)
	case OpSubscribe:
		_, cancel, err := client.SubscribeRemoteEvents(ctx, tradelens.NetworkID, "lg-event")
		if err != nil {
			return err
		}
		cancel()
		return nil
	default:
		return fmt.Errorf("loadgen: unknown op kind %q", op.Kind)
	}
}

// doInvoke sends a writable append under a run-unique idempotency key,
// retrying the two transient outcomes the way a production client would,
// always under the same key: an availability failure (a relay dying under
// the request) leaves the outcome ambiguous and the ledger-anchored dedup
// resolves the retry; a contention failure (the commit invalidated by a
// concurrent write to the same hot key) committed nothing and is safe to
// resubmit. Every issue is remembered for the exactly-once audit.
func (d *liveDriver) doInvoke(ctx context.Context, worker int, op Op) error {
	client := d.clients[worker]
	spec := core.RemoteQuerySpec{
		Network: tradelens.NetworkID, Contract: scenario.AuditChaincodeName, Function: "Append",
		Args:      [][]byte{[]byte(keyRef(op.Key)), []byte(fmt.Sprintf("op-%d;", op.Seq))},
		RequestID: fmt.Sprintf("lg-inv-%d-%d", worker, op.Seq),
	}
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		_, err = client.RemoteInvoke(ctx, spec)
		if class := Classify(err); class != ErrClassAvailability && class != ErrClassContention {
			break
		}
	}
	d.invokes[worker] = append(d.invokes[worker], issuedInvoke{
		txID: relay.InteropTxID(&wire.Query{
			RequestID:         spec.RequestID,
			RequestingNetwork: wetrade.NetworkID,
			RequesterCertPEM:  client.Identity().CertPEM(),
		}),
		ok: err == nil,
	})
	return err
}

// checkData converts an empty successful query result into a protocol
// error: the seeded key space guarantees every query has an answer. In a
// chain deployment the verified hop path must name every hub — a shorter
// path means a forwarding tier was bypassed or its pin dropped.
func (d *liveDriver) checkData(data *core.RemoteData, err error) error {
	if err != nil {
		return err
	}
	if len(data.Result) == 0 {
		return fmt.Errorf("loadgen: empty result for a seeded key")
	}
	if len(data.Path) != d.hops {
		return fmt.Errorf("loadgen: verified hop path has %d pins, want %d", len(data.Path), d.hops)
	}
	return nil
}

// auditExactlyOnce scans the source ledger once and judges every issued
// invoke: an invoke the generator saw succeed must have exactly one valid
// commit; no idempotency key may ever have more than one.
func (d *liveDriver) auditExactlyOnce() Audit {
	validByTx := make(map[string]int)
	peer := d.world.STL.Fabric.AllPeers()[0]
	blocks := peer.Blocks()
	for num := uint64(0); num < blocks.Height(); num++ {
		b, err := blocks.Block(num)
		if err != nil {
			continue
		}
		for _, tx := range b.Transactions {
			if tx.Validation == ledger.Valid {
				validByTx[tx.ID]++
			}
		}
	}
	var audit Audit
	for _, worker := range d.invokes {
		for _, inv := range worker {
			audit.InvokesIssued++
			valid := validByTx[inv.txID]
			audit.ValidCommits += valid
			if valid > 1 {
				audit.DuplicateCommits += valid - 1
			}
			if inv.ok && valid == 0 {
				audit.MissingCommits++
			}
		}
	}
	return audit
}

// churner injects relay faults: every interval it kills one source relay,
// holds it down for half the interval, restarts it, and moves to the next.
type churner struct {
	servers  []*scenario.TCPRelayServer
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
	kills    int
}

func startChurner(servers []*scenario.TCPRelayServer, interval time.Duration) *churner {
	c := &churner{servers: servers, interval: interval, stop: make(chan struct{}), done: make(chan struct{})}
	go c.run()
	return c
}

func (c *churner) run() {
	defer close(c.done)
	for i := 0; ; i++ {
		select {
		case <-time.After(c.interval / 2):
		case <-c.stop:
			return
		}
		victim := c.servers[i%len(c.servers)]
		if err := victim.Kill(); err != nil {
			continue
		}
		c.kills++
		select {
		case <-time.After(c.interval / 2):
		case <-c.stop:
		}
		// Always restart — even on the way out, the deployment is left
		// whole so the post-run audit and stats window see a full fleet.
		_ = victim.Restart()
		select {
		case <-c.stop:
			return
		default:
		}
	}
}

// halt stops injection and waits for any in-progress kill to be restarted.
func (c *churner) halt() int {
	close(c.stop)
	<-c.done
	return c.kills
}

// fleetStats sums a consistent snapshot from every relay in the
// deployment — origin, forwarding hubs, and source fleet alike.
func fleetStats(servers []*scenario.TCPRelayServer) relay.Stats {
	var sum relay.Stats
	for _, s := range servers {
		sum = sum.Merge(s.Relay.Stats())
	}
	return sum
}

// liveDeployment abstracts the two TCP topologies the generator drives: the
// flat source fleet and the multi-hop relay chain.
type liveDeployment interface {
	AllServers() []*scenario.TCPRelayServer
	Close()
}

// RunLive builds the TCP deployment, seeds the key space, drives the
// configured workload against it, and returns the full report: latency
// percentiles per operation class, throughput, the error budget, the
// relay fleet's counter window, and the exactly-once audit.
func RunLive(ctx context.Context, cfg *Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	startedAt := time.Now()
	var (
		dep liveDeployment
		w   *scenario.TradeWorld
		// stlServers front the source network (batching knobs apply there);
		// churnPool is what the fault injector kills — the source fleet in a
		// flat deployment, the origin-adjacent hub tier in a chain.
		stlServers []*scenario.TCPRelayServer
		churnPool  []*scenario.TCPRelayServer
	)
	if cfg.HubHops > 0 {
		chain, err := scenario.BuildTCPChain(cfg.HubHops, cfg.hubRelays(), cfg.tuning())
		if err != nil {
			return nil, err
		}
		dep, w = chain, chain.World
		stlServers = []*scenario.TCPRelayServer{chain.STLServer}
		churnPool = chain.Hubs[0].Servers
	} else {
		flat, err := scenario.BuildTCP(cfg.ExtraSTLRelays, cfg.tuning())
		if err != nil {
			return nil, err
		}
		dep, w = flat, flat.World
		stlServers = flat.STLServers
		churnPool = flat.STLServers
	}
	defer dep.Close()
	// The scenario builders arm batching with conservative defaults on
	// every driver; the config can widen the window or switch batching off
	// entirely for the per-query-signature baseline.
	switch {
	case cfg.AttestBatchOff:
		for _, srv := range dep.AllServers() {
			if srv.Driver != nil {
				srv.Driver.ConfigureAttestationBatching(0, 0)
			}
		}
	case cfg.AttestBatchWindow > 0:
		// Batching is a per-driver knob: every relay fronting the source
		// network (primary and redundant alike) groups concurrent queries
		// into Merkle windows.
		for _, srv := range stlServers {
			if srv.Driver != nil {
				srv.Driver.ConfigureAttestationBatching(cfg.AttestBatchWindow, cfg.attestBatchMax())
			}
		}
	}
	if err := scenario.DeployAuditLog(w); err != nil {
		return nil, err
	}
	actors, err := w.NewActors()
	if err != nil {
		return nil, err
	}
	refs := make([]string, cfg.Keys)
	for i := range refs {
		refs[i] = keyRef(i)
	}
	if err := scenario.SeedShipments(ctx, actors, refs...); err != nil {
		return nil, err
	}
	driver, err := newLiveDriver(w, cfg.Clients, cfg.HubHops)
	if err != nil {
		return nil, err
	}

	baseline := fleetStats(dep.AllServers())
	var faults *churner
	if cfg.Churn {
		faults = startChurner(churnPool, cfg.churnInterval())
	}
	stats, err := Run(ctx, cfg, driver)
	kills := 0
	if faults != nil {
		kills = faults.halt()
	}
	if err != nil {
		return nil, err
	}
	window := fleetStats(dep.AllServers()).Sub(baseline)

	report := NewReport(cfg, stats, window, startedAt)
	report.Churn = kills
	audit := driver.auditExactlyOnce()
	report.Audit = &audit
	return report, nil
}

var _ Driver = (*liveDriver)(nil)
