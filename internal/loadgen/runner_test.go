package loadgen

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/relay"
)

func testConfig() *Config {
	return &Config{
		Clients: 8, Rate: 2000, Duration: time.Second,
		Mix:  Mix{QueryPct: 60, WarmQueryPct: 20, InvokePct: 15, SubscribePct: 5},
		Keys: 32, Seed: 11,
	}
}

// TestOpenLoopSustainsOfferedRate: against a no-op driver the generator
// must deliver the whole schedule — rate × duration operations — and the
// run must take no longer than the schedule plus drain slack. This is the
// open-loop property: arrivals are driven by the clock, not completions.
func TestOpenLoopSustainsOfferedRate(t *testing.T) {
	cfg := testConfig()
	noop := DriverFunc(func(context.Context, int, Op) error { return nil })
	stats, err := Run(context.Background(), cfg, noop)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := uint64(cfg.Rate * cfg.Duration.Seconds())
	if stats.Issued != want {
		t.Fatalf("issued = %d, want the full schedule of %d", stats.Issued, want)
	}
	if stats.OK != want || stats.Failed != 0 {
		t.Fatalf("ok/failed = %d/%d, want %d/0", stats.OK, stats.Failed, want)
	}
	if stats.Wall > cfg.Duration+2*time.Second {
		t.Fatalf("wall = %s, schedule should finish near %s", stats.Wall, cfg.Duration)
	}
	if ar := stats.AchievedRate(); ar < cfg.Rate*0.8 {
		t.Fatalf("achieved rate %.1f, want ≥ 80%% of offered %.1f", ar, cfg.Rate)
	}
	// The seeded mix must produce every op class.
	for _, k := range OpKinds {
		if stats.OKByKind[k] == 0 {
			t.Fatalf("kind %s never scheduled", k)
		}
	}
}

// TestOpenLoopLatencyIncludesQueueing: a driver that stalls must see the
// stall charged to latency measured from the scheduled due time, not from
// service start — the anti-coordinated-omission property.
func TestOpenLoopLatencyIncludesQueueing(t *testing.T) {
	cfg := testConfig()
	cfg.Clients = 1
	cfg.Rate = 100
	cfg.Duration = 500 * time.Millisecond
	cfg.Mix = Mix{QueryPct: 100}
	stall := 30 * time.Millisecond
	driver := DriverFunc(func(context.Context, int, Op) error {
		time.Sleep(stall)
		return nil
	})
	stats, err := Run(context.Background(), cfg, driver)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// One worker at ~33 ops/s against 100 offered: the queue grows, so
	// p99 latency must be far above the 30ms service time.
	if p99 := stats.Latency[OpQuery].Percentile(99); p99 < 5*stall.Microseconds() {
		t.Fatalf("p99 = %dµs; queueing delay was absorbed (coordinated omission)", p99)
	}
}

// TestRunErrorBudgetClassification: transport-flavored failures land in
// the availability class, everything else in protocol, tallied per kind
// and per class consistently.
func TestRunErrorBudgetClassification(t *testing.T) {
	cfg := testConfig()
	cfg.Rate, cfg.Duration = 1000, 500*time.Millisecond
	var mu sync.Mutex
	issued := map[OpKind]int{}
	driver := DriverFunc(func(_ context.Context, _ int, op Op) error {
		mu.Lock()
		issued[op.Kind]++
		n := issued[op.Kind]
		mu.Unlock()
		switch {
		case n%10 == 0:
			return fmt.Errorf("dial: %w", relay.ErrUnreachable)
		case n%7 == 0:
			return fmt.Errorf("bad proof")
		default:
			return nil
		}
	})
	stats, err := Run(context.Background(), cfg, driver)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.ErrsByClass[ErrClassAvailability] == 0 || stats.ErrsByClass[ErrClassProtocol] == 0 {
		t.Fatalf("error classes = %v, want both populated", stats.ErrsByClass)
	}
	var byKind uint64
	for _, k := range OpKinds {
		for _, n := range stats.ErrsByKind[k] {
			byKind += n
		}
	}
	if total := stats.ErrsByClass[ErrClassAvailability] + stats.ErrsByClass[ErrClassProtocol]; byKind != total || stats.Failed != total {
		t.Fatalf("per-kind %d, per-class %d, failed %d must agree", byKind, total, stats.Failed)
	}
	if stats.OK+stats.Failed != stats.Issued {
		t.Fatalf("ok %d + failed %d != issued %d", stats.OK, stats.Failed, stats.Issued)
	}
}

// TestClassify pins the budget boundary.
func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{relay.ErrUnreachable, ErrClassAvailability},
		{fmt.Errorf("wrapped: %w", relay.ErrAllRelaysFailed), ErrClassAvailability},
		{context.DeadlineExceeded, ErrClassAvailability},
		{context.Canceled, ErrClassAvailability},
		// The ambiguous-invoke shape: a relay killed under an in-flight
		// request surfaces the raw broken-connection error, unwrapped.
		{fmt.Errorf("relay: reply from 127.0.0.1:9: %w", io.EOF), ErrClassAvailability},
		{fmt.Errorf("read: %w", &net.OpError{Op: "read", Err: fmt.Errorf("connection reset")}), ErrClassAvailability},
		// A write conflict arrives as a flattened application error string.
		{fmt.Errorf("proof: remote error: relay: cross-network tx invalidated: mvcc-conflict"), ErrClassContention},
		{fmt.Errorf("verification failed"), ErrClassProtocol},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

// TestConfigValidate rejects the configurations the runner cannot honor.
func TestConfigValidate(t *testing.T) {
	breakers := map[string]func(*Config){
		"zero clients":     func(c *Config) { c.Clients = 0 },
		"zero rate":        func(c *Config) { c.Rate = 0 },
		"zero duration":    func(c *Config) { c.Duration = 0 },
		"mix not 100":      func(c *Config) { c.Mix.QueryPct = 50 },
		"one key":          func(c *Config) { c.Keys = 1 },
		"zipf too flat":    func(c *Config) { c.ZipfS = 0.9 },
		"bad arrival":      func(c *Config) { c.Arrival = "bursty" },
		"churn no standby": func(c *Config) { c.Churn = true; c.ExtraSTLRelays = 0 },
	}
	for name, mutate := range breakers {
		cfg := testConfig()
		mutate(cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid config", name)
		}
	}
	if err := testConfig().Validate(); err != nil {
		t.Errorf("baseline config rejected: %v", err)
	}
	for name, preset := range Presets {
		p := preset
		if err := p.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
	}
}

// TestScheduleDeterministicMixAndKeys: the same seed yields the same
// sequence of kinds and keys, and the key distribution is zipf-skewed —
// the hottest key dominates a uniform share.
func TestScheduleDeterministicMixAndKeys(t *testing.T) {
	collect := func() []Op {
		cfg := testConfig()
		cfg.Rate, cfg.Duration = 5000, 200*time.Millisecond
		var mu sync.Mutex
		var got []Op
		driver := DriverFunc(func(_ context.Context, _ int, op Op) error {
			mu.Lock()
			got = append(got, op)
			mu.Unlock()
			return nil
		})
		if _, err := Run(context.Background(), cfg, driver); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return got
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("run sizes differ: %d vs %d", len(a), len(b))
	}
	bySeq := func(ops []Op) map[int]Op {
		m := make(map[int]Op, len(ops))
		for _, op := range ops {
			m[op.Seq] = op
		}
		return m
	}
	am, bm := bySeq(a), bySeq(b)
	keyCounts := map[int]int{}
	for seq, opA := range am {
		opB := bm[seq]
		if opA.Kind != opB.Kind || opA.Key != opB.Key {
			t.Fatalf("seq %d differs across seeded runs: %+v vs %+v", seq, opA, opB)
		}
		keyCounts[opA.Key]++
	}
	if hottest := keyCounts[0]; hottest*4 < len(a) {
		t.Fatalf("zipf skew missing: key 0 got %d of %d ops", hottest, len(a))
	}
}
