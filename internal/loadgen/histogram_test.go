package loadgen

import (
	"math/rand"
	"testing"
)

// TestHistogramExactBelowSubBucketRange: values under 2^subBits are stored
// exactly, so nearest-rank percentiles over 1..100 are the textbook
// answers with no quantization at all.
func TestHistogramExactBelowSubBucketRange(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 100; v++ {
		h.Record(v)
	}
	cases := []struct {
		p    float64
		want int64
	}{
		{50, 50},    // rank ceil(0.50*100) = 50
		{90, 90},    // rank 90
		{99, 99},    // rank 99
		{99.9, 100}, // rank ceil(99.9) = 100
		{100, 100},
	}
	for _, c := range cases {
		if got := h.Percentile(c.p); got != c.want {
			t.Errorf("Percentile(%v) = %d, want %d", c.p, got, c.want)
		}
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("min/max = %d/%d, want 1/100", h.Min(), h.Max())
	}
	if h.Count() != 100 {
		t.Errorf("count = %d, want 100", h.Count())
	}
	if mean := h.Mean(); mean != 50.5 {
		t.Errorf("mean = %v, want 50.5", mean)
	}
}

// TestHistogramQuantizedPercentiles: above the exact range, percentiles
// return the lowest value equivalent to the true rank value — the
// documented contract, asserted with LowestEquivalent rather than a
// tolerance band.
func TestHistogramQuantizedPercentiles(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 10_000; v++ {
		h.Record(v)
	}
	for _, c := range []struct {
		p    float64
		rank int64
	}{{50, 5000}, {90, 9000}, {99, 9900}, {99.9, 9990}, {100, 10_000}} {
		want := LowestEquivalent(c.rank)
		if got := h.Percentile(c.p); got != want {
			t.Errorf("Percentile(%v) = %d, want LowestEquivalent(%d) = %d", c.p, got, c.rank, want)
		}
	}
	// Max is exact even though its bucket is wide.
	if h.Max() != 10_000 {
		t.Errorf("max = %d, want exactly 10000", h.Max())
	}
}

// TestLowestEquivalentProperties pins the bucket geometry: identity below
// 2^subBits, idempotence, monotonicity, and bounded relative error
// everywhere.
func TestLowestEquivalentProperties(t *testing.T) {
	for v := int64(0); v < 1<<subBits; v++ {
		if got := LowestEquivalent(v); got != v {
			t.Fatalf("LowestEquivalent(%d) = %d, want identity below 2^%d", v, got, subBits)
		}
	}
	r := rand.New(rand.NewSource(7))
	prev := int64(-1)
	for i := 0; i < 100_000; i++ {
		v := r.Int63n(1 << 40)
		le := LowestEquivalent(v)
		if le > v {
			t.Fatalf("LowestEquivalent(%d) = %d > v", v, le)
		}
		if got := LowestEquivalent(le); got != le {
			t.Fatalf("LowestEquivalent not idempotent at %d: %d", le, got)
		}
		// Quantization error bound: bucket width / value ≤ 2^-subBits.
		if v > 0 && float64(v-le)/float64(v) > 1.0/float64(int64(1)<<subBits) {
			t.Fatalf("relative error at %d is %d (> 2^-%d of value)", v, v-le, subBits)
		}
		_ = prev
	}
	// Monotonic over a dense sweep crossing several bucket blocks.
	prev = 0
	for v := int64(0); v < 1<<14; v++ {
		le := LowestEquivalent(v)
		if le < prev {
			t.Fatalf("LowestEquivalent not monotonic at %d: %d < %d", v, le, prev)
		}
		prev = le
	}
}

// TestHistogramMergeEqualsGlobal: samples split across per-client
// histograms and merged must be indistinguishable from one histogram that
// saw everything — count, min, max, mean and every percentile.
func TestHistogramMergeEqualsGlobal(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	global := NewHistogram()
	parts := make([]*Histogram, 4)
	for i := range parts {
		parts[i] = NewHistogram()
	}
	for i := 0; i < 50_000; i++ {
		v := r.Int63n(1 << 30)
		global.Record(v)
		parts[r.Intn(len(parts))].Record(v)
	}
	merged := NewHistogram()
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != global.Count() || merged.Min() != global.Min() || merged.Max() != global.Max() {
		t.Fatalf("merged count/min/max = %d/%d/%d, global %d/%d/%d",
			merged.Count(), merged.Min(), merged.Max(), global.Count(), global.Min(), global.Max())
	}
	if merged.Mean() != global.Mean() {
		t.Fatalf("merged mean %v != global %v", merged.Mean(), global.Mean())
	}
	for p := 0.5; p <= 100; p += 0.5 {
		if m, g := merged.Percentile(p), global.Percentile(p); m != g {
			t.Fatalf("Percentile(%v): merged %d != global %d", p, m, g)
		}
	}
}

// TestHistogramEmptyAndClamp: an empty histogram reports zeros, and
// negative samples clamp to zero instead of corrupting state.
func TestHistogramEmptyAndClamp(t *testing.T) {
	h := NewHistogram()
	if h.Percentile(99) != 0 || h.Max() != 0 || h.Min() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(-5)
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative sample: count=%d min=%d max=%d, want 1/0/0", h.Count(), h.Min(), h.Max())
	}
	s := h.Summarize()
	if s.Count != 1 || s.P999 != 0 {
		t.Fatalf("summary = %+v", s)
	}
}
