package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/relay"
)

// DefaultOutput is where reports land unless the config says otherwise.
const DefaultOutput = "BENCH_loadgen.json"

// LatencyMs is a latency summary converted from the histogram's
// microseconds to milliseconds for the report.
type LatencyMs struct {
	Mean float64 `json:"mean_ms"`
	P50  float64 `json:"p50_ms"`
	P90  float64 `json:"p90_ms"`
	P99  float64 `json:"p99_ms"`
	P999 float64 `json:"p999_ms"`
	Max  float64 `json:"max_ms"`
}

func latencyMs(s Summary) LatencyMs {
	ms := func(us int64) float64 { return float64(us) / 1000 }
	return LatencyMs{
		Mean: s.Mean / 1000,
		P50:  ms(s.P50), P90: ms(s.P90), P99: ms(s.P99), P999: ms(s.P999), Max: ms(s.Max),
	}
}

// OpReport is one operation class's outcome.
type OpReport struct {
	OK      uint64            `json:"ok"`
	Errors  map[string]uint64 `json:"errors,omitempty"`
	Latency LatencyMs         `json:"latency"`
}

// RelayWindow is the fleet-merged relay activity during the run: the
// difference between each relay's counters after and before, summed.
type RelayWindow struct {
	relay.Stats
	AttestationCacheHitRate float64 `json:"attestation_cache_hit_rate"`
}

// Audit is the post-run exactly-once verdict, judged against the source
// ledger: every invoke the generator issued must have exactly one valid
// commit, no matter how many retries or relay deaths happened in between.
type Audit struct {
	InvokesIssued    int `json:"invokes_issued"`
	ValidCommits     int `json:"valid_commits"`
	DuplicateCommits int `json:"duplicate_commits"`
	MissingCommits   int `json:"missing_commits"`
}

// Clean reports whether the exactly-once invariant held.
func (a Audit) Clean() bool { return a.DuplicateCommits == 0 && a.MissingCommits == 0 }

// Report is the complete outcome of one load-generation run — what
// BENCH_loadgen.json holds.
type Report struct {
	Preset       string    `json:"preset,omitempty"`
	Config       Config    `json:"config"`
	StartedAt    time.Time `json:"started_at"`
	WallSec      float64   `json:"wall_sec"`
	OfferedRate  float64   `json:"offered_rate"`
	AchievedRate float64   `json:"achieved_rate"`

	Issued uint64 `json:"issued"`
	OK     uint64 `json:"ok"`
	Failed uint64 `json:"failed"`

	// ErrorBudget is the failure count per class; availability failures
	// are the priced-in cost of churn, protocol failures are defects.
	ErrorBudget map[string]uint64 `json:"error_budget,omitempty"`
	// ErrorSamples holds the first few error messages per class, for
	// diagnosing a budget breach from the report alone.
	ErrorSamples map[string][]string `json:"error_samples,omitempty"`

	Overall LatencyMs           `json:"overall"`
	Ops     map[OpKind]OpReport `json:"ops"`
	Relay   RelayWindow         `json:"relay"`
	Audit   *Audit              `json:"exactly_once,omitempty"`
	Churn   int                 `json:"churn_kills,omitempty"`
}

// NewReport assembles a report from run statistics and the relay window.
func NewReport(cfg *Config, stats *RunStats, window relay.Stats, startedAt time.Time) *Report {
	r := &Report{
		Preset:       cfg.Preset,
		Config:       *cfg,
		StartedAt:    startedAt,
		WallSec:      stats.Wall.Seconds(),
		OfferedRate:  cfg.Rate,
		AchievedRate: stats.AchievedRate(),
		Issued:       stats.Issued,
		OK:           stats.OK,
		Failed:       stats.Failed,
		ErrorBudget:  stats.ErrsByClass,
		ErrorSamples: stats.ErrorSamples,
		Overall:      latencyMs(stats.All().Summarize()),
		Ops:          make(map[OpKind]OpReport, len(OpKinds)),
		Relay: RelayWindow{
			Stats:                   window,
			AttestationCacheHitRate: window.AttestationCacheHitRate(),
		},
	}
	for _, k := range OpKinds {
		h := stats.Latency[k]
		if h.Count() == 0 && len(stats.ErrsByKind[k]) == 0 {
			continue
		}
		r.Ops[k] = OpReport{
			OK:      stats.OKByKind[k],
			Errors:  stats.ErrsByKind[k],
			Latency: latencyMs(h.Summarize()),
		}
	}
	return r
}

// ProtocolErrors returns the count of budget-breaking failures.
func (r *Report) ProtocolErrors() uint64 { return r.ErrorBudget[ErrClassProtocol] }

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	if path == "" {
		path = DefaultOutput
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("loadgen: marshal report: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("loadgen: write report: %w", err)
	}
	return nil
}

// Table renders the report for humans.
func (r *Report) Table() string {
	var b strings.Builder
	name := r.Preset
	if name == "" {
		name = "custom"
	}
	fmt.Fprintf(&b, "loadgen %s: %d clients, offered %.0f ops/s for %.1fs (achieved %.1f ops/s)\n",
		name, r.Config.Clients, r.OfferedRate, r.WallSec, r.AchievedRate)
	fmt.Fprintf(&b, "ops: %d issued, %d ok, %d failed", r.Issued, r.OK, r.Failed)
	if len(r.ErrorBudget) > 0 {
		classes := make([]string, 0, len(r.ErrorBudget))
		for c := range r.ErrorBudget {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		parts := make([]string, 0, len(classes))
		for _, c := range classes {
			parts = append(parts, fmt.Sprintf("%s=%d", c, r.ErrorBudget[c]))
		}
		fmt.Fprintf(&b, " (%s)", strings.Join(parts, ", "))
	}
	b.WriteString("\n\n")

	fmt.Fprintf(&b, "%-11s %9s %9s %9s %9s %9s %9s\n", "op", "ok", "p50 ms", "p90 ms", "p99 ms", "p999 ms", "max ms")
	row := func(name string, ok uint64, l LatencyMs) {
		fmt.Fprintf(&b, "%-11s %9d %9.2f %9.2f %9.2f %9.2f %9.2f\n", name, ok, l.P50, l.P90, l.P99, l.P999, l.Max)
	}
	for _, k := range OpKinds {
		if op, present := r.Ops[k]; present {
			row(string(k), op.OK, op.Latency)
		}
	}
	row("overall", r.OK, r.Overall)

	s := r.Relay
	fmt.Fprintf(&b, "\nrelay window: queries=%d invokes=%d replays=%d hedgedWins=%d breakerSkips=%d attCacheHit=%.1f%% joins=%d",
		s.QueriesServed, s.InvokesServed, s.InvokeReplays, s.HedgedWins, s.BreakerSkips, s.AttestationCacheHitRate*100,
		s.AttestationCacheJoins)
	if s.ForwardedQueries > 0 || s.ForwardedInvokes > 0 {
		fmt.Fprintf(&b, " fwdQueries=%d fwdInvokes=%d", s.ForwardedQueries, s.ForwardedInvokes)
	}
	b.WriteString("\n")
	// Crypto-op totals locate the expensive primitives: with sessioned
	// ECIES and batching armed, ECDH and Sign per served query drop well
	// below the attestor count.
	fmt.Fprintf(&b, "crypto ops: ecdh=%d sign=%d encrypt=%d", s.ECDHOps, s.SignOps, s.EncryptOps)
	if s.QueriesServed > 0 {
		fmt.Fprintf(&b, " (per query: ecdh=%.2f sign=%.2f encrypt=%.2f)",
			float64(s.ECDHOps)/float64(s.QueriesServed),
			float64(s.SignOps)/float64(s.QueriesServed),
			float64(s.EncryptOps)/float64(s.QueriesServed))
	}
	b.WriteString("\n")
	if r.Churn > 0 {
		fmt.Fprintf(&b, "churn: %d relay kills injected\n", r.Churn)
	}
	if len(r.ErrorSamples) > 0 {
		classes := make([]string, 0, len(r.ErrorSamples))
		for c := range r.ErrorSamples {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			for _, msg := range r.ErrorSamples[c] {
				fmt.Fprintf(&b, "sample %s error: %s\n", c, msg)
			}
		}
	}
	if r.Audit != nil {
		verdict := "exactly-once HELD"
		if !r.Audit.Clean() {
			verdict = "exactly-once VIOLATED"
		}
		fmt.Fprintf(&b, "audit: %d invokes issued, %d valid commits, %d duplicate, %d missing — %s\n",
			r.Audit.InvokesIssued, r.Audit.ValidCommits, r.Audit.DuplicateCommits, r.Audit.MissingCommits, verdict)
	}
	return b.String()
}
