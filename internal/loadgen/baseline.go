package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
)

// ReadReport loads a previously written BENCH_loadgen.json.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("loadgen: read baseline: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("loadgen: parse baseline %s: %w", path, err)
	}
	return &r, nil
}

// Baseline-diff thresholds: a latency regression is only worth a warning
// when it is both relatively large and absolutely visible — short smoke
// runs on shared CI hardware jitter far too much for tight gates, which is
// also why the diff never fails the run.
const (
	baselineRelSlack = 0.25 // 25% over baseline
	baselineAbsMs    = 1.0  // and at least 1ms absolute
)

// DiffBaseline compares this run's p50/p99 latencies against a baseline
// report and returns one human-readable warning line per regression beyond
// the slack. The comparison is advisory: callers print the lines and move
// on, they never turn them into a failure.
func (r *Report) DiffBaseline(base *Report) []string {
	var warnings []string
	check := func(scope, which string, got, want float64) {
		if want <= 0 {
			return
		}
		if got > want*(1+baselineRelSlack) && got-want > baselineAbsMs {
			warnings = append(warnings, fmt.Sprintf(
				"%s %s %.2fms vs baseline %.2fms (+%.0f%%)",
				scope, which, got, want, (got/want-1)*100))
		}
	}
	check("overall", "p50", r.Overall.P50, base.Overall.P50)
	check("overall", "p99", r.Overall.P99, base.Overall.P99)
	for _, k := range OpKinds {
		cur, curOK := r.Ops[k]
		prev, prevOK := base.Ops[k]
		if !curOK || !prevOK {
			continue
		}
		check(string(k), "p50", cur.Latency.P50, prev.Latency.P50)
		check(string(k), "p99", cur.Latency.P99, prev.Latency.P99)
	}
	return warnings
}
