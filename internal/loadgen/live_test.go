package loadgen

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestRunLiveSteadySmoke drives a small steady workload against a real
// two-relay TCP deployment: zero protocol errors, a clean exactly-once
// audit, warm queries actually hitting the attestation cache, and a
// well-formed JSON report.
func TestRunLiveSteadySmoke(t *testing.T) {
	cfg := &Config{
		Clients: 4, Rate: 60, Duration: 2 * time.Second,
		Mix:  Mix{QueryPct: 50, WarmQueryPct: 30, InvokePct: 15, SubscribePct: 5},
		Keys: 8, Seed: 5, ExtraSTLRelays: 1,
	}
	report, err := RunLive(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	if report.ProtocolErrors() != 0 {
		t.Fatalf("protocol errors = %d, want 0 (budget %v)", report.ProtocolErrors(), report.ErrorBudget)
	}
	if report.OK < 60 {
		t.Fatalf("completed ops = %d, want a healthy fraction of the ~120 scheduled", report.OK)
	}
	if report.Overall.P50 <= 0 || report.Overall.P999 < report.Overall.P50 {
		t.Fatalf("implausible latency summary: %+v", report.Overall)
	}
	if report.Audit == nil || !report.Audit.Clean() {
		t.Fatalf("exactly-once audit = %+v, want clean", report.Audit)
	}
	if report.Audit.InvokesIssued == 0 || report.Audit.ValidCommits != report.Audit.InvokesIssued {
		t.Fatalf("audit = %+v, want one valid commit per issued invoke", report.Audit)
	}
	if report.Relay.AttestationCacheHits == 0 {
		t.Fatalf("warm queries produced no attestation cache hits: %+v", report.Relay.Stats)
	}
	if report.Relay.QueriesServed == 0 || report.Relay.InvokesServed == 0 {
		t.Fatalf("relay window missing activity: %+v", report.Relay.Stats)
	}

	path := filepath.Join(t.TempDir(), "BENCH_loadgen.json")
	if err := report.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	var parsed Report
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if parsed.OK != report.OK || parsed.Overall.P999 != report.Overall.P999 {
		t.Fatalf("round-tripped report differs: %+v vs %+v", parsed.Overall, report.Overall)
	}
	if report.Table() == "" {
		t.Fatal("empty human-readable table")
	}
}

// TestRunLiveMultiHopSmoke drives the chain topology: two forwarding hub
// tiers between the origin and the source. Every query answer must carry a
// verified 2-pin hop path (the driver fails the op otherwise), invokes
// commit through the chain exactly once, and the fleet window must show
// forwarded traffic on the hubs.
func TestRunLiveMultiHopSmoke(t *testing.T) {
	cfg := &Config{
		Clients: 4, Rate: 50, Duration: 2 * time.Second,
		Mix:  Mix{QueryPct: 55, WarmQueryPct: 20, InvokePct: 25},
		Keys: 8, Seed: 7,
		HubHops: 2,
	}
	report, err := RunLive(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunLive over chain: %v", err)
	}
	if report.ProtocolErrors() != 0 {
		t.Fatalf("protocol errors = %d over chain, want 0 (budget %v, samples %v)",
			report.ProtocolErrors(), report.ErrorBudget, report.ErrorSamples)
	}
	if report.OK == 0 {
		t.Fatal("no operation completed over the chain")
	}
	if report.Audit == nil || !report.Audit.Clean() || report.Audit.InvokesIssued == 0 {
		t.Fatalf("audit = %+v, want clean with invokes issued", report.Audit)
	}
	if report.Relay.ForwardedQueries == 0 || report.Relay.ForwardedInvokes == 0 {
		t.Fatalf("fleet window shows no forwarded traffic: %+v", report.Relay.Stats)
	}
}

// TestRunLiveChurnSmoke injects relay kills and restarts mid-run. The run
// must finish (error budget, not abort), the exactly-once invariant must
// survive the churn, and no failure may be a protocol error.
func TestRunLiveChurnSmoke(t *testing.T) {
	cfg := &Config{
		Clients: 4, Rate: 50, Duration: 3 * time.Second,
		Mix:  Mix{QueryPct: 50, WarmQueryPct: 20, InvokePct: 25, SubscribePct: 5},
		Keys: 8, Seed: 6,
		ExtraSTLRelays: 2, Churn: true, ChurnInterval: time.Second,
	}
	report, err := RunLive(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunLive under churn: %v", err)
	}
	if report.Churn == 0 {
		t.Fatal("churn run injected no kills")
	}
	if report.ProtocolErrors() != 0 {
		t.Fatalf("protocol errors = %d under churn, want 0 (budget %v)", report.ProtocolErrors(), report.ErrorBudget)
	}
	if report.Audit == nil || report.Audit.DuplicateCommits != 0 {
		t.Fatalf("audit = %+v, want zero duplicate commits under churn", report.Audit)
	}
	if report.OK == 0 {
		t.Fatal("no operation completed under churn")
	}
}
