package loadgen

import (
	"context"
	"math/rand"
	"time"
)

// Op is one scheduled operation.
type Op struct {
	// Seq is the arrival's position in the schedule, unique across the run.
	Seq int
	// Kind is the operation class drawn from the mix.
	Kind OpKind
	// Key indexes the zipf-skewed hot key space.
	Key int
	// Due is the scheduled arrival instant. Latency is measured from Due,
	// not from when a worker got around to starting the operation — an
	// open-loop schedule charges queueing delay to the system under test
	// instead of silently absorbing it (coordinated omission).
	Due time.Time
}

// schedule produces the open-loop arrival stream. The channel is buffered
// for the entire schedule so the generator never blocks on slow workers:
// arrivals keep landing on time no matter how far behind the system is.
// The generator stops early when ctx is cancelled.
func schedule(ctx context.Context, cfg *Config, start time.Time) <-chan Op {
	total := int(cfg.Rate * cfg.Duration.Seconds())
	if total < 1 {
		total = 1
	}
	out := make(chan Op, total)
	r := rand.New(rand.NewSource(cfg.Seed))
	pickKey := cfg.newKeyPicker(r)

	go func() {
		defer close(out)
		due := start
		for seq := 0; seq < total; seq++ {
			// Inter-arrival spacing: exponential (Poisson process) by
			// default, fixed for the uniform law.
			var gap time.Duration
			if cfg.Arrival == "uniform" {
				gap = time.Duration(float64(time.Second) / cfg.Rate)
			} else {
				gap = time.Duration(r.ExpFloat64() / cfg.Rate * float64(time.Second))
			}
			due = due.Add(gap)
			if wait := time.Until(due); wait > 0 {
				timer := time.NewTimer(wait)
				select {
				case <-timer.C:
				case <-ctx.Done():
					timer.Stop()
					return
				}
			}
			// Behind schedule: emit immediately, no sleeping — catching up
			// is what keeps the offered rate honest.
			op := Op{Seq: seq, Kind: cfg.Mix.pick(r), Key: pickKey(), Due: due}
			select {
			case out <- op:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}
