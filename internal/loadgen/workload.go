package loadgen

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/fabric"
	"repro/internal/orderer"
)

// OpKind names the operation classes a workload mixes.
type OpKind string

const (
	// OpQuery is a cold cross-network query: a fresh nonce every time, so
	// the source relay's attestation cache cannot help.
	OpQuery OpKind = "query"
	// OpWarmQuery repeats a fixed (client, key) request ID: the
	// deterministic nonce derivation makes the wire query identical on
	// every issue, so after the first the source relay answers from its
	// attestation cache.
	OpWarmQuery OpKind = "warm_query"
	// OpInvoke is a writable cross-network invoke with a unique
	// idempotency key, committing on the source ledger.
	OpInvoke OpKind = "invoke"
	// OpSubscribe establishes a cross-network event subscription and
	// immediately releases it; the measured latency is establishment.
	OpSubscribe OpKind = "subscribe"
)

// OpKinds lists every kind in reporting order.
var OpKinds = []OpKind{OpQuery, OpWarmQuery, OpInvoke, OpSubscribe}

// Mix is the workload composition in percent. Entries must sum to 100.
type Mix struct {
	QueryPct     int `json:"query_pct"`
	WarmQueryPct int `json:"warm_query_pct"`
	InvokePct    int `json:"invoke_pct"`
	SubscribePct int `json:"subscribe_pct"`
}

func (m Mix) total() int {
	return m.QueryPct + m.WarmQueryPct + m.InvokePct + m.SubscribePct
}

// pick maps a uniform draw in [0,100) to an operation kind.
func (m Mix) pick(r *rand.Rand) OpKind {
	n := r.Intn(100)
	if n -= m.QueryPct; n < 0 {
		return OpQuery
	}
	if n -= m.WarmQueryPct; n < 0 {
		return OpWarmQuery
	}
	if n -= m.InvokePct; n < 0 {
		return OpInvoke
	}
	return OpSubscribe
}

// Config parameterizes one load-generation run.
type Config struct {
	// Preset records which named preset (if any) the config started from.
	Preset string `json:"preset,omitempty"`

	// Clients is the number of concurrent simulated clients (workers).
	Clients int `json:"clients"`
	// Rate is the target offered rate in operations per second across all
	// clients. The schedule is open-loop: arrivals are due at their
	// scheduled instants whether or not earlier operations have finished.
	Rate float64 `json:"rate"`
	// Duration bounds the arrival schedule; in-flight operations drain
	// after the last arrival.
	Duration time.Duration `json:"duration_ns"`

	Mix Mix `json:"mix"`

	// Keys is the size of the hot key space (seeded purchase orders).
	Keys int `json:"keys"`
	// ZipfS is the zipf skew exponent (>1; larger = more skewed). Zero
	// selects the default 1.2.
	ZipfS float64 `json:"zipf_s"`

	// Arrival is the inter-arrival law: "poisson" (default) or "uniform".
	Arrival string `json:"arrival"`

	// ExtraSTLRelays adds redundant relays fronting the source network.
	ExtraSTLRelays int `json:"extra_stl_relays"`

	// HubHops stretches the deployment over a multi-hop relay chain: the
	// number of intermediate forwarding hub networks between the origin and
	// the source (0 = direct). Every response then carries one signed hop
	// pin per hub, verified end to end by each client.
	HubHops int `json:"hub_hops,omitempty"`
	// HubRelays is the number of redundant relay replicas per hub tier
	// (<=0 selects 1). Churn over a chain kills hub replicas, so it needs
	// at least 2.
	HubRelays int `json:"hub_relays,omitempty"`

	// Churn enables fault injection: every ChurnInterval a source relay is
	// killed, held down for half the interval, then restarted on its
	// original address.
	Churn         bool          `json:"churn"`
	ChurnInterval time.Duration `json:"churn_interval_ns,omitempty"`

	// Pipelined switches both networks' orderers to pipelined batching:
	// blocks cut by size (BatchSize) or time in a background cutter instead
	// of one synchronous block per transaction.
	Pipelined bool `json:"pipelined,omitempty"`
	// BatchSize is the orderer batch size when Pipelined is set (<=0 keeps
	// the orderer default).
	BatchSize int `json:"batch_size,omitempty"`
	// CommitterWorkers sizes each peer's commit worker pool; <= 1 keeps the
	// serial committer.
	CommitterWorkers int `json:"committer_workers,omitempty"`

	// AttestBatchWindow widens Merkle-batched attestation on every source
	// relay: concurrent queries arriving within the window share one
	// signature over a Merkle root. Zero keeps the scenario default
	// (batching armed with a conservative window).
	AttestBatchWindow time.Duration `json:"attest_batch_window_ns,omitempty"`
	// AttestBatchMax flushes a batching window early once this many queries
	// are pending (<=0 with a window set selects 32).
	AttestBatchMax int `json:"attest_batch_max,omitempty"`
	// AttestBatchOff disables attestation batching on every relay in the
	// deployment, overriding the scenario default: one signature per
	// attestor per query, the pre-batching baseline.
	AttestBatchOff bool `json:"attest_batch_off,omitempty"`

	// Seed makes key selection and mix draws reproducible.
	Seed int64 `json:"seed"`

	// Output is the report path ("" = BENCH_loadgen.json).
	Output string `json:"-"`
}

// Validate rejects configurations the runner cannot honor.
func (c *Config) Validate() error {
	if c.Clients <= 0 {
		return fmt.Errorf("loadgen: clients must be positive, got %d", c.Clients)
	}
	if c.Rate <= 0 {
		return fmt.Errorf("loadgen: rate must be positive, got %g", c.Rate)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("loadgen: duration must be positive, got %s", c.Duration)
	}
	if got := c.Mix.total(); got != 100 {
		return fmt.Errorf("loadgen: mix percentages sum to %d, want 100", got)
	}
	if c.Keys <= 1 {
		return fmt.Errorf("loadgen: keys must be at least 2, got %d", c.Keys)
	}
	if c.ZipfS != 0 && c.ZipfS <= 1 {
		return fmt.Errorf("loadgen: zipf_s must be > 1, got %g", c.ZipfS)
	}
	switch c.Arrival {
	case "", "poisson", "uniform":
	default:
		return fmt.Errorf("loadgen: unknown arrival law %q", c.Arrival)
	}
	if c.ExtraSTLRelays < 0 {
		return fmt.Errorf("loadgen: extra_stl_relays must be non-negative")
	}
	if c.HubHops < 0 {
		return fmt.Errorf("loadgen: hub_hops must be non-negative, got %d", c.HubHops)
	}
	if c.HubHops > 0 && c.Mix.SubscribePct > 0 {
		return fmt.Errorf("loadgen: subscriptions are not forwarded over a relay chain; set subscribe_pct to 0 with hub_hops")
	}
	switch {
	case !c.Churn:
	case c.HubHops > 0:
		if c.hubRelays() < 2 {
			return fmt.Errorf("loadgen: churn over a relay chain kills hub replicas; need hub_relays >= 2")
		}
	case c.ExtraSTLRelays < 1:
		return fmt.Errorf("loadgen: churn needs at least one extra STL relay to keep serving")
	}
	if c.AttestBatchWindow < 0 {
		return fmt.Errorf("loadgen: attest batch window must be non-negative, got %s", c.AttestBatchWindow)
	}
	if c.AttestBatchOff && c.AttestBatchWindow > 0 {
		return fmt.Errorf("loadgen: attest_batch_off conflicts with a non-zero attest batch window")
	}
	return nil
}

// attestBatchMax returns the effective early-flush threshold when batching
// is enabled.
func (c *Config) attestBatchMax() int {
	if c.AttestBatchMax > 0 {
		return c.AttestBatchMax
	}
	return 32
}

// tuning translates the config's commit-pipeline knobs into the fabric
// Tuning applied to both networks. The zero config reproduces the
// pre-pipeline deployment: one synchronous block per transaction, serial
// committer.
func (c *Config) tuning() fabric.Tuning {
	t := fabric.Tuning{Orderer: orderer.Config{BatchSize: 1}, CommitterWorkers: c.CommitterWorkers}
	if c.Pipelined {
		t.Orderer = orderer.Config{Pipelined: true, BatchSize: c.BatchSize}
	}
	return t
}

// zipfS returns the effective skew exponent.
func (c *Config) zipfS() float64 {
	if c.ZipfS == 0 {
		return 1.2
	}
	return c.ZipfS
}

// hubRelays returns the effective replica count per hub tier.
func (c *Config) hubRelays() int {
	if c.HubRelays > 0 {
		return c.HubRelays
	}
	return 1
}

// churnInterval returns the effective fault-injection period.
func (c *Config) churnInterval() time.Duration {
	if c.ChurnInterval > 0 {
		return c.ChurnInterval
	}
	return 2 * time.Second
}

// newKeyPicker builds the zipf-skewed key selector over [0, Keys).
func (c *Config) newKeyPicker(r *rand.Rand) func() int {
	z := rand.NewZipf(r, c.zipfS(), 1, uint64(c.Keys-1))
	return func() int { return int(z.Uint64()) }
}

// Presets are the named starting points the CLI exposes. Flags override
// individual fields after the preset is applied.
var Presets = map[string]Config{
	// steady-query: the paper's read path under sustained load — mostly
	// cold queries with a warm slice to exercise the attestation cache.
	"steady-query": {
		Preset:  "steady-query",
		Clients: 8, Rate: 120, Duration: 10 * time.Second,
		Mix:  Mix{QueryPct: 70, WarmQueryPct: 25, InvokePct: 5},
		Keys: 64, Seed: 1,
	},
	// invoke-heavy: the write path dominates; every invoke commits on the
	// source ledger and is audited for exactly-once afterwards.
	"invoke-heavy": {
		Preset:  "invoke-heavy",
		Clients: 8, Rate: 80, Duration: 10 * time.Second,
		Mix:  Mix{QueryPct: 20, WarmQueryPct: 10, InvokePct: 65, SubscribePct: 5},
		Keys: 64, Seed: 2,
	},
	// churn: a mixed workload while source relays are killed and
	// restarted under the run; the error budget absorbs the kills and the
	// post-run audit must still find exactly one commit per invoke.
	"churn": {
		Preset:  "churn",
		Clients: 8, Rate: 80, Duration: 12 * time.Second,
		Mix:  Mix{QueryPct: 50, WarmQueryPct: 20, InvokePct: 25, SubscribePct: 5},
		Keys: 64, Seed: 3,
		ExtraSTLRelays: 2, Churn: true, ChurnInterval: 2 * time.Second,
	},
	// batched-query: the steady-query read path with Merkle-batched
	// attestation on: concurrent cold queries landing inside the window
	// share one relay signature. The small invoke slice keeps the
	// exactly-once audit meaningful under batching.
	"batched-query": {
		Preset:  "batched-query",
		Clients: 16, Rate: 160, Duration: 10 * time.Second,
		Mix:  Mix{QueryPct: 80, WarmQueryPct: 10, InvokePct: 10},
		Keys: 64, Seed: 4,
		AttestBatchWindow: 3 * time.Millisecond, AttestBatchMax: 32,
	},
	// multi-hop: the mixed workload over an A→B→C chain — two forwarding
	// hub networks between the origin and the source, so every answer is a
	// 3-leg walk carrying two signed hop pins that the clients verify, and
	// every invoke commits through the chain under the exactly-once audit.
	"multi-hop": {
		Preset:  "multi-hop",
		Clients: 8, Rate: 80, Duration: 10 * time.Second,
		Mix:  Mix{QueryPct: 60, WarmQueryPct: 15, InvokePct: 25},
		Keys: 64, Seed: 6,
		HubHops: 2,
	},
	// batched-session: batched-query's window plus a cold-query-dominated
	// mix from persistent clients — the shape sessioned ECIES amortizes.
	// Every client keeps its certificate for the whole run, so after the
	// first window each (attestor, requester) agreement is a cache hit and
	// the ECDH column of the report approaches zero per query.
	"batched-session": {
		Preset:  "batched-session",
		Clients: 16, Rate: 160, Duration: 10 * time.Second,
		Mix:  Mix{QueryPct: 85, WarmQueryPct: 5, InvokePct: 10},
		Keys: 64, Seed: 5,
		AttestBatchWindow: 3 * time.Millisecond, AttestBatchMax: 32,
	},
}

// PresetNames lists the presets in stable order for usage text.
func PresetNames() []string {
	return []string{"steady-query", "invoke-heavy", "churn", "batched-query", "batched-session", "multi-hop"}
}
