// Package loadgen measures the interop fabric the way production would: a
// multi-relay TCP deployment driven by concurrent clients under an
// open-loop arrival schedule, with per-operation latency aggregated into
// HDR-style histograms and relay-side counters windowed over the run. The
// paper reports single-shot end-to-end latencies (§6); this package asks
// the harder operational questions — what are the tail latencies at a
// sustained offered rate, what does relay churn cost, and does the
// exactly-once guarantee hold while the deployment is being shot at.
package loadgen

import (
	"fmt"
	"math"
	"math/bits"
)

// subBits fixes the histogram's resolution: 2^subBits sub-buckets per
// power of two, bounding quantization error at 2^-subBits (~0.4%).
const subBits = 8

// Histogram is a log-linear latency histogram in the HdrHistogram family:
// values below 2^subBits are exact, larger values land in buckets whose
// width doubles every power of two, so relative error stays bounded while
// memory stays small regardless of range. Values are unit-agnostic; the
// runner records microseconds. Not safe for concurrent use — each worker
// owns one and they are merged afterwards.
type Histogram struct {
	counts []uint64
	total  uint64
	min    int64
	max    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

// bucketIndex maps a value to its bucket. Values < 2^subBits map to
// themselves; above that, each power-of-two block contributes 2^subBits
// buckets.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < 1<<subBits {
		return int(u)
	}
	exp := 63 - bits.LeadingZeros64(u)
	shift := exp - subBits
	return (shift+1)<<subBits + int(u>>uint(shift)) - (1 << subBits)
}

// valueAt returns the lowest value that maps to bucket i.
func valueAt(i int) int64 {
	if i < 1<<subBits {
		return int64(i)
	}
	shift := i>>subBits - 1
	sub := i & (1<<subBits - 1)
	return int64(1<<subBits+sub) << uint(shift)
}

// LowestEquivalent returns the smallest value the histogram cannot
// distinguish from v — the value a percentile query reports for any sample
// in v's bucket. Exposed so tests can assert percentile exactness without
// hard-coding the bucket layout.
func LowestEquivalent(v int64) int64 {
	if v < 0 {
		v = 0
	}
	return valueAt(bucketIndex(v))
}

// Record adds one sample. Negative values clamp to zero (a latency
// measured from a scheduled arrival time can never legitimately be
// negative; clock steps should not crash the run).
func (h *Histogram) Record(v int64) { h.RecordN(v, 1) }

// RecordN adds n samples of the same value.
func (h *Histogram) RecordN(v int64, n uint64) {
	if n == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	i := bucketIndex(v)
	if i >= len(h.counts) {
		grown := make([]uint64, i+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[i] += n
	h.total += n
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Max returns the largest recorded value, exactly (not bucket-quantized).
func (h *Histogram) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Min returns the smallest recorded value, exactly.
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Percentile returns the value at the given percentile (0 < p <= 100)
// under nearest-rank semantics: the lowest-equivalent value of the bucket
// holding the ceil(p/100*count)-th smallest sample. p=100 lands in the
// max sample's bucket.
func (h *Histogram) Percentile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			return valueAt(i)
		}
	}
	return h.max // unreachable: counts always sum to total
}

// Mean returns the average of the lowest-equivalent values of all samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for i, c := range h.counts {
		if c > 0 {
			sum += float64(valueAt(i)) * float64(c)
		}
	}
	return sum / float64(h.total)
}

// Merge folds other's samples into h. Per-client histograms merged this
// way are indistinguishable from one histogram that recorded everything.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	if len(other.counts) > len(h.counts) {
		grown := make([]uint64, len(other.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Summary is the fixed percentile set every report carries, in the unit
// the histogram was recorded in.
type Summary struct {
	Count uint64  `json:"count"`
	Min   int64   `json:"min"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
	Max   int64   `json:"max"`
}

// Summarize extracts the standard percentile set.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.Count(),
		Min:   h.Min(),
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P90:   h.Percentile(90),
		P99:   h.Percentile(99),
		P999:  h.Percentile(99.9),
		Max:   h.Max(),
	}
}

// String renders the summary compactly for logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d p50=%d p99=%d p999=%d max=%d", s.Count, s.P50, s.P99, s.P999, s.Max)
}
