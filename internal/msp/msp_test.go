package msp

import (
	"bytes"
	"crypto/ecdsa"
	"testing"

	"repro/internal/cryptoutil"
)

func TestNewCAAndIssue(t *testing.T) {
	ca, err := NewCA("seller-org")
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	if ca.OrgID() != "seller-org" {
		t.Fatalf("OrgID = %q", ca.OrgID())
	}
	id, err := ca.Issue("peer0", RolePeer)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	if id.Name != "peer0" || id.OrgID != "seller-org" || id.Role != RolePeer {
		t.Fatalf("identity fields: %+v", id)
	}
	if id.Cert == nil || id.Key == nil {
		t.Fatal("identity missing cert or key")
	}
}

func TestVerifierAcceptsIssuedIdentity(t *testing.T) {
	ca, _ := NewCA("carrier-org")
	id, _ := ca.Issue("peer1", RolePeer)

	v, err := NewVerifier(map[string][]byte{"carrier-org": ca.RootCertPEM()})
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	info, err := v.Verify(id.Cert)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if info.OrgID != "carrier-org" || info.Name != "peer1" || info.Role != RolePeer {
		t.Fatalf("CertInfo = %+v", info)
	}
}

func TestVerifierRejectsForeignCA(t *testing.T) {
	trusted, _ := NewCA("org-a")
	rogue, _ := NewCA("org-a") // same org name, different root key
	id, _ := rogue.Issue("peer0", RolePeer)

	v, _ := NewVerifier(map[string][]byte{"org-a": trusted.RootCertPEM()})
	if _, err := v.Verify(id.Cert); err == nil {
		t.Fatal("Verify accepted a certificate from an unrecorded CA")
	}
}

func TestVerifierRejectsUnknownOrg(t *testing.T) {
	caA, _ := NewCA("org-a")
	caB, _ := NewCA("org-b")
	idB, _ := caB.Issue("peerB", RolePeer)

	// org-b's root is in the pool but keyed under a different org: the
	// chain validates but the subject org is not recorded.
	v, _ := NewVerifier(map[string][]byte{
		"org-a": caA.RootCertPEM(),
	})
	if _, err := v.Verify(idB.Cert); err == nil {
		t.Fatal("Verify accepted a cert with no recorded org root")
	}
}

func TestVerifyPEMRoundTrip(t *testing.T) {
	ca, _ := NewCA("bank-org")
	id, _ := ca.Issue("client7", RoleClient)
	v, _ := NewVerifier(map[string][]byte{"bank-org": ca.RootCertPEM()})
	info, err := v.VerifyPEM(id.CertPEM())
	if err != nil {
		t.Fatalf("VerifyPEM: %v", err)
	}
	if info.Role != RoleClient {
		t.Fatalf("role = %v, want client", info.Role)
	}
}

func TestVerifyPEMGarbage(t *testing.T) {
	ca, _ := NewCA("org")
	v, _ := NewVerifier(map[string][]byte{"org": ca.RootCertPEM()})
	if _, err := v.VerifyPEM([]byte("not pem")); err == nil {
		t.Fatal("VerifyPEM accepted garbage")
	}
}

func TestIdentitySignVerify(t *testing.T) {
	ca, _ := NewCA("org")
	id, _ := ca.Issue("peer0", RolePeer)
	msg := []byte("attestation metadata")
	sig, err := id.Sign(msg)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := cryptoutil.Verify(id.PublicKey(), msg, sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestIssueForKeyExternalKeypair(t *testing.T) {
	ca, _ := NewCA("seller-bank-org")
	key, err := cryptoutil.GenerateKey()
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	cert, err := ca.IssueForKey("swt-seller-client", RoleClient, &key.PublicKey)
	if err != nil {
		t.Fatalf("IssueForKey: %v", err)
	}
	certPub, ok := cert.PublicKey.(*ecdsa.PublicKey)
	if !ok || !certPub.Equal(&key.PublicKey) {
		t.Fatal("issued cert does not certify the provided key")
	}
	v, _ := NewVerifier(map[string][]byte{"seller-bank-org": ca.RootCertPEM()})
	if _, err := v.Verify(cert); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestRoleParseRoundTrip(t *testing.T) {
	for _, r := range []Role{RolePeer, RoleClient, RoleAdmin} {
		got, err := ParseRole(r.String())
		if err != nil {
			t.Fatalf("ParseRole(%q): %v", r.String(), err)
		}
		if got != r {
			t.Fatalf("ParseRole(%q) = %v", r.String(), got)
		}
	}
	if _, err := ParseRole("bogus"); err == nil {
		t.Fatal("ParseRole accepted bogus role")
	}
	if Role(99).String() != "unknown" {
		t.Fatal("unknown role String()")
	}
}

func TestCertSerialsUnique(t *testing.T) {
	ca, _ := NewCA("org")
	seen := make(map[string]bool)
	for i := 0; i < 10; i++ {
		id, err := ca.Issue("p", RolePeer)
		if err != nil {
			t.Fatalf("Issue: %v", err)
		}
		s := id.Cert.SerialNumber.String()
		if seen[s] {
			t.Fatalf("duplicate serial %s", s)
		}
		seen[s] = true
	}
}

func TestParseCertPEMRejectsWrongBlock(t *testing.T) {
	if _, err := ParseCertPEM([]byte("-----BEGIN PUBLIC KEY-----\naGk=\n-----END PUBLIC KEY-----\n")); err == nil {
		t.Fatal("ParseCertPEM accepted a non-certificate block")
	}
}

func TestRootCertPEMStable(t *testing.T) {
	ca, _ := NewCA("org")
	if !bytes.Equal(ca.RootCertPEM(), ca.RootCertPEM()) {
		t.Fatal("RootCertPEM not stable")
	}
}

func TestVerifierOrgs(t *testing.T) {
	caA, _ := NewCA("a")
	caB, _ := NewCA("b")
	v, _ := NewVerifier(map[string][]byte{
		"a": caA.RootCertPEM(),
		"b": caB.RootCertPEM(),
	})
	orgs := v.Orgs()
	if len(orgs) != 2 {
		t.Fatalf("Orgs = %v", orgs)
	}
}

func BenchmarkIssueIdentity(b *testing.B) {
	ca, _ := NewCA("org")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ca.Issue("peer", RolePeer); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyCert(b *testing.B) {
	ca, _ := NewCA("org")
	id, _ := ca.Issue("peer", RolePeer)
	v, _ := NewVerifier(map[string][]byte{"org": ca.RootCertPEM()})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Verify(id.Cert); err != nil {
			b.Fatal(err)
		}
	}
}
