package msp

import (
	"crypto/ecdsa"
	"crypto/x509"
	"encoding/pem"
	"errors"
	"fmt"
	"time"

	"repro/internal/cryptoutil"
)

// Identity is a key pair plus the certificate binding it to an organization
// member. Peers hold identities to sign attestations; clients hold them to
// authenticate cross-network queries.
type Identity struct {
	Name  string
	OrgID string
	Role  Role
	Cert  *x509.Certificate
	Key   *ecdsa.PrivateKey
}

// CertPEM returns the PEM encoding of the identity's certificate, the form
// carried in wire messages so remote networks can authenticate the holder.
func (id *Identity) CertPEM() []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: id.Cert.Raw})
}

// Sign signs msg with the identity's private key.
func (id *Identity) Sign(msg []byte) ([]byte, error) {
	return cryptoutil.Sign(id.Key, msg)
}

// PublicKey returns the identity's public key.
func (id *Identity) PublicKey() *ecdsa.PublicKey {
	return &id.Key.PublicKey
}

// ParseCertPEM decodes a PEM certificate as produced by CertPEM or
// CA.RootCertPEM.
func ParseCertPEM(pemBytes []byte) (*x509.Certificate, error) {
	block, _ := pem.Decode(pemBytes)
	if block == nil || block.Type != "CERTIFICATE" {
		return nil, errors.New("msp: no CERTIFICATE block in PEM input")
	}
	cert, err := x509.ParseCertificate(block.Bytes)
	if err != nil {
		return nil, fmt.Errorf("msp: parse certificate: %w", err)
	}
	return cert, nil
}

// CertInfo is the identity information extracted from a verified
// certificate.
type CertInfo struct {
	Name  string
	OrgID string
	Role  Role
}

// Verifier authenticates certificates against a set of organization root
// certificates. A destination network constructs a Verifier from the source
// network's recorded configuration to validate proof signers (§3.3, §4.3).
type Verifier struct {
	pool  *x509.CertPool
	roots map[string]*x509.Certificate // orgID -> root
}

// NewVerifier builds a Verifier from PEM root certificates keyed by
// organization ID.
func NewVerifier(rootsPEM map[string][]byte) (*Verifier, error) {
	v := &Verifier{
		pool:  x509.NewCertPool(),
		roots: make(map[string]*x509.Certificate, len(rootsPEM)),
	}
	for orgID, pemBytes := range rootsPEM {
		cert, err := ParseCertPEM(pemBytes)
		if err != nil {
			return nil, fmt.Errorf("msp: root for org %q: %w", orgID, err)
		}
		v.pool.AddCert(cert)
		v.roots[orgID] = cert
	}
	return v, nil
}

// Orgs returns the organization IDs this verifier knows about.
func (v *Verifier) Orgs() []string {
	orgs := make([]string, 0, len(v.roots))
	for orgID := range v.roots {
		orgs = append(orgs, orgID)
	}
	return orgs
}

// Verify checks that cert chains to one of the known organization roots and
// is currently valid, returning the certified name, organization and role.
func (v *Verifier) Verify(cert *x509.Certificate) (CertInfo, error) {
	opts := x509.VerifyOptions{
		Roots:     v.pool,
		KeyUsages: []x509.ExtKeyUsage{x509.ExtKeyUsageAny},
	}
	if _, err := cert.Verify(opts); err != nil {
		var certErr x509.CertificateInvalidError
		if errors.As(err, &certErr) && certErr.Reason == x509.Expired {
			return CertInfo{}, ErrExpired
		}
		return CertInfo{}, fmt.Errorf("%w: %v", ErrUnknownIssuer, err)
	}
	now := time.Now()
	if now.Before(cert.NotBefore) || now.After(cert.NotAfter) {
		return CertInfo{}, ErrExpired
	}
	info := CertInfo{Name: cert.Subject.CommonName}
	if len(cert.Subject.Organization) > 0 {
		info.OrgID = cert.Subject.Organization[0]
	}
	if len(cert.Subject.OrganizationalUnit) > 0 {
		role, err := ParseRole(cert.Subject.OrganizationalUnit[0])
		if err == nil {
			info.Role = role
		}
	}
	if _, known := v.roots[info.OrgID]; !known {
		return CertInfo{}, fmt.Errorf("%w: org %q has no recorded root", ErrUnknownIssuer, info.OrgID)
	}
	return info, nil
}

// VerifyPEM is Verify over a PEM-encoded certificate.
func (v *Verifier) VerifyPEM(pemBytes []byte) (CertInfo, error) {
	cert, err := ParseCertPEM(pemBytes)
	if err != nil {
		return CertInfo{}, err
	}
	return v.Verify(cert)
}
