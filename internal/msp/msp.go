// Package msp implements a Membership Service Provider in the Hyperledger
// Fabric sense: each organization operates a certificate authority whose
// root certificate anchors the identities of that organization's peers,
// clients and applications. Networks exchange MSP root certificates during
// interop configuration (recorded on the ledger by the Configuration
// Management contract), which is what lets a destination network
// authenticate the signers of a proof produced by a source network.
package msp

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"errors"
	"fmt"
	"math/big"
	"sync"
	"time"
)

// Role classifies an identity within its organization. Verification and
// endorsement policies refer to principals as "Org.role".
type Role int

const (
	// RolePeer marks an endorsing/committing peer node identity.
	RolePeer Role = iota + 1
	// RoleClient marks an application or end-user identity.
	RoleClient
	// RoleAdmin marks an organization administrator identity.
	RoleAdmin
)

// String returns the lowercase role name used in policy expressions.
func (r Role) String() string {
	switch r {
	case RolePeer:
		return "peer"
	case RoleClient:
		return "client"
	case RoleAdmin:
		return "admin"
	default:
		return "unknown"
	}
}

// ParseRole converts a policy-expression role name to a Role.
func ParseRole(s string) (Role, error) {
	switch s {
	case "peer":
		return RolePeer, nil
	case "client":
		return RoleClient, nil
	case "admin":
		return RoleAdmin, nil
	default:
		return 0, fmt.Errorf("msp: unknown role %q", s)
	}
}

// roleOID carries the role inside certificates as an organizational unit.
func roleOU(r Role) string { return r.String() }

var (
	// ErrUnknownIssuer is returned when a certificate does not chain to a
	// known CA root.
	ErrUnknownIssuer = errors.New("msp: certificate not issued by a known CA")
	// ErrExpired is returned when a certificate is outside its validity
	// window.
	ErrExpired = errors.New("msp: certificate expired or not yet valid")
)

// CA is a certificate authority for one organization.
type CA struct {
	mu     sync.Mutex
	orgID  string
	key    *ecdsa.PrivateKey
	cert   *x509.Certificate
	serial int64
}

// NewCA creates a self-signed root CA for the given organization.
func NewCA(orgID string) (*CA, error) {
	key, err := ecdsa.GenerateKey(defaultCurve(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("msp: generate CA key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject: pkix.Name{
			CommonName:   orgID + "-ca",
			Organization: []string{orgID},
		},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(10 * 365 * 24 * time.Hour),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("msp: self-sign CA cert: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("msp: parse CA cert: %w", err)
	}
	return &CA{orgID: orgID, key: key, cert: cert, serial: 1}, nil
}

// OrgID returns the organization this CA anchors.
func (ca *CA) OrgID() string { return ca.orgID }

// RootCertPEM returns the PEM encoding of the CA root certificate. This is
// the artifact shared between networks during interop configuration.
func (ca *CA) RootCertPEM() []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: ca.cert.Raw})
}

// Issue creates a new identity (key pair plus certificate) for a named
// member of the organization with the given role.
func (ca *CA) Issue(name string, role Role) (*Identity, error) {
	key, err := ecdsa.GenerateKey(defaultCurve(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("msp: generate identity key: %w", err)
	}
	cert, err := ca.IssueForKey(name, role, &key.PublicKey)
	if err != nil {
		return nil, err
	}
	return &Identity{
		Name:  name,
		OrgID: ca.orgID,
		Role:  role,
		Cert:  cert,
		Key:   key,
	}, nil
}

// IssueForKey certifies an externally generated public key. Applications use
// this to obtain a certificate for a locally held key pair, as the SWT
// seller client does in §4.3 for end-to-end confidentiality.
func (ca *CA) IssueForKey(name string, role Role, pub *ecdsa.PublicKey) (*x509.Certificate, error) {
	ca.mu.Lock()
	ca.serial++
	serial := ca.serial
	ca.mu.Unlock()

	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(serial),
		Subject: pkix.Name{
			CommonName:         name,
			Organization:       []string{ca.orgID},
			OrganizationalUnit: []string{roleOU(role)},
		},
		NotBefore:   time.Now().Add(-time.Hour),
		NotAfter:    time.Now().Add(5 * 365 * 24 * time.Hour),
		KeyUsage:    x509.KeyUsageDigitalSignature,
		ExtKeyUsage: []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.cert, pub, ca.key)
	if err != nil {
		return nil, fmt.Errorf("msp: issue certificate: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("msp: parse issued cert: %w", err)
	}
	return cert, nil
}

func defaultCurve() elliptic.Curve { return elliptic.P256() }
