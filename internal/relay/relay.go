// Package relay implements the relay service of the paper's architecture
// (§3.2): a component deployed within each network that serves requests for
// authentic data by fetching it, with verifiable proofs, from remote
// networks. Relays speak the network-neutral wire protocol among
// themselves, resolve each other through pluggable discovery services, and
// translate protocol messages into platform calls through pluggable network
// drivers. The relay is assumed minimally trusted: everything it carries is
// encrypted to the requesting client and every proof is validated on the
// destination ledger.
package relay

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/msp"
	"repro/internal/wire"
)

var (
	// ErrUnknownNetwork is returned when discovery cannot resolve a
	// network or an incoming query targets a network this relay does not
	// serve.
	ErrUnknownNetwork = errors.New("relay: unknown network")
	// ErrAllRelaysFailed is returned when every discovered relay address
	// for a network is unreachable.
	ErrAllRelaysFailed = errors.New("relay: all relay addresses failed")
	// ErrBadEnvelope is returned for malformed or incompatible envelopes.
	ErrBadEnvelope = errors.New("relay: bad envelope")
)

// Discovery resolves a network ID to the addresses of its relays, in
// preference order. Deploying multiple relays per network and listing them
// all is the paper's mitigation for relay denial-of-service (§5). Entries
// are lease-based (see LeaseRegistrar): membership is kept fresh by
// re-announcement instead of accumulating forever.
type Discovery interface {
	Resolve(networkID string) ([]string, error)
}

// StaticRegistry is an in-memory Discovery with lease-based membership,
// suitable for tests and in-process deployments.
type StaticRegistry struct {
	mu      sync.RWMutex
	entries map[string][]leaseEntry
	now     func() time.Time // overridable in tests
}

var (
	_ LeaseRegistrar  = (*StaticRegistry)(nil)
	_ HealthPublisher = (*StaticRegistry)(nil)
	_ HealthSource    = (*StaticRegistry)(nil)
)

// NewStaticRegistry returns an empty registry.
func NewStaticRegistry() *StaticRegistry {
	return &StaticRegistry{entries: make(map[string][]leaseEntry), now: time.Now}
}

// Register adds permanent relay addresses for a network, deduplicating by
// address: re-registering an address already present is a no-op rather
// than an appended duplicate.
func (r *StaticRegistry) Register(networkID string, addrs ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, addr := range addrs {
		r.entries[networkID], _ = upsertLease(r.entries[networkID], addr, time.Time{})
	}
}

// RegisterLease implements LeaseRegistrar: the address is registered (or
// its existing entry refreshed) with a lease of ttl; zero ttl means
// permanent.
func (r *StaticRegistry) RegisterLease(networkID, addr string, ttl time.Duration) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var expires time.Time
	if ttl > 0 {
		expires = r.now().Add(ttl)
	}
	r.entries[networkID], _ = upsertLease(r.entries[networkID], addr, expires)
	return nil
}

// Deregister implements LeaseRegistrar, removing one address for a network.
func (r *StaticRegistry) Deregister(networkID, addr string) error {
	r.Unregister(networkID, addr)
	return nil
}

// Unregister removes one address for a network.
func (r *StaticRegistry) Unregister(networkID, addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if entries, removed := removeLease(r.entries[networkID], addr); removed {
		r.entries[networkID] = entries
	}
}

// Resolve implements Discovery, returning addresses whose lease has not
// lapsed.
func (r *StaticRegistry) Resolve(networkID string) ([]string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	addrs := liveAddrs(r.entries[networkID], r.now())
	if len(addrs) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNetwork, networkID)
	}
	return addrs, nil
}

// PublishHealth implements HealthPublisher: records are attached to the
// matching registered entries, fresher observations winning.
func (r *StaticRegistry) PublishHealth(byAddr map[string]SharedHealth) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, list := range r.entries {
		applyHealth(list, byAddr)
	}
	return nil
}

// HealthRecords implements HealthSource, returning the freshest published
// health record per registered address.
func (r *StaticRegistry) HealthRecords() (map[string]SharedHealth, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return collectHealth(r.entries), nil
}

// Networks lists registered network IDs, sorted.
func (r *StaticRegistry) Networks() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for id := range r.entries {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Transport delivers an envelope to a remote relay address and returns the
// reply envelope. Implementations must honour ctx: cancellation or deadline
// expiry aborts the round-trip and returns ctx.Err() (possibly wrapped).
type Transport interface {
	Send(ctx context.Context, addr string, env *wire.Envelope) (*wire.Envelope, error)
}

// Driver translates network-neutral queries into calls on one local
// network's platform (§3.2: "a set of pluggable network drivers").
type Driver interface {
	// Platform names the ledger technology the driver speaks.
	Platform() string
	// Query executes a cross-network query against the local network,
	// orchestrating proof collection per the query's verification policy.
	// ctx carries the requester's remaining time budget; drivers abandon
	// work once it is done.
	Query(ctx context.Context, q *wire.Query) (*wire.QueryResponse, error)
}

// EventSource is implemented by drivers whose platform can emit chaincode
// events for cross-network subscriptions (an extension beyond the paper's
// query protocol; §7 future work). ctx bounds subscription establishment
// only; delivery continues until cancel is called.
type EventSource interface {
	SubscribeEvents(ctx context.Context, eventName string, deliver func(payload []byte, name string, unixNano uint64)) (cancel func(), err error)
}

// Option configures a Relay.
type Option func(*Relay)

// WithClock overrides the relay's time source (used in tests).
func WithClock(now func() time.Time) Option {
	return func(r *Relay) { r.now = now }
}

// Relay is one network's relay service. The same instance plays both roles
// of Fig. 2: as the destination relay it forwards local applications'
// queries to remote relays; as the source relay it serves incoming queries
// through its drivers.
type Relay struct {
	localNetwork string
	discovery    Discovery
	transport    Transport
	now          func() time.Time

	hedge *Hedging

	// Per-address health scoring and circuit breaking, fed by every
	// transport outcome (see health.go).
	health           *healthTracker
	breakerThreshold int
	breakerCooldown  time.Duration

	mu      sync.RWMutex
	drivers map[string]Driver

	// Multi-hop routing (see route.go/forward.go): the static route
	// table consulted when discovery cannot resolve a target directly,
	// and the identity a forwarding relay signs hop pins with. A nil
	// forwardID means this relay never forwards for others; a nil routes
	// table means its own requests never take a multi-hop path.
	routes    *RouteTable
	forwardID *msp.Identity

	events *eventHub

	limiter *RateLimiter
	stats   statsCounters

	// Source-side invoke idempotency: recently served invoke responses by
	// request ID, replayed on transport-level resends (see handleInvoke).
	invokeMu      sync.Mutex
	invokeServed  map[string]servedInvoke
	invokePending map[string]chan struct{}
	invokeOrder   []string
	invokeHead    int
	invokeBytes   int
}

// New creates a relay for the given local network.
func New(localNetworkID string, discovery Discovery, transport Transport, opts ...Option) *Relay {
	r := &Relay{
		localNetwork: localNetworkID,
		discovery:    discovery,
		transport:    transport,
		now:          time.Now,
		drivers:      make(map[string]Driver),
		events:       newEventHub(),
	}
	for _, opt := range opts {
		opt(r)
	}
	// Built after options so the tracker shares an overridden clock and
	// picks up WithCircuitBreaker tuning.
	r.health = newHealthTracker(func() time.Time { return r.now() }, r.breakerThreshold, r.breakerCooldown)
	return r
}

// LocalNetwork returns the network this relay serves.
func (r *Relay) LocalNetwork() string { return r.localNetwork }

// AttestationCacheNotifier is implemented by drivers that front proof
// construction with an attestation cache and can report hit/join/miss
// outcomes through callbacks; RegisterDriver wires them to the relay's
// Stats so cache effectiveness is observable next to the traffic it saves.
// A join is a query rebuilt from a stored leaf-addressed element record:
// signatures reused, only re-encryption performed.
type AttestationCacheNotifier interface {
	OnAttestationCache(hit, join, miss func())
}

// CryptoOpsReporter is implemented by drivers that count the expensive
// crypto operations behind their proof builds. Relay.Stats sums the
// reported counters into its snapshot so ECIES/signature amortization is
// observable per deployment window.
type CryptoOpsReporter interface {
	// CryptoOps returns monotonic totals: ECDH scalar multiplications,
	// ECDSA signatures, envelope encryptions.
	CryptoOps() (ecdh, sign, encrypt uint64)
}

// RegisterDriver attaches a driver for a local network ID. A relay usually
// serves one network but may front several co-located ones. A driver that
// serves ledger replays internally (LedgerReplayNotifier — e.g. after
// losing a commit race) is wired to this relay's stats so those replays
// are counted alongside the relay's own pre-execution replays; likewise a
// driver with an attestation cache (AttestationCacheNotifier) reports its
// hit/miss counts here.
func (r *Relay) RegisterDriver(networkID string, d Driver) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.drivers[networkID] = d
	if n, ok := d.(LedgerReplayNotifier); ok {
		n.OnLedgerReplay(r.countInvokeReplay)
	}
	if n, ok := d.(AttestationCacheNotifier); ok {
		n.OnAttestationCache(r.countAttestationCacheHit, r.countAttestationCacheJoin, r.countAttestationCacheMiss)
	}
}

func (r *Relay) driverFor(networkID string) (Driver, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.drivers[networkID]
	return d, ok
}

// Query is the client-facing entry point (Fig. 2 steps 1-3 and 9): resolve
// the target network's relay addresses, forward the query, and return the
// response. The caller's Query struct is never modified; the relay operates
// on a copy and the assigned request ID travels back in the response's
// RequestID field. Resolved addresses are reordered by observed health —
// live, fast relays first, circuit-open ones demoted to last resort — so
// failover rarely wastes attempts on a relay already known to be down.
// Without hedging, addresses are tried in order and transport failures fail
// over to the next address; with WithHedging configured, a hedge attempt
// opens against the next address after the hedge delay and the first valid
// response wins (relay redundancy, §5). ctx bounds the whole operation: its
// deadline is stamped into the envelope so the source relay inherits the
// remaining budget, and cancellation aborts in-flight transport sends.
func (r *Relay) Query(ctx context.Context, q *wire.Query) (*wire.QueryResponse, error) {
	q, err := r.prepareRequest(q)
	if err != nil {
		return nil, err
	}

	// Local shortcut: if this relay serves the target network itself, skip
	// the wire entirely. Remote is the normal path.
	if d, ok := r.driverFor(q.TargetNetwork); ok {
		resp, err := d.Query(ctx, q)
		if err != nil {
			return nil, err
		}
		return ensureRequestID(resp, q), nil
	}

	addrs, err := r.resolveOrdered(q.TargetNetwork)
	if err != nil {
		// Discovery does not know the target: fall back to the static
		// route table and launch a multi-hop walk through a via network.
		return r.queryViaRoute(ctx, q, err)
	}
	env := &wire.Envelope{
		Version:   wire.ProtocolVersion,
		Type:      wire.MsgQuery,
		RequestID: q.RequestID,
		Payload:   q.Marshal(),
	}
	reply, err := r.sendFanout(ctx, q.TargetNetwork, addrs, env)
	if err != nil {
		return nil, err
	}
	return parseQueryReply(reply)
}

// ensureRequestID backfills the assigned request ID into a response that
// lacks one — the invariant (introduced with the no-mutation Query
// contract) that the response always echoes the ID the relay assigned.
func ensureRequestID(resp *wire.QueryResponse, q *wire.Query) *wire.QueryResponse {
	if resp.RequestID == "" {
		resp.RequestID = q.RequestID
	}
	return resp
}

// prepareRequest validates the query and returns a copy with the request ID
// and requesting network filled in, leaving the caller's struct untouched.
func (r *Relay) prepareRequest(q *wire.Query) (*wire.Query, error) {
	if q.TargetNetwork == "" {
		return nil, fmt.Errorf("%w: query without target network", ErrBadEnvelope)
	}
	prepared := *q
	if prepared.RequestID == "" {
		reqID, err := newRequestID()
		if err != nil {
			return nil, err
		}
		prepared.RequestID = reqID
	}
	if prepared.RequestingNetwork == "" {
		prepared.RequestingNetwork = r.localNetwork
	}
	return &prepared, nil
}

func parseQueryReply(env *wire.Envelope) (*wire.QueryResponse, error) {
	switch env.Type {
	case wire.MsgQueryResponse:
		resp, err := wire.UnmarshalQueryResponse(env.Payload)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
		}
		return resp, nil
	case wire.MsgError:
		return nil, fmt.Errorf("relay: remote error: %s", string(env.Payload))
	default:
		return nil, fmt.Errorf("%w: unexpected reply type %s", ErrBadEnvelope, env.Type)
	}
}

// HandleEnvelope is the server-facing entry point (Fig. 2 steps 4-8): it
// dispatches an incoming envelope and returns the reply envelope. Transport
// servers (TCP, in-process) call this for every received frame. The serving
// context is ctx narrowed by the envelope's remaining-budget fields (see
// remainingBudget), so the source side never works past the requester's
// remaining budget.
func (r *Relay) HandleEnvelope(ctx context.Context, env *wire.Envelope) *wire.Envelope {
	if env.Version > wire.ProtocolVersion {
		return errEnvelope(env.RequestID, fmt.Sprintf("unsupported protocol version %d", env.Version))
	}
	if env.DeadlineUnixNano != 0 || env.TimeoutNanos != 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.remainingBudget(env))
		defer cancel()
	}
	switch env.Type {
	case wire.MsgPing:
		return &wire.Envelope{Version: wire.ProtocolVersion, Type: wire.MsgPong, RequestID: env.RequestID}
	case wire.MsgQuery:
		return r.handleQuery(ctx, env)
	case wire.MsgInvoke:
		return r.handleInvoke(ctx, env)
	case wire.MsgSubscribe:
		return r.handleSubscribe(ctx, env)
	case wire.MsgEvent:
		return r.handleEvent(env)
	default:
		return errEnvelope(env.RequestID, fmt.Sprintf("unsupported message type %s", env.Type))
	}
}

func (r *Relay) handleQuery(ctx context.Context, env *wire.Envelope) *wire.Envelope {
	q, err := wire.UnmarshalQuery(env.Payload)
	if err != nil {
		return errEnvelope(env.RequestID, fmt.Sprintf("malformed query: %v", err))
	}
	if err := r.checkLimit(q.RequestingNetwork); err != nil {
		return errEnvelope(env.RequestID, err.Error())
	}
	d, ok := r.driverFor(q.TargetNetwork)
	if !ok {
		if r.forwarderIdentity() != nil {
			return r.forwardQuery(ctx, env, q)
		}
		return errEnvelope(env.RequestID, fmt.Sprintf("network %q not served by this relay", q.TargetNetwork))
	}
	r.countQuery()
	resp, err := d.Query(ctx, q)
	if err != nil {
		// Application-level failures travel inside the response so the
		// requester can distinguish them from transport failures.
		r.countError()
		resp = &wire.QueryResponse{RequestID: q.RequestID, Error: err.Error()}
	}
	resp = ensureRequestID(resp, q)
	return &wire.Envelope{
		Version:   wire.ProtocolVersion,
		Type:      wire.MsgQueryResponse,
		RequestID: env.RequestID,
		Payload:   resp.Marshal(),
	}
}

// remainingBudget converts the envelope's two remaining-budget encodings —
// absolute deadline and relative timeout — into a serving budget on this
// relay's clock. When both are present the laxer (later) interpretation
// wins: under clock skew one of the two is too strict, and serving slightly
// past the requester's true deadline only wastes a little work, while
// killing a live request on arrival (a receiver clock running fast reading
// the absolute deadline as already past) breaks it outright. The
// requester's own context still expires on its clock regardless.
func (r *Relay) remainingBudget(env *wire.Envelope) time.Duration {
	var budget time.Duration
	haveAbsolute := env.DeadlineUnixNano != 0
	if haveAbsolute {
		budget = time.Unix(0, int64(env.DeadlineUnixNano)).Sub(r.now())
	}
	if rel := time.Duration(env.TimeoutNanos); env.TimeoutNanos != 0 && (!haveAbsolute || rel > budget) {
		budget = rel
	}
	return budget
}

// Ping probes a remote relay address, returning the round-trip error if
// any. ctx bounds the probe. The outcome feeds the address's health score
// like any other transport send, so operational probing doubles as health
// maintenance.
func (r *Relay) Ping(ctx context.Context, addr string) error {
	reqID, err := newRequestID()
	if err != nil {
		return err
	}
	env := &wire.Envelope{Version: wire.ProtocolVersion, Type: wire.MsgPing, RequestID: reqID}
	r.stampDeadline(ctx, env)
	reply, err := r.observeSend(ctx, addr, env)
	if err != nil {
		return err
	}
	if reply.Type != wire.MsgPong {
		return fmt.Errorf("%w: ping reply type %s", ErrBadEnvelope, reply.Type)
	}
	return nil
}

func errEnvelope(requestID, msg string) *wire.Envelope {
	return &wire.Envelope{
		Version:   wire.ProtocolVersion,
		Type:      wire.MsgError,
		RequestID: requestID,
		Payload:   []byte(msg),
	}
}

func newRequestID() (string, error) {
	nonce, err := cryptoutil.NewNonce()
	if err != nil {
		return "", fmt.Errorf("relay: request id: %w", err)
	}
	return hex.EncodeToString(nonce[:12]), nil
}
