package relay

import (
	"context"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/msp"
	"repro/internal/proof"
	"repro/internal/wire"
)

// attestBatcher accumulates concurrent proof builds into short windows so
// one ECDSA signature per attestor covers a whole window of distinct
// queries (proof.BuildBatch). A window opens when the first query arrives
// and closes after the configured duration or when maxPending queries are
// waiting, whichever comes first — so a lone query pays at most the window
// in added latency and then falls through to the ordinary single-signature
// build, while a burst of concurrent distinct queries collapses to one
// signature per attestor. Windows are grouped by attestor set: every spec
// handed to one BuildBatch call must be attested by the same identities.
type attestBatcher struct {
	window     time.Duration
	maxPending int

	mu     sync.Mutex
	groups map[string]*batchGroup
}

type batchGroup struct {
	attestors []*msp.Identity
	entries   []*batchEntry
	timer     *time.Timer
}

type batchEntry struct {
	spec proof.Spec
	done chan struct{}
	resp *wire.QueryResponse
	err  error
}

func newAttestBatcher(window time.Duration, maxPending int) *attestBatcher {
	return &attestBatcher{
		window:     window,
		maxPending: maxPending,
		groups:     map[string]*batchGroup{},
	}
}

// attestorSetKey names a window group: the sorted attestor identities.
func attestorSetKey(ids []*msp.Identity) string {
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = id.OrgID + "/" + id.Name
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

// submit enrolls one proof build in the current window for its attestor
// set and blocks until the window flushes (or ctx expires). The build
// itself runs on whichever goroutine closes the window — the timer's for a
// window that filled slowly, the maxPending-th submitter's for one that
// filled fast.
func (b *attestBatcher) submit(ctx context.Context, spec proof.Spec, attestors []*msp.Identity) (*wire.QueryResponse, error) {
	entry := &batchEntry{spec: spec, done: make(chan struct{})}
	key := attestorSetKey(attestors)

	b.mu.Lock()
	g := b.groups[key]
	if g == nil {
		g = &batchGroup{attestors: attestors}
		b.groups[key] = g
		g.timer = time.AfterFunc(b.window, func() { b.flush(key, g) })
	}
	g.entries = append(g.entries, entry)
	full := len(g.entries) >= b.maxPending
	b.mu.Unlock()

	if full {
		b.flush(key, g)
	}

	select {
	case <-entry.done:
		return entry.resp, entry.err
	case <-ctx.Done():
		// The window still builds this entry's proof — cancelling one
		// requester must not fail the rest of the batch — but this
		// requester stops waiting for it.
		return nil, ctx.Err()
	}
}

// flush closes a window and builds its proofs. Exactly one caller wins the
// removal of the group from the map (the timer and a filling submitter can
// race); the loser finds the group already gone and returns.
func (b *attestBatcher) flush(key string, g *batchGroup) {
	b.mu.Lock()
	if b.groups[key] != g {
		b.mu.Unlock()
		return
	}
	delete(b.groups, key)
	g.timer.Stop()
	entries := g.entries
	b.mu.Unlock()

	specs := make([]proof.Spec, len(entries))
	for i, e := range entries {
		specs[i] = e.spec
	}
	// Background context: the window's build serves every waiter, so no
	// single requester's cancellation may abort it.
	resps, err := proof.BuildBatch(context.Background(), specs, g.attestors)
	for i, e := range entries {
		if err != nil {
			e.err = err
		} else {
			e.resp = resps[i]
		}
		close(e.done)
	}
}
