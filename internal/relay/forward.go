// Multi-hop forwarding: the server-side relay leg of a transitive route
// (origin → hub … → source) and the origin-side fallback that starts one.
//
// A relay with forwarding enabled (EnableForwarding) treats a query or
// invoke for a network it has no driver for as something to carry closer:
// it re-wraps the envelope under the remaining deadline budget (the
// serving context HandleEnvelope derived via remainingBudget — each hop
// re-applies the laxer-interpretation rule, and sendFanout restamps both
// budget encodings per attempt), appends its own network to the explicit
// route list so cycles are refused structurally at the next hop, and
// bounds the walk with the envelope's hop TTL. On the return path it
// authenticates the downstream hop chain before extending it with its own
// signed pin — a forwarder never launders an unverifiable path upstream
// under its signature. Forwarded legs go through the same
// sendFanout/sendAtMostOnce machinery as client-facing requests, so every
// hub address feeds the per-address health tracker and circuit breaker,
// and routing automatically prefers healthy hubs.
package relay

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/proof"
	"repro/internal/wire"
)

var (
	// ErrRoutingCycle is returned (in an error envelope) when an envelope
	// arrives at a relay already named on its route.
	ErrRoutingCycle = errors.New("relay: routing cycle")
	// ErrHopLimit is returned when forwarding would exceed the envelope's
	// hop TTL.
	ErrHopLimit = errors.New("relay: hop limit exceeded")
	// ErrNoRoute is returned when neither discovery nor the route table
	// yields a next hop for a target network.
	ErrNoRoute = errors.New("relay: no route to network")
)

// hopLeg is one candidate next hop: the network whose relays are
// contacted and the health-ordered addresses to try. direct marks the
// target network itself rather than a via.
type hopLeg struct {
	network string
	addrs   []string
	direct  bool
}

// forwardLegs builds the candidate legs toward target, direct first: the
// target's own relays when discovery resolves them, then each configured
// via network in table order. Vias already on the envelope's route are
// skipped — the next hop would refuse the cycle anyway — as are
// degenerate self/target vias. Legs whose network discovery cannot
// resolve are dropped.
func (r *Relay) forwardLegs(target string, onRoute func(string) bool) []hopLeg {
	var legs []hopLeg
	if addrs, err := r.resolveOrdered(target); err == nil {
		legs = append(legs, hopLeg{network: target, addrs: addrs, direct: true})
	}
	for _, via := range r.routeTable().NextHops(target) {
		if via == r.localNetwork || via == target || (onRoute != nil && onRoute(via)) {
			continue
		}
		if addrs, err := r.resolveOrdered(via); err == nil {
			legs = append(legs, hopLeg{network: via, addrs: addrs})
		}
	}
	return legs
}

// checkForward applies the structural forwarding guards to an incoming
// envelope and resolves the candidate legs. A non-empty refusal string
// means the envelope must be refused with that diagnostic.
func (r *Relay) checkForward(env *wire.Envelope, target string) (legs []hopLeg, refusal string) {
	if env.RouteContains(r.localNetwork) {
		return nil, fmt.Sprintf("%v: %q already traversed route %v", ErrRoutingCycle, r.localNetwork, env.Route)
	}
	maxHops := env.MaxHops
	if maxHops == 0 {
		maxHops = r.routeTable().MaxHops()
	}
	// The route lists one entry per leg already taken; forwarding adds
	// one more.
	if uint64(len(env.Route))+1 > maxHops {
		return nil, fmt.Sprintf("%v: route %v at limit %d", ErrHopLimit, env.Route, maxHops)
	}
	legs = r.forwardLegs(target, env.RouteContains)
	if len(legs) == 0 {
		return nil, fmt.Sprintf("%v: %q not served by this relay", ErrNoRoute, target)
	}
	return legs, ""
}

// forwardedEnvelope copies env with this relay appended to the route. The
// budget fields are restamped from the serving context on every transport
// attempt, so the copy carries whatever budget remains here, not what the
// origin stamped.
func (r *Relay) forwardedEnvelope(env *wire.Envelope) *wire.Envelope {
	out := *env
	out.Route = append(append([]string(nil), env.Route...), r.localNetwork)
	return &out
}

// sealForwardedResponse authenticates the hop chain a downstream reply
// carries and extends it with this relay's pin. For a via leg the chain
// must be non-empty and end with the via's own pin (truncation shows here);
// for a direct leg to the source, any pins present must still verify.
func (r *Relay) sealForwardedResponse(env *wire.Envelope, q *wire.Query, resp *wire.QueryResponse, leg hopLeg) *wire.Envelope {
	var err error
	if leg.direct {
		_, err = proof.VerifyHopChain(q, resp)
	} else {
		_, err = proof.VerifyHopChainVia(q, resp, leg.network)
	}
	if err != nil {
		r.countError()
		return errEnvelope(env.RequestID, fmt.Sprintf("downstream hop chain via %s: %v", leg.network, err))
	}
	if err := proof.AppendHopPin(resp, q, r.localNetwork, r.forwarderIdentity()); err != nil {
		r.countError()
		return errEnvelope(env.RequestID, err.Error())
	}
	return &wire.Envelope{
		Version:   wire.ProtocolVersion,
		Type:      wire.MsgQueryResponse,
		RequestID: env.RequestID,
		Payload:   resp.Marshal(),
	}
}

// forwardQuery relays a query envelope one hop closer to its target.
// Queries are idempotent, so legs fail over freely (hedged fan-out within
// a leg, next leg on failure).
func (r *Relay) forwardQuery(ctx context.Context, env *wire.Envelope, q *wire.Query) *wire.Envelope {
	legs, refusal := r.checkForward(env, q.TargetNetwork)
	if refusal != "" {
		r.countError()
		return errEnvelope(env.RequestID, refusal)
	}
	fwd := r.forwardedEnvelope(env)
	var lastErr error
	for _, leg := range legs {
		reply, err := r.sendFanout(ctx, leg.network, leg.addrs, fwd)
		if err != nil {
			lastErr = err
			continue
		}
		if reply.Type == wire.MsgError {
			// A downstream refusal (cycle, TTL, no route, rate limit) is
			// relayed verbatim under our envelope ID.
			return errEnvelope(env.RequestID, string(reply.Payload))
		}
		resp, err := wire.UnmarshalQueryResponse(reply.Payload)
		if err != nil {
			r.countError()
			return errEnvelope(env.RequestID, fmt.Sprintf("malformed response via %s: %v", leg.network, err))
		}
		out := r.sealForwardedResponse(env, q, resp, leg)
		if out.Type == wire.MsgQueryResponse {
			r.countForwardedQuery()
		}
		return out
	}
	r.countError()
	return errEnvelope(env.RequestID, fmt.Sprintf("%v: %s: every leg failed: %v", ErrNoRoute, q.TargetNetwork, lastErr))
}

// forwardInvoke relays an invoke envelope one hop closer to its target.
// Invokes are not idempotent: within a leg sendAtMostOnce fails over only
// while delivery provably never happened, and the next leg is tried only
// when the whole previous leg was unreachable. Successful forwarded
// outcomes are remembered in the invoke dedup cache under the requester's
// key, so a transport-level resend of the same request replays instead of
// forwarding (and potentially executing) twice.
func (r *Relay) forwardInvoke(ctx context.Context, env *wire.Envelope, q *wire.Query, dedupKey, fingerprint string) *wire.Envelope {
	legs, refusal := r.checkForward(env, q.TargetNetwork)
	if refusal != "" {
		r.countError()
		return errEnvelope(env.RequestID, refusal)
	}
	fwd := r.forwardedEnvelope(env)
	var lastErr error
	for _, leg := range legs {
		reply, err := r.sendAtMostOnce(ctx, leg.network, leg.addrs, fwd)
		if err != nil {
			if errors.Is(err, ErrAllRelaysFailed) {
				lastErr = err
				continue // provably undelivered on every address of this leg
			}
			r.countError()
			return errEnvelope(env.RequestID, fmt.Sprintf("forward invoke via %s: %v", leg.network, err))
		}
		if reply.Type == wire.MsgError {
			return errEnvelope(env.RequestID, string(reply.Payload))
		}
		resp, err := wire.UnmarshalQueryResponse(reply.Payload)
		if err != nil {
			r.countError()
			return errEnvelope(env.RequestID, fmt.Sprintf("malformed response via %s: %v", leg.network, err))
		}
		out := r.sealForwardedResponse(env, q, resp, leg)
		if out.Type == wire.MsgQueryResponse {
			r.countForwardedInvoke()
			if dedupKey != "" && resp.Error == "" {
				r.invokeRemember(dedupKey, out.Payload, fingerprint)
			}
		}
		return out
	}
	r.countError()
	return errEnvelope(env.RequestID, fmt.Sprintf("%v: %s: every leg failed: %v", ErrNoRoute, q.TargetNetwork, lastErr))
}

// routedLegs builds origin-side via legs for a target discovery could not
// resolve directly.
func (r *Relay) routedLegs(target string) []hopLeg {
	var legs []hopLeg
	for _, via := range r.routeTable().NextHops(target) {
		if via == r.localNetwork || via == target {
			continue
		}
		if addrs, err := r.resolveOrdered(via); err == nil {
			legs = append(legs, hopLeg{network: via, addrs: addrs})
		}
	}
	return legs
}

// routedEnvelope stamps the multi-hop fields on an origin envelope: the
// route opens with this relay's network and the TTL comes from the route
// table.
func (r *Relay) routedEnvelope(msgType wire.MsgType, q *wire.Query) *wire.Envelope {
	return &wire.Envelope{
		Version:   wire.ProtocolVersion,
		Type:      msgType,
		RequestID: q.RequestID,
		Payload:   q.Marshal(),
		Route:     []string{r.localNetwork},
		MaxHops:   r.routeTable().MaxHops(),
	}
}

// queryViaRoute is the origin-side fallback of Query: discovery could not
// resolve the target, so the request is launched down each configured via
// in turn. A response that comes back through a via must carry a hop
// chain ending with that via's pin — the origin knows which hub it handed
// the request to, which is what makes whole-chain truncation detectable.
func (r *Relay) queryViaRoute(ctx context.Context, q *wire.Query, resolveErr error) (*wire.QueryResponse, error) {
	legs := r.routedLegs(q.TargetNetwork)
	if len(legs) == 0 {
		return nil, resolveErr
	}
	env := r.routedEnvelope(wire.MsgQuery, q)
	lastErr := resolveErr
	for _, leg := range legs {
		reply, err := r.sendFanout(ctx, leg.network, leg.addrs, env)
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := parseQueryReply(reply)
		if err != nil {
			return nil, err
		}
		if _, err := proof.VerifyHopChainVia(q, resp, leg.network); err != nil {
			return nil, err
		}
		return resp, nil
	}
	return nil, fmt.Errorf("%w: %s: %w", ErrNoRoute, q.TargetNetwork, lastErr)
}

// invokeViaRoute is the origin-side fallback of Invoke. At-most-once
// semantics extend across legs: the next via is tried only when the whole
// previous leg was provably unreachable.
func (r *Relay) invokeViaRoute(ctx context.Context, q *wire.Query, resolveErr error) (*wire.QueryResponse, error) {
	legs := r.routedLegs(q.TargetNetwork)
	if len(legs) == 0 {
		return nil, resolveErr
	}
	env := r.routedEnvelope(wire.MsgInvoke, q)
	lastErr := resolveErr
	for _, leg := range legs {
		reply, err := r.sendAtMostOnce(ctx, leg.network, leg.addrs, env)
		if err != nil {
			if errors.Is(err, ErrAllRelaysFailed) {
				lastErr = err
				continue
			}
			return nil, err
		}
		resp, err := parseQueryReply(reply)
		if err != nil {
			return nil, err
		}
		if _, err := proof.VerifyHopChainVia(q, resp, leg.network); err != nil {
			return nil, err
		}
		return resp, nil
	}
	return nil, fmt.Errorf("%w: %s: %w", ErrNoRoute, q.TargetNetwork, lastErr)
}
