package relay

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestTCPServerGarbageFrame sends a frame that is not a valid envelope; the
// server must reply with an error envelope and keep the connection usable.
func TestTCPServerGarbageFrame(t *testing.T) {
	reg := NewStaticRegistry()
	r := New("net", reg, &TCPTransport{})
	server, err := NewTCPServer(r, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewTCPServer: %v", err)
	}
	defer server.Close()

	conn, err := net.Dial("tcp", server.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))

	if err := wire.WriteFrame(conn, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	frame, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	env, err := wire.UnmarshalEnvelope(frame)
	if err != nil {
		t.Fatalf("UnmarshalEnvelope: %v", err)
	}
	if env.Type != wire.MsgError {
		t.Fatalf("reply type = %v", env.Type)
	}

	// The same connection still serves valid requests.
	ping := &wire.Envelope{Version: wire.ProtocolVersion, Type: wire.MsgPing, RequestID: "p"}
	if err := wire.WriteFrame(conn, ping.Marshal()); err != nil {
		t.Fatalf("WriteFrame ping: %v", err)
	}
	frame, err = wire.ReadFrame(conn)
	if err != nil {
		t.Fatalf("ReadFrame pong: %v", err)
	}
	env, _ = wire.UnmarshalEnvelope(frame)
	if env.Type != wire.MsgPong {
		t.Fatalf("pong type = %v", env.Type)
	}
}

// TestTCPServerAbruptDisconnect half-writes a frame and disconnects; the
// server must survive and keep serving other clients.
func TestTCPServerAbruptDisconnect(t *testing.T) {
	reg := NewStaticRegistry()
	r := New("net", reg, &TCPTransport{})
	server, err := NewTCPServer(r, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewTCPServer: %v", err)
	}
	defer server.Close()

	conn, err := net.Dial("tcp", server.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	// Write a header promising 1000 bytes, send 3, vanish.
	_, _ = conn.Write([]byte{0x00, 0x00, 0x03, 0xE8, 0x01, 0x02, 0x03})
	conn.Close()

	probe := New("probe", reg, &TCPTransport{})
	if err := probe.Ping(context.Background(), server.Addr()); err != nil {
		t.Fatalf("server wedged after abrupt disconnect: %v", err)
	}
}

// TestTCPServerConcurrentClients hammers the server with parallel pings.
func TestTCPServerConcurrentClients(t *testing.T) {
	reg := NewStaticRegistry()
	r := New("net", reg, &TCPTransport{})
	server, err := NewTCPServer(r, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewTCPServer: %v", err)
	}
	defer server.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			probe := New("probe", reg, &TCPTransport{})
			for i := 0; i < 20; i++ {
				if err := probe.Ping(context.Background(), server.Addr()); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent ping: %v", err)
	}
}

// TestTCPServerCloseIdempotent double-closes and closes with live
// connections.
func TestTCPServerCloseIdempotent(t *testing.T) {
	reg := NewStaticRegistry()
	r := New("net", reg, &TCPTransport{})
	server, err := NewTCPServer(r, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewTCPServer: %v", err)
	}
	conn, err := net.Dial("tcp", server.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	if err := server.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := server.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// The address no longer serves.
	probe := New("probe", reg, &TCPTransport{DialTimeout: 300 * time.Millisecond})
	if err := probe.Ping(context.Background(), server.Addr()); err == nil {
		t.Fatal("closed server still answers")
	}
}
