package relay

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutable time source for driving the health tracker's
// circuit-breaker cooldown deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// TestHealthOrderFailuresDemote: an address with transport failures sorts
// behind addresses without, regardless of registry preference order.
func TestHealthOrderFailuresDemote(t *testing.T) {
	h := newHealthTracker(time.Now, 3, time.Second)
	h.reportFailure("a")
	ordered, open := h.order([]string{"a", "b", "c"})
	if open != 0 {
		t.Fatalf("open = %d, want 0 (one failure does not open the breaker)", open)
	}
	if ordered[0] != "b" || ordered[1] != "c" || ordered[2] != "a" {
		t.Fatalf("order = %v, want failing address demoted to last", ordered)
	}

	// A success resets the streak and restores registry preference order.
	h.reportSuccess("a", time.Millisecond)
	h.reportSuccess("b", time.Millisecond)
	h.reportSuccess("c", time.Millisecond)
	ordered, _ = h.order([]string{"a", "b", "c"})
	if ordered[0] != "a" {
		t.Fatalf("order after recovery = %v, want registry order restored", ordered)
	}
}

// TestHealthOrderByEWMALatency: among addresses without failures, the
// faster EWMA round-trip sorts first.
func TestHealthOrderByEWMALatency(t *testing.T) {
	h := newHealthTracker(time.Now, 3, time.Second)
	h.reportSuccess("slow", 50*time.Millisecond)
	h.reportSuccess("fast", time.Millisecond)
	ordered, _ := h.order([]string{"slow", "fast"})
	if ordered[0] != "fast" {
		t.Fatalf("order = %v, want fast first", ordered)
	}

	// A sustained latency shift moves the estimate: the former-fast address
	// degrades past the slow one within a few samples.
	for i := 0; i < 10; i++ {
		h.reportSuccess("fast", 200*time.Millisecond)
	}
	ordered, _ = h.order([]string{"slow", "fast"})
	if ordered[0] != "slow" {
		t.Fatalf("order after degradation = %v, want slow first", ordered)
	}
}

// TestCircuitBreakerOpensAndCoolsDown: threshold consecutive failures open
// the breaker (address demoted and counted open); the cooldown elapsing
// makes it eligible again; a success closes it fully.
func TestCircuitBreakerOpensAndCoolsDown(t *testing.T) {
	clk := newFakeClock()
	h := newHealthTracker(clk.Now, 3, 10*time.Second)
	for i := 0; i < 2; i++ {
		h.reportFailure("a")
	}
	if h.circuitOpen("a") {
		t.Fatal("breaker open below the failure threshold")
	}
	h.reportFailure("a")
	if !h.circuitOpen("a") {
		t.Fatal("breaker not open after threshold failures")
	}
	if _, open := h.order([]string{"a", "b"}); open != 1 {
		t.Fatalf("open = %d, want 1", open)
	}

	clk.Advance(11 * time.Second)
	if h.circuitOpen("a") {
		t.Fatal("breaker still open after the cooldown elapsed")
	}
	// Half-open: eligible again but still last by failure score, and a
	// single further failure re-opens immediately.
	ordered, open := h.order([]string{"a", "b"})
	if open != 0 || ordered[0] != "b" || ordered[1] != "a" {
		t.Fatalf("half-open order = %v (open %d), want a eligible but last", ordered, open)
	}
	h.reportFailure("a")
	if !h.circuitOpen("a") {
		t.Fatal("half-open breaker did not re-open on the next failure")
	}

	clk.Advance(11 * time.Second)
	h.reportSuccess("a", time.Millisecond)
	if h.circuitOpen("a") {
		t.Fatal("breaker open after a success")
	}
	if st := func() int { h.mu.Lock(); defer h.mu.Unlock(); return h.byAddr["a"].consecFailures }(); st != 0 {
		t.Fatalf("consecutive failures after success = %d, want 0", st)
	}
}

// TestHealthOrderAllOpenKeepsAll: when every breaker is open there is
// nothing healthier to prefer — all addresses stay eligible (open count 0)
// so fan-out still probes them rather than failing by policy.
func TestHealthOrderAllOpenKeepsAll(t *testing.T) {
	h := newHealthTracker(time.Now, 1, time.Minute)
	h.reportFailure("a")
	h.reportFailure("b")
	ordered, open := h.order([]string{"a", "b"})
	if open != 0 {
		t.Fatalf("open = %d, want 0 when every breaker is open", open)
	}
	if len(ordered) != 2 {
		t.Fatalf("order = %v, want both addresses kept", ordered)
	}
}

// TestFailoverStopsAttemptingDeadAddress: after the first failed attempt
// the dead primary is demoted, so subsequent sequential queries go straight
// to the live standby — one transport attempt each instead of seed
// behavior's two (dead primary retried on every query).
func TestFailoverStopsAttemptingDeadAddress(t *testing.T) {
	hub := NewHub()
	reg := NewStaticRegistry()
	src, _ := newCaptureRelay(reg, hub)
	hub.Attach("dead", src)
	hub.Attach("live", src)
	reg.Register("srcnet", "dead", "live")
	hub.SetDown("dead", true)

	dest := New("destnet", reg, hub)
	const queries = 10
	for i := 0; i < queries; i++ {
		resp, err := dest.Query(context.Background(), captureQuery(t))
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if resp.Error != "" {
			t.Fatalf("query %d remote error: %s", i, resp.Error)
		}
	}
	attempts := dest.Stats().FanoutAttempts
	// Seed behavior: 2 attempts per query (dead primary first, every time).
	if attempts >= 2*queries {
		t.Fatalf("FanoutAttempts = %d, want fewer than the %d of always-retry-the-dead-primary", attempts, 2*queries)
	}
	// Health ordering: the dead address is attempted once, then demoted.
	if attempts != queries+1 {
		t.Fatalf("FanoutAttempts = %d, want %d (one wasted attempt total)", attempts, queries+1)
	}
}

// TestBreakerSkipsCountedAfterProbes: failed pings open the dead address's
// breaker; subsequent resolves demote it and account the skip in stats.
func TestBreakerSkipsCountedAfterProbes(t *testing.T) {
	hub := NewHub()
	reg := NewStaticRegistry()
	src, _ := newCaptureRelay(reg, hub)
	hub.Attach("dead", src)
	hub.Attach("live", src)
	reg.Register("srcnet", "dead", "live")
	hub.SetDown("dead", true)

	dest := New("destnet", reg, hub, WithCircuitBreaker(3, time.Minute))
	for i := 0; i < 3; i++ {
		if err := dest.Ping(context.Background(), "dead"); err == nil {
			t.Fatal("ping against a down address succeeded")
		}
	}
	if !dest.health.circuitOpen("dead") {
		t.Fatal("breaker not open after three failed pings")
	}
	for i := 0; i < 5; i++ {
		if _, err := dest.Query(context.Background(), captureQuery(t)); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	stats := dest.Stats()
	if stats.BreakerSkips != 5 {
		t.Fatalf("BreakerSkips = %d, want 5 (one demotion per resolve)", stats.BreakerSkips)
	}
	if stats.FanoutAttempts != 5 {
		t.Fatalf("FanoutAttempts = %d, want 5 (dead address never attempted)", stats.FanoutAttempts)
	}
}

// TestBreakerCooldownRestoresRecoveredAddress: a dead-then-revived relay is
// probed again once the cooldown elapses and earns back its standing with
// one success.
func TestBreakerCooldownRestoresRecoveredAddress(t *testing.T) {
	clk := newFakeClock()
	hub := NewHub()
	reg := NewStaticRegistry()
	src, _ := newCaptureRelay(reg, hub)
	hub.Attach("flappy", src)
	reg.Register("srcnet", "flappy")
	hub.SetDown("flappy", true)

	dest := New("destnet", reg, hub, WithClock(clk.Now), WithCircuitBreaker(2, 10*time.Second))
	for i := 0; i < 2; i++ {
		if _, err := dest.Query(context.Background(), captureQuery(t)); !errors.Is(err, ErrAllRelaysFailed) {
			t.Fatalf("query %d err = %v, want ErrAllRelaysFailed", i, err)
		}
	}
	if !dest.health.circuitOpen("flappy") {
		t.Fatal("breaker not open")
	}
	// Single address: the open breaker cannot demote it below anything, so
	// queries still probe it (availability over purity) and keep failing.
	if _, err := dest.Query(context.Background(), captureQuery(t)); !errors.Is(err, ErrAllRelaysFailed) {
		t.Fatalf("err = %v, want ErrAllRelaysFailed", err)
	}

	hub.SetDown("flappy", false)
	clk.Advance(11 * time.Second)
	resp, err := dest.Query(context.Background(), captureQuery(t))
	if err != nil || resp.Error != "" {
		t.Fatalf("query after recovery: %v %v", err, resp)
	}
	if dest.health.circuitOpen("flappy") {
		t.Fatal("breaker still open after a successful round-trip")
	}
}

// TestHedgedLoserNotChargedAFailure: a hedged loser cancelled because
// another attempt won must not accrue a failure — cancellation says nothing
// about the address's health.
func TestHedgedLoserNotChargedAFailure(t *testing.T) {
	hub := NewHub()
	reg := NewStaticRegistry()
	src, _ := newCaptureRelay(reg, hub)
	hub.Attach("stalled", src)
	hub.Attach("healthy", src)
	reg.Register("srcnet", "stalled", "healthy")
	hub.SetStall("stalled", true)

	dest := New("destnet", reg, hub, WithHedging(5*time.Millisecond, 2))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := dest.Query(ctx, captureQuery(t)); err != nil {
		t.Fatalf("hedged query: %v", err)
	}
	dest.health.mu.Lock()
	st := dest.health.byAddr["stalled"]
	dest.health.mu.Unlock()
	if st != nil && st.consecFailures != 0 {
		t.Fatalf("cancelled loser charged %d failures", st.consecFailures)
	}
}
