//go:build unix

package relay

import (
	"os"
	"syscall"
)

// lockFile takes an exclusive advisory flock on f, blocking until it is
// granted. flock locks attach to the open file description, so two
// FileRegistry instances contend even inside one process — which is exactly
// what lets tests chaos-drive the cross-process protocol with goroutines
// standing in for separate relayd processes.
func lockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX)
}

// unlockFile releases the advisory lock taken by lockFile.
func unlockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}

// FlockSupported reports whether this platform provides real cross-process
// advisory locking for the registry files.
const FlockSupported = true
