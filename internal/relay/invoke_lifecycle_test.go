package relay

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/wire"
)

// tallyTxDriver executes invokes against nothing, counting executions —
// the instrument for pinning down how often the relay actually runs a
// transaction versus replaying one.
type tallyTxDriver struct {
	executions atomic.Int64
	fail       atomic.Bool
	response   []byte
}

func (d *tallyTxDriver) Platform() string { return "test" }

func (d *tallyTxDriver) Query(ctx context.Context, q *wire.Query) (*wire.QueryResponse, error) {
	return &wire.QueryResponse{RequestID: q.RequestID}, nil
}

func (d *tallyTxDriver) Invoke(ctx context.Context, q *wire.Query) (*wire.QueryResponse, error) {
	d.executions.Add(1)
	if d.fail.Load() {
		return nil, errors.New("injected invoke failure")
	}
	return &wire.QueryResponse{RequestID: q.RequestID, EncryptedResult: d.response}, nil
}

// ledgerTxDriver is a tallyTxDriver with a stand-in ledger: committed
// request keys shared across driver instances, the way two relay processes
// front one network whose ledger both can read.
type ledgerTxDriver struct {
	tallyTxDriver
	ledger *fakeInvokeLedger
}

type fakeInvokeLedger struct {
	committed map[string][]byte // interop key -> response
}

func (d *ledgerTxDriver) Invoke(ctx context.Context, q *wire.Query) (*wire.QueryResponse, error) {
	resp, err := d.tallyTxDriver.Invoke(ctx, q)
	if err == nil {
		d.ledger.committed[q.InteropKey()] = d.response
	}
	return resp, err
}

func (d *ledgerTxDriver) ReplayInvoke(ctx context.Context, q *wire.Query) (*wire.QueryResponse, bool, error) {
	payload, ok := d.ledger.committed[q.InteropKey()]
	if !ok {
		return nil, false, nil
	}
	return &wire.QueryResponse{RequestID: q.RequestID, EncryptedResult: payload}, true, nil
}

func invokeQuery(requestID string) *wire.Query {
	return &wire.Query{
		RequestID:         requestID,
		RequestingNetwork: "dest-net",
		TargetNetwork:     "src-net",
		Contract:          "cc",
		Function:          "fn",
		RequesterCertPEM:  []byte("cert-pem"),
	}
}

func invokeEnvelope(q *wire.Query) *wire.Envelope {
	return &wire.Envelope{
		Version:   wire.ProtocolVersion,
		Type:      wire.MsgInvoke,
		RequestID: q.RequestID,
		Payload:   q.Marshal(),
	}
}

// cacheState snapshots the replay cache's internal accounting.
type cacheState struct {
	served, pending, liveOrder, bytes int
}

func invokeCacheState(r *Relay) cacheState {
	r.invokeMu.Lock()
	defer r.invokeMu.Unlock()
	total := 0
	for _, s := range r.invokeServed {
		total += len(s.payload)
	}
	if total != r.invokeBytes {
		// Surface accounting drift through the snapshot rather than a
		// separate assertion at every call site.
		total = -total
	}
	return cacheState{
		served:    len(r.invokeServed),
		pending:   len(r.invokePending),
		liveOrder: len(r.invokeOrder) - r.invokeHead,
		bytes:     r.invokeBytes,
	}
}

// TestInvokeReplayCacheLifecyclePinned is the regression test for the
// replay-cache entry lifecycle: across an execution and any number of
// replays of the same request, the cache holds exactly one served entry,
// no pending entry survives (the executor's release fires exactly once,
// and replayed responses own nothing to release), and the byte accounting
// matches the retained payloads.
func TestInvokeReplayCacheLifecyclePinned(t *testing.T) {
	driver := &tallyTxDriver{response: []byte("committed-response")}
	r := New("src-net", NewStaticRegistry(), NewHub())
	r.RegisterDriver("src-net", driver)
	q := invokeQuery("lifecycle-1")

	first := r.HandleEnvelope(context.Background(), invokeEnvelope(q))
	if first.Type != wire.MsgQueryResponse {
		t.Fatalf("first reply = %s (%s)", first.Type, first.Payload)
	}
	if got := driver.executions.Load(); got != 1 {
		t.Fatalf("executions after first invoke = %d", got)
	}
	baseline := invokeCacheState(r)
	if baseline.served != 1 || baseline.pending != 0 || baseline.liveOrder != 1 {
		t.Fatalf("cache after first invoke = %+v", baseline)
	}
	if baseline.bytes <= 0 {
		t.Fatalf("byte accounting drifted: %+v", baseline)
	}

	// Repeated replays must neither re-execute nor grow any cache
	// dimension: no duplicate served entries, no resurrected pending
	// entries, no order-slice creep, no byte drift.
	for i := 0; i < 50; i++ {
		reply := r.HandleEnvelope(context.Background(), invokeEnvelope(q))
		if reply.Type != wire.MsgQueryResponse {
			t.Fatalf("replay %d reply = %s (%s)", i, reply.Type, reply.Payload)
		}
		if !bytes.Equal(reply.Payload, first.Payload) {
			t.Fatalf("replay %d payload diverged from original", i)
		}
	}
	if got := driver.executions.Load(); got != 1 {
		t.Fatalf("executions after replays = %d, want 1", got)
	}
	if after := invokeCacheState(r); after != baseline {
		t.Fatalf("cache state drifted across replays: %+v -> %+v", baseline, after)
	}
}

// TestInvokeFailedAttemptReleasesPending: a failed execution must leave no
// pending entry behind (or duplicates would block forever) and no served
// entry (failures are not replayable), and a retry with the same ID must
// execute again.
func TestInvokeFailedAttemptReleasesPending(t *testing.T) {
	driver := &tallyTxDriver{response: []byte("r")}
	driver.fail.Store(true)
	r := New("src-net", NewStaticRegistry(), NewHub())
	r.RegisterDriver("src-net", driver)
	q := invokeQuery("lifecycle-fail-1")

	reply := r.HandleEnvelope(context.Background(), invokeEnvelope(q))
	resp, err := wire.UnmarshalQueryResponse(reply.Payload)
	if err != nil || resp.Error == "" {
		t.Fatalf("expected application error reply, got %s (err=%v)", reply.Payload, err)
	}
	if st := invokeCacheState(r); st.served != 0 || st.pending != 0 || st.liveOrder != 0 || st.bytes != 0 {
		t.Fatalf("cache after failed invoke = %+v, want empty", st)
	}

	driver.fail.Store(false)
	if reply := r.HandleEnvelope(context.Background(), invokeEnvelope(q)); reply.Type != wire.MsgQueryResponse {
		t.Fatalf("retry reply = %s (%s)", reply.Type, reply.Payload)
	}
	if got := driver.executions.Load(); got != 2 {
		t.Fatalf("executions = %d, want 2 (failed attempt + successful retry)", got)
	}
	if st := invokeCacheState(r); st.served != 1 || st.pending != 0 {
		t.Fatalf("cache after retry = %+v", st)
	}
}

// TestInvokeLedgerReplaySecondRelay: a second relay process (fresh Relay,
// empty replay cache) fronting the same ledger answers a duplicate from
// the ledger without executing, counts it as a replay, and its cache
// lifecycle stays as pinned as the first relay's — including across
// repeated ledger-hit replays.
func TestInvokeLedgerReplaySecondRelay(t *testing.T) {
	shared := &fakeInvokeLedger{committed: make(map[string][]byte)}
	driverA := &ledgerTxDriver{ledger: shared}
	driverA.response = []byte("ledger-committed")
	driverB := &ledgerTxDriver{ledger: shared}
	driverB.response = []byte("ledger-committed")

	relayA := New("src-net", NewStaticRegistry(), NewHub())
	relayA.RegisterDriver("src-net", driverA)
	relayB := New("src-net", NewStaticRegistry(), NewHub())
	relayB.RegisterDriver("src-net", driverB)

	q := invokeQuery("cross-relay-1")
	original := relayA.HandleEnvelope(context.Background(), invokeEnvelope(q))
	if original.Type != wire.MsgQueryResponse {
		t.Fatalf("original reply = %s (%s)", original.Type, original.Payload)
	}

	var replayed *wire.Envelope
	for i := 0; i < 10; i++ {
		replayed = relayB.HandleEnvelope(context.Background(), invokeEnvelope(q))
		if replayed.Type != wire.MsgQueryResponse {
			t.Fatalf("replay %d via relay B = %s (%s)", i, replayed.Type, replayed.Payload)
		}
	}
	if got := driverB.executions.Load(); got != 0 {
		t.Fatalf("relay B executed %d times, want 0 (ledger replay)", got)
	}
	if got := driverA.executions.Load(); got != 1 {
		t.Fatalf("relay A executed %d times, want 1", got)
	}
	respA, err := wire.UnmarshalQueryResponse(original.Payload)
	if err != nil {
		t.Fatalf("unmarshal original: %v", err)
	}
	respB, err := wire.UnmarshalQueryResponse(replayed.Payload)
	if err != nil {
		t.Fatalf("unmarshal replay: %v", err)
	}
	if !bytes.Equal(respA.EncryptedResult, respB.EncryptedResult) {
		t.Fatalf("relay B replay %q != relay A original %q", respB.EncryptedResult, respA.EncryptedResult)
	}
	if stats := relayB.Stats(); stats.InvokeReplays != 1 || stats.InvokesServed != 0 {
		// Only the first duplicate consults the ledger; the rest hit the
		// now-warm in-memory cache.
		t.Fatalf("relay B stats = %+v, want 1 ledger replay and 0 executions", stats)
	}
	if st := invokeCacheState(relayB); st.served != 1 || st.pending != 0 || st.liveOrder != 1 {
		t.Fatalf("relay B cache after ledger replays = %+v", st)
	}
}

// TestInvokeDuplicateWaiterDoesNotReleaseExecutor: a duplicate that gives
// up (context cancelled) while the original is still executing must not
// tear down the executor's pending entry — the fix pinned by binding
// release to the claim. A later duplicate must still be able to wait for
// and replay the original's outcome.
func TestInvokeDuplicateWaiterDoesNotReleaseExecutor(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	driver := &blockingTxDriver{gate: gate, started: started, response: []byte("slow-commit")}
	r := New("src-net", NewStaticRegistry(), NewHub())
	r.RegisterDriver("src-net", driver)
	q := invokeQuery("waiter-1")

	execDone := make(chan *wire.Envelope, 1)
	go func() {
		execDone <- r.HandleEnvelope(context.Background(), invokeEnvelope(q))
	}()
	<-started // the executor owns the pending entry and is now blocked

	// A duplicate arrives and abandons the wait.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if reply := r.HandleEnvelope(ctx, invokeEnvelope(q)); reply.Type != wire.MsgError {
		t.Fatalf("cancelled duplicate reply = %s, want error", reply.Type)
	}
	if st := invokeCacheState(r); st.pending != 1 {
		t.Fatalf("pending entries after abandoned duplicate = %d, want 1 (executor still owns it)", st.pending)
	}

	// A patient duplicate waits for the executor's result.
	waiterDone := make(chan *wire.Envelope, 1)
	go func() {
		waiterDone <- r.HandleEnvelope(context.Background(), invokeEnvelope(q))
	}()
	close(gate) // let the executor commit
	exec := <-execDone
	waited := <-waiterDone
	if exec.Type != wire.MsgQueryResponse || waited.Type != wire.MsgQueryResponse {
		t.Fatalf("executor=%s waiter=%s, want both query responses", exec.Type, waited.Type)
	}
	if !bytes.Equal(exec.Payload, waited.Payload) {
		t.Fatal("waiter's replay diverged from executor's response")
	}
	if got := driver.executions.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1", got)
	}
	if st := invokeCacheState(r); st.served != 1 || st.pending != 0 {
		t.Fatalf("cache after settle = %+v", st)
	}
}

// TestInvokeCachedReplayRefusesMismatchedRequest: the in-memory replay
// path applies the same request-match rule as the ledger path — a reused
// idempotency key with different arguments gets an error, never the cached
// response of a different question, and the cache is untouched.
func TestInvokeCachedReplayRefusesMismatchedRequest(t *testing.T) {
	driver := &tallyTxDriver{response: []byte("original")}
	r := New("src-net", NewStaticRegistry(), NewHub())
	r.RegisterDriver("src-net", driver)
	q := invokeQuery("mismatch-1")
	q.Args = [][]byte{[]byte("real")}

	if reply := r.HandleEnvelope(context.Background(), invokeEnvelope(q)); reply.Type != wire.MsgQueryResponse {
		t.Fatalf("original reply = %s (%s)", reply.Type, reply.Payload)
	}
	baseline := invokeCacheState(r)

	altered := invokeQuery("mismatch-1")
	altered.Args = [][]byte{[]byte("DIFFERENT")}
	reply := r.HandleEnvelope(context.Background(), invokeEnvelope(altered))
	if reply.Type != wire.MsgError {
		t.Fatalf("mismatched duplicate reply = %s (%s), want error", reply.Type, reply.Payload)
	}
	if got := driver.executions.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1 (mismatch must not execute)", got)
	}
	if after := invokeCacheState(r); after != baseline {
		t.Fatalf("cache drifted on refused mismatch: %+v -> %+v", baseline, after)
	}
	// The honest duplicate still replays.
	if reply := r.HandleEnvelope(context.Background(), invokeEnvelope(q)); reply.Type != wire.MsgQueryResponse {
		t.Fatalf("honest replay = %s (%s)", reply.Type, reply.Payload)
	}
}

// TestInvokeOversizedResponseRecoveredFromLedger: a response too large for
// the in-memory cache (remembered by ID with the body dropped) is still
// replayed on a duplicate — the warm relay recovers it from the ledger
// exactly as a cold sibling would, instead of refusing what the ledger can
// answer.
func TestInvokeOversizedResponseRecoveredFromLedger(t *testing.T) {
	shared := &fakeInvokeLedger{committed: make(map[string][]byte)}
	driver := &ledgerTxDriver{ledger: shared}
	driver.response = bytes.Repeat([]byte("x"), invokeDedupMaxEntryBytes+1)
	r := New("src-net", NewStaticRegistry(), NewHub())
	r.RegisterDriver("src-net", driver)
	q := invokeQuery("oversized-1")

	if reply := r.HandleEnvelope(context.Background(), invokeEnvelope(q)); reply.Type != wire.MsgQueryResponse {
		t.Fatalf("original reply = %s", reply.Type)
	}
	reply := r.HandleEnvelope(context.Background(), invokeEnvelope(q))
	if reply.Type != wire.MsgQueryResponse {
		t.Fatalf("duplicate of oversized response = %s (%s), want ledger-recovered replay", reply.Type, reply.Payload)
	}
	resp, err := wire.UnmarshalQueryResponse(reply.Payload)
	if err != nil || !bytes.Equal(resp.EncryptedResult, driver.response) {
		t.Fatalf("recovered payload wrong (err=%v, %d bytes)", err, len(resp.EncryptedResult))
	}
	if got := driver.executions.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1", got)
	}
	if stats := r.Stats(); stats.InvokeReplays != 1 {
		t.Fatalf("InvokeReplays = %d, want 1", stats.InvokeReplays)
	}
	// A mismatched reuse of the key still gets the refusal, not the body.
	altered := invokeQuery("oversized-1")
	altered.Args = [][]byte{[]byte("other")}
	if reply := r.HandleEnvelope(context.Background(), invokeEnvelope(altered)); reply.Type != wire.MsgError {
		t.Fatalf("mismatched oversized duplicate = %s, want error", reply.Type)
	}
}

// TestInvokeCacheScopedByTargetNetwork: one relay may front several
// co-located networks, and the dedup key does not include the target
// network — the fingerprint must, so a cached response for network A is
// never replayed for an invoke aimed at network B under the same request
// ID (the reuse is refused; use distinct request IDs per target).
func TestInvokeCacheScopedByTargetNetwork(t *testing.T) {
	driverA := &tallyTxDriver{response: []byte("net-a")}
	driverB := &tallyTxDriver{response: []byte("net-b")}
	r := New("src-net", NewStaticRegistry(), NewHub())
	r.RegisterDriver("src-net", driverA)
	r.RegisterDriver("other-net", driverB)

	q := invokeQuery("cross-net-1")
	if reply := r.HandleEnvelope(context.Background(), invokeEnvelope(q)); reply.Type != wire.MsgQueryResponse {
		t.Fatalf("net A invoke = %s (%s)", reply.Type, reply.Payload)
	}
	other := invokeQuery("cross-net-1")
	other.TargetNetwork = "other-net"
	reply := r.HandleEnvelope(context.Background(), invokeEnvelope(other))
	if reply.Type == wire.MsgQueryResponse {
		resp, _ := wire.UnmarshalQueryResponse(reply.Payload)
		if resp != nil && bytes.Equal(resp.EncryptedResult, []byte("net-a")) {
			t.Fatal("network A's cached response replayed for a network B invoke")
		}
	}
	if reply.Type != wire.MsgError {
		t.Fatalf("cross-network key reuse reply = %s, want refusal", reply.Type)
	}
	if got := driverB.executions.Load(); got != 0 {
		t.Fatalf("driver B executed %d times for a refused request", got)
	}
}

// blockingTxDriver parks Invoke on a gate so tests can hold a request
// in-flight deliberately.
type blockingTxDriver struct {
	executions atomic.Int64
	gate       chan struct{}
	started    chan struct{}
	response   []byte
}

func (d *blockingTxDriver) Platform() string { return "test" }

func (d *blockingTxDriver) Query(ctx context.Context, q *wire.Query) (*wire.QueryResponse, error) {
	return nil, fmt.Errorf("not a query driver")
}

func (d *blockingTxDriver) Invoke(ctx context.Context, q *wire.Query) (*wire.QueryResponse, error) {
	d.executions.Add(1)
	select {
	case d.started <- struct{}{}:
	default:
	}
	<-d.gate
	return &wire.QueryResponse{RequestID: q.RequestID, EncryptedResult: d.response}, nil
}
