// The chaos tests assert that concurrent FileRegistry instances never lose
// updates, which is precisely what the no-op flock fallback on non-unix
// platforms cannot promise (see flock_other.go) — so they are unix-only,
// like the guarantee.
//go:build unix

package relay

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestFileRegistryConcurrentRegistrarProcesses chaos-drives the shared
// deploy-dir protocol: every goroutine uses its own FileRegistry instance,
// so the per-instance mutex serializes nothing across them — exactly the
// situation of N relayd processes sharing one registry file, where only
// the cross-process flock stands between concurrent read-modify-write
// cycles and lost registrations. Each registrar churns through renewals,
// deregister/re-register cycles and prunes; afterwards every registrar's
// address must still be present. Before the flock this lost registrations
// routinely (two loads, two stores, last store wins).
func TestFileRegistryConcurrentRegistrarProcesses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "registry.json")

	// A decoy whose lease is already lapsed gives the concurrent Prunes
	// something real to remove while registrations fly.
	decoy := NewFileRegistry(path)
	decoy.now = func() time.Time { return time.Now().Add(-time.Hour) }
	if err := decoy.RegisterLease("net-0", "10.9.9.9:1", time.Minute); err != nil {
		t.Fatalf("seed decoy: %v", err)
	}

	const registrars = 8
	const rounds = 12
	// Every (registrar, round) pair registers a distinct address that is
	// never touched again, so a single lost read-modify-write anywhere in
	// the run is permanently visible at the end — a registrar re-announcing
	// the same address would instead silently heal the loss one round
	// later and mask the bug.
	addrFor := func(i, r int) string { return fmt.Sprintf("10.0.%d.%d:9080", i, r) }
	netFor := func(i int) string { return fmt.Sprintf("net-%d", i%2) }
	start := make(chan struct{})
	errs := make(chan error, registrars)
	var wg sync.WaitGroup
	for i := 0; i < registrars; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// One registry instance per goroutine = one relayd process.
			reg := NewFileRegistry(path)
			churn := fmt.Sprintf("10.8.8.%d:9080", i)
			<-start
			for r := 0; r < rounds; r++ {
				if err := reg.RegisterLease(netFor(i), addrFor(i, r), time.Minute); err != nil {
					errs <- fmt.Errorf("registrar %d round %d: RegisterLease: %w", i, r, err)
					return
				}
				switch r % 4 {
				case 1:
					// Restart churn on a dedicated address.
					if err := reg.RegisterLease(netFor(i), churn, time.Minute); err != nil {
						errs <- fmt.Errorf("registrar %d round %d: churn register: %w", i, r, err)
						return
					}
					if err := reg.Deregister(netFor(i), churn); err != nil {
						errs <- fmt.Errorf("registrar %d round %d: churn deregister: %w", i, r, err)
						return
					}
				case 3:
					if _, err := reg.Prune(); err != nil {
						errs <- fmt.Errorf("registrar %d round %d: Prune: %w", i, r, err)
						return
					}
				}
			}
		}(i)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Every registration of every round must have survived every concurrent
	// writer.
	final := NewFileRegistry(path)
	lost := 0
	for i := 0; i < registrars; i++ {
		addrs, err := final.Resolve(netFor(i))
		if err != nil {
			t.Fatalf("Resolve(%s): %v", netFor(i), err)
		}
		for r := 0; r < rounds; r++ {
			if !containsAddr(addrs, addrFor(i, r)) {
				lost++
			}
		}
	}
	if lost > 0 {
		t.Fatalf("%d of %d registrations lost to concurrent read-modify-write", lost, registrars*rounds)
	}
}

// TestFileRegistryConcurrentHealthPublishers races health publication from
// separate registry instances against lease renewals: published records
// must land on the surviving entries without dropping either the
// registrations or each other.
func TestFileRegistryConcurrentHealthPublishers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "registry.json")
	seed := NewFileRegistry(path)
	const addrs = 4
	for i := 0; i < addrs; i++ {
		if err := seed.Register("net", fmt.Sprintf("10.1.0.%d:9080", i)); err != nil {
			t.Fatalf("seed Register: %v", err)
		}
	}

	const publishers = 6
	errs := make(chan error, publishers)
	var wg sync.WaitGroup
	for i := 0; i < publishers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reg := NewFileRegistry(path)
			for r := 0; r < 10; r++ {
				records := map[string]SharedHealth{
					fmt.Sprintf("10.1.0.%d:9080", r%addrs): {
						ConsecFailures:   i + 1,
						EWMALatencyNanos: int64(time.Millisecond),
						ObservedUnixNano: int64(i*1000 + r),
					},
				}
				if err := reg.PublishHealth(records); err != nil {
					errs <- fmt.Errorf("publisher %d: %w", i, err)
					return
				}
				if err := reg.RegisterLease("net", fmt.Sprintf("10.1.0.%d:9080", i%addrs), time.Minute); err != nil {
					errs <- fmt.Errorf("publisher %d renew: %w", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	final := NewFileRegistry(path)
	resolved, err := final.Resolve("net")
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if len(resolved) != addrs {
		t.Fatalf("resolved %d addresses, want %d: %v", len(resolved), addrs, resolved)
	}
	records, err := final.HealthRecords()
	if err != nil {
		t.Fatalf("HealthRecords: %v", err)
	}
	if len(records) == 0 {
		t.Fatal("no health records survived concurrent publication")
	}
}

func containsAddr(addrs []string, want string) bool {
	for _, a := range addrs {
		if a == want {
			return true
		}
	}
	return false
}
