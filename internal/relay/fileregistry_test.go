package relay

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFileRegistryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "registry.json")
	reg := NewFileRegistry(path)

	if _, err := reg.Resolve("tradelens"); !errors.Is(err, ErrUnknownNetwork) {
		t.Fatalf("empty registry: %v", err)
	}
	if err := reg.Register("tradelens", "127.0.0.1:9080"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := reg.Register("tradelens", "127.0.0.1:9081"); err != nil {
		t.Fatalf("Register second: %v", err)
	}
	addrs, err := reg.Resolve("tradelens")
	if err != nil || len(addrs) != 2 || addrs[0] != "127.0.0.1:9080" {
		t.Fatalf("Resolve = %v, %v", addrs, err)
	}

	// A fresh registry instance over the same file sees the data.
	reg2 := NewFileRegistry(path)
	addrs, err = reg2.Resolve("tradelens")
	if err != nil || len(addrs) != 2 {
		t.Fatalf("reloaded Resolve = %v, %v", addrs, err)
	}
	nets, err := reg2.Networks()
	if err != nil || len(nets) != 1 {
		t.Fatalf("Networks = %v, %v", nets, err)
	}
}

func TestFileRegistryLiveEdits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "registry.json")
	reg := NewFileRegistry(path)
	_ = reg.Register("a", "addr1")

	// Simulate an operator editing the file directly.
	if err := os.WriteFile(path, []byte(`{"a":["addr9"]}`), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	addrs, err := reg.Resolve("a")
	if err != nil || len(addrs) != 1 || addrs[0] != "addr9" {
		t.Fatalf("live edit not observed: %v, %v", addrs, err)
	}
}

func TestFileRegistryCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "registry.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	reg := NewFileRegistry(path)
	if _, err := reg.Resolve("a"); err == nil {
		t.Fatal("corrupt registry accepted")
	}
}
