package relay

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestFileRegistryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "registry.json")
	reg := NewFileRegistry(path)

	if _, err := reg.Resolve("tradelens"); !errors.Is(err, ErrUnknownNetwork) {
		t.Fatalf("empty registry: %v", err)
	}
	if err := reg.Register("tradelens", "127.0.0.1:9080"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := reg.Register("tradelens", "127.0.0.1:9081"); err != nil {
		t.Fatalf("Register second: %v", err)
	}
	addrs, err := reg.Resolve("tradelens")
	if err != nil || len(addrs) != 2 || addrs[0] != "127.0.0.1:9080" {
		t.Fatalf("Resolve = %v, %v", addrs, err)
	}

	// A fresh registry instance over the same file sees the data.
	reg2 := NewFileRegistry(path)
	addrs, err = reg2.Resolve("tradelens")
	if err != nil || len(addrs) != 2 {
		t.Fatalf("reloaded Resolve = %v, %v", addrs, err)
	}
	nets, err := reg2.Networks()
	if err != nil || len(nets) != 1 {
		t.Fatalf("Networks = %v, %v", nets, err)
	}
}

func TestFileRegistryLiveEdits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "registry.json")
	reg := NewFileRegistry(path)
	_ = reg.Register("a", "addr1")

	// Simulate an operator editing the file directly.
	if err := os.WriteFile(path, []byte(`{"a":["addr9"]}`), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	addrs, err := reg.Resolve("a")
	if err != nil || len(addrs) != 1 || addrs[0] != "addr9" {
		t.Fatalf("live edit not observed: %v, %v", addrs, err)
	}
}

func TestFileRegistryCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "registry.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	reg := NewFileRegistry(path)
	if _, err := reg.Resolve("a"); err == nil {
		t.Fatal("corrupt registry accepted")
	}
}

// TestFileRegistryRestartIdempotent models relayd restarting against the
// same deployment dir: each run is a fresh FileRegistry instance announcing
// the same address, and the file must end up with exactly one entry.
func TestFileRegistryRestartIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "registry.json")
	for restart := 0; restart < 3; restart++ {
		reg := NewFileRegistry(path)
		if err := reg.RegisterLease("tradelens", "127.0.0.1:9080", time.Minute); err != nil {
			t.Fatalf("restart %d RegisterLease: %v", restart, err)
		}
	}
	entries, err := NewFileRegistry(path).Entries()
	if err != nil {
		t.Fatalf("Entries: %v", err)
	}
	if got := entries["tradelens"]; len(got) != 1 || got[0].Addr != "127.0.0.1:9080" {
		t.Fatalf("after three restarts entries = %+v, want exactly one", got)
	}

	// Permanent Register dedupes the same way.
	reg := NewFileRegistry(path)
	if err := reg.Register("tradelens", "127.0.0.1:9080", "127.0.0.1:9081"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := reg.Register("tradelens", "127.0.0.1:9081"); err != nil {
		t.Fatalf("Register again: %v", err)
	}
	addrs, err := reg.Resolve("tradelens")
	if err != nil || len(addrs) != 2 {
		t.Fatalf("Resolve = %v, %v, want the two deduplicated addresses", addrs, err)
	}
}

// TestFileRegistryLeaseExpiryAndPrune: a lapsed lease stops resolving (and
// the laxer Entries view still shows it) until Prune removes it from the
// file.
func TestFileRegistryLeaseExpiryAndPrune(t *testing.T) {
	path := filepath.Join(t.TempDir(), "registry.json")
	clk := newFakeClock()
	reg := NewFileRegistry(path)
	reg.now = clk.Now

	if err := reg.RegisterLease("tradelens", "leased:1", 30*time.Second); err != nil {
		t.Fatalf("RegisterLease: %v", err)
	}
	if err := reg.Register("tradelens", "permanent:1"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	addrs, err := reg.Resolve("tradelens")
	if err != nil || len(addrs) != 2 {
		t.Fatalf("Resolve = %v, %v", addrs, err)
	}

	// Renewal pushes the expiry out.
	clk.Advance(20 * time.Second)
	if err := reg.RegisterLease("tradelens", "leased:1", 30*time.Second); err != nil {
		t.Fatalf("renew: %v", err)
	}
	clk.Advance(20 * time.Second)
	if addrs, _ = reg.Resolve("tradelens"); len(addrs) != 2 {
		t.Fatalf("renewed lease lapsed early: %v", addrs)
	}

	// Left unrenewed, the lease lapses: only the permanent entry resolves.
	clk.Advance(time.Minute)
	addrs, err = reg.Resolve("tradelens")
	if err != nil || len(addrs) != 1 || addrs[0] != "permanent:1" {
		t.Fatalf("after expiry Resolve = %v, %v, want just the permanent entry", addrs, err)
	}
	entries, err := reg.Entries()
	if err != nil || len(entries["tradelens"]) != 2 {
		t.Fatalf("Entries = %+v, %v, want the expired entry still listed", entries, err)
	}

	pruned, err := reg.Prune()
	if err != nil || pruned != 1 {
		t.Fatalf("Prune = %d, %v, want 1", pruned, err)
	}
	entries, _ = reg.Entries()
	if len(entries["tradelens"]) != 1 {
		t.Fatalf("after prune Entries = %+v", entries)
	}
}

// TestFileRegistryDeregister removes one address and drops the network once
// its last entry is gone.
func TestFileRegistryDeregister(t *testing.T) {
	path := filepath.Join(t.TempDir(), "registry.json")
	reg := NewFileRegistry(path)
	if err := reg.Register("a", "addr1", "addr2"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := reg.Deregister("a", "addr1"); err != nil {
		t.Fatalf("Deregister: %v", err)
	}
	addrs, err := reg.Resolve("a")
	if err != nil || len(addrs) != 1 || addrs[0] != "addr2" {
		t.Fatalf("Resolve = %v, %v", addrs, err)
	}
	if err := reg.Deregister("a", "missing"); err != nil {
		t.Fatalf("Deregister of an absent address: %v", err)
	}
	if err := reg.Deregister("a", "addr2"); err != nil {
		t.Fatalf("Deregister last: %v", err)
	}
	nets, err := reg.Networks()
	if err != nil || len(nets) != 0 {
		t.Fatalf("Networks after last deregister = %v, %v", nets, err)
	}
}

// TestFileRegistryConcurrentRegisterResolve hammers one file with
// concurrent writers (separate instances, like multiple relayds sharing a
// deploy dir would each hold their own lock) and readers; under -race this
// doubles as the locking test, and any torn write surfaces as a parse
// error from Resolve.
func TestFileRegistryConcurrentRegisterResolve(t *testing.T) {
	path := filepath.Join(t.TempDir(), "registry.json")
	writer := NewFileRegistry(path)
	reader := NewFileRegistry(path)
	if err := writer.Register("net-0", "addr-0"); err != nil {
		t.Fatalf("seed Register: %v", err)
	}

	const iterations = 100
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < iterations; i++ {
			if err := writer.RegisterLease("net-0", fmt.Sprintf("addr-%d", i%7), time.Minute); err != nil {
				report(fmt.Errorf("RegisterLease: %w", err))
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iterations; i++ {
			if err := writer.Register("net-1", fmt.Sprintf("addr-%d", i%5)); err != nil {
				report(fmt.Errorf("Register: %w", err))
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iterations; i++ {
			if _, err := reader.Resolve("net-0"); err != nil {
				report(fmt.Errorf("Resolve observed a torn or missing file: %w", err))
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	addrs, err := writer.Resolve("net-0")
	if err != nil {
		t.Fatalf("final Resolve: %v", err)
	}
	if len(addrs) > 7 {
		t.Fatalf("dedup failed under concurrency: %d entries for 7 distinct addresses", len(addrs))
	}
}

// TestAnnounceHeartbeatAndShutdown: the announcer keeps a lease alive well
// past its TTL, and stop() deregisters the address. The TTL-to-runtime
// margin is generous (a renewal would have to slip >2/3 of a 600ms TTL for
// the lease to lapse) so a loaded CI scheduler cannot flake it.
func TestAnnounceHeartbeatAndShutdown(t *testing.T) {
	path := filepath.Join(t.TempDir(), "registry.json")
	reg := NewFileRegistry(path)
	const ttl = 600 * time.Millisecond
	stop, err := Announce(reg, "tradelens", "127.0.0.1:9080", ttl, nil)
	if err != nil {
		t.Fatalf("Announce: %v", err)
	}
	deadline := time.Now().Add(2 * ttl)
	for time.Now().Before(deadline) {
		if addrs, err := reg.Resolve("tradelens"); err != nil || len(addrs) != 1 {
			t.Fatalf("lease lapsed despite heartbeat: %v, %v", addrs, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	stop()
	stop() // idempotent
	if _, err := reg.Resolve("tradelens"); !errors.Is(err, ErrUnknownNetwork) {
		t.Fatalf("after stop Resolve err = %v, want ErrUnknownNetwork", err)
	}
}
