package relay

import (
	"fmt"
	"sync"
	"time"
)

// RateLimiter implements the relay-side DoS protection §5 of the paper
// anticipates ("DoS protection can also be built into the relay service,
// protecting the peers themselves from such attacks"): a token bucket per
// requesting network bounds how fast any one network can drive queries into
// the local peers. Unknown requesters share the "" bucket.
type RateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	now     func() time.Time
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter allows `rate` requests per second with the given burst per
// requesting network.
func NewRateLimiter(rate float64, burst int) *RateLimiter {
	if rate <= 0 {
		rate = 1
	}
	if burst < 1 {
		burst = 1
	}
	return &RateLimiter{
		rate:    rate,
		burst:   float64(burst),
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
}

// Allow reports whether a request from the given network may proceed,
// consuming a token if so.
func (l *RateLimiter) Allow(requestingNetwork string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.buckets[requestingNetwork]
	if !ok {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[requestingNetwork] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// WithRateLimit installs a per-requesting-network rate limiter on the
// relay's server side. Requests over the limit receive an error envelope
// without ever reaching a driver or peer.
func WithRateLimit(l *RateLimiter) Option {
	return func(r *Relay) { r.limiter = l }
}

// Stats is a snapshot of the relay's served-request counters, the
// operational visibility a production relay deployment needs.
type Stats struct {
	QueriesServed   uint64
	InvokesServed   uint64
	ErrorsReturned  uint64
	RateLimited     uint64
	EventsDelivered uint64
	// InvokeReplays counts invokes answered from the ledger's committed
	// record — duplicates of requests a sibling relay (or an earlier
	// incarnation of this one) already committed, whether caught by the
	// pre-execution lookup or by the driver after losing the commit race
	// (the latter also count as InvokesServed, since an execution was
	// attempted).
	InvokeReplays uint64

	// AttestationCacheHits counts queries whose proof was served from the
	// driver's content-addressed attestation cache — zero ECDSA signatures
	// and zero ECIES encryptions performed. AttestationCacheMisses counts
	// the queries that had to build a fresh proof.
	AttestationCacheHits   uint64
	AttestationCacheMisses uint64

	// Client-side fan-out accounting (destination relay role).
	FanoutAttempts uint64 // transport sends launched by client-side fan-out (queries, invokes, subscribes)
	HedgedWins     uint64 // requests won by a hedge attempt rather than the first address
	HedgedLosses   uint64 // in-flight attempts cancelled because another attempt won
	BreakerSkips   uint64 // circuit-open addresses demoted past healthy ones at resolve time
}

// Stats returns a copy of the relay's counters.
func (r *Relay) Stats() Stats {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	return r.stats
}

func (r *Relay) countQuery()  { r.statsMu.Lock(); r.stats.QueriesServed++; r.statsMu.Unlock() }
func (r *Relay) countInvoke() { r.statsMu.Lock(); r.stats.InvokesServed++; r.statsMu.Unlock() }
func (r *Relay) countError()  { r.statsMu.Lock(); r.stats.ErrorsReturned++; r.statsMu.Unlock() }
func (r *Relay) countLimited() {
	r.statsMu.Lock()
	r.stats.RateLimited++
	r.statsMu.Unlock()
}
func (r *Relay) countEvent() { r.statsMu.Lock(); r.stats.EventsDelivered++; r.statsMu.Unlock() }
func (r *Relay) countInvokeReplay() {
	r.statsMu.Lock()
	r.stats.InvokeReplays++
	r.statsMu.Unlock()
}
func (r *Relay) countAttestationCacheHit() {
	r.statsMu.Lock()
	r.stats.AttestationCacheHits++
	r.statsMu.Unlock()
}
func (r *Relay) countAttestationCacheMiss() {
	r.statsMu.Lock()
	r.stats.AttestationCacheMisses++
	r.statsMu.Unlock()
}
func (r *Relay) countFanoutAttempt() {
	r.statsMu.Lock()
	r.stats.FanoutAttempts++
	r.statsMu.Unlock()
}
func (r *Relay) countHedgedWin() { r.statsMu.Lock(); r.stats.HedgedWins++; r.statsMu.Unlock() }
func (r *Relay) countBreakerSkips(n int) {
	r.statsMu.Lock()
	r.stats.BreakerSkips += uint64(n)
	r.statsMu.Unlock()
}
func (r *Relay) countHedgedLosses(n int) {
	if n <= 0 {
		return
	}
	r.statsMu.Lock()
	r.stats.HedgedLosses += uint64(n)
	r.statsMu.Unlock()
}

// checkLimit applies the rate limiter, if configured, to an incoming
// request attributed to requestingNetwork.
func (r *Relay) checkLimit(requestingNetwork string) error {
	if r.limiter == nil {
		return nil
	}
	if !r.limiter.Allow(requestingNetwork) {
		r.countLimited()
		return fmt.Errorf("relay: rate limit exceeded for network %q", requestingNetwork)
	}
	return nil
}
