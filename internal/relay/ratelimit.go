package relay

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// RateLimiter implements the relay-side DoS protection §5 of the paper
// anticipates ("DoS protection can also be built into the relay service,
// protecting the peers themselves from such attacks"): a token bucket per
// requesting network bounds how fast any one network can drive queries into
// the local peers. Unknown requesters share the "" bucket.
type RateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	now     func() time.Time
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter allows `rate` requests per second with the given burst per
// requesting network.
func NewRateLimiter(rate float64, burst int) *RateLimiter {
	if rate <= 0 {
		rate = 1
	}
	if burst < 1 {
		burst = 1
	}
	return &RateLimiter{
		rate:    rate,
		burst:   float64(burst),
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
}

// Allow reports whether a request from the given network may proceed,
// consuming a token if so.
func (l *RateLimiter) Allow(requestingNetwork string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.buckets[requestingNetwork]
	if !ok {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[requestingNetwork] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// WithRateLimit installs a per-requesting-network rate limiter on the
// relay's server side. Requests over the limit receive an error envelope
// without ever reaching a driver or peer.
func WithRateLimit(l *RateLimiter) Option {
	return func(r *Relay) { r.limiter = l }
}

// Stats is a snapshot of the relay's served-request counters, the
// operational visibility a production relay deployment needs. A Stats
// value is always produced whole by statsCounters.Snapshot — the single
// consistent read point — never assembled field by field, so consumers
// (loadgen, operational tooling) can difference and merge snapshots
// without ever seeing a counter set that mixes two read moments.
type Stats struct {
	QueriesServed   uint64
	InvokesServed   uint64
	ErrorsReturned  uint64
	RateLimited     uint64
	EventsDelivered uint64
	// InvokeReplays counts invokes answered from the ledger's committed
	// record — duplicates of requests a sibling relay (or an earlier
	// incarnation of this one) already committed, whether caught by the
	// pre-execution lookup or by the driver after losing the commit race
	// (the latter also count as InvokesServed, since an execution was
	// attempted).
	InvokeReplays uint64

	// AttestationCacheHits counts queries whose proof was served from the
	// driver's content-addressed attestation cache — zero ECDSA signatures
	// and zero ECIES encryptions performed. AttestationCacheJoins counts
	// queries rebuilt from a stored leaf-addressed element record — every
	// signature and inclusion proof reused, only re-encryption paid.
	// AttestationCacheMisses counts the queries that had to build a fully
	// fresh proof. The three are mutually exclusive per query.
	AttestationCacheHits   uint64
	AttestationCacheJoins  uint64
	AttestationCacheMisses uint64

	// Crypto-op accounting from the relay's registered drivers, so ECIES
	// and signature amortization (sessions, batching, cache joins) is
	// observable in production: ECDH scalar multiplications performed,
	// ECDSA signatures produced, and envelopes encrypted (classic ECIES or
	// sessioned AEAD seals). Monotonic like every other counter, so Sub
	// over a window yields per-window op counts.
	ECDHOps    uint64
	SignOps    uint64
	EncryptOps uint64

	// Client-side fan-out accounting (destination relay role).
	FanoutAttempts uint64 // transport sends launched by client-side fan-out (queries, invokes, subscribes)
	HedgedWins     uint64 // requests won by a hedge attempt rather than the first address
	HedgedLosses   uint64 // in-flight attempts cancelled because another attempt won
	BreakerSkips   uint64 // circuit-open addresses demoted past healthy ones at resolve time

	// Multi-hop forwarding accounting (hub relay role): requests this
	// relay carried one hop closer to their target and answered with its
	// own hop pin appended. Refused forwards (cycle, TTL, no route) count
	// under ErrorsReturned only.
	ForwardedQueries uint64
	ForwardedInvokes uint64
}

// Sub returns the counter-wise difference s − prev: the activity between
// the two snapshots. Callers measuring a bounded window (a load-generation
// run, a monitoring interval) take a snapshot before and after and
// difference them, so traffic from setup or earlier windows never pollutes
// the measurement.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		QueriesServed:          s.QueriesServed - prev.QueriesServed,
		InvokesServed:          s.InvokesServed - prev.InvokesServed,
		ErrorsReturned:         s.ErrorsReturned - prev.ErrorsReturned,
		RateLimited:            s.RateLimited - prev.RateLimited,
		EventsDelivered:        s.EventsDelivered - prev.EventsDelivered,
		InvokeReplays:          s.InvokeReplays - prev.InvokeReplays,
		AttestationCacheHits:   s.AttestationCacheHits - prev.AttestationCacheHits,
		AttestationCacheJoins:  s.AttestationCacheJoins - prev.AttestationCacheJoins,
		AttestationCacheMisses: s.AttestationCacheMisses - prev.AttestationCacheMisses,
		ECDHOps:                s.ECDHOps - prev.ECDHOps,
		SignOps:                s.SignOps - prev.SignOps,
		EncryptOps:             s.EncryptOps - prev.EncryptOps,
		FanoutAttempts:         s.FanoutAttempts - prev.FanoutAttempts,
		HedgedWins:             s.HedgedWins - prev.HedgedWins,
		HedgedLosses:           s.HedgedLosses - prev.HedgedLosses,
		BreakerSkips:           s.BreakerSkips - prev.BreakerSkips,
		ForwardedQueries:       s.ForwardedQueries - prev.ForwardedQueries,
		ForwardedInvokes:       s.ForwardedInvokes - prev.ForwardedInvokes,
	}
}

// Merge returns the counter-wise sum of s and o — the fleet view when
// aggregating snapshots from several relays fronting one deployment.
func (s Stats) Merge(o Stats) Stats {
	return Stats{
		QueriesServed:          s.QueriesServed + o.QueriesServed,
		InvokesServed:          s.InvokesServed + o.InvokesServed,
		ErrorsReturned:         s.ErrorsReturned + o.ErrorsReturned,
		RateLimited:            s.RateLimited + o.RateLimited,
		EventsDelivered:        s.EventsDelivered + o.EventsDelivered,
		InvokeReplays:          s.InvokeReplays + o.InvokeReplays,
		AttestationCacheHits:   s.AttestationCacheHits + o.AttestationCacheHits,
		AttestationCacheJoins:  s.AttestationCacheJoins + o.AttestationCacheJoins,
		AttestationCacheMisses: s.AttestationCacheMisses + o.AttestationCacheMisses,
		ECDHOps:                s.ECDHOps + o.ECDHOps,
		SignOps:                s.SignOps + o.SignOps,
		EncryptOps:             s.EncryptOps + o.EncryptOps,
		FanoutAttempts:         s.FanoutAttempts + o.FanoutAttempts,
		HedgedWins:             s.HedgedWins + o.HedgedWins,
		HedgedLosses:           s.HedgedLosses + o.HedgedLosses,
		BreakerSkips:           s.BreakerSkips + o.BreakerSkips,
		ForwardedQueries:       s.ForwardedQueries + o.ForwardedQueries,
		ForwardedInvokes:       s.ForwardedInvokes + o.ForwardedInvokes,
	}
}

// AttestationCacheHitRate returns hits/(hits+joins+misses), or 0 before
// the first proof build. Joins count toward the denominator but not the
// numerator: they avoid signatures, not encryption.
func (s Stats) AttestationCacheHitRate() float64 {
	total := s.AttestationCacheHits + s.AttestationCacheJoins + s.AttestationCacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.AttestationCacheHits) / float64(total)
}

// statsCounters is the relay's live counter set: one independent atomic
// per counter, so the hot paths (every served request bumps at least one)
// never contend on a shared lock, and a snapshot is one method rather than
// scattered field reads.
type statsCounters struct {
	queriesServed          atomic.Uint64
	invokesServed          atomic.Uint64
	errorsReturned         atomic.Uint64
	rateLimited            atomic.Uint64
	eventsDelivered        atomic.Uint64
	invokeReplays          atomic.Uint64
	attestationCacheHits   atomic.Uint64
	attestationCacheJoins  atomic.Uint64
	attestationCacheMisses atomic.Uint64
	fanoutAttempts         atomic.Uint64
	hedgedWins             atomic.Uint64
	hedgedLosses           atomic.Uint64
	breakerSkips           atomic.Uint64
	forwardedQueries       atomic.Uint64
	forwardedInvokes       atomic.Uint64
}

// Snapshot copies every counter into an immutable Stats value — the single
// read point for the relay's counters.
func (c *statsCounters) Snapshot() Stats {
	return Stats{
		QueriesServed:          c.queriesServed.Load(),
		InvokesServed:          c.invokesServed.Load(),
		ErrorsReturned:         c.errorsReturned.Load(),
		RateLimited:            c.rateLimited.Load(),
		EventsDelivered:        c.eventsDelivered.Load(),
		InvokeReplays:          c.invokeReplays.Load(),
		AttestationCacheHits:   c.attestationCacheHits.Load(),
		AttestationCacheJoins:  c.attestationCacheJoins.Load(),
		AttestationCacheMisses: c.attestationCacheMisses.Load(),
		FanoutAttempts:         c.fanoutAttempts.Load(),
		HedgedWins:             c.hedgedWins.Load(),
		HedgedLosses:           c.hedgedLosses.Load(),
		BreakerSkips:           c.breakerSkips.Load(),
		ForwardedQueries:       c.forwardedQueries.Load(),
		ForwardedInvokes:       c.forwardedInvokes.Load(),
	}
}

// Stats returns a consistent snapshot of the relay's counters, with the
// crypto-op counters of every registered reporting driver summed in (each
// driver's counters flow to every relay it is registered on; a driver is
// registered on exactly one relay in all deployment shapes here).
func (r *Relay) Stats() Stats {
	s := r.stats.Snapshot()
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := make(map[CryptoOpsReporter]bool, len(r.drivers))
	for _, d := range r.drivers {
		rep, ok := d.(CryptoOpsReporter)
		if !ok || seen[rep] {
			continue
		}
		seen[rep] = true
		ecdh, sign, encrypt := rep.CryptoOps()
		s.ECDHOps += ecdh
		s.SignOps += sign
		s.EncryptOps += encrypt
	}
	return s
}

func (r *Relay) countQuery()                { r.stats.queriesServed.Add(1) }
func (r *Relay) countInvoke()               { r.stats.invokesServed.Add(1) }
func (r *Relay) countError()                { r.stats.errorsReturned.Add(1) }
func (r *Relay) countLimited()              { r.stats.rateLimited.Add(1) }
func (r *Relay) countEvent()                { r.stats.eventsDelivered.Add(1) }
func (r *Relay) countInvokeReplay()         { r.stats.invokeReplays.Add(1) }
func (r *Relay) countAttestationCacheHit()  { r.stats.attestationCacheHits.Add(1) }
func (r *Relay) countAttestationCacheJoin() { r.stats.attestationCacheJoins.Add(1) }
func (r *Relay) countAttestationCacheMiss() { r.stats.attestationCacheMisses.Add(1) }
func (r *Relay) countFanoutAttempt()        { r.stats.fanoutAttempts.Add(1) }
func (r *Relay) countHedgedWin()            { r.stats.hedgedWins.Add(1) }
func (r *Relay) countForwardedQuery()       { r.stats.forwardedQueries.Add(1) }
func (r *Relay) countForwardedInvoke()      { r.stats.forwardedInvokes.Add(1) }
func (r *Relay) countBreakerSkips(n int) {
	if n > 0 {
		r.stats.breakerSkips.Add(uint64(n))
	}
}
func (r *Relay) countHedgedLosses(n int) {
	if n > 0 {
		r.stats.hedgedLosses.Add(uint64(n))
	}
}

// checkLimit applies the rate limiter, if configured, to an incoming
// request attributed to requestingNetwork.
func (r *Relay) checkLimit(requestingNetwork string) error {
	if r.limiter == nil {
		return nil
	}
	if !r.limiter.Allow(requestingNetwork) {
		r.countLimited()
		return fmt.Errorf("relay: rate limit exceeded for network %q", requestingNetwork)
	}
	return nil
}
