package relay

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/wire"
)

// eventHub tracks local subscriptions to remote events and the remote
// subscriptions this relay is serving as a source.
type eventHub struct {
	mu sync.Mutex
	// local subscriptions: events pushed to us by source relays.
	localSubs map[string]chan wire.Event
	// source-side cancellations for subscriptions we serve.
	serving map[string]func()
}

func newEventHub() *eventHub {
	return &eventHub{
		localSubs: make(map[string]chan wire.Event),
		serving:   make(map[string]func()),
	}
}

// SubscribeRemote registers interest in chaincode events from a remote
// network (cross-network events, §7 future work implemented as an
// extension). It sends a subscription request to the remote relay; matching
// events are pushed back through this relay's discovery-registered address
// and surface on the returned channel.
func (r *Relay) SubscribeRemote(targetNetwork, eventName string, requesterCertPEM []byte) (<-chan wire.Event, func(), error) {
	subID, err := newRequestID()
	if err != nil {
		return nil, nil, err
	}
	sub := &wire.Subscription{
		SubscriptionID:    subID,
		RequestingNetwork: r.localNetwork,
		TargetNetwork:     targetNetwork,
		EventName:         eventName,
		RequesterCertPEM:  requesterCertPEM,
	}
	addrs, err := r.discovery.Resolve(targetNetwork)
	if err != nil {
		return nil, nil, err
	}
	payload := sub.Marshal()
	env := &wire.Envelope{
		Version:   wire.ProtocolVersion,
		Type:      wire.MsgSubscribe,
		RequestID: subID,
		Payload:   payload,
	}
	var lastErr error
	subscribed := false
	for _, addr := range addrs {
		reply, err := r.transport.Send(addr, env)
		if err != nil {
			lastErr = err
			continue
		}
		if reply.Type == wire.MsgError {
			return nil, nil, fmt.Errorf("relay: subscribe: %s", string(reply.Payload))
		}
		subscribed = true
		break
	}
	if !subscribed {
		return nil, nil, fmt.Errorf("%w for %s: %v", ErrAllRelaysFailed, targetNetwork, lastErr)
	}

	ch := make(chan wire.Event, 64)
	r.events.mu.Lock()
	r.events.localSubs[subID] = ch
	r.events.mu.Unlock()
	cancel := func() {
		r.events.mu.Lock()
		defer r.events.mu.Unlock()
		if _, ok := r.events.localSubs[subID]; ok {
			delete(r.events.localSubs, subID)
			close(ch)
		}
	}
	return ch, cancel, nil
}

// handleSubscribe serves an incoming subscription request: the local driver
// must support events; matching events are pushed to the requesting
// network's relay.
func (r *Relay) handleSubscribe(env *wire.Envelope) *wire.Envelope {
	sub, err := wire.UnmarshalSubscription(env.Payload)
	if err != nil {
		return errEnvelope(env.RequestID, fmt.Sprintf("malformed subscription: %v", err))
	}
	d, ok := r.driverFor(sub.TargetNetwork)
	if !ok {
		return errEnvelope(env.RequestID, fmt.Sprintf("network %q not served by this relay", sub.TargetNetwork))
	}
	src, ok := d.(EventSource)
	if !ok {
		return errEnvelope(env.RequestID, fmt.Sprintf("network %q does not support events", sub.TargetNetwork))
	}
	requesting := sub.RequestingNetwork
	subID := sub.SubscriptionID
	cancel, err := src.SubscribeEvents(sub.EventName, func(payload []byte, name string, unixNano uint64) {
		ev := &wire.Event{
			SubscriptionID: subID,
			SourceNetwork:  sub.TargetNetwork,
			Name:           name,
			Payload:        payload,
			UnixNano:       unixNano,
		}
		r.pushEvent(requesting, ev)
	})
	if err != nil {
		return errEnvelope(env.RequestID, fmt.Sprintf("subscribe: %v", err))
	}
	r.events.mu.Lock()
	r.events.serving[subID] = cancel
	r.events.mu.Unlock()
	return &wire.Envelope{Version: wire.ProtocolVersion, Type: wire.MsgQueryResponse, RequestID: env.RequestID}
}

// pushEvent delivers an event to the requesting network's relay,
// best-effort across its addresses.
func (r *Relay) pushEvent(requestingNetwork string, ev *wire.Event) {
	addrs, err := r.discovery.Resolve(requestingNetwork)
	if err != nil {
		return
	}
	env := &wire.Envelope{
		Version:   wire.ProtocolVersion,
		Type:      wire.MsgEvent,
		RequestID: ev.SubscriptionID,
		Payload:   ev.Marshal(),
	}
	for _, addr := range addrs {
		if _, err := r.transport.Send(addr, env); err == nil {
			return
		}
	}
}

// handleEvent receives a pushed event and surfaces it to the local
// subscriber.
func (r *Relay) handleEvent(env *wire.Envelope) *wire.Envelope {
	ev, err := wire.UnmarshalEvent(env.Payload)
	if err != nil {
		return errEnvelope(env.RequestID, fmt.Sprintf("malformed event: %v", err))
	}
	r.events.mu.Lock()
	ch, ok := r.events.localSubs[ev.SubscriptionID]
	r.events.mu.Unlock()
	if ok {
		r.countEvent()
		select {
		case ch <- *ev:
		case <-time.After(50 * time.Millisecond):
			// Slow subscriber: drop rather than wedge the server loop.
		}
	}
	return &wire.Envelope{Version: wire.ProtocolVersion, Type: wire.MsgQueryResponse, RequestID: env.RequestID}
}

// StopServing cancels every source-side subscription this relay serves.
func (r *Relay) StopServing() {
	r.events.mu.Lock()
	defer r.events.mu.Unlock()
	for id, cancel := range r.events.serving {
		cancel()
		delete(r.events.serving, id)
	}
}
