package relay

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/wire"
)

// eventHub tracks local subscriptions to remote events and the remote
// subscriptions this relay is serving as a source.
type eventHub struct {
	mu sync.Mutex
	// local subscriptions: events pushed to us by source relays.
	localSubs map[string]chan wire.Event
	// source-side cancellations for subscriptions we serve.
	serving map[string]func()
}

func newEventHub() *eventHub {
	return &eventHub{
		localSubs: make(map[string]chan wire.Event),
		serving:   make(map[string]func()),
	}
}

// SubscribeRemote registers interest in chaincode events from a remote
// network (cross-network events, §7 future work implemented as an
// extension). It sends a subscription request to the remote relay; matching
// events are pushed back through this relay's discovery-registered address
// and surface on the returned channel. ctx bounds subscription
// establishment only; delivery continues until the returned cancel runs.
func (r *Relay) SubscribeRemote(ctx context.Context, targetNetwork, eventName string, requesterCertPEM []byte) (<-chan wire.Event, func(), error) {
	subID, err := newRequestID()
	if err != nil {
		return nil, nil, err
	}
	sub := &wire.Subscription{
		SubscriptionID:    subID,
		RequestingNetwork: r.localNetwork,
		TargetNetwork:     targetNetwork,
		EventName:         eventName,
		RequesterCertPEM:  requesterCertPEM,
	}
	addrs, err := r.resolveOrdered(targetNetwork)
	if err != nil {
		return nil, nil, err
	}
	payload := sub.Marshal()
	env := &wire.Envelope{
		Version:   wire.ProtocolVersion,
		Type:      wire.MsgSubscribe,
		RequestID: subID,
		Payload:   payload,
	}
	// At-most-once across addresses: failing over to a *different* relay
	// after a delivered-but-lost reply would register a second live
	// subscription on another process and double every event. Same-relay
	// resends are safe (handleSubscribe is idempotent by subscription ID);
	// cross-relay ones are not, so only never-connected addresses are
	// retried.
	reply, err := r.sendAtMostOnce(ctx, targetNetwork, addrs, env)
	if err != nil {
		return nil, nil, err
	}
	if reply.Type == wire.MsgError {
		return nil, nil, fmt.Errorf("relay: subscribe: %s", string(reply.Payload))
	}

	ch := make(chan wire.Event, 64)
	r.events.mu.Lock()
	r.events.localSubs[subID] = ch
	r.events.mu.Unlock()
	cancel := func() {
		r.events.mu.Lock()
		defer r.events.mu.Unlock()
		if _, ok := r.events.localSubs[subID]; ok {
			delete(r.events.localSubs, subID)
			close(ch)
		}
	}
	return ch, cancel, nil
}

// handleSubscribe serves an incoming subscription request: the local driver
// must support events; matching events are pushed to the requesting
// network's relay.
func (r *Relay) handleSubscribe(ctx context.Context, env *wire.Envelope) *wire.Envelope {
	sub, err := wire.UnmarshalSubscription(env.Payload)
	if err != nil {
		return errEnvelope(env.RequestID, fmt.Sprintf("malformed subscription: %v", err))
	}
	d, ok := r.driverFor(sub.TargetNetwork)
	if !ok {
		return errEnvelope(env.RequestID, fmt.Sprintf("network %q not served by this relay", sub.TargetNetwork))
	}
	src, ok := d.(EventSource)
	if !ok {
		return errEnvelope(env.RequestID, fmt.Sprintf("network %q does not support events", sub.TargetNetwork))
	}
	requesting := sub.RequestingNetwork
	subID := sub.SubscriptionID
	// Idempotency: a resent subscribe (transport retry or failover after a
	// lost reply) must not register a duplicate source-side subscription.
	r.events.mu.Lock()
	_, exists := r.events.serving[subID]
	r.events.mu.Unlock()
	if exists {
		return &wire.Envelope{Version: wire.ProtocolVersion, Type: wire.MsgQueryResponse, RequestID: env.RequestID}
	}
	// ctx bounds establishment only — it is cancelled once the reply is
	// sent, so per the EventSource contract the driver must not tie the
	// delivery lifetime to it; teardown happens through the cancel func.
	cancel, err := src.SubscribeEvents(ctx, sub.EventName, func(payload []byte, name string, unixNano uint64) {
		ev := &wire.Event{
			SubscriptionID: subID,
			SourceNetwork:  sub.TargetNetwork,
			Name:           name,
			Payload:        payload,
			UnixNano:       unixNano,
		}
		r.pushEvent(requesting, ev)
	})
	if err != nil {
		return errEnvelope(env.RequestID, fmt.Sprintf("subscribe: %v", err))
	}
	r.events.mu.Lock()
	if _, raced := r.events.serving[subID]; raced {
		// A concurrent duplicate won the race; tear down this copy.
		r.events.mu.Unlock()
		cancel()
	} else {
		r.events.serving[subID] = cancel
		r.events.mu.Unlock()
	}
	return &wire.Envelope{Version: wire.ProtocolVersion, Type: wire.MsgQueryResponse, RequestID: env.RequestID}
}

// pushEvent delivers an event to the requesting network's relay,
// best-effort across its addresses, healthiest first. Delivery is
// asynchronous with respect to any request, so it runs under its own
// bounded context rather than a caller's. Unlike request fan-out,
// circuit-open addresses are skipped outright when a healthier one exists:
// best-effort delivery should not spend a 5s budget probing a relay already
// known dead.
func (r *Relay) pushEvent(requestingNetwork string, ev *wire.Event) {
	addrs, err := r.discovery.Resolve(requestingNetwork)
	if err != nil {
		return
	}
	ordered, open := r.health.order(addrs)
	if open > 0 {
		ordered = ordered[:len(ordered)-open]
	}
	env := &wire.Envelope{
		Version:   wire.ProtocolVersion,
		Type:      wire.MsgEvent,
		RequestID: ev.SubscriptionID,
		Payload:   ev.Marshal(),
	}
	for _, addr := range ordered {
		// Per-address budget: a wedged-but-reachable primary must not
		// consume the whole delivery budget and starve a live standby.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_, err := r.observeSend(ctx, addr, env)
		cancel()
		if err == nil {
			return
		}
	}
}

// handleEvent receives a pushed event and surfaces it to the local
// subscriber.
func (r *Relay) handleEvent(env *wire.Envelope) *wire.Envelope {
	ev, err := wire.UnmarshalEvent(env.Payload)
	if err != nil {
		return errEnvelope(env.RequestID, fmt.Sprintf("malformed event: %v", err))
	}
	r.events.mu.Lock()
	ch, ok := r.events.localSubs[ev.SubscriptionID]
	r.events.mu.Unlock()
	if ok {
		r.countEvent()
		select {
		case ch <- *ev:
		case <-time.After(50 * time.Millisecond):
			// Slow subscriber: drop rather than wedge the server loop.
		}
	}
	return &wire.Envelope{Version: wire.ProtocolVersion, Type: wire.MsgQueryResponse, RequestID: env.RequestID}
}

// StopServing cancels every source-side subscription this relay serves.
func (r *Relay) StopServing() {
	r.events.mu.Lock()
	defer r.events.mu.Unlock()
	for id, cancel := range r.events.serving {
		cancel()
		delete(r.events.serving, id)
	}
}
