package relay

import (
	"context"
	"testing"
	"time"

	"repro/internal/chaincode"
	"repro/internal/fabric"
	"repro/internal/ledger"
	"repro/internal/msp"
	"repro/internal/orderer"
	"repro/internal/policy"
	"repro/internal/syscc"
)

// commitNamespacedWrite appends a block whose transaction was submitted by
// one chaincode but whose write landed in another namespace — the
// cross-chaincode invocation shape.
func (f *fakeChain) commitNamespacedWrite(chaincode, ns string) {
	f.blocks = append(f.blocks, &ledger.Block{
		Number: uint64(len(f.blocks)),
		Transactions: []*ledger.Transaction{{
			Chaincode:  chaincode,
			Validation: ledger.Valid,
			RWSet:      ledger.RWSet{Writes: []ledger.KVWrite{{Namespace: ns, Key: "k"}}},
		}},
	})
}

// TestAttestationCacheExactWriteNamespaces: invalidation follows the
// namespaces transactions actually wrote, not the chaincode that submitted
// them. A proxy chaincode writing into "docs" through a cross-chaincode
// call invalidates "docs" entries — and a write submitted by "docs" whose
// writes all land elsewhere leaves "docs" entries alone.
func TestAttestationCacheExactWriteNamespaces(t *testing.T) {
	nowFn, _ := testClock(time.Unix(1000, 0))
	c := newAttestationCache(8, time.Minute, nowFn)
	chain := &fakeChain{}
	chain.commitWrite("docs")
	c.advance(chain)

	docsKey := attestCacheKey([]byte("docs-q"), nil, nil, nil)
	proxyKey := attestCacheKey([]byte("proxy-q"), nil, nil, nil)
	storeEntry(c, docsKey, []byte("docs-resp"), "docs", chain.Height())
	storeEntry(c, proxyKey, []byte("proxy-resp"), "proxy", chain.Height())

	// A tx submitted by "proxy" that wrote into "docs" must kill the docs
	// entry, even though no tx with Chaincode == "docs" committed.
	chain.commitNamespacedWrite("proxy", "docs")
	c.advance(chain)
	if c.get(docsKey) != nil {
		t.Fatal("cross-chaincode write into docs did not invalidate the docs entry")
	}
	// ...and must NOT kill the proxy entry: proxy submitted the tx but its
	// own namespace was never written.
	if c.get(proxyKey) == nil {
		t.Fatal("entry invalidated by its chaincode merely submitting a tx that wrote elsewhere")
	}

	// Multi-namespace entries die when any of their namespaces is written.
	multiKey := attestCacheKey([]byte("multi-q"), nil, nil, nil)
	c.put(multiKey, []byte("m"), []string{"docs", "audit"}, chain.Height())
	c.put(multiKey, []byte("m"), []string{"docs", "audit"}, chain.Height())
	chain.commitNamespacedWrite("other", "audit")
	c.advance(chain)
	if c.get(multiKey) != nil {
		t.Fatal("multi-namespace entry survived a write to one of its namespaces")
	}
}

// auditChaincode is an unrelated contract sharing the ledger with docs.
var auditChaincode = chaincode.Func(func(stub chaincode.Stub) ([]byte, error) {
	args := stub.Args()
	if stub.Function() == "log" && len(args) == 2 {
		return nil, stub.PutState(string(args[0]), args[1])
	}
	return stub.GetState(string(args[0]))
})

// TestDriverCacheSurvivesUnrelatedChaincodeWrite is the end-to-end
// regression for exact namespace invalidation: with state namespaced per
// chaincode, a commit to chaincode "audit" must not evict a cached proof
// for a query that only read "docs" (and the interop system chaincodes) —
// while a commit into "docs" still must.
func TestDriverCacheSurvivesUnrelatedChaincodeWrite(t *testing.T) {
	n := fabric.NewNetwork("tradelens", orderer.Config{BatchSize: 1})
	for _, org := range []string{"seller-org", "carrier-org"} {
		if _, err := n.AddOrg(org, 1); err != nil {
			t.Fatalf("AddOrg %s: %v", org, err)
		}
	}
	sysPolicy := "OR('seller-org','carrier-org')"
	if err := n.Deploy(syscc.ECCName, &syscc.ECC{}, sysPolicy); err != nil {
		t.Fatalf("Deploy ECC: %v", err)
	}
	if err := n.Deploy(syscc.CMDACName, &syscc.CMDAC{}, sysPolicy); err != nil {
		t.Fatalf("Deploy CMDAC: %v", err)
	}
	if err := n.Deploy("docs", docsChaincode, "AND('seller-org','carrier-org')"); err != nil {
		t.Fatalf("Deploy docs: %v", err)
	}
	if err := n.Deploy("audit", auditChaincode, sysPolicy); err != nil {
		t.Fatalf("Deploy audit: %v", err)
	}
	org, _ := n.Org("seller-org")
	adminID, err := org.CA.Issue("stl-admin", msp.RoleAdmin)
	if err != nil {
		t.Fatalf("Issue admin: %v", err)
	}
	admin := n.Gateway(adminID)

	req := newRequester(t)
	if _, err := admin.Submit(syscc.CMDACName, syscc.CMDACSetNetworkConfig, req.cfg.Marshal()); err != nil {
		t.Fatalf("SetNetworkConfig: %v", err)
	}
	rule := policy.AccessRule{Network: "we-trade", Org: "seller-bank-org", Chaincode: "docs", Function: "GetDoc"}
	ruleJSON, _ := rule.Marshal()
	if _, err := admin.Submit(syscc.ECCName, syscc.ECCAddRule, ruleJSON); err != nil {
		t.Fatalf("AddAccessRule: %v", err)
	}
	if _, err := admin.Submit("docs", "PutDoc", []byte("bl-77"), []byte(`{"bl":"77"}`)); err != nil {
		t.Fatalf("PutDoc: %v", err)
	}

	d := NewFabricDriver(n, "default")
	var hits, joins, misses int
	d.OnAttestationCache(func() { hits++ }, func() { joins++ }, func() { misses++ })

	q := newQuery(t, req) // one fixed nonce: every send is the identical question
	ctx := context.Background()
	query := func(stage string) {
		t.Helper()
		resp, err := d.Query(ctx, q)
		if err != nil {
			t.Fatalf("%s: Query: %v", stage, err)
		}
		if resp.Error != "" {
			t.Fatalf("%s: remote error: %s", stage, resp.Error)
		}
	}

	// The first send misses and stores the plaintext element record; the
	// second joins that record (signatures reused, response admitted on
	// the doorkeeper's second touch); the third is the first verbatim hit.
	query("warm-1")
	query("warm-2")
	query("first-hit")
	if hits != 1 || joins != 1 || misses != 1 {
		t.Fatalf("after warmup: hits=%d joins=%d misses=%d, want 1/1/1", hits, joins, misses)
	}

	// A commit into an unrelated chaincode's namespace must leave the
	// cached proof servable.
	if _, err := admin.Submit("audit", "log", []byte("evt-1"), []byte("x")); err != nil {
		t.Fatalf("audit log: %v", err)
	}
	query("after-unrelated-write")
	if hits != 2 {
		t.Fatalf("unrelated write evicted the cached proof: hits=%d misses=%d", hits, misses)
	}

	// A commit into a namespace the query read still invalidates. The write
	// targets a different document, so the query's result bytes — and hence
	// its cache key — are unchanged; only namespace invalidation can (and
	// must) force the rebuild.
	if _, err := admin.Submit("docs", "PutDoc", []byte("bl-99"), []byte(`{"bl":"99"}`)); err != nil {
		t.Fatalf("PutDoc 2: %v", err)
	}
	// Both the response entry and the element record read the docs
	// namespace, so the write invalidates them together: a full rebuild,
	// not a join against stale elements.
	query("after-docs-write")
	if misses != 2 {
		t.Fatalf("write into a read namespace did not invalidate: hits=%d joins=%d misses=%d", hits, joins, misses)
	}
}
