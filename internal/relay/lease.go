package relay

import (
	"sync"
	"time"
)

// LeaseRegistrar is the lease-based membership contract of discovery
// registries: a relay announces its address under a TTL and renews it on a
// heartbeat; an entry whose lease lapses stops being resolved, so a relay
// that died without deregistering ages out of discovery instead of being
// tried forever. A zero TTL grants a permanent entry (operator-managed
// registries). Registration is idempotent per (network, address):
// re-announcing refreshes the lease instead of appending a duplicate.
type LeaseRegistrar interface {
	RegisterLease(networkID, addr string, ttl time.Duration) error
	Deregister(networkID, addr string) error
}

// leaseEntry is one registered address with its lease expiry; a zero expiry
// means the entry is permanent.
type leaseEntry struct {
	addr    string
	expires time.Time
}

// live reports whether the entry's lease is still valid at now.
func (e leaseEntry) live(now time.Time) bool {
	return e.expires.IsZero() || e.expires.After(now)
}

// upsertLease registers addr in a lease list, deduplicating by address:
// an existing entry has its expiry refreshed in place (keeping its
// preference position), otherwise the entry is appended.
func upsertLease(entries []leaseEntry, addr string, expires time.Time) []leaseEntry {
	for i := range entries {
		if entries[i].addr == addr {
			entries[i].expires = expires
			return entries
		}
	}
	return append(entries, leaseEntry{addr: addr, expires: expires})
}

// removeLease deletes addr from a lease list, preserving order.
func removeLease(entries []leaseEntry, addr string) ([]leaseEntry, bool) {
	for i := range entries {
		if entries[i].addr == addr {
			return append(entries[:i], entries[i+1:]...), true
		}
	}
	return entries, false
}

// liveAddrs filters a lease list down to the addresses whose lease is still
// valid at now, in registration order.
func liveAddrs(entries []leaseEntry, now time.Time) []string {
	addrs := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.live(now) {
			addrs = append(addrs, e.addr)
		}
	}
	return addrs
}

// Announce registers addr for networkID under a TTL lease and keeps the
// lease alive by re-announcing on a heartbeat (a third of the TTL, so two
// consecutive renewals can fail before the lease lapses). The returned stop
// function halts the heartbeat and deregisters the address — the clean
// shutdown path for a relay daemon. Renewal errors are retried at the next
// tick and reported through onRenewError (nil to ignore); a registry that
// stays unwritable lets the lease lapse, which is the failure semantics
// leases exist to provide — but the daemon gets to log why it vanished
// from discovery.
func Announce(reg LeaseRegistrar, networkID, addr string, ttl time.Duration, onRenewError func(error)) (stop func(), err error) {
	if ttl <= 0 {
		// Permanent registration: nothing to renew, deregister on stop.
		if err := reg.RegisterLease(networkID, addr, 0); err != nil {
			return nil, err
		}
		return func() { _ = reg.Deregister(networkID, addr) }, nil
	}
	if err := reg.RegisterLease(networkID, addr, ttl); err != nil {
		return nil, err
	}
	heartbeat := ttl / 3
	if heartbeat < time.Millisecond {
		heartbeat = time.Millisecond
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(heartbeat)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				if err := reg.RegisterLease(networkID, addr, ttl); err != nil && onRenewError != nil {
					onRenewError(err) // retried at the next tick regardless
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
			_ = reg.Deregister(networkID, addr)
		})
	}, nil
}
