package relay

import (
	"sync"
	"time"
)

// LeaseRegistrar is the lease-based membership contract of discovery
// registries: a relay announces its address under a TTL and renews it on a
// heartbeat; an entry whose lease lapses stops being resolved, so a relay
// that died without deregistering ages out of discovery instead of being
// tried forever. A zero TTL grants a permanent entry (operator-managed
// registries). Registration is idempotent per (network, address):
// re-announcing refreshes the lease instead of appending a duplicate.
type LeaseRegistrar interface {
	RegisterLease(networkID, addr string, ttl time.Duration) error
	Deregister(networkID, addr string) error
}

// Registry is the full administrative surface a durable discovery registry
// offers — resolution, lease-based membership, shared health, and the
// inspection/maintenance operations netadmin drives. Both the flat-file
// FileRegistry and the journal-backed JournalRegistry implement it, which
// is what lets the tooling (and the conformance/chaos suite) treat the two
// storage formats interchangeably.
type Registry interface {
	Discovery
	LeaseRegistrar
	HealthPublisher
	HealthSource
	// Register adds permanent, operator-managed addresses for a network.
	Register(networkID string, addrs ...string) error
	// Prune drops entries whose lease has lapsed, returning how many.
	Prune() (int, error)
	// Entries exports every entry with its lease state, lapsed included.
	Entries() (map[string][]RegistryEntry, error)
	// Networks lists registered network IDs, including fully-lapsed ones.
	Networks() ([]string, error)
}

// SharedHealth is one relay's published observation of a peer address's
// health, stored alongside the address's registry entry and piggybacked on
// lease renewal. A relay that restarts loses its in-memory health tracker;
// seeding it from these records lets the fresh process order addresses by
// what the fleet already learned — and keep avoiding a circuit-open peer —
// instead of re-discovering every dead relay the hard way.
type SharedHealth struct {
	// ConsecFailures is the observer's count of consecutive transport
	// failures against the address.
	ConsecFailures int `json:"consec_failures,omitempty"`
	// EWMALatencyNanos is the observer's smoothed round-trip estimate.
	EWMALatencyNanos int64 `json:"ewma_latency_nanos,omitempty"`
	// OpenUntilUnixNano is the observer's circuit-breaker cooldown expiry
	// for the address, zero when the breaker is closed. Absolute — kept for
	// readers of the older encoding; see CooldownRemainingNanos.
	OpenUntilUnixNano int64 `json:"open_until_unix_nano,omitempty"`
	// CooldownRemainingNanos is the same cooldown encoded relative: how
	// much demotion remained at the instant the record was published
	// (TimeoutNanos-style), zero when the breaker is closed or the record
	// was published by an older relay. Publishers stamp both fields;
	// readers take the laxer interpretation — the *earlier* expiry — so
	// under clock skew an address is never demoted longer than either
	// encoding supports. (For deadlines lax means serving longer; for a
	// demotion it means banishing a possibly-recovered relay *less*.) This
	// removes the NTP-class skew assumption the absolute encoding carried.
	CooldownRemainingNanos int64 `json:"cooldown_remaining_nanos,omitempty"`
	// ObservedUnixNano stamps when the observation was taken; fresher
	// records replace staler ones when several relays publish.
	ObservedUnixNano int64 `json:"observed_unix_nano,omitempty"`
}

// CooldownExpiry resolves the record's circuit-breaker cooldown to an
// expiry instant on the reader's clock now, taking the laxer (earlier)
// interpretation when both encodings are present. The zero time means the
// breaker is closed or every encoding has already expired.
func (h SharedHealth) CooldownExpiry(now time.Time) time.Time {
	var expiry time.Time
	if h.OpenUntilUnixNano != 0 {
		expiry = time.Unix(0, h.OpenUntilUnixNano)
	}
	if h.CooldownRemainingNanos > 0 {
		rel := now.Add(time.Duration(h.CooldownRemainingNanos))
		if expiry.IsZero() || rel.Before(expiry) {
			expiry = rel
		}
	}
	if expiry.IsZero() || !expiry.After(now) {
		return time.Time{}
	}
	return expiry
}

// HealthPublisher is the registry extension for sharing health: a relay
// publishes its per-address observations (keyed by address) and the
// registry attaches each record to the matching registered entries, in
// whatever network they appear under. Addresses with no registry entry are
// ignored — health rides on membership, it does not create it.
type HealthPublisher interface {
	PublishHealth(byAddr map[string]SharedHealth) error
}

// HealthSource is the read side: the freshest published health record per
// registered address, for seeding a new relay's tracker.
type HealthSource interface {
	HealthRecords() (map[string]SharedHealth, error)
}

// leaseEntry is one registered address with its lease expiry; a zero expiry
// means the entry is permanent. health carries the freshest published
// SharedHealth observation for the address, nil when none was published.
type leaseEntry struct {
	addr    string
	expires time.Time
	health  *SharedHealth
}

// live reports whether the entry's lease is still valid at now.
func (e leaseEntry) live(now time.Time) bool {
	return e.expires.IsZero() || e.expires.After(now)
}

// upsertLease registers addr in a lease list, deduplicating by address:
// an existing entry has its expiry refreshed in place (keeping its
// preference position and any published health record), otherwise the
// entry is appended. changed reports whether anything was actually
// modified, so file-backed registries can skip rewriting on a no-op
// re-registration.
func upsertLease(entries []leaseEntry, addr string, expires time.Time) (updated []leaseEntry, changed bool) {
	for i := range entries {
		if entries[i].addr == addr {
			if entries[i].expires.Equal(expires) {
				return entries, false
			}
			entries[i].expires = expires
			return entries, true
		}
	}
	return append(entries, leaseEntry{addr: addr, expires: expires}), true
}

// applyHealth attaches published health records to the matching entries of
// a lease list, keeping whichever record is fresher per address, and
// reports whether any entry actually changed (so file-backed registries
// can skip rewriting on a no-op publish).
func applyHealth(entries []leaseEntry, byAddr map[string]SharedHealth) bool {
	changed := false
	for i := range entries {
		rec, ok := byAddr[entries[i].addr]
		if !ok {
			continue
		}
		cur := entries[i].health
		if cur != nil && (rec.ObservedUnixNano < cur.ObservedUnixNano || *cur == rec) {
			continue
		}
		copied := rec
		entries[i].health = &copied
		changed = true
	}
	return changed
}

// collectHealth gathers the freshest health record per address across every
// network's lease list.
func collectHealth(entries map[string][]leaseEntry) map[string]SharedHealth {
	out := make(map[string]SharedHealth)
	for _, list := range entries {
		for _, e := range list {
			if e.health == nil {
				continue
			}
			if cur, ok := out[e.addr]; !ok || e.health.ObservedUnixNano >= cur.ObservedUnixNano {
				out[e.addr] = *e.health
			}
		}
	}
	return out
}

// removeLease deletes addr from a lease list, preserving order.
func removeLease(entries []leaseEntry, addr string) ([]leaseEntry, bool) {
	for i := range entries {
		if entries[i].addr == addr {
			return append(entries[:i], entries[i+1:]...), true
		}
	}
	return entries, false
}

// liveAddrs filters a lease list down to the addresses whose lease is still
// valid at now, in registration order.
func liveAddrs(entries []leaseEntry, now time.Time) []string {
	addrs := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.live(now) {
			addrs = append(addrs, e.addr)
		}
	}
	return addrs
}

// Announce registers addr for networkID under a TTL lease and keeps the
// lease alive by re-announcing on a heartbeat (a third of the TTL, so two
// consecutive renewals can fail before the lease lapses). The returned stop
// function halts the heartbeat and deregisters the address — the clean
// shutdown path for a relay daemon. Renewal errors are retried at the next
// tick and reported through onRenewError (nil to ignore); a registry that
// stays unwritable lets the lease lapse, which is the failure semantics
// leases exist to provide — but the daemon gets to log why it vanished
// from discovery.
func Announce(reg LeaseRegistrar, networkID, addr string, ttl time.Duration, onRenewError func(error)) (stop func(), err error) {
	return AnnounceWithHealth(reg, networkID, addr, ttl, nil, onRenewError)
}

// AnnounceWithHealth is Announce plus health sharing: when the registry
// implements HealthPublisher and health is non-nil, every heartbeat also
// publishes the relay's current per-address health snapshot (typically
// Relay.HealthSnapshot). The piggyback costs nothing extra operationally —
// the heartbeat write was happening anyway — and keeps the registry's
// shared health no staler than one heartbeat. Publish failures are
// reported like renewal failures: health is advisory, so they never stop
// the announcement.
func AnnounceWithHealth(reg LeaseRegistrar, networkID, addr string, ttl time.Duration, health func() map[string]SharedHealth, onRenewError func(error)) (stop func(), err error) {
	publisher, _ := reg.(HealthPublisher)
	publish := func() error {
		if publisher == nil || health == nil {
			return nil
		}
		snapshot := health()
		if len(snapshot) == 0 {
			return nil
		}
		return publisher.PublishHealth(snapshot)
	}
	if ttl <= 0 {
		// Permanent registration: nothing to renew, deregister on stop.
		if err := reg.RegisterLease(networkID, addr, 0); err != nil {
			return nil, err
		}
		if err := publish(); err != nil && onRenewError != nil {
			onRenewError(err)
		}
		return func() { _ = reg.Deregister(networkID, addr) }, nil
	}
	if err := reg.RegisterLease(networkID, addr, ttl); err != nil {
		return nil, err
	}
	if err := publish(); err != nil && onRenewError != nil {
		onRenewError(err)
	}
	heartbeat := ttl / 3
	if heartbeat < time.Millisecond {
		heartbeat = time.Millisecond
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(heartbeat)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				if err := reg.RegisterLease(networkID, addr, ttl); err != nil && onRenewError != nil {
					onRenewError(err) // retried at the next tick regardless
				}
				if err := publish(); err != nil && onRenewError != nil {
					onRenewError(err)
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
			_ = reg.Deregister(networkID, addr)
		})
	}, nil
}
