package relay

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestJournalCompactionGraceWindowRecovery is the crash scenario the
// one-generation grace window exists for: the current generation's
// snapshot is destroyed after a compaction (disk fault, botched copy, an
// operator's stray rm), and recovery is performed by hand — point the
// generation file back at the kept superseded snapshot. Nothing that was
// registered before the lost compaction may be lost, and the journal must
// keep accepting appends and compacting afterwards.
func TestJournalCompactionGraceWindowRecovery(t *testing.T) {
	dir := t.TempDir()
	reg := journalAt(t, dir)
	for i := 0; i < 4; i++ {
		if err := reg.RegisterLease("net", fmt.Sprintf("relay-%d:9080", i), time.Hour); err != nil {
			t.Fatalf("RegisterLease: %v", err)
		}
	}
	// Two compactions: the current generation is 2, and the grace window
	// holds generation 1 (generation 0 is gone).
	for i := 0; i < 2; i++ {
		if err := reg.Compact(); err != nil {
			t.Fatalf("Compact %d: %v", i, err)
		}
	}
	if gen, err := reg.readGen(); err != nil || gen != 2 {
		t.Fatalf("generation = %d, %v, want 2", gen, err)
	}

	// The crash: generation 2's snapshot is lost. A fresh reader cannot
	// materialize the registry any more.
	if err := os.Remove(reg.genPath(2)); err != nil {
		t.Fatalf("simulate snapshot loss: %v", err)
	}
	broken := journalAt(t, dir)
	if _, err := broken.Resolve("net"); err == nil {
		t.Fatal("Resolve succeeded against a lost current-generation snapshot")
	}

	// Manual recovery, as the runbook prescribes: rewrite the pointer to
	// the grace generation. Every lease registered before the lost
	// compaction resolves again.
	if err := os.WriteFile(reg.pointerPath(), []byte("1"), 0o644); err != nil {
		t.Fatalf("rewind generation pointer: %v", err)
	}
	recovered := journalAt(t, dir)
	addrs, err := recovered.Resolve("net")
	if err != nil || len(addrs) != 4 {
		t.Fatalf("post-recovery Resolve = %v, %v, want 4 addrs", addrs, err)
	}

	// The recovered journal is fully live: appends land in the restored
	// generation and the next compaction rolls forward over the crash
	// site, re-establishing the grace chain.
	if err := recovered.RegisterLease("net", "relay-new:9080", time.Hour); err != nil {
		t.Fatalf("post-recovery RegisterLease: %v", err)
	}
	if err := recovered.Compact(); err != nil {
		t.Fatalf("post-recovery Compact: %v", err)
	}
	if gen, err := recovered.readGen(); err != nil || gen != 2 {
		t.Fatalf("post-recovery generation = %d, %v, want 2", gen, err)
	}
	if _, err := os.Stat(recovered.genPath(1)); err != nil {
		t.Fatalf("grace copy missing after post-recovery compaction: %v", err)
	}
	addrs, err = recovered.Resolve("net")
	if err != nil || len(addrs) != 5 {
		t.Fatalf("final Resolve = %v, %v, want 5 addrs", addrs, err)
	}
}

// TestJournalCompactionKeepsExactlyOneSupersededGeneration pins the
// retention policy across a chain of compactions: after every Compact,
// exactly the current generation and its immediate predecessor exist on
// disk — older generations (crash leftovers included) are removed.
func TestJournalCompactionKeepsExactlyOneSupersededGeneration(t *testing.T) {
	dir := t.TempDir()
	reg := journalAt(t, dir)
	if err := reg.RegisterLease("net", "relay-0:9080", time.Hour); err != nil {
		t.Fatalf("RegisterLease: %v", err)
	}
	for round := 1; round <= 4; round++ {
		if err := reg.Compact(); err != nil {
			t.Fatalf("Compact %d: %v", round, err)
		}
		gen, err := reg.readGen()
		if err != nil || gen != uint64(round) {
			t.Fatalf("generation after round %d = %d, %v", round, gen, err)
		}
		var want []string
		if round == 1 {
			// Generation 0 is the root path itself.
			want = []string{reg.genPath(0), reg.genPath(1)}
		} else {
			want = []string{reg.genPath(uint64(round - 1)), reg.genPath(uint64(round))}
		}
		for _, p := range want {
			if _, err := os.Stat(p); err != nil {
				t.Fatalf("round %d: expected journal file %s missing: %v", round, filepath.Base(p), err)
			}
		}
		// Nothing older than the grace generation survives.
		matches, err := filepath.Glob(reg.path + ".[0-9]*")
		if err != nil {
			t.Fatalf("glob: %v", err)
		}
		for _, m := range matches {
			if m == reg.genPath(uint64(round)) || (round > 1 && m == reg.genPath(uint64(round-1))) {
				continue
			}
			t.Fatalf("round %d: stale generation file %s survived compaction", round, filepath.Base(m))
		}
		if round > 1 {
			if _, err := os.Stat(reg.genPath(0)); !os.IsNotExist(err) {
				t.Fatalf("round %d: generation-0 root journal survived: %v", round, err)
			}
		}
	}
}
