package relay

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/msp"
	"repro/internal/proof"
	"repro/internal/wire"
)

// forwardChain is an in-process multi-hop topology: an origin relay whose
// discovery knows only the first hub, a chain of forwarding hubs each of
// which can resolve only the next hub (the last resolves the source), and
// a source relay serving "src-net" with a tallyTxDriver. Registries are
// deliberately partitioned per relay, so the only way a request reaches
// the source is the full walk.
type forwardChain struct {
	origin *Relay
	hubs   []*Relay // hubs[0] is adjacent to the origin
	driver *tallyTxDriver
}

func hubIdentity(t testing.TB, i int) *msp.Identity {
	t.Helper()
	ca, err := msp.NewCA(fmt.Sprintf("hub-%d-org", i))
	if err != nil {
		t.Fatalf("hub CA %d: %v", i, err)
	}
	id, err := ca.Issue(fmt.Sprintf("hub-relay-%d", i), msp.RolePeer)
	if err != nil {
		t.Fatalf("hub identity %d: %v", i, err)
	}
	return id
}

func buildForwardChain(t testing.TB, hubCount int) *forwardChain {
	t.Helper()
	transport := NewHub()
	driver := &tallyTxDriver{response: []byte("forwarded-result")}
	src := New("src-net", NewStaticRegistry(), transport)
	src.RegisterDriver("src-net", driver)
	transport.Attach("src:1", src)

	chain := &forwardChain{driver: driver}
	for i := hubCount; i >= 1; i-- {
		reg := NewStaticRegistry()
		routes := NewRouteTable()
		if i == hubCount {
			reg.Register("src-net", "src:1")
		} else {
			next := fmt.Sprintf("hub-%d-net", i+1)
			reg.Register(next, fmt.Sprintf("hub-%d:1", i+1))
			routes.Set("src-net", next)
		}
		h := New(fmt.Sprintf("hub-%d-net", i), reg, transport)
		h.EnableForwarding(routes, hubIdentity(t, i))
		transport.Attach(fmt.Sprintf("hub-%d:1", i), h)
		chain.hubs = append([]*Relay{h}, chain.hubs...)
	}

	originReg := NewStaticRegistry()
	originRoutes := NewRouteTable()
	if hubCount > 0 {
		originReg.Register("hub-1-net", "hub-1:1")
		originRoutes.Set("src-net", "hub-1-net")
	} else {
		originReg.Register("src-net", "src:1")
	}
	chain.origin = New("we-trade", originReg, transport, WithRoutes(originRoutes))
	return chain
}

func forwardQuerySpec(requestID string) *wire.Query {
	return &wire.Query{
		RequestID:         requestID,
		RequestingNetwork: "we-trade",
		TargetNetwork:     "src-net",
		Contract:          "cc",
		Function:          "fn",
		Nonce:             []byte("hop-nonce"),
	}
}

func TestRouteTable(t *testing.T) {
	tbl := NewRouteTable()
	if got := tbl.NextHops("x"); got != nil {
		t.Fatalf("empty table NextHops = %v", got)
	}
	tbl.Set("src-net", "hub-b", "hub-a")
	hops := tbl.NextHops("src-net")
	if len(hops) != 2 || hops[0] != "hub-b" {
		t.Fatalf("NextHops = %v", hops)
	}
	hops[0] = "mutated" // callers get a copy
	if tbl.NextHops("src-net")[0] != "hub-b" {
		t.Fatal("NextHops returned shared storage")
	}
	tbl.Set("a-net", "hub-a")
	entries := tbl.Entries()
	if len(entries) != 2 || entries[0].Target != "a-net" || entries[1].Target != "src-net" {
		t.Fatalf("Entries = %+v", entries)
	}
	tbl.Set("a-net") // empty via list removes
	if got := tbl.NextHops("a-net"); got != nil {
		t.Fatalf("after removal NextHops = %v", got)
	}
	if tbl.MaxHops() != DefaultMaxHops {
		t.Fatalf("default MaxHops = %d", tbl.MaxHops())
	}
	tbl.SetMaxHops(7)
	if tbl.MaxHops() != 7 {
		t.Fatalf("MaxHops = %d", tbl.MaxHops())
	}
	var nilTable *RouteTable
	if nilTable.MaxHops() != DefaultMaxHops || nilTable.NextHops("x") != nil || nilTable.Entries() != nil {
		t.Fatal("nil table is not inert")
	}
}

func TestParseRoute(t *testing.T) {
	target, vias, err := ParseRoute("src-net=hub-1-net, hub-2-net")
	if err != nil || target != "src-net" || len(vias) != 2 || vias[1] != "hub-2-net" {
		t.Fatalf("ParseRoute = %q %v %v", target, vias, err)
	}
	for _, bad := range []string{"", "src-net", "=hub", "src-net=", "src-net=,"} {
		if _, _, err := ParseRoute(bad); err == nil {
			t.Fatalf("ParseRoute(%q) accepted", bad)
		}
	}
}

// TestMultiHopQueryPins drives a query over 1, 2 and 3 intermediate hubs
// and checks the returned proof pins: one per hub, nearest the source
// first, verifiable end-to-end at the origin, and broken by any single-pin
// mutation.
func TestMultiHopQueryPins(t *testing.T) {
	for _, hubCount := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("hubs=%d", hubCount), func(t *testing.T) {
			chain := buildForwardChain(t, hubCount)
			q := forwardQuerySpec(fmt.Sprintf("fwd-q-%d", hubCount))
			resp, err := chain.origin.Query(context.Background(), q)
			if err != nil {
				t.Fatalf("Query: %v", err)
			}
			if resp.Error != "" {
				t.Fatalf("remote error: %s", resp.Error)
			}
			if len(resp.HopPins) != hubCount {
				t.Fatalf("pins = %d, want %d", len(resp.HopPins), hubCount)
			}
			// Nearest-source first: the last hub on the walk appends first.
			for i, pin := range resp.HopPins {
				if want := fmt.Sprintf("hub-%d-net", hubCount-i); pin.Network != want {
					t.Fatalf("pin %d = %q, want %q", i, pin.Network, want)
				}
			}
			hops, err := proof.VerifyHopChainVia(q, resp, "hub-1-net")
			if err != nil {
				t.Fatalf("VerifyHopChainVia: %v", err)
			}
			if len(hops) != hubCount {
				t.Fatalf("verified hops = %d", len(hops))
			}
			// Any single-pin mutation breaks the whole chain.
			for i := range resp.HopPins {
				mutated := *resp
				mutated.HopPins = append([]wire.HopPin(nil), resp.HopPins...)
				mutated.HopPins[i].Pin = append([]byte(nil), resp.HopPins[i].Pin...)
				mutated.HopPins[i].Pin[0] ^= 0x01
				if _, err := proof.VerifyHopChainVia(q, &mutated, "hub-1-net"); err == nil {
					t.Fatalf("chain with pin %d mutated verified", i)
				}
			}
			// Every hub forwarded exactly once and counted it.
			for i, h := range chain.hubs {
				if s := h.Stats(); s.ForwardedQueries != 1 || s.ForwardedInvokes != 0 {
					t.Fatalf("hub %d stats = %+v", i, s)
				}
			}
		})
	}
}

// TestDirectRouteBypassesTable pins the direct-first rule: when discovery
// resolves the target, the route table is never consulted and the response
// carries no pins.
func TestDirectRouteBypassesTable(t *testing.T) {
	chain := buildForwardChain(t, 0)
	resp, err := chain.origin.Query(context.Background(), forwardQuerySpec("direct-q"))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(resp.HopPins) != 0 {
		t.Fatalf("direct response carries %d pins", len(resp.HopPins))
	}
}

// TestMultiHopInvokeExactlyOnce drives the same invoke twice through a
// two-hub chain: the driver executes once, the duplicate replays the
// remembered outcome from the first hub's dedup cache, and both responses
// carry a verifiable hop chain.
func TestMultiHopInvokeExactlyOnce(t *testing.T) {
	chain := buildForwardChain(t, 2)
	q := forwardQuerySpec("fwd-inv-1")
	first, err := chain.origin.Invoke(context.Background(), q)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if first.Error != "" {
		t.Fatalf("remote error: %s", first.Error)
	}
	second, err := chain.origin.Invoke(context.Background(), q)
	if err != nil {
		t.Fatalf("duplicate Invoke: %v", err)
	}
	if got := chain.driver.executions.Load(); got != 1 {
		t.Fatalf("driver executed %d times", got)
	}
	for name, resp := range map[string]*wire.QueryResponse{"first": first, "replay": second} {
		if len(resp.HopPins) != 2 {
			t.Fatalf("%s response pins = %d", name, len(resp.HopPins))
		}
		if _, err := proof.VerifyHopChainVia(q, resp, "hub-1-net"); err != nil {
			t.Fatalf("%s response chain: %v", name, err)
		}
	}
	// The duplicate was served from hub-1's cache, not forwarded again.
	if s := chain.hubs[0].Stats(); s.ForwardedInvokes != 1 {
		t.Fatalf("hub-1 ForwardedInvokes = %d", s.ForwardedInvokes)
	}
	if s := chain.hubs[1].Stats(); s.ForwardedInvokes != 1 {
		t.Fatalf("hub-2 ForwardedInvokes = %d", s.ForwardedInvokes)
	}
}

// TestForwardRefusals pins the structural guards at a forwarding relay:
// cyclic routes, exhausted hop TTLs and unroutable targets are refused
// with an error envelope, never forwarded.
func TestForwardRefusals(t *testing.T) {
	chain := buildForwardChain(t, 1)
	hub := chain.hubs[0]
	mkEnv := func(q *wire.Query, route []string, maxHops uint64) *wire.Envelope {
		return &wire.Envelope{
			Version:   wire.ProtocolVersion,
			Type:      wire.MsgQuery,
			RequestID: q.RequestID,
			Payload:   q.Marshal(),
			Route:     route,
			MaxHops:   maxHops,
		}
	}
	cases := []struct {
		name string
		env  *wire.Envelope
		want string
	}{
		{"cycle", mkEnv(forwardQuerySpec("r-cycle"), []string{"we-trade", "hub-1-net"}, 0), "routing cycle"},
		{"hop-limit", mkEnv(forwardQuerySpec("r-ttl"), []string{"we-trade"}, 1), "hop limit"},
		{"default-ttl", mkEnv(forwardQuerySpec("r-ttl4"), []string{"a", "b", "c", "d"}, 0), "hop limit"},
		{"no-route", mkEnv(&wire.Query{RequestID: "r-ghost", RequestingNetwork: "we-trade",
			TargetNetwork: "ghost-net", Contract: "cc", Function: "fn"}, []string{"we-trade"}, 0), "no route"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reply := hub.HandleEnvelope(context.Background(), tc.env)
			if reply.Type != wire.MsgError {
				t.Fatalf("reply = %+v", reply)
			}
			if !strings.Contains(string(reply.Payload), tc.want) {
				t.Fatalf("refusal %q does not mention %q", reply.Payload, tc.want)
			}
		})
	}
}

// TestHopLimitBoundsDeepWalk builds a chain one hub deeper than the
// default TTL allows (4 hubs + source = 5 legs) and checks the refusal
// from the over-limit hub propagates back to the origin.
func TestHopLimitBoundsDeepWalk(t *testing.T) {
	chain := buildForwardChain(t, 4)
	_, err := chain.origin.Query(context.Background(), forwardQuerySpec("deep-q"))
	if err == nil {
		t.Fatal("5-leg walk succeeded past a 4-leg TTL")
	}
	if !strings.Contains(err.Error(), "hop limit") {
		t.Fatalf("err = %v", err)
	}
}

// TestForwardedResponseVerifiedBeforePinning: a hub refuses to extend a
// downstream response whose chain does not check out, so a tampering hub
// cannot launder a forged path through an honest one.
func TestForwardedResponseVerifiedBeforePinning(t *testing.T) {
	chain := buildForwardChain(t, 2)
	// Interpose on hub-1's link to hub-2 with a transport that strips the
	// pins from every response passing through — an on-path adversary
	// erasing the path.
	chain.hubs[0].transport = &pinStrippingTransport{inner: chain.hubs[0].transport, addr: "hub-2:1"}
	_, err := chain.origin.Query(context.Background(), forwardQuerySpec("tamper-q"))
	if err == nil {
		t.Fatal("stripped chain accepted")
	}
	if !strings.Contains(err.Error(), "hop chain") {
		t.Fatalf("err = %v", err)
	}
}

// pinStrippingTransport forwards sends to the inner transport but removes
// the hop pins from query responses returning from one address.
type pinStrippingTransport struct {
	inner Transport
	addr  string
}

func (p *pinStrippingTransport) Send(ctx context.Context, addr string, env *wire.Envelope) (*wire.Envelope, error) {
	reply, err := p.inner.Send(ctx, addr, env)
	if err != nil || addr != p.addr || reply.Type != wire.MsgQueryResponse {
		return reply, err
	}
	resp, derr := wire.UnmarshalQueryResponse(reply.Payload)
	if derr != nil {
		return reply, err
	}
	resp.HopPins = nil
	reply.Payload = resp.Marshal()
	return reply, nil
}
