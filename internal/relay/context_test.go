package relay

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// captureDriver records the serving context's deadline for each query and
// answers immediately.
type captureDriver struct {
	deadlines chan time.Time
}

func (d *captureDriver) Platform() string { return "test" }

func (d *captureDriver) Query(ctx context.Context, q *wire.Query) (*wire.QueryResponse, error) {
	deadline, _ := ctx.Deadline()
	select {
	case d.deadlines <- deadline:
	default:
	}
	return &wire.QueryResponse{RequestID: q.RequestID}, nil
}

// newCaptureRelay builds a relay serving network "srcnet" through a
// captureDriver.
func newCaptureRelay(discovery Discovery, transport Transport, opts ...Option) (*Relay, *captureDriver) {
	d := &captureDriver{deadlines: make(chan time.Time, 1)}
	r := New("srcnet", discovery, transport, opts...)
	r.RegisterDriver("srcnet", d)
	return r, d
}

func captureQuery(t *testing.T) *wire.Query {
	t.Helper()
	return &wire.Query{TargetNetwork: "srcnet", Contract: "cc", Function: "fn"}
}

// TestQueryDoesNotMutateCallerQuery: the relay operates on a copy; the
// assigned request ID comes back in the response instead of being written
// into the caller's struct.
func TestQueryDoesNotMutateCallerQuery(t *testing.T) {
	hub := NewHub()
	reg := NewStaticRegistry()
	src, _ := newCaptureRelay(reg, hub)
	hub.Attach("src-relay", src)
	reg.Register("srcnet", "src-relay")

	dest := New("destnet", reg, hub)
	q := captureQuery(t)
	resp, err := dest.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if q.RequestID != "" {
		t.Fatalf("caller's RequestID mutated to %q", q.RequestID)
	}
	if q.RequestingNetwork != "" {
		t.Fatalf("caller's RequestingNetwork mutated to %q", q.RequestingNetwork)
	}
	if resp.RequestID == "" {
		t.Fatal("assigned request ID not returned in the response")
	}
}

// TestQueryDeadlineAgainstStalledTransport: a hung relay (reachable but
// never replying) cannot block a query past its deadline.
func TestQueryDeadlineAgainstStalledTransport(t *testing.T) {
	hub := NewHub()
	reg := NewStaticRegistry()
	src, _ := newCaptureRelay(reg, hub)
	hub.Attach("src-relay", src)
	reg.Register("srcnet", "src-relay")
	hub.SetStall("src-relay", true)

	dest := New("destnet", reg, hub)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := dest.Query(ctx, captureQuery(t))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("query blocked %v past its 100ms deadline", elapsed)
	}
}

// TestQueryCancellationMidFlight: cancelling the context releases a query
// blocked on a hung transport immediately.
func TestQueryCancellationMidFlight(t *testing.T) {
	hub := NewHub()
	reg := NewStaticRegistry()
	src, _ := newCaptureRelay(reg, hub)
	hub.Attach("src-relay", src)
	reg.Register("srcnet", "src-relay")
	hub.SetStall("src-relay", true)

	dest := New("destnet", reg, hub)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := dest.Query(ctx, captureQuery(t))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the query reach the stall
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled query never returned")
	}
}

// TestHedgedFanoutWinnerLoserAccounting: with the preferred address hung
// and hedging enabled, the standby wins after the hedge delay, the stalled
// loser is cancelled, and the stats record one attempt each, one hedged
// win and one loser.
func TestHedgedFanoutWinnerLoserAccounting(t *testing.T) {
	hub := NewHub()
	reg := NewStaticRegistry()
	src, _ := newCaptureRelay(reg, hub)
	hub.Attach("src-stalled", src)
	hub.Attach("src-healthy", src)
	reg.Register("srcnet", "src-stalled", "src-healthy")
	hub.SetStall("src-stalled", true)

	dest := New("destnet", reg, hub, WithHedging(5*time.Millisecond, 2))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	resp, err := dest.Query(ctx, captureQuery(t))
	if err != nil {
		t.Fatalf("hedged query: %v", err)
	}
	if resp.Error != "" {
		t.Fatalf("remote error: %s", resp.Error)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hedged query took %v; the stalled primary was not hedged around", elapsed)
	}
	stats := dest.Stats()
	if stats.FanoutAttempts != 2 {
		t.Fatalf("FanoutAttempts = %d, want 2", stats.FanoutAttempts)
	}
	if stats.HedgedWins != 1 {
		t.Fatalf("HedgedWins = %d, want 1", stats.HedgedWins)
	}
	if stats.HedgedLosses != 1 {
		t.Fatalf("HedgedLosses = %d, want 1", stats.HedgedLosses)
	}
}

// TestHedgedFanoutAllAddressesFail: every address failing still surfaces
// ErrAllRelaysFailed under hedging.
func TestHedgedFanoutAllAddressesFail(t *testing.T) {
	hub := NewHub()
	reg := NewStaticRegistry()
	src, _ := newCaptureRelay(reg, hub)
	hub.Attach("a1", src)
	hub.Attach("a2", src)
	hub.Attach("a3", src)
	reg.Register("srcnet", "a1", "a2", "a3")
	for _, a := range []string{"a1", "a2", "a3"} {
		hub.SetDown(a, true)
	}

	dest := New("destnet", reg, hub, WithHedging(time.Millisecond, 2))
	if _, err := dest.Query(context.Background(), captureQuery(t)); !errors.Is(err, ErrAllRelaysFailed) {
		t.Fatalf("err = %v, want ErrAllRelaysFailed", err)
	}
}

// TestHedgedFanoutFailoverOnFailure: a hard failure (address down) opens
// the next attempt immediately, well before the hedge delay.
func TestHedgedFanoutFailoverOnFailure(t *testing.T) {
	hub := NewHub()
	reg := NewStaticRegistry()
	src, _ := newCaptureRelay(reg, hub)
	hub.Attach("down", src)
	hub.Attach("up", src)
	reg.Register("srcnet", "down", "up")
	hub.SetDown("down", true)

	// Hedge delay far longer than the test budget: only the
	// failure-triggered launch can explain a fast success.
	dest := New("destnet", reg, hub, WithHedging(time.Minute, 2))
	start := time.Now()
	resp, err := dest.Query(context.Background(), captureQuery(t))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if resp.Error != "" {
		t.Fatalf("remote error: %s", resp.Error)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("failure-triggered hedge took %v", elapsed)
	}
}

// TestDeadlinePropagatesAcrossWire: the requester's deadline travels in the
// envelope over real TCP and the source relay serves the query under a
// context carrying (at least) that deadline. Since the receiver takes the
// laxer of the absolute and relative encodings, the observed deadline may
// trail the requester's by the one-way transit time, never by more.
func TestDeadlinePropagatesAcrossWire(t *testing.T) {
	reg := NewStaticRegistry()
	transport := &TCPTransport{DialTimeout: 2 * time.Second, IOTimeout: 10 * time.Second}
	src, drv := newCaptureRelay(reg, transport)
	server, err := NewTCPServer(src, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewTCPServer: %v", err)
	}
	defer server.Close()
	reg.Register("srcnet", server.Addr())

	dest := New("destnet", reg, transport)
	deadline := time.Now().Add(3 * time.Second)
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	if _, err := dest.Query(ctx, captureQuery(t)); err != nil {
		t.Fatalf("Query: %v", err)
	}
	select {
	case got := <-drv.deadlines:
		if got.IsZero() {
			t.Fatal("source relay served the query with no deadline")
		}
		if got.Before(deadline) {
			t.Fatalf("source deadline = %v, earlier than the requester's %v", got, deadline)
		}
		if got.Sub(deadline) > 2*time.Second {
			t.Fatalf("source deadline = %v, inflated %v past the requester's", got, got.Sub(deadline))
		}
	case <-time.After(time.Second):
		t.Fatal("driver never observed the query")
	}
}

// deadlineRespectingDriver declines to serve once the serving context is
// dead — the behaviour any real driver (and the FabricDriver) has, which
// the skew test depends on.
type deadlineRespectingDriver struct {
	deadlines chan time.Time
}

func (d *deadlineRespectingDriver) Platform() string { return "test" }

func (d *deadlineRespectingDriver) Query(ctx context.Context, q *wire.Query) (*wire.QueryResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	deadline, _ := ctx.Deadline()
	select {
	case d.deadlines <- deadline:
	default:
	}
	return &wire.QueryResponse{RequestID: q.RequestID}, nil
}

// TestSkewedClockDoesNotKillRequestOnArrival: a source relay whose clock
// runs an hour fast reads the absolute deadline as long past — with only
// DeadlineUnixNano stamped (an older sender) it kills the request on
// arrival, but with the relative TimeoutNanos alongside it takes the laxer
// interpretation and serves the request under the true remaining budget.
func TestSkewedClockDoesNotKillRequestOnArrival(t *testing.T) {
	reg := NewStaticRegistry()
	fastClock := func() time.Time { return time.Now().Add(time.Hour) }
	drv := &deadlineRespectingDriver{deadlines: make(chan time.Time, 1)}
	src := New("srcnet", reg, NewHub(), WithClock(fastClock))
	src.RegisterDriver("srcnet", drv)

	makeEnv := func(deadline time.Time, timeout time.Duration) *wire.Envelope {
		q := captureQuery(t)
		q.RequestID = "skew-1"
		env := &wire.Envelope{
			Version:          wire.ProtocolVersion,
			Type:             wire.MsgQuery,
			RequestID:        q.RequestID,
			Payload:          q.Marshal(),
			DeadlineUnixNano: uint64(deadline.UnixNano()),
		}
		if timeout > 0 {
			env.TimeoutNanos = uint64(timeout)
		}
		return env
	}

	// Absolute-only envelope (pre-TimeoutNanos sender): the fast clock sees
	// the deadline an hour in the past and the query dies on arrival.
	deadline := time.Now().Add(30 * time.Second)
	reply := src.HandleEnvelope(context.Background(), makeEnv(deadline, 0))
	resp, err := wire.UnmarshalQueryResponse(reply.Payload)
	if err != nil {
		t.Fatalf("unmarshal reply: %v", err)
	}
	if resp.Error == "" {
		t.Fatal("absolute-only deadline survived an hour of clock skew; the skew fixture is not exercising the bug")
	}

	// Both encodings stamped (a current sender): the relative budget is the
	// laxer interpretation and the query is served.
	deadline = time.Now().Add(30 * time.Second)
	reply = src.HandleEnvelope(context.Background(), makeEnv(deadline, 30*time.Second))
	resp, err = wire.UnmarshalQueryResponse(reply.Payload)
	if err != nil {
		t.Fatalf("unmarshal reply: %v", err)
	}
	if resp.Error != "" {
		t.Fatalf("skew-tolerant deadline still killed the query: %s", resp.Error)
	}
	select {
	case got := <-drv.deadlines:
		if remaining := time.Until(got); remaining <= 0 || remaining > 35*time.Second {
			t.Fatalf("served budget = %v, want ~30s", remaining)
		}
	case <-time.After(time.Second):
		t.Fatal("driver never observed the query")
	}
}

// stampRecordingTransport records each send's stamped TimeoutNanos and
// fails every address except the last.
type stampRecordingTransport struct {
	inner Transport
	mu    sync.Mutex
	burn  time.Duration
	seen  []uint64
	last  string
}

func (t *stampRecordingTransport) Send(ctx context.Context, addr string, env *wire.Envelope) (*wire.Envelope, error) {
	t.mu.Lock()
	t.seen = append(t.seen, env.TimeoutNanos)
	t.mu.Unlock()
	if addr != t.last {
		time.Sleep(t.burn) // a slow failure consuming the shared budget
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, addr)
	}
	return t.inner.Send(ctx, addr, env)
}

// TestFailoverRestampsRelativeBudget: the relative budget decays as fan-out
// burns time, so the envelope resent to the next address must carry the
// budget remaining at that attempt, not the budget at first stamp —
// otherwise the receiver's laxer-interpretation rule would let it serve
// past the requester's true deadline.
func TestFailoverRestampsRelativeBudget(t *testing.T) {
	hub := NewHub()
	reg := NewStaticRegistry()
	src, _ := newCaptureRelay(reg, hub)
	hub.Attach("slow-fail", src)
	hub.Attach("ok", src)
	reg.Register("srcnet", "slow-fail", "ok")

	transport := &stampRecordingTransport{inner: hub, burn: 60 * time.Millisecond, last: "ok"}
	dest := New("destnet", reg, transport)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := dest.Query(ctx, captureQuery(t)); err != nil {
		t.Fatalf("Query: %v", err)
	}
	transport.mu.Lock()
	defer transport.mu.Unlock()
	if len(transport.seen) != 2 {
		t.Fatalf("sends = %d, want 2", len(transport.seen))
	}
	first, second := transport.seen[0], transport.seen[1]
	if first == 0 || second == 0 {
		t.Fatalf("TimeoutNanos not stamped: %d, %d", first, second)
	}
	if second >= first {
		t.Fatalf("failover resend budget %d >= first attempt's %d; stale relative budget was resent", second, first)
	}
	if decayed := time.Duration(first - second); decayed < 50*time.Millisecond {
		t.Fatalf("failover resend budget decayed by only %v, want >= the 60ms the failed attempt burned", decayed)
	}
}

// TestTCPSendDeadlineAgainstHungServer: a TCP peer that accepts the
// connection but never replies cannot hold Send past the context deadline.
func TestTCPSendDeadlineAgainstHungServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold the connection open, never reply
		}
	}()

	transport := &TCPTransport{DialTimeout: 2 * time.Second, IOTimeout: 30 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = transport.Send(ctx, ln.Addr().String(), &wire.Envelope{Version: 1, Type: wire.MsgPing, RequestID: "p"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Send blocked %v past its deadline", elapsed)
	}
}

// TestTCPSendCancellationUnblocksRead: cancelling mid-read interrupts a
// blocked TCP round-trip immediately, without waiting for IOTimeout.
func TestTCPSendCancellationUnblocksRead(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 4096)
		_, _ = conn.Read(buf) // consume the request, never answer
		time.Sleep(5 * time.Second)
	}()

	transport := &TCPTransport{DialTimeout: 2 * time.Second, IOTimeout: 30 * time.Second}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := transport.Send(ctx, ln.Addr().String(), &wire.Envelope{Version: 1, Type: wire.MsgPing, RequestID: "p"})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled Send never returned")
	}
}

// TestInvokeDoesNotHedge: hedging configuration must not apply to invokes —
// with the preferred address stalled, an invoke waits (bounded by its
// deadline) instead of racing a second, potentially duplicate transaction.
func TestInvokeDoesNotHedge(t *testing.T) {
	hub := NewHub()
	reg := NewStaticRegistry()
	src, _ := newCaptureRelay(reg, hub)
	hub.Attach("stalled", src)
	hub.Attach("healthy", src)
	reg.Register("srcnet", "stalled", "healthy")
	hub.SetStall("stalled", true)

	dest := New("destnet", reg, hub, WithHedging(time.Millisecond, 2))
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := dest.Invoke(ctx, captureQuery(t))
	// Sequential failover blocks on the stalled primary until the deadline;
	// it must NOT hedge to the healthy standby.
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded (sequential failover)", err)
	}
}

// countingTxDriver counts executions, for invoke idempotency tests.
type countingTxDriver struct {
	mu    sync.Mutex
	count int
}

func (d *countingTxDriver) Platform() string { return "test" }

func (d *countingTxDriver) Query(ctx context.Context, q *wire.Query) (*wire.QueryResponse, error) {
	return &wire.QueryResponse{RequestID: q.RequestID}, nil
}

func (d *countingTxDriver) Invoke(ctx context.Context, q *wire.Query) (*wire.QueryResponse, error) {
	d.mu.Lock()
	d.count++
	d.mu.Unlock()
	return &wire.QueryResponse{RequestID: q.RequestID, EncryptedResult: []byte("committed")}, nil
}

// TestInvokeResendDeduplicated: a transport-level resend of the same invoke
// request ID (failover after delivery, stale-connection retry) replays the
// committed response instead of executing the transaction twice.
func TestInvokeResendDeduplicated(t *testing.T) {
	reg := NewStaticRegistry()
	d := &countingTxDriver{}
	src := New("srcnet", reg, NewHub())
	src.RegisterDriver("srcnet", d)

	q := &wire.Query{TargetNetwork: "srcnet", Contract: "cc", Function: "fn", RequestID: "inv-1"}
	env := &wire.Envelope{
		Version:   wire.ProtocolVersion,
		Type:      wire.MsgInvoke,
		RequestID: "inv-1",
		Payload:   q.Marshal(),
	}
	first := src.HandleEnvelope(context.Background(), env)
	if first.Type != wire.MsgQueryResponse {
		t.Fatalf("first reply type = %v", first.Type)
	}
	second := src.HandleEnvelope(context.Background(), env)
	if second.Type != wire.MsgQueryResponse {
		t.Fatalf("resend reply type = %v", second.Type)
	}
	if !bytes.Equal(first.Payload, second.Payload) {
		t.Fatal("resend returned a different response than the original")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.count != 1 {
		t.Fatalf("transaction executed %d times, want 1", d.count)
	}
}

// TestInvokeFailsOverOnlyWhenUnreachable: invoke failover moves past an
// address whose connection was never established (safe — nothing was
// delivered), which is the only resend the at-most-once contract allows.
func TestInvokeFailsOverOnlyWhenUnreachable(t *testing.T) {
	hub := NewHub()
	reg := NewStaticRegistry()
	d := &countingTxDriver{}
	src := New("srcnet", reg, hub)
	src.RegisterDriver("srcnet", d)
	hub.Attach("down", src)
	hub.Attach("up", src)
	reg.Register("srcnet", "down", "up")
	hub.SetDown("down", true) // unreachable: connection refused, nothing delivered

	dest := New("destnet", reg, hub)
	resp, err := dest.Invoke(context.Background(), captureQuery(t))
	if err != nil {
		t.Fatalf("Invoke with unreachable primary: %v", err)
	}
	if resp.Error != "" {
		t.Fatalf("remote error: %s", resp.Error)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.count != 1 {
		t.Fatalf("transaction executed %d times, want 1", d.count)
	}
}

// TestSubscribeResendIdempotent: a duplicate subscribe envelope (same
// subscription ID) does not register a second source-side subscription.
type countingEventSource struct {
	countingTxDriver
	subs int
}

func (d *countingEventSource) SubscribeEvents(ctx context.Context, eventName string, deliver func([]byte, string, uint64)) (func(), error) {
	d.mu.Lock()
	d.subs++
	d.mu.Unlock()
	return func() {}, nil
}

func TestSubscribeResendIdempotent(t *testing.T) {
	reg := NewStaticRegistry()
	d := &countingEventSource{}
	src := New("srcnet", reg, NewHub())
	src.RegisterDriver("srcnet", d)

	sub := &wire.Subscription{
		SubscriptionID: "sub-1", RequestingNetwork: "destnet",
		TargetNetwork: "srcnet", EventName: "ev",
	}
	env := &wire.Envelope{
		Version: wire.ProtocolVersion, Type: wire.MsgSubscribe,
		RequestID: "sub-1", Payload: sub.Marshal(),
	}
	for i := 0; i < 3; i++ {
		if reply := src.HandleEnvelope(context.Background(), env); reply.Type != wire.MsgQueryResponse {
			t.Fatalf("reply %d type = %v", i, reply.Type)
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.subs != 1 {
		t.Fatalf("driver subscriptions = %d, want 1", d.subs)
	}
}

// errorThenSlowTransport answers one address instantly with an
// application-level MsgError and the other with a delayed success.
type errorThenSlowTransport struct {
	errAddr  string
	slowAddr string
	delay    time.Duration
	inner    Transport
}

func (t *errorThenSlowTransport) Send(ctx context.Context, addr string, env *wire.Envelope) (*wire.Envelope, error) {
	if addr == t.errAddr {
		return errEnvelope(env.RequestID, "rate limit exceeded"), nil
	}
	select {
	case <-time.After(t.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return t.inner.Send(ctx, addr, env)
}

// TestHedgedFanoutErrorReplyDoesNotWin: an instant MsgError from a hedge
// attempt (e.g. the duplicate tripping a rate limiter) must not cancel a
// slower attempt that is about to succeed.
func TestHedgedFanoutErrorReplyDoesNotWin(t *testing.T) {
	hub := NewHub()
	reg := NewStaticRegistry()
	src, _ := newCaptureRelay(reg, hub)
	hub.Attach("slow-ok", src)
	hub.Attach("fast-err", src)
	reg.Register("srcnet", "fast-err", "slow-ok")

	transport := &errorThenSlowTransport{
		errAddr: "fast-err", slowAddr: "slow-ok",
		delay: 30 * time.Millisecond, inner: hub,
	}
	dest := New("destnet", reg, transport, WithHedging(time.Millisecond, 2))
	resp, err := dest.Query(context.Background(), captureQuery(t))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if resp.Error != "" {
		t.Fatalf("error reply won the hedge race: %s", resp.Error)
	}
}

// TestInvokeReplayCacheBounded: the replay cache evicts FIFO past its
// entry limit and refuses duplicates whose oversized response was dropped.
func TestInvokeReplayCacheBounded(t *testing.T) {
	reg := NewStaticRegistry()
	r := New("srcnet", reg, NewHub())

	for i := 0; i < invokeDedupLimit+10; i++ {
		r.invokeRemember(fmt.Sprintf("id-%d", i), []byte("resp"), "fp")
	}
	r.invokeMu.Lock()
	entries := len(r.invokeServed)
	r.invokeMu.Unlock()
	if entries != invokeDedupLimit {
		t.Fatalf("cache entries = %d, want %d", entries, invokeDedupLimit)
	}
	cached := func(id string) ([]byte, bool) {
		r.invokeMu.Lock()
		defer r.invokeMu.Unlock()
		served, ok := r.invokeServed[id]
		return served.payload, ok
	}
	if _, ok := cached("id-0"); ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, ok := cached(fmt.Sprintf("id-%d", invokeDedupLimit+9)); !ok {
		t.Fatal("newest entry missing")
	}

	// Oversized responses are remembered by ID with a nil payload.
	big := make([]byte, invokeDedupMaxEntryBytes+1)
	r.invokeRemember("big-1", big, "fp")
	payload, ok := cached("big-1")
	if !ok || payload != nil {
		t.Fatalf("oversized entry: payload=%v ok=%v, want nil/true", payload != nil, ok)
	}
}

// slowTxDriver blocks each Invoke until released, to model a commit that
// outlives a transport timeout.
type slowTxDriver struct {
	countingTxDriver
	release chan struct{}
}

func (d *slowTxDriver) Invoke(ctx context.Context, q *wire.Query) (*wire.QueryResponse, error) {
	<-d.release
	return d.countingTxDriver.Invoke(ctx, q)
}

// TestInvokeDuplicateWaitsForInflight: a duplicate arriving while the
// original invoke is still executing waits for it and replays the single
// committed outcome — the transaction never runs twice.
func TestInvokeDuplicateWaitsForInflight(t *testing.T) {
	reg := NewStaticRegistry()
	d := &slowTxDriver{release: make(chan struct{})}
	src := New("srcnet", reg, NewHub())
	src.RegisterDriver("srcnet", d)

	q := &wire.Query{TargetNetwork: "srcnet", Contract: "cc", Function: "fn", RequestID: "inv-slow"}
	env := &wire.Envelope{
		Version: wire.ProtocolVersion, Type: wire.MsgInvoke,
		RequestID: "inv-slow", Payload: q.Marshal(),
	}
	replies := make(chan *wire.Envelope, 2)
	for i := 0; i < 2; i++ {
		go func() { replies <- src.HandleEnvelope(context.Background(), env) }()
	}
	time.Sleep(20 * time.Millisecond) // both attempts in flight
	close(d.release)
	for i := 0; i < 2; i++ {
		select {
		case reply := <-replies:
			if reply.Type != wire.MsgQueryResponse {
				t.Fatalf("reply %d: %s: %s", i, reply.Type, reply.Payload)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("duplicate invoke never returned")
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.count != 1 {
		t.Fatalf("transaction executed %d times, want 1", d.count)
	}
}
