package relay

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestJournalTornAppendRecovery is the crash-consistency contract: for a
// journal whose writer died mid-append, truncated at *every* byte boundary
// of the final record, a fresh reader recovers exactly the committed
// prefix — the torn tail is skipped, never fatal — and the next append
// self-heals the tail so both the old prefix and the new record survive.
func TestJournalTornAppendRecovery(t *testing.T) {
	// Build a reference journal: two committed records, then a final
	// record that the crash will tear.
	build := func(t *testing.T, dir string) (path string, wholeSize, prefixLines int64) {
		t.Helper()
		path = filepath.Join(dir, "registry.jsonl")
		reg := NewJournalRegistry(path)
		if err := reg.RegisterLease("net", "committed:1", time.Hour); err != nil {
			t.Fatalf("RegisterLease: %v", err)
		}
		if err := reg.RegisterLease("net", "committed:2", time.Hour); err != nil {
			t.Fatalf("RegisterLease: %v", err)
		}
		if err := reg.RegisterLease("net", "torn:3", time.Hour); err != nil {
			t.Fatalf("RegisterLease: %v", err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
		if len(lines) != 3 {
			t.Fatalf("reference journal has %d lines, want 3", len(lines))
		}
		// Byte offset where the final record starts.
		prefixLines = int64(len(data) - len(lines[2]) - 1)
		return path, int64(len(data)), prefixLines
	}

	refDir := t.TempDir()
	_, wholeSize, finalStart := build(t, refDir)

	for cut := finalStart; cut <= wholeSize; cut++ {
		cut := cut
		t.Run(fmt.Sprintf("truncate-at-%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			path, size, start := build(t, dir)
			if size != wholeSize || start != finalStart {
				t.Fatalf("journal not deterministic: size %d/%d, final start %d/%d", size, wholeSize, start, finalStart)
			}
			if err := os.Truncate(path, cut); err != nil {
				t.Fatalf("Truncate: %v", err)
			}

			reader := NewJournalRegistry(path)
			addrs, err := reader.Resolve("net")
			if err != nil {
				t.Fatalf("Resolve over torn journal must not fail: %v", err)
			}
			if !containsAddr(addrs, "committed:1") || !containsAddr(addrs, "committed:2") {
				t.Fatalf("committed prefix lost: %v", addrs)
			}
			wantTorn := cut == wholeSize // only the untruncated journal keeps the final record
			if containsAddr(addrs, "torn:3") != wantTorn {
				t.Fatalf("torn record visibility = %v at cut %d, want %v (addrs %v)", !wantTorn, cut, wantTorn, addrs)
			}

			// The next append self-heals the tail: a writer terminates the
			// partial line before its own record, so the prefix, the healed
			// journal, and the new record all coexist.
			writer := NewJournalRegistry(path)
			if err := writer.RegisterLease("net", "healed:4", time.Hour); err != nil {
				t.Fatalf("post-crash append: %v", err)
			}
			after := NewJournalRegistry(path)
			addrs, err = after.Resolve("net")
			if err != nil {
				t.Fatalf("Resolve after self-heal: %v", err)
			}
			for _, want := range []string{"committed:1", "committed:2", "healed:4"} {
				if !containsAddr(addrs, want) {
					t.Fatalf("address %s missing after self-heal: %v", want, addrs)
				}
			}
			// A mid-record cut leaves one undecodable healed line; the
			// reader records the skip instead of failing. (Cutting only the
			// trailing newline leaves complete JSON, which the heal
			// legitimately recovers rather than skips.)
			if cut > finalStart && cut < wholeSize-1 && after.SkippedRecords() == 0 {
				t.Fatalf("cut %d: torn line silently vanished (no skip recorded)", cut)
			}
		})
	}
}

// TestJournalTornTailThenCompaction: compaction over a torn journal keeps
// the committed prefix and writes a clean snapshot — the torn line does
// not survive into the next generation.
func TestJournalTornTailThenCompaction(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "registry.jsonl")
	reg := NewJournalRegistry(path)
	if err := reg.RegisterLease("net", "committed:1", time.Hour); err != nil {
		t.Fatalf("RegisterLease: %v", err)
	}
	if err := reg.RegisterLease("net", "torn:2", time.Hour); err != nil {
		t.Fatalf("RegisterLease: %v", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if err := os.Truncate(path, st.Size()-3); err != nil {
		t.Fatalf("Truncate: %v", err)
	}

	fresh := NewJournalRegistry(path)
	if err := fresh.Compact(); err != nil {
		t.Fatalf("Compact over torn journal: %v", err)
	}
	addrs, err := fresh.Resolve("net")
	if err != nil || !containsAddr(addrs, "committed:1") || containsAddr(addrs, "torn:2") {
		t.Fatalf("post-compaction Resolve = %v, %v, want just the committed prefix", addrs, err)
	}
	// The snapshot is fully decodable: a new reader reports zero skips.
	clean := NewJournalRegistry(path)
	if _, err := clean.Resolve("net"); err != nil {
		t.Fatalf("clean reader Resolve: %v", err)
	}
	if clean.SkippedRecords() != 0 {
		t.Fatalf("snapshot carried %d undecodable lines", clean.SkippedRecords())
	}
}

// TestJournalEmptyAndWhitespaceLines: blank lines (an operator's stray
// newline) are tolerated, and a journal that is *all* garbage still yields
// an empty registry rather than an error — append-only logs degrade to
// their decodable prefix, they do not brick discovery.
func TestJournalGarbageTolerance(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "registry.jsonl")
	content := "\n{\"op\":\"lease\",\"net\":\"net\",\"addr\":\"good:1\"}\n\nnot json at all\n{\"op\":\"lease\",\"net\":\"net\",\"addr\":\"good:2\"}\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := NewJournalRegistry(path)
	addrs, err := reg.Resolve("net")
	if err != nil || len(addrs) != 2 {
		t.Fatalf("Resolve = %v, %v, want both good records", addrs, err)
	}
	if reg.SkippedRecords() != 1 {
		t.Fatalf("SkippedRecords = %d, want 1 (the garbage line)", reg.SkippedRecords())
	}

	allGarbage := filepath.Join(dir, "garbage.jsonl")
	if err := os.WriteFile(allGarbage, []byte("junk\nmore junk\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g := NewJournalRegistry(allGarbage)
	if _, err := g.Resolve("net"); !errors.Is(err, ErrUnknownNetwork) {
		t.Fatalf("all-garbage journal Resolve err = %v, want ErrUnknownNetwork", err)
	}
}
