// The registry conformance/chaos suite, grown out of the original
// FileRegistry chaos tests: every durable Registry implementation — the
// flock-serialized flat file and the append-only journal — must survive
// N-process-style concurrent registrars, health publishers, and (for the
// journal) a concurrent compactor without losing a single record, and a
// reader tailing mid-compaction must never observe a partial view.
//
// The suite asserts cross-process guarantees that the no-op flock fallback
// on non-unix platforms cannot promise (see flock_other.go) — so it is
// unix-only, like the guarantee. CI runs it -count=3 under -race.
//go:build unix

package relay

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// registryImpl is one Registry implementation under conformance test. Each
// chaos goroutine opens its own instance via open — the per-instance mutex
// then serializes nothing across them, exactly the situation of N relayd
// processes sharing one deployment directory.
type registryImpl struct {
	name string
	open func(dir string) Registry
	// openSkewed opens an instance whose clock is offset by skew, for
	// seeding already-lapsed decoy leases.
	openSkewed func(dir string, skew time.Duration) Registry
	// compact runs one compaction cycle, nil for implementations without
	// one (the flat file is rewritten on every store already).
	compact func(dir string) error
}

func registryImpls() []registryImpl {
	return []registryImpl{
		{
			name: "file",
			open: func(dir string) Registry {
				return NewFileRegistry(filepath.Join(dir, "registry.json"))
			},
			openSkewed: func(dir string, skew time.Duration) Registry {
				r := NewFileRegistry(filepath.Join(dir, "registry.json"))
				r.now = func() time.Time { return time.Now().Add(skew) }
				return r
			},
		},
		{
			name: "journal",
			open: func(dir string) Registry {
				return NewJournalRegistry(filepath.Join(dir, "registry.jsonl"))
			},
			openSkewed: func(dir string, skew time.Duration) Registry {
				r := NewJournalRegistry(filepath.Join(dir, "registry.jsonl"))
				r.now = func() time.Time { return time.Now().Add(skew) }
				return r
			},
			compact: func(dir string) error {
				return NewJournalRegistry(filepath.Join(dir, "registry.jsonl")).Compact()
			},
		},
	}
}

// TestRegistryChaosConcurrentRegistrars chaos-drives the shared deploy-dir
// protocol for every implementation: concurrent registrars churn through
// renewals, deregister/re-register cycles and prunes — and, where the
// implementation has one, a compactor rewrites the log underneath them the
// whole time. Each (registrar, round) pair registers a distinct address
// that is never touched again, so a single lost record anywhere in the run
// is permanently visible at the end; a registrar re-announcing the same
// address would instead silently heal the loss one round later and mask
// the bug. Before the FileRegistry flock this lost registrations routinely
// (two loads, two stores, last store wins); the journal must uphold the
// same 0-lost bar with appends alone.
func TestRegistryChaosConcurrentRegistrars(t *testing.T) {
	for _, impl := range registryImpls() {
		impl := impl
		t.Run(impl.name, func(t *testing.T) {
			dir := t.TempDir()

			// A decoy whose lease is already lapsed gives the concurrent
			// Prunes something real to remove while registrations fly.
			decoy := impl.openSkewed(dir, -time.Hour)
			if err := decoy.RegisterLease("net-0", "10.9.9.9:1", time.Minute); err != nil {
				t.Fatalf("seed decoy: %v", err)
			}

			const registrars = 8
			const rounds = 12
			addrFor := func(i, r int) string { return fmt.Sprintf("10.0.%d.%d:9080", i, r) }
			netFor := func(i int) string { return fmt.Sprintf("net-%d", i%2) }
			start := make(chan struct{})
			stopCompact := make(chan struct{})
			errs := make(chan error, registrars+1)
			var wg sync.WaitGroup
			for i := 0; i < registrars; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					// One registry instance per goroutine = one relayd process.
					reg := impl.open(dir)
					churn := fmt.Sprintf("10.8.8.%d:9080", i)
					<-start
					for r := 0; r < rounds; r++ {
						if err := reg.RegisterLease(netFor(i), addrFor(i, r), time.Minute); err != nil {
							errs <- fmt.Errorf("registrar %d round %d: RegisterLease: %w", i, r, err)
							return
						}
						switch r % 4 {
						case 1:
							// Restart churn on a dedicated address.
							if err := reg.RegisterLease(netFor(i), churn, time.Minute); err != nil {
								errs <- fmt.Errorf("registrar %d round %d: churn register: %w", i, r, err)
								return
							}
							if err := reg.Deregister(netFor(i), churn); err != nil {
								errs <- fmt.Errorf("registrar %d round %d: churn deregister: %w", i, r, err)
								return
							}
						case 3:
							if _, err := reg.Prune(); err != nil {
								errs <- fmt.Errorf("registrar %d round %d: Prune: %w", i, r, err)
								return
							}
						}
					}
				}(i)
			}
			// The concurrent compactor: its own "process", rewriting the log
			// in a tight loop while every registration above is in flight.
			var compactWG sync.WaitGroup
			if impl.compact != nil {
				compactWG.Add(1)
				go func() {
					defer compactWG.Done()
					<-start
					for {
						select {
						case <-stopCompact:
							return
						default:
						}
						if err := impl.compact(dir); err != nil {
							errs <- fmt.Errorf("compactor: %w", err)
							return
						}
					}
				}()
			}
			close(start)
			wg.Wait()
			close(stopCompact)
			compactWG.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			if t.Failed() {
				t.FailNow()
			}

			// Every registration of every round must have survived every
			// concurrent writer and every compaction.
			final := impl.open(dir)
			lost := 0
			for i := 0; i < registrars; i++ {
				addrs, err := final.Resolve(netFor(i))
				if err != nil {
					t.Fatalf("Resolve(%s): %v", netFor(i), err)
				}
				for r := 0; r < rounds; r++ {
					if !containsAddr(addrs, addrFor(i, r)) {
						lost++
					}
				}
			}
			if lost > 0 {
				t.Fatalf("%d of %d registrations lost to concurrent writers", lost, registrars*rounds)
			}
		})
	}
}

// TestRegistryChaosConcurrentHealthPublishers races health publication
// from separate registry instances against lease renewals (and, for the
// journal, a concurrent compactor): published records must land on the
// surviving entries without dropping either the registrations or each
// other.
func TestRegistryChaosConcurrentHealthPublishers(t *testing.T) {
	for _, impl := range registryImpls() {
		impl := impl
		t.Run(impl.name, func(t *testing.T) {
			dir := t.TempDir()
			seed := impl.open(dir)
			const addrs = 4
			for i := 0; i < addrs; i++ {
				if err := seed.Register("net", fmt.Sprintf("10.1.0.%d:9080", i)); err != nil {
					t.Fatalf("seed Register: %v", err)
				}
			}

			const publishers = 6
			stopCompact := make(chan struct{})
			errs := make(chan error, publishers+1)
			var wg sync.WaitGroup
			for i := 0; i < publishers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					reg := impl.open(dir)
					for r := 0; r < 10; r++ {
						records := map[string]SharedHealth{
							fmt.Sprintf("10.1.0.%d:9080", r%addrs): {
								ConsecFailures:   i + 1,
								EWMALatencyNanos: int64(time.Millisecond),
								ObservedUnixNano: int64(i*1000 + r),
							},
						}
						if err := reg.PublishHealth(records); err != nil {
							errs <- fmt.Errorf("publisher %d: %w", i, err)
							return
						}
						if err := reg.RegisterLease("net", fmt.Sprintf("10.1.0.%d:9080", i%addrs), time.Minute); err != nil {
							errs <- fmt.Errorf("publisher %d renew: %w", i, err)
							return
						}
					}
				}(i)
			}
			var compactWG sync.WaitGroup
			if impl.compact != nil {
				compactWG.Add(1)
				go func() {
					defer compactWG.Done()
					for {
						select {
						case <-stopCompact:
							return
						default:
						}
						if err := impl.compact(dir); err != nil {
							errs <- fmt.Errorf("compactor: %w", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			close(stopCompact)
			compactWG.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			final := impl.open(dir)
			resolved, err := final.Resolve("net")
			if err != nil {
				t.Fatalf("Resolve: %v", err)
			}
			if len(resolved) != addrs {
				t.Fatalf("resolved %d addresses, want %d: %v", len(resolved), addrs, resolved)
			}
			records, err := final.HealthRecords()
			if err != nil {
				t.Fatalf("HealthRecords: %v", err)
			}
			if len(records) == 0 {
				t.Fatal("no health records survived concurrent publication")
			}
		})
	}
}

// TestRegistryChaosReaderNeverSeesPartialView: a fixed membership of K
// addresses is renewed by concurrent heartbeaters while a compactor rolls
// the journal generation in a tight loop; readers tailing throughout must
// see exactly K addresses on every single Resolve. A reader that caught a
// half-written snapshot, or tailed a generation file past its rollover,
// would observe fewer — the invariant the pointer-flip protocol exists to
// protect. The flat file participates too: its atomic rename makes the
// same promise under concurrent full rewrites.
func TestRegistryChaosReaderNeverSeesPartialView(t *testing.T) {
	for _, impl := range registryImpls() {
		impl := impl
		t.Run(impl.name, func(t *testing.T) {
			dir := t.TempDir()
			seed := impl.open(dir)
			const members = 6
			for i := 0; i < members; i++ {
				if err := seed.Register("net", fmt.Sprintf("10.2.0.%d:9080", i)); err != nil {
					t.Fatalf("seed Register: %v", err)
				}
			}

			const renewers = 4
			const readers = 3
			stop := make(chan struct{})
			errs := make(chan error, renewers+readers+1)
			var workers sync.WaitGroup
			for i := 0; i < renewers; i++ {
				workers.Add(1)
				go func(i int) {
					defer workers.Done()
					reg := impl.open(dir)
					for r := 0; ; r++ {
						select {
						case <-stop:
							return
						default:
						}
						if err := reg.RegisterLease("net", fmt.Sprintf("10.2.0.%d:9080", r%members), time.Minute); err != nil {
							errs <- fmt.Errorf("renewer %d: %w", i, err)
							return
						}
					}
				}(i)
			}
			if impl.compact != nil {
				workers.Add(1)
				go func() {
					defer workers.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						if err := impl.compact(dir); err != nil {
							errs <- fmt.Errorf("compactor: %w", err)
							return
						}
					}
				}()
			}
			var readerWG sync.WaitGroup
			for i := 0; i < readers; i++ {
				readerWG.Add(1)
				go func(i int) {
					defer readerWG.Done()
					reg := impl.open(dir) // one tailing view per reader
					for r := 0; r < 150; r++ {
						addrs, err := reg.Resolve("net")
						if err != nil {
							errs <- fmt.Errorf("reader %d iteration %d: %w", i, r, err)
							return
						}
						if len(addrs) != members {
							errs <- fmt.Errorf("reader %d iteration %d: partial view — %d of %d addresses: %v",
								i, r, len(addrs), members, addrs)
							return
						}
					}
				}(i)
			}
			readerWG.Wait()
			close(stop)
			workers.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}
