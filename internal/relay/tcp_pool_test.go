package relay

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestPooledTransportRoundTrip(t *testing.T) {
	reg := NewStaticRegistry()
	pool := &PooledTCPTransport{DialTimeout: time.Second, IOTimeout: 5 * time.Second}
	defer pool.Close()
	target := New("net", reg, pool)
	server, err := NewTCPServer(target, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewTCPServer: %v", err)
	}
	defer server.Close()

	probe := New("probe", reg, pool)
	for i := 0; i < 10; i++ {
		if err := probe.Ping(context.Background(), server.Addr()); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
}

func TestPooledTransportConcurrent(t *testing.T) {
	reg := NewStaticRegistry()
	pool := &PooledTCPTransport{DialTimeout: time.Second, IOTimeout: 5 * time.Second, MaxIdlePerAddr: 2}
	defer pool.Close()
	target := New("net", reg, pool)
	server, err := NewTCPServer(target, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewTCPServer: %v", err)
	}
	defer server.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			probe := New("probe", reg, pool)
			for i := 0; i < 25; i++ {
				if err := probe.Ping(context.Background(), server.Addr()); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent pooled ping: %v", err)
	}
}

func TestPooledTransportRetriesStaleConnection(t *testing.T) {
	reg := NewStaticRegistry()
	pool := &PooledTCPTransport{DialTimeout: time.Second, IOTimeout: 2 * time.Second}
	defer pool.Close()
	target := New("net", reg, pool)
	server, err := NewTCPServer(target, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewTCPServer: %v", err)
	}
	addr := server.Addr()
	probe := New("probe", reg, pool)
	if err := probe.Ping(context.Background(), addr); err != nil {
		t.Fatalf("first ping: %v", err)
	}

	// Restart the server on the same address: the pooled connection is now
	// dead; Send must retry on a fresh one.
	if err := server.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	server2, err := NewTCPServer(target, addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer server2.Close()
	if err := probe.Ping(context.Background(), addr); err != nil {
		t.Fatalf("ping after restart: %v", err)
	}
}

func TestPooledTransportClosed(t *testing.T) {
	pool := &PooledTCPTransport{}
	pool.Close()
	_, err := pool.Send(context.Background(), "127.0.0.1:1", &wire.Envelope{Version: 1, Type: wire.MsgPing})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
}

func TestPooledTransportUnreachable(t *testing.T) {
	pool := &PooledTCPTransport{DialTimeout: 200 * time.Millisecond}
	defer pool.Close()
	_, err := pool.Send(context.Background(), "127.0.0.1:1", &wire.Envelope{Version: 1, Type: wire.MsgPing})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
}
