package relay

import (
	"context"
	"testing"
	"time"
)

// TestTCPFailoverAcrossRealServers runs E4's availability scenario over
// real sockets: two TCP servers front the source network; the primary is
// shut down mid-run and queries fail over to the standby.
func TestTCPFailoverAcrossRealServers(t *testing.T) {
	reg := NewStaticRegistry()
	transport := &TCPTransport{DialTimeout: 500 * time.Millisecond, IOTimeout: 10 * time.Second}
	src := newSourceEnv(t, reg, transport)
	req := newRequester(t)
	configureInterop(t, src, req)
	if _, err := src.admin.Submit("docs", "PutDoc", []byte("bl-77"), []byte("doc")); err != nil {
		t.Fatalf("PutDoc: %v", err)
	}

	primary, err := NewTCPServer(src.relay, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("primary: %v", err)
	}
	standby, err := NewTCPServer(src.relay, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("standby: %v", err)
	}
	defer standby.Close()
	reg.Register("tradelens", primary.Addr(), standby.Addr())

	dest := New("we-trade", reg, transport)

	// Both up.
	resp, err := dest.Query(context.Background(), newQuery(t, req))
	if err != nil || resp.Error != "" {
		t.Fatalf("query with both up: %v %s", err, respError(resp, err))
	}

	// Primary down: failover to the standby must succeed.
	if err := primary.Close(); err != nil {
		t.Fatalf("close primary: %v", err)
	}
	resp, err = dest.Query(context.Background(), newQuery(t, req))
	if err != nil {
		t.Fatalf("failover query: %v", err)
	}
	if resp.Error != "" {
		t.Fatalf("failover remote error: %s", resp.Error)
	}
}
