package relay

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestRateLimiterBurstAndRefill(t *testing.T) {
	l := NewRateLimiter(10, 3) // 10/s, burst 3
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if !l.Allow("we-trade") {
			t.Fatalf("request %d within burst denied", i)
		}
	}
	if l.Allow("we-trade") {
		t.Fatal("request over burst allowed")
	}
	// Other networks have their own buckets.
	if !l.Allow("other-net") {
		t.Fatal("independent bucket shared")
	}
	// 100ms refills one token at 10/s.
	now = now.Add(100 * time.Millisecond)
	if !l.Allow("we-trade") {
		t.Fatal("refilled token denied")
	}
	if l.Allow("we-trade") {
		t.Fatal("second token granted after single refill")
	}
	// Tokens cap at the burst.
	now = now.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if !l.Allow("we-trade") {
			t.Fatalf("request %d after long idle denied", i)
		}
	}
	if l.Allow("we-trade") {
		t.Fatal("burst cap not enforced")
	}
}

func TestRateLimiterDefaults(t *testing.T) {
	l := NewRateLimiter(0, 0)
	if !l.Allow("x") {
		t.Fatal("first request denied under defaults")
	}
}

func TestRelayRateLimitsIncomingQueries(t *testing.T) {
	hub := NewHub()
	reg := NewStaticRegistry()
	src := newSourceEnv(t, reg, hub)
	req := newRequester(t)
	configureInterop(t, src, req)
	_, _ = src.admin.Submit("docs", "PutDoc", []byte("bl-77"), []byte("doc"))

	// Rebuild the source relay with a tight limiter.
	limiter := NewRateLimiter(1000, 2)
	now := time.Unix(2000, 0)
	limiter.now = func() time.Time { return now }
	limited := New("tradelens", reg, hub, WithRateLimit(limiter))
	limited.RegisterDriver("tradelens", src.driver)
	hub.Attach("stl-limited", limited)
	reg.Register("tradelens", "stl-limited")

	dest := New("we-trade", reg, hub)
	query := func() error {
		_, err := dest.Query(context.Background(), newQuery(t, req))
		return err
	}
	if err := query(); err != nil {
		t.Fatalf("first query: %v", err)
	}
	if err := query(); err != nil {
		t.Fatalf("second query: %v", err)
	}
	err := query()
	if err == nil || !strings.Contains(err.Error(), "rate limit") {
		t.Fatalf("third query: %v", err)
	}

	stats := limited.Stats()
	if stats.QueriesServed != 2 || stats.RateLimited != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestStatsCountErrors(t *testing.T) {
	hub := NewHub()
	reg := NewStaticRegistry()
	src := newSourceEnv(t, reg, hub)
	req := newRequester(t)
	// No access rule: driver returns an error, counted as such.
	if _, err := src.admin.Submit("docs", "PutDoc", []byte("bl-77"), []byte("doc")); err != nil {
		t.Fatalf("PutDoc: %v", err)
	}
	if _, err := src.admin.Submit(
		"cmdac", "SetNetworkConfig", req.cfg.Marshal()); err != nil {
		t.Fatalf("SetNetworkConfig: %v", err)
	}
	hub.Attach("stl", src.relay)
	reg.Register("tradelens", "stl")
	dest := New("we-trade", reg, hub)
	resp, err := dest.Query(context.Background(), newQuery(t, req))
	if err == nil && resp.Error == "" {
		t.Fatal("denied query succeeded")
	}
	stats := src.relay.Stats()
	if stats.ErrorsReturned == 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestPingBypassesRateLimit(t *testing.T) {
	hub := NewHub()
	reg := NewStaticRegistry()
	limiter := NewRateLimiter(1000, 1)
	fixed := time.Unix(3000, 0)
	limiter.now = func() time.Time { return fixed }
	r := New("net", reg, hub, WithRateLimit(limiter))
	hub.Attach("addr", r)
	probe := New("probe", reg, hub)
	// Liveness probes are not subject to the query limiter.
	for i := 0; i < 5; i++ {
		if err := probe.Ping(context.Background(), "addr"); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
	var _ = wire.MsgPing
}
