package relay

import (
	"testing"
	"time"
)

// TestSnapshotStampsBothCooldownEncodings: a published health record
// carries the cooldown both absolute and relative, like envelope deadlines.
func TestSnapshotStampsBothCooldownEncodings(t *testing.T) {
	clock := &fakeClock{t: time.Unix(5000, 0)}
	h := newHealthTracker(clock.Now, 2, 10*time.Second)
	h.reportFailure("addr")
	h.reportFailure("addr") // opens the breaker for 10s
	rec, ok := h.snapshot()["addr"]
	if !ok {
		t.Fatal("no record for addr")
	}
	if rec.OpenUntilUnixNano == 0 {
		t.Fatal("absolute cooldown expiry not stamped")
	}
	if rec.CooldownRemainingNanos != int64(10*time.Second) {
		t.Fatalf("CooldownRemainingNanos = %s, want 10s", time.Duration(rec.CooldownRemainingNanos))
	}
}

// TestSeedUsesRelativeCooldown: a record carrying only the relative
// encoding (or one whose absolute encoding is wildly skewed) still demotes
// the address — for the remaining cooldown, on the reader's clock.
func TestSeedUsesRelativeCooldown(t *testing.T) {
	clock := &fakeClock{t: time.Unix(9000, 0)}
	h := newHealthTracker(clock.Now, defaultBreakerThreshold, defaultBreakerCooldown)
	h.seed(map[string]SharedHealth{
		"addr-rel": {ConsecFailures: 5, CooldownRemainingNanos: int64(8 * time.Second)},
	})
	if !h.circuitOpen("addr-rel") {
		t.Fatal("relative-only cooldown did not open the breaker")
	}
	clock.Advance(9 * time.Second)
	if h.circuitOpen("addr-rel") {
		t.Fatal("breaker still open past the relative cooldown")
	}
}

// TestSeedTakesLaxerCooldownInterpretation: when the publisher's clock runs
// far ahead, the absolute expiry would demote the address for an hour; the
// relative encoding bounds the demotion at the true remaining cooldown. The
// laxer (earlier-expiry) interpretation wins, exactly as receivers treat
// TimeoutNanos versus DeadlineUnixNano — erring toward *less* punishment.
func TestSeedTakesLaxerCooldownInterpretation(t *testing.T) {
	clock := &fakeClock{t: time.Unix(9000, 0)}
	h := newHealthTracker(clock.Now, defaultBreakerThreshold, defaultBreakerCooldown)
	h.seed(map[string]SharedHealth{
		"addr-skew": {
			ConsecFailures:         5,
			OpenUntilUnixNano:      clock.Now().Add(time.Hour).UnixNano(), // skewed publisher clock
			CooldownRemainingNanos: int64(5 * time.Second),
		},
	})
	if !h.circuitOpen("addr-skew") {
		t.Fatal("breaker not seeded open")
	}
	clock.Advance(6 * time.Second)
	if h.circuitOpen("addr-skew") {
		t.Fatal("skewed absolute expiry out-demoted the relative cooldown")
	}
	// And symmetrically: an absolute expiry *earlier* than the relative one
	// (stale record, synced clocks) also wins, so staleness cannot extend a
	// demotion either.
	h2 := newHealthTracker(clock.Now, defaultBreakerThreshold, defaultBreakerCooldown)
	h2.seed(map[string]SharedHealth{
		"addr-stale": {
			ConsecFailures:         5,
			OpenUntilUnixNano:      clock.Now().Add(2 * time.Second).UnixNano(),
			CooldownRemainingNanos: int64(10 * time.Second),
		},
	})
	clock.Advance(3 * time.Second)
	if h2.circuitOpen("addr-stale") {
		t.Fatal("stale record's remaining cooldown outlived its absolute expiry")
	}
}
