//go:build !unix

package relay

import "os"

// Non-unix platforms fall back to in-process serialization only: the
// registry file stays torn-read-safe (atomic rename) and writers within one
// process stay serialized by the FileRegistry mutex, but separate processes
// sharing a deploy dir can lose concurrent read-modify-write cycles. Run
// one relayd per deploy dir on such platforms.
func lockFile(*os.File) error   { return nil }
func unlockFile(*os.File) error { return nil }

// FlockSupported reports whether this platform provides real cross-process
// advisory locking for the registry files.
const FlockSupported = false
