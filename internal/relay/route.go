package relay

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/msp"
)

// DefaultMaxHops bounds a multi-hop walk when neither the origin's route
// table nor the envelope stamps an explicit TTL: at most this many
// relay-to-relay transport legs. Four legs cover a three-intermediate
// chain, deeper than any consortium topology the surveys describe.
const DefaultMaxHops = 4

// RouteTable holds a relay's static multi-hop routes: for each target
// network it cannot reach directly, the ordered list of via networks whose
// relays can carry the request closer. Resolution order at send time is
// always direct-first — the table is only consulted when discovery does
// not know the target — and within the table, vias are tried in the order
// configured. The zero table (or an empty one) routes nothing; a relay
// with forwarding enabled and an empty table still forwards to targets its
// own discovery resolves directly.
type RouteTable struct {
	mu      sync.RWMutex
	routes  map[string][]string
	maxHops uint64
}

// NewRouteTable returns an empty route table.
func NewRouteTable() *RouteTable {
	return &RouteTable{routes: make(map[string][]string)}
}

// Set replaces the via list for a target network. An empty via list
// removes the entry.
func (t *RouteTable) Set(target string, vias ...string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(vias) == 0 {
		delete(t.routes, target)
		return
	}
	t.routes[target] = append([]string(nil), vias...)
}

// NextHops returns the configured via networks for a target, in
// preference order, nil when the table has no entry.
func (t *RouteTable) NextHops(target string) []string {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]string(nil), t.routes[target]...)
}

// SetMaxHops overrides the hop TTL the origin stamps on routed envelopes.
// Zero keeps DefaultMaxHops.
func (t *RouteTable) SetMaxHops(n uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.maxHops = n
}

// MaxHops returns the effective hop TTL for envelopes routed by this
// table.
func (t *RouteTable) MaxHops() uint64 {
	if t == nil {
		return DefaultMaxHops
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.maxHops == 0 {
		return DefaultMaxHops
	}
	return t.maxHops
}

// Entries returns a sorted copy of the table for display (`netadmin route
// list`).
func (t *RouteTable) Entries() []RouteEntry {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]RouteEntry, 0, len(t.routes))
	for target, vias := range t.routes {
		out = append(out, RouteEntry{Target: target, Vias: append([]string(nil), vias...)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Target < out[j].Target })
	return out
}

// RouteEntry is one displayable route: a target and its ordered vias.
type RouteEntry struct {
	Target string   `json:"target"`
	Vias   []string `json:"vias"`
}

// ParseRoute parses the "target=via1,via2" form used by relayd's -route
// flag.
func ParseRoute(spec string) (target string, vias []string, err error) {
	target, viaList, ok := strings.Cut(spec, "=")
	target = strings.TrimSpace(target)
	if !ok || target == "" {
		return "", nil, fmt.Errorf("relay: route %q: want target=via1,via2", spec)
	}
	for _, via := range strings.Split(viaList, ",") {
		if via = strings.TrimSpace(via); via != "" {
			vias = append(vias, via)
		}
	}
	if len(vias) == 0 {
		return "", nil, fmt.Errorf("relay: route %q: no via networks", spec)
	}
	return target, vias, nil
}

// EnableForwarding turns this relay into a forwarding hop: requests
// targeting networks it has no driver for are relayed toward the target —
// directly when its own discovery resolves the target, else via the route
// table — and every response it carries back is extended with a hop pin
// signed by id. The identity is mandatory: an unpinned forwarder would
// produce paths the origin cannot authenticate.
func (r *Relay) EnableForwarding(routes *RouteTable, id *msp.Identity) {
	if routes == nil {
		routes = NewRouteTable()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.routes = routes
	r.forwardID = id
}

// WithRoutes configures the client-facing side only: Query and Invoke
// fall back to the table's via networks when discovery cannot resolve a
// target directly. Unlike EnableForwarding it does not make the relay
// serve forwarded traffic for others.
func WithRoutes(routes *RouteTable) Option {
	return func(r *Relay) { r.routes = routes }
}

// SetRoutes installs (or replaces) the client-side route table after
// construction — the post-hoc form of WithRoutes, for relays built by
// code that does not thread relay options through (scenario builders).
func (r *Relay) SetRoutes(routes *RouteTable) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.routes = routes
}

// routeTable returns the configured table, possibly nil.
func (r *Relay) routeTable() *RouteTable {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.routes
}

// forwarderIdentity returns the signing identity when forwarding is
// enabled, nil otherwise.
func (r *Relay) forwarderIdentity() *msp.Identity {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.forwardID
}
