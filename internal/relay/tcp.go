package relay

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// TCPTransport sends envelopes over TCP using the wire framing, one
// connection per request. This stands in for the paper's gRPC channel; the
// request/response semantics are identical.
type TCPTransport struct {
	// DialTimeout bounds connection establishment. Zero means 5s.
	DialTimeout time.Duration
	// IOTimeout bounds each request round-trip. Zero means 30s.
	IOTimeout time.Duration
}

var _ Transport = (*TCPTransport)(nil)

// Send implements Transport.
func (t *TCPTransport) Send(addr string, env *wire.Envelope) (*wire.Envelope, error) {
	dialTimeout := t.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 5 * time.Second
	}
	ioTimeout := t.IOTimeout
	if ioTimeout <= 0 {
		ioTimeout = 30 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(ioTimeout)); err != nil {
		return nil, fmt.Errorf("relay: set deadline: %w", err)
	}
	if err := wire.WriteFrame(conn, env.Marshal()); err != nil {
		return nil, fmt.Errorf("relay: send to %s: %w", addr, err)
	}
	frame, err := wire.ReadFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("relay: reply from %s: %w", addr, err)
	}
	reply, err := wire.UnmarshalEnvelope(frame)
	if err != nil {
		return nil, fmt.Errorf("relay: reply from %s: %w", addr, err)
	}
	return reply, nil
}

// TCPServer accepts relay connections and dispatches envelopes to a Relay.
type TCPServer struct {
	relay    *Relay
	listener net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	done   chan struct{}
}

// NewTCPServer starts serving on the given address ("host:port", ":0" for
// an ephemeral port). The returned server is already accepting.
func NewTCPServer(r *Relay, addr string) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("relay: listen %s: %w", addr, err)
	}
	s := &TCPServer{
		relay:    r,
		listener: ln,
		conns:    make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *TCPServer) Addr() string { return s.listener.Addr().String() }

func (s *TCPServer) acceptLoop() {
	defer close(s.done)
	var handlers sync.WaitGroup
	defer handlers.Wait()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		handlers.Add(1)
		go func() {
			defer handlers.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		frame, err := wire.ReadFrame(conn)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return
			}
			return
		}
		env, err := wire.UnmarshalEnvelope(frame)
		var reply *wire.Envelope
		if err != nil {
			reply = errEnvelope("", fmt.Sprintf("malformed envelope: %v", err))
		} else {
			reply = s.relay.HandleEnvelope(env)
		}
		if err := wire.WriteFrame(conn, reply.Marshal()); err != nil {
			return
		}
	}
}

// Close stops accepting, closes open connections and waits for handler
// goroutines to exit.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	s.closed = true
	err := s.listener.Close()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	<-s.done
	return err
}
