package relay

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// TCPTransport sends envelopes over TCP using the wire framing, one
// connection per request. This stands in for the paper's gRPC channel; the
// request/response semantics are identical.
type TCPTransport struct {
	// DialTimeout bounds connection establishment. Zero means 5s. The
	// context's deadline applies on top when sooner.
	DialTimeout time.Duration
	// IOTimeout bounds each request round-trip. Zero means 30s. The
	// context's deadline applies on top when sooner.
	IOTimeout time.Duration
}

var _ Transport = (*TCPTransport)(nil)

// ioDeadline returns the connection deadline for a round-trip: the sooner
// of now+ioTimeout and the context's own deadline.
func ioDeadline(ctx context.Context, ioTimeout time.Duration) time.Time {
	deadline := time.Now().Add(ioTimeout)
	if ctxDeadline, ok := ctx.Deadline(); ok && ctxDeadline.Before(deadline) {
		deadline = ctxDeadline
	}
	return deadline
}

// watchCancel interrupts blocked connection I/O when ctx is cancelled by
// forcing the deadline into the past. The returned stop func must be called
// once the round-trip completes; it blocks until the watcher has exited, so
// the watcher can never touch the connection afterwards (a stale async set
// would poison a connection already returned to a pool).
func watchCancel(ctx context.Context, conn net.Conn) (stop func()) {
	if ctx.Done() == nil {
		return func() {}
	}
	finished := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ctx.Done():
			select {
			case <-finished:
				// Round-trip already complete; leave the conn alone.
			default:
				conn.SetDeadline(time.Unix(1, 0)) // unblock pending reads/writes
			}
		case <-finished:
		}
	}()
	return func() {
		close(finished)
		<-done
	}
}

// Send implements Transport.
func (t *TCPTransport) Send(ctx context.Context, addr string, env *wire.Envelope) (*wire.Envelope, error) {
	dialTimeout := t.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 5 * time.Second
	}
	ioTimeout := t.IOTimeout
	if ioTimeout <= 0 {
		ioTimeout = 30 * time.Second
	}
	dialer := &net.Dialer{Timeout: dialTimeout}
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %w", ErrUnreachable, addr, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(ioDeadline(ctx, ioTimeout)); err != nil {
		return nil, fmt.Errorf("relay: set deadline: %w", err)
	}
	// Started after SetDeadline: a cancellation landing between the two
	// would otherwise have its forced past-deadline overwritten. A watcher
	// started on an already-cancelled context fires immediately.
	stop := watchCancel(ctx, conn)
	defer stop()
	if err := wire.WriteFrame(conn, env.Marshal()); err != nil {
		return nil, fmt.Errorf("relay: send to %s: %w", addr, wrapCtxErr(ctx, err))
	}
	frame, err := wire.ReadFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("relay: reply from %s: %w", addr, wrapCtxErr(ctx, err))
	}
	reply, err := wire.UnmarshalEnvelope(frame)
	if err != nil {
		return nil, fmt.Errorf("relay: reply from %s: %w", addr, err)
	}
	return reply, nil
}

// wrapCtxErr substitutes the context's error for an I/O timeout caused by
// cancellation or deadline expiry, so callers can match context.Canceled
// and context.DeadlineExceeded with errors.Is. The explicit deadline check
// covers the race where the connection deadline (derived from the context)
// fires a moment before the context's own timer.
func wrapCtxErr(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	if deadline, ok := ctx.Deadline(); ok && !time.Now().Before(deadline) {
		return context.DeadlineExceeded
	}
	return err
}

// TCPServer accepts relay connections and dispatches envelopes to a Relay.
type TCPServer struct {
	relay    *Relay
	listener net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	done   chan struct{}
}

// NewTCPServer starts serving on the given address ("host:port", ":0" for
// an ephemeral port). The returned server is already accepting.
func NewTCPServer(r *Relay, addr string) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("relay: listen %s: %w", addr, err)
	}
	s := &TCPServer{
		relay:    r,
		listener: ln,
		conns:    make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *TCPServer) Addr() string { return s.listener.Addr().String() }

func (s *TCPServer) acceptLoop() {
	defer close(s.done)
	var handlers sync.WaitGroup
	defer handlers.Wait()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		handlers.Add(1)
		go func() {
			defer handlers.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		frame, err := wire.ReadFrame(conn)
		if err != nil {
			return // clean EOF and read/framing errors alike drop the connection
		}
		env, err := wire.UnmarshalEnvelope(frame)
		var reply *wire.Envelope
		if err != nil {
			reply = errEnvelope("", fmt.Sprintf("malformed envelope: %v", err))
		} else {
			// The requester's remaining budget arrives in the envelope's
			// DeadlineUnixNano; HandleEnvelope narrows this context by it.
			reply = s.relay.HandleEnvelope(context.Background(), env)
		}
		if err := wire.WriteFrame(conn, reply.Marshal()); err != nil {
			return
		}
	}
}

// Close stops accepting, closes open connections and waits for handler
// goroutines to exit.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	s.closed = true
	err := s.listener.Close()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	<-s.done
	return err
}
