package relay

import (
	"fmt"

	"repro/internal/wire"
)

// TxDriver is implemented by drivers whose platform supports cross-network
// transaction submission — the extension §5 of the paper describes: "the
// query protocol can be easily extended to enable cross-network chaincode
// invocations", reusing the relay, system contracts and client support.
type TxDriver interface {
	// Invoke submits a transaction on the local network on behalf of an
	// authorized foreign requester and returns the committed response with
	// proof, exactly as Query does for reads.
	Invoke(q *wire.Query) (*wire.QueryResponse, error)
}

// Invoke is the client-facing entry point for cross-network transactions:
// it mirrors Query but asks the source network to execute and commit a
// state change. The same discovery, failover and proof machinery apply.
func (r *Relay) Invoke(q *wire.Query) (*wire.QueryResponse, error) {
	if q.TargetNetwork == "" {
		return nil, fmt.Errorf("%w: invoke without target network", ErrBadEnvelope)
	}
	if q.RequestID == "" {
		reqID, err := newRequestID()
		if err != nil {
			return nil, err
		}
		q.RequestID = reqID
	}
	if q.RequestingNetwork == "" {
		q.RequestingNetwork = r.localNetwork
	}
	if d, ok := r.driverFor(q.TargetNetwork); ok {
		return invokeOn(d, q)
	}
	addrs, err := r.discovery.Resolve(q.TargetNetwork)
	if err != nil {
		return nil, err
	}
	env := &wire.Envelope{
		Version:   wire.ProtocolVersion,
		Type:      wire.MsgInvoke,
		RequestID: q.RequestID,
		Payload:   q.Marshal(),
	}
	var lastErr error
	for _, addr := range addrs {
		reply, err := r.transport.Send(addr, env)
		if err != nil {
			lastErr = err
			continue
		}
		return parseQueryReply(reply)
	}
	return nil, fmt.Errorf("%w for %s: %v", ErrAllRelaysFailed, q.TargetNetwork, lastErr)
}

// handleInvoke serves an incoming cross-network transaction request.
func (r *Relay) handleInvoke(env *wire.Envelope) *wire.Envelope {
	q, err := wire.UnmarshalQuery(env.Payload)
	if err != nil {
		return errEnvelope(env.RequestID, fmt.Sprintf("malformed invoke: %v", err))
	}
	if err := r.checkLimit(q.RequestingNetwork); err != nil {
		return errEnvelope(env.RequestID, err.Error())
	}
	d, ok := r.driverFor(q.TargetNetwork)
	if !ok {
		return errEnvelope(env.RequestID, fmt.Sprintf("network %q not served by this relay", q.TargetNetwork))
	}
	r.countInvoke()
	resp, err := invokeOn(d, q)
	if err != nil {
		r.countError()
		resp = &wire.QueryResponse{RequestID: q.RequestID, Error: err.Error()}
	}
	if resp.RequestID == "" {
		resp.RequestID = q.RequestID
	}
	return &wire.Envelope{
		Version:   wire.ProtocolVersion,
		Type:      wire.MsgQueryResponse,
		RequestID: env.RequestID,
		Payload:   resp.Marshal(),
	}
}

func invokeOn(d Driver, q *wire.Query) (*wire.QueryResponse, error) {
	td, ok := d.(TxDriver)
	if !ok {
		return nil, fmt.Errorf("relay: network %q does not support cross-network transactions", q.TargetNetwork)
	}
	return td.Invoke(q)
}
