package relay

import (
	"context"
	"fmt"

	"repro/internal/cryptoutil"
	"repro/internal/wire"
)

// TxDriver is implemented by drivers whose platform supports cross-network
// transaction submission — the extension §5 of the paper describes: "the
// query protocol can be easily extended to enable cross-network chaincode
// invocations", reusing the relay, system contracts and client support.
type TxDriver interface {
	// Invoke submits a transaction on the local network on behalf of an
	// authorized foreign requester and returns the committed response with
	// proof, exactly as Query does for reads. ctx carries the requester's
	// remaining time budget.
	Invoke(ctx context.Context, q *wire.Query) (*wire.QueryResponse, error)
}

// Invoke is the client-facing entry point for cross-network transactions:
// it mirrors Query but asks the source network to execute and commit a
// state change. Discovery and proof machinery are shared with Query; the
// caller's struct is never modified. Because a transaction is not
// idempotent, the envelope is delivered at most once: hedging never
// applies, and failover moves to the next relay address only while the
// connection was provably never established (sendAtMostOnce). As a second
// guard, the source relay deduplicates invokes by request ID (see
// handleInvoke), so a retried request that reaches a relay which already
// committed replays the original response instead of re-executing. That
// cache protects the pooled transport's same-address stale-connection
// retry, and lets an application retry safely by setting the same
// q.RequestID explicitly (a fresh ID is generated only when it is empty).
func (r *Relay) Invoke(ctx context.Context, q *wire.Query) (*wire.QueryResponse, error) {
	q, err := r.prepareRequest(q)
	if err != nil {
		return nil, err
	}
	if d, ok := r.driverFor(q.TargetNetwork); ok {
		resp, err := invokeOn(ctx, d, q)
		if err != nil {
			return nil, err
		}
		return ensureRequestID(resp, q), nil
	}
	addrs, err := r.resolveOrdered(q.TargetNetwork)
	if err != nil {
		return nil, err
	}
	env := &wire.Envelope{
		Version:   wire.ProtocolVersion,
		Type:      wire.MsgInvoke,
		RequestID: q.RequestID,
		Payload:   q.Marshal(),
	}
	reply, err := r.sendAtMostOnce(ctx, q.TargetNetwork, addrs, env)
	if err != nil {
		return nil, err
	}
	return parseQueryReply(reply)
}

// invokeDedupLimit bounds the source-side cache of served invoke request
// IDs. 1024 recent responses comfortably covers any realistic failover
// window while keeping memory bounded.
const invokeDedupLimit = 1024

// invokeDedupMaxEntryBytes caps the payload size the cache will retain.
// Outsized responses are remembered by ID only (nil payload): a resend is
// still refused instead of re-executed, it just cannot replay the original
// response.
const invokeDedupMaxEntryBytes = 1 << 20 // 1 MiB

// invokeDedupMaxTotalBytes bounds the cache's total resident payload
// bytes across all entries.
const invokeDedupMaxTotalBytes = 64 << 20 // 64 MiB

// handleInvoke serves an incoming cross-network transaction request.
// Served responses are remembered by request ID: a transport-level resend
// (address failover or a connection that died after delivery) replays the
// committed outcome instead of executing the transaction a second time.
func (r *Relay) handleInvoke(ctx context.Context, env *wire.Envelope) *wire.Envelope {
	q, err := wire.UnmarshalQuery(env.Payload)
	if err != nil {
		return errEnvelope(env.RequestID, fmt.Sprintf("malformed invoke: %v", err))
	}
	dedupKey := ""
	if q.RequestID != "" {
		// The key binds the requester's network and certificate to the
		// request ID so one requester cannot occupy or poison another's
		// ID (request IDs travel in plaintext).
		dedupKey = invokeDedupKey(q)
		if reply, done := r.invokeDedup(ctx, env.RequestID, q.RequestID, dedupKey); done {
			return reply
		}
		defer r.invokeRelease(dedupKey)
	}
	if err := r.checkLimit(q.RequestingNetwork); err != nil {
		return errEnvelope(env.RequestID, err.Error())
	}
	d, ok := r.driverFor(q.TargetNetwork)
	if !ok {
		return errEnvelope(env.RequestID, fmt.Sprintf("network %q not served by this relay", q.TargetNetwork))
	}
	r.countInvoke()
	resp, err := invokeOn(ctx, d, q)
	if err != nil {
		r.countError()
		resp = &wire.QueryResponse{RequestID: q.RequestID, Error: err.Error()}
	}
	payload := ensureRequestID(resp, q).Marshal()
	if dedupKey != "" && err == nil {
		// Only committed outcomes are replayable; a failed attempt may
		// legitimately be retried by the client with the same ID.
		r.invokeRemember(dedupKey, payload)
	}
	return &wire.Envelope{
		Version:   wire.ProtocolVersion,
		Type:      wire.MsgQueryResponse,
		RequestID: env.RequestID,
		Payload:   payload,
	}
}

// invokeDedup decides whether this request may execute. done=true means
// the returned envelope is the final answer: a replay of the committed
// response, or an error for a duplicate of an attempt that is still in
// flight or whose response was not retained. done=false means the caller
// is the single executor for this request ID and must invokeRelease when
// finished.
func (r *Relay) invokeDedup(ctx context.Context, envelopeID, requestID, key string) (*wire.Envelope, bool) {
	r.invokeMu.Lock()
	if payload, ok := r.invokeServed[key]; ok {
		r.invokeMu.Unlock()
		return r.replayEnvelope(envelopeID, requestID, payload), true
	}
	if r.invokePending == nil {
		r.invokePending = make(map[string]chan struct{})
	}
	inflight, ok := r.invokePending[key]
	if !ok {
		// First sighting: this caller executes.
		r.invokePending[key] = make(chan struct{})
		r.invokeMu.Unlock()
		return nil, false
	}
	r.invokeMu.Unlock()
	// A duplicate of an attempt still executing (e.g. a transport retry
	// after a slow commit outran the I/O timeout): wait for the original
	// rather than executing the transaction a second time.
	select {
	case <-inflight:
		r.invokeMu.Lock()
		payload, ok := r.invokeServed[key]
		r.invokeMu.Unlock()
		if !ok {
			// The original attempt failed; the duplicate reports that
			// rather than re-executing with unknowable partial effects.
			return errEnvelope(envelopeID, fmt.Sprintf("duplicate invoke %s: original attempt failed", requestID)), true
		}
		return r.replayEnvelope(envelopeID, requestID, payload), true
	case <-ctx.Done():
		return errEnvelope(envelopeID, fmt.Sprintf("duplicate invoke %s: %v", requestID, ctx.Err())), true
	}
}

// replayEnvelope wraps a cached (or dropped-as-oversized) response for a
// duplicate invoke.
func (r *Relay) replayEnvelope(envelopeID, requestID string, payload []byte) *wire.Envelope {
	if payload == nil {
		// Committed, but the response was too large to retain.
		return errEnvelope(envelopeID,
			fmt.Sprintf("duplicate invoke %s: already committed, original response not retained for replay", requestID))
	}
	return &wire.Envelope{
		Version:   wire.ProtocolVersion,
		Type:      wire.MsgQueryResponse,
		RequestID: envelopeID,
		Payload:   payload,
	}
}

// invokeRelease marks the request's execution finished, waking duplicates
// blocked in invokeDedup.
func (r *Relay) invokeRelease(key string) {
	r.invokeMu.Lock()
	defer r.invokeMu.Unlock()
	if ch, ok := r.invokePending[key]; ok {
		close(ch)
		delete(r.invokePending, key)
	}
}

// invokeDedupKey builds the cache key for an invoke: the requester's
// network and certificate digest bound to the request ID, so the ID space
// is private to each requester.
func invokeDedupKey(q *wire.Query) string {
	certDigest := cryptoutil.Digest(q.RequesterCertPEM)
	return q.RequestingNetwork + "\x00" + string(certDigest) + "\x00" + q.RequestID
}

// invokeRemember records a served invoke response under its dedup key,
// evicting the oldest entries FIFO once either the entry count or the
// total byte budget is exceeded.
func (r *Relay) invokeRemember(key string, payload []byte) {
	if len(payload) > invokeDedupMaxEntryBytes {
		payload = nil // remember the ID, drop the body (see invokeDedupMaxEntryBytes)
	}
	r.invokeMu.Lock()
	defer r.invokeMu.Unlock()
	if r.invokeServed == nil {
		r.invokeServed = make(map[string][]byte)
	}
	if _, ok := r.invokeServed[key]; ok {
		return
	}
	r.invokeServed[key] = payload
	r.invokeOrder = append(r.invokeOrder, key)
	r.invokeBytes += len(payload)
	for len(r.invokeOrder)-r.invokeHead > invokeDedupLimit || r.invokeBytes > invokeDedupMaxTotalBytes {
		if r.invokeHead >= len(r.invokeOrder) {
			break
		}
		oldest := r.invokeOrder[r.invokeHead]
		r.invokeBytes -= len(r.invokeServed[oldest])
		delete(r.invokeServed, oldest)
		r.invokeHead++
	}
	// Compact only once the dead prefix dominates, keeping eviction
	// amortized O(1) instead of copying the order slice on every insert.
	if r.invokeHead > len(r.invokeOrder)/2 {
		r.invokeOrder = append([]string(nil), r.invokeOrder[r.invokeHead:]...)
		r.invokeHead = 0
	}
}

func invokeOn(ctx context.Context, d Driver, q *wire.Query) (*wire.QueryResponse, error) {
	td, ok := d.(TxDriver)
	if !ok {
		return nil, fmt.Errorf("relay: network %q does not support cross-network transactions", q.TargetNetwork)
	}
	return td.Invoke(ctx, q)
}
