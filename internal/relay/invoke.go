package relay

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cryptoutil"
	"repro/internal/wire"
)

// servedInvoke is one remembered invoke outcome: the response payload
// (nil when the body was too large to retain) plus a fingerprint of the
// invocation it answered, so a requester reusing its idempotency key for a
// different request is refused instead of handed a cached response whose
// proof binds the original question.
type servedInvoke struct {
	payload     []byte
	fingerprint string
}

// invokeFingerprint digests the parts of a query that define what was
// asked: the target network and ledger (the dedup key does not include
// them, and one relay may front several co-located networks — a cached
// response for network A must never answer an invoke aimed at network B),
// then contract, function and arguments. Encoded with field framing so no
// concatenation of values is ambiguous.
func invokeFingerprint(q *wire.Query) string {
	e := wire.NewEncoder(64)
	e.String(1, q.TargetNetwork)
	e.String(2, q.Ledger)
	e.String(3, q.Contract)
	e.String(4, q.Function)
	for _, a := range q.Args {
		e.Message(5, a)
	}
	return string(cryptoutil.Digest(e.Bytes()))
}

// TxDriver is implemented by drivers whose platform supports cross-network
// transaction submission — the extension §5 of the paper describes: "the
// query protocol can be easily extended to enable cross-network chaincode
// invocations", reusing the relay, system contracts and client support.
type TxDriver interface {
	// Invoke submits a transaction on the local network on behalf of an
	// authorized foreign requester and returns the committed response with
	// proof, exactly as Query does for reads. ctx carries the requester's
	// remaining time budget.
	Invoke(ctx context.Context, q *wire.Query) (*wire.QueryResponse, error)
}

// Invoke is the client-facing entry point for cross-network transactions:
// it mirrors Query but asks the source network to execute and commit a
// state change. Discovery and proof machinery are shared with Query; the
// caller's struct is never modified. Because a transaction is not
// idempotent, the envelope is delivered at most once: hedging never
// applies, and failover moves to the next relay address only while the
// connection was provably never established (sendAtMostOnce). As a second
// guard, the source relay deduplicates invokes by request ID (see
// handleInvoke), so a retried request that reaches a relay which already
// committed replays the original response instead of re-executing. That
// cache protects the pooled transport's same-address stale-connection
// retry, and lets an application retry safely by setting the same
// q.RequestID explicitly (a fresh ID is generated only when it is empty).
func (r *Relay) Invoke(ctx context.Context, q *wire.Query) (*wire.QueryResponse, error) {
	q, err := r.prepareRequest(q)
	if err != nil {
		return nil, err
	}
	if d, ok := r.driverFor(q.TargetNetwork); ok {
		resp, err := invokeOn(ctx, d, q)
		if err != nil {
			return nil, err
		}
		return ensureRequestID(resp, q), nil
	}
	addrs, err := r.resolveOrdered(q.TargetNetwork)
	if err != nil {
		// Discovery does not know the target: fall back to the static
		// route table and launch a multi-hop walk through a via network.
		return r.invokeViaRoute(ctx, q, err)
	}
	env := &wire.Envelope{
		Version:   wire.ProtocolVersion,
		Type:      wire.MsgInvoke,
		RequestID: q.RequestID,
		Payload:   q.Marshal(),
	}
	reply, err := r.sendAtMostOnce(ctx, q.TargetNetwork, addrs, env)
	if err != nil {
		return nil, err
	}
	return parseQueryReply(reply)
}

// invokeDedupLimit bounds the source-side cache of served invoke request
// IDs. 1024 recent responses comfortably covers any realistic failover
// window while keeping memory bounded.
const invokeDedupLimit = 1024

// invokeDedupMaxEntryBytes caps the payload size the cache will retain.
// Outsized responses are remembered by ID only (nil payload): a resend is
// still refused instead of re-executed, it just cannot replay the original
// response.
const invokeDedupMaxEntryBytes = 1 << 20 // 1 MiB

// invokeDedupMaxTotalBytes bounds the cache's total resident payload
// bytes across all entries.
const invokeDedupMaxTotalBytes = 64 << 20 // 64 MiB

// ErrRequestMismatch is returned (wrapped) when a duplicate invoke's
// contract, function or arguments differ from what the ledger committed
// under its idempotency key: the committed outcome cannot be replayed for
// a different question, and the request is refused rather than executed.
var ErrRequestMismatch = errors.New("relay: request does not match the invoke committed under its idempotency key")

// LedgerReplayNotifier is implemented by InvokeReplayer drivers that can
// also serve replays internally — after their own submission loses a
// commit race — and report those through a callback so the relay's
// InvokeReplays counter covers both replay paths. RegisterDriver wires the
// callback automatically.
type LedgerReplayNotifier interface {
	OnLedgerReplay(func())
}

// InvokeReplayer is implemented by drivers that can recover the committed
// outcome of an interop request from the ledger itself. It is the
// cross-relay complement of the relay's in-memory replay cache: the cache
// only remembers invokes this relay process served, while the ledger holds
// every commit regardless of which redundant relay submitted it. found
// reports whether a valid commit for the request exists; found=false with a
// nil error simply means the caller is the first executor. An error
// wrapping ErrRequestMismatch means a commit exists but describes a
// different invocation — a terminal refusal, not a lookup failure.
type InvokeReplayer interface {
	ReplayInvoke(ctx context.Context, q *wire.Query) (resp *wire.QueryResponse, found bool, err error)
}

// handleInvoke serves an incoming cross-network transaction request.
// Served responses are remembered by request ID: a transport-level resend
// (address failover or a connection that died after delivery) replays the
// committed outcome instead of executing the transaction a second time.
// Before executing, the ledger is consulted for a commit a sibling relay
// made (InvokeReplayer), so exactly-once holds across redundant relay
// processes, not just within this one's memory.
func (r *Relay) handleInvoke(ctx context.Context, env *wire.Envelope) *wire.Envelope {
	q, err := wire.UnmarshalQuery(env.Payload)
	if err != nil {
		return errEnvelope(env.RequestID, fmt.Sprintf("malformed invoke: %v", err))
	}
	dedupKey, fingerprint := "", ""
	if q.RequestID != "" {
		// The key binds the requester's network and certificate to the
		// request ID so one requester cannot occupy or poison another's
		// ID (request IDs travel in plaintext).
		dedupKey = invokeDedupKey(q)
		fingerprint = invokeFingerprint(q)
		reply, release, done, droppedBody := r.invokeClaim(ctx, env.RequestID, q.RequestID, dedupKey, fingerprint)
		if done {
			if droppedBody {
				// The request committed here but its response was too large
				// to retain in memory. The ledger still has it: recover and
				// re-attest rather than refusing a replay a cold sibling
				// relay would happily serve.
				if d, ok := r.driverFor(q.TargetNetwork); ok {
					if lr, ok := d.(InvokeReplayer); ok {
						if resp, found, err := lr.ReplayInvoke(ctx, q); err == nil && found {
							r.countInvokeReplay()
							return &wire.Envelope{
								Version:   wire.ProtocolVersion,
								Type:      wire.MsgQueryResponse,
								RequestID: env.RequestID,
								Payload:   ensureRequestID(resp, q).Marshal(),
							}
						}
					}
				}
			}
			// A replayed or refused duplicate never owns the pending entry,
			// so there is nothing to release here: releasing would wake (and
			// orphan) duplicates of a still-running original.
			return reply
		}
		defer release()
	}
	if err := r.checkLimit(q.RequestingNetwork); err != nil {
		return errEnvelope(env.RequestID, err.Error())
	}
	d, ok := r.driverFor(q.TargetNetwork)
	if !ok {
		if r.forwarderIdentity() != nil {
			// The dedup claim made above stays in force: duplicates of a
			// forwarded invoke wait here at the hub, and the forwarded
			// outcome is remembered under the same key.
			return r.forwardInvoke(ctx, env, q, dedupKey, fingerprint)
		}
		return errEnvelope(env.RequestID, fmt.Sprintf("network %q not served by this relay", q.TargetNetwork))
	}
	if dedupKey != "" {
		// Ledger-level dedup: a redundant relay may already have committed
		// this request. Replaying from the ledger keeps the exactly-once
		// guarantee anchored where TrustCross argues it must be — at the
		// ledger — instead of in one gateway process's memory.
		if lr, ok := d.(InvokeReplayer); ok {
			resp, found, err := lr.ReplayInvoke(ctx, q)
			switch {
			case err == nil && found:
				r.countInvokeReplay()
				payload := ensureRequestID(resp, q).Marshal()
				r.invokeRemember(dedupKey, payload, fingerprint)
				return &wire.Envelope{
					Version:   wire.ProtocolVersion,
					Type:      wire.MsgQueryResponse,
					RequestID: env.RequestID,
					Payload:   payload,
				}
			case errors.Is(err, ErrRequestMismatch):
				// Terminal: a commit exists but for a different question.
				// Executing anyway would burn an endorse/order/commit cycle
				// on a transaction the committer is guaranteed to invalidate.
				r.countError()
				return errEnvelope(env.RequestID, err.Error())
			}
			// Any other lookup error falls through to execution: the commit
			// path performs the same duplicate check authoritatively.
		}
	}
	r.countInvoke()
	resp, err := invokeOn(ctx, d, q)
	if err != nil {
		r.countError()
		resp = &wire.QueryResponse{RequestID: q.RequestID, Error: err.Error()}
	}
	payload := ensureRequestID(resp, q).Marshal()
	if dedupKey != "" && err == nil {
		// Only committed outcomes are replayable; a failed attempt may
		// legitimately be retried by the client with the same ID.
		r.invokeRemember(dedupKey, payload, fingerprint)
	}
	return &wire.Envelope{
		Version:   wire.ProtocolVersion,
		Type:      wire.MsgQueryResponse,
		RequestID: env.RequestID,
		Payload:   payload,
	}
}

// invokeClaim decides whether this request may execute. done=true means
// the returned envelope is the final answer: a replay of the committed
// response, or an error for a duplicate of an attempt that is still in
// flight or whose response was not retained; release is nil because the
// caller owns nothing. droppedBody marks the one refusal the caller may
// still improve on: the request committed here but its oversized response
// body was not retained, so a ledger-capable driver can recover it.
// done=false means the caller is the single executor for this request ID
// and must call release (exactly once, normally deferred) when finished.
// Binding the release to the claim — rather than exposing a key-addressed
// release any path could call — is what makes a double release or a
// replay-path release structurally impossible.
func (r *Relay) invokeClaim(ctx context.Context, envelopeID, requestID, key, fingerprint string) (reply *wire.Envelope, release func(), done bool, droppedBody bool) {
	r.invokeMu.Lock()
	if served, ok := r.invokeServed[key]; ok {
		r.invokeMu.Unlock()
		dropped := served.payload == nil && served.fingerprint == fingerprint
		return r.replayServed(envelopeID, requestID, served, fingerprint), nil, true, dropped
	}
	if r.invokePending == nil {
		r.invokePending = make(map[string]chan struct{})
	}
	inflight, ok := r.invokePending[key]
	if !ok {
		// First sighting: this caller executes.
		r.invokePending[key] = make(chan struct{})
		r.invokeMu.Unlock()
		return nil, func() { r.invokeRelease(key) }, false, false
	}
	r.invokeMu.Unlock()
	// A duplicate of an attempt still executing (e.g. a transport retry
	// after a slow commit outran the I/O timeout): wait for the original
	// rather than executing the transaction a second time.
	select {
	case <-inflight:
		r.invokeMu.Lock()
		served, ok := r.invokeServed[key]
		r.invokeMu.Unlock()
		if !ok {
			// The original attempt failed; the duplicate reports that
			// rather than re-executing with unknowable partial effects.
			return errEnvelope(envelopeID, fmt.Sprintf("duplicate invoke %s: original attempt failed", requestID)), nil, true, false
		}
		dropped := served.payload == nil && served.fingerprint == fingerprint
		return r.replayServed(envelopeID, requestID, served, fingerprint), nil, true, dropped
	case <-ctx.Done():
		return errEnvelope(envelopeID, fmt.Sprintf("duplicate invoke %s: %v", requestID, ctx.Err())), nil, true, false
	}
}

// replayServed wraps a cached (or dropped-as-oversized) response for a
// duplicate invoke — after checking that the duplicate asks the question
// the cached response answered. The in-memory path must refuse a reused
// idempotency key exactly like the ledger path (matchesCommitted) does, or
// the outcome of key misuse would depend on which relay the request lands
// on.
func (r *Relay) replayServed(envelopeID, requestID string, served servedInvoke, fingerprint string) *wire.Envelope {
	if served.fingerprint != fingerprint {
		return errEnvelope(envelopeID,
			fmt.Sprintf("%v: request %s was already committed with different arguments", ErrRequestMismatch, requestID))
	}
	if served.payload == nil {
		// Committed, but the response was too large to retain.
		return errEnvelope(envelopeID,
			fmt.Sprintf("duplicate invoke %s: already committed, original response not retained for replay", requestID))
	}
	return &wire.Envelope{
		Version:   wire.ProtocolVersion,
		Type:      wire.MsgQueryResponse,
		RequestID: envelopeID,
		Payload:   served.payload,
	}
}

// invokeRelease marks the request's execution finished, waking duplicates
// blocked in invokeClaim. It is only reachable through the release closure
// invokeClaim hands the executor, so no other path can close a pending
// entry it does not own; releasing an already-released key is a no-op.
func (r *Relay) invokeRelease(key string) {
	r.invokeMu.Lock()
	defer r.invokeMu.Unlock()
	if ch, ok := r.invokePending[key]; ok {
		close(ch)
		delete(r.invokePending, key)
	}
}

// invokeDedupKey builds the cache key for an invoke: the requester's
// network and certificate digest bound to the request ID, so the ID space
// is private to each requester. It is the same derivation the ledger
// indexes committed invokes under (wire.Query.InteropKey), so the
// in-memory cache and the ledger replay index agree on request identity.
func invokeDedupKey(q *wire.Query) string {
	return q.InteropKey()
}

// invokeRemember records a served invoke response under its dedup key,
// evicting the oldest entries FIFO once either the entry count or the
// total byte budget is exceeded.
func (r *Relay) invokeRemember(key string, payload []byte, fingerprint string) {
	if len(payload) > invokeDedupMaxEntryBytes {
		payload = nil // remember the ID, drop the body (see invokeDedupMaxEntryBytes)
	}
	r.invokeMu.Lock()
	defer r.invokeMu.Unlock()
	if r.invokeServed == nil {
		r.invokeServed = make(map[string]servedInvoke)
	}
	if _, ok := r.invokeServed[key]; ok {
		return
	}
	r.invokeServed[key] = servedInvoke{payload: payload, fingerprint: fingerprint}
	r.invokeOrder = append(r.invokeOrder, key)
	r.invokeBytes += len(payload)
	for len(r.invokeOrder)-r.invokeHead > invokeDedupLimit || r.invokeBytes > invokeDedupMaxTotalBytes {
		if r.invokeHead >= len(r.invokeOrder) {
			break
		}
		oldest := r.invokeOrder[r.invokeHead]
		r.invokeBytes -= len(r.invokeServed[oldest].payload)
		delete(r.invokeServed, oldest)
		r.invokeHead++
	}
	// Compact only once the dead prefix dominates, keeping eviction
	// amortized O(1) instead of copying the order slice on every insert.
	if r.invokeHead > len(r.invokeOrder)/2 {
		r.invokeOrder = append([]string(nil), r.invokeOrder[r.invokeHead:]...)
		r.invokeHead = 0
	}
}

func invokeOn(ctx context.Context, d Driver, q *wire.Query) (*wire.QueryResponse, error) {
	td, ok := d.(TxDriver)
	if !ok {
		return nil, fmt.Errorf("relay: network %q does not support cross-network transactions", q.TargetNetwork)
	}
	return td.Invoke(ctx, q)
}
