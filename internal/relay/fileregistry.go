package relay

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// FileRegistry is a Discovery backed by a JSON file mapping network IDs to
// relay address lists — the paper's "local file-based registry was plugged
// into the SWT Relay" (§4.3). The file is re-read on every Resolve so
// operators can edit it while relays run.
type FileRegistry struct {
	path string
	mu   sync.Mutex
}

// NewFileRegistry returns a registry over the given JSON file. The file
// holds an object of the form {"tradelens": ["127.0.0.1:9080"], ...}.
func NewFileRegistry(path string) *FileRegistry {
	return &FileRegistry{path: path}
}

// Resolve implements Discovery.
func (r *FileRegistry) Resolve(networkID string) ([]string, error) {
	entries, err := r.load()
	if err != nil {
		return nil, err
	}
	addrs := entries[networkID]
	if len(addrs) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNetwork, networkID)
	}
	return addrs, nil
}

// Register appends addresses for a network and persists the file.
func (r *FileRegistry) Register(networkID string, addrs ...string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	entries, err := r.loadLocked()
	if err != nil {
		return err
	}
	entries[networkID] = append(entries[networkID], addrs...)
	return r.storeLocked(entries)
}

// Networks lists the registered network IDs.
func (r *FileRegistry) Networks() ([]string, error) {
	entries, err := r.load()
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(entries))
	for id := range entries {
		out = append(out, id)
	}
	return out, nil
}

func (r *FileRegistry) load() (map[string][]string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.loadLocked()
}

func (r *FileRegistry) loadLocked() (map[string][]string, error) {
	data, err := os.ReadFile(r.path)
	if os.IsNotExist(err) {
		return map[string][]string{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("relay: read registry %s: %w", r.path, err)
	}
	entries := make(map[string][]string)
	if len(data) > 0 {
		if err := json.Unmarshal(data, &entries); err != nil {
			return nil, fmt.Errorf("relay: parse registry %s: %w", r.path, err)
		}
	}
	return entries, nil
}

func (r *FileRegistry) storeLocked(entries map[string][]string) error {
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return fmt.Errorf("relay: encode registry: %w", err)
	}
	if err := os.WriteFile(r.path, data, 0o644); err != nil {
		return fmt.Errorf("relay: write registry %s: %w", r.path, err)
	}
	return nil
}
