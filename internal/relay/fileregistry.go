package relay

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// FileRegistry is a Discovery backed by a JSON file mapping network IDs to
// relay address lists — the paper's "local file-based registry was plugged
// into the SWT Relay" (§4.3). The file is re-read on every Resolve so
// operators can edit it while relays run, and every store is an atomic
// write-to-temp-and-rename so a concurrent reader never observes torn JSON.
//
// Membership is lease-based (LeaseRegistrar): each entry may carry a lease
// expiry; expired entries stop resolving and Prune removes them from the
// file. Registration deduplicates by address, so a relay daemon restarting
// against the same deployment directory refreshes its entry instead of
// appending a duplicate.
//
// The file accepts two entry encodings per network and they may be mixed:
// a bare string ("127.0.0.1:9080") is a permanent, operator-managed entry,
// while an object ({"addr": "...", "expires_unix_nano": ...}) carries a
// lease (and optionally a shared health record). Permanent entries are
// written back as bare strings to keep hand-edited files stable.
//
// Cross-process safety: the atomic rename only guarantees readers never see
// torn JSON; two relayd processes sharing a deploy dir still race their
// read-modify-write cycles, and the last store would silently drop the
// other's registration. Every mutating operation therefore serializes
// through an exclusive flock on a sidecar lock file (<path>.lock) held
// across the whole load-modify-store cycle. Read-only operations skip the
// lock: rename atomicity already gives them a consistent snapshot.
type FileRegistry struct {
	path string
	mu   sync.Mutex
	now  func() time.Time // overridable in tests
}

var (
	_ Registry        = (*FileRegistry)(nil)
	_ LeaseRegistrar  = (*FileRegistry)(nil)
	_ HealthPublisher = (*FileRegistry)(nil)
	_ HealthSource    = (*FileRegistry)(nil)
)

// RegistryEntry is the exported view of one registered address, used by
// inspection tooling (netadmin registry list).
type RegistryEntry struct {
	Addr string `json:"addr"`
	// ExpiresUnixNano is the lease expiry in nanoseconds since the Unix
	// epoch, zero for permanent entries.
	ExpiresUnixNano int64 `json:"expires_unix_nano,omitempty"`
	// Health is the freshest published health observation for the address,
	// nil when no relay has published one.
	Health *SharedHealth `json:"health,omitempty"`
}

// NewFileRegistry returns a registry over the given JSON file. The file
// holds an object of the form {"tradelens": ["127.0.0.1:9080"], ...}; see
// the type comment for the lease-entry encoding.
func NewFileRegistry(path string) *FileRegistry {
	return &FileRegistry{path: path, now: time.Now}
}

// Resolve implements Discovery, returning addresses whose lease has not
// lapsed.
func (r *FileRegistry) Resolve(networkID string) ([]string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	entries, err := r.loadLocked()
	if err != nil {
		return nil, err
	}
	addrs := liveAddrs(entries[networkID], r.now())
	if len(addrs) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNetwork, networkID)
	}
	return addrs, nil
}

// update runs one read-modify-write cycle over the decoded registry,
// serialized against other relayd processes by an exclusive flock on the
// sidecar lock file and against other goroutines of this process by the
// instance mutex. The file is persisted only when fn reports a change, so
// no-op cycles (an absent deregistration, a prune with nothing expired)
// don't churn the file.
func (r *FileRegistry) update(fn func(entries map[string][]leaseEntry) (changed bool, err error)) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	unlock, err := r.flock()
	if err != nil {
		return err
	}
	defer unlock()
	entries, err := r.loadLocked()
	if err != nil {
		return err
	}
	changed, err := fn(entries)
	if err != nil || !changed {
		return err
	}
	return r.storeLocked(entries)
}

// flock takes the cross-process exclusive lock, returning its release. The
// lock lives on a sidecar file because the registry file itself is replaced
// by rename on every store — a lock on the old inode would not exclude a
// writer that opened the new one.
func (r *FileRegistry) flock() (func(), error) {
	return acquireFlock(r.path+".lock", r.path)
}

// acquireFlock takes a blocking exclusive flock on the sidecar lock file,
// returning its release; target only labels errors. Shared by the flat-file
// and journal registries.
func acquireFlock(lockPath, target string) (func(), error) {
	f, err := os.OpenFile(lockPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("relay: open registry lock %s: %w", lockPath, err)
	}
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("relay: lock registry %s: %w", target, err)
	}
	return func() {
		_ = unlockFile(f)
		f.Close()
	}, nil
}

// Register adds permanent addresses for a network, deduplicating by
// address, and persists the file.
func (r *FileRegistry) Register(networkID string, addrs ...string) error {
	return r.update(func(entries map[string][]leaseEntry) (bool, error) {
		changed := false
		for _, addr := range addrs {
			var c bool
			entries[networkID], c = upsertLease(entries[networkID], addr, time.Time{})
			changed = changed || c
		}
		return changed, nil
	})
}

// RegisterLease implements LeaseRegistrar: the address is registered (or
// its existing entry's lease refreshed) with a lease of ttl; zero ttl
// means permanent.
func (r *FileRegistry) RegisterLease(networkID, addr string, ttl time.Duration) error {
	return r.update(func(entries map[string][]leaseEntry) (bool, error) {
		var expires time.Time
		if ttl > 0 {
			expires = r.now().Add(ttl)
		}
		var changed bool
		entries[networkID], changed = upsertLease(entries[networkID], addr, expires)
		return changed, nil
	})
}

// Deregister implements LeaseRegistrar, removing one address for a network
// and persisting the file. Removing an absent address is a no-op.
func (r *FileRegistry) Deregister(networkID, addr string) error {
	return r.update(func(entries map[string][]leaseEntry) (bool, error) {
		list, removed := removeLease(entries[networkID], addr)
		if !removed {
			return false, nil
		}
		if len(list) == 0 {
			delete(entries, networkID)
		} else {
			entries[networkID] = list
		}
		return true, nil
	})
}

// Prune removes expired lease entries (and networks left empty) from the
// file, returning how many entries were dropped.
func (r *FileRegistry) Prune() (int, error) {
	pruned := 0
	err := r.update(func(entries map[string][]leaseEntry) (bool, error) {
		now := r.now()
		for id, list := range entries {
			kept := list[:0]
			for _, e := range list {
				if e.live(now) {
					kept = append(kept, e)
				} else {
					pruned++
				}
			}
			if len(kept) == 0 {
				delete(entries, id)
			} else {
				entries[id] = kept
			}
		}
		return pruned > 0, nil
	})
	if err != nil {
		return 0, err
	}
	return pruned, nil
}

// PublishHealth implements HealthPublisher: each record is attached to the
// registered entries matching its address (in whatever networks they appear
// under), keeping the fresher of the existing and published observations.
// Addresses with no entry are dropped — health annotates membership.
func (r *FileRegistry) PublishHealth(byAddr map[string]SharedHealth) error {
	if len(byAddr) == 0 {
		return nil
	}
	return r.update(func(entries map[string][]leaseEntry) (bool, error) {
		changed := false
		for _, list := range entries {
			if applyHealth(list, byAddr) {
				changed = true
			}
		}
		return changed, nil
	})
}

// HealthRecords implements HealthSource, returning the freshest published
// health record per registered address.
func (r *FileRegistry) HealthRecords() (map[string]SharedHealth, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	entries, err := r.loadLocked()
	if err != nil {
		return nil, err
	}
	return collectHealth(entries), nil
}

// Networks lists the registered network IDs, including networks whose
// entries have all expired (Prune removes those).
func (r *FileRegistry) Networks() ([]string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	entries, err := r.loadLocked()
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(entries))
	for id := range entries {
		out = append(out, id)
	}
	return out, nil
}

// Entries returns every registered entry with its lease expiry, for
// inspection tooling.
func (r *FileRegistry) Entries() (map[string][]RegistryEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	entries, err := r.loadLocked()
	if err != nil {
		return nil, err
	}
	return exportEntries(entries), nil
}

// exportEntries converts the decoded lease lists into the exported
// inspection form, shared by the flat-file and journal registries.
func exportEntries(entries map[string][]leaseEntry) map[string][]RegistryEntry {
	out := make(map[string][]RegistryEntry, len(entries))
	for id, list := range entries {
		exported := make([]RegistryEntry, len(list))
		for i, e := range list {
			exported[i] = RegistryEntry{Addr: e.addr}
			if !e.expires.IsZero() {
				exported[i].ExpiresUnixNano = e.expires.UnixNano()
			}
			if e.health != nil {
				h := *e.health
				exported[i].Health = &h
			}
		}
		out[id] = exported
	}
	return out
}

func (r *FileRegistry) loadLocked() (map[string][]leaseEntry, error) {
	entries, err := loadRegistryFile(r.path)
	if os.IsNotExist(err) {
		return map[string][]leaseEntry{}, nil
	}
	return entries, err
}

// loadRegistryFile decodes a flat registry.json into lease lists. Unlike
// FileRegistry.loadLocked it surfaces a missing file as os.IsNotExist so
// the journal's legacy-base probe can distinguish "no flat file" from a
// real error.
func loadRegistryFile(path string) (map[string][]leaseEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, err
		}
		return nil, fmt.Errorf("relay: read registry %s: %w", path, err)
	}
	raw := make(map[string][]json.RawMessage)
	if len(data) > 0 {
		if err := json.Unmarshal(data, &raw); err != nil {
			return nil, fmt.Errorf("relay: parse registry %s: %w", path, err)
		}
	}
	entries := make(map[string][]leaseEntry, len(raw))
	for id, list := range raw {
		decoded := make([]leaseEntry, 0, len(list))
		for _, item := range list {
			entry, err := decodeRegistryEntry(item)
			if err != nil {
				return nil, fmt.Errorf("relay: parse registry %s, network %q: %w", path, id, err)
			}
			decoded, _ = upsertLease(decoded, entry.addr, entry.expires)
			if entry.health != nil {
				applyHealth(decoded, map[string]SharedHealth{entry.addr: *entry.health})
			}
		}
		entries[id] = decoded
	}
	return entries, nil
}

// decodeRegistryEntry accepts both entry encodings: a bare address string
// (permanent) or a lease object.
func decodeRegistryEntry(raw json.RawMessage) (leaseEntry, error) {
	var addr string
	if err := json.Unmarshal(raw, &addr); err == nil {
		return leaseEntry{addr: addr}, nil
	}
	var obj RegistryEntry
	if err := json.Unmarshal(raw, &obj); err != nil {
		return leaseEntry{}, err
	}
	if obj.Addr == "" {
		return leaseEntry{}, fmt.Errorf("entry without addr")
	}
	entry := leaseEntry{addr: obj.Addr}
	if obj.ExpiresUnixNano != 0 {
		entry.expires = time.Unix(0, obj.ExpiresUnixNano)
	}
	if obj.Health != nil {
		h := *obj.Health
		entry.health = &h
	}
	return entry, nil
}

// storeLocked persists the registry atomically: the encoded file is written
// to a temp file in the same directory and renamed over the target, so a
// reader racing a writer sees either the old or the new contents, never a
// torn prefix.
func (r *FileRegistry) storeLocked(entries map[string][]leaseEntry) error {
	encoded := make(map[string][]json.RawMessage, len(entries))
	for id, list := range entries {
		items := make([]json.RawMessage, 0, len(list))
		for _, e := range list {
			var item any = e.addr // permanent entries without health stay bare strings
			if !e.expires.IsZero() || e.health != nil {
				obj := RegistryEntry{Addr: e.addr, Health: e.health}
				if !e.expires.IsZero() {
					obj.ExpiresUnixNano = e.expires.UnixNano()
				}
				item = obj
			}
			raw, err := json.Marshal(item)
			if err != nil {
				return fmt.Errorf("relay: encode registry: %w", err)
			}
			items = append(items, raw)
		}
		encoded[id] = items
	}
	data, err := json.MarshalIndent(encoded, "", "  ")
	if err != nil {
		return fmt.Errorf("relay: encode registry: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(r.path), filepath.Base(r.path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("relay: write registry %s: %w", r.path, err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Chmod(tmp.Name(), 0o644)
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), r.path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("relay: write registry %s: %w", r.path, werr)
	}
	return nil
}
