package relay

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/wire"
)

// Default circuit-breaker policy. Three consecutive transport failures mark
// an address suspect enough to stop preferring it; the cooldown is long
// relative to a round-trip but short enough that a relay restart is noticed
// promptly.
const (
	defaultBreakerThreshold = 3
	defaultBreakerCooldown  = 10 * time.Second
)

// ewmaAlpha is the smoothing factor for the per-address latency estimate:
// each new sample contributes 30%, so the estimate follows sustained shifts
// within a few round-trips without whipsawing on one outlier.
const ewmaAlpha = 0.3

// failurePenaltyNanos is the health-score cost of one consecutive transport
// failure. It is deliberately enormous compared to any plausible EWMA
// latency so that failure count strictly dominates the ordering and latency
// only breaks ties among addresses in the same failure class.
const failurePenaltyNanos = float64(30 * time.Second)

// addrHealth is the tracked state of one relay address.
type addrHealth struct {
	// consecFailures counts transport failures since the last success.
	consecFailures int
	// ewmaLatency is the exponentially weighted moving average round-trip
	// latency in nanoseconds, zero until the first success.
	ewmaLatency float64
	// openUntil is the circuit-breaker cooldown expiry: while it is in the
	// future the address is demoted to last resort. Zero when closed.
	openUntil time.Time
}

// healthTracker scores relay addresses from observed transport outcomes —
// the discovery layer's memory of which relays are alive and fast. Every
// send through sendSequential, sendHedged, sendAtMostOnce, Ping and event
// push feeds it; Resolve results are reordered through it so fan-out tries
// live, fast relays first (the paper's §5 relay-redundancy mitigation made
// load-bearing: redundancy only helps if dead relays stop being preferred).
type healthTracker struct {
	mu        sync.Mutex
	now       func() time.Time
	threshold int           // consecutive failures that open the breaker
	cooldown  time.Duration // how long an open breaker demotes the address
	byAddr    map[string]*addrHealth
}

func newHealthTracker(now func() time.Time, threshold int, cooldown time.Duration) *healthTracker {
	if threshold <= 0 {
		threshold = defaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	return &healthTracker{
		now:       now,
		threshold: threshold,
		cooldown:  cooldown,
		byAddr:    make(map[string]*addrHealth),
	}
}

// reportSuccess records a completed round-trip: the failure streak resets,
// the breaker closes, and the latency sample folds into the EWMA.
func (h *healthTracker) reportSuccess(addr string, rtt time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.stateLocked(addr)
	st.consecFailures = 0
	st.openUntil = time.Time{}
	sample := float64(rtt)
	if sample < 0 {
		sample = 0
	}
	if st.ewmaLatency == 0 {
		st.ewmaLatency = sample
	} else {
		st.ewmaLatency = ewmaAlpha*sample + (1-ewmaAlpha)*st.ewmaLatency
	}
}

// reportFailure records a transport failure. Crossing the threshold opens
// the circuit breaker for the cooldown; further failures while open (the
// address is still probed as a last resort) re-arm it.
func (h *healthTracker) reportFailure(addr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.stateLocked(addr)
	st.consecFailures++
	if st.consecFailures >= h.threshold {
		st.openUntil = h.now().Add(h.cooldown)
	}
}

func (h *healthTracker) stateLocked(addr string) *addrHealth {
	st, ok := h.byAddr[addr]
	if !ok {
		st = &addrHealth{}
		h.byAddr[addr] = st
	}
	return st
}

// score is the sort key for a single address: consecutive failures weighted
// far above latency, then the EWMA round-trip. Never-observed addresses
// score zero and therefore sort ahead of everything with history, which
// gives each fresh address exactly one exploratory attempt to earn a real
// latency estimate.
func (st *addrHealth) score() float64 {
	return float64(st.consecFailures)*failurePenaltyNanos + st.ewmaLatency
}

// circuitOpen reports whether the breaker currently demotes the address.
func (h *healthTracker) circuitOpen(addr string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.byAddr[addr]
	return ok && st.openUntil.After(h.now())
}

// order returns addrs reordered by health: addresses whose breaker is
// closed come first, sorted by score (stable, so registry preference order
// breaks ties); circuit-open addresses are demoted to the tail, soonest
// cooldown expiry first, and open reports how many were demoted. The tail
// is kept rather than dropped: when every healthier alternative has failed
// a request, probing an open address is strictly better than failing — so
// "skip" means the open address is never attempted while any healthier
// relay answers, not that it is unreachable by policy.
func (h *healthTracker) order(addrs []string) (ordered []string, open int) {
	if len(addrs) < 2 {
		return addrs, 0
	}
	h.mu.Lock()
	now := h.now()
	type ranked struct {
		addr      string
		score     float64
		openUntil time.Time // zero when the breaker is closed
	}
	rankedAddrs := make([]ranked, len(addrs))
	for i, addr := range addrs {
		entry := ranked{addr: addr}
		if st, ok := h.byAddr[addr]; ok {
			entry.score = st.score()
			if st.openUntil.After(now) {
				entry.openUntil = st.openUntil
				open++
			}
		}
		rankedAddrs[i] = entry
	}
	h.mu.Unlock()
	sort.SliceStable(rankedAddrs, func(i, j int) bool {
		oi, oj := !rankedAddrs[i].openUntil.IsZero(), !rankedAddrs[j].openUntil.IsZero()
		if oi != oj {
			return !oi // closed breakers before open ones
		}
		if oi {
			return rankedAddrs[i].openUntil.Before(rankedAddrs[j].openUntil)
		}
		return rankedAddrs[i].score < rankedAddrs[j].score
	})
	ordered = make([]string, len(addrs))
	for i, entry := range rankedAddrs {
		ordered[i] = entry.addr
	}
	if open == len(addrs) {
		// Every breaker is open: nothing is being demoted below anything
		// healthier, so don't report skips the fan-out cannot honour.
		open = 0
	}
	return ordered, open
}

// WithCircuitBreaker tunes the per-address circuit breaker: threshold
// consecutive transport failures demote an address for cooldown. Zero
// values keep the defaults (3 failures, 10s).
func WithCircuitBreaker(threshold int, cooldown time.Duration) Option {
	return func(r *Relay) {
		r.breakerThreshold = threshold
		r.breakerCooldown = cooldown
	}
}

// resolveOrdered resolves a network through discovery and reorders the
// addresses by observed health, counting demoted circuit-open addresses in
// the stats.
func (r *Relay) resolveOrdered(networkID string) ([]string, error) {
	addrs, err := r.discovery.Resolve(networkID)
	if err != nil {
		return nil, err
	}
	ordered, open := r.health.order(addrs)
	if open > 0 {
		r.countBreakerSkips(open)
	}
	return ordered, nil
}

// breakerMinBudget is the smallest remaining budget under which a
// deadline-expiry failure is still charged to the address. Below it the
// attempt never had a real chance: the budget was consumed elsewhere
// (typically by an earlier address in the same fan-out), and charging the
// victim would let one wedged relay trip its healthy standbys' breakers.
const breakerMinBudget = 5 * time.Millisecond

// observeSend performs one transport round-trip and feeds the outcome into
// the health tracker. A failure is not charged to the address when the
// send's own context was cancelled — a hedged loser cancelled because
// another attempt won, or a caller abandoning the request, says nothing
// about the address's health. Deadline expiry is charged only when the
// attempt started with a meaningful budget: an address that consumed a
// real budget without answering is indistinguishable from a wedged relay
// (what the tracker exists to notice), while one handed an already-spent
// budget is just the victim of an earlier slow address.
func (r *Relay) observeSend(ctx context.Context, addr string, env *wire.Envelope) (*wire.Envelope, error) {
	start := r.now()
	deadline, hasDeadline := ctx.Deadline()
	reply, err := r.transport.Send(ctx, addr, env)
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled):
			// Cancelled by the caller or a winning hedge: no health signal.
		case errors.Is(err, context.DeadlineExceeded) && hasDeadline && deadline.Sub(start) < breakerMinBudget:
			// Budget exhausted before this attempt began: not its fault.
		default:
			r.health.reportFailure(addr)
		}
		return nil, err
	}
	r.health.reportSuccess(addr, r.now().Sub(start))
	return reply, nil
}
