package relay

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/wire"
)

// Default circuit-breaker policy. Three consecutive transport failures mark
// an address suspect enough to stop preferring it; the cooldown is long
// relative to a round-trip but short enough that a relay restart is noticed
// promptly.
const (
	defaultBreakerThreshold = 3
	defaultBreakerCooldown  = 10 * time.Second
)

// ewmaAlpha is the smoothing factor for the per-address latency estimate:
// each new sample contributes 30%, so the estimate follows sustained shifts
// within a few round-trips without whipsawing on one outlier.
const ewmaAlpha = 0.3

// failurePenaltyNanos is the health-score cost of one consecutive transport
// failure. It is deliberately enormous compared to any plausible EWMA
// latency so that failure count strictly dominates the ordering and latency
// only breaks ties among addresses in the same failure class.
const failurePenaltyNanos = float64(30 * time.Second)

// addrHealth is the tracked state of one relay address.
type addrHealth struct {
	// consecFailures counts transport failures since the last success.
	consecFailures int
	// seededFailures is a failure count imported from a shared health
	// record. It demotes the address in score ordering exactly like local
	// failures, but is kept apart so it never feeds the breaker threshold
	// (a single local failure must not open the circuit on the strength of
	// someone else's streak) and is never republished as this relay's own
	// observation (which would ratchet counts across restarts). Any
	// first-hand outcome supersedes it.
	seededFailures int
	// ewmaLatency is the exponentially weighted moving average round-trip
	// latency in nanoseconds, zero until the first success.
	ewmaLatency float64
	// openUntil is the circuit-breaker cooldown expiry: while it is in the
	// future the address is demoted to last resort. Zero when closed.
	openUntil time.Time
	// lastObserved is when this relay last saw a first-hand transport
	// outcome for the address; zero for state that was only ever seeded
	// from shared records. Published health is stamped with it so a stale
	// verdict cannot masquerade as fresh just because it was re-published
	// recently.
	lastObserved time.Time
}

// healthTracker scores relay addresses from observed transport outcomes —
// the discovery layer's memory of which relays are alive and fast. Every
// send through sendSequential, sendHedged, sendAtMostOnce, Ping and event
// push feeds it; Resolve results are reordered through it so fan-out tries
// live, fast relays first (the paper's §5 relay-redundancy mitigation made
// load-bearing: redundancy only helps if dead relays stop being preferred).
type healthTracker struct {
	mu        sync.Mutex
	now       func() time.Time
	threshold int           // consecutive failures that open the breaker
	cooldown  time.Duration // how long an open breaker demotes the address
	byAddr    map[string]*addrHealth
}

func newHealthTracker(now func() time.Time, threshold int, cooldown time.Duration) *healthTracker {
	if threshold <= 0 {
		threshold = defaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	return &healthTracker{
		now:       now,
		threshold: threshold,
		cooldown:  cooldown,
		byAddr:    make(map[string]*addrHealth),
	}
}

// reportSuccess records a completed round-trip: the failure streak resets,
// the breaker closes, and the latency sample folds into the EWMA.
func (h *healthTracker) reportSuccess(addr string, rtt time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.stateLocked(addr)
	st.consecFailures = 0
	st.seededFailures = 0
	st.openUntil = time.Time{}
	st.lastObserved = h.now()
	sample := float64(rtt)
	if sample < 0 {
		sample = 0
	}
	if st.ewmaLatency == 0 {
		st.ewmaLatency = sample
	} else {
		st.ewmaLatency = ewmaAlpha*sample + (1-ewmaAlpha)*st.ewmaLatency
	}
}

// reportFailure records a transport failure. Crossing the threshold opens
// the circuit breaker for the cooldown; further failures while open (the
// address is still probed as a last resort) re-arm it.
func (h *healthTracker) reportFailure(addr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.stateLocked(addr)
	st.consecFailures++
	// seededFailures is deliberately kept: a local failure *confirms* the
	// shared streak, and dropping it here would improve the address's
	// resolve ranking at the exact moment the evidence got worse. Only a
	// success (which contradicts the shared record) clears it. The breaker
	// threshold still counts first-hand failures alone.
	st.lastObserved = h.now()
	if st.consecFailures >= h.threshold {
		st.openUntil = st.lastObserved.Add(h.cooldown)
	}
}

func (h *healthTracker) stateLocked(addr string) *addrHealth {
	st, ok := h.byAddr[addr]
	if !ok {
		st = &addrHealth{}
		h.byAddr[addr] = st
	}
	return st
}

// snapshot exports the tracker's first-hand per-address state as
// shareable records, each stamped with when the address was actually last
// observed — not with publish time, or a relay that stopped talking to an
// address an hour ago would keep presenting its stale verdict as fresher
// than a sibling's second-old one, and the fresher-record-wins merge would
// resolve backwards. Addresses with no first-hand observation (including
// state that was itself seeded from shared records) are omitted:
// publishing them would only echo other relays' observations around the
// fleet under new timestamps.
func (h *healthTracker) snapshot() map[string]SharedHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.now()
	out := make(map[string]SharedHealth, len(h.byAddr))
	for addr, st := range h.byAddr {
		if st.lastObserved.IsZero() {
			continue
		}
		rec := SharedHealth{
			ConsecFailures:   st.consecFailures,
			EWMALatencyNanos: int64(st.ewmaLatency),
			ObservedUnixNano: st.lastObserved.UnixNano(),
		}
		if st.openUntil.After(now) {
			// Both cooldown encodings are stamped (absolute expiry and
			// remaining-at-snapshot); readers take the laxer of the two, so
			// no clock-sync assumption survives the trip (see SharedHealth).
			rec.OpenUntilUnixNano = st.openUntil.UnixNano()
			rec.CooldownRemainingNanos = int64(st.openUntil.Sub(now))
		}
		out[addr] = rec
	}
	return out
}

// seed imports shared health records for addresses this tracker has no
// local signal on. First-hand observations always win: an address the
// tracker has already probed keeps its own state, so seeding can only fill
// blanks, never overwrite what this relay learned itself. A seeded cooldown
// already expired (under the laxer of its two encodings — see
// SharedHealth.CooldownExpiry) demotes the address only for whatever
// cooldown genuinely remains.
func (h *healthTracker) seed(records map[string]SharedHealth) {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.now()
	for addr, rec := range records {
		if _, ok := h.byAddr[addr]; ok {
			continue
		}
		st := &addrHealth{
			seededFailures: rec.ConsecFailures,
			ewmaLatency:    float64(rec.EWMALatencyNanos),
		}
		if open := rec.CooldownExpiry(now); !open.IsZero() {
			st.openUntil = open
		}
		h.byAddr[addr] = st
	}
}

// score is the sort key for a single address: consecutive failures
// (first-hand or seeded from shared records) weighted far above latency,
// then the EWMA round-trip. Never-observed addresses score zero and
// therefore sort ahead of everything with history, which gives each fresh
// address exactly one exploratory attempt to earn a real latency estimate.
func (st *addrHealth) score() float64 {
	return float64(st.consecFailures+st.seededFailures)*failurePenaltyNanos + st.ewmaLatency
}

// circuitOpen reports whether the breaker currently demotes the address.
func (h *healthTracker) circuitOpen(addr string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.byAddr[addr]
	return ok && st.openUntil.After(h.now())
}

// order returns addrs reordered by health: addresses whose breaker is
// closed come first, sorted by score (stable, so registry preference order
// breaks ties); circuit-open addresses are demoted to the tail, soonest
// cooldown expiry first, and open reports how many were demoted. The tail
// is kept rather than dropped: when every healthier alternative has failed
// a request, probing an open address is strictly better than failing — so
// "skip" means the open address is never attempted while any healthier
// relay answers, not that it is unreachable by policy.
func (h *healthTracker) order(addrs []string) (ordered []string, open int) {
	if len(addrs) < 2 {
		return addrs, 0
	}
	h.mu.Lock()
	now := h.now()
	type ranked struct {
		addr      string
		score     float64
		openUntil time.Time // zero when the breaker is closed
	}
	rankedAddrs := make([]ranked, len(addrs))
	for i, addr := range addrs {
		entry := ranked{addr: addr}
		if st, ok := h.byAddr[addr]; ok {
			entry.score = st.score()
			if st.openUntil.After(now) {
				entry.openUntil = st.openUntil
				open++
			}
		}
		rankedAddrs[i] = entry
	}
	h.mu.Unlock()
	sort.SliceStable(rankedAddrs, func(i, j int) bool {
		oi, oj := !rankedAddrs[i].openUntil.IsZero(), !rankedAddrs[j].openUntil.IsZero()
		if oi != oj {
			return !oi // closed breakers before open ones
		}
		if oi {
			return rankedAddrs[i].openUntil.Before(rankedAddrs[j].openUntil)
		}
		return rankedAddrs[i].score < rankedAddrs[j].score
	})
	ordered = make([]string, len(addrs))
	for i, entry := range rankedAddrs {
		ordered[i] = entry.addr
	}
	if open == len(addrs) {
		// Every breaker is open: nothing is being demoted below anything
		// healthier, so don't report skips the fan-out cannot honour.
		open = 0
	}
	return ordered, open
}

// WithCircuitBreaker tunes the per-address circuit breaker: threshold
// consecutive transport failures demote an address for cooldown. Zero
// values keep the defaults (3 failures, 10s).
func WithCircuitBreaker(threshold int, cooldown time.Duration) Option {
	return func(r *Relay) {
		r.breakerThreshold = threshold
		r.breakerCooldown = cooldown
	}
}

// HealthSnapshot exports this relay's current per-address health
// observations — the record AnnounceWithHealth publishes into the
// discovery registry on each lease heartbeat.
func (r *Relay) HealthSnapshot() map[string]SharedHealth {
	return r.health.snapshot()
}

// SeedHealth imports shared health records (typically read from the
// discovery registry) for addresses this relay has not observed itself. A
// freshly started relay otherwise begins with a blank tracker and must
// burn real requests rediscovering which peers are dead; seeding restores
// fleet knowledge — including circuit-open state — before the first
// resolve.
func (r *Relay) SeedHealth(records map[string]SharedHealth) {
	r.health.seed(records)
}

// SeedHealthFromRegistry seeds r's health tracker from the health records
// a discovery registry has accumulated (see AnnounceWithHealth). A
// registry without health support is a silent no-op, so callers can wire
// this unconditionally.
func SeedHealthFromRegistry(r *Relay, discovery Discovery) error {
	src, ok := discovery.(HealthSource)
	if !ok {
		return nil
	}
	records, err := src.HealthRecords()
	if err != nil {
		return err
	}
	r.SeedHealth(records)
	return nil
}

// resolveOrdered resolves a network through discovery and reorders the
// addresses by observed health, counting demoted circuit-open addresses in
// the stats.
func (r *Relay) resolveOrdered(networkID string) ([]string, error) {
	addrs, err := r.discovery.Resolve(networkID)
	if err != nil {
		return nil, err
	}
	ordered, open := r.health.order(addrs)
	if open > 0 {
		r.countBreakerSkips(open)
	}
	return ordered, nil
}

// breakerMinBudget is the smallest remaining budget under which a
// deadline-expiry failure is still charged to the address. Below it the
// attempt never had a real chance: the budget was consumed elsewhere
// (typically by an earlier address in the same fan-out), and charging the
// victim would let one wedged relay trip its healthy standbys' breakers.
const breakerMinBudget = 5 * time.Millisecond

// observeSend performs one transport round-trip and feeds the outcome into
// the health tracker. A failure is not charged to the address when the
// send's own context was cancelled — a hedged loser cancelled because
// another attempt won, or a caller abandoning the request, says nothing
// about the address's health. Deadline expiry is charged only when the
// attempt started with a meaningful budget: an address that consumed a
// real budget without answering is indistinguishable from a wedged relay
// (what the tracker exists to notice), while one handed an already-spent
// budget is just the victim of an earlier slow address.
func (r *Relay) observeSend(ctx context.Context, addr string, env *wire.Envelope) (*wire.Envelope, error) {
	start := r.now()
	deadline, hasDeadline := ctx.Deadline()
	reply, err := r.transport.Send(ctx, addr, env)
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled):
			// Cancelled by the caller or a winning hedge: no health signal.
		case errors.Is(err, context.DeadlineExceeded) && hasDeadline && deadline.Sub(start) < breakerMinBudget:
			// Budget exhausted before this attempt began: not its fault.
		default:
			r.health.reportFailure(addr)
		}
		return nil, err
	}
	r.health.reportSuccess(addr, r.now().Sub(start))
	return reply, nil
}
