package relay

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// JournalRegistry is a Discovery backed by an append-only lease journal —
// the scaling successor to FileRegistry's flat file. Where FileRegistry
// serializes every mutation through an exclusive flock held across a whole
// load-modify-store cycle (read the file, decode, mutate, rewrite,
// rename), the journal turns each RegisterLease / Deregister /
// PublishHealth into one O(1) record appended to the log under a lock held
// only for the append itself. N relayd processes heartbeating through one
// registry therefore contend on a single short write apiece instead of N
// full-file rewrites, which is what lets discovery keep up with the
// redundant-relay fleet it fronts (the same write-ahead idea Fabric uses
// for its block journal).
//
// Layout on disk, for a registry rooted at <path> (e.g. registry.jsonl):
//
//	<path>          generation-0 journal (records appended since genesis)
//	<path>.<g>      generation-g journal, g >= 1 (post-compaction)
//	<path>.gen      pointer file naming the current generation (atomic
//	                temp+rename), absent until the first compaction
//	<path>.lock     sidecar flock serializing appends and compactions
//	                across processes
//	<dir>/registry.json  optional legacy flat file, folded in as the
//	                generation-0 base snapshot (migration path)
//
// Each journal line is one self-contained JSON record: a lease grant or
// renewal (absolute expiry plus relative TTL — see leaseExpiry for how
// readers reconcile the two), a deregistration, or a shared-health
// observation. Readers keep an in-memory materialized view and tail the
// journal from their last byte offset on every read; last record wins per
// (network, address), lapsed leases are filtered at Resolve time. A torn
// final line (a writer or the machine died mid-append) is skipped, never
// fatal, and the next appender self-heals the tail by terminating the
// partial line before writing its own record.
//
// Compaction bounds the file under heartbeat churn: Compact materializes
// the current generation, writes the view as a snapshot into the next
// generation file, atomically flips the pointer, and deletes the old
// generations — except the single most-recent superseded one, kept as a
// grace copy for manual recovery. Readers that observe the pointer move re-materialize from
// the snapshot; because the pointer only flips after the snapshot is fully
// written (and writers are excluded by the flock throughout), a reader
// tailing mid-compaction sees either the complete old generation or the
// complete new one — never a partial view. relayd runs Compact on a
// background ticker (StartCompactor); netadmin exposes it as `registry
// compact`, which doubles as the explicit flat-file-to-journal migration.
//
// Cross-process caveat: on platforms without flock support (see
// flock_other.go) appends from separate processes are still each a single
// O_APPEND write, but compaction cannot safely exclude them — run the
// compactor from one process only there.
type JournalRegistry struct {
	path         string
	legacyPath   string
	compactBytes int64
	now          func() time.Time // overridable in tests

	mu   sync.Mutex // guards view, skipped, and same-process append ordering
	view journalView
	// skipped counts complete-but-undecodable journal lines tolerated while
	// tailing — the visible trace of a torn append that a later writer
	// healed over.
	skipped int
}

var (
	_ Registry        = (*JournalRegistry)(nil)
	_ LeaseRegistrar  = (*JournalRegistry)(nil)
	_ HealthPublisher = (*JournalRegistry)(nil)
	_ HealthSource    = (*JournalRegistry)(nil)
)

// journalView is the in-memory materialization of the journal: the decoded
// registry as of byte offset within generation gen.
type journalView struct {
	valid   bool
	gen     uint64
	offset  int64
	entries map[string][]leaseEntry
	health  map[string]SharedHealth
}

// journalRecord is one line of the journal. Keys are kept short because a
// heartbeating fleet writes one of these per renewal.
type journalRecord struct {
	// Op is the record kind: "lease" (grant or renewal), "dereg", "health".
	Op   string `json:"op"`
	Net  string `json:"net,omitempty"`
	Addr string `json:"addr,omitempty"`
	// Exp is the absolute lease expiry (writer's clock, ns since epoch);
	// zero with a zero TTL means a permanent entry.
	Exp int64 `json:"exp,omitempty"`
	// TTL is the lease duration at write time (ns, relative — the
	// TimeoutNanos-style second encoding; readers take the earlier of the
	// two interpretations, see leaseExpiry).
	TTL int64 `json:"ttl,omitempty"`
	// TS stamps the writer's clock at append, for forensics.
	TS     int64         `json:"ts,omitempty"`
	Health *SharedHealth `json:"health,omitempty"`
}

const (
	opLease  = "lease"
	opDereg  = "dereg"
	opHealth = "health"
)

// defaultCompactBytes is the journal size past which CompactIfOversized
// (and so the background compactor) rolls the generation.
const defaultCompactBytes = 1 << 20

// JournalOption configures a JournalRegistry.
type JournalOption func(*JournalRegistry)

// WithCompactBytes sets the journal size threshold CompactIfOversized
// compacts past (default 1 MiB).
func WithCompactBytes(n int64) JournalOption {
	return func(r *JournalRegistry) { r.compactBytes = n }
}

// NewJournalRegistry returns a journal-backed registry rooted at path
// (conventionally <deploy-dir>/registry.jsonl). A legacy flat registry.json
// next to it is understood as the generation-0 base snapshot, so pointing
// the journal at an existing FileRegistry deployment migrates it in place.
func NewJournalRegistry(path string, opts ...JournalOption) *JournalRegistry {
	legacy := strings.TrimSuffix(path, filepath.Ext(path)) + ".json"
	if legacy == path {
		legacy = path + ".legacy.json"
	}
	r := &JournalRegistry{
		path:         path,
		legacyPath:   legacy,
		compactBytes: defaultCompactBytes,
		now:          time.Now,
	}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// JournalPresent reports whether journal artifacts exist for the given
// journal path — the detection tooling uses to decide between the journal
// and a legacy flat file.
func JournalPresent(path string) bool {
	for _, p := range []string{path, path + ".gen"} {
		if _, err := os.Stat(p); err == nil {
			return true
		}
	}
	matches, _ := filepath.Glob(path + ".[0-9]*")
	for _, m := range matches {
		if _, err := strconv.ParseUint(strings.TrimPrefix(m, path+"."), 10, 64); err == nil {
			return true
		}
	}
	return false
}

// DetectRegistry opens whichever durable registry backs a deployment
// directory: the journal when its artifacts exist, otherwise the legacy
// flat file. Tooling that only inspects or resolves uses this so it works
// against both formats without a flag.
func DetectRegistry(journalPath, flatPath string, opts ...JournalOption) Registry {
	if JournalPresent(journalPath) {
		return NewJournalRegistry(journalPath, opts...)
	}
	return NewFileRegistry(flatPath)
}

func (r *JournalRegistry) pointerPath() string { return r.path + ".gen" }
func (r *JournalRegistry) lockPath() string    { return r.path + ".lock" }

// genPath names generation g's journal file: the root path itself for
// generation 0, a numeric suffix afterwards.
func (r *JournalRegistry) genPath(g uint64) string {
	if g == 0 {
		return r.path
	}
	return fmt.Sprintf("%s.%d", r.path, g)
}

// readGen reads the current generation from the pointer file; an absent
// pointer means generation 0 (no compaction has happened yet).
func (r *JournalRegistry) readGen() (uint64, error) {
	data, err := os.ReadFile(r.pointerPath())
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("relay: read journal generation %s: %w", r.pointerPath(), err)
	}
	gen, err := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("relay: parse journal generation %s: %w", r.pointerPath(), err)
	}
	return gen, nil
}

// withFlock runs fn under the cross-process exclusive lock with the
// current generation resolved. The lock is what keeps the generation
// stable for the duration of fn — an appender cannot race a compactor's
// pointer flip.
func (r *JournalRegistry) withFlock(fn func(gen uint64) error) error {
	unlock, err := acquireFlock(r.lockPath(), r.path)
	if err != nil {
		return err
	}
	defer unlock()
	gen, err := r.readGen()
	if err != nil {
		return err
	}
	return fn(gen)
}

// appendRecords appends records as journal lines — the O(1) write path.
// The flock is held only for the append itself, never across a
// load-modify-store cycle.
func (r *JournalRegistry) appendRecords(recs ...journalRecord) error {
	if len(recs) == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.withFlock(func(gen uint64) error {
		return r.appendToGen(gen, recs)
	})
}

// appendToGen writes records to generation gen's journal; the caller holds
// the flock. If a previous writer died mid-append the file ends without a
// newline; terminating that partial line first (self-healing the tail)
// turns it into one complete-but-undecodable line readers skip, instead of
// letting our record fuse onto it and corrupt both.
func (r *JournalRegistry) appendToGen(gen uint64, recs []journalRecord) error {
	f, err := os.OpenFile(r.genPath(gen), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("relay: open journal %s: %w", r.genPath(gen), err)
	}
	defer f.Close()
	if st, err := f.Stat(); err == nil && st.Size() > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], st.Size()-1); err == nil && last[0] != '\n' {
			if _, err := f.Write([]byte("\n")); err != nil {
				return fmt.Errorf("relay: heal journal tail %s: %w", r.genPath(gen), err)
			}
		}
	}
	var buf bytes.Buffer
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("relay: encode journal record: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("relay: append journal %s: %w", r.genPath(gen), err)
	}
	return nil
}

// Register adds permanent addresses for a network (one lease record each,
// no expiry).
func (r *JournalRegistry) Register(networkID string, addrs ...string) error {
	recs := make([]journalRecord, 0, len(addrs))
	for _, addr := range addrs {
		recs = append(recs, journalRecord{Op: opLease, Net: networkID, Addr: addr, TS: r.now().UnixNano()})
	}
	return r.appendRecords(recs...)
}

// RegisterLease implements LeaseRegistrar: one appended record carrying
// the lease both as an absolute expiry and as the relative TTL, so readers
// on skewed clocks can take the earlier interpretation.
func (r *JournalRegistry) RegisterLease(networkID, addr string, ttl time.Duration) error {
	now := r.now()
	rec := journalRecord{Op: opLease, Net: networkID, Addr: addr, TS: now.UnixNano()}
	if ttl > 0 {
		rec.Exp = now.Add(ttl).UnixNano()
		rec.TTL = int64(ttl)
	}
	return r.appendRecords(rec)
}

// Deregister implements LeaseRegistrar with one appended removal record.
// Deregistering an absent address appends a harmless no-op record rather
// than paying a read to find out.
func (r *JournalRegistry) Deregister(networkID, addr string) error {
	return r.appendRecords(journalRecord{Op: opDereg, Net: networkID, Addr: addr, TS: r.now().UnixNano()})
}

// PublishHealth implements HealthPublisher. Health annotates membership,
// so records for unregistered addresses are dropped (best-effort at write
// time, authoritatively by readers, who only surface health attached to a
// live view entry), and records no fresher than what the view already
// holds are skipped to keep heartbeat churn down.
func (r *JournalRegistry) PublishHealth(byAddr map[string]SharedHealth) error {
	if len(byAddr) == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.refreshLocked(); err != nil {
		return err
	}
	known := collectHealth(r.view.entries)
	addrs := make([]string, 0, len(byAddr))
	for addr := range byAddr {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	recs := make([]journalRecord, 0, len(addrs))
	for _, addr := range addrs {
		if !r.viewHasAddr(addr) {
			continue
		}
		rec := byAddr[addr]
		if cur, ok := known[addr]; ok && (cur == rec || rec.ObservedUnixNano < cur.ObservedUnixNano) {
			continue
		}
		copied := rec
		recs = append(recs, journalRecord{Op: opHealth, Addr: addr, TS: r.now().UnixNano(), Health: &copied})
	}
	if len(recs) == 0 {
		return nil
	}
	return r.withFlock(func(gen uint64) error {
		return r.appendToGen(gen, recs)
	})
}

func (r *JournalRegistry) viewHasAddr(addr string) bool {
	for _, list := range r.view.entries {
		for _, e := range list {
			if e.addr == addr {
				return true
			}
		}
	}
	return false
}

// Resolve implements Discovery from the materialized view, filtering
// lapsed leases at read time.
func (r *JournalRegistry) Resolve(networkID string) ([]string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.refreshLocked(); err != nil {
		return nil, err
	}
	addrs := liveAddrs(r.view.entries[networkID], r.now())
	if len(addrs) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNetwork, networkID)
	}
	return addrs, nil
}

// Networks lists registered network IDs, including networks whose entries
// have all lapsed (Prune removes those).
func (r *JournalRegistry) Networks() ([]string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.refreshLocked(); err != nil {
		return nil, err
	}
	out := make([]string, 0, len(r.view.entries))
	for id := range r.view.entries {
		out = append(out, id)
	}
	return out, nil
}

// Entries returns every entry with its lease state for inspection tooling,
// lapsed leases included.
func (r *JournalRegistry) Entries() (map[string][]RegistryEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.refreshLocked(); err != nil {
		return nil, err
	}
	return exportEntries(r.view.entries), nil
}

// HealthRecords implements HealthSource: the freshest record per address
// that still has a registry entry.
func (r *JournalRegistry) HealthRecords() (map[string]SharedHealth, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.refreshLocked(); err != nil {
		return nil, err
	}
	return collectHealth(r.view.entries), nil
}

// SkippedRecords reports how many undecodable journal lines this instance
// has tolerated while tailing — nonzero after recovering a torn append.
func (r *JournalRegistry) SkippedRecords() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.skipped
}

// Prune appends deregistration records for every entry whose lease has
// lapsed, returning how many were dropped. Unlike the hot append path this
// holds the flock across its read-and-append so a renewal cannot slip
// between the lapse check and the removal record — Prune is an
// administrative operation, not a heartbeat.
func (r *JournalRegistry) Prune() (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	pruned := 0
	err := r.withFlock(func(gen uint64) error {
		if err := r.refreshLocked(); err != nil {
			return err
		}
		now := r.now()
		var recs []journalRecord
		ids := make([]string, 0, len(r.view.entries))
		for id := range r.view.entries {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			for _, e := range r.view.entries[id] {
				if !e.live(now) {
					recs = append(recs, journalRecord{Op: opDereg, Net: id, Addr: e.addr, TS: now.UnixNano()})
				}
			}
		}
		pruned = len(recs)
		if pruned == 0 {
			return nil
		}
		return r.appendToGen(gen, recs)
	})
	if err != nil {
		return 0, err
	}
	return pruned, nil
}

// Compact rolls the journal over to a fresh generation: materialize the
// current generation, write the view as a snapshot into <path>.<gen+1>,
// atomically flip the pointer file, and delete the superseded generation
// files — all but the most recent one, which is kept for a one-generation
// grace window so an operator can recover by hand if the fresh snapshot is
// lost. Writers are excluded by the flock for the duration; readers keep
// serving their materialized view and re-materialize from the snapshot
// when they observe the pointer move. Lapsed-but-unpruned entries survive
// compaction (compaction bounds the file, Prune changes membership), with
// their remaining TTL recomputed so the two lease encodings stay
// consistent for the next reader.
func (r *JournalRegistry) Compact() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.withFlock(func(gen uint64) error {
		// Full materialization of the locked generation, not a tail: the
		// snapshot must carry everything.
		r.view.valid = false
		if err := r.refreshGenLocked(gen); err != nil {
			return err
		}
		next := gen + 1
		if err := r.writeSnapshot(next); err != nil {
			return err
		}
		if err := atomicWriteFile(r.pointerPath(), []byte(strconv.FormatUint(next, 10))); err != nil {
			return fmt.Errorf("relay: flip journal generation: %w", err)
		}
		// The snapshot incorporates every superseded generation, the legacy
		// flat base included. Keep the single most-recent superseded
		// generation (the one we just materialized) as a grace copy — if the
		// fresh snapshot is lost or corrupted before the next compaction, an
		// operator can point the generation file back at it and lose nothing
		// — and delete everything older (crash leftovers included; the
		// operator's registry.json is left alone, it is simply no longer
		// consulted).
		if gen > 0 {
			_ = os.Remove(r.genPath(0))
		}
		if matches, err := filepath.Glob(r.path + ".[0-9]*"); err == nil {
			for _, m := range matches {
				if g, err := strconv.ParseUint(strings.TrimPrefix(m, r.path+"."), 10, 64); err == nil && g < gen {
					_ = os.Remove(m)
				}
			}
		}
		// Our own view now describes a deleted generation; re-materialize
		// from the snapshot lazily on the next read.
		r.view.valid = false
		return nil
	})
}

// CompactIfOversized compacts when the current generation's journal has
// outgrown the configured threshold, reporting whether it did.
func (r *JournalRegistry) CompactIfOversized() (bool, error) {
	gen, err := r.readGen()
	if err != nil {
		return false, err
	}
	st, err := os.Stat(r.genPath(gen))
	if err != nil || st.Size() <= r.compactBytes {
		return false, nil
	}
	if err := r.Compact(); err != nil {
		return false, err
	}
	return true, nil
}

// StartCompactor runs CompactIfOversized on a background ticker, returning
// a stop function. Errors are reported through onError (nil to ignore) and
// retried at the next tick — compaction is maintenance, the journal stays
// correct (just longer) without it.
func (r *JournalRegistry) StartCompactor(interval time.Duration, onError func(error)) (stop func()) {
	if interval <= 0 {
		return func() {} // disabled; the journal stays correct, just unbounded
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				if _, err := r.CompactIfOversized(); err != nil && onError != nil {
					onError(err)
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}

// writeSnapshot writes the materialized view as generation gen's base:
// one lease record per entry (deterministic order) followed by the
// freshest health record per address. Temp-and-rename so a crash mid-write
// leaves no half-snapshot under the generation's name.
func (r *JournalRegistry) writeSnapshot(gen uint64) error {
	now := r.now()
	var buf bytes.Buffer
	ids := make([]string, 0, len(r.view.entries))
	for id := range r.view.entries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	writeRec := func(rec journalRecord) error {
		line, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("relay: encode journal snapshot: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
		return nil
	}
	for _, id := range ids {
		for _, e := range r.view.entries[id] {
			rec := journalRecord{Op: opLease, Net: id, Addr: e.addr, TS: now.UnixNano()}
			if !e.expires.IsZero() {
				rec.Exp = e.expires.UnixNano()
				if remaining := e.expires.Sub(now); remaining > 0 {
					rec.TTL = int64(remaining)
				}
			}
			if err := writeRec(rec); err != nil {
				return err
			}
		}
	}
	health := collectHealth(r.view.entries)
	addrs := make([]string, 0, len(health))
	for addr := range health {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	for _, addr := range addrs {
		h := health[addr]
		if err := writeRec(journalRecord{Op: opHealth, Addr: addr, TS: now.UnixNano(), Health: &h}); err != nil {
			return err
		}
	}
	if err := atomicWriteFile(r.genPath(gen), buf.Bytes()); err != nil {
		return fmt.Errorf("relay: write journal snapshot: %w", err)
	}
	return nil
}

// refreshLocked brings the materialized view up to date with the journal:
// re-read the generation pointer, re-materialize if it moved (or we have
// no view yet), and tail new records from the last consumed offset. A
// generation file that vanishes mid-read means a compactor rolled past us
// — re-read the pointer and start over, bounded so a genuinely corrupt
// deployment errors instead of spinning.
func (r *JournalRegistry) refreshLocked() error {
	for attempt := 0; ; attempt++ {
		gen, err := r.readGen()
		if err != nil {
			return err
		}
		err = r.refreshGenLocked(gen)
		if err == nil {
			return nil
		}
		if os.IsNotExist(err) && attempt < 5 {
			r.view.valid = false
			continue
		}
		return err
	}
}

// refreshGenLocked materializes or tails the view for one specific
// generation. Returns an os.IsNotExist error when the generation's file
// should exist but does not (rolled away underneath us).
func (r *JournalRegistry) refreshGenLocked(gen uint64) error {
	if !r.view.valid || gen != r.view.gen {
		r.view = journalView{
			valid:   true,
			gen:     gen,
			entries: make(map[string][]leaseEntry),
			health:  make(map[string]SharedHealth),
		}
		// The legacy flat file is the generation-0 base snapshot: a
		// deployment that upgraded in place keeps every registration it
		// had. From generation 1 on, the compaction snapshot has folded it
		// in.
		if gen == 0 {
			if legacy, err := loadRegistryFile(r.legacyPath); err == nil {
				r.view.entries = legacy
				for addr, h := range collectHealth(legacy) {
					r.view.health[addr] = h
				}
			} else if !os.IsNotExist(err) {
				return err
			}
		}
	}
	f, err := os.Open(r.genPath(r.view.gen))
	if err != nil {
		if os.IsNotExist(err) && r.view.gen == 0 {
			return nil // journal not started yet; the legacy base (if any) is the view
		}
		return err
	}
	defer f.Close()
	if st, err := f.Stat(); err == nil && st.Size() < r.view.offset {
		// The file shrank under our offset (an operator truncated or
		// replaced it). Rebuild from scratch rather than tailing garbage.
		r.view.valid = false
		return r.refreshGenLocked(r.view.gen)
	}
	if _, err := f.Seek(r.view.offset, io.SeekStart); err != nil {
		return fmt.Errorf("relay: seek journal %s: %w", r.genPath(r.view.gen), err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return fmt.Errorf("relay: read journal %s: %w", r.genPath(r.view.gen), err)
	}
	consumed := 0
	for {
		idx := bytes.IndexByte(data[consumed:], '\n')
		if idx < 0 {
			break // incomplete tail: an append in flight (or torn); re-read next refresh
		}
		line := data[consumed : consumed+idx]
		consumed += idx + 1
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			r.skipped++ // healed-over torn append; the prefix before it is intact
			continue
		}
		r.applyLocked(rec)
	}
	r.view.offset += int64(consumed)
	return nil
}

// applyLocked folds one record into the materialized view: last record
// wins per (network, address), health freshest-wins per address.
func (r *JournalRegistry) applyLocked(rec journalRecord) {
	switch rec.Op {
	case opLease:
		if rec.Net == "" || rec.Addr == "" {
			r.skipped++
			return
		}
		r.view.entries[rec.Net], _ = upsertLease(r.view.entries[rec.Net], rec.Addr, r.leaseExpiry(rec))
		if h, ok := r.view.health[rec.Addr]; ok {
			applyHealth(r.view.entries[rec.Net], map[string]SharedHealth{rec.Addr: h})
		}
	case opDereg:
		list, removed := removeLease(r.view.entries[rec.Net], rec.Addr)
		if !removed {
			return
		}
		if len(list) == 0 {
			delete(r.view.entries, rec.Net)
		} else {
			r.view.entries[rec.Net] = list
		}
	case opHealth:
		if rec.Health == nil || rec.Addr == "" {
			r.skipped++
			return
		}
		if cur, ok := r.view.health[rec.Addr]; ok && cur.ObservedUnixNano > rec.Health.ObservedUnixNano {
			return
		}
		r.view.health[rec.Addr] = *rec.Health
		for id := range r.view.entries {
			applyHealth(r.view.entries[id], map[string]SharedHealth{rec.Addr: *rec.Health})
		}
	default:
		r.skipped++
	}
}

// leaseExpiry reconciles a lease record's two encodings on the reader's
// clock: the writer-absolute expiry and the relative TTL anchored at the
// instant this reader materializes the record. The entry stops resolving
// at the *earlier* of the two — the laxer interpretation for a lease,
// mirroring TimeoutNanos deadlines and SharedHealth cooldowns: under clock
// skew a dead relay is never served longer than either encoding supports.
// A writer with a fast clock cannot stretch its lease past the TTL the
// reader just observed; a reader picking up a stale journal cannot extend
// a long-lapsed lease by re-anchoring its TTL, because the absolute expiry
// bounds it.
func (r *JournalRegistry) leaseExpiry(rec journalRecord) time.Time {
	var abs, rel time.Time
	if rec.Exp != 0 {
		abs = time.Unix(0, rec.Exp)
	}
	if rec.TTL > 0 {
		rel = r.now().Add(time.Duration(rec.TTL))
	}
	switch {
	case abs.IsZero():
		return rel // zero when the record is permanent
	case rel.IsZero():
		return abs
	case rel.Before(abs):
		return rel
	default:
		return abs
	}
}

// atomicWriteFile writes data to path via a same-directory temp file and
// rename, so concurrent readers observe either the old file or the new —
// never a torn prefix.
func atomicWriteFile(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Chmod(tmp.Name(), 0o644)
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	return nil
}
