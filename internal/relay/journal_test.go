package relay

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func containsAddr(addrs []string, want string) bool {
	for _, a := range addrs {
		if a == want {
			return true
		}
	}
	return false
}

func journalAt(t *testing.T, dir string, opts ...JournalOption) *JournalRegistry {
	t.Helper()
	return NewJournalRegistry(filepath.Join(dir, "registry.jsonl"), opts...)
}

func TestJournalRegistryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := journalAt(t, dir)

	if _, err := reg.Resolve("tradelens"); !errors.Is(err, ErrUnknownNetwork) {
		t.Fatalf("empty journal: %v", err)
	}
	if err := reg.Register("tradelens", "127.0.0.1:9080"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := reg.Register("tradelens", "127.0.0.1:9081"); err != nil {
		t.Fatalf("Register second: %v", err)
	}
	addrs, err := reg.Resolve("tradelens")
	if err != nil || len(addrs) != 2 || addrs[0] != "127.0.0.1:9080" {
		t.Fatalf("Resolve = %v, %v", addrs, err)
	}

	// A fresh instance over the same journal materializes the same view.
	reg2 := journalAt(t, dir)
	addrs, err = reg2.Resolve("tradelens")
	if err != nil || len(addrs) != 2 {
		t.Fatalf("rematerialized Resolve = %v, %v", addrs, err)
	}
	nets, err := reg2.Networks()
	if err != nil || len(nets) != 1 {
		t.Fatalf("Networks = %v, %v", nets, err)
	}
}

func TestJournalRegistryRenewDeregisterLastRecordWins(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	reg := journalAt(t, dir)
	reg.now = clk.Now

	if err := reg.RegisterLease("net", "a:1", 30*time.Second); err != nil {
		t.Fatalf("RegisterLease: %v", err)
	}
	// Renewal refreshes in place — one entry, not an appended duplicate.
	clk.Advance(20 * time.Second)
	if err := reg.RegisterLease("net", "a:1", 30*time.Second); err != nil {
		t.Fatalf("renew: %v", err)
	}
	clk.Advance(20 * time.Second)
	if addrs, err := reg.Resolve("net"); err != nil || len(addrs) != 1 {
		t.Fatalf("renewed lease lapsed early: %v, %v", addrs, err)
	}
	entries, err := reg.Entries()
	if err != nil || len(entries["net"]) != 1 {
		t.Fatalf("Entries = %+v, %v, want a single deduplicated entry", entries, err)
	}

	if err := reg.Deregister("net", "a:1"); err != nil {
		t.Fatalf("Deregister: %v", err)
	}
	if _, err := reg.Resolve("net"); !errors.Is(err, ErrUnknownNetwork) {
		t.Fatalf("after deregister Resolve err = %v", err)
	}
	nets, err := reg.Networks()
	if err != nil || len(nets) != 0 {
		t.Fatalf("Networks after last deregister = %v, %v", nets, err)
	}
	// Deregistering an absent address appends a harmless no-op record.
	if err := reg.Deregister("net", "missing"); err != nil {
		t.Fatalf("Deregister absent: %v", err)
	}
}

func TestJournalRegistryLeaseExpiryAndPrune(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	reg := journalAt(t, dir)
	reg.now = clk.Now

	if err := reg.RegisterLease("net", "leased:1", 30*time.Second); err != nil {
		t.Fatalf("RegisterLease: %v", err)
	}
	if err := reg.Register("net", "permanent:1"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	clk.Advance(time.Minute)
	addrs, err := reg.Resolve("net")
	if err != nil || len(addrs) != 1 || addrs[0] != "permanent:1" {
		t.Fatalf("after expiry Resolve = %v, %v, want just the permanent entry", addrs, err)
	}
	// The laxer Entries view still lists the lapsed entry until pruned.
	entries, err := reg.Entries()
	if err != nil || len(entries["net"]) != 2 {
		t.Fatalf("Entries = %+v, %v, want the lapsed entry still listed", entries, err)
	}
	pruned, err := reg.Prune()
	if err != nil || pruned != 1 {
		t.Fatalf("Prune = %d, %v, want 1", pruned, err)
	}
	entries, _ = reg.Entries()
	if len(entries["net"]) != 1 || entries["net"][0].Addr != "permanent:1" {
		t.Fatalf("after prune Entries = %+v", entries)
	}
	// Prune with nothing lapsed appends nothing.
	if pruned, err := reg.Prune(); err != nil || pruned != 0 {
		t.Fatalf("second Prune = %d, %v", pruned, err)
	}
}

// TestJournalLeaseSkewTakesEarlierInterpretation is the lease-boundary
// contract: every lease record carries both an absolute expiry (writer's
// clock) and a relative TTL (anchored at the reader's first observation),
// and when skew makes them disagree the entry stops resolving at the
// *earlier* of the two.
func TestJournalLeaseSkewTakesEarlierInterpretation(t *testing.T) {
	const ttl = 30 * time.Second

	t.Run("fast writer clock bounded by reader-anchored TTL", func(t *testing.T) {
		dir := t.TempDir()
		writerClk := newFakeClock()
		writerClk.Advance(time.Hour) // writer's clock runs an hour fast
		writer := journalAt(t, dir)
		writer.now = writerClk.Now
		if err := writer.RegisterLease("net", "skewed:1", ttl); err != nil {
			t.Fatalf("RegisterLease: %v", err)
		}

		readerClk := newFakeClock() // true time
		reader := journalAt(t, dir)
		reader.now = readerClk.Now
		if addrs, err := reader.Resolve("net"); err != nil || len(addrs) != 1 {
			t.Fatalf("fresh lease must resolve: %v, %v", addrs, err)
		}
		// Under the absolute encoding alone the entry would live another
		// hour; the reader-anchored TTL is earlier and wins.
		readerClk.Advance(ttl + time.Second)
		if _, err := reader.Resolve("net"); !errors.Is(err, ErrUnknownNetwork) {
			t.Fatalf("fast-clock lease outlived its TTL: %v", err)
		}
	})

	t.Run("slow writer clock bounded by absolute expiry", func(t *testing.T) {
		dir := t.TempDir()
		writerClk := newFakeClock() // writer's clock runs an hour slow:
		// absolute expiry lands ~now, while the TTL read fresh would grant
		// a full extra hour.
		writer := journalAt(t, dir)
		writer.now = writerClk.Now
		if err := writer.RegisterLease("net", "skewed:1", time.Hour); err != nil {
			t.Fatalf("RegisterLease: %v", err)
		}

		readerClk := newFakeClock()
		readerClk.Advance(time.Hour + time.Second) // true time: just past the absolute expiry
		reader := journalAt(t, dir)
		reader.now = readerClk.Now
		if _, err := reader.Resolve("net"); !errors.Is(err, ErrUnknownNetwork) {
			t.Fatalf("lease resolved past its absolute expiry: %v", err)
		}
	})
}

// TestJournalPruneCompactAgreeWithReader: the maintenance operations use
// the same earlier-interpretation expiry as Resolve, so what stops
// resolving is exactly what Prune removes, and Compact never resurrects
// it.
func TestJournalPruneCompactAgreeWithReader(t *testing.T) {
	dir := t.TempDir()
	writerClk := newFakeClock()
	writerClk.Advance(time.Hour) // fast clock: absolute expiry an hour out
	writer := journalAt(t, dir)
	writer.now = writerClk.Now
	const ttl = 30 * time.Second
	if err := writer.RegisterLease("net", "skewed:1", ttl); err != nil {
		t.Fatalf("RegisterLease: %v", err)
	}
	if err := writer.Register("net", "permanent:1"); err != nil {
		t.Fatalf("Register: %v", err)
	}

	readerClk := newFakeClock()
	reader := journalAt(t, dir)
	reader.now = readerClk.Now
	// Materialize now (anchoring the TTL), then cross the earlier boundary.
	if addrs, err := reader.Resolve("net"); err != nil || len(addrs) != 2 {
		t.Fatalf("initial Resolve = %v, %v", addrs, err)
	}
	readerClk.Advance(ttl + time.Second)
	addrs, err := reader.Resolve("net")
	if err != nil || len(addrs) != 1 || addrs[0] != "permanent:1" {
		t.Fatalf("post-boundary Resolve = %v, %v, want just permanent:1", addrs, err)
	}
	// Prune agrees: exactly the entry the reader stopped resolving.
	pruned, err := reader.Prune()
	if err != nil || pruned != 1 {
		t.Fatalf("Prune = %d, %v, want 1 (the entry that stopped resolving)", pruned, err)
	}
	// Compact agrees: the surviving view is unchanged across the rollover.
	if err := reader.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	addrs, err = reader.Resolve("net")
	if err != nil || len(addrs) != 1 || addrs[0] != "permanent:1" {
		t.Fatalf("post-compaction Resolve = %v, %v", addrs, err)
	}
	entries, err := reader.Entries()
	if err != nil || len(entries["net"]) != 1 {
		t.Fatalf("post-compaction Entries = %+v, %v", entries, err)
	}
}

func TestJournalRegistryHealthPiggyback(t *testing.T) {
	dir := t.TempDir()
	reg := journalAt(t, dir)
	if err := reg.Register("net", "a:1", "b:2"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	stale := SharedHealth{ConsecFailures: 9, ObservedUnixNano: 100}
	fresh := SharedHealth{ConsecFailures: 2, EWMALatencyNanos: int64(time.Millisecond), ObservedUnixNano: 200}
	if err := reg.PublishHealth(map[string]SharedHealth{"a:1": fresh, "unregistered:9": fresh}); err != nil {
		t.Fatalf("PublishHealth: %v", err)
	}
	// Staler records do not regress the view, even though they append later.
	if err := reg.PublishHealth(map[string]SharedHealth{"a:1": stale}); err != nil {
		t.Fatalf("PublishHealth stale: %v", err)
	}
	records, err := journalAt(t, dir).HealthRecords()
	if err != nil {
		t.Fatalf("HealthRecords: %v", err)
	}
	if got, ok := records["a:1"]; !ok || got != fresh {
		t.Fatalf("health for a:1 = %+v (ok=%v), want the fresher record", got, ok)
	}
	if _, ok := records["unregistered:9"]; ok {
		t.Fatal("health published for an unregistered address survived")
	}
	// Entries carry the record for inspection tooling.
	entries, err := reg.Entries()
	if err != nil {
		t.Fatalf("Entries: %v", err)
	}
	for _, e := range entries["net"] {
		if e.Addr == "a:1" && (e.Health == nil || *e.Health != fresh) {
			t.Fatalf("entry health = %+v, want %+v", e.Health, fresh)
		}
	}
}

// TestJournalRegistryLegacyMigration: a deployment directory holding only a
// FileRegistry flat file is readable as the journal's generation-0 base;
// appends layer on top of it; and Compact folds everything into a
// generation-1 snapshot after which the flat file is no longer consulted.
func TestJournalRegistryLegacyMigration(t *testing.T) {
	dir := t.TempDir()
	flat := NewFileRegistry(filepath.Join(dir, "registry.json"))
	if err := flat.Register("tradelens", "legacy:1", "legacy:2"); err != nil {
		t.Fatalf("seed flat registry: %v", err)
	}
	if err := flat.RegisterLease("tradelens", "leased:3", time.Hour); err != nil {
		t.Fatalf("seed flat lease: %v", err)
	}

	reg := journalAt(t, dir)
	addrs, err := reg.Resolve("tradelens")
	if err != nil || len(addrs) != 3 {
		t.Fatalf("legacy base Resolve = %v, %v", addrs, err)
	}
	// Journal appends layer over the legacy base.
	if err := reg.RegisterLease("tradelens", "journal:4", time.Hour); err != nil {
		t.Fatalf("RegisterLease: %v", err)
	}
	if err := reg.Deregister("tradelens", "legacy:2"); err != nil {
		t.Fatalf("Deregister legacy entry: %v", err)
	}
	addrs, err = reg.Resolve("tradelens")
	if err != nil || len(addrs) != 3 || containsAddr(addrs, "legacy:2") {
		t.Fatalf("layered Resolve = %v, %v", addrs, err)
	}

	// Compaction folds the merged view into generation 1...
	if err := reg.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	// ...after which the legacy flat file is no longer consulted: rewrite
	// it with a poison entry and confirm the view is unchanged.
	if err := os.WriteFile(filepath.Join(dir, "registry.json"), []byte(`{"tradelens":["poison:9"]}`), 0o644); err != nil {
		t.Fatalf("rewrite legacy: %v", err)
	}
	fresh := journalAt(t, dir)
	addrs, err = fresh.Resolve("tradelens")
	if err != nil || len(addrs) != 3 || containsAddr(addrs, "poison:9") {
		t.Fatalf("post-migration Resolve = %v, %v", addrs, err)
	}
}

// TestJournalRegistryCompactionBoundsFile: under heartbeat churn the
// journal grows without bound; CompactIfOversized rolls the generation and
// the new file is a bounded snapshot, with the view identical across the
// rollover — including for a second instance that was tailing the old
// generation.
func TestJournalRegistryCompactionBoundsFile(t *testing.T) {
	dir := t.TempDir()
	reg := journalAt(t, dir, WithCompactBytes(1024))
	tailer := journalAt(t, dir)

	const addrs = 5
	for round := 0; round < 200; round++ {
		for i := 0; i < addrs; i++ {
			if err := reg.RegisterLease("net", fmt.Sprintf("relay-%d:9080", i), time.Hour); err != nil {
				t.Fatalf("round %d RegisterLease: %v", round, err)
			}
		}
		if round == 100 {
			// Tail mid-history so the tailer holds an offset into gen 0.
			if got, err := tailer.Resolve("net"); err != nil || len(got) != addrs {
				t.Fatalf("tailer mid-history Resolve = %v, %v", got, err)
			}
		}
	}
	compacted, err := reg.CompactIfOversized()
	if err != nil || !compacted {
		t.Fatalf("CompactIfOversized = %v, %v, want a compaction", compacted, err)
	}
	gen, err := reg.readGen()
	if err != nil || gen != 1 {
		t.Fatalf("generation after compaction = %d, %v", gen, err)
	}
	st, err := os.Stat(reg.genPath(gen))
	if err != nil {
		t.Fatalf("stat snapshot: %v", err)
	}
	if st.Size() > 2048 {
		t.Fatalf("snapshot is %d bytes for %d entries — compaction did not bound the file", st.Size(), addrs)
	}
	// The grace window keeps the single most-recent superseded generation
	// (here generation 0) as a manual-recovery fallback.
	if _, err := os.Stat(reg.genPath(0)); err != nil {
		t.Fatalf("generation-0 grace copy missing after first compaction: %v", err)
	}
	// Both the compacting instance and the mid-tail instance see the full
	// view across the rollover.
	for name, r := range map[string]*JournalRegistry{"compactor": reg, "tailer": tailer} {
		got, err := r.Resolve("net")
		if err != nil || len(got) != addrs {
			t.Fatalf("%s post-rollover Resolve = %v, %v, want %d addrs", name, got, err, addrs)
		}
	}
	// A second compaction rolls again; the chain of generations keeps
	// working, and the grace window slides — generation 1 is kept,
	// generation 0 finally deleted.
	if err := reg.Compact(); err != nil {
		t.Fatalf("second Compact: %v", err)
	}
	if _, err := os.Stat(reg.genPath(0)); !os.IsNotExist(err) {
		t.Fatalf("generation-0 journal survived the second compaction: %v", err)
	}
	if _, err := os.Stat(reg.genPath(1)); err != nil {
		t.Fatalf("generation-1 grace copy missing after second compaction: %v", err)
	}
	if got, err := tailer.Resolve("net"); err != nil || len(got) != addrs {
		t.Fatalf("tailer after second rollover = %v, %v", got, err)
	}
}

func TestJournalPresentDetection(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "registry.jsonl")
	if JournalPresent(path) {
		t.Fatal("empty dir detected as journal")
	}
	// A legacy flat file alone is not a journal.
	if err := os.WriteFile(filepath.Join(dir, "registry.json"), []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if JournalPresent(path) {
		t.Fatal("flat registry.json detected as journal")
	}
	reg := NewJournalRegistry(path)
	if err := reg.Register("net", "a:1"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if !JournalPresent(path) {
		t.Fatal("generation-0 journal not detected")
	}
	if err := reg.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if !JournalPresent(path) {
		t.Fatal("post-compaction journal (pointer + gen file) not detected")
	}
}
