package relay

import (
	"bytes"
	"context"
	"crypto/ecdsa"
	"errors"
	"fmt"
	"time"

	"repro/internal/chaincode"
	"repro/internal/endorsement"
	"repro/internal/fabric"
	"repro/internal/ledger"
	"repro/internal/msp"
	"repro/internal/peer"
	"repro/internal/proof"
	"repro/internal/syscc"
	"repro/internal/wire"
)

var (
	// ErrDivergentResults is returned when peers selected for a proof
	// disagree on the query result, i.e. there is no consensus view to
	// attest.
	ErrDivergentResults = errors.New("relay: peers returned divergent results")
	// ErrNoAttestors is returned when no peer can satisfy any part of the
	// verification policy.
	ErrNoAttestors = errors.New("relay: no peers available for verification policy")
)

// FabricDriver translates network-neutral queries into invocations on a
// fabric.Network (Fig. 2 step 5): it selects one peer from each
// organization the verification policy names, runs the query on each,
// checks that the results agree, and collects a signed+encrypted
// attestation from every queried peer.
type FabricDriver struct {
	net        *fabric.Network
	ledgerName string
}

var _ Driver = (*FabricDriver)(nil)

// NewFabricDriver creates a driver for one fabric network. ledgerName is
// the logical ledger identifier used in query digests; networks in this
// implementation have a single ledger, conventionally "default".
func NewFabricDriver(net *fabric.Network, ledgerName string) *FabricDriver {
	if ledgerName == "" {
		ledgerName = "default"
	}
	return &FabricDriver{net: net, ledgerName: ledgerName}
}

// Platform implements Driver.
func (d *FabricDriver) Platform() string { return "fabric" }

// Query implements Driver. Peer queries and attestation collection check
// ctx between peers, so an expired budget stops the remaining proof work.
func (d *FabricDriver) Query(ctx context.Context, q *wire.Query) (*wire.QueryResponse, error) {
	if q.Ledger != "" && q.Ledger != d.ledgerName {
		return nil, fmt.Errorf("relay: unknown ledger %q", q.Ledger)
	}
	vp, err := endorsement.Parse(q.PolicyExpr)
	if err != nil {
		return nil, fmt.Errorf("relay: verification policy: %w", err)
	}
	clientPub, err := requesterPublicKey(q.RequesterCertPEM)
	if err != nil {
		return nil, err
	}

	attestors := d.selectPeers(vp)
	if len(attestors) == 0 {
		return nil, ErrNoAttestors
	}

	queryDigest := proof.QueryDigestOf(q)
	inv := chaincode.Invocation{
		TxID:        "interop-" + q.RequestID,
		Chaincode:   q.Contract,
		Function:    q.Function,
		Args:        q.Args,
		CreatorCert: q.RequesterCertPEM,
		ReadOnly:    true,
		Transient: map[string][]byte{
			syscc.TransientInteropFlag:       []byte("1"),
			syscc.TransientRequestingNetwork: []byte(q.RequestingNetwork),
			syscc.TransientNonce:             q.Nonce,
		},
	}

	resp := &wire.QueryResponse{RequestID: q.RequestID}
	var agreed []byte
	for i, p := range attestors {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("relay: query aborted: %w", err)
		}
		inv.Timestamp = time.Now()
		result, err := p.Query(inv)
		if err != nil {
			return nil, fmt.Errorf("relay: query on %s: %w", p.Name(), err)
		}
		if i == 0 {
			agreed = result
		} else if !bytes.Equal(agreed, result) {
			return nil, fmt.Errorf("%w: %s disagrees", ErrDivergentResults, p.Name())
		}
		att, err := proof.BuildAttestation(p.Identity(), d.net.ID(), queryDigest, result, q.Nonce, clientPub, inv.Timestamp)
		if err != nil {
			return nil, fmt.Errorf("relay: attestation from %s: %w", p.Name(), err)
		}
		resp.Attestations = append(resp.Attestations, att)
	}
	encResult, err := proof.EncryptResult(clientPub, agreed)
	if err != nil {
		return nil, fmt.Errorf("relay: encrypt result: %w", err)
	}
	resp.EncryptedResult = encResult
	return resp, nil
}

// selectPeers picks one peer per verification-policy organization present
// in the network.
func (d *FabricDriver) selectPeers(vp *endorsement.Policy) []*peer.Peer {
	var out []*peer.Peer
	for _, orgID := range vp.Orgs() {
		peers, err := d.net.PeersOf(orgID)
		if err != nil || len(peers) == 0 {
			continue
		}
		out = append(out, peers[0])
	}
	return out
}

// Invoke implements TxDriver: a cross-network transaction (§5 extension).
// The invocation is endorsed across the target chaincode's endorsement
// policy, ordered and committed like any local transaction — the invoked
// chaincode's interop adaptation performs the ECC authorization, so a
// foreign requester can only reach functions the exposure-control rules
// permit. The committed response returns with the same attestation proof
// queries carry.
// ctx is checked before endorsement and before ordering; once the
// transaction reaches the orderer it runs to completion — a commit cannot
// be cancelled halfway.
func (d *FabricDriver) Invoke(ctx context.Context, q *wire.Query) (*wire.QueryResponse, error) {
	if q.Ledger != "" && q.Ledger != d.ledgerName {
		return nil, fmt.Errorf("relay: unknown ledger %q", q.Ledger)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("relay: invoke aborted: %w", err)
	}
	vp, err := endorsement.Parse(q.PolicyExpr)
	if err != nil {
		return nil, fmt.Errorf("relay: verification policy: %w", err)
	}
	clientPub, err := requesterPublicKey(q.RequesterCertPEM)
	if err != nil {
		return nil, err
	}
	endorsePolicy := d.net.PolicyFor(q.Contract)
	if endorsePolicy == nil {
		return nil, fmt.Errorf("relay: chaincode %q not deployed", q.Contract)
	}
	inv := chaincode.Invocation{
		TxID:        "interop-tx-" + q.RequestID,
		Chaincode:   q.Contract,
		Function:    q.Function,
		Args:        q.Args,
		CreatorCert: q.RequesterCertPEM,
		Timestamp:   time.Now(),
		Transient: map[string][]byte{
			syscc.TransientInteropFlag:       []byte("1"),
			syscc.TransientRequestingNetwork: []byte(q.RequestingNetwork),
			syscc.TransientNonce:             q.Nonce,
		},
	}
	var responses []*peer.ProposalResponse
	for _, orgID := range endorsePolicy.Orgs() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("relay: invoke aborted: %w", err)
		}
		peers, err := d.net.PeersOf(orgID)
		if err != nil || len(peers) == 0 {
			continue
		}
		resp, err := peers[0].Endorse(inv)
		if err != nil {
			return nil, fmt.Errorf("relay: endorse on %s: %w", peers[0].Name(), err)
		}
		responses = append(responses, resp)
	}
	if len(responses) == 0 {
		return nil, ErrNoAttestors
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("relay: invoke aborted before ordering: %w", err)
	}
	tx, err := peer.AssembleTransaction(inv, responses)
	if err != nil {
		return nil, err
	}
	if err := d.net.Orderer().Submit(tx); err != nil {
		return nil, fmt.Errorf("relay: order cross-network tx: %w", err)
	}
	if tx.Validation == 0 {
		if err := d.net.Orderer().Flush(); err != nil {
			return nil, err
		}
	}
	if tx.Validation != ledger.Valid {
		return nil, fmt.Errorf("relay: cross-network tx invalidated: %s", tx.Validation)
	}

	// Attest the committed response for the requester's proof.
	attestors := d.selectPeers(vp)
	if len(attestors) == 0 {
		return nil, ErrNoAttestors
	}
	queryDigest := proof.QueryDigestOf(q)
	resp := &wire.QueryResponse{RequestID: q.RequestID}
	for _, p := range attestors {
		att, err := proof.BuildAttestation(p.Identity(), d.net.ID(), queryDigest, tx.Response, q.Nonce, clientPub, time.Now())
		if err != nil {
			return nil, fmt.Errorf("relay: attestation from %s: %w", p.Name(), err)
		}
		resp.Attestations = append(resp.Attestations, att)
	}
	encResult, err := proof.EncryptResult(clientPub, tx.Response)
	if err != nil {
		return nil, fmt.Errorf("relay: encrypt result: %w", err)
	}
	resp.EncryptedResult = encResult
	return resp, nil
}

// SubscribeEvents implements EventSource over the network's committed
// chaincode events. ctx bounds establishment only; an already-cancelled
// context refuses the subscription.
func (d *FabricDriver) SubscribeEvents(ctx context.Context, eventName string, deliver func(payload []byte, name string, unixNano uint64)) (func(), error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("relay: subscribe aborted: %w", err)
	}
	sub := d.net.SubscribeEvents("", eventName)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case ev, ok := <-sub.C:
				if !ok {
					return
				}
				deliver(ev.Payload, ev.Name, 0)
			case <-stop:
				return
			}
		}
	}()
	cancel := func() {
		sub.Cancel()
		close(stop)
		<-done
	}
	return cancel, nil
}

func requesterPublicKey(certPEM []byte) (*ecdsa.PublicKey, error) {
	cert, err := msp.ParseCertPEM(certPEM)
	if err != nil {
		return nil, fmt.Errorf("relay: requester certificate: %w", err)
	}
	pub, ok := cert.PublicKey.(*ecdsa.PublicKey)
	if !ok {
		return nil, errors.New("relay: requester certificate key is not ECDSA")
	}
	return pub, nil
}
