package relay

import (
	"bytes"
	"context"
	"crypto/ecdsa"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/chaincode"
	"repro/internal/cryptoutil"
	"repro/internal/endorsement"
	"repro/internal/fabric"
	"repro/internal/ledger"
	"repro/internal/msp"
	"repro/internal/peer"
	"repro/internal/proof"
	"repro/internal/syscc"
	"repro/internal/wire"
)

var (
	// ErrDivergentResults is returned when peers selected for a proof
	// disagree on the query result, i.e. there is no consensus view to
	// attest.
	ErrDivergentResults = errors.New("relay: peers returned divergent results")
	// ErrNoAttestors is returned when no peer can satisfy any part of the
	// verification policy.
	ErrNoAttestors = errors.New("relay: no peers available for verification policy")
)

// ErrPolicyPinMismatch is returned when a query's pinned policy digest
// does not match the policy expression it carries — the requester and
// this relay do not agree on which policy the proof must satisfy, so no
// proof is built at all. It is proof.ErrPolicyPinMismatch, re-exported so
// relay callers can match it without importing proof.
var ErrPolicyPinMismatch = proof.ErrPolicyPinMismatch

// FabricDriver translates network-neutral queries into invocations on a
// fabric.Network (Fig. 2 step 5): it selects one peer from each
// organization the verification policy names, runs the query on each,
// checks that the results agree, and collects a signed+encrypted
// attestation from every queried peer. Proof construction is fronted by a
// content-addressed attestation cache (see attestationCache): a repeated
// identical query is answered with the previously built proof, skipping
// every ECDSA signature and ECIES encryption.
type FabricDriver struct {
	net        *fabric.Network
	ledgerName string

	// cache is atomic so ConfigureAttestationCache can swap it while
	// concurrent queries hold their own reference.
	cache atomic.Pointer[attestationCache]

	// batcher, when non-nil, collapses concurrent proof builds into
	// Merkle-batched windows (one signature per attestor per window). Nil
	// by default: batching trades a bounded latency window for signature
	// amortization, which is an explicit deployment decision. Only queries
	// that negotiated the capability (wire.Query.AcceptBatched) are routed
	// through it.
	batcher atomic.Pointer[attestBatcher]

	// sessions, when non-nil, amortizes ECIES for requesters that
	// negotiated the capability (wire.Query.AcceptSessioned): session
	// ephemeral keys rotate on a TTL and per-requester ECDH secrets are
	// cached per generation, so warm pollers skip the variable-base
	// multiply entirely. Enabled by default — legacy requesters are
	// unaffected (they keep byte-identical classic ECIES), so unlike
	// batching there is no latency trade to opt into.
	sessions atomic.Pointer[proof.SessionPool]

	// cryptoOps counts the ECDH agreements, signatures and envelope
	// encryptions behind every proof this driver builds, exposed through
	// CryptoOps (relay.Stats) so amortization is observable in production.
	cryptoOps cryptoutil.OpCounter

	// onLedgerReplay is notified when the driver answers an invoke from the
	// ledger's committed record after its own submission was invalidated as
	// a duplicate (the commit-race-loser path). Relay.RegisterDriver wires
	// it to the relay's InvokeReplays counter so cross-relay duplicate
	// traffic is visible whichever path served it. Atomic because a driver
	// may be registered on a second relay while the first is already
	// serving invokes.
	onLedgerReplay atomic.Pointer[func()]
	// onCacheStats reports attestation-cache outcomes; wired by
	// Relay.RegisterDriver to the Stats counters, first wiring wins.
	onCacheStats atomic.Pointer[cacheCallbacks]
}

// cacheCallbacks bundles the hit, join and miss counters so all three are
// wired to the same relay atomically — a driver registered on two relays
// must not split its hits to one relay's Stats and its misses to the
// other's.
type cacheCallbacks struct {
	hit, join, miss func()
}

// OnLedgerReplay implements LedgerReplayNotifier. The first wiring wins: a
// driver registered on several relays reports its internal replays to the
// relay that registered it first.
func (d *FabricDriver) OnLedgerReplay(fn func()) {
	d.onLedgerReplay.CompareAndSwap(nil, &fn)
}

// OnAttestationCache implements AttestationCacheNotifier; first wiring
// wins, as with OnLedgerReplay.
func (d *FabricDriver) OnAttestationCache(hit, join, miss func()) {
	d.onCacheStats.CompareAndSwap(nil, &cacheCallbacks{hit: hit, join: join, miss: miss})
}

// cacheOutcome labels how a query's proof was obtained, for stats wiring.
type cacheOutcome int

const (
	cacheMiss cacheOutcome = iota // full fresh build
	cacheHit                      // response served verbatim from the cache
	cacheJoin                     // rebuilt from a leaf-addressed element record
)

func (d *FabricDriver) notifyCache(outcome cacheOutcome) {
	cb := d.onCacheStats.Load()
	if cb == nil {
		return
	}
	switch outcome {
	case cacheHit:
		cb.hit()
	case cacheJoin:
		cb.join()
	default:
		cb.miss()
	}
}

// CryptoOps implements CryptoOpsReporter: monotonic totals of the ECDH
// scalar multiplications, ECDSA signatures and envelope encryptions this
// driver has performed across all proof builds.
func (d *FabricDriver) CryptoOps() (ecdh, sign, encrypt uint64) {
	return d.cryptoOps.ECDHOps(), d.cryptoOps.SignOps(), d.cryptoOps.EncryptOps()
}

var _ Driver = (*FabricDriver)(nil)

// NewFabricDriver creates a driver for one fabric network. ledgerName is
// the logical ledger identifier used in query digests; networks in this
// implementation have a single ledger, conventionally "default".
func NewFabricDriver(net *fabric.Network, ledgerName string) *FabricDriver {
	if ledgerName == "" {
		ledgerName = "default"
	}
	d := &FabricDriver{net: net, ledgerName: ledgerName}
	d.cache.Store(newAttestationCache(defaultAttestCacheSize, defaultAttestCacheTTL, time.Now))
	d.sessions.Store(proof.NewSessionPool(cryptoutil.DefaultSessionTTL, &d.cryptoOps))
	return d
}

// ConfigureAttestationCache replaces the attestation cache with one of the
// given bounds: max entries and TTL. max <= 0 disables caching. Intended
// for tuning and tests; the defaults suit production traffic. Safe while
// serving — in-flight queries finish against the cache they started with.
func (d *FabricDriver) ConfigureAttestationCache(max int, ttl time.Duration) {
	d.cache.Store(newAttestationCache(max, ttl, time.Now))
}

// ConfigureAttestationBatching enables Merkle-batched attestation: proof
// builds for queries that accept batching are held for up to window and
// signed together, one root signature per attestor per window, with each
// requester handed its leaf's inclusion proof. A window also closes early
// once maxPending builds are waiting. window <= 0 or maxPending <= 0
// disables batching (the default). Safe while serving — in-flight builds
// finish against the batcher they started with.
func (d *FabricDriver) ConfigureAttestationBatching(window time.Duration, maxPending int) {
	if window <= 0 || maxPending <= 0 {
		d.batcher.Store(nil)
		return
	}
	d.batcher.Store(newAttestBatcher(window, maxPending))
}

// ConfigureSessionedECIES replaces the sessioned-ECIES pool with one whose
// ephemeral keys rotate every ttl. ttl <= 0 disables sessioned mode
// entirely: every requester, capability or not, gets classic per-query
// ECIES. The default (enabled, cryptoutil.DefaultSessionTTL) suits
// production; short TTLs force per-window rotation for tests and
// benchmarks. Safe while serving — in-flight builds finish against the
// pool they started with.
func (d *FabricDriver) ConfigureSessionedECIES(ttl time.Duration) {
	if ttl <= 0 {
		d.sessions.Store(nil)
		return
	}
	d.sessions.Store(proof.NewSessionPool(ttl, &d.cryptoOps))
}

// newSpec assembles the proof spec for q, switching on sessioned ECIES
// when the requester negotiated the capability and the driver has a
// session pool. The requester label is the certificate digest, so a
// rotated certificate always triggers a fresh ECDH agreement.
func (d *FabricDriver) newSpec(q *wire.Query, queryDigest, policyDigest, result []byte, clientPub *ecdsa.PublicKey) proof.Spec {
	spec := proof.Spec{
		NetworkID:    d.net.ID(),
		QueryDigest:  queryDigest,
		PolicyDigest: policyDigest,
		Result:       result,
		Nonce:        q.Nonce,
		ClientPub:    clientPub,
		Now:          time.Now(),
		Counter:      &d.cryptoOps,
	}
	if q.AcceptSessioned {
		if pool := d.sessions.Load(); pool != nil {
			spec.Sessions = pool
			spec.RequesterLabel = string(cryptoutil.Digest(q.RequesterCertPEM))
		}
	}
	return spec
}

// buildProof routes one proof build either through the batching window
// (when batching is configured and the requester negotiated it) or
// directly through the single-signature builder.
func (d *FabricDriver) buildProof(ctx context.Context, accepted bool, spec proof.Spec, attestors []*msp.Identity) (*wire.QueryResponse, error) {
	if b := d.batcher.Load(); b != nil && accepted {
		return b.submit(ctx, spec, attestors)
	}
	return proof.Build(ctx, spec, attestors)
}

// Platform implements Driver.
func (d *FabricDriver) Platform() string { return "fabric" }

// Query implements Driver. Peer queries check ctx between peers, so an
// expired budget stops the remaining proof work. Result collection runs
// first (peers must agree before anything is attested); proof construction
// is then served from the attestation cache when an identical query was
// answered before, and otherwise built fresh with per-attestor concurrency.
func (d *FabricDriver) Query(ctx context.Context, q *wire.Query) (*wire.QueryResponse, error) {
	if q.Ledger != "" && q.Ledger != d.ledgerName {
		return nil, fmt.Errorf("relay: unknown ledger %q", q.Ledger)
	}
	vp, err := endorsement.Parse(q.PolicyExpr)
	if err != nil {
		return nil, fmt.Errorf("relay: verification policy: %w", err)
	}
	policyDigest, err := proof.PinnedPolicyDigest(q)
	if err != nil {
		return nil, err
	}
	clientPub, err := requesterPublicKey(q.RequesterCertPEM)
	if err != nil {
		return nil, err
	}

	attestors := d.selectPeers(vp)
	if len(attestors) == 0 {
		return nil, ErrNoAttestors
	}

	queryDigest := proof.QueryDigestOf(q)
	inv := chaincode.Invocation{
		TxID:        "interop-" + q.RequestID,
		Chaincode:   q.Contract,
		Function:    q.Function,
		Args:        q.Args,
		CreatorCert: q.RequesterCertPEM,
		ReadOnly:    true,
		Transient: map[string][]byte{
			syscc.TransientInteropFlag:       []byte("1"),
			syscc.TransientRequestingNetwork: []byte(q.RequestingNetwork),
			syscc.TransientNonce:             q.Nonce,
		},
	}

	// Namespace-write tracking advances first, then the height for this
	// query's cache entry is sampled, then the reads run: every write the
	// fast-forwarded scan baseline skips predates the baseline, and every
	// write after it lands at a height above this entry's — so a write
	// racing this query makes the cached entry look stale, never fresh.
	store := attestors[0].Blocks()
	cache := d.cache.Load()
	cache.advance(store)
	height := store.Height()

	var agreed []byte
	var readNamespaces []string
	for i, p := range attestors {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("relay: query aborted: %w", err)
		}
		inv.Timestamp = time.Now()
		if i == 0 {
			// The first peer's simulation also yields the read set, whose
			// namespaces scope this query's cache entry: a later write
			// invalidates the entry only if it lands in state the query
			// actually read.
			sim, err := p.QueryRW(inv)
			if err != nil {
				return nil, fmt.Errorf("relay: query on %s: %w", p.Name(), err)
			}
			agreed = sim.Response
			readNamespaces = queryNamespaces(q.Contract, sim.RWSet)
			continue
		}
		result, err := p.Query(inv)
		if err != nil {
			return nil, fmt.Errorf("relay: query on %s: %w", p.Name(), err)
		}
		if !bytes.Equal(agreed, result) {
			return nil, fmt.Errorf("%w: %s disagrees", ErrDivergentResults, p.Name())
		}
	}

	// The requester's envelope capabilities partition the cache entry: a
	// response sealed sessioned (or carrying batch fields) must never be
	// served to a requester that did not announce it can decode that
	// format, even under the same certificate.
	caps := []byte{0}
	if q.AcceptBatched {
		caps[0] |= 1
	}
	if q.AcceptSessioned {
		caps[0] |= 2
	}
	key := attestCacheKey(queryDigest, policyDigest, cryptoutil.Digest(agreed), cryptoutil.Digest(q.RequesterCertPEM, caps))
	// Second advance after the reads: a write that committed while this
	// query was reading invalidates entries before the lookup, keeping a
	// served entry no staler than the proof a fresh build of these same
	// reads would produce. Single-flight scanning makes this near-free.
	cache.advance(store)
	if raw := cache.get(key); raw != nil {
		if resp, err := wire.UnmarshalQueryResponse(raw); err == nil {
			d.notifyCache(cacheHit)
			resp.RequestID = q.RequestID
			return resp, nil
		}
	}

	spec := d.newSpec(q, queryDigest, policyDigest, agreed, clientPub)
	attestorIDs := identitiesOf(attestors)

	// Leaf-addressed join: when a requester-independent element record for
	// this exact question (query digest, policy pin, result) is cached —
	// typically stored when an earlier occurrence was built inside a
	// batched window — re-encrypt its plaintext elements to this requester
	// and reuse every signature and inclusion proof. This serves requesters
	// the response cache cannot: a first-touch key the doorkeeper refused
	// to admit, or the same requester under a rotated certificate.
	elemKey := elemCacheKey(queryDigest, policyDigest, cryptoutil.Digest(agreed))
	if raw := cache.get(elemKey); raw != nil {
		if stored, err := wire.UnmarshalQueryResponse(raw); err == nil {
			if resp, err := proof.JoinElements(&spec, stored, attestorIDs); err == nil {
				d.notifyCache(cacheJoin)
				cache.put(key, resp.Marshal(), readNamespaces, height)
				resp.RequestID = q.RequestID
				return resp, nil
			}
		}
	}
	d.notifyCache(cacheMiss)

	resp, err := d.buildProof(ctx, q.AcceptBatched, spec, attestorIDs)
	if err != nil {
		return nil, err
	}
	// Store the plaintext element record immediately (no doorkeeper): the
	// very next occurrence of this question must be able to join this
	// build's proof instead of paying a fresh single-signature build.
	if plain := proof.PlainElements(&spec, resp, attestorIDs); plain != nil {
		cache.putDirect(elemKey, plain.Marshal(), readNamespaces, height)
	}
	// Cached without a request ID: the proof is identical for every resend
	// of this question, but each resend echoes its own envelope's ID.
	cache.put(key, resp.Marshal(), readNamespaces, height)
	resp.RequestID = q.RequestID
	return resp, nil
}

// queryNamespaces returns the distinct chaincode namespaces a simulated
// query read, always including the invoked contract (a query that reads
// nothing is still answered from that chaincode's code, which redeploy
// bumps rewrite). Reads recorded without a namespace — pre-namespacing
// transactions — count against the contract itself.
func queryNamespaces(contract string, rw ledger.RWSet) []string {
	out := []string{contract}
	seen := map[string]bool{contract: true}
	for _, r := range rw.Reads {
		ns := r.Namespace
		if ns == "" {
			ns = contract
		}
		if !seen[ns] {
			seen[ns] = true
			out = append(out, ns)
		}
	}
	return out
}

// selectPeers picks one peer from each verification-policy organization
// present in the network.
func (d *FabricDriver) selectPeers(vp *endorsement.Policy) []*peer.Peer {
	var out []*peer.Peer
	for _, orgID := range vp.Orgs() {
		peers, err := d.net.PeersOf(orgID)
		if err != nil || len(peers) == 0 {
			continue
		}
		out = append(out, peers[0])
	}
	return out
}

func identitiesOf(peers []*peer.Peer) []*msp.Identity {
	ids := make([]*msp.Identity, len(peers))
	for i, p := range peers {
		ids[i] = p.Identity()
	}
	return ids
}

// Invoke implements TxDriver: a cross-network transaction (§5 extension).
// The invocation is endorsed across the target chaincode's endorsement
// policy, ordered and committed like any local transaction — the invoked
// chaincode's interop adaptation performs the ECC authorization, so a
// foreign requester can only reach functions the exposure-control rules
// permit. The committed response returns with the same attestation proof
// queries carry — and that proof is built before ordering and persisted
// inside the committed transaction (proof-carrying commits), so a replay
// serves the original proof verbatim no matter how the peer set has
// changed since.
// ctx is checked before endorsement and before ordering; once the
// transaction reaches the orderer it runs to completion — a commit cannot
// be cancelled halfway.
func (d *FabricDriver) Invoke(ctx context.Context, q *wire.Query) (*wire.QueryResponse, error) {
	if q.Ledger != "" && q.Ledger != d.ledgerName {
		return nil, fmt.Errorf("relay: unknown ledger %q", q.Ledger)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("relay: invoke aborted: %w", err)
	}
	// Fail fast on request defects before anything is committed.
	vp, err := endorsement.Parse(q.PolicyExpr)
	if err != nil {
		return nil, fmt.Errorf("relay: verification policy: %w", err)
	}
	policyDigest, err := proof.PinnedPolicyDigest(q)
	if err != nil {
		return nil, err
	}
	clientPub, err := requesterPublicKey(q.RequesterCertPEM)
	if err != nil {
		return nil, err
	}
	attestors := d.selectPeers(vp)
	if len(attestors) == 0 {
		// No peer set can satisfy the verification policy: refuse before
		// committing a transaction whose proof could never be built.
		return nil, ErrNoAttestors
	}
	endorsePolicy := d.net.PolicyFor(q.Contract)
	if endorsePolicy == nil {
		return nil, fmt.Errorf("relay: chaincode %q not deployed", q.Contract)
	}
	// The TxID is derived deterministically from the interop key, so every
	// relay fronting this network submits the same logical invoke under the
	// same transaction identity and the committer's duplicate check can
	// collapse them. A request without an ID has no exactly-once identity;
	// it gets a random TxID so independent anonymous invokes never collide.
	txID := InteropTxID(q)
	if txID == "" {
		fresh, err := newRequestID()
		if err != nil {
			return nil, err
		}
		txID = "interop-tx-" + fresh
	}
	inv := chaincode.Invocation{
		TxID:        txID,
		Chaincode:   q.Contract,
		Function:    q.Function,
		Args:        q.Args,
		CreatorCert: q.RequesterCertPEM,
		Timestamp:   time.Now(),
		InteropKey:  q.InteropKey(),
		Transient: map[string][]byte{
			syscc.TransientInteropFlag:       []byte("1"),
			syscc.TransientRequestingNetwork: []byte(q.RequestingNetwork),
			syscc.TransientNonce:             q.Nonce,
		},
	}
	var responses []*peer.ProposalResponse
	for _, orgID := range endorsePolicy.Orgs() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("relay: invoke aborted: %w", err)
		}
		peers, err := d.net.PeersOf(orgID)
		if err != nil || len(peers) == 0 {
			continue
		}
		resp, err := peers[0].Endorse(inv)
		if err != nil {
			return nil, fmt.Errorf("relay: endorse on %s: %w", peers[0].Name(), err)
		}
		responses = append(responses, resp)
	}
	if len(responses) == 0 {
		return nil, ErrNoAttestors
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("relay: invoke aborted before ordering: %w", err)
	}
	tx, err := peer.AssembleTransaction(inv, responses)
	if err != nil {
		return nil, err
	}
	// Proof-carrying commit: the attestation proof over the endorsed
	// response is built now — while the verification-policy peer set that
	// satisfies it still exists — and persisted inside the transaction. If
	// the commit is invalidated the proof dies with it; if it commits, the
	// exact response served below can be replayed verbatim forever.
	spec := d.newSpec(q, proof.QueryDigestOf(q), policyDigest, tx.Response, clientPub)
	attestorIDs := identitiesOf(attestors)
	resp, err := d.buildProof(ctx, q.AcceptBatched, spec, attestorIDs)
	if err != nil {
		return nil, err
	}
	tx.ProofBundle = proof.Seal(spec, resp.Marshal(), attestorIDs).Marshal()
	// SubmitWait blocks until the batch containing this transaction commits
	// — immediately in a synchronous orderer, at the next size or time cut
	// in a pipelined one — so tx.Validation below reflects the committed
	// outcome either way.
	if err := d.net.Orderer().SubmitWait(tx); err != nil {
		return nil, fmt.Errorf("relay: order cross-network tx: %w", err)
	}
	if tx.Validation == ledger.Duplicate {
		// The committer refused this submission because the same logical
		// invoke is already on the ledger — typically committed through a
		// sibling relay racing this one. The original outcome is the answer.
		resp, found, err := d.ReplayInvoke(ctx, q)
		if err != nil {
			return nil, err
		}
		if found {
			if fn := d.onLedgerReplay.Load(); fn != nil {
				(*fn)()
			}
			return resp, nil
		}
		return nil, fmt.Errorf("relay: cross-network tx invalidated: %s", tx.Validation)
	}
	if tx.Validation != ledger.Valid {
		return nil, fmt.Errorf("relay: cross-network tx invalidated: %s", tx.Validation)
	}

	resp.RequestID = q.RequestID
	return resp, nil
}

// InteropTxID derives the platform transaction ID for an interop invoke.
// It digests the full interop key — requesting network, requester
// certificate digest, request ID — rather than the bare request ID, so the
// ID is identical no matter which relay submits the request (the
// committer's TxID-level duplicate check must collapse sibling
// submissions) while staying private to the requester: two requesters
// choosing the same idempotency key get distinct TxIDs, so neither can
// occupy or block the other's transaction identity. Empty when the query
// carries no request ID.
func InteropTxID(q *wire.Query) string {
	key := q.InteropKey()
	if key == "" {
		return ""
	}
	return "interop-tx-" + cryptoutil.DigestHex([]byte(key))[:32]
}

// ReplayInvoke implements InvokeReplayer: it recovers the committed outcome
// of an interop request from the ledger itself, the cross-relay half of the
// exactly-once guarantee. The relay's in-memory replay cache only remembers
// invokes this process served; when a requester fails over to a redundant
// relay, that relay finds the sibling's commit here and serves the proof
// bundle persisted with it — the original attestations, byte for byte, with
// no re-signing. Only commits that predate proof-carrying (or duplicates
// whose nonce or policy genuinely differs from the original request) fall
// back to re-attesting under the current peer set.
// found=false means no valid commit exists for the request (and is not an
// error: the caller is then the legitimate first executor).
func (d *FabricDriver) ReplayInvoke(ctx context.Context, q *wire.Query) (*wire.QueryResponse, bool, error) {
	key := q.InteropKey()
	if key == "" {
		return nil, false, nil
	}
	if q.Ledger != "" && q.Ledger != d.ledgerName {
		// The same gate the execution path applies: a duplicate aimed at a
		// ledger this driver does not serve must not be answered from the
		// one it does, and (worse) have its wrong-ledger fingerprint cached
		// against the requester's legitimate retry.
		return nil, false, fmt.Errorf("relay: unknown ledger %q", q.Ledger)
	}
	if err := ctx.Err(); err != nil {
		return nil, false, fmt.Errorf("relay: replay lookup aborted: %w", err)
	}
	peers := d.net.AllPeers()
	if len(peers) == 0 {
		return nil, false, nil
	}
	// Any peer serves: every peer validates and commits every block.
	tx, err := peers[0].Blocks().TxByInteropKey(key)
	if err != nil {
		return nil, false, nil
	}
	// The replayed proof binds the *incoming* query's digest to the
	// *committed* response, so the two must describe the same invocation:
	// serving the old response under a new contract/function/argument
	// binding would mint a valid-looking proof for a question the ledger
	// never answered. A requester that reuses an idempotency key for a
	// different request gets an error, not silently stale data.
	if err := matchesCommitted(tx, q); err != nil {
		return nil, false, err
	}
	if resp := d.persistedProof(tx, q); resp != nil {
		return resp, true, nil
	}
	// No usable persisted bundle: re-attest under the current peer set, the
	// pre-proof-carrying behavior. A deterministic idempotent retry never
	// lands here; a retry with a fresh nonce or changed policy does, and
	// gets a proof bound to what it actually presented.
	resp, err := d.attestResponse(ctx, q, tx.Response)
	if err != nil {
		return nil, false, err
	}
	return resp, true, nil
}

// persistedProof returns the transaction's persisted proof as a response
// for q when the sealed bundle answers exactly the question q asks — same
// query digest (contract, function, args, nonce) and same policy pin. Nil
// when the transaction predates proof-carrying commits or the pins differ.
func (d *FabricDriver) persistedProof(tx *ledger.Transaction, q *wire.Query) *wire.QueryResponse {
	if len(tx.ProofBundle) == 0 {
		return nil
	}
	sealed, err := proof.UnmarshalSealed(tx.ProofBundle)
	if err != nil {
		return nil
	}
	if !bytes.Equal(sealed.QueryDigest, proof.QueryDigestOf(q)) {
		return nil
	}
	if pd, err := proof.PinnedPolicyDigest(q); err != nil || !bytes.Equal(sealed.PolicyDigest, pd) {
		return nil
	}
	resp, err := sealed.OpenWire()
	if err != nil {
		return nil
	}
	resp.RequestID = q.RequestID
	return resp
}

// matchesCommitted checks that an incoming duplicate describes the same
// invocation as the transaction committed under its interop key.
func matchesCommitted(tx *ledger.Transaction, q *wire.Query) error {
	mismatch := tx.Chaincode != q.Contract || tx.Function != q.Function || len(tx.Args) != len(q.Args)
	if !mismatch {
		for i := range tx.Args {
			if !bytes.Equal(tx.Args[i], q.Args[i]) {
				mismatch = true
				break
			}
		}
	}
	if mismatch {
		return fmt.Errorf("%w: request %s was already committed as %s.%s with different arguments", ErrRequestMismatch, q.RequestID, tx.Chaincode, tx.Function)
	}
	return nil
}

// attestResponse wraps a committed invoke result in a freshly built
// attestation proof — the fallback for replays of transactions that carry
// no usable persisted bundle. The proof binds the nonce and policy the
// incoming query presents, so it verifies for that requester even though it
// is not the original artifact.
func (d *FabricDriver) attestResponse(ctx context.Context, q *wire.Query, result []byte) (*wire.QueryResponse, error) {
	vp, err := endorsement.Parse(q.PolicyExpr)
	if err != nil {
		return nil, fmt.Errorf("relay: verification policy: %w", err)
	}
	policyDigest, err := proof.PinnedPolicyDigest(q)
	if err != nil {
		return nil, err
	}
	clientPub, err := requesterPublicKey(q.RequesterCertPEM)
	if err != nil {
		return nil, err
	}
	attestors := d.selectPeers(vp)
	if len(attestors) == 0 {
		return nil, ErrNoAttestors
	}
	spec := d.newSpec(q, proof.QueryDigestOf(q), policyDigest, result, clientPub)
	resp, err := proof.Build(ctx, spec, identitiesOf(attestors))
	if err != nil {
		return nil, err
	}
	resp.RequestID = q.RequestID
	return resp, nil
}

// SubscribeEvents implements EventSource over the network's committed
// chaincode events. ctx bounds establishment only; an already-cancelled
// context refuses the subscription. Each delivery carries the emitting
// transaction's commit time, so cross-network subscribers can order events
// from different sources.
func (d *FabricDriver) SubscribeEvents(ctx context.Context, eventName string, deliver func(payload []byte, name string, unixNano uint64)) (func(), error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("relay: subscribe aborted: %w", err)
	}
	sub := d.net.SubscribeEvents("", eventName)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case ev, ok := <-sub.C:
				if !ok {
					return
				}
				deliver(ev.Payload, ev.Name, ev.UnixNano)
			case <-stop:
				return
			}
		}
	}()
	cancel := func() {
		sub.Cancel()
		close(stop)
		<-done
	}
	return cancel, nil
}

func requesterPublicKey(certPEM []byte) (*ecdsa.PublicKey, error) {
	cert, err := msp.ParseCertPEM(certPEM)
	if err != nil {
		return nil, fmt.Errorf("relay: requester certificate: %w", err)
	}
	pub, ok := cert.PublicKey.(*ecdsa.PublicKey)
	if !ok {
		return nil, errors.New("relay: requester certificate key is not ECDSA")
	}
	return pub, nil
}
