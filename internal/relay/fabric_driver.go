package relay

import (
	"bytes"
	"context"
	"crypto/ecdsa"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/chaincode"
	"repro/internal/cryptoutil"
	"repro/internal/endorsement"
	"repro/internal/fabric"
	"repro/internal/ledger"
	"repro/internal/msp"
	"repro/internal/peer"
	"repro/internal/proof"
	"repro/internal/syscc"
	"repro/internal/wire"
)

var (
	// ErrDivergentResults is returned when peers selected for a proof
	// disagree on the query result, i.e. there is no consensus view to
	// attest.
	ErrDivergentResults = errors.New("relay: peers returned divergent results")
	// ErrNoAttestors is returned when no peer can satisfy any part of the
	// verification policy.
	ErrNoAttestors = errors.New("relay: no peers available for verification policy")
)

// FabricDriver translates network-neutral queries into invocations on a
// fabric.Network (Fig. 2 step 5): it selects one peer from each
// organization the verification policy names, runs the query on each,
// checks that the results agree, and collects a signed+encrypted
// attestation from every queried peer.
type FabricDriver struct {
	net        *fabric.Network
	ledgerName string

	// onLedgerReplay is notified when the driver answers an invoke from the
	// ledger's committed record after its own submission was invalidated as
	// a duplicate (the commit-race-loser path). Relay.RegisterDriver wires
	// it to the relay's InvokeReplays counter so cross-relay duplicate
	// traffic is visible whichever path served it. Atomic because a driver
	// may be registered on a second relay while the first is already
	// serving invokes.
	onLedgerReplay atomic.Pointer[func()]
}

// OnLedgerReplay implements LedgerReplayNotifier. The first wiring wins: a
// driver registered on several relays reports its internal replays to the
// relay that registered it first.
func (d *FabricDriver) OnLedgerReplay(fn func()) {
	d.onLedgerReplay.CompareAndSwap(nil, &fn)
}

var _ Driver = (*FabricDriver)(nil)

// NewFabricDriver creates a driver for one fabric network. ledgerName is
// the logical ledger identifier used in query digests; networks in this
// implementation have a single ledger, conventionally "default".
func NewFabricDriver(net *fabric.Network, ledgerName string) *FabricDriver {
	if ledgerName == "" {
		ledgerName = "default"
	}
	return &FabricDriver{net: net, ledgerName: ledgerName}
}

// Platform implements Driver.
func (d *FabricDriver) Platform() string { return "fabric" }

// Query implements Driver. Peer queries and attestation collection check
// ctx between peers, so an expired budget stops the remaining proof work.
func (d *FabricDriver) Query(ctx context.Context, q *wire.Query) (*wire.QueryResponse, error) {
	if q.Ledger != "" && q.Ledger != d.ledgerName {
		return nil, fmt.Errorf("relay: unknown ledger %q", q.Ledger)
	}
	vp, err := endorsement.Parse(q.PolicyExpr)
	if err != nil {
		return nil, fmt.Errorf("relay: verification policy: %w", err)
	}
	clientPub, err := requesterPublicKey(q.RequesterCertPEM)
	if err != nil {
		return nil, err
	}

	attestors := d.selectPeers(vp)
	if len(attestors) == 0 {
		return nil, ErrNoAttestors
	}

	queryDigest := proof.QueryDigestOf(q)
	inv := chaincode.Invocation{
		TxID:        "interop-" + q.RequestID,
		Chaincode:   q.Contract,
		Function:    q.Function,
		Args:        q.Args,
		CreatorCert: q.RequesterCertPEM,
		ReadOnly:    true,
		Transient: map[string][]byte{
			syscc.TransientInteropFlag:       []byte("1"),
			syscc.TransientRequestingNetwork: []byte(q.RequestingNetwork),
			syscc.TransientNonce:             q.Nonce,
		},
	}

	resp := &wire.QueryResponse{RequestID: q.RequestID}
	var agreed []byte
	for i, p := range attestors {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("relay: query aborted: %w", err)
		}
		inv.Timestamp = time.Now()
		result, err := p.Query(inv)
		if err != nil {
			return nil, fmt.Errorf("relay: query on %s: %w", p.Name(), err)
		}
		if i == 0 {
			agreed = result
		} else if !bytes.Equal(agreed, result) {
			return nil, fmt.Errorf("%w: %s disagrees", ErrDivergentResults, p.Name())
		}
		att, err := proof.BuildAttestation(p.Identity(), d.net.ID(), queryDigest, result, q.Nonce, clientPub, inv.Timestamp)
		if err != nil {
			return nil, fmt.Errorf("relay: attestation from %s: %w", p.Name(), err)
		}
		resp.Attestations = append(resp.Attestations, att)
	}
	encResult, err := proof.EncryptResult(clientPub, agreed)
	if err != nil {
		return nil, fmt.Errorf("relay: encrypt result: %w", err)
	}
	resp.EncryptedResult = encResult
	return resp, nil
}

// selectPeers picks one peer per verification-policy organization present
// in the network.
func (d *FabricDriver) selectPeers(vp *endorsement.Policy) []*peer.Peer {
	var out []*peer.Peer
	for _, orgID := range vp.Orgs() {
		peers, err := d.net.PeersOf(orgID)
		if err != nil || len(peers) == 0 {
			continue
		}
		out = append(out, peers[0])
	}
	return out
}

// Invoke implements TxDriver: a cross-network transaction (§5 extension).
// The invocation is endorsed across the target chaincode's endorsement
// policy, ordered and committed like any local transaction — the invoked
// chaincode's interop adaptation performs the ECC authorization, so a
// foreign requester can only reach functions the exposure-control rules
// permit. The committed response returns with the same attestation proof
// queries carry.
// ctx is checked before endorsement and before ordering; once the
// transaction reaches the orderer it runs to completion — a commit cannot
// be cancelled halfway.
func (d *FabricDriver) Invoke(ctx context.Context, q *wire.Query) (*wire.QueryResponse, error) {
	if q.Ledger != "" && q.Ledger != d.ledgerName {
		return nil, fmt.Errorf("relay: unknown ledger %q", q.Ledger)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("relay: invoke aborted: %w", err)
	}
	// Fail fast on request defects before anything is committed; the same
	// parses happen again when the response is attested.
	if _, err := endorsement.Parse(q.PolicyExpr); err != nil {
		return nil, fmt.Errorf("relay: verification policy: %w", err)
	}
	if _, err := requesterPublicKey(q.RequesterCertPEM); err != nil {
		return nil, err
	}
	endorsePolicy := d.net.PolicyFor(q.Contract)
	if endorsePolicy == nil {
		return nil, fmt.Errorf("relay: chaincode %q not deployed", q.Contract)
	}
	// The TxID is derived deterministically from the interop key, so every
	// relay fronting this network submits the same logical invoke under the
	// same transaction identity and the committer's duplicate check can
	// collapse them. A request without an ID has no exactly-once identity;
	// it gets a random TxID so independent anonymous invokes never collide.
	txID := InteropTxID(q)
	if txID == "" {
		fresh, err := newRequestID()
		if err != nil {
			return nil, err
		}
		txID = "interop-tx-" + fresh
	}
	inv := chaincode.Invocation{
		TxID:        txID,
		Chaincode:   q.Contract,
		Function:    q.Function,
		Args:        q.Args,
		CreatorCert: q.RequesterCertPEM,
		Timestamp:   time.Now(),
		InteropKey:  q.InteropKey(),
		Transient: map[string][]byte{
			syscc.TransientInteropFlag:       []byte("1"),
			syscc.TransientRequestingNetwork: []byte(q.RequestingNetwork),
			syscc.TransientNonce:             q.Nonce,
		},
	}
	var responses []*peer.ProposalResponse
	for _, orgID := range endorsePolicy.Orgs() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("relay: invoke aborted: %w", err)
		}
		peers, err := d.net.PeersOf(orgID)
		if err != nil || len(peers) == 0 {
			continue
		}
		resp, err := peers[0].Endorse(inv)
		if err != nil {
			return nil, fmt.Errorf("relay: endorse on %s: %w", peers[0].Name(), err)
		}
		responses = append(responses, resp)
	}
	if len(responses) == 0 {
		return nil, ErrNoAttestors
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("relay: invoke aborted before ordering: %w", err)
	}
	tx, err := peer.AssembleTransaction(inv, responses)
	if err != nil {
		return nil, err
	}
	if err := d.net.Orderer().Submit(tx); err != nil {
		return nil, fmt.Errorf("relay: order cross-network tx: %w", err)
	}
	if tx.Validation == 0 {
		if err := d.net.Orderer().Flush(); err != nil {
			return nil, err
		}
	}
	if tx.Validation == ledger.Duplicate {
		// The committer refused this submission because the same logical
		// invoke is already on the ledger — typically committed through a
		// sibling relay racing this one. The original outcome is the answer.
		resp, found, err := d.ReplayInvoke(ctx, q)
		if err != nil {
			return nil, err
		}
		if found {
			if fn := d.onLedgerReplay.Load(); fn != nil {
				(*fn)()
			}
			return resp, nil
		}
		return nil, fmt.Errorf("relay: cross-network tx invalidated: %s", tx.Validation)
	}
	if tx.Validation != ledger.Valid {
		return nil, fmt.Errorf("relay: cross-network tx invalidated: %s", tx.Validation)
	}

	// Attest the committed response for the requester's proof.
	return d.attestResponse(q, tx.Response)
}

// InteropTxID derives the platform transaction ID for an interop invoke.
// It digests the full interop key — requesting network, requester
// certificate digest, request ID — rather than the bare request ID, so the
// ID is identical no matter which relay submits the request (the
// committer's TxID-level duplicate check must collapse sibling
// submissions) while staying private to the requester: two requesters
// choosing the same idempotency key get distinct TxIDs, so neither can
// occupy or block the other's transaction identity. Empty when the query
// carries no request ID.
func InteropTxID(q *wire.Query) string {
	key := q.InteropKey()
	if key == "" {
		return ""
	}
	return "interop-tx-" + cryptoutil.DigestHex([]byte(key))[:32]
}

// ReplayInvoke implements InvokeReplayer: it recovers the committed outcome
// of an interop request from the ledger itself, the cross-relay half of the
// exactly-once guarantee. The relay's in-memory replay cache only remembers
// invokes this process served; when a requester fails over to a redundant
// relay, that relay finds the sibling's commit here and re-attests the
// original response instead of executing the transaction a second time.
// found=false means no valid commit exists for the request (and is not an
// error: the caller is then the legitimate first executor).
func (d *FabricDriver) ReplayInvoke(ctx context.Context, q *wire.Query) (*wire.QueryResponse, bool, error) {
	key := q.InteropKey()
	if key == "" {
		return nil, false, nil
	}
	if q.Ledger != "" && q.Ledger != d.ledgerName {
		// The same gate the execution path applies: a duplicate aimed at a
		// ledger this driver does not serve must not be answered from the
		// one it does, and (worse) have its wrong-ledger fingerprint cached
		// against the requester's legitimate retry.
		return nil, false, fmt.Errorf("relay: unknown ledger %q", q.Ledger)
	}
	if err := ctx.Err(); err != nil {
		return nil, false, fmt.Errorf("relay: replay lookup aborted: %w", err)
	}
	peers := d.net.AllPeers()
	if len(peers) == 0 {
		return nil, false, nil
	}
	// Any peer serves: every peer validates and commits every block.
	tx, err := peers[0].Blocks().TxByInteropKey(key)
	if err != nil {
		return nil, false, nil
	}
	// The replayed proof binds the *incoming* query's digest to the
	// *committed* response, so the two must describe the same invocation:
	// re-attesting the old response under a new contract/function/argument
	// binding would mint a valid-looking proof for a question the ledger
	// never answered. A requester that reuses an idempotency key for a
	// different request gets an error, not silently stale data.
	if err := matchesCommitted(tx, q); err != nil {
		return nil, false, err
	}
	resp, err := d.attestResponse(q, tx.Response)
	if err != nil {
		return nil, false, err
	}
	return resp, true, nil
}

// matchesCommitted checks that an incoming duplicate describes the same
// invocation as the transaction committed under its interop key.
func matchesCommitted(tx *ledger.Transaction, q *wire.Query) error {
	mismatch := tx.Chaincode != q.Contract || tx.Function != q.Function || len(tx.Args) != len(q.Args)
	if !mismatch {
		for i := range tx.Args {
			if !bytes.Equal(tx.Args[i], q.Args[i]) {
				mismatch = true
				break
			}
		}
	}
	if mismatch {
		return fmt.Errorf("%w: request %s was already committed as %s.%s with different arguments", ErrRequestMismatch, q.RequestID, tx.Chaincode, tx.Function)
	}
	return nil
}

// attestResponse wraps a (committed or replayed) invoke result in the same
// attestation proof a query response carries: one signed, encrypted
// attestation per verification-policy organization, plus the result
// encrypted to the requester. Replays re-attest rather than re-serve the
// original ciphertext: the proof binds the requester's nonce, which a
// deterministic idempotent retry presents again, so the fresh attestations
// verify identically.
func (d *FabricDriver) attestResponse(q *wire.Query, result []byte) (*wire.QueryResponse, error) {
	vp, err := endorsement.Parse(q.PolicyExpr)
	if err != nil {
		return nil, fmt.Errorf("relay: verification policy: %w", err)
	}
	clientPub, err := requesterPublicKey(q.RequesterCertPEM)
	if err != nil {
		return nil, err
	}
	attestors := d.selectPeers(vp)
	if len(attestors) == 0 {
		return nil, ErrNoAttestors
	}
	queryDigest := proof.QueryDigestOf(q)
	resp := &wire.QueryResponse{RequestID: q.RequestID}
	for _, p := range attestors {
		att, err := proof.BuildAttestation(p.Identity(), d.net.ID(), queryDigest, result, q.Nonce, clientPub, time.Now())
		if err != nil {
			return nil, fmt.Errorf("relay: attestation from %s: %w", p.Name(), err)
		}
		resp.Attestations = append(resp.Attestations, att)
	}
	encResult, err := proof.EncryptResult(clientPub, result)
	if err != nil {
		return nil, fmt.Errorf("relay: encrypt result: %w", err)
	}
	resp.EncryptedResult = encResult
	return resp, nil
}

// SubscribeEvents implements EventSource over the network's committed
// chaincode events. ctx bounds establishment only; an already-cancelled
// context refuses the subscription.
func (d *FabricDriver) SubscribeEvents(ctx context.Context, eventName string, deliver func(payload []byte, name string, unixNano uint64)) (func(), error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("relay: subscribe aborted: %w", err)
	}
	sub := d.net.SubscribeEvents("", eventName)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case ev, ok := <-sub.C:
				if !ok {
					return
				}
				deliver(ev.Payload, ev.Name, 0)
			case <-stop:
				return
			}
		}
	}()
	cancel := func() {
		sub.Cancel()
		close(stop)
		<-done
	}
	return cancel, nil
}

func requesterPublicKey(certPEM []byte) (*ecdsa.PublicKey, error) {
	cert, err := msp.ParseCertPEM(certPEM)
	if err != nil {
		return nil, fmt.Errorf("relay: requester certificate: %w", err)
	}
	pub, ok := cert.PublicKey.(*ecdsa.PublicKey)
	if !ok {
		return nil, errors.New("relay: requester certificate key is not ECDSA")
	}
	return pub, nil
}
