package relay

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/ledger"
)

// Attestation-cache defaults. Entries are whole marshaled responses —
// result ciphertext plus attestations — so the count bound doubles as a
// rough memory bound; the TTL bounds how long a response can be served
// after the world that produced it (peer set, client expectations) may
// have drifted, even when the ledger namespace it reads never changes.
const (
	defaultAttestCacheSize = 512
	defaultAttestCacheTTL  = 5 * time.Minute
)

// blockSource is the slice of ledger.BlockStore the cache needs to watch
// for namespace invalidation.
type blockSource interface {
	Height() uint64
	Block(num uint64) (*ledger.Block, error)
}

// attestEntry is one cached proof: the marshaled wire.QueryResponse served
// verbatim on a hit, plus the consistency metadata that decides whether the
// hit is still sound.
type attestEntry struct {
	key        string
	response   []byte
	namespaces []string  // chaincode namespaces the query's read set touched
	height     uint64    // chain height when the proof was built
	storedAt   time.Time // for the TTL
}

// attestationCache is the relay driver's content-addressed proof cache: a
// repeated identical query (same query digest — which binds contract,
// function, arguments and nonce — same policy pin, same result, same
// requester) is served the previously built response without a single
// ECDSA signature or ECIES encryption. Consistency comes from the key and
// from ledger-height invalidation:
//
//   - The result digest is part of the key, so a cached proof can never be
//     served for data that changed — a changed result is a different key.
//   - An entry dies when a later block commits a valid write into any of
//     the entry's namespaces — the exact set of chaincode namespaces its
//     query's read set touched, taken from the write-set namespaces of
//     committed transactions rather than the submitting chaincode. A
//     chaincode that writes through a cross-chaincode call still
//     invalidates the namespace it actually wrote; a write to chaincode A
//     no longer evicts entries that only read chaincode B. This is belt
//     and braces over the result-digest keying: the caller recomputes the
//     result before lookup, so even a stale-height entry could only be hit
//     with the current result — but height invalidation keeps the cache
//     from resurrecting proofs across writes that happen to restore an old
//     value (ABA), where "the data is the same" is not "nothing happened".
//     The guarantee is "no staler than a freshly built proof": a write
//     committing in the instants between the caller's advance and its get
//     is caught by the next advance, exactly as a write committing during
//     a fresh proof build would be reflected only in the next query.
//   - A TTL bounds lifetime outright, and LRU eviction bounds memory.
//
// Admission is two-touch (a doorkeeper, TinyLFU-style): a key must miss
// twice before its response is stored. Queries with random nonces produce
// keys that can never recur, so without the doorkeeper a burst of one-off
// queries would fill the LRU with unreachable entries and evict the ones
// pollers actually re-hit; with it, single-shot keys only ever occupy the
// cheap seen-set.
//
// What it will never serve: a proof for a different question, policy,
// requester or result (all in the key), or a proof older than the last
// scanned valid write to the namespace it reads.
type attestationCache struct {
	mu      sync.Mutex
	max     int
	ttl     time.Duration
	now     func() time.Time
	entries map[string]*list.Element
	lru     *list.List // front = most recently used; values are *attestEntry

	// Doorkeeper: keys seen exactly once, FIFO-bounded.
	seen      map[string]struct{}
	seenOrder []string
	seenHead  int

	// Namespace write tracking, advanced lazily from the block source: the
	// height of the last block containing a valid write-bearing transaction
	// per chaincode, and how far the chain has been scanned. scanningTo is
	// the single-flight marker: the height some in-flight advance is
	// already scanning toward, so a burst of concurrent queries does not
	// rescan the same block range N times.
	scanned    uint64
	scanningTo uint64
	lastWrite  map[string]uint64
	// baseline is the height an empty-cache fast-forward jumped to; blocks
	// below it were never scanned, so entries built below it cannot be
	// covered by write invalidation and are refused by put.
	baseline uint64
}

func newAttestationCache(max int, ttl time.Duration, now func() time.Time) *attestationCache {
	if now == nil {
		now = time.Now
	}
	return &attestationCache{
		max:       max,
		ttl:       ttl,
		now:       now,
		entries:   make(map[string]*list.Element),
		lru:       list.New(),
		seen:      make(map[string]struct{}),
		lastWrite: make(map[string]uint64),
	}
}

// attestCacheKey derives the content address of a proof: query digest
// (binding contract, function, args and nonce), policy pin, result digest,
// and the requester's certificate digest — the response is encrypted to
// that certificate's key, so two requesters asking the identical question
// must never share an entry.
func attestCacheKey(queryDigest, policyDigest, resultDigest, requesterCertDigest []byte) string {
	return string(cryptoutil.Digest(queryDigest, policyDigest, resultDigest, requesterCertDigest))
}

// elemCacheKey derives the leaf address of a proof's plaintext elements:
// the same content binding as attestCacheKey minus the requester — the
// stored record holds plaintext metadata and signatures, both requester-
// independent, so any requester presenting the identical question can have
// the elements re-encrypted to it (joining the original window's proof).
// The domain prefix keeps element records and full responses from ever
// colliding in the shared cache.
func elemCacheKey(queryDigest, policyDigest, resultDigest []byte) string {
	return string(cryptoutil.Digest([]byte("attest-elems\x00"), queryDigest, policyDigest, resultDigest))
}

// advance scans blocks committed since the last scan, recording the height
// of the most recent valid write per chaincode namespace. Called before
// every lookup so invalidation is never staler than the caller's view of
// the chain. An empty cache fast-forwards past the whole backlog instead
// of scanning it: with no entries there is nothing to invalidate, writes
// older than any future entry's build height are irrelevant, and a relay
// (re)starting against a long chain must not pay an O(chain) scan on its
// first query.
func (c *attestationCache) advance(src blockSource) {
	height := src.Height()
	c.mu.Lock()
	if c.lru.Len() == 0 && height > c.scanned && height > c.scanningTo {
		// The baseline rises with the jump: a concurrent query that sampled
		// its build height below it (its reads may predate a skipped write)
		// will have its put refused rather than stored uninvalidatable.
		c.scanned = height
		c.baseline = height
		c.mu.Unlock()
		return
	}
	// Single-flight: start where the furthest in-flight scan will end, so
	// concurrent queries after a commit burst scan disjoint ranges (usually
	// none) instead of all rescanning the same blocks. A caller that skips
	// here serves with invalidation at most one in-flight scan stale, which
	// the next advance closes.
	from := c.scanned
	if c.scanningTo > from {
		from = c.scanningTo
	}
	if height <= from {
		c.mu.Unlock()
		return
	}
	c.scanningTo = height
	c.mu.Unlock()
	// Read blocks outside the cache lock; the chain is append-only, so the
	// range [from, height) is immutable.
	updates := make(map[string]uint64)
	for num := from; num < height; num++ {
		block, err := src.Block(num)
		if err != nil {
			continue
		}
		for _, tx := range block.Transactions {
			if tx.Validation != ledger.Valid || len(tx.RWSet.Writes) == 0 {
				continue
			}
			for _, w := range tx.RWSet.Writes {
				// Exact invalidation: the namespace each write actually
				// landed in, not the chaincode that submitted it. Writes
				// from before namespaced state carry no namespace; fall
				// back to the submitting chaincode for those.
				ns := w.Namespace
				if ns == "" {
					ns = tx.Chaincode
				}
				updates[ns] = num + 1 // heights are 1-past the block number
			}
		}
	}
	c.mu.Lock()
	// Merge unconditionally: with disjoint scan ranges, a later-started
	// scan can finish first, and dropping the earlier range's writes would
	// leave lastWrite claiming coverage it does not have.
	if height > c.scanned {
		c.scanned = height
	}
	for ns, h := range updates {
		if h > c.lastWrite[ns] {
			c.lastWrite[ns] = h
		}
	}
	c.mu.Unlock()
}

// get returns the cached response for key, or nil when absent, expired, or
// invalidated by a write to its namespace since it was built.
func (c *attestationCache) get(key string) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	e := el.Value.(*attestEntry)
	if c.ttl > 0 && c.now().Sub(e.storedAt) > c.ttl {
		c.removeLocked(el)
		return nil
	}
	for _, ns := range e.namespaces {
		if c.lastWrite[ns] > e.height {
			c.removeLocked(el)
			return nil
		}
	}
	c.lru.MoveToFront(el)
	return e.response
}

// put stores a freshly built response under its content address — once the
// key has missed twice (see the doorkeeper in the type comment). height is
// the chain height the proof was built at; namespaces is the set of
// chaincode namespaces the query's read set touched. Entries built below
// the fast-forward baseline are refused: write invalidation cannot vouch
// for them.
func (c *attestationCache) put(key string, response []byte, namespaces []string, height uint64) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if height < c.baseline {
		return
	}
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		return
	}
	if _, ok := c.seen[key]; !ok {
		// First sighting: note the key, store nothing. Keys that never
		// recur stop here.
		c.seen[key] = struct{}{}
		c.seenOrder = append(c.seenOrder, key)
		for len(c.seenOrder)-c.seenHead > 8*c.max {
			delete(c.seen, c.seenOrder[c.seenHead])
			c.seenHead++
		}
		if c.seenHead > len(c.seenOrder)/2 {
			c.seenOrder = append([]string(nil), c.seenOrder[c.seenHead:]...)
			c.seenHead = 0
		}
		return
	}
	c.storeLocked(key, response, namespaces, height)
}

// putDirect stores an entry immediately, bypassing the two-touch
// doorkeeper. Used for plaintext element records: they are written once per
// fresh build the driver already paid full crypto for, so there is no
// one-off-key flood to keep out, and a record must be present on the very
// next occurrence of its question for the join path to work at all.
func (c *attestationCache) putDirect(key string, response []byte, namespaces []string, height uint64) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if height < c.baseline {
		return
	}
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.storeLocked(key, response, namespaces, height)
}

func (c *attestationCache) storeLocked(key string, response []byte, namespaces []string, height uint64) {
	el := c.lru.PushFront(&attestEntry{
		key:        key,
		response:   response,
		namespaces: namespaces,
		height:     height,
		storedAt:   c.now(),
	})
	c.entries[key] = el
	for c.lru.Len() > c.max {
		c.removeLocked(c.lru.Back())
	}
}

func (c *attestationCache) removeLocked(el *list.Element) {
	c.lru.Remove(el)
	delete(c.entries, el.Value.(*attestEntry).key)
}

// len reports the live entry count (for tests).
func (c *attestationCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
