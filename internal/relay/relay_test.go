package relay

import (
	"bytes"
	"context"
	"crypto/ecdsa"
	"encoding/pem"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/chaincode"
	"repro/internal/cryptoutil"
	"repro/internal/endorsement"
	"repro/internal/fabric"
	"repro/internal/msp"
	"repro/internal/orderer"
	"repro/internal/policy"
	"repro/internal/proof"
	"repro/internal/statedb"
	"repro/internal/syscc"
	"repro/internal/wire"
)

// docsChaincode is a minimal interop-aware data contract: PutDoc stores a
// document; GetDoc serves it, consulting the ECC for access control when the
// invocation arrives through a relay (the paper's ~2-call source-side
// adaptation).
var docsChaincode = chaincode.Func(func(stub chaincode.Stub) ([]byte, error) {
	args := stub.Args()
	switch stub.Function() {
	case "PutDoc":
		if len(args) != 2 {
			return nil, errors.New("PutDoc needs key and value")
		}
		return nil, stub.PutState("doc/"+string(args[0]), args[1])
	case "GetDoc":
		if len(args) != 1 {
			return nil, errors.New("GetDoc needs key")
		}
		if stub.GetTransient(syscc.TransientInteropFlag) != nil {
			requestingNet := stub.GetTransient(syscc.TransientRequestingNetwork)
			if _, err := stub.InvokeChaincode(syscc.ECCName, syscc.ECCAuthorize, [][]byte{
				requestingNet, stub.CreatorCert(), []byte("docs"), []byte("GetDoc"),
			}); err != nil {
				return nil, err
			}
		}
		return stub.GetState("doc/" + string(args[0]))
	default:
		return nil, fmt.Errorf("unknown function %q", stub.Function())
	}
})

// sourceEnv is a relay-enabled source network fixture ("tradelens" style).
type sourceEnv struct {
	net    *fabric.Network
	admin  *fabric.Gateway
	relay  *Relay
	driver *FabricDriver
}

func newSourceEnv(t testing.TB, discovery Discovery, transport Transport) *sourceEnv {
	t.Helper()
	n := fabric.NewNetwork("tradelens", orderer.Config{BatchSize: 1})
	for _, org := range []string{"seller-org", "carrier-org"} {
		if _, err := n.AddOrg(org, 1); err != nil {
			t.Fatalf("AddOrg %s: %v", org, err)
		}
	}
	sysPolicy := "OR('seller-org','carrier-org')"
	if err := n.Deploy(syscc.ECCName, &syscc.ECC{}, sysPolicy); err != nil {
		t.Fatalf("Deploy ECC: %v", err)
	}
	if err := n.Deploy(syscc.CMDACName, &syscc.CMDAC{}, sysPolicy); err != nil {
		t.Fatalf("Deploy CMDAC: %v", err)
	}
	if err := n.Deploy("docs", docsChaincode, "AND('seller-org','carrier-org')"); err != nil {
		t.Fatalf("Deploy docs: %v", err)
	}
	org, _ := n.Org("seller-org")
	adminID, err := org.CA.Issue("stl-admin", msp.RoleAdmin)
	if err != nil {
		t.Fatalf("Issue admin: %v", err)
	}
	r := New("tradelens", discovery, transport)
	d := NewFabricDriver(n, "default")
	r.RegisterDriver("tradelens", d)
	return &sourceEnv{net: n, admin: n.Gateway(adminID), relay: r, driver: d}
}

// requester models the destination-side client (a "we-trade" member) with
// its own key pair certified by its org CA.
type requester struct {
	ca      *msp.CA
	key     *ecdsa.PrivateKey
	certPEM []byte
	cfg     *wire.NetworkConfig
}

func newRequester(t testing.TB) *requester {
	t.Helper()
	ca, err := msp.NewCA("seller-bank-org")
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	key, err := cryptoutil.GenerateKey()
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	cert, err := ca.IssueForKey("swt-seller-client", msp.RoleClient, &key.PublicKey)
	if err != nil {
		t.Fatalf("IssueForKey: %v", err)
	}
	certPEM := pemCert(cert.Raw)
	cfg := &wire.NetworkConfig{
		NetworkID: "we-trade",
		Platform:  "fabric",
		Orgs: []wire.OrgConfig{
			{OrgID: "seller-bank-org", RootCertPEM: ca.RootCertPEM()},
		},
	}
	return &requester{ca: ca, key: key, certPEM: certPEM, cfg: cfg}
}

func pemCert(der []byte) []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
}

// respError renders a possibly-nil response plus error for assertions.
func respError(resp *wire.QueryResponse, err error) string {
	msg := fmt.Sprint(err)
	if resp != nil {
		msg += " " + resp.Error
	}
	return msg
}

// configureInterop records the requester network's config and an access
// rule on the source network.
func configureInterop(t testing.TB, src *sourceEnv, req *requester) {
	t.Helper()
	if _, err := src.admin.Submit(syscc.CMDACName, syscc.CMDACSetNetworkConfig, req.cfg.Marshal()); err != nil {
		t.Fatalf("SetNetworkConfig: %v", err)
	}
	rule := policy.AccessRule{Network: "we-trade", Org: "seller-bank-org", Chaincode: "docs", Function: "GetDoc"}
	ruleJSON, _ := rule.Marshal()
	if _, err := src.admin.Submit(syscc.ECCName, syscc.ECCAddRule, ruleJSON); err != nil {
		t.Fatalf("AddAccessRule: %v", err)
	}
}

func newQuery(t testing.TB, req *requester) *wire.Query {
	t.Helper()
	nonce, err := cryptoutil.NewNonce()
	if err != nil {
		t.Fatalf("NewNonce: %v", err)
	}
	return &wire.Query{
		RequestingNetwork: "we-trade",
		TargetNetwork:     "tradelens",
		Ledger:            "default",
		Contract:          "docs",
		Function:          "GetDoc",
		Args:              [][]byte{[]byte("bl-77")},
		PolicyExpr:        "AND('seller-org','carrier-org')",
		RequesterCertPEM:  req.certPEM,
		RequesterOrg:      "seller-bank-org",
		Nonce:             nonce,
	}
}

func TestCrossNetworkQueryEndToEnd(t *testing.T) {
	hub := NewHub()
	reg := NewStaticRegistry()
	src := newSourceEnv(t, reg, hub)
	req := newRequester(t)
	configureInterop(t, src, req)

	// Store the document on the source ledger.
	if _, err := src.admin.Submit("docs", "PutDoc", []byte("bl-77"), []byte(`{"bl":"77"}`)); err != nil {
		t.Fatalf("PutDoc: %v", err)
	}

	hub.Attach("stl-relay:9080", src.relay)
	reg.Register("tradelens", "stl-relay:9080")

	dest := New("we-trade", reg, hub)
	q := newQuery(t, req)
	resp, err := dest.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if resp.Error != "" {
		t.Fatalf("remote error: %s", resp.Error)
	}
	if len(resp.Attestations) != 2 {
		t.Fatalf("attestations = %d", len(resp.Attestations))
	}

	// The client opens the response and verifies the proof against the
	// source network's exported configuration.
	bundle, err := proof.OpenResponse(req.key, q, resp)
	if err != nil {
		t.Fatalf("OpenResponse: %v", err)
	}
	if !bytes.Equal(bundle.Result, []byte(`{"bl":"77"}`)) {
		t.Fatalf("result = %q", bundle.Result)
	}
	srcCfg := src.net.ExportConfig()
	roots := make(map[string][]byte)
	for _, o := range srcCfg.Orgs {
		roots[o.OrgID] = o.RootCertPEM
	}
	verifier, err := msp.NewVerifier(roots)
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	vp := endorsement.MustParse(q.PolicyExpr)
	if err := proof.Verify(bundle, verifier, vp, proof.QueryDigestOf(q), nil); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestQueryDeniedWithoutRule(t *testing.T) {
	hub := NewHub()
	reg := NewStaticRegistry()
	src := newSourceEnv(t, reg, hub)
	req := newRequester(t)
	// Record the config but add NO access rule.
	if _, err := src.admin.Submit(syscc.CMDACName, syscc.CMDACSetNetworkConfig, req.cfg.Marshal()); err != nil {
		t.Fatalf("SetNetworkConfig: %v", err)
	}
	_, _ = src.admin.Submit("docs", "PutDoc", []byte("bl-77"), []byte("doc"))

	hub.Attach("stl-relay", src.relay)
	reg.Register("tradelens", "stl-relay")
	dest := New("we-trade", reg, hub)

	resp, err := dest.Query(context.Background(), newQuery(t, req))
	if err == nil && resp.Error == "" {
		t.Fatal("query without access rule succeeded")
	}
	if !bytes.Contains([]byte(respError(resp, err)), []byte("access denied")) {
		t.Fatalf("unexpected failure: resp=%v err=%v", resp, err)
	}
}

func TestQueryUnknownNetwork(t *testing.T) {
	reg := NewStaticRegistry()
	dest := New("we-trade", reg, NewHub())
	q := &wire.Query{TargetNetwork: "ghost-net", Contract: "cc", Function: "fn"}
	if _, err := dest.Query(context.Background(), q); !errors.Is(err, ErrUnknownNetwork) {
		t.Fatalf("err = %v", err)
	}
}

func TestFailoverToRedundantRelay(t *testing.T) {
	hub := NewHub()
	reg := NewStaticRegistry()
	src := newSourceEnv(t, reg, hub)
	req := newRequester(t)
	configureInterop(t, src, req)
	_, _ = src.admin.Submit("docs", "PutDoc", []byte("bl-77"), []byte("doc"))

	// Two relays front the source network; the primary is down.
	hub.Attach("stl-relay-1", src.relay)
	hub.Attach("stl-relay-2", src.relay)
	reg.Register("tradelens", "stl-relay-1", "stl-relay-2")
	hub.SetDown("stl-relay-1", true)

	dest := New("we-trade", reg, hub)
	resp, err := dest.Query(context.Background(), newQuery(t, req))
	if err != nil {
		t.Fatalf("failover query: %v", err)
	}
	if resp.Error != "" {
		t.Fatalf("remote error: %s", resp.Error)
	}
}

func TestAllRelaysDown(t *testing.T) {
	hub := NewHub()
	reg := NewStaticRegistry()
	src := newSourceEnv(t, reg, hub)
	req := newRequester(t)
	configureInterop(t, src, req)

	hub.Attach("stl-relay-1", src.relay)
	reg.Register("tradelens", "stl-relay-1")
	hub.SetDown("stl-relay-1", true)

	dest := New("we-trade", reg, hub)
	if _, err := dest.Query(context.Background(), newQuery(t, req)); !errors.Is(err, ErrAllRelaysFailed) {
		t.Fatalf("err = %v", err)
	}
}

func TestLocalNetworkShortcut(t *testing.T) {
	hub := NewHub()
	reg := NewStaticRegistry() // deliberately empty: no addresses at all
	src := newSourceEnv(t, reg, hub)
	req := newRequester(t)
	configureInterop(t, src, req)
	_, _ = src.admin.Submit("docs", "PutDoc", []byte("bl-77"), []byte("doc"))

	// The source relay itself serves queries for its own network without
	// any discovery or transport.
	resp, err := src.relay.Query(context.Background(), newQuery(t, req))
	if err != nil {
		t.Fatalf("local query: %v", err)
	}
	if resp.Error != "" {
		t.Fatalf("remote error: %s", resp.Error)
	}
}

func TestDivergentPeerResultsRejected(t *testing.T) {
	hub := NewHub()
	reg := NewStaticRegistry()
	src := newSourceEnv(t, reg, hub)
	req := newRequester(t)
	configureInterop(t, src, req)
	_, _ = src.admin.Submit("docs", "PutDoc", []byte("bl-77"), []byte("honest"))

	// Corrupt one org's peer state directly, simulating a faulty or
	// compromised peer.
	peers, _ := src.net.PeersOf("carrier-org")
	peers[0].State().ApplyWrites(
		[]statedb.Write{{Namespace: "docs", Key: "doc/bl-77", Value: []byte("tampered")}}, statedb.Version{BlockNum: 99})

	hub.Attach("stl-relay", src.relay)
	reg.Register("tradelens", "stl-relay")
	dest := New("we-trade", reg, hub)
	resp, err := dest.Query(context.Background(), newQuery(t, req))
	if err == nil && resp.Error == "" {
		t.Fatal("divergent results not detected")
	}
}

func TestUnsupportedVersionRejected(t *testing.T) {
	hub := NewHub()
	reg := NewStaticRegistry()
	src := newSourceEnv(t, reg, hub)
	env := &wire.Envelope{Version: 99, Type: wire.MsgQuery, RequestID: "x"}
	reply := src.relay.HandleEnvelope(context.Background(), env)
	if reply.Type != wire.MsgError {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestUnknownTargetAtSourceRelay(t *testing.T) {
	hub := NewHub()
	reg := NewStaticRegistry()
	src := newSourceEnv(t, reg, hub)
	q := &wire.Query{TargetNetwork: "not-served", Contract: "cc", Function: "fn"}
	env := &wire.Envelope{Version: wire.ProtocolVersion, Type: wire.MsgQuery, RequestID: "r", Payload: q.Marshal()}
	reply := src.relay.HandleEnvelope(context.Background(), env)
	if reply.Type != wire.MsgError {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestStaticRegistry(t *testing.T) {
	reg := NewStaticRegistry()
	if _, err := reg.Resolve("a"); !errors.Is(err, ErrUnknownNetwork) {
		t.Fatalf("empty resolve: %v", err)
	}
	reg.Register("a", "addr1", "addr2")
	reg.Register("a", "addr1") // dedupe: re-registration is a no-op
	addrs, err := reg.Resolve("a")
	if err != nil || len(addrs) != 2 || addrs[0] != "addr1" {
		t.Fatalf("Resolve = %v, %v", addrs, err)
	}
	reg.Unregister("a", "addr1")
	addrs, _ = reg.Resolve("a")
	if len(addrs) != 1 || addrs[0] != "addr2" {
		t.Fatalf("after Unregister = %v", addrs)
	}
	if nets := reg.Networks(); len(nets) != 1 || nets[0] != "a" {
		t.Fatalf("Networks = %v", nets)
	}
}

// TestStaticRegistryLeases: leased entries resolve until their TTL lapses,
// renewal extends them, and Deregister removes them.
func TestStaticRegistryLeases(t *testing.T) {
	clk := newFakeClock()
	reg := NewStaticRegistry()
	reg.now = clk.Now

	if err := reg.RegisterLease("a", "leased", 30*time.Second); err != nil {
		t.Fatalf("RegisterLease: %v", err)
	}
	reg.Register("a", "permanent")
	if addrs, _ := reg.Resolve("a"); len(addrs) != 2 {
		t.Fatalf("Resolve = %v", addrs)
	}
	clk.Advance(20 * time.Second)
	if err := reg.RegisterLease("a", "leased", 30*time.Second); err != nil {
		t.Fatalf("renew: %v", err)
	}
	clk.Advance(20 * time.Second)
	if addrs, _ := reg.Resolve("a"); len(addrs) != 2 {
		t.Fatalf("renewed lease lapsed early: %v", addrs)
	}
	clk.Advance(time.Minute)
	addrs, err := reg.Resolve("a")
	if err != nil || len(addrs) != 1 || addrs[0] != "permanent" {
		t.Fatalf("after expiry Resolve = %v, %v", addrs, err)
	}
	if err := reg.Deregister("a", "permanent"); err != nil {
		t.Fatalf("Deregister: %v", err)
	}
	if _, err := reg.Resolve("a"); !errors.Is(err, ErrUnknownNetwork) {
		t.Fatalf("after Deregister err = %v, want ErrUnknownNetwork", err)
	}
}

func TestTCPTransportEndToEnd(t *testing.T) {
	reg := NewStaticRegistry()
	transport := &TCPTransport{DialTimeout: 2 * time.Second, IOTimeout: 10 * time.Second}
	src := newSourceEnv(t, reg, transport)
	req := newRequester(t)
	configureInterop(t, src, req)
	_, _ = src.admin.Submit("docs", "PutDoc", []byte("bl-77"), []byte("tcp-doc"))

	server, err := NewTCPServer(src.relay, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewTCPServer: %v", err)
	}
	defer func() {
		if err := server.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	reg.Register("tradelens", server.Addr())

	dest := New("we-trade", reg, transport)
	q := newQuery(t, req)
	resp, err := dest.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("Query over TCP: %v", err)
	}
	if resp.Error != "" {
		t.Fatalf("remote error: %s", resp.Error)
	}
	bundle, err := proof.OpenResponse(req.key, q, resp)
	if err != nil {
		t.Fatalf("OpenResponse: %v", err)
	}
	if !bytes.Equal(bundle.Result, []byte("tcp-doc")) {
		t.Fatalf("result = %q", bundle.Result)
	}
}

func TestTCPPing(t *testing.T) {
	reg := NewStaticRegistry()
	transport := &TCPTransport{DialTimeout: 2 * time.Second, IOTimeout: 5 * time.Second}
	src := newSourceEnv(t, reg, transport)
	server, err := NewTCPServer(src.relay, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewTCPServer: %v", err)
	}
	defer server.Close()

	probe := New("we-trade", reg, transport)
	if err := probe.Ping(context.Background(), server.Addr()); err != nil {
		t.Fatalf("Ping: %v", err)
	}
}

func TestTCPUnreachable(t *testing.T) {
	transport := &TCPTransport{DialTimeout: 200 * time.Millisecond, IOTimeout: time.Second}
	_, err := transport.Send(context.Background(), "127.0.0.1:1", &wire.Envelope{Version: 1, Type: wire.MsgPing})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
}

func TestCrossNetworkEvents(t *testing.T) {
	hub := NewHub()
	reg := NewStaticRegistry()
	src := newSourceEnv(t, reg, hub)
	req := newRequester(t)
	configureInterop(t, src, req)

	// Deploy an event-emitting chaincode on the source network.
	if err := src.net.Deploy("emitter", chaincode.Func(func(stub chaincode.Stub) ([]byte, error) {
		return nil, stub.SetEvent("bl-issued", stub.Args()[0])
	}), "OR('seller-org','carrier-org')"); err != nil {
		t.Fatalf("Deploy emitter: %v", err)
	}

	hub.Attach("stl-relay", src.relay)
	reg.Register("tradelens", "stl-relay")
	dest := New("we-trade", reg, hub)
	hub.Attach("swt-relay", dest)
	reg.Register("we-trade", "swt-relay")

	events, cancel, err := dest.SubscribeRemote(context.Background(), "tradelens", "bl-issued", req.certPEM)
	if err != nil {
		t.Fatalf("SubscribeRemote: %v", err)
	}
	defer cancel()
	defer src.relay.StopServing()

	if _, err := src.admin.Submit("emitter", "emit", []byte("po-1001")); err != nil {
		t.Fatalf("emit: %v", err)
	}
	select {
	case ev := <-events:
		if ev.Name != "bl-issued" || !bytes.Equal(ev.Payload, []byte("po-1001")) {
			t.Fatalf("event = %+v", ev)
		}
		if ev.SourceNetwork != "tradelens" {
			t.Fatalf("source = %q", ev.SourceNetwork)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("event never arrived")
	}
}

func BenchmarkCrossNetworkQueryInProc(b *testing.B) {
	hub := NewHub()
	reg := NewStaticRegistry()
	src := newSourceEnv(b, reg, hub)
	req := newRequester(b)
	configureInterop(b, src, req)
	_, _ = src.admin.Submit("docs", "PutDoc", []byte("bl-77"), []byte("doc"))
	hub.Attach("stl-relay", src.relay)
	reg.Register("tradelens", "stl-relay")
	dest := New("we-trade", reg, hub)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nonce, _ := cryptoutil.NewNonce()
		q := &wire.Query{
			RequestingNetwork: "we-trade", TargetNetwork: "tradelens",
			Ledger: "default", Contract: "docs", Function: "GetDoc",
			Args: [][]byte{[]byte("bl-77")}, PolicyExpr: "AND('seller-org','carrier-org')",
			RequesterCertPEM: req.certPEM, Nonce: nonce,
		}
		resp, err := dest.Query(context.Background(), q)
		if err != nil || resp.Error != "" {
			b.Fatal(respError(resp, err))
		}
	}
}
