package relay

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/wire"
)

// Hedging configures hedged fan-out over a target network's relay
// addresses: instead of waiting for an attempt to fail outright before
// trying the next address (sequential failover), the relay opens a hedge
// attempt against the next address once the current one has been
// outstanding for Delay. The first valid response wins and every other
// in-flight attempt is cancelled. This bounds the tail latency a slow or
// DoS-ed relay can impose (§5) at the cost of some duplicate load.
type Hedging struct {
	// Delay is how long an attempt may stay outstanding before a hedge
	// opens against the next address. Zero means 50ms.
	Delay time.Duration
	// MaxParallel bounds concurrently outstanding attempts. Zero or one
	// means 2.
	MaxParallel int
}

// WithHedging enables hedged fan-out for client-facing queries. Hedging
// applies to Query only; Invoke keeps strict sequential failover because a
// cross-network transaction is not idempotent and a hedge could commit it
// twice.
func WithHedging(delay time.Duration, maxParallel int) Option {
	return func(r *Relay) { r.hedge = &Hedging{Delay: delay, MaxParallel: maxParallel} }
}

// stampDeadline records ctx's remaining budget in the envelope so the
// source relay inherits it: both as an absolute deadline and as a relative
// remaining duration. The receiver takes the laxer of the two (see
// remainingBudget), which makes propagation robust to clock skew between
// relays — a receiver with a fast clock no longer reads the absolute
// deadline as already past and kills the request on arrival. Because the
// relative encoding goes stale as time passes, fan-out restamps before
// every transport attempt: a failover send after a slow first attempt must
// carry the budget remaining now, not the budget at first stamp.
func (r *Relay) stampDeadline(ctx context.Context, env *wire.Envelope) {
	deadline, ok := ctx.Deadline()
	if !ok {
		env.DeadlineUnixNano, env.TimeoutNanos = 0, 0
		return
	}
	env.DeadlineUnixNano = uint64(deadline.UnixNano())
	env.TimeoutNanos = 0
	if rem := deadline.Sub(r.now()); rem > 0 {
		env.TimeoutNanos = uint64(rem)
	}
}

// sendFanout delivers env to the first responsive relay among addrs. With
// hedging configured and more than one address available it races
// attempts; otherwise it fails over sequentially.
func (r *Relay) sendFanout(ctx context.Context, network string, addrs []string, env *wire.Envelope) (*wire.Envelope, error) {
	if r.hedge == nil || len(addrs) < 2 {
		return r.sendSequential(ctx, network, addrs, env)
	}
	return r.sendHedged(ctx, network, addrs, env)
}

// sendSequential tries each address in order, failing over on transport
// errors, and stops early once ctx is done. Callers pass health-ordered
// addresses, so the failover order is live-and-fast first with circuit-open
// addresses as last resort.
func (r *Relay) sendSequential(ctx context.Context, network string, addrs []string, env *wire.Envelope) (*wire.Envelope, error) {
	var lastErr error
	for _, addr := range addrs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r.stampDeadline(ctx, env) // per attempt: the relative budget decays
		r.countFanoutAttempt()
		reply, err := r.observeSend(ctx, addr, env)
		if err != nil {
			lastErr = err
			continue // fail over to the next relay address
		}
		return reply, nil
	}
	if lastErr == nil {
		lastErr = ctx.Err()
	}
	return nil, fmt.Errorf("%w for %s: %w", ErrAllRelaysFailed, network, lastErr)
}

// sendHedged races attempts across addrs: the first address is tried
// immediately, the next one after the hedge delay (or immediately when an
// attempt fails), up to MaxParallel outstanding at once. The first reply
// wins; losers are cancelled through the shared attempt context.
func (r *Relay) sendHedged(ctx context.Context, network string, addrs []string, env *wire.Envelope) (*wire.Envelope, error) {
	hedgeDelay := r.hedge.Delay
	if hedgeDelay <= 0 {
		hedgeDelay = 50 * time.Millisecond
	}
	maxParallel := r.hedge.MaxParallel
	if maxParallel <= 1 {
		maxParallel = 2
	}

	attemptCtx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	type outcome struct {
		index int
		reply *wire.Envelope
		err   error
	}
	// Buffered to the maximum number of attempts so late losers never
	// block: every launched goroutine can deliver and exit.
	results := make(chan outcome, len(addrs))
	next, inflight := 0, 0
	launch := func() {
		index, addr := next, addrs[next]
		next++
		inflight++
		r.countFanoutAttempt()
		// Each attempt sends its own shallow copy restamped with the budget
		// remaining at launch: hedges opened later carry a fresher relative
		// budget, and no goroutine mutates the shared envelope.
		attemptEnv := *env
		r.stampDeadline(ctx, &attemptEnv)
		go func() {
			reply, err := r.observeSend(attemptCtx, addr, &attemptEnv)
			results <- outcome{index: index, reply: reply, err: err}
		}()
	}
	launch()
	timer := time.NewTimer(hedgeDelay)
	defer timer.Stop()
	var lastErr error
	// An application-level MsgError reply must not win the race outright:
	// the duplicate load hedging creates can itself trip server-side
	// checks (e.g. the rate limiter), and letting that instant error
	// cancel a healthy-but-slower attempt would turn hedging into an
	// availability loss. Error replies are held as the fallback outcome
	// while real responses are still possible.
	var errorReply *wire.Envelope
	exhausted := func() (*wire.Envelope, error) {
		if errorReply != nil {
			return errorReply, nil
		}
		return nil, fmt.Errorf("%w for %s: %w", ErrAllRelaysFailed, network, lastErr)
	}
	for {
		var hedgeC <-chan time.Time
		if next < len(addrs) && inflight < maxParallel {
			hedgeC = timer.C
		}
		select {
		case <-ctx.Done():
			if errorReply != nil {
				// Surface the diagnostic the relay already gave us rather
				// than a bare deadline error.
				return errorReply, nil
			}
			return nil, ctx.Err()
		case <-hedgeC:
			launch()
			timer.Reset(hedgeDelay)
		case out := <-results:
			inflight--
			if out.err == nil && out.reply.Type != wire.MsgError {
				if out.index > 0 {
					r.countHedgedWin()
				}
				r.countHedgedLosses(inflight)
				return out.reply, nil
			}
			if out.err != nil {
				lastErr = out.err
			} else {
				errorReply = out.reply
			}
			if next < len(addrs) && inflight < maxParallel {
				// A failed attempt frees its slot: open the next hedge
				// immediately rather than waiting out the delay.
				launch()
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(hedgeDelay)
			} else if inflight == 0 && next == len(addrs) {
				return exhausted()
			}
		}
	}
}

// sendAtMostOnce delivers env trying addresses in order, but fails over
// only while delivery provably did not happen — ErrUnreachable means the
// connection was never established, so the envelope cannot have reached a
// relay. Any error after that point (write/read failure, stall, deadline)
// aborts instead of resending, because a non-idempotent request may
// already have been executed by a relay whose reply was lost. Used for
// cross-network invokes.
func (r *Relay) sendAtMostOnce(ctx context.Context, network string, addrs []string, env *wire.Envelope) (*wire.Envelope, error) {
	var lastErr error
	for _, addr := range addrs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r.stampDeadline(ctx, env) // per attempt: the relative budget decays
		r.countFanoutAttempt()
		reply, err := r.observeSend(ctx, addr, env)
		if err == nil {
			return reply, nil
		}
		lastErr = err
		if !errors.Is(err, ErrUnreachable) {
			return nil, err
		}
	}
	if lastErr == nil {
		lastErr = ctx.Err()
	}
	return nil, fmt.Errorf("%w for %s: %w", ErrAllRelaysFailed, network, lastErr)
}
