package relay

import (
	"testing"
	"time"

	"repro/internal/ledger"
)

// fakeChain is a minimal blockSource for cache-invalidation tests.
type fakeChain struct {
	blocks []*ledger.Block
}

func (f *fakeChain) Height() uint64 { return uint64(len(f.blocks)) }
func (f *fakeChain) Block(num uint64) (*ledger.Block, error) {
	return f.blocks[num], nil
}

func (f *fakeChain) commitWrite(chaincode string) {
	f.blocks = append(f.blocks, &ledger.Block{
		Number: uint64(len(f.blocks)),
		Transactions: []*ledger.Transaction{{
			Chaincode:  chaincode,
			Validation: ledger.Valid,
			RWSet:      ledger.RWSet{Writes: []ledger.KVWrite{{Key: "k"}}},
		}},
	})
}

func (f *fakeChain) commitReadOnly(chaincode string) {
	f.blocks = append(f.blocks, &ledger.Block{
		Number: uint64(len(f.blocks)),
		Transactions: []*ledger.Transaction{{
			Chaincode:  chaincode,
			Validation: ledger.Valid,
		}},
	})
}

func testClock(start time.Time) (func() time.Time, func(time.Duration)) {
	now := start
	return func() time.Time { return now }, func(d time.Duration) { now = now.Add(d) }
}

// storeEntry passes a key through the two-touch doorkeeper so the entry is
// actually resident, the steady state most tests exercise.
func storeEntry(c *attestationCache, key string, resp []byte, ns string, h uint64) {
	c.put(key, resp, []string{ns}, h)
	c.put(key, resp, []string{ns}, h)
}

func TestAttestationCacheHitAndNamespaceInvalidation(t *testing.T) {
	nowFn, _ := testClock(time.Unix(1000, 0))
	c := newAttestationCache(8, time.Minute, nowFn)
	chain := &fakeChain{}
	chain.commitWrite("docs")
	c.advance(chain)

	key := attestCacheKey([]byte("qd"), []byte("pd"), []byte("rd"), []byte("cert"))
	storeEntry(c, key, []byte("response"), "docs", chain.Height())
	if got := c.get(key); string(got) != "response" {
		t.Fatalf("get = %q, want cached response", got)
	}

	// A valid write to an unrelated namespace leaves the entry alone.
	chain.commitWrite("other")
	c.advance(chain)
	if c.get(key) == nil {
		t.Fatal("entry invalidated by a write to an unrelated namespace")
	}

	// A read-only commit in the same namespace leaves it alone too.
	chain.commitReadOnly("docs")
	c.advance(chain)
	if c.get(key) == nil {
		t.Fatal("entry invalidated by a read-only transaction")
	}

	// A valid write into the entry's namespace kills it.
	chain.commitWrite("docs")
	c.advance(chain)
	if c.get(key) != nil {
		t.Fatal("entry survived a write to its namespace")
	}
}

func TestAttestationCacheTTL(t *testing.T) {
	nowFn, advanceClock := testClock(time.Unix(1000, 0))
	c := newAttestationCache(8, time.Minute, nowFn)
	key := attestCacheKey([]byte("q"), []byte("p"), []byte("r"), []byte("c"))
	storeEntry(c, key, []byte("resp"), "docs", 1)
	advanceClock(59 * time.Second)
	if c.get(key) == nil {
		t.Fatal("entry expired before its TTL")
	}
	advanceClock(2 * time.Second)
	if c.get(key) != nil {
		t.Fatal("entry served past its TTL")
	}
}

func TestAttestationCacheLRUEviction(t *testing.T) {
	nowFn, _ := testClock(time.Unix(1000, 0))
	c := newAttestationCache(2, time.Minute, nowFn)
	k1 := attestCacheKey([]byte("1"), nil, nil, nil)
	k2 := attestCacheKey([]byte("2"), nil, nil, nil)
	k3 := attestCacheKey([]byte("3"), nil, nil, nil)
	storeEntry(c, k1, []byte("r1"), "ns", 1)
	storeEntry(c, k2, []byte("r2"), "ns", 1)
	// Touch k1 so k2 is the least recently used.
	if c.get(k1) == nil {
		t.Fatal("k1 missing")
	}
	storeEntry(c, k3, []byte("r3"), "ns", 1)
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if c.get(k2) != nil {
		t.Fatal("least recently used entry survived eviction")
	}
	if c.get(k1) == nil || c.get(k3) == nil {
		t.Fatal("recently used entries evicted")
	}
}

func TestAttestationCacheKeySeparation(t *testing.T) {
	// Any single component differing must address a different entry —
	// especially the requester certificate, whose key the cached ciphertext
	// is encrypted to.
	base := [][]byte{[]byte("qd"), []byte("pd"), []byte("rd"), []byte("cert")}
	keys := map[string]bool{attestCacheKey(base[0], base[1], base[2], base[3]): true}
	for i := range base {
		mutated := make([][]byte, len(base))
		copy(mutated, base)
		mutated[i] = []byte("x")
		k := attestCacheKey(mutated[0], mutated[1], mutated[2], mutated[3])
		if keys[k] {
			t.Fatalf("component %d does not affect the cache key", i)
		}
		keys[k] = true
	}
}

// TestAttestationCacheFastForwardsEmptyBacklog: the first advance over an
// empty cache jumps past the chain's history instead of scanning it —
// there is nothing to invalidate — while incremental scanning (and hence
// invalidation) still works for everything committed afterwards.
func TestAttestationCacheFastForwardsEmptyBacklog(t *testing.T) {
	nowFn, _ := testClock(time.Unix(1000, 0))
	c := newAttestationCache(8, time.Minute, nowFn)
	chain := &fakeChain{}
	for i := 0; i < 50; i++ {
		chain.commitWrite("docs")
	}
	c.advance(chain)
	c.mu.Lock()
	scanned, tracked := c.scanned, len(c.lastWrite)
	c.mu.Unlock()
	if scanned != 50 || tracked != 0 {
		t.Fatalf("fast-forward scanned=%d tracked=%d, want 50/0", scanned, tracked)
	}
	// Entries built at or above the baseline are still invalidated by
	// later writes.
	key := attestCacheKey([]byte("q"), nil, nil, nil)
	storeEntry(c, key, []byte("resp"), "docs", chain.Height())
	chain.commitWrite("docs")
	c.advance(chain)
	if c.get(key) != nil {
		t.Fatal("post-baseline write did not invalidate the entry")
	}
}

func TestAttestationCacheDisabled(t *testing.T) {
	nowFn, _ := testClock(time.Unix(1000, 0))
	c := newAttestationCache(0, time.Minute, nowFn)
	key := attestCacheKey([]byte("q"), nil, nil, nil)
	c.put(key, []byte("r"), []string{"ns"}, 1)
	if c.get(key) != nil {
		t.Fatal("disabled cache served an entry")
	}
}

// TestAttestationCacheDoorkeeperAdmission: a key is stored only on its
// second miss, so one-shot keys (random nonces) never displace resident
// entries.
func TestAttestationCacheDoorkeeperAdmission(t *testing.T) {
	nowFn, _ := testClock(time.Unix(1000, 0))
	c := newAttestationCache(2, time.Minute, nowFn)
	oneShot := attestCacheKey([]byte("one-shot"), nil, nil, nil)
	c.put(oneShot, []byte("r"), []string{"ns"}, 1)
	if c.get(oneShot) != nil || c.len() != 0 {
		t.Fatal("single-touch key was admitted")
	}
	repeat := attestCacheKey([]byte("poller"), nil, nil, nil)
	storeEntry(c, repeat, []byte("r"), "ns", 1)
	if c.get(repeat) == nil {
		t.Fatal("twice-missed key was not admitted")
	}
	// A flood of distinct one-shot keys leaves the resident entry alone.
	for i := 0; i < 100; i++ {
		c.put(attestCacheKey([]byte{byte(i)}, nil, nil, nil), []byte("x"), []string{"ns"}, 1)
	}
	if c.get(repeat) == nil {
		t.Fatal("one-shot flood evicted a resident entry")
	}
}

// TestAttestationCachePutBelowBaselineRefused: an entry whose build height
// predates an empty-cache fast-forward cannot be covered by write
// invalidation, so it must not be stored.
func TestAttestationCachePutBelowBaselineRefused(t *testing.T) {
	nowFn, _ := testClock(time.Unix(1000, 0))
	c := newAttestationCache(8, time.Minute, nowFn)
	chain := &fakeChain{}
	for i := 0; i < 5; i++ {
		chain.commitWrite("docs")
	}
	c.advance(chain) // fast-forward: baseline = 5
	key := attestCacheKey([]byte("stale"), nil, nil, nil)
	storeEntry(c, key, []byte("r"), "docs", 4) // sampled before the jump
	if c.get(key) != nil {
		t.Fatal("entry below the fast-forward baseline was stored")
	}
	storeEntry(c, key, []byte("r"), "docs", 5)
	if c.get(key) == nil {
		t.Fatal("entry at the baseline was refused")
	}
}
