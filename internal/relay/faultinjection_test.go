package relay

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/wire"
)

// flakyTransport wraps another transport and fails a deterministic fraction
// of sends, simulating an unreliable network between relays.
type flakyTransport struct {
	inner    Transport
	mu       sync.Mutex
	rng      *rand.Rand
	failRate float64
	sends    int
	failures int
}

func newFlakyTransport(inner Transport, failRate float64, seed int64) *flakyTransport {
	return &flakyTransport{inner: inner, rng: rand.New(rand.NewSource(seed)), failRate: failRate}
}

func (f *flakyTransport) Send(ctx context.Context, addr string, env *wire.Envelope) (*wire.Envelope, error) {
	f.mu.Lock()
	f.sends++
	fail := f.rng.Float64() < f.failRate
	if fail {
		f.failures++
	}
	f.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("%w: injected fault", ErrUnreachable)
	}
	return f.inner.Send(ctx, addr, env)
}

// TestQuerySurvivesFlakyTransportWithRedundancy: with enough redundant
// relay addresses, queries succeed despite a lossy transport — quantifying
// the paper's availability mitigation beyond a single crash.
func TestQuerySurvivesFlakyTransportWithRedundancy(t *testing.T) {
	hub := NewHub()
	reg := NewStaticRegistry()
	src := newSourceEnv(t, reg, hub)
	req := newRequester(t)
	configureInterop(t, src, req)
	if _, err := src.admin.Submit("docs", "PutDoc", []byte("bl-77"), []byte("doc")); err != nil {
		t.Fatalf("PutDoc: %v", err)
	}

	// Eight redundant addresses all fronting the same relay.
	var addrs []string
	for i := 0; i < 8; i++ {
		addr := fmt.Sprintf("stl-relay-%d", i)
		hub.Attach(addr, src.relay)
		addrs = append(addrs, addr)
	}
	reg.Register("tradelens", addrs...)

	flaky := newFlakyTransport(hub, 0.5, 99)
	dest := New("we-trade", reg, flaky)

	// With 8 alternatives at 50% loss, the chance all fail is 1/256 per
	// query; over 40 queries the expected failures are ~0.16, and with the
	// fixed seed this run is deterministic.
	failures := 0
	for i := 0; i < 40; i++ {
		resp, err := dest.Query(context.Background(), newQuery(t, req))
		if err != nil {
			failures++
			continue
		}
		if resp.Error != "" {
			t.Fatalf("remote error: %s", resp.Error)
		}
	}
	if failures > 1 {
		t.Fatalf("%d/40 queries failed despite 8-way redundancy", failures)
	}
	flaky.mu.Lock()
	defer flaky.mu.Unlock()
	if flaky.failures == 0 {
		t.Fatal("fault injection never fired; test is vacuous")
	}
}

// TestQueryFailsDeterministicallyWithoutRedundancy: the same loss rate with
// a single address produces visible failures, demonstrating that redundancy
// (not retries) is what restores availability.
func TestQueryFailsDeterministicallyWithoutRedundancy(t *testing.T) {
	hub := NewHub()
	reg := NewStaticRegistry()
	src := newSourceEnv(t, reg, hub)
	req := newRequester(t)
	configureInterop(t, src, req)
	_, _ = src.admin.Submit("docs", "PutDoc", []byte("bl-77"), []byte("doc"))

	hub.Attach("stl-relay", src.relay)
	reg.Register("tradelens", "stl-relay")
	flaky := newFlakyTransport(hub, 0.5, 42)
	dest := New("we-trade", reg, flaky)

	failures := 0
	for i := 0; i < 40; i++ {
		if _, err := dest.Query(context.Background(), newQuery(t, req)); err != nil {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("single-address queries never failed under 50% loss")
	}
}
