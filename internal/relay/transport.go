package relay

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/wire"
)

// ErrUnreachable is returned when a transport cannot reach an address.
var ErrUnreachable = errors.New("relay: address unreachable")

// Hub is an in-process Transport: relays attach under string addresses and
// envelopes are delivered by direct function call. It gives tests and
// single-process deployments the exact semantics of the TCP transport
// without sockets, and supports fault injection by detaching relays,
// marking addresses down, or stalling them.
type Hub struct {
	mu      sync.RWMutex
	relays  map[string]*Relay
	down    map[string]bool
	stalled map[string]bool
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{
		relays:  make(map[string]*Relay),
		down:    make(map[string]bool),
		stalled: make(map[string]bool),
	}
}

// Attach registers a relay under an address.
func (h *Hub) Attach(addr string, r *Relay) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.relays[addr] = r
}

// Detach removes a relay, making the address unreachable.
func (h *Hub) Detach(addr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.relays, addr)
}

// SetDown marks an address as failing without removing it, simulating a
// crashed or DoS-ed relay (§5 availability analysis).
func (h *Hub) SetDown(addr string, down bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.down[addr] = down
}

// SetStall marks an address as hung: sends to it accept the envelope but
// never reply, blocking until the caller's context expires. This is the
// fault SetDown cannot simulate — a relay that is reachable but wedged —
// and is what deadline/hedging behaviour is tested against.
func (h *Hub) SetStall(addr string, stalled bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.stalled[addr] = stalled
}

// Send implements Transport.
func (h *Hub) Send(ctx context.Context, addr string, env *wire.Envelope) (*wire.Envelope, error) {
	h.mu.RLock()
	target, ok := h.relays[addr]
	down := h.down[addr]
	stalled := h.stalled[addr]
	h.mu.RUnlock()
	if !ok || down {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, addr)
	}
	if stalled {
		<-ctx.Done()
		return nil, fmt.Errorf("relay: send to %s: %w", addr, ctx.Err())
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Round-trip through the wire format so in-process behaviour matches
	// the TCP transport byte for byte.
	encoded := env.Marshal()
	decoded, err := wire.UnmarshalEnvelope(encoded)
	if err != nil {
		return nil, fmt.Errorf("relay: encode request: %w", err)
	}
	reply := target.HandleEnvelope(ctx, decoded)
	replyBytes := reply.Marshal()
	out, err := wire.UnmarshalEnvelope(replyBytes)
	if err != nil {
		return nil, fmt.Errorf("relay: decode reply: %w", err)
	}
	return out, nil
}
