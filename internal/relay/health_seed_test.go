package relay

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// seedClock returns a fixed, controllable clock.
type seedClock struct{ t time.Time }

func (c *seedClock) now() time.Time          { return c.t }
func (c *seedClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newSeedClock() *seedClock               { return &seedClock{t: time.Unix(1_700_000_000, 0)} }
func seedOpt(c *seedClock) Option            { return WithClock(c.now) }
func seededRelay(c *seedClock, reg Discovery) *Relay {
	return New("dest-net", reg, NewHub(), seedOpt(c))
}

// TestRestartedRelayResolvesInSharedHealthOrder is the restart story end to
// end: relay one learns (the hard way) that the first-registered address is
// failing and the second is fast, publishes that through the registry, dies,
// and its replacement — a fresh process with a blank tracker — immediately
// resolves in fleet-learned order instead of registration order.
func TestRestartedRelayResolvesInSharedHealthOrder(t *testing.T) {
	clock := newSeedClock()
	reg := NewStaticRegistry()
	reg.now = clock.now
	reg.Register("src-net", "addr-a", "addr-b")

	veteran := seededRelay(clock, reg)
	// Two failures on addr-a (below the breaker threshold of 3), one fast
	// success on addr-b.
	veteran.health.reportFailure("addr-a")
	veteran.health.reportFailure("addr-a")
	veteran.health.reportSuccess("addr-b", 2*time.Millisecond)
	if err := reg.PublishHealth(veteran.HealthSnapshot()); err != nil {
		t.Fatalf("PublishHealth: %v", err)
	}

	// The replacement process: fresh tracker, blank history.
	fresh := seededRelay(clock, reg)
	before, err := fresh.resolveOrdered("src-net")
	if err != nil {
		t.Fatalf("resolveOrdered: %v", err)
	}
	if before[0] != "addr-a" {
		t.Fatalf("unseeded relay should resolve in registration order, got %v", before)
	}

	if err := SeedHealthFromRegistry(fresh, reg); err != nil {
		t.Fatalf("SeedHealthFromRegistry: %v", err)
	}
	after, err := fresh.resolveOrdered("src-net")
	if err != nil {
		t.Fatalf("resolveOrdered: %v", err)
	}
	if after[0] != "addr-b" || after[1] != "addr-a" {
		t.Fatalf("seeded relay resolve order = %v, want [addr-b addr-a]", after)
	}
}

// TestSeededCircuitOpenStateSurvivesRestart: an address whose breaker was
// open when the observation was published stays demoted (and counted as a
// breaker skip) in the restarted relay, for exactly the cooldown that
// remains — and reopens for business once it lapses.
func TestSeededCircuitOpenStateSurvivesRestart(t *testing.T) {
	clock := newSeedClock()
	reg := NewStaticRegistry()
	reg.now = clock.now
	reg.Register("src-net", "addr-dead", "addr-live")

	veteran := seededRelay(clock, reg)
	for i := 0; i < defaultBreakerThreshold; i++ {
		veteran.health.reportFailure("addr-dead")
	}
	veteran.health.reportSuccess("addr-live", time.Millisecond)
	if !veteran.health.circuitOpen("addr-dead") {
		t.Fatal("breaker should be open after threshold failures")
	}
	if err := reg.PublishHealth(veteran.HealthSnapshot()); err != nil {
		t.Fatalf("PublishHealth: %v", err)
	}

	fresh := seededRelay(clock, reg)
	if err := SeedHealthFromRegistry(fresh, reg); err != nil {
		t.Fatalf("SeedHealthFromRegistry: %v", err)
	}
	if !fresh.health.circuitOpen("addr-dead") {
		t.Fatal("circuit-open state did not survive the restart via the shared record")
	}
	ordered, err := fresh.resolveOrdered("src-net")
	if err != nil {
		t.Fatalf("resolveOrdered: %v", err)
	}
	if ordered[0] != "addr-live" {
		t.Fatalf("resolve order = %v, want the open address demoted", ordered)
	}
	if skips := fresh.Stats().BreakerSkips; skips != 1 {
		t.Fatalf("BreakerSkips = %d, want 1 (the seeded open breaker)", skips)
	}

	// The inherited cooldown still expires on schedule.
	clock.advance(defaultBreakerCooldown + time.Second)
	if fresh.health.circuitOpen("addr-dead") {
		t.Fatal("seeded breaker did not close after the cooldown lapsed")
	}
}

// TestSeedDoesNotOverwriteFirstHandObservations: seeding only fills blanks.
// An address this relay has already probed keeps its own view, however
// gloomy the shared record is.
func TestSeedDoesNotOverwriteFirstHandObservations(t *testing.T) {
	clock := newSeedClock()
	r := seededRelay(clock, NewStaticRegistry())
	r.health.reportSuccess("addr-a", time.Millisecond) // first-hand: healthy

	r.SeedHealth(map[string]SharedHealth{
		"addr-a": {ConsecFailures: 9, OpenUntilUnixNano: clock.now().Add(time.Hour).UnixNano()},
		"addr-b": {ConsecFailures: 1},
	})
	if r.health.circuitOpen("addr-a") {
		t.Fatal("seed overwrote a first-hand observation")
	}
	r.health.mu.Lock()
	aState := *r.health.byAddr["addr-a"]
	bState := *r.health.byAddr["addr-b"]
	r.health.mu.Unlock()
	if aState.consecFailures != 0 || aState.seededFailures != 0 {
		t.Fatalf("addr-a state = %+v, want first-hand clean", aState)
	}
	if bState.seededFailures != 1 || bState.consecFailures != 0 {
		t.Fatalf("addr-b state = %+v, want 1 seeded failure and no first-hand ones", bState)
	}
}

// TestSeededFailuresDoNotFeedBreakerOrRepublish: a seeded streak demotes
// ordering but must not let a single local failure open the breaker, and a
// local failure publishes the local count (1), not seed+1 — otherwise
// counts ratchet fleet-wide across restarts.
func TestSeededFailuresDoNotFeedBreakerOrRepublish(t *testing.T) {
	clock := newSeedClock()
	r := seededRelay(clock, NewStaticRegistry())
	r.SeedHealth(map[string]SharedHealth{
		"addr-a": {ConsecFailures: defaultBreakerThreshold - 1, ObservedUnixNano: clock.now().UnixNano()},
	})
	r.health.reportFailure("addr-a") // one first-hand failure
	if r.health.circuitOpen("addr-a") {
		t.Fatal("one local failure opened the breaker on the strength of a seeded streak")
	}
	snap := r.HealthSnapshot()
	if rec := snap["addr-a"]; rec.ConsecFailures != 1 {
		t.Fatalf("published ConsecFailures = %d, want the local count 1", rec.ConsecFailures)
	}
	// The confirming failure keeps the seeded streak in the score: the
	// address must rank worse than before, not better.
	r.health.mu.Lock()
	st := *r.health.byAddr["addr-a"]
	r.health.mu.Unlock()
	if st.seededFailures != defaultBreakerThreshold-1 || st.consecFailures != 1 {
		t.Fatalf("state after confirming failure = %+v, want seeded streak retained", st)
	}
	// A success contradicts the shared record and clears both counts.
	r.health.reportSuccess("addr-a", time.Millisecond)
	r.health.mu.Lock()
	st = *r.health.byAddr["addr-a"]
	r.health.mu.Unlock()
	if st.seededFailures != 0 || st.consecFailures != 0 {
		t.Fatalf("state after success = %+v, want cleared", st)
	}
	// A genuine local streak still opens it.
	for i := 0; i < defaultBreakerThreshold; i++ {
		r.health.reportFailure("addr-a")
	}
	if !r.health.circuitOpen("addr-a") {
		t.Fatal("a full first-hand streak did not open the breaker")
	}
}

// TestSeedIgnoresLapsedCooldowns: a shared OpenUntil already in the past
// must not demote the address — the outage it recorded is over.
func TestSeedIgnoresLapsedCooldowns(t *testing.T) {
	clock := newSeedClock()
	r := seededRelay(clock, NewStaticRegistry())
	r.SeedHealth(map[string]SharedHealth{
		"addr-a": {ConsecFailures: defaultBreakerThreshold, OpenUntilUnixNano: clock.now().Add(-time.Minute).UnixNano()},
	})
	if r.health.circuitOpen("addr-a") {
		t.Fatal("lapsed shared cooldown re-opened the breaker")
	}
}

// TestSnapshotStampsObservationTimeNotPublishTime: a relay that stopped
// talking to an address keeps re-publishing its old verdict under the
// original observation time, so a sibling's genuinely fresher observation
// wins the merge no matter who publishes last.
func TestSnapshotStampsObservationTimeNotPublishTime(t *testing.T) {
	clock := newSeedClock()
	reg := NewStaticRegistry()
	reg.now = clock.now
	reg.Register("src-net", "addr-x")

	gloomy := seededRelay(clock, reg)
	gloomy.health.reportFailure("addr-x") // observed at T0

	clock.advance(time.Hour)
	sunny := seededRelay(clock, reg)
	sunny.health.reportSuccess("addr-x", time.Millisecond) // observed at T0+1h
	if err := reg.PublishHealth(sunny.HealthSnapshot()); err != nil {
		t.Fatalf("PublishHealth fresh: %v", err)
	}
	// The stale observer publishes afterwards — later in wall time, but its
	// observation is an hour old.
	if err := reg.PublishHealth(gloomy.HealthSnapshot()); err != nil {
		t.Fatalf("PublishHealth stale: %v", err)
	}

	records, err := reg.HealthRecords()
	if err != nil {
		t.Fatalf("HealthRecords: %v", err)
	}
	if rec := records["addr-x"]; rec.ConsecFailures != 0 {
		t.Fatalf("stale re-published failure verdict won the merge: %+v", rec)
	}
	// And state that was merely seeded is never re-published as one's own.
	echo := seededRelay(clock, reg)
	echo.SeedHealth(records)
	if snap := echo.HealthSnapshot(); len(snap) != 0 {
		t.Fatalf("seeded (second-hand) state was re-published: %+v", snap)
	}
}

// TestPublishHealthNoOpDoesNotRewriteFile: re-publishing an unchanged
// snapshot (the steady-state heartbeat) must not churn the registry file
// under the flock.
func TestPublishHealthNoOpDoesNotRewriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "registry.json")
	reg := NewFileRegistry(path)
	if err := reg.Register("src-net", "addr-a"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	rec := map[string]SharedHealth{"addr-a": {ConsecFailures: 2, ObservedUnixNano: 500}}
	if err := reg.PublishHealth(rec); err != nil {
		t.Fatalf("PublishHealth: %v", err)
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	// Same record again, and a record for an address that is not registered
	// at all: both are no-ops and must leave the file untouched.
	if err := reg.PublishHealth(rec); err != nil {
		t.Fatalf("PublishHealth repeat: %v", err)
	}
	if err := reg.PublishHealth(map[string]SharedHealth{"addr-unknown": {ConsecFailures: 1, ObservedUnixNano: 900}}); err != nil {
		t.Fatalf("PublishHealth unknown: %v", err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if !after.ModTime().Equal(before.ModTime()) || after.Size() != before.Size() {
		t.Fatal("no-op PublishHealth rewrote the registry file")
	}
}

// TestFileRegistryHealthRoundTrip: health published into a file registry
// survives the JSON round-trip (through a separate instance, as a separate
// process would read it), keeps the freshest observation per address, and
// shows up in Entries for inspection tooling.
func TestFileRegistryHealthRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "registry.json")
	reg := NewFileRegistry(path)
	if err := reg.Register("src-net", "addr-a", "addr-b"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	stale := SharedHealth{ConsecFailures: 5, ObservedUnixNano: 100}
	frescoA := SharedHealth{ConsecFailures: 1, EWMALatencyNanos: int64(3 * time.Millisecond), ObservedUnixNano: 200}
	if err := reg.PublishHealth(map[string]SharedHealth{"addr-a": frescoA}); err != nil {
		t.Fatalf("PublishHealth: %v", err)
	}
	// A stale observation from another relay must not clobber the fresher
	// record already on file.
	if err := reg.PublishHealth(map[string]SharedHealth{"addr-a": stale, "addr-unregistered": frescoA}); err != nil {
		t.Fatalf("PublishHealth stale: %v", err)
	}

	other := NewFileRegistry(path)
	records, err := other.HealthRecords()
	if err != nil {
		t.Fatalf("HealthRecords: %v", err)
	}
	if got, ok := records["addr-a"]; !ok || got != frescoA {
		t.Fatalf("addr-a record = %+v (present=%v), want %+v", got, ok, frescoA)
	}
	if _, ok := records["addr-unregistered"]; ok {
		t.Fatal("health for an unregistered address was persisted")
	}
	if _, ok := records["addr-b"]; ok {
		t.Fatal("addr-b has no published health, but a record appeared")
	}
	entries, err := other.Entries()
	if err != nil {
		t.Fatalf("Entries: %v", err)
	}
	for _, e := range entries["src-net"] {
		switch e.Addr {
		case "addr-a":
			if e.Health == nil || *e.Health != frescoA {
				t.Fatalf("Entries health for addr-a = %+v", e.Health)
			}
		case "addr-b":
			if e.Health != nil {
				t.Fatalf("Entries health for addr-b = %+v, want none", e.Health)
			}
		}
	}
	// Lease renewal must not shed the health record.
	if err := other.RegisterLease("src-net", "addr-a", time.Minute); err != nil {
		t.Fatalf("RegisterLease: %v", err)
	}
	records, err = other.HealthRecords()
	if err != nil {
		t.Fatalf("HealthRecords after renewal: %v", err)
	}
	if got := records["addr-a"]; got != frescoA {
		t.Fatalf("health lost across lease renewal: %+v", got)
	}
}

// TestAnnounceWithHealthPublishesOnHeartbeat: the health snapshot rides the
// lease heartbeat into the registry without any extra scheduling.
func TestAnnounceWithHealthPublishesOnHeartbeat(t *testing.T) {
	reg := NewStaticRegistry()
	reg.Register("src-net", "addr-peer")
	r := New("dest-net", reg, NewHub())
	r.health.reportFailure("addr-peer")

	stop, err := AnnounceWithHealth(reg, "dest-net", "addr-self", 30*time.Millisecond, r.HealthSnapshot, nil)
	if err != nil {
		t.Fatalf("AnnounceWithHealth: %v", err)
	}
	defer stop()

	deadline := time.Now().Add(2 * time.Second)
	for {
		records, err := reg.HealthRecords()
		if err != nil {
			t.Fatalf("HealthRecords: %v", err)
		}
		if rec, ok := records["addr-peer"]; ok && rec.ConsecFailures == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("health never reached the registry via the heartbeat; records = %+v", records)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
